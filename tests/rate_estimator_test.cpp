#include "core/rate_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.h"

namespace stale::core {
namespace {

TEST(ConservativeRateEstimatorTest, AlwaysReportsMaxThroughput) {
  ConservativeRateEstimator estimator(10.0);
  EXPECT_DOUBLE_EQ(estimator.rate(), 10.0);
  estimator.on_arrival(1.0);
  estimator.on_arrival(1.5);
  EXPECT_DOUBLE_EQ(estimator.rate(), 10.0);
}

TEST(ConservativeRateEstimatorTest, RejectsBadRate) {
  EXPECT_THROW(ConservativeRateEstimator(0.0), std::invalid_argument);
}

TEST(EwmaRateEstimatorTest, ConvergesToPoissonRate) {
  EwmaRateEstimator estimator(50.0, 1.0);
  sim::Rng rng(42);
  const double rate = 8.0;
  double t = 0.0;
  for (int i = 0; i < 200000; ++i) {
    t += -std::log(rng.next_double_open0()) / rate;
    estimator.on_arrival(t);
  }
  // EWMA of 1/gap over exponential gaps is biased high relative to the rate
  // (E[1/gap] diverges pointwise; smoothing tames it); accept a loose band.
  EXPECT_GT(estimator.rate(), 0.5 * rate);
  EXPECT_LT(estimator.rate(), 2.0 * rate);
}

TEST(EwmaRateEstimatorTest, TracksDeterministicRateExactly) {
  EwmaRateEstimator estimator(5.0, 1.0);
  double t = 0.0;
  for (int i = 0; i < 1000; ++i) {
    t += 0.25;  // rate 4
    estimator.on_arrival(t);
  }
  EXPECT_NEAR(estimator.rate(), 4.0, 0.01);
}

TEST(EwmaRateEstimatorTest, FirstArrivalEstablishesBaselineOnly) {
  EwmaRateEstimator estimator(5.0, 3.0);
  estimator.on_arrival(100.0);
  EXPECT_DOUBLE_EQ(estimator.rate(), 3.0);
}

TEST(EwmaRateEstimatorTest, RejectsBadParameters) {
  EXPECT_THROW(EwmaRateEstimator(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(EwmaRateEstimator(1.0, 0.0), std::invalid_argument);
}

TEST(WindowedRateEstimatorTest, ExactOnDeterministicStream) {
  WindowedRateEstimator estimator(10.0, 1.0);
  double t = 0.0;
  for (int i = 0; i < 100; ++i) {
    t += 0.5;  // rate 2
    estimator.on_arrival(t);
  }
  EXPECT_NEAR(estimator.rate(), 2.0, 0.11);  // quantization of the window
}

TEST(WindowedRateEstimatorTest, UsesInitialRateBeforeWindowFills) {
  WindowedRateEstimator estimator(100.0, 7.0);
  estimator.on_arrival(1.0);
  estimator.on_arrival(2.0);
  EXPECT_DOUBLE_EQ(estimator.rate(), 7.0);
}

TEST(WindowedRateEstimatorTest, AccurateOnPoissonStream) {
  WindowedRateEstimator estimator(200.0, 1.0);
  sim::Rng rng(7);
  const double rate = 9.0;
  double t = 0.0;
  while (t < 2000.0) {
    t += -std::log(rng.next_double_open0()) / rate;
    estimator.on_arrival(t);
  }
  EXPECT_NEAR(estimator.rate(), rate, 0.5);
}

TEST(WindowedRateEstimatorTest, RejectsBadParameters) {
  EXPECT_THROW(WindowedRateEstimator(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(WindowedRateEstimator(1.0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace stale::core
