// Property and fuzz tests for the live dispatcher's wire protocol
// (src/net/protocol.h). The parsers sit directly on the network: every UDP
// datagram and TCP line a peer (or an attacker with `nc`) sends lands here,
// so the contract under test is "parse anything without crashing, accept
// only well-formed lines, and round-trip everything the formatters emit".
// The fuzz loop is seed-deterministic (sim::Rng), so a failure reproduces.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/protocol.h"
#include "sim/rng.h"

namespace stale::net {
namespace {

// Formatters emit the terminating '\n'; the event loops split lines before
// parsing. Mirror that framing here.
std::string strip_newline(std::string line) {
  if (!line.empty() && line.back() == '\n') line.pop_back();
  return line;
}

TEST(ProtocolRoundTripTest, EveryMessageTypeRoundTrips) {
  sim::Rng rng(2026);
  for (int i = 0; i < 500; ++i) {
    HelloMsg hello;
    hello.index = static_cast<int>(rng.next_below(1'000'000));
    hello.tcp_port = static_cast<std::uint16_t>(rng.next_below(65536));
    const auto hello2 = parse_hello(strip_newline(format_hello(hello)));
    ASSERT_TRUE(hello2.has_value());
    EXPECT_EQ(hello2->index, hello.index);
    EXPECT_EQ(hello2->tcp_port, hello.tcp_port);

    LoadMsg load;
    load.index = static_cast<int>(rng.next_below(1'000'000));
    load.queue_len = static_cast<int>(rng.next_below(1'000'000));
    load.seq = rng.next_u64();
    const auto load2 = parse_load(strip_newline(format_load(load)));
    ASSERT_TRUE(load2.has_value());
    EXPECT_EQ(load2->index, load.index);
    EXPECT_EQ(load2->queue_len, load.queue_len);
    EXPECT_EQ(load2->seq, load.seq);

    JobMsg job;
    job.id = rng.next_u64();
    const auto job2 = parse_job(strip_newline(format_job(job)));
    ASSERT_TRUE(job2.has_value());
    EXPECT_EQ(job2->id, job.id);

    DoneMsg done;
    done.id = rng.next_u64();
    done.queue_len = static_cast<int>(rng.next_below(1'000'000));
    const auto done2 = parse_done(strip_newline(format_done(done)));
    ASSERT_TRUE(done2.has_value());
    EXPECT_EQ(done2->id, done.id);
    EXPECT_EQ(done2->queue_len, done.queue_len);
    EXPECT_LT(done2->service, 0.0);  // unreported stays unreported

    // With the optional service field (DONE v2) the round trip carries it.
    done.service = rng.next_double() * 10.0;
    const auto done3 = parse_done(strip_newline(format_done(done)));
    ASSERT_TRUE(done3.has_value());
    EXPECT_EQ(done3->id, done.id);
    EXPECT_EQ(done3->queue_len, done.queue_len);
    EXPECT_NEAR(done3->service, done.service, 1e-5);  // %f formatting

    ClientDoneMsg cdone;
    cdone.id = rng.next_u64();
    cdone.backend = static_cast<int>(rng.next_below(1'000'000));
    const auto cdone2 =
        parse_client_done(strip_newline(format_client_done(cdone)));
    ASSERT_TRUE(cdone2.has_value());
    EXPECT_EQ(cdone2->id, cdone.id);
    EXPECT_EQ(cdone2->backend, cdone.backend);
  }
}

TEST(ProtocolParseTest, ToleratesExtraWhitespace) {
  const auto hello = parse_hello("  HELLO   3    8080  ");
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->index, 3);
  EXPECT_EQ(hello->tcp_port, 8080);
}

TEST(ProtocolParseTest, RejectsMalformedLines) {
  // Wrong keyword, field count, sign, radix, or trailing garbage — each
  // returns nullopt instead of a half-parsed message.
  EXPECT_FALSE(parse_hello("").has_value());
  EXPECT_FALSE(parse_hello("HELLO").has_value());
  EXPECT_FALSE(parse_hello("HELLO 3").has_value());
  EXPECT_FALSE(parse_hello("HELLO 3 8080 extra").has_value());
  EXPECT_FALSE(parse_hello("hello 3 8080").has_value());  // case-sensitive
  EXPECT_FALSE(parse_hello("HELLO -3 8080").has_value());
  EXPECT_FALSE(parse_hello("HELLO +3 8080").has_value());
  EXPECT_FALSE(parse_hello("HELLO 3 80x80").has_value());
  EXPECT_FALSE(parse_hello("HELLO 3 99999").has_value());  // > uint16 max
  EXPECT_FALSE(parse_hello("HELLO 3 8080\n").has_value());  // unstripped
  EXPECT_FALSE(parse_hello("LOAD 3 8080").has_value());  // foreign keyword

  EXPECT_FALSE(parse_load("LOAD 1 2").has_value());
  EXPECT_FALSE(parse_load("LOAD 1 2 3 4").has_value());
  EXPECT_FALSE(parse_load("LOAD 1 -2 3").has_value());
  EXPECT_FALSE(parse_load("LOAD a 2 3").has_value());
  EXPECT_FALSE(parse_load("HELLO 1 2").has_value());

  EXPECT_FALSE(parse_job("JOB").has_value());
  EXPECT_FALSE(parse_job("JOB 1 2").has_value());
  EXPECT_FALSE(parse_job("JOB 1.5").has_value());
  EXPECT_FALSE(parse_job("JOB 99999999999999999999999").has_value());

  EXPECT_FALSE(parse_done("DONE 1").has_value());
  EXPECT_FALSE(parse_done("DONE one 2").has_value());
  EXPECT_FALSE(parse_done("DONE 1 2 3 4").has_value());     // five fields
  EXPECT_FALSE(parse_done("DONE 1 2 -0.5").has_value());    // negative service
  EXPECT_FALSE(parse_done("DONE 1 2 +0.5").has_value());    // signed service
  EXPECT_FALSE(parse_done("DONE 1 2 0.5x").has_value());    // trailing junk
  EXPECT_FALSE(parse_client_done("DONE 1").has_value());
  EXPECT_FALSE(parse_client_done("ERR 1 2").has_value());
}

TEST(ProtocolParseTest, DoneServiceFieldIsOptional) {
  // A v1 backend sends three fields; the parser reports "unreported" via a
  // negative service so the recorder can fall back to size 1.0.
  const auto old_form = parse_done("DONE 7 2");
  ASSERT_TRUE(old_form.has_value());
  EXPECT_LT(old_form->service, 0.0);

  const auto new_form = parse_done("DONE 7 2 0.125");
  ASSERT_TRUE(new_form.has_value());
  EXPECT_EQ(new_form->id, 7u);
  EXPECT_EQ(new_form->queue_len, 2);
  EXPECT_DOUBLE_EQ(new_form->service, 0.125);

  // Zero is a legal (if improbable) service time.
  const auto zero = parse_done("DONE 7 2 0");
  ASSERT_TRUE(zero.has_value());
  EXPECT_DOUBLE_EQ(zero->service, 0.0);
}

// Runs every parser over the same line; none may crash, and any accepted
// message must carry non-negative fields (the parsers promise to reject
// negative input, so a sign slipping through would be a real bug).
void exercise_all_parsers(std::string_view line) {
  if (const auto msg = parse_hello(line)) {
    EXPECT_GE(msg->index, 0);
  }
  if (const auto msg = parse_load(line)) {
    EXPECT_GE(msg->index, 0);
    EXPECT_GE(msg->queue_len, 0);
  }
  if (const auto msg = parse_job(line)) {
    (void)msg;
  }
  if (const auto msg = parse_done(line)) {
    EXPECT_GE(msg->queue_len, 0);
  }
  if (const auto msg = parse_client_done(line)) {
    EXPECT_GE(msg->backend, 0);
  }
}

TEST(ProtocolFuzzTest, MutatedLinesNeverCrashAParser) {
  sim::Rng rng(777);
  const std::vector<std::string> seeds = {
      "HELLO 3 8080", "LOAD 7 42 1001", "JOB 123456789",
      "DONE 123456789 5", "ERR 42 no-backends", "",
  };
  const std::string alphabet =
      "HELODJOBNERload 0123456789-+.\t\n\r\x01\x7f";
  for (int iter = 0; iter < 20'000; ++iter) {
    std::string line = seeds[static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(seeds.size())))];
    // A few random mutations: truncate, splice, insert, overwrite, repeat.
    const int mutations = 1 + static_cast<int>(rng.next_below(4));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.next_below(5)) {
        case 0:  // truncate at a random point
          line.resize(static_cast<std::size_t>(
              rng.next_below(static_cast<std::uint64_t>(line.size() + 1))));
          break;
        case 1:  // splice another seed onto the end (simulates coalesced
                 // datagrams / partial line reads)
          line += seeds[static_cast<std::size_t>(
              rng.next_below(static_cast<std::uint64_t>(seeds.size())))];
          break;
        case 2: {  // insert a random byte
          const auto pos = static_cast<std::size_t>(
              rng.next_below(static_cast<std::uint64_t>(line.size() + 1)));
          line.insert(line.begin() + static_cast<std::ptrdiff_t>(pos),
                      alphabet[static_cast<std::size_t>(rng.next_below(
                          static_cast<std::uint64_t>(alphabet.size())))]);
          break;
        }
        case 3:  // overwrite a random byte
          if (!line.empty()) {
            line[static_cast<std::size_t>(rng.next_below(
                static_cast<std::uint64_t>(line.size())))] =
                alphabet[static_cast<std::size_t>(rng.next_below(
                    static_cast<std::uint64_t>(alphabet.size())))];
          }
          break;
        default:  // duplicate the whole line (repeated field count)
          line += " " + line;
          break;
      }
    }
    exercise_all_parsers(line);
  }
}

TEST(ProtocolFuzzTest, RandomBytesNeverParse) {
  // Pure noise (no seed structure) must essentially always be rejected;
  // count acceptances to catch a parser that got permissive.
  sim::Rng rng(31337);
  const std::string alphabet = "ABCXYZ 0123456789-+\n\x02\xff";
  int accepted = 0;
  for (int iter = 0; iter < 5'000; ++iter) {
    std::string line;
    const auto len = static_cast<std::size_t>(rng.next_below(24));
    for (std::size_t i = 0; i < len; ++i) {
      line += alphabet[static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(alphabet.size())))];
    }
    accepted += parse_hello(line).has_value() ? 1 : 0;
    accepted += parse_load(line).has_value() ? 1 : 0;
    accepted += parse_job(line).has_value() ? 1 : 0;
    accepted += parse_done(line).has_value() ? 1 : 0;
    exercise_all_parsers(line);
  }
  // Lines without a correctly spelled keyword can never be accepted.
  EXPECT_EQ(accepted, 0);
}

}  // namespace
}  // namespace stale::net
