#include <gtest/gtest.h>

#include <vector>

#include "loadinfo/continuous_view.h"
#include "loadinfo/delay_distribution.h"
#include "loadinfo/individual_board.h"
#include "loadinfo/periodic_board.h"
#include "queueing/cluster.h"
#include "sim/rng.h"

namespace stale::loadinfo {
namespace {

TEST(DelayDistributionTest, ParseAndNameRoundTrip) {
  for (DelayKind kind :
       {DelayKind::kConstant, DelayKind::kUniformHalf, DelayKind::kUniformFull,
        DelayKind::kExponential}) {
    EXPECT_EQ(parse_delay_kind(delay_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_delay_kind("bogus"), std::invalid_argument);
}

TEST(DelayDistributionTest, AllKindsHaveMeanT) {
  const double t = 3.0;
  for (DelayKind kind :
       {DelayKind::kConstant, DelayKind::kUniformHalf, DelayKind::kUniformFull,
        DelayKind::kExponential}) {
    const auto dist = make_delay_distribution(kind, t);
    EXPECT_NEAR(dist->mean(), t, 1e-12) << delay_kind_name(kind);
  }
}

TEST(DelayDistributionTest, VarianceOrderingMatchesPaper) {
  const double t = 2.0;
  const double v_const =
      make_delay_distribution(DelayKind::kConstant, t)->variance();
  const double v_half =
      make_delay_distribution(DelayKind::kUniformHalf, t)->variance();
  const double v_full =
      make_delay_distribution(DelayKind::kUniformFull, t)->variance();
  const double v_exp =
      make_delay_distribution(DelayKind::kExponential, t)->variance();
  EXPECT_LT(v_const, v_half);
  EXPECT_LT(v_half, v_full);
  EXPECT_LT(v_full, v_exp);
}

TEST(PeriodicBoardTest, SnapshotFrozenWithinPhase) {
  queueing::Cluster cluster(2);
  PeriodicBoard board(2, 10.0);
  cluster.assign(1.0, 0, 100.0);
  board.sync(cluster, 2.0);
  EXPECT_EQ(board.loads(), (std::vector<int>{0, 0}));  // snapshot from t = 0
  EXPECT_DOUBLE_EQ(board.age(2.0), 2.0);
}

TEST(PeriodicBoardTest, RefreshesAtBoundary) {
  queueing::Cluster cluster(2);
  PeriodicBoard board(2, 10.0);
  cluster.assign(1.0, 0, 100.0);
  cluster.assign(2.0, 0, 100.0);
  board.sync(cluster, 10.5);
  EXPECT_EQ(board.loads(), (std::vector<int>{2, 0}));
  EXPECT_DOUBLE_EQ(board.phase_start(), 10.0);
  EXPECT_DOUBLE_EQ(board.age(10.5), 0.5);
}

TEST(PeriodicBoardTest, SkipsEmptyPhasesExactly) {
  queueing::Cluster cluster(1);
  PeriodicBoard board(1, 1.0);
  cluster.assign(0.5, 0, 0.2);  // departs at 0.7
  board.sync(cluster, 5.25);    // crosses boundaries 1..5
  EXPECT_EQ(board.loads()[0], 0);
  EXPECT_DOUBLE_EQ(board.phase_start(), 5.0);
}

TEST(PeriodicBoardTest, SnapshotTakenExactlyAtBoundary) {
  queueing::Cluster cluster(1);
  PeriodicBoard board(1, 10.0);
  cluster.assign(0.0, 0, 12.0);  // still in service at t = 10
  board.sync(cluster, 10.1);
  EXPECT_EQ(board.loads()[0], 1);
  // Next phase: the job departed at 12, before the t = 20 boundary.
  board.sync(cluster, 20.1);
  EXPECT_EQ(board.loads()[0], 0);
}

TEST(PeriodicBoardTest, VersionBumpsPerRefresh) {
  queueing::Cluster cluster(1);
  PeriodicBoard board(1, 1.0);
  const auto v0 = board.version();
  board.sync(cluster, 0.5);
  EXPECT_EQ(board.version(), v0);
  board.sync(cluster, 3.5);  // three boundaries crossed
  EXPECT_EQ(board.version(), v0 + 3);
}

TEST(PeriodicBoardTest, RejectsBadArgumentsAndBackwardTime) {
  EXPECT_THROW(PeriodicBoard(0, 1.0), std::invalid_argument);
  EXPECT_THROW(PeriodicBoard(1, 0.0), std::invalid_argument);
  queueing::Cluster cluster(1);
  PeriodicBoard board(1, 1.0);
  board.sync(cluster, 5.0);
  EXPECT_THROW(board.sync(cluster, 4.0), std::invalid_argument);
}

TEST(IndividualBoardTest, EntriesRefreshIndependently) {
  queueing::Cluster cluster(2);
  sim::Rng rng(1);
  IndividualBoard board(2, 10.0, rng);
  cluster.assign(0.1, 0, 100.0);
  cluster.assign(0.1, 1, 100.0);
  // After a full interval both entries must have refreshed at least once.
  board.sync(cluster, 10.0);
  EXPECT_EQ(board.loads(), (std::vector<int>{1, 1}));
  EXPECT_LE(board.mean_age(10.0), 10.0);
  EXPECT_GE(board.mean_age(10.0), 0.0);
}

TEST(IndividualBoardTest, AgesDifferAcrossEntries) {
  queueing::Cluster cluster(8);
  sim::Rng rng(2);
  IndividualBoard board(8, 5.0, rng);
  board.sync(cluster, 20.0);
  bool any_differ = false;
  for (int i = 1; i < 8; ++i) {
    if (board.entry_age(i, 20.0) != board.entry_age(0, 20.0)) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(ContinuousViewTest, ConstantDelayReadsExactPast) {
  queueing::Cluster cluster(
      2, ContinuousView::history_window_for(DelayKind::kConstant, 2.0));
  ContinuousView view(DelayKind::kConstant, 2.0, /*know_actual_age=*/false);
  sim::Rng rng(3);
  cluster.assign(1.0, 0, 100.0);  // server 0 loaded from t = 1 on
  cluster.advance_to(2.5);
  view.observe(cluster, 2.5, rng);  // sees state at t = 0.5
  EXPECT_EQ(view.loads(), (std::vector<int>{0, 0}));
  cluster.advance_to(4.0);
  view.observe(cluster, 4.0, rng);  // sees state at t = 2.0
  EXPECT_EQ(view.loads(), (std::vector<int>{1, 0}));
}

TEST(ContinuousViewTest, ReportedAgeDependsOnKnowledgeMode) {
  const double mean_delay = 4.0;
  queueing::Cluster cluster(
      1, ContinuousView::history_window_for(DelayKind::kUniformFull,
                                            mean_delay));
  cluster.advance_to(100.0);

  ContinuousView average_only(DelayKind::kUniformFull, mean_delay, false);
  sim::Rng rng(4);
  average_only.observe(cluster, 100.0, rng);
  EXPECT_DOUBLE_EQ(average_only.reported_age(), mean_delay);

  ContinuousView knows(DelayKind::kUniformFull, mean_delay, true);
  sim::Rng rng2(5);
  bool saw_non_mean = false;
  for (int i = 0; i < 50; ++i) {
    knows.observe(cluster, 100.0, rng2);
    EXPECT_DOUBLE_EQ(knows.reported_age(), knows.actual_delay());
    if (knows.reported_age() != mean_delay) saw_non_mean = true;
  }
  EXPECT_TRUE(saw_non_mean);
}

TEST(ContinuousViewTest, EarlyRequestsClampDelayToTimeZero) {
  queueing::Cluster cluster(
      1, ContinuousView::history_window_for(DelayKind::kConstant, 10.0));
  ContinuousView view(DelayKind::kConstant, 10.0, true);
  sim::Rng rng(6);
  cluster.advance_to(3.0);
  view.observe(cluster, 3.0, rng);  // delay 10 clamped to 3
  EXPECT_DOUBLE_EQ(view.actual_delay(), 3.0);
}

TEST(ContinuousViewTest, VersionBumpsPerObservation) {
  queueing::Cluster cluster(
      1, ContinuousView::history_window_for(DelayKind::kConstant, 1.0));
  ContinuousView view(DelayKind::kConstant, 1.0, false);
  sim::Rng rng(7);
  const auto v0 = view.version();
  cluster.advance_to(1.0);
  view.observe(cluster, 1.0, rng);
  view.observe(cluster, 1.0, rng);
  EXPECT_EQ(view.version(), v0 + 2);
}

TEST(ContinuousViewTest, HistoryWindowCoversEachKind) {
  EXPECT_DOUBLE_EQ(
      ContinuousView::history_window_for(DelayKind::kConstant, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(
      ContinuousView::history_window_for(DelayKind::kUniformHalf, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(
      ContinuousView::history_window_for(DelayKind::kUniformFull, 2.0), 4.0);
  EXPECT_GT(ContinuousView::history_window_for(DelayKind::kExponential, 2.0),
            20.0);
}

}  // namespace
}  // namespace stale::loadinfo
