// Tests for the fault-injection layer: spec parsing, the deterministic
// injector, crash semantics at the queueing layer, degraded refreshes in the
// information models, probability-vector sanitization, the staleness-cutoff
// wrapper, and the fault trial path end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "driver/report.h"
#include "fault/fault_injector.h"
#include "fault/fault_spec.h"
#include "fault/hardened_policy.h"
#include "loadinfo/continuous_view.h"
#include "loadinfo/individual_board.h"
#include "loadinfo/periodic_board.h"
#include "policy/policy_factory.h"
#include "queueing/cluster.h"

namespace stale::fault {
namespace {

// Scripted RefreshFaults: drops the first `drops` refreshes, then delivers
// everything with a fixed extra delay.
class FakeFaults final : public loadinfo::RefreshFaults {
 public:
  explicit FakeFaults(int drops, double delay = 0.0)
      : drops_(drops), delay_(delay) {}

  bool drop_refresh() override { return drops_-- > 0; }
  double refresh_delay() override { return delay_; }

 private:
  int drops_;
  double delay_;
};

// --- FaultSpec ------------------------------------------------------------

TEST(FaultSpecTest, EmptyMeansNoFaults) {
  const FaultSpec spec = FaultSpec::parse("");
  EXPECT_FALSE(spec.any());
  EXPECT_EQ(spec.to_string(), "");
  EXPECT_TRUE(std::isinf(spec.resolved_cutoff(4.0)));
}

TEST(FaultSpecTest, ParsesFullSpec) {
  const FaultSpec spec = FaultSpec::parse(
      "crash=0.01,down=5,semantics=requeue,loss=0.2,delay=0.5,estdrop=0.1,"
      "cutoff=2T,fallback=k_subset:2,retries=4,backoff=0.25");
  EXPECT_DOUBLE_EQ(spec.crash_rate, 0.01);
  EXPECT_DOUBLE_EQ(spec.mean_downtime, 5.0);
  EXPECT_EQ(spec.semantics, CrashSemantics::kRequeue);
  EXPECT_DOUBLE_EQ(spec.update_loss, 0.2);
  EXPECT_DOUBLE_EQ(spec.update_extra_delay, 0.5);
  EXPECT_DOUBLE_EQ(spec.estimator_dropout, 0.1);
  EXPECT_DOUBLE_EQ(spec.cutoff_value, 2.0);
  EXPECT_TRUE(spec.cutoff_in_intervals);
  EXPECT_EQ(spec.fallback_policy, "k_subset:2");
  EXPECT_EQ(spec.max_retries, 4);
  EXPECT_DOUBLE_EQ(spec.retry_backoff, 0.25);
  EXPECT_TRUE(spec.any());
}

TEST(FaultSpecTest, CutoffResolvesAbsoluteAndIntervalForms) {
  EXPECT_DOUBLE_EQ(FaultSpec::parse("cutoff=2T").resolved_cutoff(4.0), 8.0);
  const FaultSpec absolute = FaultSpec::parse("cutoff=5.5");
  EXPECT_FALSE(absolute.cutoff_in_intervals);
  EXPECT_DOUBLE_EQ(absolute.resolved_cutoff(4.0), 5.5);
}

TEST(FaultSpecTest, RejectsMalformedInput) {
  EXPECT_THROW(FaultSpec::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("crash"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("crash=abc"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("loss=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("loss=-0.1"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("crash=0.1,down=0"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("semantics=maybe"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("retries=-1"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("fallback="), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("delay=-0.5"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("estdrop=2"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("cutoff=-1"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("loss=0.1,=2"), std::invalid_argument);
}

TEST(FaultSpecTest, RejectsDuplicateKeys) {
  // Last-wins duplicates would silently disagree with the experimenter's
  // intent; every duplicate is a typo.
  EXPECT_THROW(FaultSpec::parse("loss=0.1,loss=0"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("crash=0.1,down=2,crash=0.2"),
               std::invalid_argument);
  EXPECT_THROW(FaultSpec::parse("cutoff=2T,cutoff=3"), std::invalid_argument);
  EXPECT_THROW(
      FaultSpec::parse("semantics=lost,semantics=requeue,crash=0.1,down=1"),
      std::invalid_argument);
  // Distinct keys still compose.
  EXPECT_NO_THROW(FaultSpec::parse("loss=0.1,delay=0.5,estdrop=0.2"));
}

TEST(FaultSpecTest, RoundTripsThroughToString) {
  const char* kSpec = "crash=0.01,down=5,semantics=requeue,loss=0.2,cutoff=2T";
  const FaultSpec spec = FaultSpec::parse(kSpec);
  const FaultSpec reparsed = FaultSpec::parse(spec.to_string());
  EXPECT_DOUBLE_EQ(reparsed.crash_rate, spec.crash_rate);
  EXPECT_DOUBLE_EQ(reparsed.mean_downtime, spec.mean_downtime);
  EXPECT_EQ(reparsed.semantics, spec.semantics);
  EXPECT_DOUBLE_EQ(reparsed.update_loss, spec.update_loss);
  EXPECT_DOUBLE_EQ(reparsed.cutoff_value, spec.cutoff_value);
  EXPECT_EQ(reparsed.cutoff_in_intervals, spec.cutoff_in_intervals);
}

TEST(FaultSpecTest, RoundTripsEveryFieldFamilyThroughToString) {
  const FaultSpec spec = FaultSpec::parse(
      "crash=0.02,down=3,semantics=lost,loss=0.1,delay=0.25,estdrop=0.05,"
      "cutoff=4,fallback=random,retries=5,backoff=0.2");
  const FaultSpec reparsed = FaultSpec::parse(spec.to_string());
  EXPECT_DOUBLE_EQ(reparsed.crash_rate, spec.crash_rate);
  EXPECT_DOUBLE_EQ(reparsed.mean_downtime, spec.mean_downtime);
  EXPECT_EQ(reparsed.semantics, spec.semantics);
  EXPECT_DOUBLE_EQ(reparsed.update_loss, spec.update_loss);
  EXPECT_DOUBLE_EQ(reparsed.update_extra_delay, spec.update_extra_delay);
  EXPECT_DOUBLE_EQ(reparsed.estimator_dropout, spec.estimator_dropout);
  EXPECT_DOUBLE_EQ(reparsed.cutoff_value, spec.cutoff_value);
  EXPECT_EQ(reparsed.cutoff_in_intervals, spec.cutoff_in_intervals);
  EXPECT_EQ(reparsed.fallback_policy, spec.fallback_policy);
  EXPECT_EQ(reparsed.max_retries, spec.max_retries);
  EXPECT_DOUBLE_EQ(reparsed.retry_backoff, spec.retry_backoff);
}

// --- crash semantics at the queueing layer --------------------------------

TEST(CrashSemanticsTest, CrashDisplacesJobsAndBlocksAssigns) {
  queueing::Cluster cluster(2);
  cluster.enable_job_tracking();
  cluster.assign_tagged(0.0, 0, 10.0, 1, 0.0);
  cluster.assign_tagged(0.5, 0, 10.0, 2, 0.5);

  std::vector<queueing::DisplacedJob> displaced;
  cluster.crash(1.0, 0, displaced);
  ASSERT_EQ(displaced.size(), 2u);
  EXPECT_EQ(displaced[0].tag, 1u);  // FIFO order
  EXPECT_EQ(displaced[1].tag, 2u);
  EXPECT_DOUBLE_EQ(displaced[1].size, 10.0);  // full demand, restart
  EXPECT_DOUBLE_EQ(displaced[1].born, 0.5);
  EXPECT_FALSE(cluster.up(0));
  EXPECT_EQ(cluster.loads()[0], 0);
  EXPECT_THROW(cluster.assign_tagged(1.5, 0, 1.0, 3, 1.5), std::logic_error);

  cluster.recover(2.0, 0);
  EXPECT_TRUE(cluster.up(0));
  cluster.assign_tagged(2.5, 0, 1.0, 3, 2.5);

  // The displaced jobs never complete; the new job does, with its tag.
  cluster.advance_to(100.0);
  std::vector<queueing::CompletedJob> done;
  cluster.drain_completions(done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].tag, 3u);
  EXPECT_DOUBLE_EQ(done[0].response, 1.0);
}

TEST(CrashSemanticsTest, RequeuedJobKeepsItsResponseClock) {
  queueing::Cluster cluster(2);
  cluster.enable_job_tracking();
  cluster.assign_tagged(0.0, 0, 4.0, 7, 0.0);
  std::vector<queueing::DisplacedJob> displaced;
  cluster.crash(1.0, 0, displaced);
  ASSERT_EQ(displaced.size(), 1u);
  // Restart on server 1 at the crash instant with the original born time.
  cluster.assign_tagged(1.0, 1, displaced[0].size, displaced[0].tag,
                        displaced[0].born);
  cluster.advance_to(10.0);
  std::vector<queueing::CompletedJob> done;
  cluster.drain_completions(done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].tag, 7u);
  // Finishes at 1 + 4 = 5; response measured from the original arrival at 0.
  EXPECT_DOUBLE_EQ(done[0].response, 5.0);
}

// --- FaultInjector --------------------------------------------------------

TEST(FaultInjectorTest, NoCrashesMeansNoTransitions) {
  sim::Rng rng(42);
  FaultInjector injector(FaultSpec::parse("loss=0.5"), 4, rng);
  EXPECT_TRUE(std::isinf(injector.next_transition_time()));
  queueing::Cluster cluster(4);
  cluster.enable_job_tracking();
  injector.advance_to(cluster, 1e9, nullptr);
  EXPECT_EQ(injector.stats().crashes, 0u);
  EXPECT_EQ(injector.transition_count(), 0u);
  EXPECT_EQ(injector.alive_count(), 4);
}

TEST(FaultInjectorTest, ScheduleIsSeedReproducible) {
  const FaultSpec spec = FaultSpec::parse("crash=0.05,down=2");
  std::vector<std::uint64_t> counts;
  for (int rep = 0; rep < 2; ++rep) {
    sim::Rng rng(99);
    FaultInjector injector(spec, 6, rng);
    queueing::Cluster cluster(6);
    cluster.enable_job_tracking();
    for (double t = 50.0; t <= 500.0; t += 50.0) {
      injector.advance_to(cluster, t, nullptr);
    }
    counts.push_back(injector.stats().crashes);
    counts.push_back(injector.stats().recoveries);
    counts.push_back(injector.transition_count());
    EXPECT_GT(injector.stats().crashes, 0u);
  }
  EXPECT_EQ(counts[0], counts[3]);
  EXPECT_EQ(counts[1], counts[4]);
  EXPECT_EQ(counts[2], counts[5]);
}

TEST(FaultInjectorTest, AliveMaskTracksClusterState) {
  sim::Rng rng(7);
  FaultInjector injector(FaultSpec::parse("crash=0.1,down=3"), 5, rng);
  queueing::Cluster cluster(5);
  cluster.enable_job_tracking();
  for (double t = 10.0; t <= 300.0; t += 10.0) {
    injector.advance_to(cluster, t, nullptr);
    int alive = 0;
    for (int s = 0; s < 5; ++s) {
      EXPECT_EQ(injector.alive()[static_cast<std::size_t>(s)] != 0,
                cluster.up(s));
      alive += cluster.up(s) ? 1 : 0;
    }
    EXPECT_EQ(injector.alive_count(), alive);
  }
  EXPECT_EQ(injector.stats().crashes,
            injector.stats().recoveries +
                (5u - static_cast<unsigned>(injector.alive_count())));
}

TEST(FaultInjectorTest, LostWorkCountsDisplacedJobs) {
  sim::Rng rng(11);
  FaultInjector injector(FaultSpec::parse("crash=0.5,down=1"), 2, rng);
  queueing::Cluster cluster(2);
  cluster.enable_job_tracking();
  // Keep both servers busy so crashes displace work.
  std::uint64_t tag = 0;
  for (double t = 0.1; t <= 60.0; t += 0.1) {
    injector.advance_to(cluster, t, nullptr);
    const int target = cluster.up(0) ? 0 : (cluster.up(1) ? 1 : -1);
    if (target >= 0) cluster.assign_tagged(t, target, 5.0, tag++, t);
  }
  EXPECT_GT(injector.stats().crashes, 0u);
  EXPECT_GT(injector.stats().jobs_lost, 0u);
  EXPECT_EQ(injector.stats().jobs_requeued, 0u);
}

// --- degraded refreshes in the information models -------------------------

TEST(RefreshFaultTest, PeriodicBoardDropStretchesAge) {
  queueing::Cluster cluster(2);
  loadinfo::PeriodicBoard board(2, 1.0);
  FakeFaults faults(/*drops=*/2);
  // Boundaries at 1 and 2 are dropped; the board still reports the time-0
  // prior and its age keeps growing past T.
  board.sync(cluster, 2.5, &faults);
  EXPECT_DOUBLE_EQ(board.age(2.5), 2.5);
  // The boundary at 3 survives.
  board.sync(cluster, 3.25, &faults);
  EXPECT_DOUBLE_EQ(board.age(3.25), 0.25);
}

TEST(RefreshFaultTest, PeriodicBoardDelayPostponesPublication) {
  queueing::Cluster cluster(2);
  loadinfo::PeriodicBoard board(2, 1.0);
  cluster.assign(0.5, 0, 100.0);
  FakeFaults faults(/*drops=*/0, /*delay=*/0.4);
  // The boundary-1 snapshot (load 1 on server 0) publishes at 1.4, not 1.
  board.sync(cluster, 1.2, &faults);
  EXPECT_EQ(board.loads()[0], 0);  // still the time-0 prior
  board.sync(cluster, 1.5, &faults);
  EXPECT_EQ(board.loads()[0], 1);
  EXPECT_DOUBLE_EQ(board.age(1.5), 0.5);  // age counts from measurement
}

TEST(RefreshFaultTest, NoFaultsMatchesNullInterface) {
  // A zero-fault FakeFaults must leave board behavior identical to passing
  // nullptr — the hook itself costs nothing.
  queueing::Cluster a(3), b(3);
  a.assign(0.2, 1, 50.0);
  b.assign(0.2, 1, 50.0);
  loadinfo::PeriodicBoard board_a(3, 1.0), board_b(3, 1.0);
  FakeFaults faults(0, 0.0);
  for (double t : {0.5, 1.1, 2.9, 7.0}) {
    board_a.sync(a, t, &faults);
    board_b.sync(b, t, nullptr);
    EXPECT_EQ(board_a.loads(), board_b.loads());
    EXPECT_DOUBLE_EQ(board_a.age(t), board_b.age(t));
    EXPECT_EQ(board_a.version(), board_b.version());
  }
}

TEST(RefreshFaultTest, IndividualBoardDropAgesOneEntry) {
  sim::Rng rng(5);
  queueing::Cluster cluster(3);
  loadinfo::IndividualBoard board(3, 1.0, rng);
  FakeFaults faults(/*drops=*/1);  // only the first due heartbeat is lost
  board.sync(cluster, 3.0, &faults);
  // Every entry eventually refreshed; ages stay below 2T for the survivors
  // and the board still serves a full vector.
  EXPECT_EQ(board.loads().size(), 3u);
  double max_age = 0.0;
  for (int s = 0; s < 3; ++s) max_age = std::max(max_age, board.entry_age(s, 3.0));
  EXPECT_LT(max_age, 2.0);
}

TEST(RefreshFaultTest, ContinuousViewDropReusesOldView) {
  queueing::Cluster cluster(2, /*history_window=*/50.0);
  loadinfo::ContinuousView view(loadinfo::DelayKind::kConstant, 1.0,
                                /*know_actual_age=*/true);
  sim::Rng rng(3);
  cluster.assign(0.5, 0, 100.0);
  cluster.advance_to(2.0);
  view.observe(cluster, 2.0, rng);  // sees the cluster at t = 1
  EXPECT_EQ(view.loads()[0], 1);
  EXPECT_DOUBLE_EQ(view.reported_age(), 1.0);

  FakeFaults faults(/*drops=*/1);
  cluster.advance_to(5.0);
  view.observe(cluster, 5.0, rng, &faults);  // refresh lost: stuck at t = 1
  EXPECT_EQ(view.loads()[0], 1);
  EXPECT_DOUBLE_EQ(view.reported_age(), 4.0);  // the view aged 3 more units
}

// --- sanitization and liveness-aware picking ------------------------------

TEST(SanitizeTest, HealthyVectorIsUntouched) {
  std::vector<double> p = {0.25, 0.5, 0.25};
  const std::vector<double> original = p;
  EXPECT_FALSE(policy::sanitize_probabilities(p, {}));
  EXPECT_EQ(p, original);
  // Unnormalized but positive-mass vectors are also left alone (samplers
  // normalize internally; repairing would perturb fault-free runs).
  std::vector<double> q = {1.0, 3.0};
  EXPECT_FALSE(policy::sanitize_probabilities(q, {}));
}

TEST(SanitizeTest, RepairsNaNAndNegativeEntries) {
  std::vector<double> p = {std::nan(""), 0.5, -2.0};
  EXPECT_TRUE(policy::sanitize_probabilities(p, {}));
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
  EXPECT_DOUBLE_EQ(p[2], 0.0);
}

TEST(SanitizeTest, AllZeroFallsBackToUniformOverAlive) {
  std::vector<double> p = {0.0, 0.0, 0.0};
  const std::vector<std::uint8_t> alive = {1, 0, 1};
  EXPECT_TRUE(policy::sanitize_probabilities(p, alive));
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
  EXPECT_DOUBLE_EQ(p[2], 0.5);
}

TEST(SanitizeTest, MassOnDeadServerIsRemoved) {
  std::vector<double> p = {0.9, 0.1};
  const std::vector<std::uint8_t> alive = {0, 1};
  EXPECT_TRUE(policy::sanitize_probabilities(p, alive));
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 0.1);
}

TEST(SanitizeTest, EverythingDeadDegradesToUniformOverAll) {
  std::vector<double> p = {1.0, 0.0};
  const std::vector<std::uint8_t> alive = {0, 0};
  EXPECT_TRUE(policy::sanitize_probabilities(p, alive));
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
}

TEST(SanitizeTest, PickUniformAliveRespectsMask) {
  sim::Rng rng(17);
  const std::vector<std::uint8_t> alive = {0, 1, 0, 1};
  for (int i = 0; i < 200; ++i) {
    const int pick = policy::pick_uniform_alive(alive, 4, rng);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
  // Empty mask: uniform over everyone.
  std::vector<int> seen(3, 0);
  for (int i = 0; i < 3000; ++i) {
    ++seen[static_cast<std::size_t>(policy::pick_uniform_alive({}, 3, rng))];
  }
  for (int count : seen) EXPECT_GT(count, 0);
}

// --- staleness cutoff -----------------------------------------------------

TEST(HardenedPolicyTest, FallsBackWhenInformationIsTooOld) {
  FaultStats stats;
  HardenedPolicy policy(policy::make_policy("basic_li"), /*max_staleness=*/2.0,
                        policy::make_policy("random"), &stats);
  const std::vector<int> loads = {0, 100, 100, 100};
  policy::DispatchContext context;
  context.loads = loads;
  context.lambda_total = 0.1;
  context.age = 0.5;  // fresh: Basic LI sends everything to server 0
  context.info_version = 1;
  sim::Rng rng(31);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(policy.select(context, rng), 0);
  EXPECT_EQ(stats.stale_fallbacks, 0u);

  context.age = 5.0;  // beyond the cutoff: uniform random fallback
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) {
    ++counts[static_cast<std::size_t>(policy.select(context, rng))];
  }
  EXPECT_EQ(stats.stale_fallbacks, 4000u);
  for (int count : counts) EXPECT_GT(count, 800);
  EXPECT_EQ(policy.name(), "basic_li");  // reports the wrapped policy's name
}

TEST(HardenedPolicyTest, HardenPolicyIsIdentityWithoutCutoff) {
  policy::PolicyPtr inner = policy::make_policy("basic_li");
  policy::SelectionPolicy* raw = inner.get();
  policy::PolicyPtr result =
      harden_policy(std::move(inner), FaultSpec{}, 4.0, nullptr);
  EXPECT_EQ(result.get(), raw);
}

TEST(HardenedPolicyTest, CutoffResolvesIntervalMultiples) {
  const FaultSpec spec = FaultSpec::parse("cutoff=2T");
  FaultStats stats;
  policy::PolicyPtr hardened = harden_policy(policy::make_policy("basic_li"),
                                             spec, /*T=*/4.0, &stats);
  auto* wrapper = dynamic_cast<HardenedPolicy*>(hardened.get());
  ASSERT_NE(wrapper, nullptr);
  EXPECT_DOUBLE_EQ(wrapper->max_staleness(), 8.0);
}

// --- fault trial path end to end ------------------------------------------

driver::ExperimentConfig fault_config(driver::UpdateModel model,
                                      const std::string& spec) {
  driver::ExperimentConfig config;
  config.model = model;
  config.num_servers = 8;
  config.lambda = 0.85;
  config.update_interval = 2.0;
  config.policy = "basic_li";
  config.num_jobs = 8'000;
  config.warmup_jobs = 2'000;
  config.trials = 2;
  config.fault = FaultSpec::parse(spec);
  return config;
}

TEST(FaultTrialTest, DegradedRunStaysFiniteAndCountsFaults) {
  const auto config = fault_config(
      driver::UpdateModel::kPeriodic,
      "crash=0.01,down=2,loss=0.2,delay=0.5,cutoff=2T,fallback=random");
  const driver::ExperimentResult result = driver::run_experiment(config);
  EXPECT_TRUE(std::isfinite(result.mean()));
  EXPECT_GT(result.mean(), 0.0);
  EXPECT_GT(result.faults.crashes, 0u);
  EXPECT_GT(result.faults.updates_lost, 0u);
  EXPECT_GT(result.faults.updates_delayed, 0u);
  EXPECT_GT(result.faults.stale_fallbacks, 0u);
}

TEST(FaultTrialTest, LostVersusRequeueSemantics) {
  const auto lost = fault_config(driver::UpdateModel::kPeriodic,
                                 "crash=0.02,down=2,semantics=lost");
  const driver::ExperimentResult lost_result = driver::run_experiment(lost);
  EXPECT_GT(lost_result.faults.jobs_lost, 0u);
  EXPECT_EQ(lost_result.faults.jobs_requeued, 0u);

  const auto requeue = fault_config(driver::UpdateModel::kPeriodic,
                                    "crash=0.02,down=2,semantics=requeue");
  const driver::ExperimentResult requeue_result =
      driver::run_experiment(requeue);
  EXPECT_GT(requeue_result.faults.jobs_requeued, 0u);
}

TEST(FaultTrialTest, AllBoardModelsSurviveHeavyFaults) {
  for (const auto model :
       {driver::UpdateModel::kPeriodic, driver::UpdateModel::kContinuous,
        driver::UpdateModel::kIndividual}) {
    auto config = fault_config(
        model, "crash=0.02,down=3,loss=0.4,delay=1.0,estdrop=0.3,cutoff=3T");
    config.rate_estimator = "ewma:50";
    const driver::ExperimentResult result = driver::run_experiment(config);
    EXPECT_TRUE(std::isfinite(result.mean()))
        << driver::update_model_name(model);
    EXPECT_GT(result.faults.estimator_drops, 0u)
        << driver::update_model_name(model);
  }
}

TEST(FaultTrialTest, UpdateOnAccessRejectsFaults) {
  const auto config =
      fault_config(driver::UpdateModel::kUpdateOnAccess, "loss=0.1");
  EXPECT_THROW(driver::run_experiment(config), std::invalid_argument);
}

TEST(FaultTrialTest, ExperimentStatsAreSumOfTrialStats) {
  const auto config = fault_config(driver::UpdateModel::kPeriodic,
                                   "crash=0.01,down=2,loss=0.1");
  const driver::ExperimentResult experiment = driver::run_experiment(config);
  FaultStats summed;
  for (int trial = 0; trial < config.trials; ++trial) {
    const driver::TrialResult one =
        driver::run_trial(config, sim::trial_seed(config.base_seed, trial));
    summed.merge(one.faults);
  }
  EXPECT_EQ(summed, experiment.faults);
}

TEST(FaultTrialTest, FaultFreeSpecMatchesBaselinePathBitForBit) {
  // A default FaultSpec takes the non-fault trial path; the acceptance
  // criterion is that adding the fault *layer* changed nothing for existing
  // configurations.
  auto config = fault_config(driver::UpdateModel::kPeriodic, "");
  const driver::TrialResult a = driver::run_trial(config, 1234);
  config.fault = FaultSpec{};
  const driver::TrialResult b = driver::run_trial(config, 1234);
  EXPECT_EQ(a.mean_response, b.mean_response);
  EXPECT_EQ(a.measured_jobs, b.measured_jobs);
}

// --- reporting ------------------------------------------------------------

TEST(FaultReportTest, FormatsOnlyNonzeroCounters) {
  FaultStats stats;
  EXPECT_EQ(driver::format_fault_stats(stats), "none");
  stats.crashes = 3;
  stats.updates_lost = 17;
  EXPECT_EQ(driver::format_fault_stats(stats), "crashes=3 updates_lost=17");
}

TEST(FaultReportTest, JsonReportCarriesFaultCounters) {
  auto config = fault_config(driver::UpdateModel::kPeriodic,
                             "crash=0.01,down=2,loss=0.2");
  config.num_jobs = 4'000;
  config.warmup_jobs = 1'000;
  const driver::ExperimentResult result = driver::run_experiment(config);
  std::ostringstream os;
  driver::write_json_report(os, config, result, config.trials);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"fault_spec\": \"crash=0.01"), std::string::npos);
  EXPECT_NE(json.find("\"crashes\": "), std::string::npos);
  EXPECT_NE(json.find("\"mean_response\": "), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

}  // namespace
}  // namespace stale::fault
