#include "policy/policy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "policy/k_subset_policy.h"
#include "policy/policy_factory.h"
#include "policy/random_policy.h"
#include "policy/threshold_policy.h"
#include "core/ksubset_analysis.h"

namespace stale::policy {
namespace {

DispatchContext make_context(const std::vector<int>& loads) {
  DispatchContext context;
  context.loads = loads;
  context.lambda_total = static_cast<double>(loads.size()) * 0.9;
  return context;
}

TEST(SampleDistinctTest, ProducesDistinctInRange) {
  sim::Rng rng(1);
  std::vector<int> out(5);
  for (int rep = 0; rep < 1000; ++rep) {
    sample_distinct(10, 5, rng, out);
    std::set<int> seen(out.begin(), out.end());
    ASSERT_EQ(seen.size(), 5u);
    ASSERT_GE(*seen.begin(), 0);
    ASSERT_LT(*seen.rbegin(), 10);
  }
}

TEST(SampleDistinctTest, FullDrawIsPermutation) {
  sim::Rng rng(2);
  std::vector<int> out(6);
  sample_distinct(6, 6, rng, out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(SampleDistinctTest, EachElementEquallyLikely) {
  sim::Rng rng(3);
  constexpr int kReps = 60000;
  std::vector<int> counts(10, 0);
  std::vector<int> out(3);
  for (int rep = 0; rep < kReps; ++rep) {
    sample_distinct(10, 3, rng, out);
    for (int v : out) ++counts[static_cast<std::size_t>(v)];
  }
  const double expected = kReps * 3.0 / 10.0;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.05);
  }
}

TEST(SampleDistinctTest, RejectsBadArguments) {
  sim::Rng rng(4);
  std::vector<int> out(3);
  EXPECT_THROW(sample_distinct(2, 3, rng, out), std::invalid_argument);
  std::vector<int> wrong(2);
  EXPECT_THROW(sample_distinct(10, 3, rng, wrong), std::invalid_argument);
}

TEST(RandomPolicyTest, IgnoresLoadsAndIsUniform) {
  RandomPolicy policy;
  const std::vector<int> loads = {100, 0, 100, 100};
  const DispatchContext context = make_context(loads);
  sim::Rng rng(5);
  std::vector<int> counts(4, 0);
  constexpr int kReps = 80000;
  for (int i = 0; i < kReps; ++i) {
    ++counts[static_cast<std::size_t>(policy.select(context, rng))];
  }
  for (int c : counts) EXPECT_NEAR(c, kReps / 4.0, kReps * 0.01);
  EXPECT_EQ(policy.name(), "random");
  EXPECT_EQ(policy.info_demand(), 0);
}

TEST(KSubsetPolicyTest, FullSubsetPicksGlobalMinimum) {
  KSubsetPolicy policy(4);
  const std::vector<int> loads = {3, 1, 2, 5};
  const DispatchContext context = make_context(loads);
  sim::Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(policy.select(context, rng), 1);
  }
}

TEST(KSubsetPolicyTest, TiesBrokenUniformly) {
  KSubsetPolicy policy(3);
  const std::vector<int> loads = {0, 0, 0};
  const DispatchContext context = make_context(loads);
  sim::Rng rng(7);
  std::vector<int> counts(3, 0);
  constexpr int kReps = 60000;
  for (int i = 0; i < kReps; ++i) {
    ++counts[static_cast<std::size_t>(policy.select(context, rng))];
  }
  for (int c : counts) EXPECT_NEAR(c, kReps / 3.0, kReps * 0.015);
}

TEST(KSubsetPolicyTest, EmpiricalRankDistributionMatchesEq1) {
  // With distinct loads, the chance the request lands on the rank-i server
  // must follow Eq. 1. This ties the simulated policy to the analytic model.
  constexpr int kN = 10;
  constexpr int kK = 3;
  KSubsetPolicy policy(kK);
  std::vector<int> loads(kN);
  for (int i = 0; i < kN; ++i) loads[static_cast<std::size_t>(i)] = i;  // rank == index + 1
  const DispatchContext context = make_context(loads);
  const auto expected = core::ksubset_rank_probabilities(kN, kK);
  sim::Rng rng(8);
  constexpr int kReps = 300000;
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kReps; ++i) {
    ++counts[static_cast<std::size_t>(policy.select(context, rng))];
  }
  for (int i = 0; i < kN; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<std::size_t>(i)]) / kReps,
                expected[static_cast<std::size_t>(i)], 0.006)
        << "rank " << i + 1;
  }
}

TEST(KSubsetPolicyTest, KLargerThanNClampsToN) {
  KSubsetPolicy policy(99);
  const std::vector<int> loads = {5, 2, 7};
  const DispatchContext context = make_context(loads);
  sim::Rng rng(9);
  EXPECT_EQ(policy.select(context, rng), 1);
}

TEST(KSubsetPolicyTest, NameAndInfoDemand) {
  KSubsetPolicy policy(2);
  EXPECT_EQ(policy.name(), "k_subset:2");
  EXPECT_EQ(policy.info_demand(), 2);
  EXPECT_THROW(KSubsetPolicy(0), std::invalid_argument);
}

TEST(ThresholdPolicyTest, PicksUniformlyAmongLightServers) {
  ThresholdPolicy policy(SelectionPolicy::kAllServers, 2);
  const std::vector<int> loads = {1, 5, 2, 9};
  const DispatchContext context = make_context(loads);
  sim::Rng rng(10);
  std::vector<int> counts(4, 0);
  constexpr int kReps = 60000;
  for (int i = 0; i < kReps; ++i) {
    ++counts[static_cast<std::size_t>(policy.select(context, rng))];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_EQ(counts[3], 0);
  EXPECT_NEAR(counts[0], kReps / 2.0, kReps * 0.015);
  EXPECT_NEAR(counts[2], kReps / 2.0, kReps * 0.015);
}

TEST(ThresholdPolicyTest, FallsBackToLeastLoadedOfSample) {
  ThresholdPolicy policy(SelectionPolicy::kAllServers, 0);
  const std::vector<int> loads = {4, 2, 9};  // nobody at/below threshold 0
  const DispatchContext context = make_context(loads);
  sim::Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(policy.select(context, rng), 1);
  }
}

TEST(ThresholdPolicyTest, HugeThresholdIsObliviousRandom) {
  ThresholdPolicy policy(SelectionPolicy::kAllServers, 1 << 20);
  const std::vector<int> loads = {100, 0, 50};
  const DispatchContext context = make_context(loads);
  sim::Rng rng(12);
  std::vector<int> counts(3, 0);
  constexpr int kReps = 60000;
  for (int i = 0; i < kReps; ++i) {
    ++counts[static_cast<std::size_t>(policy.select(context, rng))];
  }
  for (int c : counts) EXPECT_NEAR(c, kReps / 3.0, kReps * 0.015);
}

TEST(ThresholdPolicyTest, SampledVariantOnlySeesKServers) {
  // With k = 1 the threshold rule degenerates to uniform random regardless
  // of the threshold.
  ThresholdPolicy policy(1, 0);
  const std::vector<int> loads = {9, 0, 9, 9};
  const DispatchContext context = make_context(loads);
  sim::Rng rng(13);
  std::vector<int> counts(4, 0);
  constexpr int kReps = 40000;
  for (int i = 0; i < kReps; ++i) {
    ++counts[static_cast<std::size_t>(policy.select(context, rng))];
  }
  for (int c : counts) EXPECT_NEAR(c, kReps / 4.0, kReps * 0.02);
}

TEST(ThresholdPolicyTest, NameAndValidation) {
  EXPECT_EQ(ThresholdPolicy(2, 8).name(), "threshold:2:8");
  EXPECT_EQ(ThresholdPolicy(SelectionPolicy::kAllServers, 8).name(),
            "threshold:all:8");
  EXPECT_THROW(ThresholdPolicy(0, 1), std::invalid_argument);
  EXPECT_THROW(ThresholdPolicy(2, -1), std::invalid_argument);
}

TEST(PolicyFactoryTest, BuildsEveryKind) {
  EXPECT_EQ(make_policy("random")->name(), "random");
  EXPECT_EQ(make_policy("k_subset:3")->name(), "k_subset:3");
  EXPECT_EQ(make_policy("threshold:2:16")->name(), "threshold:2:16");
  EXPECT_EQ(make_policy("threshold:all:4")->name(), "threshold:all:4");
  EXPECT_EQ(make_policy("basic_li")->name(), "basic_li");
  EXPECT_EQ(make_policy("aggressive_li")->name(), "aggressive_li");
  EXPECT_EQ(make_policy("hybrid_li")->name(), "hybrid_li");
  EXPECT_EQ(make_policy("basic_li_k:2")->name(), "basic_li_k:2");
}

TEST(PolicyFactoryTest, RejectsMalformedSpecs) {
  EXPECT_THROW(make_policy(""), std::invalid_argument);
  EXPECT_THROW(make_policy("unknown"), std::invalid_argument);
  EXPECT_THROW(make_policy("k_subset"), std::invalid_argument);
  EXPECT_THROW(make_policy("k_subset:x"), std::invalid_argument);
  EXPECT_THROW(make_policy("k_subset:2:3"), std::invalid_argument);
  EXPECT_THROW(make_policy("threshold:2"), std::invalid_argument);
  EXPECT_THROW(make_policy("basic_li:1"), std::invalid_argument);
}

TEST(PolicyFactoryTest, KnownSpecsListIsNonEmpty) {
  EXPECT_GE(known_policy_specs().size(), 7u);
}

}  // namespace
}  // namespace stale::policy
