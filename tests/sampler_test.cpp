#include "core/sampler.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.h"

namespace stale::core {
namespace {

// Draws `draws` samples and returns empirical frequencies.
template <typename Sampler>
std::vector<double> empirical(const Sampler& sampler, int size, int draws,
                              std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<int> counts(static_cast<std::size_t>(size), 0);
  for (int i = 0; i < draws; ++i) {
    const int idx = sampler.sample(rng);
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, size);
    ++counts[static_cast<std::size_t>(idx)];
  }
  std::vector<double> freq(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    freq[i] = static_cast<double>(counts[i]) / draws;
  }
  return freq;
}

TEST(DiscreteSamplerTest, MatchesTargetDistribution) {
  const std::vector<double> p = {0.1, 0.2, 0.3, 0.4};
  const DiscreteSampler sampler{std::span<const double>(p)};
  const auto freq = empirical(sampler, 4, 200000, 101);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(freq[i], p[i], 0.01);
  }
}

TEST(DiscreteSamplerTest, NormalizesUnnormalizedInput) {
  const std::vector<double> p = {2.0, 6.0};
  const DiscreteSampler sampler{std::span<const double>(p)};
  const auto freq = empirical(sampler, 2, 100000, 103);
  EXPECT_NEAR(freq[0], 0.25, 0.01);
  EXPECT_NEAR(freq[1], 0.75, 0.01);
}

TEST(DiscreteSamplerTest, ZeroWeightNeverSampled) {
  const std::vector<double> p = {0.0, 1.0, 0.0};
  const DiscreteSampler sampler{std::span<const double>(p)};
  sim::Rng rng(107);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(sampler.sample(rng), 1);
  }
}

TEST(DiscreteSamplerTest, SingleElement) {
  const std::vector<double> p = {1.0};
  const DiscreteSampler sampler{std::span<const double>(p)};
  sim::Rng rng(109);
  EXPECT_EQ(sampler.sample(rng), 0);
}

TEST(DiscreteSamplerTest, RejectsBadInput) {
  const std::vector<double> empty;
  EXPECT_THROW(DiscreteSampler{std::span<const double>(empty)},
               std::invalid_argument);
  const std::vector<double> negative = {0.5, -0.5};
  EXPECT_THROW(DiscreteSampler{std::span<const double>(negative)},
               std::invalid_argument);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(DiscreteSampler{std::span<const double>(zeros)},
               std::invalid_argument);
}

TEST(AliasSamplerTest, MatchesTargetDistribution) {
  const std::vector<double> p = {0.05, 0.15, 0.5, 0.05, 0.25};
  const AliasSampler sampler{std::span<const double>(p)};
  const auto freq = empirical(sampler, 5, 300000, 211);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(freq[i], p[i], 0.01);
  }
}

TEST(AliasSamplerTest, UniformInput) {
  const std::vector<double> p(8, 0.125);
  const AliasSampler sampler{std::span<const double>(p)};
  const auto freq = empirical(sampler, 8, 200000, 213);
  for (double f : freq) EXPECT_NEAR(f, 0.125, 0.01);
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  const std::vector<double> p = {0.0, 0.7, 0.3, 0.0};
  const AliasSampler sampler{std::span<const double>(p)};
  sim::Rng rng(217);
  for (int i = 0; i < 20000; ++i) {
    const int idx = sampler.sample(rng);
    ASSERT_TRUE(idx == 1 || idx == 2);
  }
}

TEST(AliasSamplerTest, AgreesWithDiscreteSampler) {
  const std::vector<double> p = {0.3, 0.1, 0.05, 0.25, 0.2, 0.1};
  const DiscreteSampler discrete{std::span<const double>(p)};
  const AliasSampler alias{std::span<const double>(p)};
  const auto f1 = empirical(discrete, 6, 200000, 301);
  const auto f2 = empirical(alias, 6, 200000, 302);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(f1[i], f2[i], 0.012);
  }
}

TEST(AliasSamplerTest, RejectsBadInput) {
  const std::vector<double> empty;
  EXPECT_THROW(AliasSampler{std::span<const double>(empty)},
               std::invalid_argument);
  const std::vector<double> zeros = {0.0};
  EXPECT_THROW(AliasSampler{std::span<const double>(zeros)},
               std::invalid_argument);
}

}  // namespace
}  // namespace stale::core
