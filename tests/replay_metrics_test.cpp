// Tests for obs::ReplayMetrics (src/obs/replay_metrics.h): the JSON
// round-trip both playdiff endpoints rely on, and the diff semantics that
// make the record->replay CI gate pass on agreement and fail loudly on
// divergence.
#include "obs/replay_metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace stale::obs {
namespace {

ReplayMetrics sample_metrics() {
  ReplayMetrics metrics;
  metrics.source = "live";
  metrics.jobs = 300;
  metrics.duration = 7.5;
  metrics.mean_response = 0.1;
  metrics.p50_response = 0.08;
  metrics.p90_response = 0.22;
  metrics.p99_response = 0.34;
  metrics.dispatch_share = {0.26, 0.24, 0.25, 0.25};
  metrics.has_herd = true;
  metrics.herd_autocorr = 0.4;
  metrics.herd_amplitude = 2.5;
  metrics.herding = false;
  return metrics;
}

TEST(ReplayMetricsJsonTest, RoundTripsEveryField) {
  std::stringstream stream;
  write_replay_metrics(stream, sample_metrics());
  const ReplayMetrics parsed = parse_replay_metrics(stream);
  EXPECT_EQ(parsed.source, "live");
  EXPECT_EQ(parsed.jobs, 300u);
  EXPECT_DOUBLE_EQ(parsed.duration, 7.5);
  EXPECT_DOUBLE_EQ(parsed.mean_response, 0.1);
  EXPECT_DOUBLE_EQ(parsed.p50_response, 0.08);
  EXPECT_DOUBLE_EQ(parsed.p90_response, 0.22);
  EXPECT_DOUBLE_EQ(parsed.p99_response, 0.34);
  ASSERT_EQ(parsed.dispatch_share.size(), 4u);
  EXPECT_DOUBLE_EQ(parsed.dispatch_share[1], 0.24);
  EXPECT_TRUE(parsed.has_herd);
  EXPECT_DOUBLE_EQ(parsed.herd_autocorr, 0.4);
  EXPECT_DOUBLE_EQ(parsed.herd_amplitude, 2.5);
  EXPECT_FALSE(parsed.herding);
}

TEST(ReplayMetricsJsonTest, RoundTripsWithoutHerdBlock) {
  ReplayMetrics metrics = sample_metrics();
  metrics.has_herd = false;
  std::stringstream stream;
  write_replay_metrics(stream, metrics);
  const ReplayMetrics parsed = parse_replay_metrics(stream);
  EXPECT_FALSE(parsed.has_herd);
}

TEST(ReplayMetricsJsonTest, RejectsGarbage) {
  for (const char* text : {"", "{}", "not json at all",
                           "{\"source\": \"live\"}"}) {
    std::istringstream stream{std::string(text)};
    EXPECT_THROW(parse_replay_metrics(stream), std::invalid_argument) << text;
  }
}

TEST(ReplayMetricsDiffTest, IdenticalMetricsPass) {
  const ReplayMetrics metrics = sample_metrics();
  EXPECT_TRUE(diff_replay_metrics(metrics, metrics, DiffTolerance{}).empty());
}

TEST(ReplayMetricsDiffTest, SmallGapsWithinTolerancePass) {
  const ReplayMetrics live = sample_metrics();
  ReplayMetrics sim = live;
  sim.source = "sim";
  sim.mean_response = live.mean_response * 1.2;  // 20% < default 30%
  sim.p99_response = live.p99_response * 0.8;
  sim.dispatch_share = {0.28, 0.22, 0.26, 0.24};  // TV 0.04 < 0.15
  EXPECT_TRUE(diff_replay_metrics(live, sim, DiffTolerance{}).empty());
}

TEST(ReplayMetricsDiffTest, ResponseDivergenceFails) {
  const ReplayMetrics live = sample_metrics();
  ReplayMetrics sim = live;
  sim.p90_response = live.p90_response * 2.0;  // 50% relative gap
  const auto failures = diff_replay_metrics(live, sim, DiffTolerance{});
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("p90"), std::string::npos);
}

TEST(ReplayMetricsDiffTest, DispatchShareDivergenceFails) {
  const ReplayMetrics live = sample_metrics();
  ReplayMetrics sim = live;
  sim.dispatch_share = {0.70, 0.10, 0.10, 0.10};  // herded replay
  const auto failures = diff_replay_metrics(live, sim, DiffTolerance{});
  ASSERT_FALSE(failures.empty());
  EXPECT_NE(failures[0].find("share"), std::string::npos);
}

TEST(ReplayMetricsDiffTest, HerdVerdictGatedByFlag) {
  const ReplayMetrics live = sample_metrics();
  ReplayMetrics sim = live;
  sim.herding = true;
  // Off by default: a verdict flip on a short run is reported as noise.
  EXPECT_TRUE(diff_replay_metrics(live, sim, DiffTolerance{}).empty());
  DiffTolerance strict;
  strict.require_herd_match = true;
  const auto failures = diff_replay_metrics(live, sim, strict);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("herd"), std::string::npos);
}

TEST(ReplayMetricsDiffTest, LooseToleranceAcceptsWhatDefaultRejects) {
  const ReplayMetrics live = sample_metrics();
  ReplayMetrics sim = live;
  sim.mean_response = live.mean_response * 1.45;
  EXPECT_FALSE(diff_replay_metrics(live, sim, DiffTolerance{}).empty());
  DiffTolerance loose;
  loose.response = 0.5;
  EXPECT_TRUE(diff_replay_metrics(live, sim, loose).empty());
}

TEST(ReplayMetricsDiffTest, BothZeroResponsesAgree) {
  // relative_gap must treat 0-vs-0 as equal, not divide by zero.
  ReplayMetrics a;
  a.dispatch_share = {1.0};
  EXPECT_TRUE(diff_replay_metrics(a, a, DiffTolerance{}).empty());
}

}  // namespace
}  // namespace stale::obs
