// Loopback integration test for the live dispatcher service: launches the
// real staleload_backend x4 + staleload_lb + staleload_loadgen binaries on
// 127.0.0.1 (ephemeral ports parsed from their status lines), drives each
// policy for several wall-clock seconds of open-loop Poisson load, then
// imports the dispatcher's exported trace and runs the herd detector on it.
//
// The headline assertion is the paper's Figure 2 story on physical sockets:
// greedy dispatch (k_subset:n) concentrates each update phase's jobs onto
// the apparent-minimum backend, so its per-phase dispatch concentration
// strictly exceeds Basic LI's at the same update period. Validated against
// live runs: greedy lands around 0.7-0.95 mean concentration, basic_li
// around 0.3-0.5, so the strict comparison has a wide margin.
//
// Binary paths arrive as compile definitions ($<TARGET_FILE:...>), so the
// test always runs the binaries from its own build tree.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "obs/herd.h"
#include "obs/trace_import.h"
#include "obs/trace_recorder.h"

namespace {

// One child process started through popen (stdout is the handle we parse
// status lines from; pclose waits for exit).
class Proc {
 public:
  explicit Proc(const std::string& command)
      : pipe_(popen(command.c_str(), "r")) {}
  ~Proc() { close(); }
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;

  bool ok() const { return pipe_ != nullptr; }

  // Blocks until a line containing `token` arrives (or EOF); returns it.
  std::string wait_for(const std::string& token) {
    char buffer[512];
    while (pipe_ != nullptr && std::fgets(buffer, sizeof(buffer), pipe_)) {
      const std::string line(buffer);
      if (line.find(token) != std::string::npos) return line;
    }
    return "";
  }

  // Drains remaining output and waits for the child; returns its exit code
  // (-1 if it died on a signal or was never started).
  int close() {
    if (pipe_ == nullptr) return -1;
    char buffer[512];
    while (std::fgets(buffer, sizeof(buffer), pipe_) != nullptr) {
    }
    const int status = pclose(pipe_);
    pipe_ = nullptr;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

 private:
  FILE* pipe_ = nullptr;
};

int parse_port(const std::string& line, const std::string& key) {
  const auto pos = line.find(key + "=");
  if (pos == std::string::npos) return 0;
  return std::atoi(line.c_str() + pos + key.size() + 1);
}

struct LiveRun {
  stale::obs::HerdReport herd;
  long completed = 0;
};

constexpr int kBackends = 4;
constexpr double kUpdatePeriod = 1.0;

// Runs the full backend/dispatcher/loadgen trio for `policy` and returns the
// herd diagnostic of the dispatcher's recorded trace.
LiveRun run_policy(const std::string& policy, const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "staleload_" + tag;
  const std::string prefix = dir + "/lb";
  std::ignore = std::system(("mkdir -p " + dir).c_str());

  // Dispatcher first: ephemeral ports, long enough to cover the load window.
  Proc lb(std::string(STALELOAD_LB_BIN) + " --backends " +
          std::to_string(kBackends) + " --policy '" + policy +
          "' --schedule periodic --update-period " +
          std::to_string(kUpdatePeriod) +
          " --duration 11 --seed 3 --trace-out " + prefix + " 2>&1");
  EXPECT_TRUE(lb.ok());
  const std::string listening = lb.wait_for("LB LISTENING");
  const int tcp = parse_port(listening, "tcp");
  const int udp = parse_port(listening, "udp");
  EXPECT_GT(tcp, 0) << "no LISTENING line from staleload_lb";
  EXPECT_GT(udp, 0);

  std::vector<std::unique_ptr<Proc>> backends;
  for (int i = 0; i < kBackends; ++i) {
    backends.push_back(std::make_unique<Proc>(
        std::string(STALELOAD_BACKEND_BIN) + " --index " + std::to_string(i) +
        " --report-to 127.0.0.1:" + std::to_string(udp) +
        " --update-period " + std::to_string(kUpdatePeriod) +
        " --mean-service 0.06 --seed " + std::to_string(20 + i) +
        " --duration 12 2>&1"));
    EXPECT_TRUE(backends.back()->ok());
  }
  EXPECT_NE(lb.wait_for("LB READY"), "") << "backends never registered";

  // Open loop for > 5 wall seconds at rho ~ 0.7 aggregate.
  const std::string json_path = dir + "/loadgen.json";
  Proc loadgen(std::string(STALELOAD_LOADGEN_BIN) + " --target 127.0.0.1:" +
               std::to_string(tcp) +
               " --lambda 45 --duration 6 --drain 2 --warmup 20 --seed 7"
               " --json " + json_path + " 2>&1");
  EXPECT_EQ(loadgen.close(), 0) << "loadgen failed (no completions?)";
  for (auto& backend : backends) backend->close();
  EXPECT_EQ(lb.close(), 0) << "dispatcher exited nonzero";

  LiveRun run;
  {
    std::ifstream json(json_path);
    std::stringstream text;
    text << json.rdbuf();
    const std::string body = text.str();
    const auto pos = body.find("\"completed\": ");
    EXPECT_NE(pos, std::string::npos) << "no loadgen JSON at " << json_path;
    if (pos != std::string::npos) {
      run.completed = std::atol(body.c_str() + pos + 13);
    }
  }

  std::ifstream events(prefix + ".events.csv");
  EXPECT_TRUE(events.good()) << "dispatcher wrote no trace";
  stale::obs::TraceRecorder recorder;
  const stale::obs::ImportStats stats =
      stale::obs::import_events_csv(events, recorder);
  EXPECT_GT(stats.imported, 0);
  EXPECT_EQ(stats.malformed, 0);

  stale::obs::HerdOptions options;
  options.phase_length = kUpdatePeriod;
  options.num_servers = kBackends;
  run.herd = stale::obs::detect_herd(recorder, options);
  return run;
}

// Declared with a helper so a failure in run_policy's EXPECTs still reports
// through the single test below (popen chains make per-step fixtures
// awkward).
TEST(NetLoopbackTest, GreedyHerdsMoreThanBasicLiOnRealSockets) {
  const LiveRun greedy = run_policy("k_subset:" + std::to_string(kBackends),
                                    "greedy");
  const LiveRun basic_li = run_policy("basic_li", "basic_li");

  // Both runs must have actually served load end to end.
  EXPECT_GT(greedy.completed, 50);
  EXPECT_GT(basic_li.completed, 50);
  EXPECT_GE(greedy.herd.phases, 3);
  EXPECT_GE(basic_li.herd.phases, 3);

  // The acceptance criterion: greedy's per-phase dispatch concentration
  // strictly exceeds Basic LI's at the same update period.
  EXPECT_GT(greedy.herd.mean_concentration,
            basic_li.herd.mean_concentration);

  // And greedy visibly piles up: a typical phase routes the majority of its
  // dispatches to one of the four backends.
  EXPECT_GT(greedy.herd.mean_concentration, 0.5);
}

}  // namespace
