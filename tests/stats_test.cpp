#include "sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace stale::sim {
namespace {

TEST(RunningStatsTest, EmptySummaryIsZeroed) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.ci90_half_width(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 5.0);
  EXPECT_EQ(stats.max(), 5.0);
}

TEST(RunningStatsTest, MatchesHandComputedMoments) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, Ci90MatchesHandComputation) {
  RunningStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) stats.add(x);
  // sd = sqrt(2.5), se = sd/sqrt(5), t(4, 0.95) = 2.132.
  const double expected = 2.132 * std::sqrt(2.5) / std::sqrt(5.0);
  EXPECT_NEAR(stats.ci90_half_width(), expected, 1e-9);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats whole;
  const std::vector<double> xs = {1.5, -2.0, 3.25, 0.0, 9.5, 4.0, -1.0};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 3 ? a : b).add(xs[i]);
    whole.add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-12);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(StudentTTest, KnownQuantiles) {
  EXPECT_NEAR(student_t90(1), 6.314, 1e-9);
  EXPECT_NEAR(student_t90(4), 2.132, 1e-9);
  EXPECT_NEAR(student_t90(9), 1.833, 1e-9);
  EXPECT_NEAR(student_t90(30), 1.697, 1e-9);
  EXPECT_NEAR(student_t90(1000000), 1.645, 1e-9);
}

TEST(StudentTTest, MonotoneDecreasingInDf) {
  double prev = student_t90(1);
  for (std::size_t df = 2; df <= 200; ++df) {
    const double t = student_t90(df);
    EXPECT_LE(t, prev + 1e-12) << "df=" << df;
    prev = t;
  }
  EXPECT_GE(prev, 1.645);
}

TEST(PercentileTest, ExactOnSmallSorted) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(percentile_sorted(xs, 0.0), 1.0);
  EXPECT_EQ(percentile_sorted(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 1.0 / 3.0), 2.0);
}

TEST(PercentileTest, SingleElement) {
  const std::vector<double> xs = {7.0};
  EXPECT_EQ(percentile_sorted(xs, 0.5), 7.0);
}

TEST(PercentileTest, RejectsEmpty) {
  EXPECT_THROW(percentile_sorted({}, 0.5), std::invalid_argument);
}

TEST(BoxStatsTest, FiveNumberSummary) {
  const std::vector<double> xs = {9.0, 1.0, 5.0, 3.0, 7.0};
  const BoxStats box = BoxStats::from_sample(xs);
  EXPECT_EQ(box.min, 1.0);
  EXPECT_EQ(box.median, 5.0);
  EXPECT_EQ(box.max, 9.0);
  EXPECT_DOUBLE_EQ(box.p25, 3.0);
  EXPECT_DOUBLE_EQ(box.p75, 7.0);
}

TEST(BoxStatsTest, RejectsEmpty) {
  EXPECT_THROW(BoxStats::from_sample({}), std::invalid_argument);
}

}  // namespace
}  // namespace stale::sim
