// The bench_diff perf gate (tools/bench_diff_lib.h): parsing of
// google-benchmark JSON (including repetition aggregates), median folding,
// and — the CI-critical behaviour — that an injected >10% median regression
// trips the gate while noise under the threshold passes.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "bench_diff_lib.h"

namespace stale::benchdiff {
namespace {

std::string entry(const std::string& name, double real_time) {
  std::ostringstream os;
  os << "    {\n      \"name\": \"" << name << "\",\n"
     << "      \"real_time\": " << real_time << ",\n"
     << "      \"time_unit\": \"ns\"\n    },\n";
  return os.str();
}

std::map<std::string, double> parse(const std::string& body) {
  std::istringstream in("{\n  \"benchmarks\": [\n" + body + "  ]\n}\n");
  return load_benchmarks(in);
}

TEST(BenchDiffLoadTest, SingleRunEntriesParseDirectly) {
  const auto run = parse(entry("BM_select/64", 120.0) +
                         entry("BM_refresh/1024", 4000.5));
  ASSERT_EQ(run.size(), 2u);
  EXPECT_DOUBLE_EQ(run.at("BM_select/64"), 120.0);
  EXPECT_DOUBLE_EQ(run.at("BM_refresh/1024"), 4000.5);
}

TEST(BenchDiffLoadTest, RepetitionsFoldToTheMedian) {
  // Three raw repetitions: median 110 must win, not the mean (and one noisy
  // outlier repetition must not dominate).
  const auto run = parse(entry("BM_select/64", 100.0) +
                         entry("BM_select/64", 110.0) +
                         entry("BM_select/64", 400.0));
  ASSERT_EQ(run.size(), 1u);
  EXPECT_DOUBLE_EQ(run.at("BM_select/64"), 110.0);
}

TEST(BenchDiffLoadTest, AggregateRowsAreFoldedNotTreatedAsBenchmarks) {
  const auto run = parse(entry("BM_select/64", 100.0) +
                         entry("BM_select/64", 120.0) +
                         entry("BM_select/64_mean", 110.0) +
                         entry("BM_select/64_median", 105.0) +
                         entry("BM_select/64_stddev", 10.0) +
                         entry("BM_select/64_cv", 0.09));
  // One logical benchmark; google-benchmark's own median aggregate wins over
  // the recomputed raw median, and _mean/_stddev/_cv never become names.
  ASSERT_EQ(run.size(), 1u);
  EXPECT_DOUBLE_EQ(run.at("BM_select/64"), 105.0);
}

TEST(BenchDiffGateTest, RegressionBeyondThresholdFails) {
  const std::map<std::string, double> baseline = {{"BM_a", 100.0},
                                                  {"BM_b", 200.0}};
  const std::map<std::string, double> current = {{"BM_a", 100.0},
                                                 {"BM_b", 230.0}};  // +15%
  DiffOptions options;  // default max_regress_pct = 10
  std::ostringstream out;
  const DiffResult result = diff_benchmarks(baseline, current, options, out);
  EXPECT_EQ(result.regressed, 1);
  EXPECT_EQ(result.missing, 0);
  EXPECT_TRUE(result.failed(options));
  EXPECT_NE(out.str().find("REGRESSED BM_b"), std::string::npos);
}

TEST(BenchDiffGateTest, NoiseUnderThresholdAndImprovementsPass) {
  const std::map<std::string, double> baseline = {{"BM_a", 100.0},
                                                  {"BM_b", 200.0}};
  const std::map<std::string, double> current = {{"BM_a", 108.0},   // +8%
                                                 {"BM_b", 120.0}};  // -40%
  DiffOptions options;
  std::ostringstream out;
  const DiffResult result = diff_benchmarks(baseline, current, options, out);
  EXPECT_EQ(result.regressed, 0);
  EXPECT_FALSE(result.failed(options));
}

TEST(BenchDiffGateTest, MissingBenchmarkFailsEvenWithoutTimingGate) {
  const std::map<std::string, double> baseline = {{"BM_a", 100.0},
                                                  {"BM_gone", 50.0}};
  const std::map<std::string, double> current = {{"BM_a", 100.0},
                                                 {"BM_new", 75.0}};
  DiffOptions options;
  options.max_regress_pct = -1.0;  // timing gate off
  std::ostringstream out;
  const DiffResult result = diff_benchmarks(baseline, current, options, out);
  EXPECT_EQ(result.missing, 1);
  EXPECT_EQ(result.added, 1);
  EXPECT_EQ(result.regressed, 0);
  EXPECT_TRUE(result.failed(options));
  EXPECT_NE(out.str().find("MISSING   BM_gone"), std::string::npos);
  EXPECT_NE(out.str().find("NEW       BM_new"), std::string::npos);
}

TEST(BenchDiffGateTest, ReportOnlyNeverFails) {
  const std::map<std::string, double> baseline = {{"BM_a", 100.0},
                                                  {"BM_gone", 50.0}};
  const std::map<std::string, double> current = {{"BM_a", 300.0}};  // +200%
  DiffOptions options;
  options.report_only = true;
  std::ostringstream out;
  const DiffResult result = diff_benchmarks(baseline, current, options, out);
  EXPECT_EQ(result.regressed, 1);
  EXPECT_EQ(result.missing, 1);
  EXPECT_FALSE(result.failed(options));
}

}  // namespace
}  // namespace stale::benchdiff
