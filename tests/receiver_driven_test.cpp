#include "driver/receiver_driven.h"

#include <gtest/gtest.h>

namespace stale::driver {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig config;
  config.num_jobs = 60'000;
  config.warmup_jobs = 15'000;
  config.trials = 1;
  return config;
}

double mean_with(const ExperimentConfig& config,
                 const StealingOptions& options, int trials = 3) {
  double total = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    total += run_receiver_driven_trial(config, options,
                                       sim::trial_seed(config.base_seed,
                                                       trial))
                 .mean_response;
  }
  return total / trials;
}

TEST(ReceiverDrivenTest, DisabledMatchesPlainEngineStatistically) {
  // With stealing off, the engine is just another event-kernel
  // implementation of the periodic experiment; compare to the lazy engine.
  ExperimentConfig config = small_config();
  config.lambda = 0.8;
  config.update_interval = 4.0;
  config.policy = "basic_li";
  StealingOptions off;
  off.enabled = false;
  const double kernel = mean_with(config, off, 3);
  config.trials = 3;
  const double lazy = run_experiment(config).mean();
  EXPECT_NEAR(kernel, lazy, 0.1 * std::max(kernel, lazy));
}

TEST(ReceiverDrivenTest, JobAccountingIsExact) {
  ExperimentConfig config = small_config();
  config.num_jobs = 10'000;
  config.warmup_jobs = 2'000;
  StealingOptions options;
  const TrialResult result = run_receiver_driven_trial(config, options, 42);
  EXPECT_EQ(result.total_jobs, 10'000u);
  EXPECT_EQ(result.measured_jobs, 8'000u);
  EXPECT_GT(result.mean_response, 1.0);
}

TEST(ReceiverDrivenTest, DeterministicPerSeed) {
  const ExperimentConfig config = small_config();
  StealingOptions options;
  const auto a = run_receiver_driven_trial(config, options, 7);
  const auto b = run_receiver_driven_trial(config, options, 7);
  EXPECT_EQ(a.mean_response, b.mean_response);
  EXPECT_EQ(a.sim_end_time, b.sim_end_time);
}

TEST(ReceiverDrivenTest, StealingRescuesHerdingPolicy) {
  // k = n at stale T herds catastrophically; receiver-initiated stealing
  // repairs most of the damage because receivers act on fresh state.
  ExperimentConfig config = small_config();
  config.update_interval = 16.0;
  config.policy = "k_subset:10";
  StealingOptions off;
  off.enabled = false;
  StealingOptions on;
  const double without = mean_with(config, off);
  const double with = mean_with(config, on);
  EXPECT_LT(with, 0.5 * without);
}

TEST(ReceiverDrivenTest, StealingHelpsRandomToo) {
  ExperimentConfig config = small_config();
  config.update_interval = 8.0;
  config.policy = "random";
  StealingOptions off;
  off.enabled = false;
  const double without = mean_with(config, off);
  const double with = mean_with(config, StealingOptions{});
  EXPECT_LT(with, without);
}

TEST(ReceiverDrivenTest, LiStillHelpsOnTopOfStealing) {
  // Good sender-side placement should remain useful even with receivers
  // cleaning up: LI+steal <= random+steal (within noise).
  ExperimentConfig config = small_config();
  config.update_interval = 8.0;
  StealingOptions on;
  config.policy = "random";
  const double random_steal = mean_with(config, on);
  config.policy = "basic_li";
  const double li_steal = mean_with(config, on);
  EXPECT_LT(li_steal, random_steal * 1.05);
}

TEST(ReceiverDrivenTest, MigrationCostReducesTheBenefit) {
  ExperimentConfig config = small_config();
  config.update_interval = 16.0;
  config.policy = "k_subset:10";
  StealingOptions cheap;
  cheap.migration_delay = 0.0;
  StealingOptions expensive;
  expensive.migration_delay = 2.0;  // two mean service times per transfer
  EXPECT_LT(mean_with(config, cheap), mean_with(config, expensive));
}

TEST(ReceiverDrivenTest, ValidatesArguments) {
  ExperimentConfig config = small_config();
  StealingOptions options;

  config.model = UpdateModel::kContinuous;
  EXPECT_THROW(run_receiver_driven_trial(config, options, 1),
               std::invalid_argument);

  config = small_config();
  config.num_servers = 1;
  EXPECT_THROW(run_receiver_driven_trial(config, options, 1),
               std::invalid_argument);

  config = small_config();
  options.probe_count = 0;
  EXPECT_THROW(run_receiver_driven_trial(config, options, 1),
               std::invalid_argument);

  options = StealingOptions{};
  options.migration_delay = -1.0;
  EXPECT_THROW(run_receiver_driven_trial(config, options, 1),
               std::invalid_argument);

  options = StealingOptions{};
  options.min_waiting_to_steal = 0;
  EXPECT_THROW(run_receiver_driven_trial(config, options, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace stale::driver
