// Multi-dispatcher scale-out layer (src/dispatch/) and its trial engine:
// JIQ spec parsing, arrival splitting, TokenDirectory lifecycle properties
// (conservation: offered == claimed + invalidated + queued, never a dangling
// token), config validation for the new knobs, and the load-bearing
// reproduction guarantee — the multi-dispatcher engine at D = 1 must produce
// the legacy single-dispatcher trial bit-for-bit, across models, board
// representations, and policies.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "dispatch/dispatcher_set.h"
#include "dispatch/jiq.h"
#include "driver/experiment.h"
#include "driver/multi_dispatcher.h"
#include "sim/rng.h"

namespace {

using stale::dispatch::ArrivalSplitter;
using stale::dispatch::DispatcherSplit;
using stale::dispatch::JiqInsertion;
using stale::dispatch::JiqSpec;
using stale::dispatch::TokenDirectory;
using stale::driver::ExperimentConfig;
using stale::driver::TrialResult;
using stale::driver::UpdateModel;

// --- JIQ spec parsing -----------------------------------------------------

TEST(JiqSpecTest, RecognizesJiqFamily) {
  EXPECT_TRUE(stale::dispatch::is_jiq_spec("jiq"));
  EXPECT_TRUE(stale::dispatch::is_jiq_spec("jiq:sq"));
  EXPECT_TRUE(stale::dispatch::is_jiq_spec("jiq:sq:3"));
  EXPECT_FALSE(stale::dispatch::is_jiq_spec("basic_li"));
  EXPECT_FALSE(stale::dispatch::is_jiq_spec("jiqx"));
  EXPECT_FALSE(stale::dispatch::is_jiq_spec(""));
}

TEST(JiqSpecTest, ParsesInsertionVariants) {
  EXPECT_EQ(stale::dispatch::parse_jiq_spec("jiq").insertion,
            JiqInsertion::kRandom);
  const JiqSpec sq = stale::dispatch::parse_jiq_spec("jiq:sq");
  EXPECT_EQ(sq.insertion, JiqInsertion::kShortestQueue);
  EXPECT_EQ(sq.sq_sample, 2);
  EXPECT_EQ(stale::dispatch::parse_jiq_spec("jiq:sq:5").sq_sample, 5);
}

TEST(JiqSpecTest, RoundTripsThroughToString) {
  for (const char* spec : {"jiq", "jiq:sq:2", "jiq:sq:7"}) {
    EXPECT_EQ(stale::dispatch::parse_jiq_spec(spec).to_string(), spec);
  }
}

TEST(JiqSpecTest, RejectsMalformedSpecs) {
  EXPECT_THROW(stale::dispatch::parse_jiq_spec("jiq:sq:0"),
               std::invalid_argument);
  EXPECT_THROW(stale::dispatch::parse_jiq_spec("jiq:sq:x"),
               std::invalid_argument);
  EXPECT_THROW(stale::dispatch::parse_jiq_spec("jiq:bogus"),
               std::invalid_argument);
  EXPECT_THROW(stale::dispatch::parse_jiq_spec("basic_li"),
               std::invalid_argument);
}

// --- Dispatcher split parsing + ArrivalSplitter ---------------------------

TEST(DispatcherSplitTest, ParsesAndNames) {
  EXPECT_EQ(stale::dispatch::parse_dispatcher_split("uniform"),
            DispatcherSplit::kUniform);
  EXPECT_EQ(stale::dispatch::parse_dispatcher_split("weighted"),
            DispatcherSplit::kWeighted);
  EXPECT_EQ(stale::dispatch::dispatcher_split_name(DispatcherSplit::kUniform),
            "uniform");
  EXPECT_EQ(stale::dispatch::dispatcher_split_name(DispatcherSplit::kWeighted),
            "weighted");
  EXPECT_THROW(stale::dispatch::parse_dispatcher_split("roundrobin"),
               std::invalid_argument);
}

TEST(ArrivalSplitterTest, SingleDispatcherDrawsNothing) {
  // The D == 1 no-draw contract is what keeps one-dispatcher runs
  // bit-identical to the legacy engine: compare the RNG stream against an
  // untouched twin after a batch of picks.
  ArrivalSplitter splitter(1, DispatcherSplit::kUniform);
  stale::sim::Rng used(42);
  stale::sim::Rng untouched(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(splitter.pick(used), 0);
  }
  EXPECT_EQ(used.next_u64(), untouched.next_u64());
}

TEST(ArrivalSplitterTest, SharesSumToOne) {
  for (const DispatcherSplit split :
       {DispatcherSplit::kUniform, DispatcherSplit::kWeighted}) {
    ArrivalSplitter splitter(5, split);
    double total = 0.0;
    for (int d = 0; d < 5; ++d) total += splitter.share(d);
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(ArrivalSplitterTest, WeightedSharesAreALinearRamp) {
  ArrivalSplitter splitter(4, DispatcherSplit::kWeighted);
  // Weights 1:2:3:4 over sum 10.
  EXPECT_NEAR(splitter.share(0), 0.1, 1e-12);
  EXPECT_NEAR(splitter.share(1), 0.2, 1e-12);
  EXPECT_NEAR(splitter.share(2), 0.3, 1e-12);
  EXPECT_NEAR(splitter.share(3), 0.4, 1e-12);
}

TEST(ArrivalSplitterTest, EmpiricalFrequenciesMatchShares) {
  for (const DispatcherSplit split :
       {DispatcherSplit::kUniform, DispatcherSplit::kWeighted}) {
    const int kDispatchers = 3;
    const int kDraws = 60'000;
    ArrivalSplitter splitter(kDispatchers, split);
    stale::sim::Rng rng(7);
    std::vector<int> counts(kDispatchers, 0);
    for (int i = 0; i < kDraws; ++i) {
      const int d = splitter.pick(rng);
      ASSERT_GE(d, 0);
      ASSERT_LT(d, kDispatchers);
      ++counts[static_cast<std::size_t>(d)];
    }
    for (int d = 0; d < kDispatchers; ++d) {
      const double freq = static_cast<double>(counts[d]) / kDraws;
      EXPECT_NEAR(freq, splitter.share(d), 0.01)
          << "split " << stale::dispatch::dispatcher_split_name(split)
          << " dispatcher " << d;
    }
  }
}

// --- TokenDirectory properties --------------------------------------------

TEST(TokenDirectoryTest, OfferClaimIsFifoPerDispatcher) {
  TokenDirectory directory(/*num_servers=*/4, /*num_dispatchers=*/1);
  const JiqSpec spec;  // random insertion; D = 1 so target is forced
  stale::sim::Rng rng(1);
  EXPECT_EQ(directory.offer(2, spec, rng), 0);
  EXPECT_EQ(directory.offer(0, spec, rng), 0);
  EXPECT_EQ(directory.offer(3, spec, rng), 0);
  EXPECT_EQ(directory.queued(0), 3);
  EXPECT_EQ(directory.claim(0), 2);
  EXPECT_EQ(directory.claim(0), 0);
  EXPECT_EQ(directory.claim(0), 3);
  EXPECT_EQ(directory.claim(0), -1);
  directory.audit("fifo");
}

TEST(TokenDirectoryTest, AtMostOneTokenPerServer) {
  TokenDirectory directory(2, 2);
  const JiqSpec spec;
  stale::sim::Rng rng(1);
  EXPECT_GE(directory.offer(0, spec, rng), 0);
  EXPECT_TRUE(directory.has_token(0));
  // A second offer while the first token is live is refused, not queued.
  EXPECT_EQ(directory.offer(0, spec, rng), -1);
  EXPECT_EQ(directory.total_queued(), 1);
  directory.audit("single-token");
}

TEST(TokenDirectoryTest, InvalidateRetiresWhereverQueued) {
  TokenDirectory directory(4, 3);
  const JiqSpec spec;
  stale::sim::Rng rng(9);
  for (int s = 0; s < 4; ++s) ASSERT_GE(directory.offer(s, spec, rng), 0);
  const int holder = directory.holder(1);
  ASSERT_GE(holder, 0);
  directory.invalidate(1);
  EXPECT_FALSE(directory.has_token(1));
  EXPECT_EQ(directory.total_queued(), 3);
  // The stale deque entry is skipped lazily: draining the holder's queue
  // never yields server 1.
  int server = -1;
  while ((server = directory.claim(holder)) >= 0) {
    EXPECT_NE(server, 1);
  }
  directory.audit("invalidate");
  EXPECT_EQ(directory.offered(),
            directory.claimed() + directory.invalidated() +
                static_cast<std::uint64_t>(directory.total_queued()));
}

TEST(TokenDirectoryTest, ReofferAfterInvalidateUsesFreshEpoch) {
  TokenDirectory directory(1, 1);
  const JiqSpec spec;
  stale::sim::Rng rng(3);
  ASSERT_EQ(directory.offer(0, spec, rng), 0);
  directory.invalidate(0);
  // Re-offer queues a second entry behind the stale one; claim must skip the
  // dead epoch and return the live token exactly once.
  ASSERT_EQ(directory.offer(0, spec, rng), 0);
  EXPECT_EQ(directory.claim(0), 0);
  EXPECT_EQ(directory.claim(0), -1);
  directory.audit("epoch");
}

TEST(TokenDirectoryTest, BudgetDropsExcessTokens) {
  TokenDirectory directory(/*num_servers=*/8, /*num_dispatchers=*/1,
                           /*token_budget=*/2);
  const JiqSpec spec;
  stale::sim::Rng rng(5);
  EXPECT_GE(directory.offer(0, spec, rng), 0);
  EXPECT_GE(directory.offer(1, spec, rng), 0);
  EXPECT_EQ(directory.offer(2, spec, rng), -1);  // over budget: dropped
  EXPECT_EQ(directory.dropped(), 1u);
  EXPECT_FALSE(directory.has_token(2));
  EXPECT_EQ(directory.total_queued(), 2);
  // Claiming frees budget for the next offer.
  EXPECT_EQ(directory.claim(0), 0);
  EXPECT_GE(directory.offer(2, spec, rng), 0);
  directory.audit("budget");
}

TEST(TokenDirectoryTest, ConservationHoldsUnderRandomOperations) {
  TokenDirectory directory(/*num_servers=*/16, /*num_dispatchers=*/4,
                           /*token_budget=*/3);
  JiqSpec sq;
  sq.insertion = JiqInsertion::kShortestQueue;
  sq.sq_sample = 2;
  stale::sim::Rng rng(1234);
  for (int step = 0; step < 20'000; ++step) {
    const int op = static_cast<int>(rng.next_below(3));
    if (op == 0) {
      directory.offer(static_cast<int>(rng.next_below(16)), sq, rng);
    } else if (op == 1) {
      directory.claim(static_cast<int>(rng.next_below(4)));
    } else {
      directory.invalidate(static_cast<int>(rng.next_below(16)));
    }
    ASSERT_EQ(directory.offered(),
              directory.claimed() + directory.invalidated() +
                  static_cast<std::uint64_t>(directory.total_queued()))
        << "step " << step;
  }
  directory.audit("random-ops");
}

// --- Config validation ----------------------------------------------------

ExperimentConfig small_config() {
  ExperimentConfig config;
  config.num_servers = 8;
  config.lambda = 0.8;
  config.model = UpdateModel::kPeriodic;
  config.update_interval = 2.0;
  config.policy = "basic_li";
  config.num_jobs = 2'000;
  config.warmup_jobs = 500;
  config.trials = 1;
  return config;
}

TEST(MultiDispatcherConfigTest, RejectsNonBoardModels) {
  ExperimentConfig config = small_config();
  config.dispatchers = 2;
  config.model = UpdateModel::kContinuous;
  EXPECT_THROW(stale::driver::run_trial(config, 1), std::invalid_argument);
  config.model = UpdateModel::kUpdateOnAccess;
  config.policy = "jiq";
  config.dispatchers = 1;  // JIQ alone forces the multi engine
  EXPECT_THROW(stale::driver::run_trial(config, 1), std::invalid_argument);
}

TEST(MultiDispatcherConfigTest, RejectsFaultInjection) {
  ExperimentConfig config = small_config();
  config.dispatchers = 2;
  config.fault = stale::fault::FaultSpec::parse("crash=0.01,down=5");
  EXPECT_THROW(stale::driver::run_trial(config, 1), std::invalid_argument);
}

TEST(MultiDispatcherConfigTest, RejectsBadKnobValues) {
  ExperimentConfig config = small_config();
  config.dispatchers = 0;
  EXPECT_THROW(stale::driver::run_trial(config, 1), std::invalid_argument);
  config.dispatchers = 1;
  config.jiq_token_budget = -1;
  EXPECT_THROW(stale::driver::run_trial(config, 1), std::invalid_argument);
}

// --- D = 1 reproduces the legacy engine bit-for-bit -----------------------

void expect_trials_identical(const TrialResult& legacy,
                             const TrialResult& multi) {
  EXPECT_EQ(legacy.mean_response, multi.mean_response);
  EXPECT_EQ(legacy.measured_jobs, multi.measured_jobs);
  EXPECT_EQ(legacy.total_jobs, multi.total_jobs);
  EXPECT_EQ(legacy.sim_end_time, multi.sim_end_time);
  EXPECT_EQ(legacy.mean_queue_stddev, multi.mean_queue_stddev);
  EXPECT_EQ(legacy.mean_queue_max, multi.mean_queue_max);
  EXPECT_EQ(legacy.mean_queue_length, multi.mean_queue_length);
}

// run_trial() routes a plain D = 1 config to the legacy engine, so calling
// run_multi_dispatcher_trial() directly is the only way to compare the two
// engines on the same config — this is the reproduction guarantee the
// routing relies on.
void expect_d1_reproduces_legacy(UpdateModel model,
                                 stale::policy::BoardRepr repr,
                                 const std::string& policy) {
  ExperimentConfig config = small_config();
  config.model = model;
  config.board_repr = repr;
  config.policy = policy;
  config.num_servers =
      repr == stale::policy::BoardRepr::kBucketed ? 64 : config.num_servers;
  for (const std::uint64_t seed : {1ull, 99ull}) {
    const TrialResult legacy = stale::driver::run_trial(config, seed);
    const TrialResult multi =
        stale::driver::run_multi_dispatcher_trial(config, seed);
    expect_trials_identical(legacy, multi);
  }
}

TEST(MultiDispatcherParityTest, PeriodicVectorBasicLi) {
  expect_d1_reproduces_legacy(UpdateModel::kPeriodic,
                              stale::policy::BoardRepr::kVector, "basic_li");
}

TEST(MultiDispatcherParityTest, PeriodicVectorKSubset) {
  expect_d1_reproduces_legacy(UpdateModel::kPeriodic,
                              stale::policy::BoardRepr::kVector, "k_subset:2");
}

TEST(MultiDispatcherParityTest, PeriodicBucketedBasicLi) {
  expect_d1_reproduces_legacy(UpdateModel::kPeriodic,
                              stale::policy::BoardRepr::kBucketed, "basic_li");
}

TEST(MultiDispatcherParityTest, IndividualVectorBasicLi) {
  expect_d1_reproduces_legacy(UpdateModel::kIndividual,
                              stale::policy::BoardRepr::kVector, "basic_li");
}

TEST(MultiDispatcherParityTest, IndividualBucketedBasicLi) {
  expect_d1_reproduces_legacy(UpdateModel::kIndividual,
                              stale::policy::BoardRepr::kBucketed, "basic_li");
}

// --- Multi-dispatcher runs ------------------------------------------------

TEST(MultiDispatcherRunTest, JiqRunsOnBothRepresentations) {
  for (const stale::policy::BoardRepr repr :
       {stale::policy::BoardRepr::kVector,
        stale::policy::BoardRepr::kBucketed}) {
    ExperimentConfig config = small_config();
    config.policy = "jiq";
    config.dispatchers = 4;
    config.board_repr = repr;
    if (repr == stale::policy::BoardRepr::kBucketed) config.num_servers = 64;
    const TrialResult result = stale::driver::run_trial(config, 11);
    EXPECT_TRUE(std::isfinite(result.mean_response));
    EXPECT_GT(result.mean_response, 0.0);
    EXPECT_EQ(result.total_jobs, config.num_jobs);
    EXPECT_EQ(result.measured_jobs, config.num_jobs - config.warmup_jobs);
  }
}

TEST(MultiDispatcherRunTest, JiqSqAndTokenBudgetRun) {
  ExperimentConfig config = small_config();
  config.policy = "jiq:sq:2";
  config.dispatchers = 3;
  config.jiq_token_budget = 2;
  const TrialResult result = stale::driver::run_trial(config, 5);
  EXPECT_TRUE(std::isfinite(result.mean_response));
  EXPECT_GT(result.mean_response, 0.0);
}

TEST(MultiDispatcherRunTest, WeightedSplitRunsAndDiffersFromUniform) {
  ExperimentConfig config = small_config();
  config.dispatchers = 4;
  const TrialResult uniform = stale::driver::run_trial(config, 17);
  config.dispatcher_split = stale::dispatch::DispatcherSplit::kWeighted;
  const TrialResult weighted = stale::driver::run_trial(config, 17);
  EXPECT_TRUE(std::isfinite(weighted.mean_response));
  // Different thinning, same seed: the runs must actually diverge.
  EXPECT_NE(uniform.mean_response, weighted.mean_response);
}

TEST(MultiDispatcherRunTest, DeterministicForFixedSeed) {
  ExperimentConfig config = small_config();
  config.policy = "jiq";
  config.dispatchers = 4;
  const TrialResult a = stale::driver::run_trial(config, 23);
  const TrialResult b = stale::driver::run_trial(config, 23);
  expect_trials_identical(a, b);
}

}  // namespace
