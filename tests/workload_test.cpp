#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.h"
#include "workload/arrival_process.h"
#include "workload/bursty_process.h"
#include "workload/job_size.h"

namespace stale::workload {
namespace {

TEST(PoissonProcessTest, GapMeanMatchesRate) {
  PoissonProcess process(4.0);
  sim::Rng rng(1);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += process.next_gap(rng);
  EXPECT_NEAR(sum / n, 0.25, 0.005);
  EXPECT_DOUBLE_EQ(process.mean_gap(), 0.25);
}

TEST(PoissonProcessTest, GapsAreMemorylessExponential) {
  // Coefficient of variation of exponential gaps is 1.
  PoissonProcess process(1.0);
  sim::Rng rng(2);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = process.next_gap(rng);
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.02);
}

TEST(PoissonProcessTest, RejectsBadRate) {
  EXPECT_THROW(PoissonProcess(0.0), std::invalid_argument);
}

TEST(BurstyProcessTest, LongRunMeanGapIsExact) {
  BurstyProcess process(10.0, 10.0, 0.1);
  sim::Rng rng(3);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += process.next_gap(rng);
  EXPECT_NEAR(sum / n, 10.0, 0.25);
}

TEST(BurstyProcessTest, GapsAreBimodal) {
  // With g_in = 0.1 and B = 10, ~90% of gaps must be short (< 1) and the
  // rest long (around the solved between-burst mean).
  BurstyProcess process(10.0, 10.0, 0.1);
  sim::Rng rng(4);
  int shorts = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (process.next_gap(rng) < 1.0) ++shorts;
  }
  EXPECT_NEAR(static_cast<double>(shorts) / n, 0.9, 0.02);
  EXPECT_GT(process.between_burst_gap(), 50.0);
}

TEST(BurstyProcessTest, GapVarianceExceedsPoisson) {
  BurstyProcess bursty(5.0, 10.0, 0.05);
  PoissonProcess poisson(1.0 / 5.0);
  sim::Rng rng(5);
  auto cv2 = [&rng](ArrivalProcess& process) {
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
      const double g = process.next_gap(rng);
      sum += g;
      sum_sq += g * g;
    }
    const double mean = sum / n;
    return (sum_sq / n - mean * mean) / (mean * mean);
  };
  EXPECT_GT(cv2(bursty), 2.0 * cv2(poisson));
}

TEST(BurstyProcessTest, DegenerateBurstOfOneIsPoissonLike) {
  // B = 1 means every gap is a between-burst gap with mean T.
  BurstyProcess process(2.0, 1.0, 0.5);
  sim::Rng rng(6);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += process.next_gap(rng);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(BurstyProcessTest, RejectsInfeasibleParameters) {
  EXPECT_THROW(BurstyProcess(0.0, 10.0, 0.1), std::invalid_argument);
  EXPECT_THROW(BurstyProcess(1.0, 0.5, 0.1), std::invalid_argument);
  EXPECT_THROW(BurstyProcess(1.0, 10.0, -0.1), std::invalid_argument);
  // Within-burst gaps alone exceed the target mean: infeasible.
  EXPECT_THROW(BurstyProcess(1.0, 10.0, 2.0), std::invalid_argument);
}

TEST(JobSizeTest, NamedPaperWorkloads) {
  const auto fig10 = make_job_size("pareto_fig10");
  EXPECT_NEAR(fig10->mean(), 1.0, 1e-6);
  const auto fig11 = make_job_size("pareto_fig11");
  EXPECT_NEAR(fig11->mean(), 1.0, 1e-6);
  // Figure 10's tail (alpha = 1.1) is heavier than Figure 11's (1.5).
  EXPECT_GT(fig10->variance(), fig11->variance());
}

TEST(JobSizeTest, RawSpecsPassThrough) {
  EXPECT_DOUBLE_EQ(make_job_size("exp:1")->mean(), 1.0);
  EXPECT_DOUBLE_EQ(make_job_size("det:2")->mean(), 2.0);
  EXPECT_THROW(make_job_size("bogus:1"), std::invalid_argument);
}

TEST(JobSizeTest, Fig10MaxIsThousandTimesMean) {
  const auto dist = make_job_size("pareto_fig10");
  sim::Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_LE(dist->sample(rng), 1000.0);
  }
}

}  // namespace
}  // namespace stale::workload
