#include "analysis/fluid_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "driver/experiment.h"
#include "queueing/theory.h"

namespace stale::analysis {
namespace {

TEST(PowerOfDFixedPointTest, DOneIsGeometric) {
  // d = 1: s_i = lambda^i, the M/M/1 stationary tail.
  const auto tail = power_of_d_tail_fixed_point(0.5, 1);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(tail[i], std::pow(0.5, static_cast<double>(i)), 1e-12);
  }
}

TEST(PowerOfDFixedPointTest, DTwoDoublyExponential) {
  // s_i = lambda^{2^i - 1}.
  const auto tail = power_of_d_tail_fixed_point(0.9, 2);
  EXPECT_NEAR(tail[1], 0.9, 1e-12);
  EXPECT_NEAR(tail[2], std::pow(0.9, 3.0), 1e-12);
  EXPECT_NEAR(tail[3], std::pow(0.9, 7.0), 1e-12);
  EXPECT_NEAR(tail[4], std::pow(0.9, 15.0), 1e-12);
}

TEST(PowerOfDFixedPointTest, ResponseTimeDOneIsMm1) {
  for (double lambda : {0.3, 0.5, 0.9}) {
    EXPECT_NEAR(power_of_d_response_time(lambda, 1),
                queueing::theory::mm1_response_time(lambda),
                1e-6 * queueing::theory::mm1_response_time(lambda));
  }
}

TEST(PowerOfDFixedPointTest, MoreChoicesShortenResponse) {
  const double lambda = 0.9;
  double previous = power_of_d_response_time(lambda, 1);
  for (int d = 2; d <= 5; ++d) {
    const double current = power_of_d_response_time(lambda, d);
    EXPECT_LT(current, previous) << "d=" << d;
    previous = current;
  }
  EXPECT_GT(previous, 1.0);  // response time includes service
}

TEST(PowerOfDFixedPointTest, RejectsBadArguments) {
  EXPECT_THROW(power_of_d_tail_fixed_point(0.0, 2), std::invalid_argument);
  EXPECT_THROW(power_of_d_tail_fixed_point(1.0, 2), std::invalid_argument);
  EXPECT_THROW(power_of_d_tail_fixed_point(0.5, 0), std::invalid_argument);
}

TEST(FluidPeriodicTest, DOneReproducesMm1RegardlessOfT) {
  // Random dispatch does not look at the board, so T must not matter and
  // the answer is M/M/1.
  for (double t : {0.5, 4.0}) {
    const FluidResult result = fluid_periodic_dchoices(0.8, 1, t);
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.mean_response,
                queueing::theory::mm1_response_time(0.8), 0.08)
        << "T=" << t;
  }
}

TEST(FluidPeriodicTest, FreshLimitMatchesPowerOfDFixedPoint) {
  FluidOptions options;
  options.max_phases = 4000;  // tiny phases need many to relax
  const FluidResult result = fluid_periodic_dchoices(0.9, 2, 0.05, options);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.mean_response, power_of_d_response_time(0.9, 2), 0.1);
}

TEST(FluidPeriodicTest, StalenessDegradesDTwo) {
  const double fresh =
      fluid_periodic_dchoices(0.9, 2, 0.5).mean_response;
  const double stale =
      fluid_periodic_dchoices(0.9, 2, 8.0).mean_response;
  EXPECT_GT(stale, fresh * 1.3);
}

TEST(FluidPeriodicTest, MatchesLargeClusterSimulation) {
  // The fluid model is the n -> infinity limit; an n = 100 simulation should
  // land within a few percent. This is the strongest cross-validation in
  // the suite: an analytic method vs. the discrete-event engine.
  const FluidResult fluid = fluid_periodic_dchoices(0.9, 2, 4.0);
  ASSERT_TRUE(fluid.converged);

  driver::ExperimentConfig config;
  config.num_servers = 100;
  config.lambda = 0.9;
  config.update_interval = 4.0;
  config.policy = "k_subset:2";
  config.num_jobs = 400'000;
  config.warmup_jobs = 100'000;
  config.trials = 3;
  const double simulated = driver::run_experiment(config).mean();
  EXPECT_NEAR(simulated, fluid.mean_response, 0.06 * fluid.mean_response)
      << "fluid=" << fluid.mean_response << " simulated=" << simulated;
}

TEST(FluidAggressiveTest, MatchesLargeClusterSimulation) {
  // Same cross-validation for the paper's own algorithm: the fluid
  // prediction for Aggressive LI vs. an n = 100 simulation.
  FluidOptions options;
  options.max_length = 100;
  const FluidResult fluid = fluid_periodic_aggressive_li(0.9, 4.0, options);
  ASSERT_TRUE(fluid.converged);

  driver::ExperimentConfig config;
  config.num_servers = 100;
  config.lambda = 0.9;
  config.update_interval = 4.0;
  config.policy = "aggressive_li";
  config.num_jobs = 400'000;
  config.warmup_jobs = 100'000;
  config.trials = 3;
  const double simulated = driver::run_experiment(config).mean();
  EXPECT_NEAR(simulated, fluid.mean_response, 0.08 * fluid.mean_response)
      << "fluid=" << fluid.mean_response << " simulated=" << simulated;
}

TEST(FluidAggressiveTest, BeatsDChoicesAtModerateStaleness) {
  // Figure 2's analytic echo: at T = 4 the Time-Based/Aggressive fluid
  // response is below the 2-choices fluid response.
  const double aggressive =
      fluid_periodic_aggressive_li(0.9, 4.0).mean_response;
  const double two_choices =
      fluid_periodic_dchoices(0.9, 2, 4.0).mean_response;
  EXPECT_LT(aggressive, two_choices);
}

TEST(FluidAggressiveTest, ApproachesMm1FromBelowAsTGrows) {
  // With an ancient board the schedule spends almost the whole phase in the
  // uniform group, so the response tends to M/M/1 (= 10 at 0.9) from below.
  FluidOptions options;
  options.max_length = 120;
  const double stale =
      fluid_periodic_aggressive_li(0.9, 16.0, options).mean_response;
  const double fresher =
      fluid_periodic_aggressive_li(0.9, 2.0, options).mean_response;
  EXPECT_GT(stale, fresher);
  EXPECT_LT(stale, queueing::theory::mm1_response_time(0.9));
}

TEST(FluidAggressiveTest, RejectsBadArguments) {
  EXPECT_THROW(fluid_periodic_aggressive_li(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(fluid_periodic_aggressive_li(0.9, 0.0), std::invalid_argument);
}

TEST(FluidPeriodicTest, CapOverflowIsDetected) {
  FluidOptions options;
  options.max_length = 12;  // far too small for lambda = 0.9 at T = 8
  EXPECT_THROW(fluid_periodic_dchoices(0.9, 3, 8.0, options),
               std::runtime_error);
}

TEST(FluidPeriodicTest, RejectsBadArguments) {
  EXPECT_THROW(fluid_periodic_dchoices(0.9, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(fluid_periodic_dchoices(0.9, 0, 1.0), std::invalid_argument);
  FluidOptions options;
  options.max_length = 1;
  EXPECT_THROW(fluid_periodic_dchoices(0.9, 2, 1.0, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace stale::analysis
