#include "core/interpreter.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/load_interpretation.h"

namespace stale::core {
namespace {

LoadInterpreter::Options basic_options(int n, double lambda_total) {
  LoadInterpreter::Options options;
  options.mode = LiMode::kBasic;
  options.num_servers = n;
  options.rate = RateSource::told(lambda_total);
  return options;
}

TEST(LoadInterpreterTest, UniformBeforeFirstReport) {
  LoadInterpreter li(basic_options(4, 4.0));
  for (double p : li.probabilities()) EXPECT_DOUBLE_EQ(p, 0.25);
}

TEST(LoadInterpreterTest, MatchesCoreMathAfterReport) {
  LoadInterpreter li(basic_options(3, 6.0));
  const std::vector<int> loads = {0, 2, 4};
  li.report_loads(std::span<const int>(loads), /*age=*/0.5);  // K = 3
  const auto expected =
      basic_li_probabilities(std::span<const int>(loads), 3.0);
  const auto& actual = li.probabilities();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-12);
  }
}

TEST(LoadInterpreterTest, PickSamplesInterpretedDistribution) {
  LoadInterpreter li(basic_options(3, 6.0));
  const std::vector<int> loads = {0, 5, 5};
  li.report_loads(std::span<const int>(loads), 0.0);  // fresh: all to min
  sim::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(li.pick(rng), 0);
  }
}

TEST(LoadInterpreterTest, AggressiveModeUsesStationaryRule) {
  LoadInterpreter::Options options;
  options.mode = LiMode::kAggressive;
  options.num_servers = 3;
  options.rate = RateSource::told(1.0);
  LoadInterpreter li(std::move(options));
  const std::vector<int> loads = {0, 2, 4};
  li.report_loads(std::span<const int>(loads), /*age=*/3.0);  // K = 3 -> group 2
  const auto& p = li.probabilities();
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
  EXPECT_EQ(p[2], 0.0);
}

TEST(LoadInterpreterTest, HybridModeSwitchesToUniform) {
  LoadInterpreter::Options options;
  options.mode = LiMode::kHybrid;
  options.num_servers = 3;
  options.rate = RateSource::told(1.0);
  LoadInterpreter li(std::move(options));
  const std::vector<int> loads = {1, 3, 5};  // first-interval jobs = 6
  li.report_loads(std::span<const int>(loads), /*age=*/2.0);  // K = 2 < 6
  EXPECT_NEAR(li.probabilities()[0], 4.0 / 6.0, 1e-12);
  li.report_loads(std::span<const int>(loads), /*age=*/10.0);  // K = 10 >= 6
  for (double p : li.probabilities()) EXPECT_NEAR(p, 1.0 / 3.0, 1e-12);
}

TEST(LoadInterpreterTest, OnArrivalAgesTheReport) {
  LoadInterpreter li(basic_options(2, 2.0));
  li.on_arrival(10.0);
  const std::vector<int> loads = {0, 4};
  li.report_loads(std::span<const int>(loads), 0.0);  // anchored at t = 10
  li.on_arrival(12.0);
  EXPECT_DOUBLE_EQ(li.report_age(), 2.0);
  // K = 4: level = (0 + 4 + 4)/2 = 4 -> p = {1.0, 0.0}.
  EXPECT_DOUBLE_EQ(li.probabilities()[0], 1.0);
}

TEST(LoadInterpreterTest, EstimatorDrivesExpectedArrivals) {
  LoadInterpreter::Options options;
  options.mode = LiMode::kBasic;
  options.num_servers = 2;
  options.rate = RateSource::conservative_max(2.0);
  LoadInterpreter li(std::move(options));
  EXPECT_DOUBLE_EQ(li.current_rate_estimate(), 2.0);
  const std::vector<int> loads = {0, 2};
  li.report_loads(std::span<const int>(loads), /*age=*/2.0);  // K = 4
  // level = (0 + 2 + 4)/2 = 3 -> p = {3/4, 1/4}.
  EXPECT_NEAR(li.probabilities()[0], 0.75, 1e-12);
  EXPECT_NEAR(li.probabilities()[1], 0.25, 1e-12);
}

TEST(LoadInterpreterTest, HeterogeneousRatesUseWeightedMath) {
  LoadInterpreter::Options options;
  options.mode = LiMode::kBasic;
  options.num_servers = 2;
  options.rate = RateSource::told(4.0);
  options.server_rates = {1.0, 3.0};
  LoadInterpreter li(std::move(options));
  const std::vector<int> loads = {0, 0};
  li.report_loads(std::span<const int>(loads), /*age=*/1.0);  // K = 4
  EXPECT_NEAR(li.probabilities()[0], 0.25, 1e-12);
  EXPECT_NEAR(li.probabilities()[1], 0.75, 1e-12);
}

TEST(LoadInterpreterTest, RejectsBadConfiguration) {
  LoadInterpreter::Options no_servers;
  no_servers.rate = RateSource::told(1.0);
  EXPECT_THROW(LoadInterpreter(std::move(no_servers)), std::invalid_argument);

  LoadInterpreter::Options no_rate;
  no_rate.num_servers = 2;
  EXPECT_THROW(LoadInterpreter(std::move(no_rate)), std::invalid_argument);

  LoadInterpreter::Options bad_rates;
  bad_rates.num_servers = 2;
  bad_rates.rate = RateSource::told(1.0);
  bad_rates.server_rates = {1.0};
  EXPECT_THROW(LoadInterpreter(std::move(bad_rates)), std::invalid_argument);

  LoadInterpreter::Options hetero_aggressive;
  hetero_aggressive.mode = LiMode::kAggressive;
  hetero_aggressive.num_servers = 2;
  hetero_aggressive.rate = RateSource::told(1.0);
  hetero_aggressive.server_rates = {1.0, 2.0};
  EXPECT_THROW(LoadInterpreter(std::move(hetero_aggressive)),
               std::invalid_argument);
}

TEST(LoadInterpreterTest, RejectsBadReports) {
  LoadInterpreter li(basic_options(2, 1.0));
  const std::vector<int> wrong_size = {1, 2, 3};
  EXPECT_THROW(li.report_loads(std::span<const int>(wrong_size), 0.0),
               std::invalid_argument);
  const std::vector<int> fine = {1, 2};
  EXPECT_THROW(li.report_loads(std::span<const int>(fine), -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace stale::core
