// Tests for the trace-v2 replay format (src/workload/replay.h): manifest and
// loads round-trips, forward compatibility with unknown keys, ReplayProcess
// gap/wrap/reset semantics, and load_replay_trace's cross-checks. Directory
// loading uses gtest's TempDir — the format code itself only sees streams.
#include "workload/replay.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "sim/rng.h"

namespace stale::workload {
namespace {

ReplayManifest sample_manifest() {
  ReplayManifest manifest;
  manifest.backends = 4;
  manifest.update_period = 0.5;
  manifest.schedule = "periodic";
  manifest.policy = "basic_li";
  manifest.seed = 12345;
  manifest.duration = 9.75;
  manifest.arrivals = 3;
  return manifest;
}

TEST(ReplayManifestTest, RoundTripsEveryField) {
  std::stringstream stream;
  write_manifest(stream, sample_manifest());
  const ReplayManifest parsed = parse_manifest(stream);
  EXPECT_EQ(parsed.version, 2);
  EXPECT_EQ(parsed.backends, 4);
  EXPECT_DOUBLE_EQ(parsed.update_period, 0.5);
  EXPECT_EQ(parsed.schedule, "periodic");
  EXPECT_EQ(parsed.policy, "basic_li");
  EXPECT_EQ(parsed.seed, 12345u);
  EXPECT_DOUBLE_EQ(parsed.duration, 9.75);
  EXPECT_EQ(parsed.arrivals, 3u);
}

TEST(ReplayManifestTest, SkipsUnknownKeysForForwardCompatibility) {
  std::stringstream stream;
  stream << "staleload-trace v2\n"
         << "backends 2\n"
         << "update_period 1\n"
         << "some_v3_field hello world\n"
         << "# a comment\n"
         << "\n"
         << "schedule periodic\n";
  const ReplayManifest parsed = parse_manifest(stream);
  EXPECT_EQ(parsed.backends, 2);
  EXPECT_EQ(parsed.schedule, "periodic");
}

TEST(ReplayManifestTest, RejectsBadMagicVersionAndValues) {
  const char* cases[] = {
      "",                                        // empty
      "not-a-trace v2\nbackends 2\n",            // magic
      "staleload-trace v1\nbackends 2\n",        // version
      "staleload-trace v2\nbackends nope\n",     // bad value
      "staleload-trace v2\nupdate_period 1\n",   // backends missing (<= 0)
      "staleload-trace v2\nbackends 2\nupdate_period 0\n",
  };
  for (const char* text : cases) {
    std::istringstream stream{std::string(text)};
    EXPECT_THROW(parse_manifest(stream), std::invalid_argument) << text;
  }
}

TEST(ReplayLoadsTest, RoundTripsWithHeader) {
  const std::vector<LoadEvent> events = {
      {0.0, 0, 3}, {0.25, 2, 0}, {1.5, 1, 7}};
  std::stringstream stream;
  write_loads(stream, events);
  const std::vector<LoadEvent> parsed = parse_loads(stream);
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed[i].time, events[i].time);
    EXPECT_EQ(parsed[i].server, events[i].server);
    EXPECT_EQ(parsed[i].queue_len, events[i].queue_len);
  }
}

TEST(ReplayLoadsTest, RejectsMalformedRows) {
  for (const char* text :
       {"1.0,2\n", "1.0 2 3\n", "1.0,-1,3\n", "1.0,2,-3\n"}) {
    std::istringstream stream{std::string(text)};
    EXPECT_THROW(parse_loads(stream), std::invalid_argument) << text;
  }
}

TEST(ReplayProcessTest, EmitsRecordedGapsIncludingTheFirstOffset) {
  // Records at t = 0.5, 1.0, 2.5: gaps 0.5 (offset of the first arrival),
  // 0.5, 1.5 — |records| gaps so one pass delivers the full job count.
  const std::vector<TraceRecord> records = {{0.5, 1.0}, {1.0, 2.0},
                                            {2.5, 0.5}};
  ReplayProcess process(records);
  sim::Rng rng(1);
  EXPECT_DOUBLE_EQ(process.next_gap(rng), 0.5);
  EXPECT_DOUBLE_EQ(process.next_gap(rng), 0.5);
  EXPECT_DOUBLE_EQ(process.next_gap(rng), 1.5);
  EXPECT_EQ(process.wraps(), 0u);
}

TEST(ReplayProcessTest, WrapCountsLazilyAndResetClears) {
  const std::vector<TraceRecord> records = {{0.0, 1.0}, {1.0, 1.0}};
  ReplayProcess process(records);
  sim::Rng rng(1);
  process.next_gap(rng);
  process.next_gap(rng);
  // Exactly one full pass: no recycled gap emitted yet, so no wrap.
  EXPECT_EQ(process.wraps(), 0u);
  process.next_gap(rng);
  EXPECT_EQ(process.wraps(), 1u);
  process.reset();
  EXPECT_EQ(process.wraps(), 0u);
  EXPECT_DOUBLE_EQ(process.next_gap(rng), 0.0);  // back to the first gap
}

TEST(ReplayProcessTest, RejectsDegenerateTraces) {
  EXPECT_THROW(ReplayProcess({}), std::invalid_argument);
  EXPECT_THROW(ReplayProcess({{0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(ReplayProcess({{1.0, 1.0}, {0.5, 1.0}}),
               std::invalid_argument);
}

TEST(ReplayTraceTest, EmpiricalRateSpansTheArrivals) {
  ReplayTrace trace;
  trace.arrivals = {{0.0, 1.0}, {1.0, 1.0}, {4.0, 1.0}};
  // 2 inter-arrival gaps over 4 seconds.
  EXPECT_DOUBLE_EQ(trace.empirical_rate(), 0.5);
  trace.arrivals.resize(1);
  EXPECT_DOUBLE_EQ(trace.empirical_rate(), 0.0);
}

class ReplayDirTest : public ::testing::Test {
 protected:
  std::string dir_ = ::testing::TempDir() + "staleload_replay_dir";

  void SetUp() override {
    // TempDir is per-run; the subdir keeps our files away from other suites.
    (void)std::system(("mkdir -p " + dir_).c_str());
    write_file(kManifestFile, [](std::ostream& out) {
      ReplayManifest manifest;
      manifest.backends = 2;
      manifest.update_period = 1.0;
      manifest.arrivals = 3;
      write_manifest(out, manifest);
    });
    write_file(kArrivalsFile, [](std::ostream& out) {
      write_arrivals(out, {{0.0, 0.5}, {1.0, 0.25}, {2.0, 1.0}});
    });
    write_file(kLoadsFile, [](std::ostream& out) {
      write_loads(out, {{0.5, 0, 1}, {0.5, 1, 0}});
    });
  }

  template <typename Writer>
  void write_file(const char* name, Writer writer) {
    std::ofstream out(dir_ + "/" + name);
    ASSERT_TRUE(out.good());
    writer(out);
  }
};

TEST_F(ReplayDirTest, LoadsAConsistentDirectory) {
  const ReplayTrace trace = load_replay_trace(dir_);
  EXPECT_EQ(trace.manifest.backends, 2);
  ASSERT_EQ(trace.arrivals.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.arrivals[1].size, 0.25);
  ASSERT_EQ(trace.loads.size(), 2u);
  EXPECT_EQ(trace.loads[1].server, 1);
}

TEST_F(ReplayDirTest, RejectsArrivalCountMismatch) {
  write_file(kArrivalsFile, [](std::ostream& out) {
    write_arrivals(out, {{0.0, 0.5}, {1.0, 0.25}});  // manifest promises 3
  });
  EXPECT_THROW(load_replay_trace(dir_), std::invalid_argument);
}

TEST_F(ReplayDirTest, MissingFilesAreRuntimeErrors) {
  EXPECT_THROW(load_replay_trace(dir_ + "-nonexistent"), std::runtime_error);
}

}  // namespace
}  // namespace stale::workload
