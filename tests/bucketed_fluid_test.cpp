// Golden cross-validation of the bucketed large-n path against the fluid
// (mean-field) model: at n = 10^4 the empirical phase-start board occupancy
// of a periodic Aggressive-LI run must track the fluid ODE's converged board
// marginal closely (the fluid limit is exact as n -> infinity; at 10^4
// servers the L1 gap is dominated by finite-n fluctuation, a few percent).
// This exercises the whole bucketed stack end to end — lazy cluster advance,
// incremental level index, O(#levels) kernels, histogram trace snapshots —
// against an independently derived prediction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "analysis/fluid_model.h"
#include "driver/experiment.h"
#include "obs/trace_recorder.h"

namespace {

TEST(BucketedFluidTest, LargeNBoardOccupancyTracksFluidModel) {
  constexpr int kServers = 10'000;
  constexpr double kLambda = 0.9;
  constexpr double kPhase = 1.0;
  // 20 phases of simulated time: the first 10 warm the system toward the
  // cyclo-stationary regime, the last 10 are measured.
  constexpr double kWarmupTime = 10.0;

  stale::driver::ExperimentConfig config;
  config.num_servers = kServers;
  config.lambda = kLambda;
  config.model = stale::driver::UpdateModel::kPeriodic;
  config.update_interval = kPhase;
  config.policy = "aggressive_li";
  config.board_repr = stale::policy::BoardRepr::kBucketed;
  config.num_jobs = 180'000;  // ~20 phases at lambda * n = 9000 jobs/time
  config.warmup_jobs = 1;     // measurement happens via the trace, not metrics
  config.trials = 1;

  stale::obs::RecorderOptions options;
  options.record_probabilities = false;
  stale::obs::TraceRecorder recorder(options);
  config.trace_sink = &recorder;

  stale::driver::run_trial(config, /*seed=*/20260809ULL);

  // Average the per-refresh level occupancy over the measured phases. At
  // n = 10^4 the recorder stores level counts, not per-server vectors.
  std::vector<double> occupancy;
  int refreshes_used = 0;
  for (const stale::obs::BoardRefresh& refresh : recorder.refreshes()) {
    if (refresh.measured < kWarmupTime) continue;
    const std::vector<std::int64_t> counts =
        stale::obs::refresh_level_counts(refresh);
    if (counts.size() > occupancy.size()) occupancy.resize(counts.size(), 0.0);
    for (std::size_t level = 0; level < counts.size(); ++level) {
      occupancy[level] +=
          static_cast<double>(counts[level]) / static_cast<double>(kServers);
    }
    ++refreshes_used;
  }
  ASSERT_GE(refreshes_used, 8) << "run too short to measure phase boundaries";
  for (double& mass : occupancy) mass /= refreshes_used;

  const stale::analysis::FluidResult fluid =
      stale::analysis::fluid_periodic_aggressive_li(kLambda, kPhase);
  ASSERT_TRUE(fluid.converged);
  ASSERT_FALSE(fluid.board_marginal.empty());

  double l1 = 0.0;
  const std::size_t levels =
      std::max(occupancy.size(), fluid.board_marginal.size());
  for (std::size_t level = 0; level < levels; ++level) {
    const double simulated =
        level < occupancy.size() ? occupancy[level] : 0.0;
    const double predicted = level < fluid.board_marginal.size()
                                 ? fluid.board_marginal[level]
                                 : 0.0;
    l1 += std::abs(simulated - predicted);
  }
  EXPECT_LE(l1, 0.12) << "simulated board occupancy diverged from the fluid "
                         "prediction (L1 over levels)";
}

}  // namespace
