// Differential-equivalence property tests for the bucketed LI kernels
// (core/li_bucketed.h): across random load vectors and K values, each
// bucketed kernel must assign every queue-length level exactly the total
// probability mass the O(n) vector kernel assigns to that level's members —
// the representation is a sufficient statistic, so any divergence is a bug.
// Also covers the group-count identities for Aggressive LI and an empirical
// policy-level check for the threshold rule's bucketed fast path.
#include "core/li_bucketed.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/aggressive_schedule.h"
#include "core/load_interpretation.h"
#include "policy/threshold_policy.h"
#include "sim/level_histogram.h"
#include "sim/rng.h"

namespace {

using stale::core::aggressive_level_masses;
using stale::core::basic_li_level_masses;
using stale::core::bucketed_aggressive_count_at;
using stale::core::bucketed_aggressive_stationary_count;
using stale::core::hybrid_li_first_interval_level_masses;
using stale::core::make_aggressive_schedule;
using stale::core::make_bucketed_aggressive_schedule;
using stale::sim::LevelHistogram;
using stale::sim::LevelIndex;
using stale::sim::Rng;

constexpr double kTol = 1e-9;

std::vector<int> random_loads(Rng& rng, int n, int max_level) {
  std::vector<int> loads(static_cast<std::size_t>(n));
  for (int& load : loads) {
    load = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(max_level) + 1));
  }
  return loads;
}

// Collapses a per-server probability vector to per-level total masses.
std::vector<double> collapse_to_levels(std::span<const double> p,
                                       std::span<const int> loads) {
  int top = 0;
  for (int level : loads) top = std::max(top, level);
  std::vector<double> sums(static_cast<std::size_t>(top) + 1, 0.0);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    sums[static_cast<std::size_t>(loads[i])] += p[i];
  }
  return sums;
}

void expect_same_level_masses(std::span<const double> bucketed,
                              std::span<const double> vector_path,
                              const std::string& label) {
  const std::size_t levels = std::max(bucketed.size(), vector_path.size());
  for (std::size_t level = 0; level < levels; ++level) {
    const double a = level < bucketed.size() ? bucketed[level] : 0.0;
    const double b = level < vector_path.size() ? vector_path[level] : 0.0;
    EXPECT_NEAR(a, b, kTol) << label << " at level " << level;
  }
}

TEST(LiBucketedTest, BasicLiMatchesVectorKernelAcrossRandomInputs) {
  Rng rng(2024);
  const double kValues[] = {0.0, 1e-13, 0.3, 1.0, 4.5, 17.0, 250.0, 1e6};
  for (int round = 0; round < 40; ++round) {
    const int n = 1 + static_cast<int>(rng.next_below(100));
    const int top = 1 + static_cast<int>(rng.next_below(12));
    const std::vector<int> loads = random_loads(rng, n, top);
    LevelHistogram hist;
    hist.assign(loads);
    for (const double expected_arrivals : kValues) {
      const std::vector<double> masses =
          basic_li_level_masses(hist, expected_arrivals);
      const std::vector<double> p =
          stale::core::basic_li_probabilities(loads, expected_arrivals);
      expect_same_level_masses(
          masses, collapse_to_levels(p, loads),
          "basic_li K=" + std::to_string(expected_arrivals) + " round " +
              std::to_string(round));
    }
  }
}

TEST(LiBucketedTest, AggressiveGroupCountsMatchVectorSchedule) {
  Rng rng(777);
  for (int round = 0; round < 40; ++round) {
    const int n = 1 + static_cast<int>(rng.next_below(80));
    const std::vector<int> loads = random_loads(rng, n, 9);
    LevelHistogram hist;
    hist.assign(loads);
    const auto bucketed = make_bucketed_aggressive_schedule(hist);
    const auto vector_schedule = make_aggressive_schedule(loads);
    for (const double x : {0.0, 0.4, 1.0, 3.7, 12.0, 55.0, 1e5}) {
      // Periodic rule: the expanding group is always a whole tied class, so
      // the counts must agree exactly.
      EXPECT_EQ(bucketed_aggressive_count_at(bucketed, x),
                stale::core::aggressive_group_at(vector_schedule, x))
          << "group_at(" << x << ") round " << round;
      // Per-level masses of a uniform pick over the group.
      const auto count = bucketed_aggressive_count_at(bucketed, x);
      const std::vector<double> p = stale::core::aggressive_group_probabilities(
          vector_schedule, static_cast<int>(count));
      expect_same_level_masses(aggressive_level_masses(bucketed, count),
                               collapse_to_levels(p, loads),
                               "aggressive masses round " +
                                   std::to_string(round));
    }
    for (const double k : {0.2, 1.0, 6.0, 40.0, 1e5}) {
      // Stationary rule for K > 0 (at K == 0 the vector path's index
      // tie-break picks one server of the minimum class, the bucketed path
      // the whole class — same per-level mass, different counts).
      EXPECT_EQ(bucketed_aggressive_stationary_count(bucketed, k),
                stale::core::aggressive_stationary_group(vector_schedule, k))
          << "stationary(" << k << ") round " << round;
    }
    // The K == 0 per-level identity promised by the header contract.
    const auto zero_count = bucketed_aggressive_stationary_count(bucketed, 0.0);
    const std::vector<double> p0 = stale::core::aggressive_group_probabilities(
        vector_schedule, stale::core::aggressive_stationary_group(
                             vector_schedule, 0.0));
    expect_same_level_masses(aggressive_level_masses(bucketed, zero_count),
                             collapse_to_levels(p0, loads),
                             "stationary K=0 round " + std::to_string(round));
  }
}

TEST(LiBucketedTest, HybridMatchesVectorKernelAcrossRandomInputs) {
  Rng rng(31337);
  for (int round = 0; round < 40; ++round) {
    const int n = 1 + static_cast<int>(rng.next_below(80));
    const std::vector<int> loads = random_loads(rng, n, 7);
    LevelHistogram hist;
    hist.assign(loads);
    std::vector<double> real_loads(loads.begin(), loads.end());
    EXPECT_EQ(stale::core::hybrid_li_first_interval_jobs(hist),
              stale::core::hybrid_li_first_interval_jobs(
                  std::span<const double>(real_loads)))
        << "first-interval jobs round " << round;
    // The first-interval distribution only matters when the interval is
    // nonempty; the all-equal case never samples it (jobs == 0).
    if (stale::core::hybrid_li_first_interval_jobs(hist) == 0.0) continue;
    const std::vector<double> p =
        stale::core::hybrid_li_first_interval_probabilities(real_loads);
    expect_same_level_masses(hybrid_li_first_interval_level_masses(hist),
                             collapse_to_levels(p, loads),
                             "hybrid masses round " + std::to_string(round));
  }
}

// The threshold policy's bucketed fast path must reproduce the vector
// reservoir's distribution: uniform over servers at/below the threshold, and
// uniform over the least-loaded level when everyone is heavy. Checked
// empirically at the policy level (the paths share no code).
TEST(LiBucketedTest, ThresholdBucketedPathMatchesVectorDistribution) {
  const std::vector<int> loads = {5, 2, 7, 2, 3, 9, 2, 4};
  LevelIndex index;
  index.build(loads);
  for (const int threshold : {3, 0}) {  // light set nonempty / empty
    stale::policy::ThresholdPolicy policy(
        stale::policy::SelectionPolicy::kAllServers, threshold);
    stale::policy::DispatchContext vector_context;
    vector_context.loads = loads;
    stale::policy::DispatchContext bucketed_context = vector_context;
    bucketed_context.levels = &index;
    ASSERT_TRUE(bucketed_context.use_bucketed());

    const int kDraws = 60000;
    std::vector<int> vector_hits(loads.size(), 0);
    std::vector<int> bucketed_hits(loads.size(), 0);
    Rng vector_rng(1);
    Rng bucketed_rng(2);
    for (int i = 0; i < kDraws; ++i) {
      ++vector_hits[static_cast<std::size_t>(
          policy.select(vector_context, vector_rng))];
      ++bucketed_hits[static_cast<std::size_t>(
          policy.select(bucketed_context, bucketed_rng))];
    }
    for (std::size_t i = 0; i < loads.size(); ++i) {
      EXPECT_NEAR(vector_hits[i] / static_cast<double>(kDraws),
                  bucketed_hits[i] / static_cast<double>(kDraws), 0.02)
          << "server " << i << " threshold " << threshold;
    }
  }
}

// LevelSampler two-stage draw: per-server frequency must match the level
// mass split uniformly within each level.
TEST(LiBucketedTest, LevelSamplerMatchesPerServerDistribution) {
  const std::vector<int> loads = {0, 2, 0, 1};
  LevelIndex index;
  index.build(loads);
  const std::vector<double> masses = {0.5, 0.3, 0.2};  // by level
  stale::core::LevelSampler sampler{std::span<const double>(masses)};
  Rng rng(4242);
  std::vector<int> hits(loads.size(), 0);
  const int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    ++hits[static_cast<std::size_t>(sampler.sample(index, rng))];
  }
  const std::vector<double> expected = {0.25, 0.2, 0.25, 0.3};
  for (std::size_t i = 0; i < loads.size(); ++i) {
    EXPECT_NEAR(hits[i] / static_cast<double>(kDraws), expected[i], 0.015)
        << "server " << i;
  }
}

}  // namespace
