// Parameterized property sweeps that cut across modules:
//  - every distribution spec's sampled moments match its analytic moments,
//  - every policy spec satisfies the dispatch-contract invariants under
//    randomized contexts (in-range result, determinism per seed, sane
//    behaviour at the age extremes).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "policy/policy_factory.h"
#include "sim/distributions.h"
#include "sim/rng.h"
#include "workload/job_size.h"

namespace stale {
namespace {

// ---------------------------------------------------------------------------
// Distribution moment sweep.
// ---------------------------------------------------------------------------

class DistributionMomentsTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(DistributionMomentsTest, SampledMomentsMatchAnalytic) {
  const auto dist = workload::make_job_size(GetParam());
  sim::Rng rng(0xD157 ^ std::hash<std::string>{}(GetParam()));
  const int n = 400000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = dist->sample(rng);
    ASSERT_GE(x, 0.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, dist->mean(), std::max(0.02, 0.03 * dist->mean()))
      << dist->describe();
  // Variance comparison only where sampling noise is manageable: skip the
  // very heavy tails (alpha close to 1 makes the empirical second moment
  // dominated by a handful of samples).
  const double variance = sum_sq / n - mean * mean;
  if (dist->variance() < 50.0) {
    EXPECT_NEAR(variance, dist->variance(),
                std::max(0.05, 0.12 * dist->variance()))
        << dist->describe();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Specs, DistributionMomentsTest,
    ::testing::Values("det:1.5", "exp:0.25", "exp:1", "exp:4", "uniform:0:1",
                      "uniform:2:6", "hyper:0.2:0.5:3", "hyper:0.8:2:0.1",
                      "bpmean:1.5:1:100", "bpmean:1.9:1:1000", "bp:2.5:1:50",
                      "pareto_fig11"));

// ---------------------------------------------------------------------------
// Policy contract sweep.
// ---------------------------------------------------------------------------

class PolicyContractTest : public ::testing::TestWithParam<const char*> {};

policy::DispatchContext make_context(const std::vector<int>& loads,
                                     double age, std::uint64_t version) {
  policy::DispatchContext context;
  context.loads = loads;
  context.age = age;
  context.lambda_total = 0.9 * static_cast<double>(loads.size());
  context.info_version = version;
  return context;
}

TEST_P(PolicyContractTest, ResultsAlwaysInRange) {
  const auto policy = policy::make_policy(GetParam());
  sim::Rng rng(0x90C1);
  sim::Rng load_rng(0x90C2);
  std::uint64_t version = 0;
  for (int n : {1, 2, 3, 10, 41}) {
    for (int rep = 0; rep < 300; ++rep) {
      std::vector<int> loads(static_cast<std::size_t>(n));
      for (int& b : loads) {
        b = static_cast<int>(load_rng.next_below(12));
      }
      const double age = 8.0 * load_rng.next_double();
      const auto context = make_context(loads, age, ++version);
      const int pick = policy->select(context, rng);
      ASSERT_GE(pick, 0) << GetParam() << " n=" << n;
      ASSERT_LT(pick, n) << GetParam() << " n=" << n;
    }
  }
}

TEST_P(PolicyContractTest, DeterministicGivenSeedAndContext) {
  const std::vector<int> loads = {3, 0, 7, 2, 5};
  const auto context = make_context(loads, 2.5, 9);
  const auto policy_a = policy::make_policy(GetParam());
  const auto policy_b = policy::make_policy(GetParam());
  sim::Rng rng_a(123);
  sim::Rng rng_b(123);
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(policy_a->select(context, rng_a),
              policy_b->select(context, rng_b))
        << GetParam() << " draw " << i;
  }
}

TEST_P(PolicyContractTest, NeverPicksDominatedServerWhenFresh) {
  // With age 0 (and a periodic phase about to start), no sensible policy
  // should send *every* request to the most loaded server; and the
  // load-aware ones must favour the least loaded. We assert the weak,
  // universally-true form: over many draws the unique most-loaded server
  // receives no more than the unique least-loaded one.
  const std::string spec = GetParam();
  const auto policy = policy::make_policy(spec);
  const std::vector<int> loads = {0, 4, 9};  // distinct
  const auto context = make_context(loads, 0.0, 77);
  sim::Rng rng(31337);
  int least = 0;
  int most = 0;
  for (int i = 0; i < 30000; ++i) {
    const int pick = policy->select(context, rng);
    if (pick == 0) ++least;
    if (pick == 2) ++most;
  }
  EXPECT_GE(least + 600, most) << spec;  // 2% slack for pure-random policies
}

TEST_P(PolicyContractTest, SingleServerDegenerateCase) {
  const auto policy = policy::make_policy(GetParam());
  const std::vector<int> loads = {5};
  const auto context = make_context(loads, 3.0, 1);
  sim::Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(policy->select(context, rng), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Specs, PolicyContractTest,
                         ::testing::Values("random", "k_subset:1",
                                           "k_subset:2", "k_subset:3",
                                           "threshold:2:4", "threshold:all:8",
                                           "basic_li", "aggressive_li",
                                           "hybrid_li", "basic_li_k:2",
                                           "basic_li_k:3"));

}  // namespace
}  // namespace stale
