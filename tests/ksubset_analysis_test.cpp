#include "core/ksubset_analysis.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace stale::core {
namespace {

// Direct binomial-coefficient evaluation of Eq. 1 for cross-checking the
// running-product implementation.
double binomial(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  double result = 1.0;
  for (int i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return result;
}

TEST(KsubsetAnalysisTest, MatchesDirectBinomialFormula) {
  for (int n : {2, 5, 10, 25}) {
    for (int k = 1; k <= n; ++k) {
      const auto p = ksubset_rank_probabilities(n, k);
      for (int rank = 1; rank <= n; ++rank) {
        const double expected = binomial(n - rank, k - 1) / binomial(n, k);
        ASSERT_NEAR(p[static_cast<std::size_t>(rank - 1)], expected, 1e-12)
            << "n=" << n << " k=" << k << " rank=" << rank;
      }
    }
  }
}

TEST(KsubsetAnalysisTest, DistributionsSumToOne) {
  for (int n : {1, 3, 10, 100}) {
    for (int k = 1; k <= n; k += std::max(1, n / 7)) {
      const auto p = ksubset_rank_probabilities(n, k);
      const double sum = std::accumulate(p.begin(), p.end(), 0.0);
      ASSERT_NEAR(sum, 1.0, 1e-9) << "n=" << n << " k=" << k;
    }
  }
}

TEST(KsubsetAnalysisTest, KOneIsUniform) {
  const auto p = ksubset_rank_probabilities(10, 1);
  for (double v : p) EXPECT_NEAR(v, 0.1, 1e-12);
}

TEST(KsubsetAnalysisTest, KEqualsNIsDeterministicGreedy) {
  const auto p = ksubset_rank_probabilities(10, 10);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  for (std::size_t i = 1; i < p.size(); ++i) EXPECT_EQ(p[i], 0.0);
}

TEST(KsubsetAnalysisTest, TopRankShareIsKOverN) {
  // The Figure 1 anchor: P(rank 1) = k / n (0.2 for n = 10, k = 2 — the
  // intercept that pins the paper's default n).
  EXPECT_DOUBLE_EQ(ksubset_rank_probability(10, 2, 1), 0.2);
  EXPECT_DOUBLE_EQ(ksubset_rank_probability(10, 3, 1), 0.3);
  EXPECT_DOUBLE_EQ(ksubset_rank_probability(100, 2, 1), 0.02);
}

TEST(KsubsetAnalysisTest, HeaviestKMinusOneServersGetNothing) {
  const int n = 10;
  for (int k = 2; k <= n; ++k) {
    const auto p = ksubset_rank_probabilities(n, k);
    for (int rank = n - k + 2; rank <= n; ++rank) {
      ASSERT_EQ(p[static_cast<std::size_t>(rank - 1)], 0.0)
          << "k=" << k << " rank=" << rank;
    }
    ASSERT_GT(p[static_cast<std::size_t>(n - k)], 0.0);
  }
}

TEST(KsubsetAnalysisTest, MonotoneDecreasingInRank) {
  for (int k : {2, 3, 5}) {
    const auto p = ksubset_rank_probabilities(10, k);
    for (std::size_t i = 1; i < p.size(); ++i) {
      ASSERT_LE(p[i], p[i - 1] + 1e-15);
    }
  }
}

TEST(KsubsetAnalysisTest, LargerKConcentratesOnLowRanks) {
  // Figure 1's qualitative message: as k grows, more of the mass lands on
  // the lowest-ranked servers.
  const auto k2 = ksubset_rank_probabilities(10, 2);
  const auto k5 = ksubset_rank_probabilities(10, 5);
  EXPECT_GT(k5[0], k2[0]);
  EXPECT_GT(k5[0] + k5[1], k2[0] + k2[1]);
}

TEST(KsubsetAnalysisTest, RejectsBadArguments) {
  EXPECT_THROW(ksubset_rank_probabilities(0, 1), std::invalid_argument);
  EXPECT_THROW(ksubset_rank_probabilities(5, 0), std::invalid_argument);
  EXPECT_THROW(ksubset_rank_probabilities(5, 6), std::invalid_argument);
  EXPECT_THROW(ksubset_rank_probability(5, 2, 0), std::invalid_argument);
  EXPECT_THROW(ksubset_rank_probability(5, 2, 6), std::invalid_argument);
}

}  // namespace
}  // namespace stale::core
