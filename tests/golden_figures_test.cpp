// Golden statistical regression tests (ISSUE 4): fixed-seed reduced-size
// versions of the paper's key figures, asserting the mean response per
// policy stays within a tight tolerance of committed values. A behavioural
// change anywhere in the stack — RNG, queueing, boards, policies, driver —
// moves these numbers; herd-sized effects move them by 2x or more, while the
// tolerance absorbs cross-platform libm drift.
//
// To regenerate after an *intentional* change:
//   STALELOAD_REGEN_GOLDEN=1 ./build/tests/staleload_golden_tests
// which rewrites tests/golden/*.csv in place; commit the diff with the
// change that caused it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "driver/trace_support.h"
#include "sim/rng.h"

namespace stale::driver {
namespace {

constexpr std::uint64_t kSeed = 0x601DE2ULL;

struct GoldenRow {
  std::string policy;
  double t = 0.0;
  double mean_response = 0.0;
};

std::string golden_path(const std::string& figure) {
  return std::string(GOLDEN_DIR) + "/" + figure + ".csv";
}

std::vector<GoldenRow> load_golden(const std::string& figure) {
  std::ifstream in(golden_path(figure));
  std::vector<GoldenRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line.rfind("policy,", 0) == 0) {
      continue;
    }
    std::istringstream cells(line);
    GoldenRow row;
    std::string t_cell, mean_cell;
    if (std::getline(cells, row.policy, ',') &&
        std::getline(cells, t_cell, ',') && std::getline(cells, mean_cell)) {
      row.t = std::stod(t_cell);
      row.mean_response = std::stod(mean_cell);
      rows.push_back(row);
    }
  }
  return rows;
}

std::string to_csv(const std::vector<GoldenRow>& rows) {
  std::ostringstream out;
  out << "policy,T,mean_response\n";
  out.precision(10);
  for (const GoldenRow& row : rows) {
    out << row.policy << ',' << row.t << ',' << row.mean_response << '\n';
  }
  return out.str();
}

std::vector<GoldenRow> run_figure(ExperimentConfig base,
                                  const std::vector<double>& t_values,
                                  const std::vector<std::string>& policies) {
  std::vector<GoldenRow> rows;
  for (double t : t_values) {
    for (const std::string& policy : policies) {
      ExperimentConfig config = base;
      config.update_interval = t;
      config.policy = policy;
      config.base_seed = kSeed;
      const ExperimentResult result = run_experiment(config);
      rows.push_back({policy, t, result.mean()});
    }
  }
  return rows;
}

// Compares measured against committed within 2% relative (+0.02 absolute to
// keep tiny means from over-tightening), or rewrites the golden file when
// STALELOAD_REGEN_GOLDEN is set.
void check_against_golden(const std::string& figure,
                          const std::vector<GoldenRow>& measured) {
  if (std::getenv("STALELOAD_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(figure));
    out << "# Regenerate: STALELOAD_REGEN_GOLDEN=1 ./staleload_golden_tests\n"
        << to_csv(measured);
    GTEST_SKIP() << "regenerated " << golden_path(figure);
  }
  const std::vector<GoldenRow> golden = load_golden(figure);
  ASSERT_FALSE(golden.empty())
      << "missing or empty golden file " << golden_path(figure)
      << "; regenerate with STALELOAD_REGEN_GOLDEN=1";
  ASSERT_EQ(golden.size(), measured.size())
      << "figure shape changed; measured values:\n"
      << to_csv(measured);
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(measured[i].policy, golden[i].policy) << "row " << i;
    EXPECT_DOUBLE_EQ(measured[i].t, golden[i].t) << "row " << i;
    const double tolerance = 0.02 * golden[i].mean_response + 0.02;
    EXPECT_NEAR(measured[i].mean_response, golden[i].mean_response, tolerance)
        << "policy " << golden[i].policy << " at T=" << golden[i].t
        << " drifted; full measured table (regenerate only if the change is "
           "intentional):\n"
        << to_csv(measured);
  }
}

const std::vector<std::string>& figure_policies() {
  static const std::vector<std::string> kPolicies = {
      "random", "k_subset:2", "k_subset:10", "basic_li", "aggressive_li"};
  return kPolicies;
}

TEST(GoldenFigureTest, Fig02PeriodicUpdate) {
  ExperimentConfig base;
  base.num_servers = 10;
  base.lambda = 0.9;
  base.model = UpdateModel::kPeriodic;
  base.num_jobs = 30'000;
  base.warmup_jobs = 6'000;
  base.trials = 3;
  check_against_golden(
      "fig02_periodic",
      run_figure(base, {1.0, 8.0}, figure_policies()));
}

TEST(GoldenFigureTest, Fig06ContinuousUpdate) {
  ExperimentConfig base;
  base.num_servers = 10;
  base.lambda = 0.9;
  base.model = UpdateModel::kContinuous;
  base.delay_kind = loadinfo::DelayKind::kExponential;
  base.know_actual_age = false;
  base.num_jobs = 30'000;
  base.warmup_jobs = 6'000;
  base.trials = 3;
  check_against_golden(
      "fig06_continuous",
      run_figure(base, {1.0, 8.0}, figure_policies()));
}

// Herd amplification under dispatcher scale-out (ISSUE 9): D cooperating
// dispatchers over one cluster, with the update interval scaled as T = 2*D
// so the cluster-wide LI message rate stays matched while each dispatcher's
// view grows staler. Greedy-on-stale (basic_li) degrades monotonically in D
// — every dispatcher herds onto the same reported-shortest servers, and
// deeper staleness makes the herds worse. JIQ-SQ(2) never reads the stale
// board (idle tokens are exact), so it stays comparatively flat; plain
// JIQ-Random sits between (its tokens are exact too, but splitting them
// across D independent idle queues wastes some). The golden file pins the
// exact means; the explicit assertions pin the shape of the story so a
// regenerated golden can't silently invert it.
TEST(GoldenFigureTest, HerdAmplificationDispatcherSweep) {
  const std::vector<int> d_values = {1, 2, 4, 8};
  const std::vector<std::string> policies = {"basic_li", "jiq", "jiq:sq:2"};
  std::vector<GoldenRow> rows;
  std::map<std::string, std::vector<double>> by_policy;
  for (int d : d_values) {
    for (const std::string& policy : policies) {
      ExperimentConfig config;
      config.num_servers = 32;
      config.lambda = 0.8;
      config.model = UpdateModel::kPeriodic;
      config.update_interval = 2.0 * d;
      config.dispatchers = d;
      config.policy = policy;
      config.num_jobs = 24'000;
      config.warmup_jobs = 5'000;
      config.trials = 3;
      config.base_seed = kSeed;
      const ExperimentResult result = run_experiment(config);
      // The D value rides in the golden file's T column.
      rows.push_back({policy, static_cast<double>(d), result.mean()});
      by_policy[policy].push_back(result.mean());
    }
  }

  // Greedy-on-stale degrades monotonically in D.
  const std::vector<double>& greedy = by_policy["basic_li"];
  for (std::size_t i = 1; i < greedy.size(); ++i) {
    EXPECT_GT(greedy[i], greedy[i - 1])
        << "basic_li mean did not degrade from D=" << d_values[i - 1]
        << " to D=" << d_values[i];
  }
  // JIQ beats the stale board at every scale, and JIQ-SQ(2)'s total drift
  // across the sweep is less than half the greedy degradation: the policy
  // without a staleness channel is the flat line in the figure.
  const std::vector<double>& jiq_sq = by_policy["jiq:sq:2"];
  for (std::size_t i = 0; i < d_values.size(); ++i) {
    EXPECT_LT(by_policy["jiq"][i], greedy[i]) << "at D=" << d_values[i];
    EXPECT_LT(jiq_sq[i], greedy[i]) << "at D=" << d_values[i];
  }
  EXPECT_LT(jiq_sq.back() - jiq_sq.front(),
            0.5 * (greedy.back() - greedy.front()))
      << "JIQ-SQ(2) drifted like a herding policy across the D sweep";

  check_against_golden("dsweep_multi_dispatcher", rows);
}

// Flash crowd vs the rate estimator (ISSUE 10): a trickle (5% load) until
// t = 400, then a 16x flash crowd that holds for the rest of the run (80%
// load). K = lambda*T interpretation is only right when lambda is right: the
// fixed "told" estimator keeps believing the trickle rate, so K stays ~1 and
// Basic LI sends essentially every arrival of a phase to the one server the
// stale board shows as least loaded — the herd effect the paper's
// interpretation exists to prevent. `cema` re-estimates lambda from bucketed
// arrival counts within a few staleness phases, K grows to ~the real
// arrivals-per-phase, and the dispatch spreads again. The golden file pins
// both means; the explicit assertions pin the mechanism (per-phase dispatch
// concentration) and the harm (response-time gap), so a regenerated golden
// can't silently flip the story.
TEST(GoldenFigureTest, FlashCrowdEstimatorAdaptation) {
  ExperimentConfig base;
  base.num_servers = 10;
  base.lambda = 0.05;  // trickle; the flash plateau runs at 16x = 0.8 load
  base.model = UpdateModel::kPeriodic;
  base.update_interval = 2.0;
  base.policy = "basic_li";
  base.arrival_spec = "flash:400:16:100:100000:200";
  base.num_jobs = 24'000;
  base.warmup_jobs = 5'000;  // trickle + ramp end well inside warmup
  base.trials = 3;
  base.base_seed = kSeed;

  std::vector<GoldenRow> rows;
  std::map<std::string, double> means;
  std::map<std::string, double> concentration;
  for (const std::string& estimator : {std::string("told"),
                                       std::string("cema:0.2")}) {
    ExperimentConfig config = base;
    config.rate_estimator = estimator;
    const ExperimentResult result = run_experiment(config);
    rows.push_back({estimator, 0.0, result.mean()});
    means[estimator] = result.mean();
    const TraceReport traced =
        run_traced_trial(config, sim::trial_seed(kSeed, 0));
    // run_traced_trial guesses its analysis window from the *configured*
    // base rate, which a 16x flash overshoots wildly; rerun the herd
    // diagnostic over an explicit window that starts on the flash plateau.
    obs::HerdOptions herd_options;
    herd_options.t_begin = 1'200.0;  // past onset (400) + ramp (100)
    herd_options.phase_length = base.update_interval;
    herd_options.num_servers = base.num_servers;
    concentration[estimator] =
        obs::detect_herd(traced.recorder, herd_options).mean_concentration;
  }

  // Mechanism: with lambda believed 16x too low, a typical phase's
  // dispatches pile onto one server; the adaptive estimate spreads them.
  EXPECT_GT(concentration["told"], 1.5 * concentration["cema:0.2"])
      << "fixed-lambda dispatch should be markedly more concentrated per "
      << "phase (told " << concentration["told"] << " vs cema "
      << concentration["cema:0.2"] << ")";
  // Harm: the herded flash costs response time.
  EXPECT_GT(means["told"], 1.3 * means["cema:0.2"])
      << "fixed-lambda should pay for herding the flash crowd (told "
      << means["told"] << " vs cema " << means["cema:0.2"] << ")";

  check_against_golden("flash_estimator", rows);
}

TEST(GoldenFigureTest, Fig08UpdateOnAccess) {
  ExperimentConfig base;
  base.num_servers = 10;
  base.lambda = 0.9;
  base.model = UpdateModel::kUpdateOnAccess;
  base.num_jobs = 24'000;
  base.warmup_jobs = 5'000;
  base.trials = 3;
  check_against_golden(
      "fig08_update_on_access",
      run_figure(base, {1.0, 8.0}, figure_policies()));
}

}  // namespace
}  // namespace stale::driver
