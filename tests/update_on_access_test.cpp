#include "driver/update_on_access.h"

#include <gtest/gtest.h>

#include <vector>

#include "policy/policy.h"
#include "workload/arrival_process.h"

namespace stale::driver {
namespace {

// Probe policy: records every context it sees and dispatches round-robin.
class RecordingPolicy final : public policy::SelectionPolicy {
 public:
  int select(const policy::DispatchContext& context, sim::Rng&) override {
    ages.push_back(context.age);
    loads_seen.emplace_back(context.loads.begin(), context.loads.end());
    return static_cast<int>(ages.size() - 1) %
           static_cast<int>(context.loads.size());
  }
  std::string name() const override { return "recording"; }

  std::vector<double> ages;
  std::vector<std::vector<int>> loads_seen;
};

TEST(UpdateOnAccessEngineTest, FirstSnapshotsAreEmptyCluster) {
  queueing::Cluster cluster(3);
  RecordingPolicy policy;
  workload::PoissonProcess gaps(1.0);
  sim::Exponential sizes(1.0);
  sim::Rng rng(1);
  UpdateOnAccessEngine engine(cluster, policy, gaps, sizes, 3.0, 2, rng);
  queueing::ResponseMetrics metrics(0);
  engine.step(metrics);
  engine.step(metrics);
  // Both clients' first requests carry the truthful time-zero snapshot.
  EXPECT_EQ(policy.loads_seen[0], (std::vector<int>{0, 0, 0}));
  EXPECT_EQ(policy.loads_seen[1], (std::vector<int>{0, 0, 0}));
}

TEST(UpdateOnAccessEngineTest, SnapshotReflectsPostDispatchLoads) {
  // One client: its second request must see exactly the loads right after
  // its first dispatch (one job on the chosen server, minus any departures).
  queueing::Cluster cluster(2);
  RecordingPolicy policy;
  workload::PoissonProcess gaps(100.0);  // requests 0.01 apart on average
  sim::Deterministic sizes(50.0);        // nothing departs in between
  sim::Rng rng(2);
  UpdateOnAccessEngine engine(cluster, policy, gaps, sizes, 200.0, 1, rng);
  queueing::ResponseMetrics metrics(0);
  engine.step(metrics);  // dispatches to server 0 (round-robin from 0)
  engine.step(metrics);
  ASSERT_EQ(policy.loads_seen.size(), 2u);
  EXPECT_EQ(policy.loads_seen[1], (std::vector<int>{1, 0}));
}

TEST(UpdateOnAccessEngineTest, AgeEqualsGapBetweenRequests) {
  queueing::Cluster cluster(2);
  RecordingPolicy policy;
  workload::PoissonProcess gaps(0.25);  // mean gap 4
  sim::Exponential sizes(1.0);
  sim::Rng rng(3);
  UpdateOnAccessEngine engine(cluster, policy, gaps, sizes, 0.5, 1, rng);
  queueing::ResponseMetrics metrics(0);
  double last_time = 0.0;
  double prev_time = 0.0;
  for (int i = 0; i < 200; ++i) {
    prev_time = last_time;
    last_time = engine.step(metrics);
    if (i == 0) continue;  // first age is measured from t = 0
    ASSERT_NEAR(policy.ages[static_cast<std::size_t>(i)],
                last_time - prev_time, 1e-12);
  }
}

TEST(UpdateOnAccessEngineTest, ClientsInterleaveByTime) {
  queueing::Cluster cluster(2);
  RecordingPolicy policy;
  workload::PoissonProcess gaps(1.0);
  sim::Exponential sizes(1.0);
  sim::Rng rng(4);
  UpdateOnAccessEngine engine(cluster, policy, gaps, sizes, 2.0, 5, rng);
  queueing::ResponseMetrics metrics(0);
  double prev = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double t = engine.step(metrics);
    ASSERT_GE(t, prev);  // global dispatch order is by time
    prev = t;
  }
  EXPECT_EQ(engine.num_clients(), 5);
}

TEST(UpdateOnAccessEngineTest, RecordsEveryResponse) {
  queueing::Cluster cluster(2);
  RecordingPolicy policy;
  workload::PoissonProcess gaps(1.0);
  sim::Exponential sizes(1.0);
  sim::Rng rng(5);
  UpdateOnAccessEngine engine(cluster, policy, gaps, sizes, 2.0, 3, rng);
  queueing::ResponseMetrics metrics(10);
  for (int i = 0; i < 100; ++i) engine.step(metrics);
  EXPECT_EQ(metrics.total_jobs(), 100u);
  EXPECT_EQ(metrics.measured_jobs(), 90u);
  EXPECT_GT(metrics.mean_response(), 0.0);
}

TEST(UpdateOnAccessEngineTest, RejectsZeroClients) {
  queueing::Cluster cluster(2);
  RecordingPolicy policy;
  workload::PoissonProcess gaps(1.0);
  sim::Exponential sizes(1.0);
  sim::Rng rng(6);
  EXPECT_THROW(
      UpdateOnAccessEngine(cluster, policy, gaps, sizes, 2.0, 0, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace stale::driver
