#include "queueing/fifo_server.h"

#include <gtest/gtest.h>

namespace stale::queueing {
namespace {

TEST(FifoServerTest, SingleJobDepartsAfterService) {
  FifoServer server;
  EXPECT_DOUBLE_EQ(server.assign(1.0, 2.5), 3.5);
  EXPECT_EQ(server.length(), 1);
  server.advance_to(3.5);
  EXPECT_EQ(server.length(), 0);
  EXPECT_EQ(server.completed_jobs(), 1u);
}

TEST(FifoServerTest, JobsQueueFifo) {
  FifoServer server;
  EXPECT_DOUBLE_EQ(server.assign(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(server.assign(0.1, 1.0), 2.0);  // waits behind job 1
  EXPECT_DOUBLE_EQ(server.assign(0.2, 1.0), 3.0);
  EXPECT_EQ(server.length(), 3);
  server.advance_to(2.5);
  EXPECT_EQ(server.length(), 1);
}

TEST(FifoServerTest, IdleGapResetsReadyTime) {
  FifoServer server;
  server.assign(0.0, 1.0);     // departs at 1
  server.advance_to(5.0);      // long idle gap
  EXPECT_DOUBLE_EQ(server.assign(5.0, 1.0), 6.0);
}

TEST(FifoServerTest, ServiceRateScalesServiceTime) {
  FifoServer server(2.0);
  EXPECT_DOUBLE_EQ(server.assign(0.0, 1.0), 0.5);
}

TEST(FifoServerTest, ReadyTimeTracksBacklog) {
  FifoServer server;
  EXPECT_DOUBLE_EQ(server.ready_time(0.0), 0.0);
  server.assign(0.0, 2.0);
  EXPECT_DOUBLE_EQ(server.ready_time(0.5), 2.0);
}

TEST(FifoServerTest, AdvanceBackwardsThrows) {
  FifoServer server;
  server.advance_to(2.0);
  EXPECT_THROW(server.advance_to(1.0), std::invalid_argument);
}

TEST(FifoServerTest, RejectsBadConstruction) {
  EXPECT_THROW(FifoServer(0.0), std::invalid_argument);
  EXPECT_THROW(FifoServer(-1.0), std::invalid_argument);
  EXPECT_THROW(FifoServer(1.0, -1.0), std::invalid_argument);
}

TEST(FifoServerTest, HistoryReconstructsPastLengths) {
  FifoServer server(1.0, 100.0);
  server.assign(1.0, 2.0);  // length 1 during [1, 3)
  server.assign(2.0, 2.0);  // length 2 during [2, 3), departs at 5
  server.advance_to(10.0);
  EXPECT_EQ(server.length_at(0.5), 0);
  EXPECT_EQ(server.length_at(1.0), 1);
  EXPECT_EQ(server.length_at(1.5), 1);
  EXPECT_EQ(server.length_at(2.5), 2);
  EXPECT_EQ(server.length_at(3.0), 1);  // first departure at exactly 3
  EXPECT_EQ(server.length_at(4.9), 1);
  EXPECT_EQ(server.length_at(5.0), 0);
  EXPECT_EQ(server.length_at(9.0), 0);
}

TEST(FifoServerTest, HistoryQueryAtCurrentTimeMatchesLength) {
  FifoServer server(1.0, 50.0);
  server.assign(0.0, 10.0);
  server.assign(1.0, 10.0);
  server.advance_to(5.0);
  EXPECT_EQ(server.length_at(5.0), server.length());
}

TEST(FifoServerTest, HistoryDisabledThrows) {
  FifoServer server;
  server.assign(0.0, 1.0);
  EXPECT_THROW(server.length_at(0.5), std::logic_error);
}

TEST(FifoServerTest, HistoryFutureQueryThrows) {
  FifoServer server(1.0, 10.0);
  server.advance_to(1.0);
  EXPECT_THROW(server.length_at(2.0), std::invalid_argument);
}

TEST(FifoServerTest, HistoryPruningKeepsWindowQueriesExact) {
  // Drive many jobs through, then query across the retained window; pruning
  // must never disturb results inside the window.
  // Dyadic times keep the arithmetic exact: job i arrives at 0.25 * (i+1)
  // and is served in 0.125, so the queue alternates 1 (during service) and 0.
  FifoServer server(1.0, 5.0);
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    t = 0.25 * (i + 1);
    server.assign(t, 0.125);
  }
  server.advance_to(t);
  EXPECT_EQ(server.length_at(t), server.length());
  EXPECT_EQ(server.length_at(t - 4.0), 1);       // == an arrival instant
  EXPECT_EQ(server.length_at(t - 4.0 + 0.0625), 1);  // mid-service
  EXPECT_EQ(server.length_at(t - 4.0 + 0.1875), 0);  // between jobs
}

TEST(FifoServerTest, BusyTimeSingleJob) {
  FifoServer server;
  server.assign(1.0, 2.0);  // busy [1, 3)
  server.advance_to(10.0);
  EXPECT_DOUBLE_EQ(server.busy_time(), 2.0);
}

TEST(FifoServerTest, BusyTimeMergesOverlappingJobs) {
  FifoServer server;
  server.assign(0.0, 1.0);   // busy [0,1)
  server.assign(0.5, 1.0);   // extends busy period to [0,2)
  server.advance_to(3.0);
  server.assign(3.0, 1.0);   // busy [3,4)
  server.advance_to(5.0);
  EXPECT_DOUBLE_EQ(server.busy_time(), 3.0);
}

TEST(FifoServerTest, BusyTimeIncludesOngoingWork) {
  FifoServer server;
  server.assign(0.0, 10.0);
  server.advance_to(4.0);
  EXPECT_DOUBLE_EQ(server.busy_time(), 4.0);
}

TEST(FifoServerTest, UtilizationApproachesOfferedLoad) {
  // Deterministic arrivals at rate 0.5, unit-mean service 0.5 => rho = 0.25.
  FifoServer server;
  double t = 0.0;
  for (int i = 0; i < 10000; ++i) {
    t += 2.0;
    server.assign(t, 0.5);
  }
  server.advance_to(t + 10.0);
  EXPECT_NEAR(server.busy_time() / server.advanced_time(), 0.25, 0.01);
}

}  // namespace
}  // namespace stale::queueing
