#include "sim/histogram.h"

#include <gtest/gtest.h>

namespace stale::sim {
namespace {

TEST(HistogramTest, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);   // bin 0
  h.add(0.99);  // bin 0
  h.add(5.0);   // bin 5
  h.add(9.99);  // bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, UnderAndOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.5);
  h.add(1.0);  // hi is exclusive
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, FractionsIncludeOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.25);
  h.add(5.0);
  h.add(-1.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.0);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 3.0);
}

TEST(HistogramTest, RenderProducesOneLinePerBin) {
  Histogram h(0.0, 1.0, 3);
  h.add(0.1);
  const std::string text = h.render(10);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(IntCounterTest, CountsAndFractions) {
  IntCounter counter;
  counter.add(0);
  counter.add(2);
  counter.add(2);
  counter.add(5);
  EXPECT_EQ(counter.count(0), 1u);
  EXPECT_EQ(counter.count(1), 0u);
  EXPECT_EQ(counter.count(2), 2u);
  EXPECT_EQ(counter.count(99), 0u);
  EXPECT_EQ(counter.max_value(), 5u);
  EXPECT_EQ(counter.total(), 4u);
  EXPECT_DOUBLE_EQ(counter.fraction(2), 0.5);
}

TEST(IntCounterTest, EmptyCounter) {
  IntCounter counter;
  EXPECT_EQ(counter.total(), 0u);
  EXPECT_EQ(counter.max_value(), 0u);
  EXPECT_DOUBLE_EQ(counter.fraction(0), 0.0);
}

}  // namespace
}  // namespace stale::sim
