// ResponseMetrics: the warmup-discarding accumulator both trial paths feed.
// record() applies warmup by call order (serial path: completions arrive in
// arrival order); record_indexed() applies it by arrival index (fault path:
// crashes and requeues reorder completions). The two must agree on any
// permutation of the same jobs.
#include "queueing/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "sim/rng.h"

namespace stale::queueing {
namespace {

TEST(ResponseMetricsTest, RecordDiscardsWarmupByCallOrder) {
  ResponseMetrics metrics(2);
  metrics.record(10.0);
  metrics.record(20.0);
  metrics.record(3.0);
  metrics.record(5.0);
  EXPECT_EQ(metrics.total_jobs(), 4u);
  EXPECT_EQ(metrics.measured_jobs(), 2u);
  EXPECT_DOUBLE_EQ(metrics.mean_response(), 4.0);
}

TEST(ResponseMetricsTest, RecordIndexedAppliesWarmupByIndexNotCallOrder) {
  // Completions arrive wildly out of order; only indices >= warmup count.
  ResponseMetrics metrics(3);
  metrics.record_indexed(4, 8.0);   // measured
  metrics.record_indexed(0, 100.0); // warmup despite arriving late
  metrics.record_indexed(3, 2.0);   // measured
  metrics.record_indexed(2, 100.0); // warmup
  metrics.record_indexed(1, 100.0); // warmup
  EXPECT_EQ(metrics.total_jobs(), 5u);
  EXPECT_EQ(metrics.measured_jobs(), 2u);
  EXPECT_DOUBLE_EQ(metrics.mean_response(), 5.0);
}

TEST(ResponseMetricsTest, RecordIndexedCountsDuplicateIndicesEachTime) {
  // Current contract: the metrics layer does not deduplicate — each reported
  // completion counts. Deduplication is the caller's job (the fault driver
  // reports each tag exactly once: a requeued job completes once).
  ResponseMetrics metrics(1);
  metrics.record_indexed(5, 4.0);
  metrics.record_indexed(5, 6.0);
  EXPECT_EQ(metrics.total_jobs(), 2u);
  EXPECT_EQ(metrics.measured_jobs(), 2u);
  EXPECT_DOUBLE_EQ(metrics.mean_response(), 5.0);
}

TEST(ResponseMetricsTest, AllWarmupRunReportsZeroMeasured) {
  ResponseMetrics by_order(10);
  ResponseMetrics by_index(10);
  for (std::uint64_t i = 0; i < 10; ++i) {
    by_order.record(1.0 + static_cast<double>(i));
    by_index.record_indexed(i, 1.0 + static_cast<double>(i));
  }
  for (const ResponseMetrics* m : {&by_order, &by_index}) {
    EXPECT_EQ(m->total_jobs(), 10u);
    EXPECT_EQ(m->measured_jobs(), 0u);
    EXPECT_DOUBLE_EQ(m->mean_response(), 0.0);
  }
}

TEST(ResponseMetricsTest, IndexedAgreesWithSerialOnShuffledPermutation) {
  constexpr std::uint64_t kJobs = 2000;
  constexpr std::uint64_t kWarmup = 500;
  sim::Rng rng(0xC0FFEEULL);
  std::vector<double> responses(kJobs);
  for (double& r : responses) r = rng.next_double() * 10.0;

  ResponseMetrics serial(kWarmup, /*keep_samples=*/true);
  for (double r : responses) serial.record(r);

  std::vector<std::uint64_t> order(kJobs);
  std::iota(order.begin(), order.end(), 0u);
  for (std::size_t i = kJobs - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(rng.next_below(i + 1));
    std::swap(order[i], order[j]);
  }
  ResponseMetrics indexed(kWarmup, /*keep_samples=*/true);
  for (std::uint64_t idx : order) indexed.record_indexed(idx, responses[idx]);

  EXPECT_EQ(indexed.total_jobs(), serial.total_jobs());
  EXPECT_EQ(indexed.measured_jobs(), serial.measured_jobs());
  // Welford accumulation is order-sensitive in the last bits; the means must
  // agree to well beyond statistical meaning but not bit-exactly.
  EXPECT_NEAR(indexed.mean_response(), serial.mean_response(), 1e-12);
  EXPECT_NEAR(indexed.stats().stddev(), serial.stats().stddev(), 1e-12);
  // Same multiset of retained samples.
  std::vector<double> a = serial.samples();
  std::vector<double> b = indexed.samples();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(ResponseMetricsTest, ZeroWarmupMeasuresEverything) {
  ResponseMetrics metrics(0);
  metrics.record_indexed(0, 2.0);
  metrics.record_indexed(1, 4.0);
  EXPECT_EQ(metrics.measured_jobs(), 2u);
  EXPECT_DOUBLE_EQ(metrics.mean_response(), 3.0);
}

}  // namespace
}  // namespace stale::queueing
