// Acceptance tests for the herd-effect detector (ISSUE 4, paper Section 2):
// on the Figure 2 configuration (n = 10, lambda = 0.9, periodic update) with
// a long update interval, greedy minimum-load dispatch (k_subset:n) must be
// flagged as herding — every phase's arrivals pile onto the server the stale
// board shows as minimal — while Basic LI at the same staleness must not be.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "driver/trace_support.h"
#include "obs/herd.h"

namespace stale::driver {
namespace {

constexpr double kT = 8.0;  // update interval where Figure 2 shows the blowup

ExperimentConfig fig02_config(const std::string& policy) {
  ExperimentConfig config;
  config.num_servers = 10;
  config.lambda = 0.9;
  config.model = UpdateModel::kPeriodic;
  config.update_interval = kT;
  config.policy = policy;
  config.num_jobs = 30'000;
  config.warmup_jobs = 5'000;
  return config;
}

std::string describe(const obs::HerdReport& herd) {
  std::ostringstream out;
  out << "mean_concentration=" << herd.mean_concentration
      << " peak_concentration=" << herd.peak_concentration
      << " uniform=" << herd.uniform_share << " amplitude=" << herd.amplitude
      << " global_swing=" << herd.global_swing
      << " period=" << herd.oscillation_period
      << " autocorr=" << herd.autocorr_peak << " phases=" << herd.phases;
  return out.str();
}

TEST(HerdDetectorTest, GreedyMinLoadHerdsUnderStalePeriodicInfo) {
  const TraceReport report =
      run_traced_trial(fig02_config("k_subset:10"), 2024);
  const obs::HerdReport& herd = report.herd;
  SCOPED_TRACE(describe(herd));

  EXPECT_TRUE(herd.herding());
  // A typical phase sends most arrivals to one server. Not ~100%: several
  // drained servers tie at displayed load 0, and the greedy argmin breaks
  // ties randomly, splitting the pile-up among the tied minima.
  EXPECT_GT(herd.mean_concentration, 0.5);
  // Queues swing violently within a phase — many times the +-1 jitter a
  // well-spread policy shows at this load.
  EXPECT_GT(herd.amplitude, 5.0);
  // The oscillation the paper describes: a server starves, looks minimal,
  // gets swamped, drains, repeats — so the detected period is locked to a
  // small integer number of update intervals (observed: 7T at this seed).
  ASSERT_GT(herd.oscillation_period, 0.0);
  EXPECT_GE(herd.oscillation_period, kT * 0.75);
  EXPECT_LE(herd.oscillation_period, kT * 10.0);
  const double phase_offset =
      std::fmod(herd.oscillation_period + kT / 2.0, kT) - kT / 2.0;
  EXPECT_LT(std::abs(phase_offset), 0.25 * kT)
      << "period " << herd.oscillation_period
      << " is not close to a multiple of T=" << kT;
}

TEST(HerdDetectorTest, BasicLiDoesNotHerdAtTheSameStaleness) {
  const TraceReport report = run_traced_trial(fig02_config("basic_li"), 2024);
  const obs::HerdReport& herd = report.herd;
  SCOPED_TRACE(describe(herd));

  EXPECT_FALSE(herd.herding());
  // Interpreted dispatch spreads each phase's arrivals: the top server's
  // share stays near uniform (1/n = 0.1), far from the greedy pile-up.
  EXPECT_LT(herd.mean_concentration, 0.4);
}

TEST(HerdDetectorTest, RandomPolicyIsTheNullCase) {
  const TraceReport report = run_traced_trial(fig02_config("random"), 2024);
  SCOPED_TRACE(describe(report.herd));
  EXPECT_FALSE(report.herd.herding());
  EXPECT_LT(report.herd.mean_concentration, 0.4);
}

}  // namespace
}  // namespace stale::driver
