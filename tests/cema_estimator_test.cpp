// Property tests for the CEMA estimator (src/workload/rate_estimator.h):
// the closed-form bulk update must be indistinguishable from the sample-at-
// a-time path, warm-up must behave like an unbiased cumulative mean, and the
// bucketed rate estimator must converge on Poisson input and re-converge
// with bounded lag after a rate step — the property that keeps K =
// lambda_hat * T honest through a flash crowd.
#include "workload/rate_estimator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sim/rng.h"

namespace stale::workload {
namespace {

TEST(CemaTest, ValueIsZeroBeforeFirstUpdate) {
  Cema cema;
  EXPECT_DOUBLE_EQ(cema.value(), 0.0);
}

TEST(CemaTest, FirstUpdateReturnsTheSample) {
  // The bias correction makes value() the weighted mean of observed samples
  // only — after one update that mean is the sample, whatever alpha is. The
  // correction divides by 1-(1-alpha)^1, which is alpha up to rounding, so
  // the comparison allows a few ulps rather than demanding bit equality.
  for (const double alpha : {0.01, 0.1, 0.5, 0.9}) {
    Cema cema;
    cema.update(13.75, alpha);
    EXPECT_NEAR(cema.value(), 13.75, 1e-12 * 13.75) << "alpha " << alpha;
  }
}

TEST(CemaTest, WarmupMatchesCumulativeMeanForTinyAlpha) {
  // As alpha -> 0 the geometric weights flatten, so early on the CEMA is a
  // plain running mean of its samples.
  Cema cema;
  const double samples[] = {2.0, 4.0, 9.0, 1.0};
  double sum = 0.0;
  int count = 0;
  for (const double sample : samples) {
    cema.update(sample, 1e-9);
    sum += sample;
    ++count;
    EXPECT_NEAR(cema.value(), sum / count, 1e-6);
  }
}

TEST(CemaTest, BulkUpdateEqualsRepeatedSingles) {
  const double alpha = 0.07;
  Cema bulk;
  Cema singles;
  // Interleave history so the equivalence holds from any starting state,
  // not just the empty one.
  bulk.update(3.0, alpha);
  singles.update(3.0, alpha);

  for (const auto& [value, repeat] :
       {std::pair<double, std::uint64_t>{0.0, 17},
        std::pair<double, std::uint64_t>{5.5, 1},
        std::pair<double, std::uint64_t>{2.25, 400}}) {
    bulk.bulk_update(value, repeat, alpha);
    for (std::uint64_t i = 0; i < repeat; ++i) singles.update(value, alpha);
    EXPECT_NEAR(bulk.value(), singles.value(), 1e-12);
    EXPECT_EQ(bulk.updates, singles.updates);
  }
}

TEST(CemaTest, BulkUpdateWithZeroRepeatIsANoop) {
  Cema cema;
  cema.update(4.0, 0.1);
  const double before = cema.value();
  cema.bulk_update(99.0, 0, 0.1);
  EXPECT_DOUBLE_EQ(cema.value(), before);
  EXPECT_EQ(cema.updates, 1u);
}

TEST(CemaTest, ConvergesToConstantSample) {
  Cema cema;
  for (int i = 0; i < 1000; ++i) cema.update(6.0, 0.05);
  EXPECT_NEAR(cema.value(), 6.0, 1e-9);
}

TEST(CemaRateEstimatorTest, ReportsInitialRateBeforeFirstBucketCloses) {
  CemaRateEstimator estimator(0.1, 1.0, 40.0);
  EXPECT_DOUBLE_EQ(estimator.rate(), 40.0);
  estimator.on_arrival(0.25);  // inside the first bucket
  EXPECT_DOUBLE_EQ(estimator.rate(), 40.0);
  EXPECT_EQ(estimator.buckets_closed(), 0u);
}

TEST(CemaRateEstimatorTest, ConvergesToTruePoissonRate) {
  const double rate = 12.0;
  CemaRateEstimator estimator(0.05, 0.5, 100.0);
  sim::Rng rng(42);
  double t = 0.0;
  for (int i = 0; i < 100000; ++i) {
    t += -std::log(rng.next_double_open0()) / rate;
    estimator.on_arrival(t);
  }
  // Bucket counts estimate the rate unbiasedly, but the EMA's effective
  // window is only ~2/alpha buckets no matter how many arrivals feed it, so
  // the tolerance covers ~2.5 sigma of that bucket-count noise (the run is
  // seed-fixed, so this is a regression pin, not a flake budget).
  EXPECT_NEAR(estimator.rate(), rate, 0.15 * rate);
}

TEST(CemaRateEstimatorTest, LongIdleGapFoldsEmptyBucketsInConstantTime) {
  CemaRateEstimator estimator(0.1, 1.0, 50.0);
  estimator.on_arrival(0.5);
  // A gap spanning ~1e9 empty buckets must neither hang nor overflow: the
  // estimate collapses toward zero because the stream went quiet.
  estimator.on_arrival(1.0e9);
  EXPECT_GT(estimator.buckets_closed(), 1000u);
  EXPECT_LT(estimator.rate(), 0.1);
}

TEST(CemaRateEstimatorTest, BoundedLagAfterRateStep) {
  // Rate steps 4 -> 40 at t = 500. The estimate must reach the new rate's
  // neighbourhood within ~2/alpha buckets — the adaptation-lag bound that
  // makes `--estimator cema` track a flash crowd while fixed-lambda herds.
  const double alpha = 0.1;
  const double bucket = 0.5;
  CemaRateEstimator estimator(alpha, bucket, 4.0);
  sim::Rng rng(7);
  double t = 0.0;
  while (t < 500.0) {
    t += -std::log(rng.next_double_open0()) / 4.0;
    estimator.on_arrival(t);
  }
  const double low_estimate = estimator.rate();
  EXPECT_NEAR(low_estimate, 4.0, 1.5);

  const double lag_window = 2.0 / alpha * bucket;  // 2/alpha buckets
  while (t < 500.0 + lag_window) {
    t += -std::log(rng.next_double_open0()) / 40.0;
    estimator.on_arrival(t);
  }
  EXPECT_GT(estimator.rate(), 0.75 * 40.0);
  EXPECT_LT(estimator.rate(), 1.25 * 40.0);
}

TEST(CemaRateEstimatorTest, RejectsBadParameters) {
  EXPECT_THROW(CemaRateEstimator(0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(CemaRateEstimator(1.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(CemaRateEstimator(0.1, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(CemaRateEstimator(0.1, 1.0, 0.0), std::invalid_argument);
}

TEST(CemaRateEstimatorTest, DescribeNamesTheParameters) {
  CemaRateEstimator estimator(0.1, 0.5, 20.0);
  EXPECT_NE(estimator.describe().find("cema"), std::string::npos);
}

}  // namespace
}  // namespace stale::workload
