// Proves the STALELOAD_AUDIT contract layer actually fires: deliberately
// corrupted probability vectors, event timestamps, queue bookkeeping, and
// fault counters must abort with a contract-violation message in an audit
// build, and the same corruptions must be free (no evaluation at all) when
// auditing is off. Build with -DSTALELOAD_AUDIT=ON to run the death tests;
// in a normal build they SKIP and only the compiled-out semantics are
// checked.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "check/audit.h"
#include "check/contracts.h"
#include "sim/simulator.h"

namespace {

constexpr char kViolation[] = "contract violation";

#if STALE_AUDIT_ENABLED

TEST(AuditContractTest, LeakedProbabilityMassTrips) {
  // Sums to 0.6: mass silently leaked, exactly the defect that would make
  // the herd-effect comparisons meaningless.
  const std::vector<double> p = {0.3, 0.3};
  EXPECT_DEATH(
      stale::check::audit_dispatch_weights(p, /*expect_normalized=*/true,
                                           "test"),
      kViolation);
}

TEST(AuditContractTest, NegativeMassTrips) {
  const std::vector<double> p = {1.5, -0.5};
  EXPECT_DEATH(
      stale::check::audit_dispatch_weights(p, /*expect_normalized=*/false,
                                           "test"),
      kViolation);
}

TEST(AuditContractTest, NanMassTrips) {
  const std::vector<double> p = {std::numeric_limits<double>::quiet_NaN(),
                                 1.0};
  EXPECT_DEATH(
      stale::check::audit_dispatch_weights(p, /*expect_normalized=*/false,
                                           "test"),
      kViolation);
}

TEST(AuditContractTest, SanitizedSubNormalizedVectorIsAccepted) {
  // After the fault sanitizer zeroes a dead server's mass the vector may sum
  // below 1; the audit only requires positive finite mass then.
  const std::vector<double> p = {0.25, 0.0, 0.25};
  stale::check::audit_dispatch_weights(p, /*expect_normalized=*/false, "test");
}

TEST(AuditContractTest, NonMonotoneCdfTrips) {
  const std::vector<double> cdf = {0.6, 0.4, 1.0};
  EXPECT_DEATH(stale::check::audit_cdf(cdf, "test"), kViolation);
}

TEST(AuditContractTest, ClockRunningBackwardsTrips) {
  EXPECT_DEATH(stale::check::audit_monotonic_clock(2.0, 1.0, "test"),
               kViolation);
}

TEST(AuditContractTest, CorruptedEventTimestampTripsInsideSimulator) {
  // schedule_at's argument guard (`when < now_`) is false for NaN, so a NaN
  // timestamp slips into the heap; the audit on the fire path must catch it.
  stale::sim::Simulator sim;
  sim.schedule_at(std::numeric_limits<double>::quiet_NaN(),
                  [](stale::sim::Simulator&) {});
  EXPECT_DEATH(sim.step(), kViolation);
}

TEST(AuditContractTest, OutOfOrderDeparturesTrip) {
  const std::vector<double> departures = {2.0, 1.0};
  EXPECT_DEATH(
      stale::check::audit_departures_sorted(departures, 0.0, "test"),
      kViolation);
}

TEST(AuditContractTest, UnbalancedFaultCountersTrip) {
  // Three displaced jobs but only two accounted for.
  EXPECT_DEATH(stale::check::audit_displaced_conserved(3, 1, 1, "test"),
               kViolation);
}

TEST(AuditContractTest, InconsistentLivenessMaskTrips) {
  const std::vector<std::uint8_t> alive = {1, 0, 1};
  EXPECT_DEATH(
      stale::check::audit_fault_liveness(alive, /*alive_count=*/3,
                                         /*crashes=*/1, /*recoveries=*/0,
                                         /*transitions=*/1, "test"),
      kViolation);
}

TEST(AuditContractTest, StaleAssertFires) {
  EXPECT_DEATH(STALE_ASSERT(1 + 1 == 3, "arithmetic drifted"), kViolation);
  EXPECT_DEATH(STALE_DCHECK(false), kViolation);
}

TEST(AuditContractTest, HealthySimulationDoesNotTrip) {
  stale::sim::Simulator sim;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    sim.schedule_at(static_cast<double>(100 - i),
                    [&fired](stale::sim::Simulator&) { ++fired; });
  }
  EXPECT_EQ(sim.run(), 100u);
  EXPECT_EQ(fired, 100);
}

#else  // !STALE_AUDIT_ENABLED

TEST(AuditContractTest, DeathTestsRequireAuditBuild) {
  GTEST_SKIP() << "configure with -DSTALELOAD_AUDIT=ON to run the "
                  "contract-violation death tests";
}

#endif  // STALE_AUDIT_ENABLED

TEST(AuditContractTest, ContractsAreFreeWhenCompiledOut) {
#if !STALE_AUDIT_ENABLED
  // The condition must not be evaluated at all in a non-audit build…
  int evaluations = 0;
  auto costly = [&evaluations] {
    ++evaluations;
    return false;
  };
  STALE_ASSERT(costly(), "never evaluated");
  STALE_AUDIT(costly());
  EXPECT_EQ(evaluations, 0);
#else
  // …and must be evaluated exactly once in an audit build.
  int evaluations = 0;
  auto costly = [&evaluations] {
    ++evaluations;
    return true;
  };
  STALE_ASSERT(costly(), "evaluated once");
  EXPECT_EQ(evaluations, 1);
#endif
}

}  // namespace
