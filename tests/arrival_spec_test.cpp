// Tests for the --arrival-spec grammar and the nonstationary processes it
// builds (src/workload/arrival_spec.h): parse/validate errors, the
// bit-identity of "poisson" with the legacy inline draw, MMPP long-run rate,
// and the ramp/flash rate envelopes that thinning samples from.
#include "workload/arrival_spec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "sim/rng.h"

namespace stale::workload {
namespace {

TEST(ArrivalSpecTest, PoissonMatchesLegacyInlineDrawBitForBit) {
  // Every trial engine used to draw `-log(U) / rate` inline; the spec path
  // must reproduce that sequence exactly or every golden test shifts.
  const double rate = 7.5;
  ArrivalProcessPtr process = make_arrival_process("poisson", rate);
  sim::Rng spec_rng(123);
  sim::Rng legacy_rng(123);
  for (int i = 0; i < 1000; ++i) {
    const double legacy =
        -std::log(legacy_rng.next_double_open0()) / rate;
    EXPECT_DOUBLE_EQ(process->next_gap(spec_rng), legacy);
  }
}

TEST(ArrivalSpecTest, RejectsMalformedSpecs) {
  for (const char* spec :
       {"", "poison", "poisson:1", "mmpp", "mmpp:1:2:3", "mmpp:1:2:3:4:5",
        "mmpp:a:2:3:4", "ramp:10", "ramp:10:1.5", "ramp:0:0.5",
        "flash:1:2:3:4", "flash:1:0.5:1:1:1", "trace", "trace:"}) {
    EXPECT_THROW(validate_arrival_spec(spec), std::invalid_argument) << spec;
  }
}

TEST(ArrivalSpecTest, ValidateAcceptsEveryFormWithoutBuilding) {
  for (const char* spec :
       {"poisson", "mmpp:0.5:3:20:5", "mmpp:0:2:10:10", "ramp:100:0.5",
        "flash:50:8:5:10:5"}) {
    EXPECT_NO_THROW(validate_arrival_spec(spec)) << spec;
  }
  // Dry-run validation must not open trace files (the driver validates specs
  // before any trial starts, possibly on a machine without the trace).
  EXPECT_NO_THROW(validate_arrival_spec("trace:/nonexistent/path"));
  EXPECT_THROW(make_arrival_process("trace:/nonexistent/path", 1.0),
               std::runtime_error);
}

TEST(ArrivalSpecTest, RejectsNonPositiveBaseRate) {
  EXPECT_THROW(make_arrival_process("poisson", 0.0), std::invalid_argument);
  EXPECT_THROW(make_arrival_process("poisson", -1.0), std::invalid_argument);
}

TEST(MmppProcessTest, MeanGapIsTheDwellWeightedLongRunRate) {
  // rates 2 and 10 with dwells 3 and 1: long-run rate (2*3 + 10*1)/4 = 4.
  MmppProcess process(2.0, 10.0, 3.0, 1.0);
  EXPECT_NEAR(process.mean_gap(), 0.25, 1e-12);
}

TEST(MmppProcessTest, EmpiricalRateMatchesLongRunRate) {
  ArrivalProcessPtr process = make_arrival_process("mmpp:0.5:3:20:5", 8.0);
  // Long-run rate: 8 * (0.5*20 + 3*5)/25 = 8.
  sim::Rng rng(99);
  double t = 0.0;
  const int arrivals = 200000;
  for (int i = 0; i < arrivals; ++i) t += process->next_gap(rng);
  EXPECT_NEAR(arrivals / t, 8.0, 0.4);
}

TEST(MmppProcessTest, ZeroRateStateEmitsNoArrivalsInState) {
  // State 1 has rate 0: all arrivals come from state 0 bursts, and gaps are
  // still finite because dwells are.
  MmppProcess process(10.0, 0.0, 1.0, 1.0);
  sim::Rng rng(5);
  double t = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double gap = process.next_gap(rng);
    ASSERT_GT(gap, 0.0);
    t += gap;
  }
  // Long-run rate 10*1/(1+1) = 5.
  EXPECT_NEAR(10000.0 / t, 5.0, 0.5);
}

TEST(MmppProcessTest, ResetRestoresTheInitialState) {
  MmppProcess process(1.0, 100.0, 0.5, 0.5);
  sim::Rng rng_a(7);
  std::vector<double> first;
  for (int i = 0; i < 100; ++i) first.push_back(process.next_gap(rng_a));
  process.reset();
  sim::Rng rng_b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(process.next_gap(rng_b), first[i]) << i;
  }
}

TEST(ModulatedPoissonTest, RampEnvelopeIsTheSinusoid) {
  ModulatedPoissonProcess::RampParams ramp;
  ramp.period = 100.0;
  ramp.amplitude = 0.5;
  ModulatedPoissonProcess process(10.0, ramp);
  EXPECT_NEAR(process.rate_at(0.0), 10.0, 1e-9);
  EXPECT_NEAR(process.rate_at(25.0), 15.0, 1e-9);   // sin peak
  EXPECT_NEAR(process.rate_at(75.0), 5.0, 1e-9);    // sin trough
  EXPECT_NEAR(process.rate_at(100.0), 10.0, 1e-6);  // full period
}

TEST(ModulatedPoissonTest, FlashEnvelopeRampsHoldsAndDecays) {
  ModulatedPoissonProcess::FlashParams flash;
  flash.at = 50.0;
  flash.mult = 8.0;
  flash.ramp = 5.0;
  flash.hold = 10.0;
  flash.decay = 5.0;
  ModulatedPoissonProcess process(4.0, flash);
  EXPECT_DOUBLE_EQ(process.rate_at(0.0), 4.0);    // before onset
  EXPECT_DOUBLE_EQ(process.rate_at(50.0), 4.0);   // onset boundary
  EXPECT_NEAR(process.rate_at(52.5), 4.0 * 4.5, 1e-9);  // mid-ramp
  EXPECT_DOUBLE_EQ(process.rate_at(60.0), 32.0);  // plateau
  EXPECT_NEAR(process.rate_at(67.5), 4.0 * 4.5, 1e-9);  // mid-decay
  EXPECT_DOUBLE_EQ(process.rate_at(70.0), 4.0);   // back to base
  EXPECT_DOUBLE_EQ(process.rate_at(1000.0), 4.0);
}

TEST(ModulatedPoissonTest, ThinningTracksTheEnvelopeEmpirically) {
  // Count arrivals inside vs outside the flash window; the plateau runs 8x
  // the base rate, so the within-window arrival count must reflect it.
  ArrivalProcessPtr process =
      make_arrival_process("flash:100:8:0:100:0", 2.0);
  sim::Rng rng(21);
  double t = 0.0;
  int inside = 0;
  int before = 0;
  while (t < 200.0) {
    t += process->next_gap(rng);
    if (t < 100.0) {
      ++before;
    } else if (t < 200.0) {
      ++inside;
    }
  }
  // Expect ~200 arrivals before (rate 2 * 100s) and ~1600 inside.
  EXPECT_NEAR(before, 200, 60);
  EXPECT_NEAR(inside, 1600, 200);
}

TEST(ModulatedPoissonTest, ResetRewindsTheInternalClock) {
  ArrivalProcessPtr process = make_arrival_process("ramp:50:0.9", 5.0);
  sim::Rng rng_a(3);
  std::vector<double> first;
  for (int i = 0; i < 200; ++i) first.push_back(process->next_gap(rng_a));
  process->reset();
  sim::Rng rng_b(3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(process->next_gap(rng_b), first[i]) << i;
  }
}

TEST(ArrivalSpecTest, DescribeNamesTheProcess) {
  EXPECT_NE(make_arrival_process("mmpp:1:2:3:4", 1.0)->describe().find("mmpp"),
            std::string::npos);
  EXPECT_NE(make_arrival_process("ramp:10:0.5", 1.0)->describe().find("ramp"),
            std::string::npos);
  EXPECT_NE(
      make_arrival_process("flash:1:2:1:1:1", 1.0)->describe().find("flash"),
      std::string::npos);
}

}  // namespace
}  // namespace stale::workload
