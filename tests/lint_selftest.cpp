// Self-tests for staleload_lint: every D/L/H rule fires exactly once on its
// fixture file (tests/lint_fixtures/), suppression silences them, and clean
// code stays clean. Fixtures are scanned under *virtual* paths because rule
// scopes derive from the path (e.g. the wall-clock rule only applies under
// src/); the fixture directory itself is skipped by scan_tree, so the real
// lint run over tests/ never sees these deliberate violations.
#include "lint/lint.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

namespace {

using stale::lint::Finding;
using stale::lint::scan_file;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct FixtureCase {
  const char* fixture;       // file under tests/lint_fixtures/
  const char* virtual_path;  // path the contents are scanned under
  const char* expected_rule;
};

class LintFixtureTest : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(LintFixtureTest, RuleFiresExactlyOnce) {
  const FixtureCase& c = GetParam();
  const std::vector<Finding> findings =
      scan_file(c.virtual_path, read_fixture(c.fixture));
  ASSERT_EQ(findings.size(), 1u)
      << "fixture " << c.fixture << " should trip exactly one rule";
  EXPECT_EQ(findings[0].rule, c.expected_rule);
  EXPECT_EQ(findings[0].file, c.virtual_path);
  EXPECT_GT(findings[0].line, 0);
  EXPECT_FALSE(findings[0].message.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintFixtureTest,
    ::testing::Values(
        FixtureCase{"d1_wall_clock.cpp", "src/sim/fixture.cpp",
                    "staleload-d1-wall-clock"},
        FixtureCase{"d2_raw_rng.cpp", "src/policy/fixture.cpp",
                    "staleload-d2-raw-rng"},
        FixtureCase{"d3_unordered.cpp", "src/queueing/fixture.cpp",
                    "staleload-d3-unordered-iteration"},
        FixtureCase{"d4_host_state.cpp", "src/fault/fixture.cpp",
                    "staleload-d4-host-state"},
        FixtureCase{"l1_layering.cpp", "src/sim/fixture.cpp",
                    "staleload-l1-layering"},
        FixtureCase{"l2_include_form.cpp", "src/queueing/fixture.cpp",
                    "staleload-l2-include-form"},
        FixtureCase{"h1_missing_guard.h", "src/core/fixture.h",
                    "staleload-h1-include-guard"},
        FixtureCase{"h2_using_namespace.h", "src/core/fixture2.h",
                    "staleload-h2-using-namespace"},
        FixtureCase{"h3_todo.cpp", "src/driver/fixture.cpp",
                    "staleload-h3-todo-ref"},
        FixtureCase{"l1_obs_upward.cpp", "src/obs/fixture.cpp",
                    "staleload-l1-layering"},
        FixtureCase{"l1_sim_to_net.cpp", "src/sim/fixture.cpp",
                    "staleload-l1-layering"},
        FixtureCase{"l1_queueing_to_core.cpp", "src/queueing/fixture.cpp",
                    "staleload-l1-layering"},
        FixtureCase{"l1_health_to_net.cpp", "src/health/fixture.cpp",
                    "staleload-l1-layering"}),
    [](const ::testing::TestParamInfo<FixtureCase>& info) {
      std::string name = info.param.fixture;
      for (char& c : name) {
        if (c == '.' || c == '/') c = '_';
      }
      return name;
    });

TEST(LintSuppressionTest, NolintSilencesEveryForm) {
  // Same-line NOLINT(rule), NOLINTNEXTLINE(rule), and bare NOLINT all work.
  const std::vector<Finding> findings =
      scan_file("src/sim/fixture.cpp", read_fixture("suppressed.cpp"));
  EXPECT_TRUE(findings.empty())
      << "first unsuppressed: "
      << (findings.empty() ? "" : findings.front().rule);
}

TEST(LintSuppressionTest, WrongRuleIdDoesNotSuppress) {
  const std::string code =
      "std::mt19937 engine;  // NOLINT(staleload-d1-wall-clock)\n";
  const std::vector<Finding> findings = scan_file("src/core/x.cpp", code);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "staleload-d2-raw-rng");
}

TEST(LintSuppressionTest, FamilyTagSuppressesAllStaleloadRules) {
  const std::string code = "std::mt19937 engine;  // NOLINT(staleload)\n";
  EXPECT_TRUE(scan_file("src/core/x.cpp", code).empty());
}

TEST(LintScopeTest, CleanSimulationCodePasses) {
  const std::string code =
      "#pragma once\n"
      "#include \"sim/rng.h\"\n"
      "namespace stale::sim { inline double next(Rng& r) {"
      " return r.next_double(); } }\n";
  EXPECT_TRUE(scan_file("src/sim/clean.h", code).empty());
}

TEST(LintScopeTest, CommentsAndStringsNeverTrip) {
  const std::string code =
      "// mt19937 is banned; steady_clock too\n"
      "const char* kDoc = \"use std::rand() and unordered_map\";\n"
      "/* getenv(\"HOME\") would be a d4 finding in code */\n"
      "int x = 0;\n";
  EXPECT_TRUE(scan_file("src/fault/doc.cpp", code).empty());
}

TEST(LintScopeTest, RuntimeModuleMayReadEnvironment) {
  // The thread pool's STALE_JOBS default is sanctioned: runtime is outside
  // the D4 scope (it cannot influence simulated results).
  const std::string code = "const char* env = std::getenv(\"STALE_JOBS\");\n";
  EXPECT_TRUE(scan_file("src/runtime/thread_pool.cpp", code).empty());
}

TEST(LintScopeTest, SanctionedRngModuleIsExemptFromD2) {
  const std::string code = "// engine lives here\nstd::mt19937 legacy;\n";
  EXPECT_TRUE(scan_file("src/sim/rng.cpp", code).empty());
  EXPECT_FALSE(scan_file("src/sim/distributions.cpp", code).empty());
}

TEST(LintScopeTest, BenchAndTestsAreOutsideSimulationScopes) {
  const std::string code =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> retired_design;\n"
      "long t = std::chrono::steady_clock::now().time_since_epoch().count();\n";
  EXPECT_TRUE(scan_file("bench/perf_microbench.cpp", code).empty());
  EXPECT_TRUE(scan_file("tests/some_test.cpp", code).empty());
}

TEST(LintLayeringTest, DagMatchesTheDeclaredArchitecture) {
  // Spot-check allowed edges stay allowed and forbidden edges are caught.
  EXPECT_TRUE(scan_file("src/fault/x.cpp",
                        "#include \"policy/policy.h\"\n")
                  .empty());
  EXPECT_TRUE(scan_file("src/driver/x.cpp",
                        "#include \"runtime/thread_pool.h\"\n")
                  .empty());
  EXPECT_TRUE(
      scan_file("src/queueing/x.cpp", "#include \"check/audit.h\"\n").empty());
  const std::vector<Finding> up_edge =
      scan_file("src/queueing/x.cpp", "#include \"policy/policy.h\"\n");
  ASSERT_EQ(up_edge.size(), 1u);
  EXPECT_EQ(up_edge[0].rule, "staleload-l1-layering");
  const std::vector<Finding> unknown =
      scan_file("src/newmodule/x.cpp", "#include \"sim/rng.h\"\n");
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0].rule, "staleload-l1-layering")
      << "a new src/ module must be declared in the layer DAG";
}

TEST(LintLayeringTest, ObsIsIncludableFromEverySimulationLayer) {
  // obs sits just above check so compiled-in trace hooks never violate the
  // DAG; obs itself may reach only check (and is covered by the D rules, so
  // sinks cannot smuggle in nondeterminism).
  for (const char* module : {"sim", "queueing", "loadinfo", "policy", "fault",
                             "driver"}) {
    const std::string path = std::string("src/") + module + "/x.cpp";
    EXPECT_TRUE(scan_file(path, "#include \"obs/trace_sink.h\"\n").empty())
        << module << " must be allowed to include obs";
  }
  EXPECT_TRUE(
      scan_file("src/obs/x.cpp", "#include \"check/contracts.h\"\n").empty());
  const std::vector<Finding> up_edge =
      scan_file("src/obs/x.cpp", "#include \"queueing/cluster.h\"\n");
  ASSERT_EQ(up_edge.size(), 1u);
  EXPECT_EQ(up_edge[0].rule, "staleload-l1-layering");
  // obs is inside the determinism scopes: a sink writing files or reading
  // clocks would perturb traced runs.
  EXPECT_FALSE(scan_file("src/obs/x.cpp", "std::ofstream out(path);\n")
                   .empty());
}

TEST(LintLayeringTest, NetIsTheLiveBoundaryLayer) {
  // net may drive the whole simulation-side stack it shares with driver...
  for (const char* header :
       {"policy/policy_factory.h", "loadinfo/periodic_board.h",
        "fault/fault_spec.h", "obs/trace_sink.h", "sim/rng.h"}) {
    EXPECT_TRUE(scan_file("src/net/x.cpp",
                          "#include \"" + std::string(header) + "\"\n")
                    .empty())
        << "net must be allowed to include " << header;
  }
  // ...but neither net nor driver may include the other.
  const std::vector<Finding> net_to_driver =
      scan_file("src/net/x.cpp", "#include \"driver/experiment.h\"\n");
  ASSERT_EQ(net_to_driver.size(), 1u);
  EXPECT_EQ(net_to_driver[0].rule, "staleload-l1-layering");
  const std::vector<Finding> driver_to_net =
      scan_file("src/driver/x.cpp", "#include \"net/dispatcher.h\"\n");
  ASSERT_EQ(driver_to_net.size(), 1u);
  EXPECT_EQ(driver_to_net[0].rule, "staleload-l1-layering");
}

TEST(LintScopeTest, NetIsExemptFromSimulationDeterminismRules) {
  // The live service reads the monotonic clock and owns sockets — the
  // D-rules stop at the simulation boundary (L1 keeps sim from reaching up
  // into net, so the exemption cannot leak back down).
  const std::string code =
      "#include <ctime>\n"
      "double now() { timespec ts{}; clock_gettime(CLOCK_MONOTONIC, &ts);"
      " return static_cast<double>(ts.tv_sec); }\n"
      "void dump() { std::ofstream out(\"trace.csv\"); }\n";
  EXPECT_TRUE(scan_file("src/net/clock.cpp", code).empty());
  // The same content inside the simulation scope still trips D1 first.
  const std::vector<Finding> findings = scan_file("src/sim/clock.cpp", code);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule, "staleload-d1-wall-clock");
}

TEST(LintJsonTest, EscapesAndShapesFindings) {
  const std::vector<Finding> findings =
      scan_file("src/sim/fixture.cpp", "std::mt19937 e;  // \"quoted\"\n");
  ASSERT_EQ(findings.size(), 1u);
  const std::string json = stale::lint::to_json(findings);
  EXPECT_NE(json.find("\"rule\": \"staleload-d2-raw-rng\""),
            std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
  EXPECT_EQ(stale::lint::to_json({}), "[]\n");
}

}  // namespace
