// Self-tests for staleload_lint: every D/L/H rule fires exactly once on its
// fixture file (tests/lint_fixtures/), suppression silences them, and clean
// code stays clean. Fixtures are scanned under *virtual* paths because rule
// scopes derive from the path (e.g. the wall-clock rule only applies under
// src/); the fixture directory itself is skipped by scan_tree, so the real
// lint run over tests/ never sees these deliberate violations.
#include "lint/lint.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

namespace {

using stale::lint::Finding;
using stale::lint::scan_file;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct FixtureCase {
  const char* fixture;       // file under tests/lint_fixtures/
  const char* virtual_path;  // path the contents are scanned under
  const char* expected_rule;
};

class LintFixtureTest : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(LintFixtureTest, RuleFiresExactlyOnce) {
  const FixtureCase& c = GetParam();
  const std::vector<Finding> findings =
      scan_file(c.virtual_path, read_fixture(c.fixture));
  ASSERT_EQ(findings.size(), 1u)
      << "fixture " << c.fixture << " should trip exactly one rule";
  EXPECT_EQ(findings[0].rule, c.expected_rule);
  EXPECT_EQ(findings[0].file, c.virtual_path);
  EXPECT_GT(findings[0].line, 0);
  EXPECT_FALSE(findings[0].message.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintFixtureTest,
    ::testing::Values(
        FixtureCase{"d1_wall_clock.cpp", "src/sim/fixture.cpp",
                    "staleload-d1-wall-clock"},
        FixtureCase{"d2_raw_rng.cpp", "src/policy/fixture.cpp",
                    "staleload-d2-raw-rng"},
        FixtureCase{"d3_unordered.cpp", "src/queueing/fixture.cpp",
                    "staleload-d3-unordered-iteration"},
        FixtureCase{"d4_host_state.cpp", "src/fault/fixture.cpp",
                    "staleload-d4-host-state"},
        FixtureCase{"l1_layering.cpp", "src/sim/fixture.cpp",
                    "staleload-l1-layering"},
        FixtureCase{"l2_include_form.cpp", "src/queueing/fixture.cpp",
                    "staleload-l2-include-form"},
        FixtureCase{"h1_missing_guard.h", "src/core/fixture.h",
                    "staleload-h1-include-guard"},
        FixtureCase{"h2_using_namespace.h", "src/core/fixture2.h",
                    "staleload-h2-using-namespace"},
        FixtureCase{"h3_todo.cpp", "src/driver/fixture.cpp",
                    "staleload-h3-todo-ref"},
        FixtureCase{"l1_obs_upward.cpp", "src/obs/fixture.cpp",
                    "staleload-l1-layering"},
        FixtureCase{"l1_sim_to_net.cpp", "src/sim/fixture.cpp",
                    "staleload-l1-layering"},
        FixtureCase{"l1_queueing_to_core.cpp", "src/queueing/fixture.cpp",
                    "staleload-l1-layering"},
        FixtureCase{"l1_health_to_net.cpp", "src/health/fixture.cpp",
                    "staleload-l1-layering"},
        FixtureCase{"l1_net_to_dispatch.cpp", "src/net/fixture.cpp",
                    "staleload-l1-layering"},
        FixtureCase{"l1_core_to_workload.cpp", "src/core/fixture.cpp",
                    "staleload-l1-layering"},
        FixtureCase{"r1_unsplit_stream.cpp", "src/policy/fixture.cpp",
                    "staleload-r1-unsplit-stream"},
        FixtureCase{"r2_shared_capture.cpp", "src/driver/fixture.cpp",
                    "staleload-r2-shared-stream-capture"},
        FixtureCase{"r3_entropy_seed.cpp", "src/sim/fixture.cpp",
                    "staleload-r3-entropy-seed"},
        FixtureCase{"t1_raw_mutex.cpp", "src/queueing/fixture.cpp",
                    "staleload-t1-raw-mutex"},
        FixtureCase{"t2_unguarded_member.h", "src/sim/fixture.h",
                    "staleload-t2-unguarded-member"},
        FixtureCase{"c1_contract_coverage.cpp", "src/queueing/fixture.cpp",
                    "staleload-c1-contract-coverage"},
        FixtureCase{"nolint_block_unbalanced.cpp", "src/sim/fixture.cpp",
                    "staleload-nolint-unbalanced"}),
    [](const ::testing::TestParamInfo<FixtureCase>& info) {
      std::string name = info.param.fixture;
      for (char& c : name) {
        if (c == '.' || c == '/') c = '_';
      }
      return name;
    });

TEST(LintSuppressionTest, NolintSilencesEveryForm) {
  // Same-line NOLINT(rule), NOLINTNEXTLINE(rule), and bare NOLINT all work.
  const std::vector<Finding> findings =
      scan_file("src/sim/fixture.cpp", read_fixture("suppressed.cpp"));
  EXPECT_TRUE(findings.empty())
      << "first unsuppressed: "
      << (findings.empty() ? "" : findings.front().rule);
}

TEST(LintSuppressionTest, WrongRuleIdDoesNotSuppress) {
  const std::string code =
      "std::mt19937 engine;  // NOLINT(staleload-d1-wall-clock)\n";
  const std::vector<Finding> findings = scan_file("src/core/x.cpp", code);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "staleload-d2-raw-rng");
}

TEST(LintSuppressionTest, FamilyTagSuppressesAllStaleloadRules) {
  const std::string code = "std::mt19937 engine;  // NOLINT(staleload)\n";
  EXPECT_TRUE(scan_file("src/core/x.cpp", code).empty());
}

TEST(LintSuppressionTest, BalancedBlockSilencesItsRegion) {
  const std::vector<Finding> findings =
      scan_file("src/sim/fixture.cpp", read_fixture("nolint_block.cpp"));
  EXPECT_TRUE(findings.empty())
      << "first unsuppressed: "
      << (findings.empty() ? "" : findings.front().rule);
}

TEST(LintSuppressionTest, DispatchModuleHonorsEverySuppressionForm) {
  const std::vector<Finding> findings = scan_file(
      "src/dispatch/fixture.cpp", read_fixture("suppressed_dispatch.cpp"));
  EXPECT_TRUE(findings.empty())
      << "first unsuppressed: "
      << (findings.empty() ? "" : findings.front().rule);
}

TEST(LintScopeTest, CleanDispatchCodePasses) {
  // The dispatch module's declared edges, a contracted mutator, and a
  // split()-derived stream scan clean — the new layer is registered in
  // every rule scope without tripping any of them.
  EXPECT_TRUE(scan_file("src/dispatch/fixture.cpp",
                        read_fixture("dispatch_clean.cpp"))
                  .empty());
}

TEST(LintLayeringTest, DispatchEdgesMatchTheDeclaredArchitecture) {
  // dispatch may reach down to policy/loadinfo/queueing and the substrate.
  for (const char* header :
       {"policy/policy.h", "loadinfo/periodic_board.h", "queueing/cluster.h",
        "sim/rng.h", "obs/trace_sink.h", "check/contracts.h"}) {
    EXPECT_TRUE(scan_file("src/dispatch/x.cpp",
                          "#include \"" + std::string(header) + "\"\n")
                    .empty())
        << header;
  }
  // driver sits above dispatch; nothing else may include it, and dispatch
  // may not reach up into driver, health, or net.
  EXPECT_TRUE(scan_file("src/driver/x.cpp",
                        "#include \"dispatch/dispatcher_set.h\"\n")
                  .empty());
  for (const char* bad_edge :
       {"src/policy/x.cpp", "src/loadinfo/x.cpp", "src/health/x.cpp"}) {
    const std::vector<Finding> up = scan_file(
        bad_edge, "#include \"dispatch/jiq.h\"\n");
    ASSERT_EQ(up.size(), 1u) << bad_edge;
    EXPECT_EQ(up[0].rule, "staleload-l1-layering") << bad_edge;
  }
  for (const char* header : {"driver/experiment.h", "health/membership.h",
                             "net/dispatcher.h"}) {
    const std::vector<Finding> up = scan_file(
        "src/dispatch/x.cpp", "#include \"" + std::string(header) + "\"\n");
    ASSERT_EQ(up.size(), 1u) << header;
    EXPECT_EQ(up[0].rule, "staleload-l1-layering") << header;
  }
}

TEST(LintSuppressionTest, NewRuleFamiliesHonorEverySuppressionForm) {
  const std::vector<Finding> findings =
      scan_file("src/sim/fixture.cpp", read_fixture("suppressed_rtc.cpp"));
  EXPECT_TRUE(findings.empty())
      << "first unsuppressed: "
      << (findings.empty() ? "" : findings.front().rule);
}

TEST(LintSuppressionTest, UnbalancedMarkerIsNeverSuppressible) {
  // An END with no BEGIN is a finding even when the line also carries a
  // bare NOLINT — a broken suppression must not be able to hide itself.
  const std::string code =
      "int x = 0;  // NOLIN"
      "TEND(staleload-d1-wall-clock) NOLINT\n";
  const std::vector<Finding> findings = scan_file("src/sim/x.cpp", code);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "staleload-nolint-unbalanced");
}

TEST(LintSuppressionTest, MismatchedEndRuleListIsAFinding) {
  const std::string code =
      "// NOLIN"
      "TBEGIN(staleload-d2-raw-rng)\n"
      "std::mt19937 engine;\n"
      "// NOLIN"
      "TEND(staleload-d1-wall-clock)\n";
  const std::vector<Finding> findings = scan_file("src/sim/x.cpp", code);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "staleload-nolint-unbalanced");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintRngStreamTest, SplitAndTrialSeedConstructionsAreSanctioned) {
  const std::string code =
      "void trial(stale::sim::Rng& parent) {\n"
      "  stale::sim::Rng worker(parent.split());\n"
      "  stale::sim::Rng replay(trial_seed(7, 3));\n"
      "  (void)worker; (void)replay;\n"
      "}\n";
  EXPECT_TRUE(scan_file("src/policy/x.cpp", code).empty());
}

TEST(LintRngStreamTest, DriverIsTheSanctionedSeedingRoot) {
  // The driver constructs base generators straight from CLI seeds (R1 does
  // not apply there) but still may not seed from entropy (R3 does).
  EXPECT_TRUE(
      scan_file("src/driver/x.cpp", "stale::sim::Rng rng(cli_seed);\n")
          .empty());
  const std::vector<Finding> entropy = scan_file(
      "src/driver/x.cpp",
      "stale::sim::Rng rng(reinterpret_cast<std::uintptr_t>(&rng));\n");
  ASSERT_EQ(entropy.size(), 1u);
  EXPECT_EQ(entropy[0].rule, "staleload-r3-entropy-seed");
}

TEST(LintRngStreamTest, SerialLambdasAreOutsideR2) {
  // A by-ref generator capture is fine when the lambda never reaches the
  // parallel runtime (per-trial callbacks run on one worker).
  const std::string code =
      "void per_trial(stale::sim::Rng& rng) {\n"
      "  const auto step = [&rng]() { return rng.next_u64(); };\n"
      "  (void)step();\n"
      "}\n";
  EXPECT_TRUE(scan_file("src/driver/x.cpp", code).empty());
}

TEST(LintRngStreamTest, DefaultRefCaptureIntoParallelLoopIsCaught) {
  const std::string code =
      "void fan(stale::runtime::ThreadPool& pool, stale::sim::Rng& rng) {\n"
      "  parallel_for_each(pool, 8,\n"
      "                    [&](std::size_t i) { (void)rng.next_u64();\n"
      "                                         (void)i; });\n"
      "}\n";
  const std::vector<Finding> findings = scan_file("src/driver/x.cpp", code);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "staleload-r2-shared-stream-capture");
}

TEST(LintRngStreamTest, NamedLambdaPassedToParallelLoopIsCaught) {
  const std::string code =
      "void fan(stale::runtime::ThreadPool& pool, stale::sim::Rng& rng) {\n"
      "  const auto work = [&rng](std::size_t i) { (void)i; };\n"
      "  parallel_for_each(pool, 8, work);\n"
      "}\n";
  const std::vector<Finding> findings = scan_file("src/driver/x.cpp", code);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "staleload-r2-shared-stream-capture");
}

TEST(LintThreadSafetyTest, AnnotatedMembersAfterMutexPass) {
  const std::string code =
      "#pragma once\n"
      "#include \"check/sync.h\"\n"
      "namespace stale::sim {\n"
      "class Tally {\n"
      " private:\n"
      "  int config_knob_ = 0;\n"
      "  check::Mutex mutex_;\n"
      "  long count_ STALE_GUARDED_BY(mutex_) = 0;\n"
      "  double* slot_ STALE_PT_GUARDED_BY(mutex_) = nullptr;\n"
      "};\n"
      "}\n";
  EXPECT_TRUE(scan_file("src/sim/tally.h", code).empty());
}

TEST(LintThreadSafetyTest, MembersBeforeTheMutexNeedNoAnnotation) {
  const std::string code =
      "#pragma once\n"
      "#include \"check/sync.h\"\n"
      "namespace stale::sim {\n"
      "class Tally {\n"
      "  long count_ = 0;\n"
      "  check::Mutex mutex_;\n"
      "};\n"
      "}\n";
  EXPECT_TRUE(scan_file("src/sim/tally.h", code).empty());
}

TEST(LintThreadSafetyTest, RawMutexIsFineOutsideSrc) {
  EXPECT_TRUE(
      scan_file("tools/lint/x.cpp", "std::mutex io_lock;\n").empty());
  EXPECT_TRUE(
      scan_file("tests/x_test.cpp", "std::mutex io_lock;\n").empty());
}

TEST(LintContractTest, MethodsWithContractHooksPass) {
  const std::string code =
      "#include \"queueing/tally.h\"\n"
      "namespace stale::queueing {\n"
      "void Tally::bump() { STALE_DCHECK(count_ >= 0); ++count_; }\n"
      "void Tally::merge(const Tally& o) {\n"
      "  STALE_AUDIT(check::audit_level_histogram(c_, t_, l_, \"m\"));\n"
      "  count_ += o.count_;\n"
      "}\n"
      "}\n";
  EXPECT_TRUE(scan_file("src/queueing/tally.cpp", code).empty());
}

TEST(LintContractTest, ConstMethodsAndDeclarationsAreOutsideC1) {
  const std::string code =
      "#include \"queueing/tally.h\"\n"
      "namespace stale::queueing {\n"
      "long Tally::count() const { return count_; }\n"
      "void Tally::bump();\n"
      "}\n";
  EXPECT_TRUE(scan_file("src/queueing/tally.cpp", code).empty());
}

TEST(LintContractTest, AllowlistExemptsAndRecordsUsage) {
  stale::lint::LintConfig config;
  config.contract_allowlist.insert("queueing/Tally::bump");
  std::set<std::string> used;
  const std::string code =
      "#include \"queueing/tally.h\"\n"
      "namespace stale::queueing {\n"
      "void Tally::bump() { ++count_; }\n"
      "}\n";
  EXPECT_TRUE(
      scan_file("src/queueing/tally.cpp", code, config, &used).empty());
  EXPECT_EQ(used.count("queueing/Tally::bump"), 1u);
}

TEST(LintContractTest, HeadersAndOtherModulesAreOutsideC1) {
  const std::string code =
      "namespace stale::policy {\n"
      "void Picker::rebuild() { cache_.clear(); }\n"
      "}\n";
  EXPECT_TRUE(scan_file("src/policy/picker.cpp", code).empty());
  EXPECT_TRUE(scan_file("src/queueing/picker.h",
                        "#pragma once\n" + code)
                  .empty());
}

TEST(LintContractTest, ParsesAllowlistCommentsAndWhitespace) {
  const std::set<std::string> entries =
      stale::lint::parse_contract_allowlist(
          "# header comment\n"
          "  sim/Rng::next_u64   # trailing justification\n"
          "\n"
          "queueing/Cluster::recover\n");
  EXPECT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.count("sim/Rng::next_u64"), 1u);
  EXPECT_EQ(entries.count("queueing/Cluster::recover"), 1u);
}

TEST(LintFixTest, L2FindingsCarryBothFixDirections) {
  const std::vector<Finding> angle = scan_file(
      "src/queueing/x.cpp", "#include <queueing/cluster.h>\n");
  ASSERT_EQ(angle.size(), 1u);
  EXPECT_EQ(angle[0].rule, "staleload-l2-include-form");
  ASSERT_TRUE(angle[0].has_fix());
  EXPECT_EQ(angle[0].fixed_line, "#include \"queueing/cluster.h\"");

  const std::vector<Finding> quoted =
      scan_file("src/queueing/x.cpp", "#include \"vector\"\n");
  ASSERT_EQ(quoted.size(), 1u);
  ASSERT_TRUE(quoted[0].has_fix());
  EXPECT_EQ(quoted[0].fixed_line, "#include <vector>");
}

TEST(LintFixTest, ApplyFixesRewritesExactlyTheFixableLines) {
  const std::string path =
      ::testing::TempDir() + "/staleload_lint_fix_input.cpp";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "#include <policy/policy.h>\n"
        << "int keep_me = 1;\n"
        << "#include \"cstdint\"\n";
  }
  // scan_file wants src-relative rule scopes, so scan the contents under a
  // virtual path but point the findings at the temp file for the rewrite.
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::vector<Finding> findings =
      scan_file("src/policy/fix_input.cpp", buffer.str());
  ASSERT_EQ(findings.size(), 2u);
  for (Finding& f : findings) f.file = path;
  std::vector<std::string> errors;
  EXPECT_EQ(stale::lint::apply_fixes(findings, &errors), 2);
  EXPECT_TRUE(errors.empty());
  std::ifstream fixed_in(path, std::ios::binary);
  std::ostringstream fixed;
  fixed << fixed_in.rdbuf();
  EXPECT_EQ(fixed.str(),
            "#include \"policy/policy.h\"\n"
            "int keep_me = 1;\n"
            "#include <cstdint>\n");
}

TEST(LintSarifTest, EmitsRulesAndResults) {
  const std::vector<Finding> findings =
      scan_file("src/sim/fixture.cpp", "std::mt19937 e;\n");
  ASSERT_EQ(findings.size(), 1u);
  const std::string sarif = stale::lint::to_sarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("staleload_lint"), std::string::npos);
  EXPECT_NE(sarif.find("staleload-d2-raw-rng"), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  // An empty scan still produces a structurally valid single-run log.
  const std::string empty = stale::lint::to_sarif({});
  EXPECT_NE(empty.find("\"runs\""), std::string::npos);
}

TEST(LintScopeTest, CleanSimulationCodePasses) {
  const std::string code =
      "#pragma once\n"
      "#include \"sim/rng.h\"\n"
      "namespace stale::sim { inline double next(Rng& r) {"
      " return r.next_double(); } }\n";
  EXPECT_TRUE(scan_file("src/sim/clean.h", code).empty());
}

TEST(LintScopeTest, CommentsAndStringsNeverTrip) {
  const std::string code =
      "// mt19937 is banned; steady_clock too\n"
      "const char* kDoc = \"use std::rand() and unordered_map\";\n"
      "/* getenv(\"HOME\") would be a d4 finding in code */\n"
      "int x = 0;\n";
  EXPECT_TRUE(scan_file("src/fault/doc.cpp", code).empty());
}

TEST(LintScopeTest, RuntimeModuleMayReadEnvironment) {
  // The thread pool's STALE_JOBS default is sanctioned: runtime is outside
  // the D4 scope (it cannot influence simulated results).
  const std::string code = "const char* env = std::getenv(\"STALE_JOBS\");\n";
  EXPECT_TRUE(scan_file("src/runtime/thread_pool.cpp", code).empty());
}

TEST(LintScopeTest, SanctionedRngModuleIsExemptFromD2) {
  const std::string code = "// engine lives here\nstd::mt19937 legacy;\n";
  EXPECT_TRUE(scan_file("src/sim/rng.cpp", code).empty());
  EXPECT_FALSE(scan_file("src/sim/distributions.cpp", code).empty());
}

TEST(LintScopeTest, BenchAndTestsAreOutsideSimulationScopes) {
  const std::string code =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> retired_design;\n"
      "long t = std::chrono::steady_clock::now().time_since_epoch().count();\n";
  EXPECT_TRUE(scan_file("bench/perf_microbench.cpp", code).empty());
  EXPECT_TRUE(scan_file("tests/some_test.cpp", code).empty());
}

TEST(LintLayeringTest, DagMatchesTheDeclaredArchitecture) {
  // Spot-check allowed edges stay allowed and forbidden edges are caught.
  EXPECT_TRUE(scan_file("src/fault/x.cpp",
                        "#include \"policy/policy.h\"\n")
                  .empty());
  EXPECT_TRUE(scan_file("src/driver/x.cpp",
                        "#include \"runtime/thread_pool.h\"\n")
                  .empty());
  EXPECT_TRUE(
      scan_file("src/queueing/x.cpp", "#include \"check/audit.h\"\n").empty());
  const std::vector<Finding> up_edge =
      scan_file("src/queueing/x.cpp", "#include \"policy/policy.h\"\n");
  ASSERT_EQ(up_edge.size(), 1u);
  EXPECT_EQ(up_edge[0].rule, "staleload-l1-layering");
  const std::vector<Finding> unknown =
      scan_file("src/newmodule/x.cpp", "#include \"sim/rng.h\"\n");
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0].rule, "staleload-l1-layering")
      << "a new src/ module must be declared in the layer DAG";
}

TEST(LintLayeringTest, ObsIsIncludableFromEverySimulationLayer) {
  // obs sits just above check so compiled-in trace hooks never violate the
  // DAG; obs itself may reach only check (and is covered by the D rules, so
  // sinks cannot smuggle in nondeterminism).
  for (const char* module : {"sim", "queueing", "loadinfo", "policy", "fault",
                             "driver"}) {
    const std::string path = std::string("src/") + module + "/x.cpp";
    EXPECT_TRUE(scan_file(path, "#include \"obs/trace_sink.h\"\n").empty())
        << module << " must be allowed to include obs";
  }
  EXPECT_TRUE(
      scan_file("src/obs/x.cpp", "#include \"check/contracts.h\"\n").empty());
  const std::vector<Finding> up_edge =
      scan_file("src/obs/x.cpp", "#include \"queueing/cluster.h\"\n");
  ASSERT_EQ(up_edge.size(), 1u);
  EXPECT_EQ(up_edge[0].rule, "staleload-l1-layering");
  // obs is inside the determinism scopes: a sink writing files or reading
  // clocks would perturb traced runs.
  EXPECT_FALSE(scan_file("src/obs/x.cpp", "std::ofstream out(path);\n")
                   .empty());
}

TEST(LintLayeringTest, NetIsTheLiveBoundaryLayer) {
  // net may drive the whole simulation-side stack it shares with driver...
  for (const char* header :
       {"policy/policy_factory.h", "loadinfo/periodic_board.h",
        "fault/fault_spec.h", "obs/trace_sink.h", "sim/rng.h"}) {
    EXPECT_TRUE(scan_file("src/net/x.cpp",
                          "#include \"" + std::string(header) + "\"\n")
                    .empty())
        << "net must be allowed to include " << header;
  }
  // ...but neither net nor driver may include the other.
  const std::vector<Finding> net_to_driver =
      scan_file("src/net/x.cpp", "#include \"driver/experiment.h\"\n");
  ASSERT_EQ(net_to_driver.size(), 1u);
  EXPECT_EQ(net_to_driver[0].rule, "staleload-l1-layering");
  const std::vector<Finding> driver_to_net =
      scan_file("src/driver/x.cpp", "#include \"net/dispatcher.h\"\n");
  ASSERT_EQ(driver_to_net.size(), 1u);
  EXPECT_EQ(driver_to_net[0].rule, "staleload-l1-layering");
}

TEST(LintLayeringTest, WorkloadSitsAboveCoreAndBelowNet) {
  // workload reaches down to core (CemaRateEstimator implements
  // core::RateEstimator) and the sim substrate...
  for (const char* header :
       {"core/rate_estimator.h", "sim/rng.h", "check/contracts.h"}) {
    EXPECT_TRUE(scan_file("src/workload/x.cpp",
                          "#include \"" + std::string(header) + "\"\n")
                    .empty())
        << "workload must be allowed to include " << header;
  }
  // ...and net reaches down to workload (trace-v2 recording, CEMA live
  // estimation), but neither edge reverses.
  for (const char* header :
       {"workload/replay.h", "workload/rate_estimator.h"}) {
    EXPECT_TRUE(scan_file("src/net/x.cpp",
                          "#include \"" + std::string(header) + "\"\n")
                    .empty())
        << "net must be allowed to include " << header;
  }
  for (const char* bad_edge : {"src/core/x.cpp", "src/sim/x.cpp"}) {
    const std::vector<Finding> up =
        scan_file(bad_edge, "#include \"workload/trace.h\"\n");
    ASSERT_EQ(up.size(), 1u) << bad_edge;
    EXPECT_EQ(up[0].rule, "staleload-l1-layering") << bad_edge;
  }
  const std::vector<Finding> up =
      scan_file("src/workload/x.cpp", "#include \"net/dispatcher.h\"\n");
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0].rule, "staleload-l1-layering");
}

TEST(LintScopeTest, NetIsExemptFromSimulationDeterminismRules) {
  // The live service reads the monotonic clock and owns sockets — the
  // D-rules stop at the simulation boundary (L1 keeps sim from reaching up
  // into net, so the exemption cannot leak back down).
  const std::string code =
      "#include <ctime>\n"
      "double now() { timespec ts{}; clock_gettime(CLOCK_MONOTONIC, &ts);"
      " return static_cast<double>(ts.tv_sec); }\n"
      "void dump() { std::ofstream out(\"trace.csv\"); }\n";
  EXPECT_TRUE(scan_file("src/net/clock.cpp", code).empty());
  // The same content inside the simulation scope still trips D1 first.
  const std::vector<Finding> findings = scan_file("src/sim/clock.cpp", code);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule, "staleload-d1-wall-clock");
}

TEST(LintJsonTest, EscapesAndShapesFindings) {
  const std::vector<Finding> findings =
      scan_file("src/sim/fixture.cpp", "std::mt19937 e;  // \"quoted\"\n");
  ASSERT_EQ(findings.size(), 1u);
  const std::string json = stale::lint::to_json(findings);
  EXPECT_NE(json.find("\"rule\": \"staleload-d2-raw-rng\""),
            std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
  EXPECT_EQ(stale::lint::to_json({}), "[]\n");
}

}  // namespace
