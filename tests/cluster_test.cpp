#include "queueing/cluster.h"

#include <gtest/gtest.h>

#include <vector>

#include "queueing/metrics.h"

namespace stale::queueing {
namespace {

TEST(ClusterTest, LoadsTrackAssignments) {
  Cluster cluster(3);
  cluster.assign(0.0, 0, 1.0);
  cluster.assign(0.0, 0, 1.0);
  cluster.assign(0.0, 2, 1.0);
  const auto loads = cluster.loads();
  EXPECT_EQ(loads[0], 2);
  EXPECT_EQ(loads[1], 0);
  EXPECT_EQ(loads[2], 1);
}

TEST(ClusterTest, AdvanceRetiresDepartures) {
  Cluster cluster(2);
  cluster.assign(0.0, 0, 1.0);
  cluster.assign(0.0, 1, 3.0);
  cluster.advance_to(2.0);
  EXPECT_EQ(cluster.loads()[0], 0);
  EXPECT_EQ(cluster.loads()[1], 1);
}

TEST(ClusterTest, AssignReturnsDepartureTime) {
  Cluster cluster(2);
  EXPECT_DOUBLE_EQ(cluster.assign(1.0, 0, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(cluster.assign(1.5, 0, 2.0), 5.0);  // queued behind first
}

TEST(ClusterTest, RejectsBadServerIndex) {
  Cluster cluster(2);
  EXPECT_THROW(cluster.assign(0.0, -1, 1.0), std::out_of_range);
  EXPECT_THROW(cluster.assign(0.0, 2, 1.0), std::out_of_range);
}

TEST(ClusterTest, RejectsEmptyCluster) {
  EXPECT_THROW(Cluster(0), std::invalid_argument);
  EXPECT_THROW(Cluster(std::vector<double>{}, 0.0), std::invalid_argument);
}

TEST(ClusterTest, HeterogeneousRatesAffectDepartures) {
  Cluster cluster(std::vector<double>{1.0, 4.0}, 0.0);
  EXPECT_DOUBLE_EQ(cluster.assign(0.0, 0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(cluster.assign(0.0, 1, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(cluster.total_rate(), 5.0);
}

TEST(ClusterTest, LoadsAtReconstructsHistory) {
  Cluster cluster(2, 100.0);
  cluster.assign(1.0, 0, 5.0);
  cluster.assign(2.0, 1, 1.0);
  cluster.advance_to(10.0);
  std::vector<int> past;
  cluster.loads_at(0.5, past);
  EXPECT_EQ(past, (std::vector<int>{0, 0}));
  cluster.loads_at(2.5, past);
  EXPECT_EQ(past, (std::vector<int>{1, 1}));
  cluster.loads_at(4.0, past);
  EXPECT_EQ(past, (std::vector<int>{1, 0}));
  cluster.loads_at(7.0, past);
  EXPECT_EQ(past, (std::vector<int>{0, 0}));
}

TEST(ClusterTest, TotalRateCountsServers) {
  Cluster cluster(7);
  EXPECT_DOUBLE_EQ(cluster.total_rate(), 7.0);
  EXPECT_EQ(cluster.size(), 7);
}

TEST(ClusterTest, LevelHistogramTracksLoadsIncrementally) {
  Cluster cluster(3);
  EXPECT_EQ(cluster.level_histogram().count(0), 3);
  cluster.assign(0.0, 0, 1.0);
  cluster.assign(0.0, 0, 1.0);
  cluster.assign(0.0, 2, 3.0);
  EXPECT_EQ(cluster.level_histogram().count(0), 1);
  EXPECT_EQ(cluster.level_histogram().count(1), 1);
  EXPECT_EQ(cluster.level_histogram().count(2), 1);
  cluster.advance_to(2.5);  // both of server 0's unit jobs depart
  EXPECT_EQ(cluster.level_histogram().count(0), 2);
  EXPECT_EQ(cluster.level_histogram().count(1), 1);
  EXPECT_EQ(cluster.level_histogram().total(), 3);
}

// Lazy advance is a pure evaluation-strategy change: the same assignment
// sequence must yield identical loads, histogram, and departure times as the
// per-server sweep, at every observation instant.
TEST(ClusterTest, LazyAdvanceMatchesSweepExactly) {
  Cluster sweep(4);
  Cluster lazy(4);
  lazy.enable_lazy_advance();

  const struct {
    double t;
    int server;
    double size;
  } jobs[] = {{0.0, 0, 1.0},  {0.1, 1, 0.2}, {0.2, 0, 2.0}, {0.5, 2, 0.7},
              {0.9, 3, 1.5},  {1.0, 1, 0.1}, {1.7, 0, 0.3}, {2.0, 2, 2.0},
              {2.05, 3, 0.4}, {3.0, 0, 1.0}};
  const double checkpoints[] = {0.05, 0.45, 1.1, 1.9, 2.6, 3.5, 9.0};

  std::size_t next_job = 0;
  for (const double t : checkpoints) {
    while (next_job < std::size(jobs) && jobs[next_job].t <= t) {
      const auto& job = jobs[next_job++];
      const double d1 = sweep.assign(job.t, job.server, job.size);
      const double d2 = lazy.assign(job.t, job.server, job.size);
      EXPECT_EQ(d1, d2);
    }
    sweep.advance_to(t);
    lazy.advance_to(t);
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(sweep.loads()[static_cast<std::size_t>(s)],
                lazy.loads()[static_cast<std::size_t>(s)])
          << "server " << s << " at t=" << t;
    }
    for (int level = 0; level <= sweep.level_histogram().max_level();
         ++level) {
      EXPECT_EQ(sweep.level_histogram().count(level),
                lazy.level_histogram().count(level))
          << "level " << level << " at t=" << t;
    }
  }
}

TEST(ClusterTest, LazyAdvanceIncompatibleWithHistory) {
  Cluster cluster(2, /*history_window=*/10.0);
  EXPECT_THROW(cluster.enable_lazy_advance(), std::logic_error);
}

TEST(ResponseMetricsTest, DiscardsWarmupJobs) {
  ResponseMetrics metrics(2);
  metrics.record(100.0);
  metrics.record(100.0);
  metrics.record(3.0);
  metrics.record(5.0);
  EXPECT_EQ(metrics.total_jobs(), 4u);
  EXPECT_EQ(metrics.measured_jobs(), 2u);
  EXPECT_DOUBLE_EQ(metrics.mean_response(), 4.0);
}

TEST(ResponseMetricsTest, KeepsSamplesWhenAsked) {
  ResponseMetrics metrics(1, /*keep_samples=*/true);
  metrics.record(9.0);
  metrics.record(1.0);
  metrics.record(2.0);
  EXPECT_EQ(metrics.samples(), (std::vector<double>{1.0, 2.0}));
}

TEST(ResponseMetricsTest, NoSamplesByDefault) {
  ResponseMetrics metrics(0);
  metrics.record(1.0);
  EXPECT_TRUE(metrics.samples().empty());
}

}  // namespace
}  // namespace stale::queueing
