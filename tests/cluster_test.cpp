#include "queueing/cluster.h"

#include <gtest/gtest.h>

#include <vector>

#include "queueing/metrics.h"

namespace stale::queueing {
namespace {

TEST(ClusterTest, LoadsTrackAssignments) {
  Cluster cluster(3);
  cluster.assign(0.0, 0, 1.0);
  cluster.assign(0.0, 0, 1.0);
  cluster.assign(0.0, 2, 1.0);
  const auto loads = cluster.loads();
  EXPECT_EQ(loads[0], 2);
  EXPECT_EQ(loads[1], 0);
  EXPECT_EQ(loads[2], 1);
}

TEST(ClusterTest, AdvanceRetiresDepartures) {
  Cluster cluster(2);
  cluster.assign(0.0, 0, 1.0);
  cluster.assign(0.0, 1, 3.0);
  cluster.advance_to(2.0);
  EXPECT_EQ(cluster.loads()[0], 0);
  EXPECT_EQ(cluster.loads()[1], 1);
}

TEST(ClusterTest, AssignReturnsDepartureTime) {
  Cluster cluster(2);
  EXPECT_DOUBLE_EQ(cluster.assign(1.0, 0, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(cluster.assign(1.5, 0, 2.0), 5.0);  // queued behind first
}

TEST(ClusterTest, RejectsBadServerIndex) {
  Cluster cluster(2);
  EXPECT_THROW(cluster.assign(0.0, -1, 1.0), std::out_of_range);
  EXPECT_THROW(cluster.assign(0.0, 2, 1.0), std::out_of_range);
}

TEST(ClusterTest, RejectsEmptyCluster) {
  EXPECT_THROW(Cluster(0), std::invalid_argument);
  EXPECT_THROW(Cluster(std::vector<double>{}, 0.0), std::invalid_argument);
}

TEST(ClusterTest, HeterogeneousRatesAffectDepartures) {
  Cluster cluster(std::vector<double>{1.0, 4.0}, 0.0);
  EXPECT_DOUBLE_EQ(cluster.assign(0.0, 0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(cluster.assign(0.0, 1, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(cluster.total_rate(), 5.0);
}

TEST(ClusterTest, LoadsAtReconstructsHistory) {
  Cluster cluster(2, 100.0);
  cluster.assign(1.0, 0, 5.0);
  cluster.assign(2.0, 1, 1.0);
  cluster.advance_to(10.0);
  std::vector<int> past;
  cluster.loads_at(0.5, past);
  EXPECT_EQ(past, (std::vector<int>{0, 0}));
  cluster.loads_at(2.5, past);
  EXPECT_EQ(past, (std::vector<int>{1, 1}));
  cluster.loads_at(4.0, past);
  EXPECT_EQ(past, (std::vector<int>{1, 0}));
  cluster.loads_at(7.0, past);
  EXPECT_EQ(past, (std::vector<int>{0, 0}));
}

TEST(ClusterTest, TotalRateCountsServers) {
  Cluster cluster(7);
  EXPECT_DOUBLE_EQ(cluster.total_rate(), 7.0);
  EXPECT_EQ(cluster.size(), 7);
}

TEST(ResponseMetricsTest, DiscardsWarmupJobs) {
  ResponseMetrics metrics(2);
  metrics.record(100.0);
  metrics.record(100.0);
  metrics.record(3.0);
  metrics.record(5.0);
  EXPECT_EQ(metrics.total_jobs(), 4u);
  EXPECT_EQ(metrics.measured_jobs(), 2u);
  EXPECT_DOUBLE_EQ(metrics.mean_response(), 4.0);
}

TEST(ResponseMetricsTest, KeepsSamplesWhenAsked) {
  ResponseMetrics metrics(1, /*keep_samples=*/true);
  metrics.record(9.0);
  metrics.record(1.0);
  metrics.record(2.0);
  EXPECT_EQ(metrics.samples(), (std::vector<double>{1.0, 2.0}));
}

TEST(ResponseMetricsTest, NoSamplesByDefault) {
  ResponseMetrics metrics(0);
  metrics.record(1.0);
  EXPECT_TRUE(metrics.samples().empty());
}

}  // namespace
}  // namespace stale::queueing
