#include "sim/distributions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.h"

namespace stale::sim {
namespace {

// Draws `n` samples and returns (sample mean, sample variance).
std::pair<double, double> sample_moments(const Distribution& dist, int n,
                                         std::uint64_t seed = 99) {
  Rng rng(seed);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = dist.sample(rng);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  return {mean, sum_sq / n - mean * mean};
}

TEST(DeterministicTest, AlwaysReturnsValue) {
  Deterministic dist(3.5);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(dist.sample(rng), 3.5);
  EXPECT_EQ(dist.mean(), 3.5);
  EXPECT_EQ(dist.variance(), 0.0);
}

TEST(DeterministicTest, RejectsNegative) {
  EXPECT_THROW(Deterministic(-1.0), std::invalid_argument);
}

TEST(ExponentialTest, MomentsMatchAnalytic) {
  Exponential dist(2.0);
  const auto [mean, variance] = sample_moments(dist, 400000);
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(variance, 4.0, 0.1);
}

TEST(ExponentialTest, SamplesArePositive) {
  Exponential dist(1.0);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) ASSERT_GT(dist.sample(rng), 0.0);
}

TEST(ExponentialTest, RejectsNonPositiveMean) {
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
}

TEST(ExponentialTest, MedianMatchesAnalytic) {
  Exponential dist(1.0);
  Rng rng(5);
  std::vector<double> samples(100001);
  for (double& s : samples) s = dist.sample(rng);
  std::nth_element(samples.begin(), samples.begin() + 50000, samples.end());
  EXPECT_NEAR(samples[50000], std::log(2.0), 0.02);
}

TEST(UniformTest, MomentsMatchAnalytic) {
  Uniform dist(1.0, 3.0);
  const auto [mean, variance] = sample_moments(dist, 200000);
  EXPECT_NEAR(mean, 2.0, 0.01);
  EXPECT_NEAR(variance, 4.0 / 12.0, 0.01);
}

TEST(UniformTest, SamplesWithinBounds) {
  Uniform dist(0.5, 1.5);
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double x = dist.sample(rng);
    ASSERT_GE(x, 0.5);
    ASSERT_LT(x, 1.5);
  }
}

TEST(UniformTest, RejectsBadBounds) {
  EXPECT_THROW(Uniform(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Uniform(-1.0, 1.0), std::invalid_argument);
}

TEST(BoundedParetoTest, SamplesWithinSupport) {
  BoundedPareto dist(1.1, 0.1, 100.0);
  Rng rng(9);
  for (int i = 0; i < 100000; ++i) {
    const double x = dist.sample(rng);
    ASSERT_GE(x, 0.1);
    ASSERT_LE(x, 100.0);
  }
}

TEST(BoundedParetoTest, SampleMeanMatchesAnalyticMean) {
  BoundedPareto dist(1.5, 0.5, 512.0);
  const auto [mean, variance] = sample_moments(dist, 1000000);
  EXPECT_NEAR(mean, dist.mean(), dist.mean() * 0.03);
  (void)variance;  // heavy tails make the sampled variance too noisy to pin
}

TEST(BoundedParetoTest, AnalyticMeanAgainstNumericIntegration) {
  // Trapezoidal integration of x * f(x) over [k, p] in log space.
  const BoundedPareto dist(1.1, 0.2, 1000.0);
  const double alpha = 1.1;
  const double k = 0.2;
  const double p = 1000.0;
  const double tail = 1.0 - std::pow(k / p, alpha);
  const int steps = 200000;
  double integral = 0.0;
  const double log_k = std::log(k);
  const double log_p = std::log(p);
  const double h = (log_p - log_k) / steps;
  auto integrand = [&](double log_x) {
    const double x = std::exp(log_x);
    const double pdf = alpha * std::pow(k, alpha) * std::pow(x, -alpha - 1.0) /
                       tail;
    return x * pdf * x;  // extra x = Jacobian of the log substitution
  };
  for (int i = 0; i <= steps; ++i) {
    const double weight = (i == 0 || i == steps) ? 0.5 : 1.0;
    integral += weight * integrand(log_k + i * h);
  }
  integral *= h;
  EXPECT_NEAR(dist.mean(), integral, integral * 1e-4);
}

TEST(BoundedParetoTest, WithMeanHitsRequestedMean) {
  for (double alpha : {1.1, 1.5, 1.9}) {
    const BoundedPareto dist = BoundedPareto::with_mean(alpha, 1.0, 1000.0);
    EXPECT_NEAR(dist.mean(), 1.0, 1e-6) << "alpha=" << alpha;
    EXPECT_NEAR(dist.p(), 1000.0, 1e-9);
    EXPECT_GT(dist.k(), 0.0);
    EXPECT_LT(dist.k(), 1.0);
  }
}

TEST(BoundedParetoTest, VarianceGrowsAsTailHeavier) {
  const BoundedPareto heavy = BoundedPareto::with_mean(1.1, 1.0, 1000.0);
  const BoundedPareto light = BoundedPareto::with_mean(1.9, 1.0, 1000.0);
  EXPECT_GT(heavy.variance(), light.variance());
  // Both are far more variable than exponential(1) (variance 1).
  EXPECT_GT(light.variance(), 1.0);
}

TEST(BoundedParetoTest, RejectsBadParameters) {
  EXPECT_THROW(BoundedPareto(0.0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(1.1, 0.0, 2.0), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(1.1, 2.0, 2.0), std::invalid_argument);
  EXPECT_THROW(BoundedPareto::with_mean(1.1, 0.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW(BoundedPareto::with_mean(1.1, 1.0, 1.0), std::invalid_argument);
}

TEST(HyperexponentialTest, MomentsMatchAnalytic) {
  Hyperexponential dist(0.3, 0.5, 4.0);
  const auto [mean, variance] = sample_moments(dist, 500000);
  EXPECT_NEAR(mean, dist.mean(), 0.02);
  EXPECT_NEAR(variance, dist.variance(), dist.variance() * 0.05);
}

TEST(HyperexponentialTest, RejectsBadParameters) {
  EXPECT_THROW(Hyperexponential(-0.1, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Hyperexponential(1.1, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Hyperexponential(0.5, 0.0, 1.0), std::invalid_argument);
}

TEST(ParseDistributionTest, ParsesEveryKind) {
  EXPECT_EQ(parse_distribution("det:2.5")->mean(), 2.5);
  EXPECT_EQ(parse_distribution("exp:1.5")->mean(), 1.5);
  EXPECT_DOUBLE_EQ(parse_distribution("uniform:1:3")->mean(), 2.0);
  EXPECT_NEAR(parse_distribution("bpmean:1.1:1.0:1000")->mean(), 1.0, 1e-6);
  EXPECT_GT(parse_distribution("bp:1.5:0.3:100")->mean(), 0.3);
  EXPECT_NEAR(parse_distribution("hyper:0.5:1:3")->mean(), 2.0, 1e-12);
}

TEST(ParseDistributionTest, DescribeRoundTrips) {
  for (const char* spec : {"det:2.5", "exp:1.5", "uniform:1:3"}) {
    const auto dist = parse_distribution(spec);
    const auto again = parse_distribution(dist->describe());
    EXPECT_DOUBLE_EQ(again->mean(), dist->mean()) << spec;
  }
}

TEST(ParseDistributionTest, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_distribution(""), std::invalid_argument);
  EXPECT_THROW(parse_distribution("nope:1"), std::invalid_argument);
  EXPECT_THROW(parse_distribution("exp"), std::invalid_argument);
  EXPECT_THROW(parse_distribution("exp:abc"), std::invalid_argument);
  EXPECT_THROW(parse_distribution("exp:1:2"), std::invalid_argument);
  EXPECT_THROW(parse_distribution("uniform:1"), std::invalid_argument);
  EXPECT_THROW(parse_distribution("bp:1.1:1"), std::invalid_argument);
}

}  // namespace
}  // namespace stale::sim
