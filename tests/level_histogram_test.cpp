// Unit tests for the bucketed load representation (sim/level_histogram.h):
// histogram bookkeeping against a straightforward recount, exact-aggregate
// identities against direct vector formulas, LevelIndex structural
// invariants under random update streams, and uniformity of the three pick
// primitives.
#include "sim/level_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.h"

namespace {

using stale::sim::LevelHistogram;
using stale::sim::LevelIndex;
using stale::sim::Rng;

std::vector<int> random_loads(Rng& rng, int n, int max_level) {
  std::vector<int> loads(static_cast<std::size_t>(n));
  for (int& load : loads) {
    load = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(max_level) + 1));
  }
  return loads;
}

TEST(LevelHistogramTest, EmptyHistogram) {
  LevelHistogram hist;
  EXPECT_TRUE(hist.empty());
  EXPECT_EQ(hist.total(), 0);
  EXPECT_EQ(hist.min_level(), -1);
  EXPECT_EQ(hist.max_level(), -1);
  EXPECT_EQ(hist.count(0), 0);
  EXPECT_EQ(hist.count_at_or_below(100), 0);
  EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
  EXPECT_DOUBLE_EQ(hist.stddev(), 0.0);
}

TEST(LevelHistogramTest, AssignMatchesRecount) {
  Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    const std::vector<int> loads = random_loads(rng, 200, 12);
    LevelHistogram hist;
    hist.assign(loads);
    ASSERT_EQ(hist.total(), 200);
    EXPECT_EQ(hist.min_level(),
              *std::min_element(loads.begin(), loads.end()));
    EXPECT_EQ(hist.max_level(),
              *std::max_element(loads.begin(), loads.end()));
    for (int level = 0; level <= hist.max_level(); ++level) {
      EXPECT_EQ(hist.count(level),
                std::count(loads.begin(), loads.end(), level));
    }
  }
}

TEST(LevelHistogramTest, MoveTracksMutationsAndMinMax) {
  LevelHistogram hist;
  const std::vector<int> loads = {3, 3, 7, 1};
  hist.assign(loads);
  EXPECT_EQ(hist.min_level(), 1);
  EXPECT_EQ(hist.max_level(), 7);

  hist.move(1, 2);  // the level-1 server grows
  EXPECT_EQ(hist.min_level(), 2);
  EXPECT_EQ(hist.count(1), 0);
  EXPECT_EQ(hist.count(2), 1);

  hist.move(7, 0);  // the level-7 server drains
  EXPECT_EQ(hist.min_level(), 0);
  EXPECT_EQ(hist.max_level(), 3);
  EXPECT_EQ(hist.total(), 4);

  hist.move(3, 3);  // no-op move
  EXPECT_EQ(hist.count(3), 2);
}

TEST(LevelHistogramTest, RemoveFromEmptyLevelThrows) {
  LevelHistogram hist;
  hist.add(2);
  EXPECT_THROW(hist.remove(1), std::invalid_argument);
  EXPECT_THROW(hist.add(-1), std::invalid_argument);
}

TEST(LevelHistogramTest, ExactAggregatesMatchVectorFormulas) {
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    const std::vector<int> loads = random_loads(rng, 333, 25);
    LevelHistogram hist;
    hist.assign(loads);

    // The same double formulas over the same exact integer sums must agree
    // bit for bit, which is what LoadImbalanceStats' histogram overload
    // relies on.
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int load : loads) {
      sum += load;
      sum_sq += static_cast<double>(load) * load;
    }
    const double n = static_cast<double>(loads.size());
    const double mean = sum / n;
    const double variance = sum_sq / n - mean * mean;
    const double stddev = std::sqrt(variance > 0.0 ? variance : 0.0);
    EXPECT_EQ(hist.mean(), mean);
    EXPECT_EQ(hist.stddev(), stddev);
  }
}

TEST(LevelHistogramTest, CountAtOrBelow) {
  LevelHistogram hist;
  hist.assign(std::vector<int>{0, 0, 2, 5, 5, 5});
  EXPECT_EQ(hist.count_at_or_below(-1), 0);
  EXPECT_EQ(hist.count_at_or_below(0), 2);
  EXPECT_EQ(hist.count_at_or_below(1), 2);
  EXPECT_EQ(hist.count_at_or_below(2), 3);
  EXPECT_EQ(hist.count_at_or_below(4), 3);
  EXPECT_EQ(hist.count_at_or_below(5), 6);
  EXPECT_EQ(hist.count_at_or_below(1000), 6);
}

// Structural invariants that make LevelIndex::update O(1)-correct: every
// server is findable at its claimed level/position, and the histogram
// matches a recount — maintained across a long random mutation stream.
TEST(LevelIndexTest, InvariantsUnderRandomUpdates) {
  Rng rng(99);
  std::vector<int> loads = random_loads(rng, 64, 6);
  LevelIndex index;
  index.build(loads);

  for (int step = 0; step < 5000; ++step) {
    const int server = static_cast<int>(rng.next_below(64));
    const int new_level = static_cast<int>(rng.next_below(10));
    loads[static_cast<std::size_t>(server)] = new_level;
    index.update(server, new_level);
  }

  ASSERT_EQ(index.num_servers(), 64);
  LevelHistogram recount;
  recount.assign(loads);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    EXPECT_EQ(index.level_of(static_cast<int>(i)), loads[i]);
  }
  ASSERT_EQ(index.histogram().total(), recount.total());
  for (int level = 0; level <= recount.max_level(); ++level) {
    EXPECT_EQ(index.histogram().count(level), recount.count(level));
  }
  EXPECT_EQ(index.histogram().level_sum(), recount.level_sum());
  EXPECT_EQ(index.histogram().level_sq_sum(), recount.level_sq_sum());
}

TEST(LevelIndexTest, PickUniformInLevelIsUniform) {
  const std::vector<int> loads = {1, 0, 1, 1, 2, 1};
  LevelIndex index;
  index.build(loads);
  Rng rng(1234);
  std::vector<int> hits(loads.size(), 0);
  const int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    const int pick = index.pick_uniform_in_level(1, rng);
    ASSERT_EQ(loads[static_cast<std::size_t>(pick)], 1);
    ++hits[static_cast<std::size_t>(pick)];
  }
  // Four members of level 1; each should get ~1/4 of the draws.
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (loads[i] == 1) {
      EXPECT_NEAR(hits[i] / static_cast<double>(kDraws), 0.25, 0.02);
    } else {
      EXPECT_EQ(hits[i], 0);
    }
  }
  EXPECT_THROW(index.pick_uniform_in_level(7, rng), std::invalid_argument);
}

TEST(LevelIndexTest, PickUniformInPrefixCoversLeastLoaded) {
  const std::vector<int> loads = {4, 0, 2, 0, 2, 9};
  LevelIndex index;
  index.build(loads);
  Rng rng(5678);
  // Prefix of 4 = both level-0 servers plus both level-2 servers.
  std::vector<int> hits(loads.size(), 0);
  const int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    ++hits[static_cast<std::size_t>(index.pick_uniform_in_prefix(4, rng))];
  }
  EXPECT_EQ(hits[0], 0);
  EXPECT_EQ(hits[5], 0);
  for (const std::size_t member : {1u, 2u, 3u, 4u}) {
    EXPECT_NEAR(hits[member] / static_cast<double>(kDraws), 0.25, 0.02);
  }
  EXPECT_THROW(index.pick_uniform_in_prefix(0, rng), std::invalid_argument);
  EXPECT_THROW(index.pick_uniform_in_prefix(7, rng), std::invalid_argument);
}

TEST(LevelIndexTest, PickUniformAtOrBelow) {
  const std::vector<int> loads = {4, 0, 2, 0, 2, 9};
  LevelIndex index;
  index.build(loads);
  Rng rng(91011);
  std::vector<int> hits(loads.size(), 0);
  const int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    const int pick = index.pick_uniform_at_or_below(3, rng);
    ASSERT_LE(loads[static_cast<std::size_t>(pick)], 3);
    ++hits[static_cast<std::size_t>(pick)];
  }
  for (const std::size_t member : {1u, 2u, 3u, 4u}) {
    EXPECT_NEAR(hits[member] / static_cast<double>(kDraws), 0.25, 0.02);
  }
  EXPECT_THROW(index.pick_uniform_at_or_below(-1, rng),
               std::invalid_argument);
}

TEST(LevelIndexTest, RetireRemovesAServerFromEveryPickAndAggregate) {
  const std::vector<int> loads = {0, 1, 1, 3};
  LevelIndex index;
  index.build(loads);
  EXPECT_EQ(index.retired_count(), 0);

  index.retire(1);
  EXPECT_TRUE(index.retired(1));
  EXPECT_EQ(index.retired_count(), 1);
  EXPECT_EQ(index.histogram().total(), 3);
  EXPECT_EQ(index.histogram().count(1), 1);
  EXPECT_EQ(index.histogram().level_sum(), 4);  // 0 + 1 + 3

  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(index.pick_uniform_in_level(1, rng), 2);
    const int pick = index.pick_uniform_at_or_below(3, rng);
    EXPECT_NE(pick, 1);
  }
  // Double-retire and out-of-range are caller bugs, not silent no-ops.
  EXPECT_THROW(index.retire(1), std::invalid_argument);
  EXPECT_THROW(index.retire(-1), std::invalid_argument);
  EXPECT_THROW(index.retire(4), std::invalid_argument);
  EXPECT_EQ(index.retired_count(), 1);
}

TEST(LevelIndexTest, ReadmitRestoresTheRecordedLevel) {
  const std::vector<int> loads = {0, 1, 1, 3};
  LevelIndex index;
  index.build(loads);
  index.retire(3);
  // Load changes while a server is quarantined are recorded, not applied —
  // the histogram must never count a retired server.
  index.update(3, 5);
  EXPECT_EQ(index.histogram().total(), 3);
  EXPECT_EQ(index.level_of(3), 5);

  index.readmit(3);
  EXPECT_FALSE(index.retired(3));
  EXPECT_EQ(index.retired_count(), 0);
  EXPECT_EQ(index.histogram().total(), 4);
  EXPECT_EQ(index.histogram().count(5), 1);
  Rng rng(7);
  EXPECT_EQ(index.pick_uniform_in_level(5, rng), 3);
  // Readmitting a live server is a caller bug.
  EXPECT_THROW(index.readmit(3), std::invalid_argument);
  EXPECT_EQ(index.histogram().total(), 4);
}

TEST(LevelIndexTest, RetirementMaskSurvivesSameSizeRebuildOnly) {
  const std::vector<int> loads = {2, 2, 2};
  LevelIndex index;
  index.build(loads);
  index.retire(0);

  // Same-size rebuild (a periodic board refresh mid-quarantine): server 0
  // stays out of the histogram but its fresh level is remembered.
  const std::vector<int> refreshed = {4, 1, 1};
  index.build(refreshed);
  EXPECT_TRUE(index.retired(0));
  EXPECT_EQ(index.histogram().total(), 2);
  EXPECT_EQ(index.histogram().count(4), 0);
  EXPECT_EQ(index.level_of(0), 4);
  index.readmit(0);
  EXPECT_EQ(index.histogram().count(4), 1);

  // A size change is a different cluster: the mask resets.
  index.retire(1);
  const std::vector<int> resized = {0, 0, 0, 0};
  index.build(resized);
  EXPECT_EQ(index.retired_count(), 0);
  EXPECT_FALSE(index.retired(1));
  EXPECT_EQ(index.histogram().total(), 4);
}

}  // namespace
