// Cross-engine validation: the same queueing system implemented two ways —
// (a) the production lazy-departure engine (driver::run_trial) and (b) an
// independent implementation on the generic event kernel (sim::Simulator)
// with explicit arrival/departure/board-refresh events — must agree on mean
// response time. Any disagreement flags a bug in one of the engines.
#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <vector>

#include "driver/experiment.h"
#include "policy/policy_factory.h"
#include "queueing/metrics.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace stale::driver {
namespace {

// Event-kernel reimplementation of the periodic-update experiment. Servers
// are explicit FIFO queues drained by departure events; the bulletin board
// refreshes via its own periodic event chain, cancelled when the run drains.
class EventKernelSystem {
 public:
  EventKernelSystem(const ExperimentConfig& config, std::uint64_t seed)
      : config_(config),
        rng_(seed),
        policy_(policy::make_policy(config.policy)),
        job_size_(sim::parse_distribution(config.job_size)),
        queues_(static_cast<std::size_t>(config.num_servers)),
        busy_(static_cast<std::size_t>(config.num_servers), false),
        board_(static_cast<std::size_t>(config.num_servers), 0),
        metrics_(config.warmup_jobs) {}

  double run() {
    refresh_handle_ = sim_.schedule_at(
        config_.update_interval,
        [this](sim::Simulator& s) { refresh_board(s); });
    schedule_next_arrival(sim_);
    sim_.run();
    return metrics_.mean_response();
  }

 private:
  struct PendingJob {
    double arrival;
    double size;
  };

  void refresh_board(sim::Simulator& s) {
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      board_[i] = static_cast<int>(queues_[i].size());
    }
    board_time_ = s.now();
    ++board_version_;
    refresh_handle_ = s.schedule_after(
        config_.update_interval,
        [this](sim::Simulator& s2) { refresh_board(s2); });
  }

  void schedule_next_arrival(sim::Simulator& s) {
    if (launched_ >= config_.num_jobs) return;
    ++launched_;
    const double gap =
        -std::log(rng_.next_double_open0()) / config_.total_rate();
    s.schedule_after(gap, [this](sim::Simulator& s2) { on_arrival(s2); });
  }

  void on_arrival(sim::Simulator& s) {
    policy::DispatchContext context;
    context.loads = board_;
    context.age = s.now() - board_time_;
    context.lambda_total = config_.believed_total_rate();
    context.phase_length = config_.update_interval;
    context.phase_elapsed = context.age;
    context.info_version = board_version_;
    const int server = policy_->select(context, rng_);
    const double size = job_size_->sample(rng_);
    auto& queue = queues_[static_cast<std::size_t>(server)];
    queue.push_back(PendingJob{s.now(), size});
    if (!busy_[static_cast<std::size_t>(server)]) {
      start_service(s, server);
    }
    schedule_next_arrival(s);
  }

  void start_service(sim::Simulator& s, int server) {
    auto& queue = queues_[static_cast<std::size_t>(server)];
    busy_[static_cast<std::size_t>(server)] = true;
    const PendingJob job = queue.front();
    s.schedule_after(job.size, [this, server, job](sim::Simulator& s2) {
      metrics_.record(s2.now() - job.arrival);
      auto& q = queues_[static_cast<std::size_t>(server)];
      q.pop_front();
      if (q.empty()) {
        busy_[static_cast<std::size_t>(server)] = false;
        maybe_finish(s2);
      } else {
        start_service(s2, server);
      }
    });
  }

  void maybe_finish(sim::Simulator& s) {
    if (launched_ < config_.num_jobs) return;
    for (bool busy : busy_) {
      if (busy) return;
    }
    s.cancel(refresh_handle_);  // last pending event: run() now terminates
  }

  const ExperimentConfig config_;
  sim::Rng rng_;
  policy::PolicyPtr policy_;
  sim::DistributionPtr job_size_;
  sim::Simulator sim_;
  std::vector<std::deque<PendingJob>> queues_;
  std::vector<bool> busy_;
  std::vector<int> board_;
  double board_time_ = 0.0;
  std::uint64_t board_version_ = 1;
  std::uint64_t launched_ = 0;
  sim::EventHandle refresh_handle_;
  queueing::ResponseMetrics metrics_;
};

// Note on comparison tolerance: the two engines consume random variates in
// different orders, so they are statistically — not bitwise — equivalent.
// We average a few seeds of each and require agreement well inside the
// spread between competing policies.
double event_kernel_mean(const ExperimentConfig& config) {
  double total = 0.0;
  for (int trial = 0; trial < config.trials; ++trial) {
    EventKernelSystem system(config,
                             sim::trial_seed(config.base_seed ^ 0xE7, trial));
    total += system.run();
  }
  return total / config.trials;
}

double lazy_engine_mean(const ExperimentConfig& config) {
  return run_experiment(config).mean();
}

class CrossEngineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CrossEngineTest, EnginesAgreeOnMeanResponse) {
  ExperimentConfig config;
  config.num_jobs = 120'000;
  config.warmup_jobs = 30'000;
  config.trials = 4;
  // lambda = 0.8 keeps the M/M/1-style trial variance small enough for the
  // 8% agreement band; the engines' equivalence is load-independent.
  config.lambda = 0.8;
  config.update_interval = 4.0;
  config.policy = GetParam();
  const double lazy = lazy_engine_mean(config);
  const double kernel = event_kernel_mean(config);
  EXPECT_NEAR(kernel, lazy, 0.08 * std::max(lazy, kernel))
      << "lazy=" << lazy << " kernel=" << kernel;
}

INSTANTIATE_TEST_SUITE_P(Policies, CrossEngineTest,
                         ::testing::Values("random", "k_subset:2", "basic_li",
                                           "aggressive_li"));

TEST(CrossEngineTest, AgreesAcrossUpdateIntervals) {
  for (double t : {0.5, 8.0}) {
    ExperimentConfig config;
    config.num_jobs = 100'000;
    config.warmup_jobs = 25'000;
    config.trials = 3;
    config.update_interval = t;
    config.policy = "basic_li";
    const double lazy = lazy_engine_mean(config);
    const double kernel = event_kernel_mean(config);
    EXPECT_NEAR(kernel, lazy, 0.08 * std::max(lazy, kernel)) << "T=" << t;
  }
}

}  // namespace
}  // namespace stale::driver
