#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "driver/cli.h"
#include "driver/experiment.h"
#include "driver/sweep.h"
#include "driver/table.h"

namespace stale::driver {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig config;
  config.num_jobs = 20'000;
  config.warmup_jobs = 5'000;
  config.trials = 2;
  return config;
}

TEST(ExperimentConfigTest, ValidationCatchesBadValues) {
  ExperimentConfig config = small_config();
  config.num_servers = 0;
  EXPECT_THROW(run_experiment(config), std::invalid_argument);

  config = small_config();
  config.lambda = 0.0;
  EXPECT_THROW(run_experiment(config), std::invalid_argument);

  config = small_config();
  config.warmup_jobs = config.num_jobs;
  EXPECT_THROW(run_experiment(config), std::invalid_argument);

  config = small_config();
  config.trials = 0;
  EXPECT_THROW(run_experiment(config), std::invalid_argument);

  config = small_config();
  config.update_interval = 0.0;
  EXPECT_THROW(run_experiment(config), std::invalid_argument);
}

TEST(ExperimentConfigTest, BucketedValidationAndAutoResolution) {
  // Explicit bucketed + fault injection is rejected; so is update_on_access.
  ExperimentConfig config = small_config();
  config.board_repr = policy::BoardRepr::kBucketed;
  config.fault.crash_rate = 0.01;
  EXPECT_THROW(run_experiment(config), std::invalid_argument);

  config = small_config();
  config.board_repr = policy::BoardRepr::kBucketed;
  config.model = UpdateModel::kUpdateOnAccess;
  EXPECT_THROW(run_experiment(config), std::invalid_argument);

  // Auto: vector below the threshold, bucketed at/above it, and never for
  // ineligible runs regardless of size.
  config = small_config();
  EXPECT_FALSE(config.resolved_bucketed());  // default n = 10
  config.num_servers = policy::kBucketedAutoThreshold;
  EXPECT_TRUE(config.resolved_bucketed());
  config.fault.crash_rate = 0.01;
  EXPECT_FALSE(config.resolved_bucketed());
  config.fault.crash_rate = 0.0;
  config.board_repr = policy::BoardRepr::kVector;
  EXPECT_FALSE(config.resolved_bucketed());
  config.board_repr = policy::BoardRepr::kBucketed;
  config.num_servers = 10;
  EXPECT_TRUE(config.resolved_bucketed());  // explicit request, small n
}

TEST(RunTrialTest, BucketedAndVectorReprsBothRunSmallClusters) {
  // Statistical (not bit) equivalence: the two representations draw
  // different RNG sequences, so just assert both produce sane results on the
  // same configuration and are individually deterministic.
  ExperimentConfig config = small_config();
  config.num_servers = 64;
  config.policy = "aggressive_li";
  config.board_repr = policy::BoardRepr::kBucketed;
  const TrialResult bucketed = run_trial(config, 99);
  const TrialResult bucketed_again = run_trial(config, 99);
  EXPECT_EQ(bucketed.mean_response, bucketed_again.mean_response);
  config.board_repr = policy::BoardRepr::kVector;
  const TrialResult vector_repr = run_trial(config, 99);
  EXPECT_GT(bucketed.mean_response, 0.0);
  EXPECT_GT(vector_repr.mean_response, 0.0);
  // Same workload scale either way.
  EXPECT_EQ(bucketed.total_jobs, vector_repr.total_jobs);
}

TEST(ExperimentConfigTest, BelievedRateAppliesOverridesAndErrors) {
  ExperimentConfig config;
  config.num_servers = 10;
  config.lambda = 0.9;
  EXPECT_DOUBLE_EQ(config.believed_total_rate(), 9.0);
  config.lambda_error_factor = 2.0;
  EXPECT_DOUBLE_EQ(config.believed_total_rate(), 18.0);
  config.lambda_estimate_per_server = 1.0;
  EXPECT_DOUBLE_EQ(config.believed_total_rate(), 20.0);
}

TEST(RunTrialTest, DeterministicForSameSeed) {
  const ExperimentConfig config = small_config();
  const TrialResult a = run_trial(config, 12345);
  const TrialResult b = run_trial(config, 12345);
  EXPECT_EQ(a.mean_response, b.mean_response);
  EXPECT_EQ(a.measured_jobs, b.measured_jobs);
  EXPECT_EQ(a.sim_end_time, b.sim_end_time);
}

TEST(RunTrialTest, DifferentSeedsDiffer) {
  const ExperimentConfig config = small_config();
  EXPECT_NE(run_trial(config, 1).mean_response,
            run_trial(config, 2).mean_response);
}

TEST(RunTrialTest, CountsJobsCorrectly) {
  const ExperimentConfig config = small_config();
  const TrialResult result = run_trial(config, 7);
  EXPECT_EQ(result.total_jobs, config.num_jobs);
  EXPECT_EQ(result.measured_jobs, config.num_jobs - config.warmup_jobs);
  EXPECT_GT(result.sim_end_time, 0.0);
}

TEST(RunTrialTest, SimulatedDurationMatchesArrivalRate) {
  ExperimentConfig config = small_config();
  config.lambda = 0.5;  // aggregate rate 5 -> 20k jobs ~ 4000 time units
  const TrialResult result = run_trial(config, 11);
  EXPECT_NEAR(result.sim_end_time, 4000.0, 200.0);
}

TEST(RunTrialTest, EveryModelRuns) {
  for (UpdateModel model :
       {UpdateModel::kPeriodic, UpdateModel::kContinuous,
        UpdateModel::kUpdateOnAccess, UpdateModel::kIndividual}) {
    ExperimentConfig config = small_config();
    config.model = model;
    config.update_interval = 2.0;
    const TrialResult result = run_trial(config, 3);
    EXPECT_GT(result.mean_response, 0.9) << update_model_name(model);
    EXPECT_LT(result.mean_response, 100.0) << update_model_name(model);
  }
}

TEST(RunTrialTest, EveryPolicyRunsUnderEveryModel) {
  const std::vector<std::string> policies = {
      "random",   "k_subset:2", "threshold:2:4", "basic_li",
      "hybrid_li", "aggressive_li", "basic_li_k:3"};
  for (UpdateModel model :
       {UpdateModel::kPeriodic, UpdateModel::kContinuous,
        UpdateModel::kUpdateOnAccess}) {
    for (const auto& policy : policies) {
      ExperimentConfig config = small_config();
      config.num_jobs = 5'000;
      config.warmup_jobs = 1'000;
      config.model = model;
      config.policy = policy;
      const TrialResult result = run_trial(config, 5);
      EXPECT_GT(result.mean_response, 0.5)
          << update_model_name(model) << "/" << policy;
    }
  }
}

TEST(RunExperimentTest, AggregatesAcrossTrials) {
  ExperimentConfig config = small_config();
  config.trials = 4;
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.trial_means.size(), 4u);
  EXPECT_EQ(result.across_trials.count(), 4u);
  EXPECT_GT(result.ci90(), 0.0);
  const sim::BoxStats box = result.box();
  EXPECT_LE(box.min, box.median);
  EXPECT_LE(box.median, box.max);
}

TEST(UpdateOnAccessTest, MinJobsPerClientExtendsRun) {
  ExperimentConfig config = small_config();
  config.model = UpdateModel::kUpdateOnAccess;
  config.update_interval = 100.0;  // 900 clients at lambda * n = 9
  config.num_jobs = 10'000;
  config.warmup_jobs = 2'000;
  config.min_jobs_per_client = 20;  // needs 18k jobs > 10k
  const TrialResult result = run_trial(config, 9);
  EXPECT_GE(result.total_jobs, 18'000u);
}

TEST(UpdateOnAccessTest, BurstyVariantRuns) {
  ExperimentConfig config = small_config();
  config.model = UpdateModel::kUpdateOnAccess;
  config.bursty = true;
  config.update_interval = 10.0;
  const TrialResult result = run_trial(config, 13);
  EXPECT_GT(result.mean_response, 0.9);
}

TEST(TableTest, AlignedOutputContainsHeadersAndRule) {
  Table table({"x", "value"});
  table.add_row({"1", "2.5"});
  std::ostringstream os;
  table.print(os, /*csv=*/false);
  const std::string text = os.str();
  EXPECT_NE(text.find("x"), std::string::npos);
  EXPECT_NE(text.find("--"), std::string::npos);
  EXPECT_NE(text.find("2.5"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  std::ostringstream os;
  table.print(os, /*csv=*/true);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, RejectsMismatchedRow) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt_ci(1.5, 0.25, 2), "1.50+-0.25");
}

TEST(CliTest, ParsesStandardFlags) {
  const char* argv[] = {"bench", "--fast", "--csv", "--seed", "77"};
  Cli cli(5, argv);
  EXPECT_TRUE(cli.has("fast"));
  EXPECT_TRUE(cli.csv());
  ExperimentConfig config;
  cli.apply_run_scale(config);
  EXPECT_EQ(config.num_jobs, 20'000u);
  EXPECT_EQ(config.trials, 2);
  EXPECT_EQ(config.base_seed, 77u);
}

TEST(CliTest, PaperScaleAndInlineValues) {
  const char* argv[] = {"bench", "--paper", "--trials=3"};
  Cli cli(3, argv);
  ExperimentConfig config;
  cli.apply_run_scale(config);
  EXPECT_EQ(config.num_jobs, 500'000u);
  EXPECT_EQ(config.trials, 3);  // explicit override wins
}

TEST(CliTest, DefaultScale) {
  const char* argv[] = {"bench"};
  Cli cli(1, argv);
  ExperimentConfig config;
  cli.apply_run_scale(config);
  EXPECT_EQ(config.num_jobs, 120'000u);
  EXPECT_EQ(config.trials, 5);
  EXPECT_NE(cli.scale_description().find("default"), std::string::npos);
}

TEST(CliTest, ExtraFlagsAndSwitches) {
  const char* argv[] = {"bench", "--t-max", "32", "--box"};
  Cli cli(4, argv, {"t-max"}, {"box"});
  EXPECT_DOUBLE_EQ(cli.get_double("t-max", 0.0), 32.0);
  EXPECT_TRUE(cli.has("box"));
}

TEST(CliTest, RejectsBadInput) {
  const char* unknown[] = {"bench", "--bogus"};
  EXPECT_THROW(Cli(2, unknown), std::invalid_argument);
  const char* missing[] = {"bench", "--jobs"};
  EXPECT_THROW(Cli(2, missing), std::invalid_argument);
  const char* positional[] = {"bench", "123"};
  EXPECT_THROW(Cli(2, positional), std::invalid_argument);
  const char* both[] = {"bench", "--paper", "--fast"};
  EXPECT_THROW(Cli(3, both), std::invalid_argument);
}

TEST(CliTest, RejectsValueOnSwitch) {
  const char* argv[] = {"bench", "--paper=1"};
  try {
    Cli cli(2, argv);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("does not take a value"),
              std::string::npos);
  }
}

TEST(CliTest, NumericErrorsNameTheFlagAndValue) {
  const char* bad[] = {"bench", "--trials", "three"};
  try {
    ExperimentConfig config;
    Cli(3, bad).apply_run_scale(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("--trials"), std::string::npos);
    EXPECT_NE(what.find("three"), std::string::npos);
  }

  const char* trailing[] = {"bench", "--seed", "12x"};
  ExperimentConfig config;
  EXPECT_THROW(Cli(3, trailing).apply_run_scale(config),
               std::invalid_argument);

  const char* overflow[] = {"bench", "--seed", "99999999999999999999999999"};
  try {
    Cli(3, overflow).apply_run_scale(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("out of range"),
              std::string::npos);
  }
}

TEST(CliTest, RangeChecksRunScale) {
  ExperimentConfig config;
  const char* zero_jobs[] = {"bench", "--num-jobs", "0"};
  EXPECT_THROW(Cli(3, zero_jobs).apply_run_scale(config),
               std::invalid_argument);
  const char* warmup_too_big[] = {"bench", "--num-jobs", "100", "--warmup",
                                  "100"};
  EXPECT_THROW(Cli(5, warmup_too_big).apply_run_scale(config),
               std::invalid_argument);
  const char* zero_trials[] = {"bench", "--trials", "0"};
  EXPECT_THROW(Cli(3, zero_trials).apply_run_scale(config),
               std::invalid_argument);
  const char* negative_seed[] = {"bench", "--seed", "-1"};
  EXPECT_THROW(Cli(3, negative_seed).apply_run_scale(config),
               std::invalid_argument);
  const char* zero_workers[] = {"bench", "--jobs", "0"};
  EXPECT_THROW(Cli(3, zero_workers).apply_run_scale(config),
               std::invalid_argument);
}

TEST(CliTest, FaultFlagsBuildTheSpec) {
  const char* argv[] = {"bench",        "--fault-spec", "loss=0.1,delay=0.5",
                        "--crash-rate", "0.01",         "--update-loss",
                        "0.2",          "--max-staleness", "2T"};
  Cli cli(9, argv);
  ExperimentConfig config;
  cli.apply_run_scale(config);
  // --fault-spec provides the base; dedicated flags overlay it.
  EXPECT_DOUBLE_EQ(config.fault.update_extra_delay, 0.5);
  EXPECT_DOUBLE_EQ(config.fault.crash_rate, 0.01);
  EXPECT_DOUBLE_EQ(config.fault.update_loss, 0.2);  // overlay wins over 0.1
  EXPECT_DOUBLE_EQ(config.fault.cutoff_value, 2.0);
  EXPECT_TRUE(config.fault.cutoff_in_intervals);
  EXPECT_TRUE(config.fault.any());
}

TEST(CliTest, FaultFlagsRejectBadValues) {
  ExperimentConfig config;
  const char* bad_spec[] = {"bench", "--fault-spec", "bogus=1"};
  EXPECT_THROW(Cli(3, bad_spec).apply_run_scale(config),
               std::invalid_argument);
  const char* bad_loss[] = {"bench", "--update-loss", "1.5"};
  EXPECT_THROW(Cli(3, bad_loss).apply_run_scale(config),
               std::invalid_argument);
  const char* bad_cutoff[] = {"bench", "--max-staleness", "-1"};
  EXPECT_THROW(Cli(3, bad_cutoff).apply_run_scale(config),
               std::invalid_argument);
}

TEST(CliTest, BoardReprFlagParsesAndRejectsBadValues) {
  const char* argv[] = {"bench", "--board-repr", "bucketed"};
  Cli cli(3, argv);
  ExperimentConfig config;
  cli.apply_run_scale(config);
  EXPECT_EQ(config.board_repr, policy::BoardRepr::kBucketed);

  const char* vec[] = {"bench", "--board-repr=vector"};
  ExperimentConfig config2;
  Cli(2, vec).apply_run_scale(config2);
  EXPECT_EQ(config2.board_repr, policy::BoardRepr::kVector);

  const char* bad[] = {"bench", "--board-repr", "linked-list"};
  ExperimentConfig config3;
  EXPECT_THROW(Cli(3, bad).apply_run_scale(config3), std::invalid_argument);
}

TEST(CliTest, BucketedBoardPlusFaultSpecErrorNamesBothFlags) {
  // The conflict is surfaced at the flag layer so the message can tell the
  // user which two flags to untangle (and point at --churn-spec as the
  // health-aware alternative) instead of naming internal config fields.
  const char* argv[] = {"bench", "--board-repr", "bucketed", "--fault-spec",
                        "loss=0.1"};
  try {
    ExperimentConfig config;
    Cli(5, argv).apply_run_scale(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("--board-repr bucketed"), std::string::npos);
    EXPECT_NE(what.find("--fault-spec"), std::string::npos);
    EXPECT_NE(what.find("--churn-spec"), std::string::npos);
  }
  // The overlay fault flags trip the same conflict as the full spec...
  const char* overlay[] = {"bench", "--board-repr", "bucketed",
                           "--update-loss", "0.2"};
  ExperimentConfig config;
  EXPECT_THROW(Cli(5, overlay).apply_run_scale(config),
               std::invalid_argument);
  // ...while either flag alone, or bucketed + churn, is fine.
  config = ExperimentConfig{};  // the throwing run above already set fault
  const char* repr_only[] = {"bench", "--board-repr", "bucketed"};
  EXPECT_NO_THROW(Cli(3, repr_only).apply_run_scale(config));
  config = ExperimentConfig{};
  const char* fault_only[] = {"bench", "--fault-spec", "loss=0.1"};
  EXPECT_NO_THROW(Cli(3, fault_only).apply_run_scale(config));
  config = ExperimentConfig{};
  const char* with_churn[] = {"bench", "--board-repr", "bucketed",
                              "--churn-spec", "restart=30,restartdown=2"};
  EXPECT_NO_THROW(Cli(5, with_churn).apply_run_scale(config));
  EXPECT_TRUE(config.churn.any());
}

TEST(CliTest, ChurnSpecFlagBuildsTheSpecAndExcludesFaults) {
  const char* argv[] = {"bench", "--churn-spec",
                        "leave=0.01,rejoin=2,suspect=2T,evict=4T"};
  Cli cli(3, argv);
  ExperimentConfig config;
  cli.apply_run_scale(config);
  EXPECT_TRUE(config.churn.any());
  EXPECT_DOUBLE_EQ(config.churn.leave_rate, 0.01);
  EXPECT_DOUBLE_EQ(config.churn.rejoin_delay, 2.0);

  const char* bad[] = {"bench", "--churn-spec", "bogus=1"};
  ExperimentConfig config2;
  EXPECT_THROW(Cli(3, bad).apply_run_scale(config2), std::invalid_argument);

  const char* both[] = {"bench", "--churn-spec", "restart=30,restartdown=2",
                        "--fault-spec", "loss=0.1"};
  try {
    ExperimentConfig config3;
    Cli(5, both).apply_run_scale(config3);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("--churn-spec"), std::string::npos);
    EXPECT_NE(what.find("--fault-spec"), std::string::npos);
  }
}

TEST(SweepTest, ProducesOneRowPerXValue) {
  ExperimentConfig base = small_config();
  base.num_jobs = 4'000;
  base.warmup_jobs = 1'000;
  base.trials = 2;
  std::ostringstream os;
  run_t_sweep(base, {1.0, 4.0}, {"random", "basic_li"}, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("T"), std::string::npos);
  EXPECT_NE(text.find("basic_li"), std::string::npos);
  EXPECT_NE(text.find("1.000"), std::string::npos);
  EXPECT_NE(text.find("4.000"), std::string::npos);
  // Header + rule + 2 data rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(SweepTest, BoxStatsCellsContainQuartiles) {
  ExperimentConfig base = small_config();
  base.num_jobs = 4'000;
  base.warmup_jobs = 1'000;
  base.trials = 3;
  std::ostringstream os;
  SweepOptions options;
  options.box_stats = true;
  run_t_sweep(base, {1.0}, {"random"}, os, options);
  EXPECT_NE(os.str().find("["), std::string::npos);
  EXPECT_NE(os.str().find(".."), std::string::npos);
}

TEST(DefaultTGridTest, RespectsCap) {
  const auto grid = default_t_grid(16.0);
  EXPECT_EQ(grid.front(), 0.1);
  EXPECT_EQ(grid.back(), 16.0);
  for (double t : grid) EXPECT_LE(t, 16.0);
  EXPECT_GT(default_t_grid(128.0).size(), grid.size());
}

TEST(UpdateModelNameTest, AllNamesDistinct) {
  EXPECT_EQ(update_model_name(UpdateModel::kPeriodic), "periodic");
  EXPECT_EQ(update_model_name(UpdateModel::kContinuous), "continuous");
  EXPECT_EQ(update_model_name(UpdateModel::kUpdateOnAccess),
            "update_on_access");
  EXPECT_EQ(update_model_name(UpdateModel::kIndividual), "individual");
}

}  // namespace
}  // namespace stale::driver
