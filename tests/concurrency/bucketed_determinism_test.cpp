// Determinism of the bucketed dispatch path under trial parallelism: a
// --board-repr=bucketed run must produce bit-identical per-trial results
// whether trials execute serially or on a worker pool (the same D-rule the
// vector path is held to — each trial derives an independent RNG stream and
// aggregation is by trial index, never completion order). Lives in
// tests/concurrency/ so the TSan CI job race-checks the lazy-advance heap
// and level-index plumbing wholesale.
#include <gtest/gtest.h>

#include "driver/experiment.h"

namespace {

using stale::driver::ExperimentConfig;
using stale::driver::ExperimentResult;
using stale::driver::run_experiment;

ExperimentConfig bucketed_config(const std::string& policy,
                                 stale::driver::UpdateModel model) {
  ExperimentConfig config;
  // Explicit kBucketed engages the counted path at any size; keep n modest so
  // the TSan leg (which runs this suite wholesale, ~10x slower) stays cheap.
  config.num_servers = 1024;
  config.lambda = 0.9;
  config.model = model;
  config.update_interval = 1.0;
  config.policy = policy;
  config.board_repr = stale::policy::BoardRepr::kBucketed;
  config.num_jobs = 8'000;
  config.warmup_jobs = 2'000;
  config.trials = 4;
  return config;
}

void expect_parallel_matches_serial(ExperimentConfig config) {
  config.jobs = 1;
  const ExperimentResult serial = run_experiment(config);
  config.jobs = 4;
  const ExperimentResult parallel = run_experiment(config);
  ASSERT_EQ(serial.trial_means.size(), parallel.trial_means.size());
  for (std::size_t trial = 0; trial < serial.trial_means.size(); ++trial) {
    EXPECT_EQ(serial.trial_means[trial], parallel.trial_means[trial])
        << config.policy << " trial " << trial;
  }
}

TEST(BucketedDeterminismTest, BasicLiPeriodicBitIdenticalAcrossJobs) {
  expect_parallel_matches_serial(
      bucketed_config("basic_li", stale::driver::UpdateModel::kPeriodic));
}

TEST(BucketedDeterminismTest, AggressiveLiIndividualBitIdenticalAcrossJobs) {
  expect_parallel_matches_serial(bucketed_config(
      "aggressive_li", stale::driver::UpdateModel::kIndividual));
}

TEST(BucketedDeterminismTest, HybridLiContinuousBitIdenticalAcrossJobs) {
  expect_parallel_matches_serial(
      bucketed_config("hybrid_li", stale::driver::UpdateModel::kContinuous));
}

}  // namespace
