// Determinism of trace replay under trial parallelism: a replay-driven
// experiment must produce bit-identical results whether trials run serially
// or on a worker pool, and replaying the same trace twice must agree bit for
// bit — the property the record->replay CI gate stands on. The replay
// workload shares one immutable ReplayTrace across worker threads while each
// trial builds its own cursor objects, so TSan checks the sharing wholesale.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "driver/experiment.h"
#include "sim/rng.h"
#include "workload/replay.h"

namespace {

using stale::driver::ExperimentConfig;
using stale::driver::ExperimentResult;
using stale::driver::run_experiment;

// A synthetic recording: Poisson arrivals with exponential service draws,
// the same shape `staleload_lb --record` produces on a loopback run.
std::shared_ptr<const stale::workload::ReplayTrace> synthetic_trace() {
  auto trace = std::make_shared<stale::workload::ReplayTrace>();
  trace->manifest.backends = 4;
  trace->manifest.update_period = 0.5;
  trace->manifest.schedule = "periodic";
  trace->manifest.policy = "basic_li";
  stale::sim::Rng rng(0xBEEFULL);
  double t = 0.0;
  for (int i = 0; i < 4000; ++i) {
    t += -std::log(rng.next_double_open0()) / 8.0;
    const double size = -std::log(rng.next_double_open0()) * 0.05;
    trace->arrivals.push_back({t, size});
  }
  trace->manifest.arrivals = trace->arrivals.size();
  trace->manifest.duration = t;
  return trace;
}

ExperimentConfig replay_config() {
  const auto trace = synthetic_trace();
  ExperimentConfig config;
  config.num_servers = trace->manifest.backends;
  config.lambda = trace->empirical_rate() / trace->manifest.backends;
  config.model = stale::driver::UpdateModel::kIndividual;
  config.update_interval = trace->manifest.update_period;
  config.policy = "basic_li";
  config.num_jobs = trace->arrivals.size();
  config.warmup_jobs = trace->arrivals.size() / 4;
  config.trials = 4;
  config.replay = trace;
  return config;
}

TEST(ReplayDeterminismTest, BitIdenticalAcrossWorkerCounts) {
  ExperimentConfig config = replay_config();
  config.jobs = 1;
  const ExperimentResult serial = run_experiment(config);
  config.jobs = 4;
  const ExperimentResult parallel = run_experiment(config);
  ASSERT_EQ(serial.trial_means.size(), parallel.trial_means.size());
  for (std::size_t trial = 0; trial < serial.trial_means.size(); ++trial) {
    EXPECT_EQ(serial.trial_means[trial], parallel.trial_means[trial])
        << "trial " << trial;
  }
  EXPECT_EQ(serial.trace_wraps, parallel.trace_wraps);
}

TEST(ReplayDeterminismTest, ReplayingTwiceIsBitIdentical) {
  const ExperimentConfig config = replay_config();
  const ExperimentResult first = run_experiment(config);
  const ExperimentResult second = run_experiment(config);
  ASSERT_EQ(first.trial_means.size(), second.trial_means.size());
  for (std::size_t trial = 0; trial < first.trial_means.size(); ++trial) {
    EXPECT_EQ(first.trial_means[trial], second.trial_means[trial])
        << "trial " << trial;
  }
}

TEST(ReplayDeterminismTest, ExactJobCountNeverWraps) {
  // One pass through the recorded arrivals consumes exactly |trace| gaps;
  // any wrap here means record and replay disagree about the job count.
  const ExperimentConfig config = replay_config();
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.trace_wraps, 0u);
}

TEST(ReplayDeterminismTest, OverdrawnReplayWrapsAndReports) {
  ExperimentConfig config = replay_config();
  config.num_jobs = config.replay->arrivals.size() * 2 + 7;
  config.warmup_jobs = config.num_jobs / 4;
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.trace_wraps, 2u);
}

}  // namespace
