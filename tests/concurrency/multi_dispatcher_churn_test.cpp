// Multi-dispatcher runs under membership churn: D dispatchers each earn
// their own liveness view from their own board's report recency while the
// churn injector crashes and restarts servers underneath all of them, and —
// for JIQ — crash/quarantine sweeps retire idle tokens so none dangle.
// The whole tangle must stay bit-identical between serial and pooled trial
// execution, on both board representations. Lives in tests/concurrency/ so
// the TSan CI job race-checks the per-trial confinement of the injector,
// the D membership instances, and the shared-within-a-trial token
// directory. (Token conservation itself is asserted by TokenDirectory::audit
// inside the engine on STALELOAD_AUDIT builds, which run this same suite.)
#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "health/churn_spec.h"

namespace {

using stale::driver::ExperimentConfig;
using stale::driver::ExperimentResult;
using stale::driver::run_experiment;

ExperimentConfig churny_multi_config(const std::string& policy,
                                     stale::policy::BoardRepr repr) {
  ExperimentConfig config;
  config.num_servers = 32;
  config.lambda = 0.85;
  config.model = stale::driver::UpdateModel::kPeriodic;
  config.update_interval = 2.0;
  config.policy = policy;
  config.board_repr = repr;
  config.dispatchers = 3;
  config.num_jobs = 8'000;
  config.warmup_jobs = 2'000;
  config.trials = 4;
  // Rolling restarts reach every server inside the horizon, so each trial
  // exercises crash-time token invalidation and per-dispatcher quarantine.
  config.churn = stale::health::ChurnSpec::parse(
      "restart=60,restartdown=4,leave=0.002,rejoin=2,semantics=requeue,"
      "suspect=2T,evict=4T,probation=2,coverage=0.5,fallback=random");
  return config;
}

void expect_parallel_matches_serial(ExperimentConfig config) {
  config.jobs = 1;
  const ExperimentResult serial = run_experiment(config);
  config.jobs = 4;
  const ExperimentResult parallel = run_experiment(config);
  ASSERT_EQ(serial.trial_means.size(), parallel.trial_means.size());
  for (std::size_t trial = 0; trial < serial.trial_means.size(); ++trial) {
    EXPECT_EQ(serial.trial_means[trial], parallel.trial_means[trial])
        << "trial " << trial;
  }
  EXPECT_EQ(serial.faults, parallel.faults);
  // The run must have actually churned for the equality to mean anything.
  EXPECT_GT(serial.faults.crashes, 0u);
}

TEST(MultiDispatcherChurnTest, JiqVectorBitIdenticalAcrossJobs) {
  expect_parallel_matches_serial(
      churny_multi_config("jiq", stale::policy::BoardRepr::kVector));
}

TEST(MultiDispatcherChurnTest, JiqBucketedBitIdenticalAcrossJobs) {
  expect_parallel_matches_serial(
      churny_multi_config("jiq", stale::policy::BoardRepr::kBucketed));
}

TEST(MultiDispatcherChurnTest, BasicLiBucketedBitIdenticalAcrossJobs) {
  expect_parallel_matches_serial(
      churny_multi_config("basic_li", stale::policy::BoardRepr::kBucketed));
}

}  // namespace
