// The observability contract (ISSUE 4): attaching a trace sink never changes
// a result. Sinks are pure observers — no RNG draws, no simulation-state
// mutation — so for every policy x staleness model the traced run must be
// bit-identical to the untraced one, including under parallel trials where
// each worker thread feeds its own per-trial recorder (this binary runs
// under TSan in CI, so sink hook data races would also be caught here).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "driver/experiment.h"
#include "obs/trace_recorder.h"

namespace stale::driver {
namespace {

::testing::AssertionResult bits_equal(double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ in their bit patterns";
}

using PolicyModelCase = std::pair<std::string, UpdateModel>;

ExperimentConfig traced_case_config(const PolicyModelCase& c) {
  ExperimentConfig config;
  config.model = c.second;
  config.policy = c.first;
  config.num_servers = 8;
  config.lambda = 0.9;
  config.update_interval = 4.0;
  config.num_jobs = 5'000;
  config.warmup_jobs = 1'000;
  config.trials = 6;
  return config;
}

class TraceDeterminismTest
    : public ::testing::TestWithParam<PolicyModelCase> {};

TEST_P(TraceDeterminismTest, TracedRunBitIdenticalToUntraced) {
  ExperimentConfig config = traced_case_config(GetParam());
  config.jobs = 8;  // worker threads; each trial gets its own recorder

  const ExperimentResult untraced = run_experiment(config);

  std::vector<std::unique_ptr<obs::TraceRecorder>> recorders;
  std::mutex recorders_mutex;
  config.trace_sink_for_trial = [&](int) -> obs::TraceSink* {
    const std::lock_guard<std::mutex> lock(recorders_mutex);
    recorders.push_back(std::make_unique<obs::TraceRecorder>());
    return recorders.back().get();
  };
  const ExperimentResult traced = run_experiment(config);

  ASSERT_EQ(untraced.trial_means.size(), traced.trial_means.size());
  for (std::size_t i = 0; i < untraced.trial_means.size(); ++i) {
    EXPECT_TRUE(bits_equal(untraced.trial_means[i], traced.trial_means[i]))
        << "trial " << i;
  }
  EXPECT_TRUE(bits_equal(untraced.mean(), traced.mean()));
  EXPECT_TRUE(bits_equal(untraced.ci90(), traced.ci90()));

  // The sinks actually observed the runs: every trial recorded every
  // dispatch (one kDispatch and one kDecision per job).
  ASSERT_EQ(recorders.size(), static_cast<std::size_t>(config.trials));
  for (const auto& recorder : recorders) {
    EXPECT_EQ(recorder->count(obs::TraceEventKind::kDispatch),
              config.num_jobs);
    EXPECT_EQ(recorder->count(obs::TraceEventKind::kDecision),
              config.num_jobs);
  }
}

std::vector<PolicyModelCase> all_cases() {
  const std::vector<std::string> policies = {
      "random", "k_subset:2", "k_subset:8", "basic_li", "aggressive_li",
      "hybrid_li", "basic_li_k:2"};
  const std::vector<UpdateModel> models = {
      UpdateModel::kPeriodic, UpdateModel::kContinuous,
      UpdateModel::kUpdateOnAccess, UpdateModel::kIndividual};
  std::vector<PolicyModelCase> cases;
  for (const UpdateModel model : models) {
    for (const std::string& policy : policies) {
      cases.push_back({policy, model});
    }
  }
  return cases;
}

std::string case_name(
    const ::testing::TestParamInfo<PolicyModelCase>& info) {
  std::string name =
      info.param.first + "_" + update_model_name(info.param.second);
  for (char& c : name) {
    if (c == ':' || c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllPoliciesAllModels, TraceDeterminismTest,
                         ::testing::ValuesIn(all_cases()), case_name);

// The fault path has its own trace hooks (refresh loss/delay, estimator
// drops, crash/recover) threaded around RNG draws — the riskiest place for
// an accidental perturbation, so it gets its own bit-identity check.
TEST(TraceFaultDeterminismTest, TracedFaultRunBitIdenticalToUntraced) {
  ExperimentConfig config =
      traced_case_config({"basic_li", UpdateModel::kPeriodic});
  config.fault = fault::FaultSpec::parse(
      "crash=0.01,down=2,semantics=requeue,loss=0.2,delay=0.5,estdrop=0.1,"
      "cutoff=2T");
  config.rate_estimator = "ewma:50";
  config.jobs = 8;

  const ExperimentResult untraced = run_experiment(config);

  std::vector<std::unique_ptr<obs::TraceRecorder>> recorders;
  std::mutex recorders_mutex;
  config.trace_sink_for_trial = [&](int) -> obs::TraceSink* {
    const std::lock_guard<std::mutex> lock(recorders_mutex);
    recorders.push_back(std::make_unique<obs::TraceRecorder>());
    return recorders.back().get();
  };
  const ExperimentResult traced = run_experiment(config);

  ASSERT_EQ(untraced.trial_means.size(), traced.trial_means.size());
  for (std::size_t i = 0; i < untraced.trial_means.size(); ++i) {
    EXPECT_TRUE(bits_equal(untraced.trial_means[i], traced.trial_means[i]))
        << "trial " << i;
  }
  EXPECT_EQ(untraced.faults, traced.faults);

  // Fault events made it into the trace.
  std::uint64_t fault_events = 0;
  std::uint64_t downs = 0;
  for (const auto& recorder : recorders) {
    fault_events += recorder->count(obs::TraceEventKind::kRefreshFault);
    downs += recorder->count(obs::TraceEventKind::kServerDown);
  }
  EXPECT_GT(fault_events, 0u);
  EXPECT_GT(downs, 0u);
}

}  // namespace
}  // namespace stale::driver
