// The tentpole guarantee of the runtime layer: running trials (and sweep
// cells) on a thread pool produces results bit-identical to the serial path.
// Each trial owns an independent RNG stream derived from
// sim::trial_seed(base_seed, trial), and aggregation happens by trial index,
// so thread scheduling can never leak into the numbers.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "driver/experiment.h"
#include "driver/sweep.h"

namespace stale::driver {
namespace {

ExperimentConfig small_config(UpdateModel model) {
  ExperimentConfig config;
  config.model = model;
  config.num_servers = 8;
  config.lambda = 0.9;
  config.update_interval = 4.0;
  config.policy = "basic_li";
  config.num_jobs = 6'000;
  config.warmup_jobs = 1'000;
  config.trials = 8;
  return config;
}

// Bitwise double comparison: == would also accept -0.0 vs 0.0 and hides
// nothing, but the guarantee we advertise is bit-identical output.
::testing::AssertionResult bits_equal(double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ in their bit patterns";
}

class ParallelDeterminismTest : public ::testing::TestWithParam<UpdateModel> {};

TEST_P(ParallelDeterminismTest, ParallelTrialsBitIdenticalToSerial) {
  ExperimentConfig config = small_config(GetParam());

  config.jobs = 1;
  const ExperimentResult serial = run_experiment(config);
  config.jobs = 8;
  const ExperimentResult parallel = run_experiment(config);

  ASSERT_EQ(serial.trial_means.size(), parallel.trial_means.size());
  for (std::size_t i = 0; i < serial.trial_means.size(); ++i) {
    EXPECT_TRUE(bits_equal(serial.trial_means[i], parallel.trial_means[i]))
        << "trial " << i;
  }
  EXPECT_TRUE(bits_equal(serial.mean(), parallel.mean()));
  EXPECT_TRUE(bits_equal(serial.ci90(), parallel.ci90()));
}

INSTANTIATE_TEST_SUITE_P(
    AllUpdateModels, ParallelDeterminismTest,
    ::testing::Values(UpdateModel::kPeriodic, UpdateModel::kContinuous,
                      UpdateModel::kUpdateOnAccess, UpdateModel::kIndividual),
    [](const ::testing::TestParamInfo<UpdateModel>& info) {
      return update_model_name(info.param);
    });

// Fault-injected runs make the same guarantee: the injector's streams are
// split off the trial's engine, so crash schedules, update losses, and the
// resulting counters are a function of (seed, spec) alone, not of thread
// scheduling.
class FaultDeterminismTest : public ::testing::TestWithParam<UpdateModel> {};

TEST_P(FaultDeterminismTest, FaultTrialsBitIdenticalToSerial) {
  ExperimentConfig config = small_config(GetParam());
  config.fault = fault::FaultSpec::parse(
      "crash=0.01,down=2,semantics=requeue,loss=0.2,delay=0.5,estdrop=0.1,"
      "cutoff=2T");
  config.rate_estimator = "ewma:50";

  config.jobs = 1;
  const ExperimentResult serial = run_experiment(config);
  config.jobs = 8;
  const ExperimentResult parallel = run_experiment(config);

  ASSERT_EQ(serial.trial_means.size(), parallel.trial_means.size());
  for (std::size_t i = 0; i < serial.trial_means.size(); ++i) {
    EXPECT_TRUE(bits_equal(serial.trial_means[i], parallel.trial_means[i]))
        << "trial " << i;
  }
  EXPECT_TRUE(bits_equal(serial.mean(), parallel.mean()));
  EXPECT_TRUE(bits_equal(serial.ci90(), parallel.ci90()));
  EXPECT_EQ(serial.faults, parallel.faults);  // counters, not just means
  EXPECT_GT(serial.faults.crashes, 0u);       // the spec actually fired
  EXPECT_GT(serial.faults.updates_lost, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    BoardModels, FaultDeterminismTest,
    ::testing::Values(UpdateModel::kPeriodic, UpdateModel::kContinuous,
                      UpdateModel::kIndividual),
    [](const ::testing::TestParamInfo<UpdateModel>& info) {
      return update_model_name(info.param);
    });

TEST(ParallelSweepTest, ParallelCellsPrintIdenticalTables) {
  ExperimentConfig base = small_config(UpdateModel::kPeriodic);
  base.num_jobs = 3'000;
  base.warmup_jobs = 500;
  base.trials = 3;

  SweepOptions serial_options;
  serial_options.jobs = 1;
  std::ostringstream serial_os;
  run_t_sweep(base, {0.5, 4.0, 32.0}, {"random", "basic_li", "k_subset:2"},
              serial_os, serial_options);

  SweepOptions parallel_options;
  parallel_options.jobs = 8;
  std::ostringstream parallel_os;
  run_t_sweep(base, {0.5, 4.0, 32.0}, {"random", "basic_li", "k_subset:2"},
              parallel_os, parallel_options);

  EXPECT_EQ(serial_os.str(), parallel_os.str());
}

TEST(ParallelSweepTest, SweepInheritsJobsFromBaseConfig) {
  ExperimentConfig base = small_config(UpdateModel::kPeriodic);
  base.num_jobs = 2'000;
  base.warmup_jobs = 500;
  base.trials = 2;
  base.jobs = 4;  // what cli.apply_run_scale() sets from --jobs / STALE_JOBS

  std::ostringstream parallel_os;
  run_t_sweep(base, {1.0, 8.0}, {"random", "basic_li"}, parallel_os, {});

  base.jobs = 1;
  std::ostringstream serial_os;
  run_t_sweep(base, {1.0, 8.0}, {"random", "basic_li"}, serial_os, {});

  EXPECT_EQ(parallel_os.str(), serial_os.str());
}

}  // namespace
}  // namespace stale::driver
