// Determinism of the multi-dispatcher engine under trial parallelism: a
// D-dispatcher run (per-dispatcher boards, RNG streams, and — for JIQ — the
// shared token directory) must produce bit-identical per-trial results
// whether trials execute serially or on a worker pool, on both board
// representations. Lives in tests/concurrency/ so the TSan CI job
// race-checks the DispatcherSet, ArrivalSplitter, and TokenDirectory
// plumbing wholesale (each trial owns its own instances; the suite proves
// the pool introduces no sharing).
#include <gtest/gtest.h>

#include "driver/experiment.h"

namespace {

using stale::driver::ExperimentConfig;
using stale::driver::ExperimentResult;
using stale::driver::run_experiment;

ExperimentConfig multi_config(const std::string& policy,
                              stale::policy::BoardRepr repr) {
  ExperimentConfig config;
  config.num_servers = 32;
  config.lambda = 0.85;
  config.model = stale::driver::UpdateModel::kPeriodic;
  config.update_interval = 2.0;
  config.policy = policy;
  config.board_repr = repr;
  config.dispatchers = 4;
  config.num_jobs = 8'000;
  config.warmup_jobs = 2'000;
  config.trials = 4;
  return config;
}

void expect_parallel_matches_serial(ExperimentConfig config) {
  config.jobs = 1;
  const ExperimentResult serial = run_experiment(config);
  config.jobs = 4;
  const ExperimentResult parallel = run_experiment(config);
  ASSERT_EQ(serial.trial_means.size(), parallel.trial_means.size());
  for (std::size_t trial = 0; trial < serial.trial_means.size(); ++trial) {
    EXPECT_EQ(serial.trial_means[trial], parallel.trial_means[trial])
        << "trial " << trial;
  }
  EXPECT_EQ(serial.faults, parallel.faults);
}

TEST(MultiDispatcherDeterminismTest, BasicLiVectorBitIdenticalAcrossJobs) {
  expect_parallel_matches_serial(
      multi_config("basic_li", stale::policy::BoardRepr::kVector));
}

TEST(MultiDispatcherDeterminismTest, BasicLiBucketedBitIdenticalAcrossJobs) {
  expect_parallel_matches_serial(
      multi_config("basic_li", stale::policy::BoardRepr::kBucketed));
}

TEST(MultiDispatcherDeterminismTest, JiqVectorBitIdenticalAcrossJobs) {
  expect_parallel_matches_serial(
      multi_config("jiq", stale::policy::BoardRepr::kVector));
}

TEST(MultiDispatcherDeterminismTest, JiqBucketedBitIdenticalAcrossJobs) {
  expect_parallel_matches_serial(
      multi_config("jiq:sq:2", stale::policy::BoardRepr::kBucketed));
}

TEST(MultiDispatcherDeterminismTest,
     IndividualModelWeightedSplitBitIdenticalAcrossJobs) {
  ExperimentConfig config =
      multi_config("jiq", stale::policy::BoardRepr::kVector);
  config.model = stale::driver::UpdateModel::kIndividual;
  config.dispatcher_split = stale::dispatch::DispatcherSplit::kWeighted;
  expect_parallel_matches_serial(config);
}

}  // namespace
