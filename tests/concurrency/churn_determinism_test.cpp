// Determinism of the churn trial path under trial parallelism: a run with
// membership churn (rolling restarts + Poisson leave/rejoin feeding the
// health state machine) must produce bit-identical per-trial results and
// fault counters whether trials execute serially or on a worker pool, on
// both board representations. Lives in tests/concurrency/ so the TSan CI
// job race-checks the churn injector, Membership, and the level-index
// retirement plumbing wholesale.
#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "health/churn_spec.h"

namespace {

using stale::driver::ExperimentConfig;
using stale::driver::ExperimentResult;
using stale::driver::run_experiment;

ExperimentConfig churn_config(stale::driver::UpdateModel model,
                              stale::policy::BoardRepr repr) {
  ExperimentConfig config;
  config.num_servers = 32;
  config.lambda = 0.85;
  config.model = model;
  config.update_interval = 2.0;
  config.policy = "basic_li";
  config.board_repr = repr;
  config.num_jobs = 8'000;
  config.warmup_jobs = 2'000;
  config.trials = 4;
  // Restarts roll through all 32 servers inside each trial's horizon, the
  // leave process keeps transitions unscheduled, and the coverage threshold
  // exercises degraded-mode flips under parallel trials.
  config.churn = stale::health::ChurnSpec::parse(
      "restart=60,restartdown=4,leave=0.002,rejoin=2,semantics=requeue,"
      "suspect=2T,evict=4T,probation=2,coverage=0.5,fallback=random");
  return config;
}

void expect_parallel_matches_serial(ExperimentConfig config) {
  config.jobs = 1;
  const ExperimentResult serial = run_experiment(config);
  config.jobs = 4;
  const ExperimentResult parallel = run_experiment(config);
  ASSERT_EQ(serial.trial_means.size(), parallel.trial_means.size());
  for (std::size_t trial = 0; trial < serial.trial_means.size(); ++trial) {
    EXPECT_EQ(serial.trial_means[trial], parallel.trial_means[trial])
        << "trial " << trial;
  }
  // The injected churn and the health subsystem's reactions must replay
  // identically too — FaultStats equality is member-wise.
  EXPECT_EQ(serial.faults, parallel.faults);
  EXPECT_GT(serial.faults.crashes, 0u);
}

TEST(ChurnDeterminismTest, PeriodicVectorBitIdenticalAcrossJobs) {
  expect_parallel_matches_serial(
      churn_config(stale::driver::UpdateModel::kPeriodic,
                   stale::policy::BoardRepr::kVector));
}

TEST(ChurnDeterminismTest, PeriodicBucketedBitIdenticalAcrossJobs) {
  expect_parallel_matches_serial(
      churn_config(stale::driver::UpdateModel::kPeriodic,
                   stale::policy::BoardRepr::kBucketed));
}

TEST(ChurnDeterminismTest, IndividualBucketedBitIdenticalAcrossJobs) {
  expect_parallel_matches_serial(
      churn_config(stale::driver::UpdateModel::kIndividual,
                   stale::policy::BoardRepr::kBucketed));
}

}  // namespace
