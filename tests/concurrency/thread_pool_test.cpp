#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <vector>

namespace stale::runtime {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }  // destructor drains the queue and joins
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
}

TEST(ParallelForEachTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> visits(kCount);
  parallel_for_each(pool, kCount,
                    [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForEachTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  parallel_for_each(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForEachTest, SingleItemRunsInline) {
  ThreadPool pool(4);
  bool on_worker = true;
  parallel_for_each(pool, 1, [&](std::size_t) {
    on_worker = ThreadPool::on_worker_thread();
  });
  EXPECT_FALSE(on_worker);  // count == 1 short-circuits to the caller
}

TEST(ParallelForEachTest, PropagatesTheFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for_each(pool, 100,
                        [](std::size_t i) {
                          if (i == 17) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must remain usable after an exceptional loop.
  std::atomic<int> count{0};
  parallel_for_each(pool, 10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelForEachTest, ExceptionAbandonsRemainingItems) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  try {
    parallel_for_each(pool, 100'000, [&](std::size_t) {
      ran.fetch_add(1);
      throw std::runtime_error("every item fails");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  // After the first failure the remaining indices are skipped; far fewer
  // than all 100k items can have started.
  EXPECT_LT(ran.load(), 1000);
}

TEST(ParallelForEachTest, NestedCallsRunInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> inner(16);
  std::atomic<int> outer{0};
  parallel_for_each(pool, 4, [&](std::size_t) {
    outer.fetch_add(1);
    // Nested loop on the same pool: must run inline on this worker rather
    // than blocking on the shared queue (classic self-deadlock).
    parallel_for_each(pool, 4, [&](std::size_t j) { inner[j].fetch_add(1); });
  });
  EXPECT_EQ(outer.load(), 4);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(inner[j].load(), 4);
}

TEST(ParallelForEachTest, NestedSubmitIsSafe) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    pool.submit([&] {
      for (int i = 0; i < 8; ++i) {
        pool.submit([&count] { count.fetch_add(1); });
      }
    });
  }
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, DefaultJobsHonorsStaleJobsEnv) {
  ::setenv("STALE_JOBS", "3", 1);
  EXPECT_EQ(ThreadPool::default_jobs(), 3);
  ::setenv("STALE_JOBS", "garbage", 1);
  EXPECT_GE(ThreadPool::default_jobs(), 1);  // falls back to hardware
  ::unsetenv("STALE_JOBS");
  EXPECT_GE(ThreadPool::default_jobs(), 1);
}

TEST(ResolveJobsTest, PositivePassesThroughNonPositiveMeansAuto) {
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(7), 7);
  ::setenv("STALE_JOBS", "5", 1);
  EXPECT_EQ(resolve_jobs(0), 5);
  EXPECT_EQ(resolve_jobs(-1), 5);
  ::unsetenv("STALE_JOBS");
}

}  // namespace
}  // namespace stale::runtime
