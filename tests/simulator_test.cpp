#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <functional>
#include <vector>

namespace stale::sim {
namespace {

TEST(SimulatorTest, FiresEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(3.0, [&](Simulator&) { fired.push_back(3); });
  sim.schedule_at(1.0, [&](Simulator&) { fired.push_back(1); });
  sim.schedule_at(2.0, [&](Simulator&) { fired.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, TiesFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&fired, i](Simulator&) { fired.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double inner_fire_time = -1.0;
  sim.schedule_at(2.0, [&](Simulator& s) {
    s.schedule_after(3.0, [&](Simulator& s2) { inner_fire_time = s2.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(inner_fire_time, 5.0);
}

TEST(SimulatorTest, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const EventHandle handle =
      sim.schedule_at(1.0, [&](Simulator&) { fired = true; });
  EXPECT_TRUE(sim.cancel(handle));
  EXPECT_FALSE(sim.cancel(handle));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelFromInsideEvent) {
  Simulator sim;
  bool second_fired = false;
  const EventHandle second =
      sim.schedule_at(2.0, [&](Simulator&) { second_fired = true; });
  sim.schedule_at(1.0, [&](Simulator& s) { s.cancel(second); });
  sim.run();
  EXPECT_FALSE(second_fired);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&fired](Simulator& s) { fired.push_back(s.now()); });
  }
  EXPECT_EQ(sim.run_until(2.5), 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.pending(), 2u);
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SimulatorTest, EventAtExactRunUntilBoundaryFires) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(2.0, [&](Simulator&) { fired = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, StepFiresExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&](Simulator&) { ++count; });
  sim.schedule_at(2.0, [&](Simulator&) { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.schedule_at(5.0, [](Simulator&) {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [](Simulator&) {}),
               std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1.0, [](Simulator&) {}),
               std::invalid_argument);
}

TEST(SimulatorTest, MassCancellationCompactsAndPreservesOrder) {
  // Cancel-heavy stress: interleave thousands of schedules with cancels of
  // every other event, exercising slot reuse, generation checks, and the
  // stale-entry heap compaction. Survivors must still fire in time order.
  Simulator sim;
  std::vector<double> fired;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 4'000; ++i) {
    const double when = static_cast<double>((i * 7919) % 4'000) + 0.5;
    handles.push_back(
        sim.schedule_at(when, [&](Simulator& s) { fired.push_back(s.now()); }));
  }
  int cancelled = 0;
  for (std::size_t i = 0; i < handles.size(); i += 2) {
    cancelled += sim.cancel(handles[i]) ? 1 : 0;
  }
  EXPECT_EQ(cancelled, 2'000);
  EXPECT_EQ(sim.pending(), 2'000u);
  EXPECT_EQ(sim.run(), 2'000u);
  EXPECT_EQ(fired.size(), 2'000u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  // Every cancelled handle stays dead, even after its slot was recycled.
  for (std::size_t i = 0; i < handles.size(); i += 2) {
    EXPECT_FALSE(sim.cancel(handles[i]));
  }
}

TEST(SimulatorTest, LargeCapturesFallBackToTheHeap) {
  // Closures beyond EventCallback's inline buffer must still work (the
  // wrapper heap-allocates them transparently).
  Simulator sim;
  std::array<double, 32> payload{};
  payload[31] = 42.0;
  double seen = 0.0;
  sim.schedule_at(1.0, [payload, &seen](Simulator&) { seen = payload[31]; });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 42.0);
}

TEST(SimulatorTest, EventsCanScheduleChains) {
  // A self-perpetuating event chain: each event schedules the next until a
  // counter runs out — the standard arrival-process pattern.
  Simulator sim;
  int remaining = 100;
  std::function<void(Simulator&)> tick = [&](Simulator& s) {
    if (--remaining > 0) s.schedule_after(0.5, tick);
  };
  sim.schedule_at(0.0, tick);
  EXPECT_EQ(sim.run(), 100u);
  EXPECT_DOUBLE_EQ(sim.now(), 49.5);
}

}  // namespace
}  // namespace stale::sim
