// The obs layer's recorder, probes, and exporters, over both hand-built
// event sequences (exact expectations) and a real traced trial (structural
// invariants: every arrival leaves a dispatch and a decision, queue algebra
// balances).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "driver/trace_support.h"
#include "obs/chrome_trace.h"
#include "obs/export_csv.h"
#include "obs/herd.h"
#include "obs/probe.h"
#include "obs/svg_timeline.h"
#include "obs/trace_import.h"
#include "obs/trace_recorder.h"

namespace stale::obs {
namespace {

// Two servers: server 0 gets jobs at t=1 and t=2, departs one at t=3;
// server 1 gets one job at t=1.5.
TraceRecorder tiny_trace() {
  TraceRecorder recorder;
  recorder.on_dispatch(1.0, 0, 1.0, 1, 2.0);
  recorder.on_decision(1.0, 0, 0.25);
  recorder.on_dispatch(1.5, 1, 1.0, 1, 2.5);
  recorder.on_decision(1.5, 1, 0.75);
  recorder.on_dispatch(2.0, 0, 1.0, 2, 3.0);
  recorder.on_decision(2.0, 0, 0.5);
  recorder.on_departure(3.0, 0, 1);
  return recorder;
}

TEST(TraceRecorderTest, CountsAndEndTime) {
  const TraceRecorder recorder = tiny_trace();
  EXPECT_EQ(recorder.count(TraceEventKind::kDispatch), 3u);
  EXPECT_EQ(recorder.count(TraceEventKind::kDeparture), 1u);
  EXPECT_EQ(recorder.count(TraceEventKind::kDecision), 3u);
  EXPECT_EQ(recorder.num_servers_seen(), 2);
  EXPECT_DOUBLE_EQ(recorder.end_time(), 3.0);
}

TEST(TraceRecorderTest, EventsByTimeIsStablySorted) {
  TraceRecorder recorder;
  // Cluster sweep order: server 1's late event is pushed before server 0's
  // earlier one.
  recorder.on_departure(5.0, 1, 0);
  recorder.on_departure(2.0, 0, 0);
  recorder.on_departure(2.0, 1, 3);  // same time: emission order preserved
  const std::vector<TraceEvent> sorted = recorder.events_by_time();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_DOUBLE_EQ(sorted[0].time, 2.0);
  EXPECT_EQ(sorted[0].server, 0);
  EXPECT_EQ(sorted[1].server, 1);
  EXPECT_DOUBLE_EQ(sorted[2].time, 5.0);
}

TEST(TraceRecorderTest, SnapshotAndProbabilityStorageFollowOptions) {
  const std::vector<int> loads = {3, 1, 4};
  const std::vector<double> p = {0.2, 0.5, 0.3};

  TraceRecorder full;
  full.on_board_refresh(2.0, 1.0, 7, loads);
  full.on_probabilities(p);
  full.on_decision(2.5, 1, 1.5);
  ASSERT_EQ(full.refreshes().size(), 1u);
  EXPECT_EQ(full.refreshes()[0].loads, loads);
  EXPECT_DOUBLE_EQ(full.refreshes()[0].measured, 1.0);
  ASSERT_EQ(full.probability_vectors().size(), 1u);
  EXPECT_EQ(full.probability_vectors()[0], p);
  EXPECT_EQ(full.probability_builds(), 1u);
  // The decision references the last-built vector.
  EXPECT_EQ(full.events().back().c, 0);

  RecorderOptions lean_options;
  lean_options.record_probabilities = false;
  lean_options.record_snapshots = false;
  TraceRecorder lean(lean_options);
  lean.on_board_refresh(2.0, 1.0, 7, loads);
  lean.on_probabilities(p);
  EXPECT_TRUE(lean.refreshes().empty());
  EXPECT_TRUE(lean.probability_vectors().empty());
  EXPECT_EQ(lean.probability_builds(), 1u);  // still tallied
  EXPECT_EQ(lean.count(TraceEventKind::kBoardRefresh), 1u);
}

TEST(TraceRecorderTest, LargeClustersStoreLevelCountsNotVectors) {
  RecorderOptions options;
  options.full_vector_limit = 4;  // force the large-n path with tiny inputs
  TraceRecorder recorder(options);

  const std::vector<int> small = {1, 0, 1};
  recorder.on_board_refresh(1.0, 0.5, 1, small);
  const std::vector<int> large = {0, 2, 0, 2, 2, 5};
  recorder.on_board_refresh(2.0, 1.5, 2, large);

  ASSERT_EQ(recorder.refreshes().size(), 2u);
  // At or below the limit: full vector, no counts.
  EXPECT_EQ(recorder.refreshes()[0].loads, small);
  EXPECT_TRUE(recorder.refreshes()[0].level_counts.empty());
  // Above the limit: O(#levels) counts, no O(n) vector.
  EXPECT_TRUE(recorder.refreshes()[1].loads.empty());
  const std::vector<std::int64_t> expected_counts = {2, 0, 3, 0, 0, 1};
  EXPECT_EQ(recorder.refreshes()[1].level_counts, expected_counts);

  // refresh_level_counts reads both representations identically.
  const std::vector<std::int64_t> small_counts = {1, 2};
  EXPECT_EQ(refresh_level_counts(recorder.refreshes()[0]), small_counts);
  EXPECT_EQ(refresh_level_counts(recorder.refreshes()[1]), expected_counts);

  // Probability vectors above the limit are counted but never copied, and
  // decisions then reference no vector.
  const std::vector<double> big_p = {0.2, 0.2, 0.2, 0.2, 0.1, 0.1};
  recorder.on_probabilities(big_p);
  recorder.on_decision(2.5, 1, 0.5);
  EXPECT_TRUE(recorder.probability_vectors().empty());
  EXPECT_EQ(recorder.probability_builds(), 1u);
  EXPECT_EQ(recorder.events().back().c, -1);
}

TEST(ProbeTest, QueueTrajectoryReplaysStepFunctions) {
  const TraceRecorder recorder = tiny_trace();
  const QueueTrajectory trajectory =
      sample_queue_trajectory(recorder, 1.0, 0.0, 4.0);
  ASSERT_EQ(trajectory.num_servers, 2);
  ASSERT_EQ(trajectory.samples.size(), 5u);  // t = 0,1,2,3,4
  // t=0: empty. t=1: server 0 has 1. t=2: server0=2, server1=1.
  // t=3: server 0's departure retired -> 1. t=4: unchanged.
  const std::vector<std::vector<int>> expected = {
      {0, 0}, {1, 0}, {2, 1}, {1, 1}, {1, 1}};
  EXPECT_EQ(trajectory.samples, expected);
  EXPECT_DOUBLE_EQ(trajectory.time_at(3), 3.0);
}

TEST(ProbeTest, TrajectoryRejectsBadArguments) {
  const TraceRecorder recorder = tiny_trace();
  EXPECT_THROW(sample_queue_trajectory(recorder, 0.0, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(sample_queue_trajectory(recorder, 1.0, 2.0, 1.0),
               std::invalid_argument);
}

TEST(ProbeTest, CrashZeroesTheTrajectory) {
  TraceRecorder recorder;
  recorder.on_dispatch(1.0, 0, 1.0, 1, 9.0);
  recorder.on_dispatch(1.2, 0, 1.0, 2, 10.0);
  recorder.on_server_down(2.0, 0, 2);
  const QueueTrajectory trajectory =
      sample_queue_trajectory(recorder, 1.0, 0.0, 3.0);
  const std::vector<std::vector<int>> expected = {{0}, {1}, {0}, {0}};
  EXPECT_EQ(trajectory.samples, expected);
}

TEST(ProbeTest, DispatchShareCountsDecisionsInWindow) {
  const TraceRecorder recorder = tiny_trace();
  const DispatchShare share = compute_dispatch_share(recorder, 0.0, 10.0);
  EXPECT_EQ(share.total, 3u);
  ASSERT_EQ(share.counts.size(), 2u);
  EXPECT_EQ(share.counts[0], 2u);
  EXPECT_EQ(share.counts[1], 1u);
  EXPECT_EQ(share.top_server(), 0);
  EXPECT_NEAR(share.top_share(), 2.0 / 3.0, 1e-12);

  // Window slicing: only the t=1.5 decision.
  const DispatchShare sliced = compute_dispatch_share(recorder, 1.25, 1.75);
  EXPECT_EQ(sliced.total, 1u);
  EXPECT_EQ(sliced.top_server(), 1);
}

TEST(ProbeTest, PhaseConcentrationUsesRefreshBoundaries) {
  TraceRecorder recorder;
  // Phase 1 [0, 10): all 10 decisions on server 0. Refresh at t=10.
  for (int i = 0; i < 10; ++i) {
    recorder.on_decision(0.5 + i, 0, 0.0);
  }
  const std::vector<int> loads = {0, 0};
  recorder.on_board_refresh(10.0, 10.0, 2, loads);
  // Phase 2 [10, 20): decisions alternate.
  for (int i = 0; i < 10; ++i) {
    recorder.on_decision(10.5 + i, i % 2, 0.0);
  }
  const PhaseConcentration concentration =
      compute_phase_concentration(recorder, 0.0, 20.0, 10.0, 2);
  EXPECT_EQ(concentration.phases, 2);
  EXPECT_DOUBLE_EQ(concentration.peak, 1.0);
  EXPECT_NEAR(concentration.mean, (1.0 * 10 + 0.5 * 10) / 20.0, 1e-12);
  EXPECT_DOUBLE_EQ(concentration.uniform_share, 0.5);
}

TEST(HerdTest, DominantPeriodFindsASquareWaveAndIgnoresConstant) {
  QueueTrajectory wave;
  wave.interval = 1.0;
  wave.num_servers = 1;
  // Period-8 square wave, 16 cycles.
  for (int k = 0; k < 128; ++k) {
    wave.samples.push_back({(k / 4) % 2 == 0 ? 10 : 0});
  }
  const auto [period, peak] = dominant_period(wave);
  EXPECT_NEAR(period, 8.0, 1.01);
  EXPECT_GT(peak, 0.5);

  QueueTrajectory flat;
  flat.interval = 1.0;
  flat.num_servers = 1;
  for (int k = 0; k < 128; ++k) flat.samples.push_back({5});
  const auto [no_period, no_peak] = dominant_period(flat);
  EXPECT_DOUBLE_EQ(no_period, 0.0);
  EXPECT_DOUBLE_EQ(no_peak, 0.0);
}

TEST(ExportCsvTest, EventsAndTrajectoryRoundTripThroughText) {
  const TraceRecorder recorder = tiny_trace();
  std::ostringstream events;
  write_events_csv(events, recorder);
  const std::string text = events.str();
  EXPECT_NE(text.find("time,kind,server,a,b,c"), std::string::npos);
  EXPECT_NE(text.find("dispatch"), std::string::npos);
  EXPECT_NE(text.find("departure"), std::string::npos);
  // 7 events + header = 8 lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 8);

  std::ostringstream grid;
  write_trajectory_csv(grid, sample_queue_trajectory(recorder, 1.0, 0.0, 4.0));
  const std::string grid_text = grid.str();
  EXPECT_NE(grid_text.find("time,server0,server1"), std::string::npos);
  EXPECT_NE(grid_text.find("2,2,1"), std::string::npos);
}

TEST(TraceImportTest, ExportedCsvReplaysIntoAnEquivalentRecorder) {
  TraceRecorder original = tiny_trace();
  const std::vector<int> loads = {2, 1};
  original.on_board_refresh(2.25, 1.75, 7, loads);
  original.on_refresh_fault(2.5, FaultTraceEvent::kRefreshLost, 1);

  std::ostringstream csv;
  write_events_csv(csv, original);
  std::istringstream in(csv.str());
  TraceRecorder imported;
  const ImportStats stats = import_events_csv(in, imported);
  EXPECT_EQ(stats.rows, static_cast<int>(original.events().size()));
  EXPECT_EQ(stats.imported, stats.rows);
  EXPECT_EQ(stats.malformed, 0);

  // Everything the probes and herd detector read survives the round trip
  // (board snapshots/version intentionally do not; see trace_import.h).
  const std::vector<TraceEvent> want = original.events_by_time();
  const std::vector<TraceEvent> got = imported.events_by_time();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].kind, want[i].kind) << "event " << i;
    EXPECT_DOUBLE_EQ(got[i].time, want[i].time) << "event " << i;
    EXPECT_EQ(got[i].server, want[i].server) << "event " << i;
    EXPECT_DOUBLE_EQ(got[i].a, want[i].a) << "event " << i;
    EXPECT_DOUBLE_EQ(got[i].b, want[i].b) << "event " << i;
    if (want[i].kind != TraceEventKind::kBoardRefresh &&
        want[i].kind != TraceEventKind::kDecision) {
      EXPECT_EQ(got[i].c, want[i].c) << "event " << i;
    }
  }
  EXPECT_EQ(imported.num_servers_seen(), original.num_servers_seen());
  EXPECT_DOUBLE_EQ(imported.end_time(), original.end_time());
}

TEST(TraceImportTest, SkipsMalformedRowsWithoutThrowing) {
  std::istringstream in(
      "time,kind,server,a,b,c\n"
      "1.5,dispatch,0,1,2.5,1\n"
      "not-a-number,dispatch,0,1,2.5,1\n"
      "2.0,no_such_kind,0,0,0,0\n"
      "2.5,departure,0,0,0\n"  // five fields
      "3.0,departure,0,0,0,0\n");
  TraceRecorder recorder;
  const ImportStats stats = import_events_csv(in, recorder);
  EXPECT_EQ(stats.rows, 5);
  EXPECT_EQ(stats.imported, 2);
  EXPECT_EQ(stats.malformed, 3);
  EXPECT_EQ(recorder.count(TraceEventKind::kDispatch), 1u);
  EXPECT_EQ(recorder.count(TraceEventKind::kDeparture), 1u);
}

TEST(ChromeTraceTest, EmitsLoadableJsonWithSpansAndCounters) {
  const TraceRecorder recorder = tiny_trace();
  std::ostringstream out;
  write_chrome_trace(out, recorder);
  const std::string json = out.str();
  EXPECT_EQ(json.find("{\"displayTimeUnit\""), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);   // job spans
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);   // counters
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);   // thread names
  EXPECT_NE(json.find("\"name\":\"server 1\""), std::string::npos);
  // 1 sim time unit = 1e6 trace us.
  EXPECT_NE(json.find("\"ts\":1e+06"), std::string::npos);
  // Balanced braces is a cheap well-formedness proxy.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(SvgTimelineTest, RendersOneSeriesPerServer) {
  const TraceRecorder recorder = tiny_trace();
  const std::string svg = render_queue_timeline(
      sample_queue_trajectory(recorder, 0.5, 0.0, 4.0));
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("server 0"), std::string::npos);
  EXPECT_NE(svg.find("server 1"), std::string::npos);

  EXPECT_THROW(render_queue_timeline(QueueTrajectory{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace stale::obs

namespace stale::driver {
namespace {

// A real traced trial satisfies the cross-layer accounting identities.
TEST(TraceSupportTest, TracedTrialEventAccountingBalances) {
  ExperimentConfig config;
  config.num_servers = 4;
  config.lambda = 0.7;
  config.model = UpdateModel::kPeriodic;
  config.update_interval = 2.0;
  config.policy = "basic_li";
  config.num_jobs = 4000;
  config.warmup_jobs = 1000;

  const TraceReport report = run_traced_trial(config, 1234);
  const obs::TraceRecorder& rec = report.recorder;

  // Every arrival produced exactly one decision and one dispatch.
  EXPECT_EQ(rec.count(obs::TraceEventKind::kDispatch), config.num_jobs);
  EXPECT_EQ(rec.count(obs::TraceEventKind::kDecision), config.num_jobs);
  // Departures never exceed dispatches.
  EXPECT_LE(rec.count(obs::TraceEventKind::kDeparture),
            rec.count(obs::TraceEventKind::kDispatch));
  // The periodic board refreshed roughly end_time / T times.
  const auto refreshes = rec.count(obs::TraceEventKind::kBoardRefresh);
  EXPECT_GT(refreshes, 0u);
  EXPECT_LE(static_cast<double>(refreshes),
            rec.end_time() / config.update_interval + 1.0);
  // basic_li rebuilds its probability vector once per phase, not per job.
  EXPECT_LE(rec.probability_builds(), refreshes + 1);
  EXPECT_EQ(rec.num_servers_seen(), config.num_servers);
  // The analysis artifacts cover the post-warmup window.
  EXPECT_GT(report.t_end, report.t_begin);
  EXPECT_FALSE(report.trajectory.samples.empty());
  EXPECT_EQ(report.share.total,
            rec.count(obs::TraceEventKind::kDecision) -
                obs::compute_dispatch_share(rec, 0.0, report.t_begin).total);

  // The summary printer mentions the key figures.
  std::ostringstream out;
  print_trace_summary(out, config, report);
  EXPECT_NE(out.str().find("herd"), std::string::npos);
  EXPECT_NE(out.str().find("decisions"), std::string::npos);
}

// The trial result is identical with and without the recorder: quick inline
// check here; the exhaustive policy x model sweep lives in
// tests/concurrency/trace_determinism_test.cpp.
TEST(TraceSupportTest, TracedTrialMatchesUntracedResult) {
  ExperimentConfig config;
  config.num_servers = 3;
  config.lambda = 0.8;
  config.model = UpdateModel::kContinuous;
  config.update_interval = 1.0;
  config.policy = "aggressive_li";
  config.num_jobs = 3000;
  config.warmup_jobs = 500;

  const TrialResult plain = run_trial(config, 42);
  const TraceReport traced = run_traced_trial(config, 42);
  EXPECT_EQ(traced.trial.mean_response, plain.mean_response);
  EXPECT_EQ(traced.trial.measured_jobs, plain.measured_jobs);
  EXPECT_EQ(traced.trial.sim_end_time, plain.sim_end_time);
}

}  // namespace
}  // namespace stale::driver
