// Tests for the health subsystem: ChurnSpec parsing (mirrors the FaultSpec
// suite), the Membership liveness state machine, the deterministic
// ChurnInjector, level-index retirement, and the churn trial path end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "health/churn_injector.h"
#include "health/churn_spec.h"
#include "health/health_config.h"
#include "health/membership.h"
#include "queueing/cluster.h"
#include "sim/rng.h"

namespace stale::health {
namespace {

// --- ChurnSpec ------------------------------------------------------------

TEST(ChurnSpecTest, EmptyMeansNoChurn) {
  const ChurnSpec spec = ChurnSpec::parse("");
  EXPECT_FALSE(spec.any());
  EXPECT_EQ(spec.to_string(), "");
  // The health defaults still resolve: suspect at 2T, evict at 4T.
  const HealthConfig health = spec.resolved_health(0.5);
  EXPECT_DOUBLE_EQ(health.suspect_timeout, 1.0);
  EXPECT_DOUBLE_EQ(health.evict_timeout, 2.0);
  EXPECT_TRUE(health.enabled());
}

TEST(ChurnSpecTest, ParsesFullSpec) {
  const ChurnSpec spec = ChurnSpec::parse(
      "restart=5,restartdown=0.5,leave=0.01,rejoin=1,slow=2,slowfactor=0.5,"
      "semantics=requeue,suspect=2T,evict=4T,probation=3,probe=0.25,"
      "probemax=4,coverage=0.5,fallback=k_subset:2,retries=4,backoff=0.2");
  EXPECT_DOUBLE_EQ(spec.restart_every, 5.0);
  EXPECT_DOUBLE_EQ(spec.restart_down, 0.5);
  EXPECT_DOUBLE_EQ(spec.leave_rate, 0.01);
  EXPECT_DOUBLE_EQ(spec.rejoin_delay, 1.0);
  EXPECT_EQ(spec.slow, 2);
  EXPECT_DOUBLE_EQ(spec.slow_factor, 0.5);
  EXPECT_EQ(spec.semantics, fault::CrashSemantics::kRequeue);
  EXPECT_DOUBLE_EQ(spec.suspect_value, 2.0);
  EXPECT_TRUE(spec.suspect_in_intervals);
  EXPECT_DOUBLE_EQ(spec.evict_value, 4.0);
  EXPECT_TRUE(spec.evict_in_intervals);
  EXPECT_EQ(spec.probation_reports, 3);
  EXPECT_DOUBLE_EQ(spec.probe_backoff, 0.25);
  EXPECT_DOUBLE_EQ(spec.probe_backoff_max, 4.0);
  EXPECT_DOUBLE_EQ(spec.coverage_threshold, 0.5);
  EXPECT_EQ(spec.fallback_policy, "k_subset:2");
  EXPECT_EQ(spec.max_retries, 4);
  EXPECT_DOUBLE_EQ(spec.retry_backoff, 0.2);
  EXPECT_TRUE(spec.any());
}

TEST(ChurnSpecTest, TimeoutsResolveIntervalAndAbsoluteForms) {
  const HealthConfig intervals =
      ChurnSpec::parse("suspect=2T,evict=4T").resolved_health(0.25);
  EXPECT_DOUBLE_EQ(intervals.suspect_timeout, 0.5);
  EXPECT_DOUBLE_EQ(intervals.evict_timeout, 1.0);

  const ChurnSpec absolute = ChurnSpec::parse("suspect=3,evict=7");
  EXPECT_FALSE(absolute.suspect_in_intervals);
  EXPECT_FALSE(absolute.evict_in_intervals);
  const HealthConfig resolved = absolute.resolved_health(2.0);
  EXPECT_DOUBLE_EQ(resolved.suspect_timeout, 3.0);
  EXPECT_DOUBLE_EQ(resolved.evict_timeout, 7.0);

  // Mixed forms parse (the relative check only applies within one form) but
  // must still resolve to evict > suspect for the chosen T.
  const ChurnSpec mixed = ChurnSpec::parse("suspect=2T,evict=5");
  EXPECT_NO_THROW(mixed.resolved_health(1.0));
  EXPECT_THROW(mixed.resolved_health(10.0), std::invalid_argument);
}

TEST(ChurnSpecTest, HealthOnlySpecDrivesNoChurnProcess) {
  // This is the live dispatcher's --health shape: state-machine knobs only.
  const ChurnSpec spec = ChurnSpec::parse(
      "suspect=0.4,evict=0.8,probation=2,coverage=0.7,fallback=random");
  EXPECT_FALSE(spec.any());
  const HealthConfig health = spec.resolved_health(0.1);
  EXPECT_DOUBLE_EQ(health.suspect_timeout, 0.4);
  EXPECT_DOUBLE_EQ(health.evict_timeout, 0.8);
  EXPECT_DOUBLE_EQ(health.coverage_threshold, 0.7);
  // to_string serializes the *churn* a run injects; a spec with no churn
  // processes renders empty by design.
  EXPECT_EQ(spec.to_string(), "");
}

TEST(ChurnSpecTest, RejectsMalformedInput) {
  EXPECT_THROW(ChurnSpec::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("restart"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("restart=abc"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("restart=-1"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("restart=5,restartdown=0"),
               std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("leave=0.1,rejoin=0"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("slow=-1"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("slow=2,slowfactor=0"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("slow=2,slowfactor=1.5"),
               std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("semantics=maybe"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("suspect=0"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("evict=0"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("suspect=3,evict=2"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("suspect=2T,evict=2T"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("probation=0"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("probe=0"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("probe=2,probemax=1"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("coverage=1.5"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("coverage=-0.1"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("fallback="), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("retries=-1"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("backoff=-0.1"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("leave=0.1,=2"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("suspect=2x"), std::invalid_argument);
}

TEST(ChurnSpecTest, RejectsDuplicateKeys) {
  // Last-wins duplicates would silently disagree with the experimenter's
  // intent; every duplicate is a typo.
  EXPECT_THROW(ChurnSpec::parse("leave=0.1,leave=0"), std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("restart=5,restartdown=1,restart=6"),
               std::invalid_argument);
  EXPECT_THROW(ChurnSpec::parse("suspect=2T,suspect=3"),
               std::invalid_argument);
  EXPECT_THROW(
      ChurnSpec::parse("semantics=lost,semantics=requeue,restart=5"),
      std::invalid_argument);
  // Distinct keys still compose.
  EXPECT_NO_THROW(ChurnSpec::parse("leave=0.1,rejoin=0.5,slow=1"));
}

TEST(ChurnSpecTest, RoundTripsEveryFieldFamilyThroughToString) {
  const ChurnSpec spec = ChurnSpec::parse(
      "restart=5,restartdown=0.5,leave=0.01,rejoin=2,slow=2,slowfactor=0.25,"
      "semantics=lost,suspect=2.5T,evict=5T,probation=3,probe=0.25,"
      "probemax=4,coverage=0.5,fallback=k_subset:2,retries=4,backoff=0.2");
  const ChurnSpec reparsed = ChurnSpec::parse(spec.to_string());
  EXPECT_DOUBLE_EQ(reparsed.restart_every, spec.restart_every);
  EXPECT_DOUBLE_EQ(reparsed.restart_down, spec.restart_down);
  EXPECT_DOUBLE_EQ(reparsed.leave_rate, spec.leave_rate);
  EXPECT_DOUBLE_EQ(reparsed.rejoin_delay, spec.rejoin_delay);
  EXPECT_EQ(reparsed.slow, spec.slow);
  EXPECT_DOUBLE_EQ(reparsed.slow_factor, spec.slow_factor);
  EXPECT_EQ(reparsed.semantics, spec.semantics);
  EXPECT_DOUBLE_EQ(reparsed.suspect_value, spec.suspect_value);
  EXPECT_EQ(reparsed.suspect_in_intervals, spec.suspect_in_intervals);
  EXPECT_DOUBLE_EQ(reparsed.evict_value, spec.evict_value);
  EXPECT_EQ(reparsed.evict_in_intervals, spec.evict_in_intervals);
  EXPECT_EQ(reparsed.probation_reports, spec.probation_reports);
  EXPECT_DOUBLE_EQ(reparsed.probe_backoff, spec.probe_backoff);
  EXPECT_DOUBLE_EQ(reparsed.probe_backoff_max, spec.probe_backoff_max);
  EXPECT_DOUBLE_EQ(reparsed.coverage_threshold, spec.coverage_threshold);
  EXPECT_EQ(reparsed.fallback_policy, spec.fallback_policy);
  EXPECT_EQ(reparsed.max_retries, spec.max_retries);
  EXPECT_DOUBLE_EQ(reparsed.retry_backoff, spec.retry_backoff);
}

// --- HealthConfig ---------------------------------------------------------

TEST(HealthConfigTest, ValidatesRanges) {
  HealthConfig config;
  EXPECT_FALSE(config.enabled());
  EXPECT_NO_THROW(config.validate());  // disabled config is fine

  config.suspect_timeout = 1.0;
  config.evict_timeout = 0.5;  // must exceed suspect once enabled
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.evict_timeout = 2.0;
  EXPECT_NO_THROW(config.validate());

  config.probation_reports = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.probation_reports = 2;
  config.probe_backoff_max = config.probe_backoff / 2.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.probe_backoff_max = 8.0;
  config.coverage_threshold = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.coverage_threshold = 0.5;
  config.fallback_policy.clear();
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

// --- Membership state machine ---------------------------------------------

HealthConfig test_health() {
  HealthConfig config;
  config.suspect_timeout = 1.0;
  config.evict_timeout = 2.0;
  config.probation_reports = 2;
  config.probe_backoff = 0.5;
  config.probe_backoff_max = 2.0;
  config.coverage_threshold = 0.5;
  return config;
}

TEST(MembershipTest, StartsFullyAlive) {
  Membership members(4, test_health(), /*now=*/0.0);
  EXPECT_EQ(members.candidate_count(), 4);
  EXPECT_DOUBLE_EQ(members.coverage(), 1.0);
  EXPECT_FALSE(members.degraded());
  EXPECT_EQ(members.transition_count(), 0u);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(members.state(s), MemberState::kAlive);
    EXPECT_EQ(members.candidates()[static_cast<std::size_t>(s)], 1);
  }
  EXPECT_THROW(Membership(0, test_health(), 0.0), std::invalid_argument);
  // A disabled config has no timeouts to drive the machine.
  EXPECT_THROW(Membership(4, HealthConfig{}, 0.0), std::invalid_argument);
}

TEST(MembershipTest, SilenceSuspectsThenEvicts) {
  Membership members(3, test_health(), 0.0);
  // Server 0 keeps reporting; 1 and 2 go silent after t = 0.
  members.note_report(0, 0.9);
  members.advance(1.2);  // past suspect_timeout for 1 and 2
  EXPECT_EQ(members.state(0), MemberState::kAlive);
  EXPECT_EQ(members.state(1), MemberState::kSuspect);
  EXPECT_EQ(members.state(2), MemberState::kSuspect);
  EXPECT_EQ(members.candidate_count(), 1);
  EXPECT_EQ(members.candidates()[1], 0);

  members.note_report(0, 1.8);
  members.advance(2.1);  // past evict_timeout
  EXPECT_EQ(members.state(1), MemberState::kDead);
  EXPECT_EQ(members.state(2), MemberState::kDead);
  EXPECT_EQ(members.evictions(), 2u);
  EXPECT_EQ(members.state(0), MemberState::kAlive);
}

TEST(MembershipTest, ReportClearsSuspicionWithoutProbation) {
  Membership members(2, test_health(), 0.0);
  members.advance(1.5);
  ASSERT_EQ(members.state(1), MemberState::kSuspect);
  // A suspect was merely late — one report restores it directly.
  members.note_report(1, 1.6);
  EXPECT_EQ(members.state(1), MemberState::kAlive);
  EXPECT_EQ(members.rejoins(), 0u);  // never died, not a rejoin
}

TEST(MembershipTest, DeadRejoinsThroughProbation) {
  Membership members(2, test_health(), 0.0);
  members.note_failure(1, 0.5);
  ASSERT_EQ(members.state(1), MemberState::kDead);
  EXPECT_EQ(members.evictions(), 1u);
  EXPECT_EQ(members.candidate_count(), 1);

  // First report: probation — a candidate again, but not yet trusted.
  members.note_report(1, 3.0);
  EXPECT_EQ(members.state(1), MemberState::kProbation);
  EXPECT_EQ(members.candidate_count(), 2);
  EXPECT_EQ(members.rejoins(), 0u);

  // Second consecutive report closes the loop.
  members.note_report(1, 3.1);
  EXPECT_EQ(members.state(1), MemberState::kAlive);
  EXPECT_EQ(members.rejoins(), 1u);
}

TEST(MembershipTest, SingleReportDoesNotReviveAFlappingServer) {
  HealthConfig config = test_health();
  config.probation_reports = 3;
  Membership members(2, config, 0.0);
  members.note_failure(1, 0.5);
  members.note_report(1, 1.0);
  ASSERT_EQ(members.state(1), MemberState::kProbation);
  // The server goes silent again before finishing probation: it falls
  // straight back to dead at the *suspect* deadline (no grace state for a
  // server that never regained trust).
  members.advance(2.1);
  EXPECT_EQ(members.state(1), MemberState::kDead);
  // The next report restarts probation from zero.
  members.note_report(1, 2.5);
  EXPECT_EQ(members.state(1), MemberState::kProbation);
  members.note_report(1, 2.6);
  EXPECT_EQ(members.state(1), MemberState::kProbation);
  members.note_report(1, 2.7);
  EXPECT_EQ(members.state(1), MemberState::kAlive);
}

TEST(MembershipTest, ProbeBackoffDoublesUpToCap) {
  Membership members(2, test_health(), 0.0);
  members.note_failure(1, 1.0);
  // First probe due after probe_backoff.
  EXPECT_FALSE(members.probe_due(1, 1.4));
  EXPECT_TRUE(members.probe_due(1, 1.5));
  members.note_probe(1, 1.5);  // interval doubles to 1.0
  EXPECT_FALSE(members.probe_due(1, 2.4));
  EXPECT_TRUE(members.probe_due(1, 2.5));
  members.note_probe(1, 2.5);  // doubles to 2.0 (the cap)
  EXPECT_TRUE(members.probe_due(1, 4.5));
  members.note_probe(1, 4.5);  // stays at the cap
  EXPECT_FALSE(members.probe_due(1, 6.4));
  EXPECT_TRUE(members.probe_due(1, 6.5));
  // Alive servers are never probed.
  EXPECT_FALSE(members.probe_due(0, 100.0));
  // Revival resets the schedule for the next death.
  members.note_report(1, 7.0);
  members.note_report(1, 7.1);
  members.note_failure(1, 8.0);
  EXPECT_TRUE(members.probe_due(1, 8.5));
}

TEST(MembershipTest, DegradedModeTracksCoverageThreshold) {
  Membership members(4, test_health(), 0.0);  // threshold 0.5
  members.note_failure(0, 0.1);
  EXPECT_DOUBLE_EQ(members.coverage(), 0.75);
  EXPECT_FALSE(members.degraded());
  members.note_failure(1, 0.2);
  // Coverage 0.5 is *at* the threshold, not below it.
  EXPECT_FALSE(members.degraded());
  members.note_failure(2, 0.3);
  EXPECT_TRUE(members.degraded());
  EXPECT_EQ(members.degraded_entries(), 1u);
  // One probation report lifts coverage back to the threshold.
  members.note_report(0, 1.0);
  EXPECT_FALSE(members.degraded());
  EXPECT_EQ(members.degraded_entries(), 1u);  // entries count crossings only
}

TEST(MembershipTest, TransitionCountAdvancesWithEveryStateChange) {
  Membership members(2, test_health(), 0.0);
  const std::uint64_t start = members.transition_count();
  members.note_failure(0, 0.5);       // alive -> dead
  members.note_report(0, 1.0);        // dead -> probation
  members.note_report(0, 1.1);        // probation -> alive
  EXPECT_EQ(members.transition_count(), start + 3);
  // Redundant events are not transitions.
  members.note_report(0, 1.2);
  members.note_failure(1, 2.0);
  members.note_failure(1, 2.1);  // already dead
  EXPECT_EQ(members.transition_count(), start + 4);
}

// --- ChurnInjector ---------------------------------------------------------

TEST(ChurnInjectorTest, NoChurnMeansNoTransitions) {
  sim::Rng rng(42);
  ChurnInjector injector(ChurnSpec{}, 4, rng);
  EXPECT_TRUE(std::isinf(injector.next_transition_time()));
  queueing::Cluster cluster(4);
  cluster.enable_job_tracking();
  injector.advance_to(cluster, 1e9, nullptr);
  EXPECT_EQ(injector.transition_count(), 0u);
  EXPECT_EQ(injector.up_count(), 4);
}

TEST(ChurnInjectorTest, RollingRestartScheduleIsExact) {
  sim::Rng rng(1);
  const ChurnSpec spec = ChurnSpec::parse("restart=5,restartdown=0.5");
  ChurnInjector injector(spec, 2, rng);
  queueing::Cluster cluster(2);
  cluster.enable_job_tracking();

  // Server 0 goes down at 5.0 and returns at 5.5; server 1 at 10.0/10.5.
  EXPECT_DOUBLE_EQ(injector.next_transition_time(), 5.0);
  injector.advance_to(cluster, 5.2, nullptr);
  EXPECT_EQ(injector.up()[0], 0);
  EXPECT_EQ(injector.up()[1], 1);
  EXPECT_EQ(injector.up_count(), 1);
  injector.advance_to(cluster, 5.6, nullptr);
  EXPECT_EQ(injector.up()[0], 1);
  injector.advance_to(cluster, 10.2, nullptr);
  EXPECT_EQ(injector.up()[1], 0);
  injector.advance_to(cluster, 10.6, nullptr);
  EXPECT_EQ(injector.up_count(), 2);
  // Server 0's second cycle lands at 2 * restart_every.
  injector.advance_to(cluster, 10.9, nullptr);
  EXPECT_DOUBLE_EQ(injector.next_transition_time(), 15.0);
  EXPECT_EQ(injector.stats().crashes, 2u);
  EXPECT_EQ(injector.stats().recoveries, 2u);
}

TEST(ChurnInjectorTest, LeaveScheduleIsSeedReproducible) {
  const ChurnSpec spec = ChurnSpec::parse("leave=0.2,rejoin=0.5");
  std::vector<std::uint64_t> counts;
  for (int rep = 0; rep < 2; ++rep) {
    sim::Rng rng(99);
    ChurnInjector injector(spec, 6, rng);
    queueing::Cluster cluster(6);
    cluster.enable_job_tracking();
    for (double t = 10.0; t <= 300.0; t += 10.0) {
      injector.advance_to(cluster, t, nullptr);
    }
    counts.push_back(injector.stats().crashes);
    counts.push_back(injector.stats().recoveries);
    counts.push_back(injector.transition_count());
    EXPECT_GT(injector.stats().crashes, 0u);
  }
  EXPECT_EQ(counts[0], counts[3]);
  EXPECT_EQ(counts[1], counts[4]);
  EXPECT_EQ(counts[2], counts[5]);
}

TEST(ChurnInjectorTest, ChurnFreeSpecDrawsNoRandomness) {
  // Enabling an empty injector must not perturb the trial's other draws.
  sim::Rng a(7), b(7);
  ChurnInjector injector(ChurnSpec{}, 8, a);
  ChurnInjector other(ChurnSpec{}, 8, b);
  (void)other;
  EXPECT_DOUBLE_EQ(a.next_double(), b.next_double());
}

TEST(ChurnInjectorTest, RequeueSemanticsHandBackDisplacedJobs) {
  sim::Rng rng(3);
  const ChurnSpec spec =
      ChurnSpec::parse("restart=2,restartdown=0.5,semantics=requeue");
  ChurnInjector injector(spec, 2, rng);
  queueing::Cluster cluster(2);
  cluster.enable_job_tracking();
  cluster.assign_tagged(1.0, 0, 100.0, 11, 1.0);
  cluster.assign_tagged(1.5, 0, 100.0, 12, 1.5);

  std::vector<queueing::DisplacedJob> handed;
  injector.advance_to(cluster, 2.2,
                      [&](double when, const queueing::DisplacedJob& job) {
                        EXPECT_DOUBLE_EQ(when, 2.0);
                        handed.push_back(job);
                        return true;
                      });
  ASSERT_EQ(handed.size(), 2u);
  EXPECT_EQ(handed[0].tag, 11u);
  EXPECT_EQ(handed[1].tag, 12u);
  EXPECT_EQ(injector.stats().jobs_requeued, 2u);
  EXPECT_EQ(injector.stats().jobs_lost, 0u);
}

TEST(ChurnInjectorTest, LostSemanticsCountDisplacedJobs) {
  sim::Rng rng(3);
  const ChurnSpec spec =
      ChurnSpec::parse("restart=2,restartdown=0.5,semantics=lost");
  ChurnInjector injector(spec, 2, rng);
  queueing::Cluster cluster(2);
  cluster.enable_job_tracking();
  cluster.assign_tagged(1.0, 0, 100.0, 11, 1.0);
  injector.advance_to(cluster, 2.2, nullptr);
  EXPECT_EQ(injector.stats().jobs_lost, 1u);
  EXPECT_EQ(injector.stats().jobs_requeued, 0u);
}

// --- churn trial path end to end -------------------------------------------

driver::ExperimentConfig churn_config(driver::UpdateModel model,
                                      const std::string& spec) {
  driver::ExperimentConfig config;
  config.model = model;
  config.num_servers = 8;
  config.lambda = 0.8;
  config.update_interval = 2.0;
  config.policy = "basic_li";
  config.num_jobs = 8'000;
  config.warmup_jobs = 2'000;
  config.trials = 2;
  config.churn = ChurnSpec::parse(spec);
  return config;
}

TEST(ChurnTrialTest, SurvivesRollingRestartsAndCountsChurn) {
  const auto config = churn_config(
      driver::UpdateModel::kPeriodic,
      "restart=30,restartdown=2,suspect=2T,evict=4T,coverage=0.5,"
      "fallback=random");
  const driver::ExperimentResult result = driver::run_experiment(config);
  EXPECT_TRUE(std::isfinite(result.mean()));
  EXPECT_GT(result.mean(), 0.0);
  EXPECT_GT(result.faults.crashes, 0u);
  EXPECT_GT(result.faults.recoveries, 0u);
}

TEST(ChurnTrialTest, RunsOnBothBoardRepresentations) {
  for (const auto repr :
       {policy::BoardRepr::kVector, policy::BoardRepr::kBucketed}) {
    auto config = churn_config(driver::UpdateModel::kPeriodic,
                               "leave=0.005,rejoin=2,suspect=2T,evict=4T");
    config.board_repr = repr;
    const driver::ExperimentResult result = driver::run_experiment(config);
    EXPECT_TRUE(std::isfinite(result.mean()))
        << "repr=" << static_cast<int>(repr);
    EXPECT_GT(result.faults.crashes, 0u);
  }
}

TEST(ChurnTrialTest, TrialsAreSeedDeterministic) {
  for (const auto repr :
       {policy::BoardRepr::kVector, policy::BoardRepr::kBucketed}) {
    auto config = churn_config(
        driver::UpdateModel::kIndividual,
        "restart=40,restartdown=3,leave=0.004,rejoin=2,suspect=2T,evict=4T,"
        "coverage=0.5,fallback=random");
    config.board_repr = repr;
    const driver::TrialResult a = driver::run_trial(config, 1234);
    const driver::TrialResult b = driver::run_trial(config, 1234);
    EXPECT_EQ(a.mean_response, b.mean_response);
    EXPECT_EQ(a.measured_jobs, b.measured_jobs);
    EXPECT_EQ(a.faults, b.faults);
  }
}

TEST(ChurnTrialTest, RejectsUnsupportedCombinations) {
  // Churn + fault injection: two owners for ground-truth liveness.
  auto both = churn_config(driver::UpdateModel::kPeriodic,
                           "restart=30,restartdown=2");
  both.fault = fault::FaultSpec::parse("loss=0.1");
  EXPECT_THROW(driver::run_experiment(both), std::invalid_argument);
  // Models without a per-server report stream cannot feed the health layer.
  EXPECT_THROW(driver::run_experiment(churn_config(
                   driver::UpdateModel::kContinuous, "restart=30,restartdown=2")),
               std::invalid_argument);
  EXPECT_THROW(
      driver::run_experiment(churn_config(driver::UpdateModel::kUpdateOnAccess,
                                          "restart=30,restartdown=2")),
      std::invalid_argument);
}

TEST(ChurnTrialTest, ChurnFreeSpecMatchesBaselinePathBitForBit) {
  // Adding the churn *layer* must change nothing for existing configurations.
  auto config = churn_config(driver::UpdateModel::kPeriodic, "");
  const driver::TrialResult a = driver::run_trial(config, 4321);
  config.churn = ChurnSpec{};
  const driver::TrialResult b = driver::run_trial(config, 4321);
  EXPECT_EQ(a.mean_response, b.mean_response);
  EXPECT_EQ(a.measured_jobs, b.measured_jobs);
}

}  // namespace
}  // namespace stale::health
