#include "sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace stale::sim {
namespace {

TEST(SplitMix64Test, MatchesReferenceSequence) {
  // Reference values for seed 1234567 from the public-domain splitmix64.c.
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.next(), 6457827717110365317ULL);
  EXPECT_EQ(sm.next(), 3203168211198807973ULL);
  EXPECT_EQ(sm.next(), 9817491932198370423ULL);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.next_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleOpen0NeverZero) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_GT(rng.next_double_open0(), 0.0);
    ASSERT_LE(rng.next_double_open0(), 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(13);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 10000; ++i) {
      ASSERT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowIsApproximatelyUniform) {
  Rng rng(17);
  constexpr int kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.next_below(kBound)];
  }
  // Chi-square with 9 dof; 99.9% critical value ~27.9.
  double chi2 = 0.0;
  const double expected = static_cast<double>(kDraws) / kBound;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(19);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, SplitProducesDecorrelatedStream) {
  Rng parent(23);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, LongJumpChangesStream) {
  Rng a(29);
  Rng b(29);
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(TrialSeedTest, DistinctAcrossTrials) {
  std::set<std::uint64_t> seeds;
  for (int trial = 0; trial < 1000; ++trial) {
    seeds.insert(trial_seed(0xABCD, trial));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(TrialSeedTest, DependsOnBaseSeed) {
  EXPECT_NE(trial_seed(1, 0), trial_seed(2, 0));
}

}  // namespace
}  // namespace stale::sim
