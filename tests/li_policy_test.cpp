#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/load_interpretation.h"
#include "policy/aggressive_li_policy.h"
#include "policy/basic_li_policy.h"
#include "policy/hybrid_li_policy.h"
#include "policy/li_subset_policy.h"

namespace stale::policy {
namespace {

// Empirical selection frequencies of a policy under a fixed context.
std::vector<double> frequencies(SelectionPolicy& policy,
                                const DispatchContext& context, int draws,
                                std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<int> counts(context.loads.size(), 0);
  for (int i = 0; i < draws; ++i) {
    ++counts[static_cast<std::size_t>(policy.select(context, rng))];
  }
  std::vector<double> freq(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    freq[i] = static_cast<double>(counts[i]) / draws;
  }
  return freq;
}

TEST(BasicLiPolicyTest, PeriodicFrequenciesMatchEq4) {
  BasicLiPolicy policy;
  const std::vector<int> loads = {0, 2, 4};
  DispatchContext context;
  context.loads = loads;
  context.lambda_total = 5.0;
  context.phase_length = 2.0;  // K = 10
  context.phase_elapsed = 0.3;
  context.age = 0.3;
  context.info_version = 1;
  const auto expected =
      core::basic_li_probabilities(std::span<const int>(loads), 10.0);
  const auto freq = frequencies(policy, context, 200000, 21);
  for (std::size_t i = 0; i < freq.size(); ++i) {
    EXPECT_NEAR(freq[i], expected[i], 0.01) << "server " << i;
  }
}

TEST(BasicLiPolicyTest, PeriodicDistributionConstantAcrossPhase) {
  // Within one phase (same info_version), Basic LI's distribution must not
  // depend on when in the phase the request arrives.
  BasicLiPolicy policy;
  const std::vector<int> loads = {0, 3};
  DispatchContext early;
  early.loads = loads;
  early.lambda_total = 2.0;
  early.phase_length = 4.0;
  early.phase_elapsed = 0.0;
  early.age = 0.0;
  early.info_version = 7;
  DispatchContext late = early;
  late.phase_elapsed = 3.9;
  late.age = 3.9;
  const auto f_early = frequencies(policy, early, 100000, 22);
  const auto f_late = frequencies(policy, late, 100000, 23);
  EXPECT_NEAR(f_early[0], f_late[0], 0.01);
}

TEST(BasicLiPolicyTest, ContinuousUsesAge) {
  BasicLiPolicy policy;
  const std::vector<int> loads = {0, 4};
  DispatchContext context;
  context.loads = loads;
  context.lambda_total = 2.0;
  context.age = 0.0;  // fresh: everything to the minimum
  context.info_version = 1;
  sim::Rng rng(24);
  for (int i = 0; i < 200; ++i) ASSERT_EQ(policy.select(context, rng), 0);

  context.age = 1e6;  // ancient: uniform
  context.info_version = 2;
  const auto freq = frequencies(policy, context, 100000, 25);
  EXPECT_NEAR(freq[0], 0.5, 0.01);
}

TEST(AggressiveLiPolicyTest, PeriodicWalksGroupsWithinPhase) {
  AggressiveLiPolicy policy;
  const std::vector<int> loads = {0, 2, 4};  // C_1 = 2, C_2 = 6
  DispatchContext context;
  context.loads = loads;
  context.lambda_total = 1.0;
  context.phase_length = 10.0;
  context.info_version = 3;

  context.phase_elapsed = 1.0;  // 1 expected arrival -> group 1
  sim::Rng rng(26);
  for (int i = 0; i < 200; ++i) ASSERT_EQ(policy.select(context, rng), 0);

  context.phase_elapsed = 3.0;  // group 2: uniform over servers {0, 1}
  const auto freq = frequencies(policy, context, 100000, 27);
  EXPECT_NEAR(freq[0], 0.5, 0.01);
  EXPECT_NEAR(freq[1], 0.5, 0.01);
  EXPECT_EQ(freq[2], 0.0);

  context.phase_elapsed = 7.0;  // group 3: uniform over everyone
  const auto freq3 = frequencies(policy, context, 100000, 28);
  for (double f : freq3) EXPECT_NEAR(f, 1.0 / 3.0, 0.01);
}

TEST(AggressiveLiPolicyTest, StationaryRuleUnderContinuousModel) {
  AggressiveLiPolicy policy;
  const std::vector<int> loads = {0, 2, 4};
  DispatchContext context;
  context.loads = loads;
  context.lambda_total = 1.0;
  context.age = 3.0;  // K = 3: smallest j with C_j >= 3 is 2
  context.info_version = 4;
  const auto freq = frequencies(policy, context, 100000, 29);
  EXPECT_NEAR(freq[0], 0.5, 0.01);
  EXPECT_NEAR(freq[1], 0.5, 0.01);
  EXPECT_EQ(freq[2], 0.0);
}

TEST(HybridLiPolicyTest, DeficitProportionalThenUniform) {
  HybridLiPolicy policy;
  const std::vector<int> loads = {1, 3, 5};  // deficits 4, 2, 0; D = 6
  DispatchContext context;
  context.loads = loads;
  context.lambda_total = 1.0;
  context.phase_length = 20.0;
  context.info_version = 5;

  context.phase_elapsed = 2.0;  // 2 expected arrivals < 6: first interval
  const auto f1 = frequencies(policy, context, 100000, 30);
  EXPECT_NEAR(f1[0], 4.0 / 6.0, 0.01);
  EXPECT_NEAR(f1[1], 2.0 / 6.0, 0.01);
  EXPECT_EQ(f1[2], 0.0);

  context.phase_elapsed = 10.0;  // 10 >= 6: uniform
  const auto f2 = frequencies(policy, context, 100000, 31);
  for (double f : f2) EXPECT_NEAR(f, 1.0 / 3.0, 0.01);
}

TEST(LiSubsetPolicyTest, FullSubsetMatchesBasicLi) {
  LiSubsetPolicy subset(3);
  BasicLiPolicy full;
  const std::vector<int> loads = {0, 2, 4};
  DispatchContext context;
  context.loads = loads;
  context.lambda_total = 5.0;
  context.phase_length = 2.0;
  context.info_version = 6;
  const auto f_subset = frequencies(subset, context, 200000, 32);
  const auto f_full = frequencies(full, context, 200000, 33);
  for (std::size_t i = 0; i < f_subset.size(); ++i) {
    EXPECT_NEAR(f_subset[i], f_full[i], 0.012) << "server " << i;
  }
}

TEST(LiSubsetPolicyTest, KOneIsObliviousRandom) {
  LiSubsetPolicy policy(1);
  const std::vector<int> loads = {100, 0, 100};
  DispatchContext context;
  context.loads = loads;
  context.lambda_total = 2.7;
  context.age = 1.0;
  const auto freq = frequencies(policy, context, 100000, 34);
  for (double f : freq) EXPECT_NEAR(f, 1.0 / 3.0, 0.012);
}

TEST(LiSubsetPolicyTest, RestrictedInformationStillBiasesDown) {
  // With k = 2 of 4 servers, the least-loaded server must receive the most
  // traffic and the most-loaded the least.
  LiSubsetPolicy policy(2);
  const std::vector<int> loads = {0, 3, 6, 9};
  DispatchContext context;
  context.loads = loads;
  context.lambda_total = 3.6;
  context.age = 2.0;
  const auto freq = frequencies(policy, context, 200000, 35);
  EXPECT_GT(freq[0], freq[1]);
  EXPECT_GT(freq[1], freq[2]);
  EXPECT_GT(freq[2], freq[3]);
}

TEST(LiSubsetPolicyTest, NameAndValidation) {
  EXPECT_EQ(LiSubsetPolicy(2).name(), "basic_li_k:2");
  EXPECT_EQ(LiSubsetPolicy(2).info_demand(), 2);
  EXPECT_THROW(LiSubsetPolicy(0), std::invalid_argument);
}

// --- degraded-input guards (fault hardening) ------------------------------

TEST(LiGuardTest, EmptyLoadVectorThrows) {
  DispatchContext context;
  context.lambda_total = 1.0;
  context.age = 1.0;
  sim::Rng rng(40);
  BasicLiPolicy basic;
  EXPECT_THROW(basic.select(context, rng), std::invalid_argument);
  AggressiveLiPolicy aggressive;
  EXPECT_THROW(aggressive.select(context, rng), std::invalid_argument);
  HybridLiPolicy hybrid;
  EXPECT_THROW(hybrid.select(context, rng), std::invalid_argument);
}

TEST(LiGuardTest, BasicLiDegradesNonFiniteRateToFreshInformation) {
  // An estimator that has seen no samples (NaN) or overflowed (inf) must not
  // poison the probability vector; K degrades to 0 = "treat as fresh", which
  // sends everything to the least-loaded server.
  const std::vector<int> loads = {0, 4, 7};
  for (const double bad_rate :
       {std::nan(""), std::numeric_limits<double>::infinity(), -3.0}) {
    BasicLiPolicy policy;
    DispatchContext context;
    context.loads = loads;
    context.lambda_total = bad_rate;
    context.age = 2.0;
    context.info_version = 41;
    sim::Rng rng(41);
    for (int i = 0; i < 100; ++i) ASSERT_EQ(policy.select(context, rng), 0);
  }
}

TEST(LiGuardTest, BasicLiZeroPhaseWithZeroRateEstimate) {
  // T = 0 with a zero arrival-rate estimate: K = 0 exactly, no division
  // hazards; every request goes to the reported minimum.
  BasicLiPolicy policy;
  const std::vector<int> loads = {3, 0, 5};
  DispatchContext context;
  context.loads = loads;
  context.lambda_total = 0.0;
  context.phase_length = 0.0;
  context.phase_elapsed = 0.0;
  context.age = 0.0;
  context.info_version = 42;
  sim::Rng rng(42);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(policy.select(context, rng), 1);
}

TEST(LiGuardTest, AggressiveLiClampsNonFiniteElapsedArrivals) {
  // NaN phase progress (e.g. a corrupted clock product) clamps to 0 expected
  // arrivals: group 1, the reported least-loaded server.
  AggressiveLiPolicy policy;
  const std::vector<int> loads = {0, 2, 4};
  DispatchContext context;
  context.loads = loads;
  context.lambda_total = std::nan("");
  context.phase_length = 10.0;
  context.phase_elapsed = 1.0;
  context.info_version = 43;
  sim::Rng rng(43);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(policy.select(context, rng), 0);
}

TEST(LiGuardTest, BasicLiMovesMassOffKnownDeadServers) {
  // Fresh information concentrates everything on server 0; if the dispatcher
  // knows server 0 is down, the mass must be redirected to live servers and
  // the repair counted.
  BasicLiPolicy policy;
  const std::vector<int> loads = {0, 5, 5};
  const std::vector<std::uint8_t> alive = {0, 1, 1};
  std::uint64_t fixes = 0;
  DispatchContext context;
  context.loads = loads;
  context.lambda_total = 1.0;
  context.age = 0.0;
  context.info_version = 44;
  context.alive = alive;
  context.sanitize_events = &fixes;
  const auto freq = frequencies(policy, context, 20000, 44);
  EXPECT_EQ(freq[0], 0.0);
  EXPECT_GT(freq[1], 0.0);
  EXPECT_GT(freq[2], 0.0);
  EXPECT_GT(fixes, 0u);
}

TEST(LiGuardTest, AggressiveLiAvoidsDeadGroupMembers) {
  // The target group is {server 0}; with server 0 down the policy must fall
  // back to a live server instead of dispatching into the void.
  AggressiveLiPolicy policy;
  const std::vector<int> loads = {0, 2, 4};
  const std::vector<std::uint8_t> alive = {0, 1, 1};
  std::uint64_t fixes = 0;
  DispatchContext context;
  context.loads = loads;
  context.lambda_total = 1.0;
  context.phase_length = 10.0;
  context.phase_elapsed = 1.0;  // 1 expected arrival -> group {0}
  context.info_version = 45;
  context.alive = alive;
  context.sanitize_events = &fixes;
  const auto freq = frequencies(policy, context, 20000, 45);
  EXPECT_EQ(freq[0], 0.0);
  EXPECT_GT(freq[1] + freq[2], 0.99);
  EXPECT_GT(fixes, 0u);
}

TEST(LiGuardTest, HybridLiSanitizesDeficitVectorAgainstDeadServers) {
  HybridLiPolicy policy;
  const std::vector<int> loads = {1, 3, 5};  // deficits 4, 2, 0
  const std::vector<std::uint8_t> alive = {0, 1, 1};
  std::uint64_t fixes = 0;
  DispatchContext context;
  context.loads = loads;
  context.lambda_total = 1.0;
  context.phase_length = 20.0;
  context.phase_elapsed = 2.0;  // first interval: deficit-proportional
  context.info_version = 46;
  context.alive = alive;
  context.sanitize_events = &fixes;
  const auto freq = frequencies(policy, context, 20000, 46);
  EXPECT_EQ(freq[0], 0.0);  // dead server receives nothing
  EXPECT_GT(freq[1], 0.9);  // the only live server with a deficit
  EXPECT_GT(fixes, 0u);
}

}  // namespace
}  // namespace stale::policy
