#include "workload/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/rng.h"

namespace stale::workload {
namespace {

std::vector<TraceRecord> from_string(const std::string& text) {
  std::istringstream in(text);
  return parse_trace(in);
}

TEST(ParseTraceTest, ParsesArrivalsAndSizes) {
  const auto records = from_string(
      "# a comment\n"
      "0.0 1.5\n"
      "\n"
      "2.0 0.5\n"
      "2.0 2.0\n"   // simultaneous arrivals allowed
      "5.5\n");     // size defaults to 1.0
  ASSERT_EQ(records.size(), 4u);
  EXPECT_DOUBLE_EQ(records[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(records[0].size, 1.5);
  EXPECT_DOUBLE_EQ(records[2].size, 2.0);
  EXPECT_DOUBLE_EQ(records[3].arrival, 5.5);
  EXPECT_DOUBLE_EQ(records[3].size, 1.0);
}

TEST(ParseTraceTest, RejectsMalformedLines) {
  EXPECT_THROW(from_string("abc\n"), std::invalid_argument);
  EXPECT_THROW(from_string("1.0 2.0 3.0\n"), std::invalid_argument);
  EXPECT_THROW(from_string("2.0\n1.0\n"), std::invalid_argument);  // backwards
  EXPECT_THROW(from_string("1.0 0.0\n"), std::invalid_argument);   // size <= 0
}

TEST(LoadTraceTest, MissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/trace.txt"), std::runtime_error);
}

TEST(TraceProcessTest, ReplaysGapsInOrderAndWraps) {
  const auto records = from_string("0\n1\n3\n6\n");
  TraceProcess process(records);  // gaps 1, 2, 3
  sim::Rng rng(1);
  EXPECT_DOUBLE_EQ(process.next_gap(rng), 1.0);
  EXPECT_DOUBLE_EQ(process.next_gap(rng), 2.0);
  EXPECT_DOUBLE_EQ(process.next_gap(rng), 3.0);
  EXPECT_DOUBLE_EQ(process.next_gap(rng), 1.0);  // wrapped
  EXPECT_DOUBLE_EQ(process.mean_gap(), 2.0);
}

TEST(TraceProcessTest, RateScaleCompressesGaps) {
  const auto records = from_string("0\n2\n4\n");
  TraceProcess process(records, /*rate_scale=*/2.0);
  sim::Rng rng(1);
  EXPECT_DOUBLE_EQ(process.next_gap(rng), 1.0);
  EXPECT_DOUBLE_EQ(process.mean_gap(), 1.0);
}

TEST(TraceProcessTest, RejectsDegenerateTraces) {
  EXPECT_THROW(TraceProcess(from_string("0\n")), std::invalid_argument);
  EXPECT_THROW(TraceProcess(from_string("0\n1\n"), 0.0),
               std::invalid_argument);
  EXPECT_THROW(TraceProcess(from_string("1\n1\n")), std::invalid_argument);
}

TEST(TraceSizesTest, ReplaysSizesWithEmpiricalMoments) {
  const auto records = from_string("0 1\n1 3\n2 5\n");
  TraceSizes sizes(records);
  sim::Rng rng(1);
  EXPECT_DOUBLE_EQ(sizes.sample(rng), 1.0);
  EXPECT_DOUBLE_EQ(sizes.sample(rng), 3.0);
  EXPECT_DOUBLE_EQ(sizes.sample(rng), 5.0);
  EXPECT_DOUBLE_EQ(sizes.sample(rng), 1.0);
  EXPECT_DOUBLE_EQ(sizes.mean(), 3.0);
  EXPECT_DOUBLE_EQ(sizes.variance(), 8.0 / 3.0);
}

TEST(TraceSizesTest, RejectsEmpty) {
  EXPECT_THROW(TraceSizes({}), std::invalid_argument);
}

}  // namespace
}  // namespace stale::workload
