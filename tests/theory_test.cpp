#include "queueing/theory.h"

#include <gtest/gtest.h>

#include "driver/experiment.h"

namespace stale::queueing::theory {
namespace {

TEST(Mm1Test, KnownValues) {
  EXPECT_DOUBLE_EQ(mm1_response_time(0.0), 1.0);
  EXPECT_DOUBLE_EQ(mm1_response_time(0.5), 2.0);
  EXPECT_DOUBLE_EQ(mm1_response_time(0.9), 10.0);
}

TEST(Mm1Test, RejectsUnstable) {
  EXPECT_THROW(mm1_response_time(1.0), std::invalid_argument);
  EXPECT_THROW(mm1_response_time(-0.1), std::invalid_argument);
}

TEST(Mg1Test, ExponentialServiceReducesToMm1) {
  // Exponential(1): E[S^2] = 2, P-K gives 1 + rho / (1 - rho) = M/M/1.
  for (double rho : {0.3, 0.6, 0.9}) {
    EXPECT_NEAR(mg1_response_time(rho, 2.0), mm1_response_time(rho), 1e-12);
  }
}

TEST(Mg1Test, DeterministicHalvesTheWait) {
  // M/D/1 waiting time is half the M/M/1 waiting time.
  const double rho = 0.8;
  const double md1_wait = md1_response_time(rho) - 1.0;
  const double mm1_wait = mm1_response_time(rho) - 1.0;
  EXPECT_NEAR(md1_wait, 0.5 * mm1_wait, 1e-12);
}

TEST(Mg1Test, WaitGrowsWithServiceVariance) {
  const double rho = 0.7;
  EXPECT_LT(mg1_response_time(rho, 1.0), mg1_response_time(rho, 2.0));
  EXPECT_LT(mg1_response_time(rho, 2.0), mg1_response_time(rho, 50.0));
}

TEST(Mg1Test, RejectsImpossibleSecondMoment) {
  EXPECT_THROW(mg1_response_time(0.5, 0.5), std::invalid_argument);
}

TEST(ErlangCTest, SingleServerIsRho) {
  // For c = 1 the waiting probability is exactly rho.
  for (double rho : {0.2, 0.5, 0.9}) {
    EXPECT_NEAR(erlang_c(1, rho), rho, 1e-12);
  }
}

TEST(ErlangCTest, KnownTwoServerValue) {
  // C(2, rho) = 2 rho^2 / (1 + rho) for per-server utilization rho.
  const double rho = 0.75;
  EXPECT_NEAR(erlang_c(2, rho), 2.0 * rho * rho / (1.0 + rho), 1e-12);
}

TEST(ErlangCTest, MoreServersWaitLess) {
  double prev = 1.0;
  for (std::size_t c : {1u, 2u, 5u, 10u, 50u}) {
    const double waiting = erlang_c(c, 0.9);
    EXPECT_LT(waiting, prev + 1e-12);
    prev = waiting;
  }
}

TEST(ErlangCTest, RejectsBadArguments) {
  EXPECT_THROW(erlang_c(0, 0.5), std::invalid_argument);
  EXPECT_THROW(erlang_c(2, 1.0), std::invalid_argument);
}

TEST(MmcTest, SingleServerIsMm1) {
  for (double rho : {0.3, 0.8}) {
    EXPECT_NEAR(mmc_response_time(1, rho), mm1_response_time(rho), 1e-12);
  }
}

TEST(MmcTest, CentralQueueBeatsRandomSplit) {
  // The M/M/c ideal lower-bounds anything a dispatcher can do.
  for (std::size_t c : {2u, 10u, 100u}) {
    EXPECT_LT(mmc_response_time(c, 0.9), mm1_response_time(0.9));
  }
}

TEST(MmcTest, SimulatedFreshGreedyLandsBetweenMmcAndMm1) {
  // k = n with nearly fresh info approximates JSQ: its response time must
  // fall between the M/M/c central-queue bound and the M/M/1 random split.
  driver::ExperimentConfig config;
  config.num_jobs = 150'000;
  config.warmup_jobs = 40'000;
  config.trials = 3;
  config.update_interval = 0.1;
  config.policy = "k_subset:10";
  const double simulated = driver::run_experiment(config).mean();
  EXPECT_GT(simulated, mmc_response_time(10, 0.9) * 0.98);
  EXPECT_LT(simulated, mm1_response_time(0.9));
}

}  // namespace
}  // namespace stale::queueing::theory
