// Integration tests validating the simulation engine against closed-form
// queueing theory and reproducing the paper's headline qualitative claims.
// Run lengths are chosen so each test takes well under a second yet the
// asserted effects are far larger than the simulation noise.
#include <gtest/gtest.h>

#include "driver/experiment.h"

namespace stale::driver {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig config;
  config.num_jobs = 150'000;
  config.warmup_jobs = 40'000;
  config.trials = 3;
  return config;
}

double mean_response(ExperimentConfig config) {
  return run_experiment(config).mean();
}

// --- engine validation against closed forms -------------------------------

TEST(QueueTheoryTest, RandomSplitIsMm1) {
  // Random dispatch splits the Poisson stream: each server is M/M/1 with
  // utilization lambda, so E[T] = 1 / (1 - lambda).
  for (double lambda : {0.3, 0.5, 0.8}) {
    ExperimentConfig config = base_config();
    config.lambda = lambda;
    config.policy = "random";
    const double expected = 1.0 / (1.0 - lambda);
    EXPECT_NEAR(mean_response(config), expected, expected * 0.05)
        << "lambda=" << lambda;
  }
}

TEST(QueueTheoryTest, RandomSplitMd1MatchesPollaczekKhinchine) {
  // Deterministic service: E[T] = 1 + rho / (2 (1 - rho)).
  ExperimentConfig config = base_config();
  config.lambda = 0.8;
  config.policy = "random";
  config.job_size = "det:1";
  const double expected = 1.0 + 0.8 / (2.0 * 0.2);
  EXPECT_NEAR(mean_response(config), expected, expected * 0.05);
}

TEST(QueueTheoryTest, RandomSplitMg1HyperexponentialMatchesPk) {
  // P-K: E[W] = lambda * E[S^2] / (2 (1 - rho)).
  ExperimentConfig config = base_config();
  config.lambda = 0.7;
  config.policy = "random";
  config.job_size = "hyper:0.5:0.5:1.5";  // mean 1.0
  const double second_moment = 2.0 * (0.5 * 0.25 + 0.5 * 2.25);
  const double expected = 1.0 + 0.7 * second_moment / (2.0 * 0.3);
  EXPECT_NEAR(mean_response(config), expected, expected * 0.06);
}

TEST(QueueTheoryTest, FreshGreedyApproachesJsqPerformance) {
  // k = n with nearly fresh info (T = 0.1) is join-shortest-queue-like:
  // far better than random at heavy load.
  ExperimentConfig config = base_config();
  config.lambda = 0.9;
  config.update_interval = 0.1;
  config.policy = "k_subset:10";
  const double greedy = mean_response(config);
  config.policy = "random";
  const double random = mean_response(config);
  EXPECT_LT(greedy, 0.4 * random);
}

TEST(QueueTheoryTest, PowerOfTwoChoicesBeatsRandomWhenFresh) {
  ExperimentConfig config = base_config();
  config.lambda = 0.9;
  config.update_interval = 0.1;
  config.policy = "k_subset:2";
  const double two_choices = mean_response(config);
  config.policy = "random";
  const double random = mean_response(config);
  EXPECT_LT(two_choices, 0.6 * random);
}

// --- the paper's qualitative claims ----------------------------------------

TEST(PaperClaimsTest, HerdEffectRuinsGreedyUnderStaleness) {
  // Claim (Section 1): sending to the apparent minimum behaves badly when
  // information is old — much worse than ignoring the information.
  ExperimentConfig config = base_config();
  config.update_interval = 16.0;
  config.policy = "k_subset:10";
  const double greedy = mean_response(config);
  config.policy = "random";
  const double random = mean_response(config);
  EXPECT_GT(greedy, 2.0 * random);
}

TEST(PaperClaimsTest, LiMatchesAggressiveAlgorithmsWhenFresh) {
  // Claim (1): with fresh information LI matches the most aggressive
  // algorithm instead of paying a conservativeness penalty.
  ExperimentConfig config = base_config();
  config.update_interval = 0.1;
  config.policy = "k_subset:10";
  const double greedy = mean_response(config);
  config.policy = "aggressive_li";
  const double aggressive_li = mean_response(config);
  EXPECT_LT(aggressive_li, greedy * 1.15);
}

TEST(PaperClaimsTest, LiBeatsEveryKSubsetAtModerateStaleness) {
  // Claim (2): at moderate information age LI outperforms the best of the
  // other algorithms (the paper reports up to ~60%).
  ExperimentConfig config = base_config();
  config.update_interval = 8.0;
  double best_other = 1e9;
  for (const char* policy : {"random", "k_subset:2", "k_subset:3"}) {
    config.policy = policy;
    best_other = std::min(best_other, mean_response(config));
  }
  config.policy = "basic_li";
  const double basic = mean_response(config);
  config.policy = "aggressive_li";
  const double aggressive = mean_response(config);
  EXPECT_LT(std::min(basic, aggressive), best_other * 0.9);
}

TEST(PaperClaimsTest, LiStillBeatsRandomAtHighStaleness) {
  // Claim (3): when information is quite old LI still significantly
  // outperforms random distribution.
  ExperimentConfig config = base_config();
  config.update_interval = 32.0;
  config.policy = "random";
  const double random = mean_response(config);
  config.policy = "aggressive_li";
  EXPECT_LT(mean_response(config), random);
}

TEST(PaperClaimsTest, LiNeverPathologicalEvenWhenAncient) {
  // Claim (4): LI avoids pathological behaviour even for extremely old
  // information — it degrades to (at worst) random.
  ExperimentConfig config = base_config();
  config.update_interval = 128.0;
  config.policy = "random";
  const double random = mean_response(config);
  for (const char* policy : {"basic_li", "aggressive_li", "hybrid_li"}) {
    config.policy = policy;
    EXPECT_LT(mean_response(config), random * 1.1) << policy;
  }
}

TEST(PaperClaimsTest, KSubsetDegradesWithStalenessButLiDoesNot) {
  // The crossover structure of Figure 2: k = 2's response time grows much
  // more from T = 0.1 to T = 32 than Basic LI's.
  ExperimentConfig fresh = base_config();
  fresh.update_interval = 0.1;
  ExperimentConfig stale_cfg = base_config();
  stale_cfg.update_interval = 32.0;

  fresh.policy = stale_cfg.policy = "k_subset:2";
  const double k2_growth =
      mean_response(stale_cfg) / mean_response(fresh);
  fresh.policy = stale_cfg.policy = "basic_li";
  const double li_growth = mean_response(stale_cfg) / mean_response(fresh);
  EXPECT_GT(k2_growth, li_growth);
}

TEST(PaperClaimsTest, UnderestimatingArrivalRateHurtsMost) {
  // Section 5.6: dividing the believed rate by 8 degrades LI badly, while
  // multiplying by 2 costs little.
  ExperimentConfig config = base_config();
  config.update_interval = 8.0;
  config.policy = "basic_li";
  const double exact = mean_response(config);
  config.lambda_error_factor = 0.125;
  const double under = mean_response(config);
  config.lambda_error_factor = 2.0;
  const double over = mean_response(config);
  EXPECT_GT(under, exact * 1.5);
  EXPECT_LT(over, exact * 1.25);
}

TEST(PaperClaimsTest, ConservativeMaxThroughputEstimateIsNearlyFree) {
  // Section 5.6 / Figure 13: assuming lambda-hat = 1.0 per server costs
  // under a few percent across loads.
  for (double lambda : {0.5, 0.9}) {
    ExperimentConfig config = base_config();
    config.lambda = lambda;
    config.update_interval = 10.0;
    config.policy = "basic_li";
    const double exact = mean_response(config);
    config.lambda_estimate_per_server = 1.0;
    const double conservative = mean_response(config);
    EXPECT_LT(conservative, exact * 1.10) << "lambda=" << lambda;
  }
}

TEST(PaperClaimsTest, LiSubsetBeatsPlainKSubsetUnderPeriodicStaleness) {
  // Section 5.7 / Figure 14: at the same information budget k, interpreting
  // the k loads beats greedily taking their minimum once info is stale.
  ExperimentConfig config = base_config();
  config.update_interval = 8.0;
  config.policy = "k_subset:3";
  const double plain = mean_response(config);
  config.policy = "basic_li_k:3";
  const double interpreted = mean_response(config);
  EXPECT_LT(interpreted, plain);
}

TEST(PaperClaimsTest, MoreInformationHelpsLi) {
  // Section 5.7: unlike k-subset (where more info can hurt), LI improves
  // monotonically (weakly) with more information.
  ExperimentConfig config = base_config();
  config.update_interval = 4.0;
  config.policy = "basic_li_k:2";
  const double li2 = mean_response(config);
  config.policy = "basic_li";
  const double full = mean_response(config);
  EXPECT_LT(full, li2 * 1.05);
}

TEST(PaperClaimsTest, LightLoadShrinksEveryGap) {
  // Figure 3: at lambda = 0.5 the spread between algorithms narrows.
  ExperimentConfig config = base_config();
  config.lambda = 0.5;
  config.update_interval = 8.0;
  config.policy = "random";
  const double random = mean_response(config);
  config.policy = "basic_li";
  const double li = mean_response(config);
  EXPECT_LT(li, random);
  EXPECT_GT(li, random * 0.5);  // gains are modest at light load
}

TEST(PaperClaimsTest, HundredServerClusterBehavesLikeTen) {
  // Figure 4: same qualitative ordering at n = 100.
  ExperimentConfig config = base_config();
  config.num_servers = 100;
  config.num_jobs = 200'000;
  config.warmup_jobs = 50'000;
  config.trials = 2;
  config.update_interval = 8.0;
  config.policy = "k_subset:100";
  const double greedy = mean_response(config);
  config.policy = "basic_li";
  const double li = mean_response(config);
  config.policy = "random";
  const double random = mean_response(config);
  EXPECT_GT(greedy, random);  // herd effect persists
  EXPECT_LT(li, random);      // LI still wins
}

}  // namespace
}  // namespace stale::driver
