#include "core/load_interpretation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "sim/rng.h"

namespace stale::core {
namespace {

using ::testing::TestWithParam;

TEST(BasicLiTest, HandComputedSufficientArrivals) {
  // b = {0, 2, 4}, K = 10: all three servers fill to level (0+2+4+10)/3.
  const std::vector<double> loads = {0.0, 2.0, 4.0};
  const auto p = basic_li_probabilities(std::span<const double>(loads), 10.0);
  EXPECT_NEAR(p[0], 16.0 / 30.0, 1e-12);
  EXPECT_NEAR(p[1], 10.0 / 30.0, 1e-12);
  EXPECT_NEAR(p[2], 4.0 / 30.0, 1e-12);
}

TEST(BasicLiTest, HandComputedInsufficientArrivals) {
  // b = {0, 2, 4}, K = 3: only the two least-loaded servers can level
  // (Eq. 3 gives m = 2); level = (0 + 2 + 3) / 2 = 2.5.
  const std::vector<double> loads = {0.0, 2.0, 4.0};
  const auto p = basic_li_probabilities(std::span<const double>(loads), 3.0);
  EXPECT_NEAR(p[0], 2.5 / 3.0, 1e-12);
  EXPECT_NEAR(p[1], 0.5 / 3.0, 1e-12);
  EXPECT_EQ(p[2], 0.0);
}

TEST(BasicLiTest, SeverelyInsufficientArrivalsGoToLeastLoaded) {
  const std::vector<double> loads = {0.0, 2.0, 4.0};
  const auto p = basic_li_probabilities(std::span<const double>(loads), 1.0);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_EQ(p[1], 0.0);
  EXPECT_EQ(p[2], 0.0);
}

TEST(BasicLiTest, UnsortedInputHandled) {
  const std::vector<double> loads = {4.0, 0.0, 2.0};
  const auto p = basic_li_probabilities(std::span<const double>(loads), 10.0);
  EXPECT_NEAR(p[1], 16.0 / 30.0, 1e-12);
  EXPECT_NEAR(p[2], 10.0 / 30.0, 1e-12);
  EXPECT_NEAR(p[0], 4.0 / 30.0, 1e-12);
}

TEST(BasicLiTest, ZeroArrivalsLimitIsUniformOverMinima) {
  const std::vector<double> loads = {1.0, 1.0, 3.0};
  const auto p = basic_li_probabilities(std::span<const double>(loads), 0.0);
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
  EXPECT_EQ(p[2], 0.0);
}

TEST(BasicLiTest, LargeArrivalsLimitIsUniform) {
  const std::vector<double> loads = {0.0, 5.0, 10.0};
  const auto p =
      basic_li_probabilities(std::span<const double>(loads), 1e9);
  for (double v : p) EXPECT_NEAR(v, 1.0 / 3.0, 1e-6);
}

TEST(BasicLiTest, EqualLoadsGiveUniform) {
  const std::vector<double> loads = {7.0, 7.0, 7.0, 7.0};
  for (double k : {0.0, 0.5, 100.0}) {
    const auto p = basic_li_probabilities(std::span<const double>(loads), k);
    for (double v : p) EXPECT_NEAR(v, 0.25, 1e-12) << "K=" << k;
  }
}

TEST(BasicLiTest, IntOverloadMatchesDouble) {
  const std::vector<int> int_loads = {0, 2, 4};
  const std::vector<double> dbl_loads = {0.0, 2.0, 4.0};
  const auto a = basic_li_probabilities(std::span<const int>(int_loads), 5.0);
  const auto b =
      basic_li_probabilities(std::span<const double>(dbl_loads), 5.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(BasicLiTest, SingleServerGetsEverything) {
  const std::vector<double> loads = {9.0};
  const auto p = basic_li_probabilities(std::span<const double>(loads), 3.0);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
}

TEST(BasicLiTest, RejectsBadInput) {
  const std::vector<double> empty;
  EXPECT_THROW(basic_li_probabilities(std::span<const double>(empty), 1.0),
               std::invalid_argument);
  const std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW(basic_li_probabilities(std::span<const double>(negative), 1.0),
               std::invalid_argument);
  const std::vector<double> fine = {1.0, 2.0};
  EXPECT_THROW(basic_li_probabilities(std::span<const double>(fine), -1.0),
               std::invalid_argument);
}

TEST(BasicLiWeightedTest, ReducesToUnweightedForEqualRates) {
  const std::vector<double> loads = {1.0, 4.0, 2.0, 0.0};
  const std::vector<double> rates = {1.0, 1.0, 1.0, 1.0};
  const auto a = basic_li_probabilities(std::span<const double>(loads), 6.0);
  const auto b = basic_li_probabilities_weighted(loads, rates, 6.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-12);
  }
}

TEST(BasicLiWeightedTest, HandComputedHeterogeneous) {
  // Equal (zero) backlogs, rates 1 and 3, K = 4: the fill is proportional to
  // rate, so p = {1/4, 3/4}.
  const std::vector<double> loads = {0.0, 0.0};
  const std::vector<double> rates = {1.0, 3.0};
  const auto p = basic_li_probabilities_weighted(loads, rates, 4.0);
  EXPECT_NEAR(p[0], 0.25, 1e-12);
  EXPECT_NEAR(p[1], 0.75, 1e-12);
}

TEST(BasicLiWeightedTest, FastServerAbsorbsBacklogFirst) {
  // Server 0: load 2, rate 1 (normalized 2.0); server 1: load 2, rate 4
  // (normalized 0.5). With small K everything goes to the fast server.
  const std::vector<double> loads = {2.0, 2.0};
  const std::vector<double> rates = {1.0, 4.0};
  const auto p = basic_li_probabilities_weighted(loads, rates, 1.0);
  EXPECT_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
}

TEST(BasicLiWeightedTest, ZeroArrivalsSharesByRateAmongMinima) {
  const std::vector<double> loads = {0.0, 0.0, 5.0};
  const std::vector<double> rates = {1.0, 3.0, 1.0};
  const auto p = basic_li_probabilities_weighted(loads, rates, 0.0);
  EXPECT_NEAR(p[0], 0.25, 1e-12);
  EXPECT_NEAR(p[1], 0.75, 1e-12);
  EXPECT_EQ(p[2], 0.0);
}

TEST(BasicLiWeightedTest, RejectsMismatchedAndBadRates) {
  const std::vector<double> loads = {1.0, 2.0};
  const std::vector<double> short_rates = {1.0};
  EXPECT_THROW(basic_li_probabilities_weighted(loads, short_rates, 1.0),
               std::invalid_argument);
  const std::vector<double> zero_rates = {1.0, 0.0};
  EXPECT_THROW(basic_li_probabilities_weighted(loads, zero_rates, 1.0),
               std::invalid_argument);
}

TEST(HybridLiTest, FirstIntervalProportionalToDeficit) {
  const std::vector<double> loads = {1.0, 3.0, 5.0};
  const auto p = hybrid_li_first_interval_probabilities(loads);
  // Deficits below the max (5): 4, 2, 0 -> probabilities 4/6, 2/6, 0.
  EXPECT_NEAR(p[0], 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(p[1], 2.0 / 6.0, 1e-12);
  EXPECT_EQ(p[2], 0.0);
  EXPECT_DOUBLE_EQ(hybrid_li_first_interval_jobs(loads), 6.0);
}

TEST(HybridLiTest, EqualLoadsFallBackToUniform) {
  const std::vector<double> loads = {2.0, 2.0};
  const auto p = hybrid_li_first_interval_probabilities(loads);
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
  EXPECT_DOUBLE_EQ(hybrid_li_first_interval_jobs(loads), 0.0);
}

// ---------------------------------------------------------------------------
// Property sweep: invariants over random load vectors and K values.
// ---------------------------------------------------------------------------

struct LiPropertyCase {
  int num_servers;
  double max_load;
  double expected_arrivals;
};

class BasicLiPropertyTest : public TestWithParam<LiPropertyCase> {};

TEST_P(BasicLiPropertyTest, InvariantsHoldOnRandomVectors) {
  const LiPropertyCase param = GetParam();
  sim::Rng rng(0xC0FFEE ^ static_cast<std::uint64_t>(param.num_servers));
  for (int rep = 0; rep < 200; ++rep) {
    std::vector<double> loads(static_cast<std::size_t>(param.num_servers));
    for (double& b : loads) {
      b = std::floor(rng.next_double() * param.max_load);
    }
    const auto p = basic_li_probabilities(std::span<const double>(loads),
                                          param.expected_arrivals);

    // (1) Valid probability vector.
    double sum = 0.0;
    for (double v : p) {
      ASSERT_GE(v, 0.0);
      sum += v;
    }
    ASSERT_NEAR(sum, 1.0, 1e-9);

    // (2) Monotone: lower reported load never gets a smaller share.
    for (std::size_t i = 0; i < loads.size(); ++i) {
      for (std::size_t j = 0; j < loads.size(); ++j) {
        if (loads[i] < loads[j]) {
          ASSERT_GE(p[i] + 1e-12, p[j])
              << "load " << loads[i] << " vs " << loads[j];
        }
      }
    }

    // (3) Equalization: servers receiving probability end at a common level
    // b_i + K * p_i = L, and servers receiving none already sit at or above
    // that level.
    if (param.expected_arrivals > 0.0) {
      double level = -1.0;
      for (std::size_t i = 0; i < loads.size(); ++i) {
        if (p[i] > 1e-9) {
          const double end = loads[i] + param.expected_arrivals * p[i];
          if (level < 0.0) {
            level = end;
          } else {
            ASSERT_NEAR(end, level, 1e-6);
          }
        }
      }
      for (std::size_t i = 0; i < loads.size(); ++i) {
        if (p[i] <= 1e-9) {
          ASSERT_GE(loads[i] + 1e-6, level);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BasicLiPropertyTest,
    ::testing::Values(LiPropertyCase{2, 5.0, 0.5},
                      LiPropertyCase{2, 5.0, 10.0},
                      LiPropertyCase{5, 10.0, 0.0},
                      LiPropertyCase{5, 10.0, 3.0},
                      LiPropertyCase{10, 20.0, 9.0},
                      LiPropertyCase{10, 20.0, 90.0},
                      LiPropertyCase{50, 8.0, 45.0},
                      LiPropertyCase{100, 50.0, 500.0}));

class WeightedLiPropertyTest : public TestWithParam<LiPropertyCase> {};

TEST_P(WeightedLiPropertyTest, WeightedInvariantsHold) {
  const LiPropertyCase param = GetParam();
  sim::Rng rng(0xFACE ^ static_cast<std::uint64_t>(param.num_servers));
  for (int rep = 0; rep < 100; ++rep) {
    std::vector<double> loads(static_cast<std::size_t>(param.num_servers));
    std::vector<double> rates(loads.size());
    for (std::size_t i = 0; i < loads.size(); ++i) {
      loads[i] = std::floor(rng.next_double() * param.max_load);
      rates[i] = 0.5 + 2.0 * rng.next_double();
    }
    const auto p = basic_li_probabilities_weighted(loads, rates,
                                                   param.expected_arrivals);
    double sum = 0.0;
    for (double v : p) {
      ASSERT_GE(v, 0.0);
      sum += v;
    }
    ASSERT_NEAR(sum, 1.0, 1e-9);

    // Equalization in normalized units: (b_i + K p_i) / c_i constant over
    // the filled set; unfilled servers sit at or above that level.
    if (param.expected_arrivals > 0.0) {
      double level = -1.0;
      for (std::size_t i = 0; i < loads.size(); ++i) {
        const double end =
            (loads[i] + param.expected_arrivals * p[i]) / rates[i];
        if (p[i] > 1e-9) {
          if (level < 0.0) {
            level = end;
          } else {
            ASSERT_NEAR(end, level, 1e-6);
          }
        }
      }
      for (std::size_t i = 0; i < loads.size(); ++i) {
        if (p[i] <= 1e-9) {
          ASSERT_GE(loads[i] / rates[i] + 1e-6, level);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WeightedLiPropertyTest,
    ::testing::Values(LiPropertyCase{2, 5.0, 2.0},
                      LiPropertyCase{5, 10.0, 8.0},
                      LiPropertyCase{10, 20.0, 30.0},
                      LiPropertyCase{25, 10.0, 100.0}));

}  // namespace
}  // namespace stale::core
