#include "core/aggressive_schedule.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "sim/rng.h"

namespace stale::core {
namespace {

TEST(AggressiveScheduleTest, HandComputedCumulativeJobs) {
  // b = {0, 2, 4}: C_1 = 1*2 - 0 = 2, C_2 = 2*4 - (0+2) = 6.
  const std::vector<double> loads = {0.0, 2.0, 4.0};
  const AggressiveSchedule schedule = make_aggressive_schedule(loads);
  ASSERT_EQ(schedule.cum_jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(schedule.cum_jobs[0], 2.0);
  EXPECT_DOUBLE_EQ(schedule.cum_jobs[1], 6.0);
  EXPECT_EQ(schedule.order, (std::vector<int>{0, 1, 2}));
}

TEST(AggressiveScheduleTest, OrderSortsByLoadWithIndexTieBreak) {
  const std::vector<double> loads = {3.0, 1.0, 3.0, 0.0};
  const AggressiveSchedule schedule = make_aggressive_schedule(loads);
  EXPECT_EQ(schedule.order, (std::vector<int>{3, 1, 0, 2}));
}

TEST(AggressiveScheduleTest, GroupAtWalksTheSchedule) {
  const std::vector<double> loads = {0.0, 2.0, 4.0};
  const AggressiveSchedule schedule = make_aggressive_schedule(loads);
  EXPECT_EQ(aggressive_group_at(schedule, 0.0), 1);
  EXPECT_EQ(aggressive_group_at(schedule, 1.9), 1);
  EXPECT_EQ(aggressive_group_at(schedule, 2.0), 2);  // boundary -> next group
  EXPECT_EQ(aggressive_group_at(schedule, 5.9), 2);
  EXPECT_EQ(aggressive_group_at(schedule, 6.0), 3);
  EXPECT_EQ(aggressive_group_at(schedule, 1e9), 3);
}

TEST(AggressiveScheduleTest, StationaryGroupIsSmallestCovering) {
  const std::vector<double> loads = {0.0, 2.0, 4.0};
  const AggressiveSchedule schedule = make_aggressive_schedule(loads);
  EXPECT_EQ(aggressive_stationary_group(schedule, 0.0), 1);
  EXPECT_EQ(aggressive_stationary_group(schedule, 2.0), 1);  // C_1 == K
  EXPECT_EQ(aggressive_stationary_group(schedule, 2.1), 2);
  EXPECT_EQ(aggressive_stationary_group(schedule, 6.0), 2);
  EXPECT_EQ(aggressive_stationary_group(schedule, 6.1), 3);
}

TEST(AggressiveScheduleTest, TiesCreateZeroLengthSubintervals) {
  const std::vector<double> loads = {5.0, 5.0, 5.0};
  const AggressiveSchedule schedule = make_aggressive_schedule(loads);
  EXPECT_DOUBLE_EQ(schedule.cum_jobs[0], 0.0);
  EXPECT_DOUBLE_EQ(schedule.cum_jobs[1], 0.0);
  // With everything tied, any elapsed work puts us in the uniform group.
  EXPECT_EQ(aggressive_group_at(schedule, 0.0), 3);
  EXPECT_EQ(aggressive_group_at(schedule, 0.1), 3);
  // The stationary rule covers K > 0 with the full group as well.
  EXPECT_EQ(aggressive_stationary_group(schedule, 0.5), 3);
}

TEST(AggressiveScheduleTest, PartialTiesSkipAhead) {
  // b = {1, 1, 4}: C_1 = 0 (tie), C_2 = 2*4 - 2 = 6.
  const std::vector<double> loads = {1.0, 1.0, 4.0};
  const AggressiveSchedule schedule = make_aggressive_schedule(loads);
  EXPECT_EQ(aggressive_group_at(schedule, 0.0), 2);  // both minima share
  EXPECT_EQ(aggressive_group_at(schedule, 5.9), 2);
  EXPECT_EQ(aggressive_group_at(schedule, 6.0), 3);
}

TEST(AggressiveScheduleTest, GroupProbabilitiesUniformOverGroup) {
  const std::vector<double> loads = {4.0, 0.0, 2.0};
  const AggressiveSchedule schedule = make_aggressive_schedule(loads);
  const auto p = aggressive_group_probabilities(schedule, 2);
  EXPECT_DOUBLE_EQ(p[1], 0.5);  // least loaded
  EXPECT_DOUBLE_EQ(p[2], 0.5);  // second least
  EXPECT_EQ(p[0], 0.0);
}

TEST(AggressiveScheduleTest, GroupProbabilitiesValidateGroup) {
  const std::vector<double> loads = {1.0, 2.0};
  const AggressiveSchedule schedule = make_aggressive_schedule(loads);
  EXPECT_THROW(aggressive_group_probabilities(schedule, 0),
               std::invalid_argument);
  EXPECT_THROW(aggressive_group_probabilities(schedule, 3),
               std::invalid_argument);
}

TEST(AggressiveScheduleTest, SingleServer) {
  const std::vector<double> loads = {7.0};
  const AggressiveSchedule schedule = make_aggressive_schedule(loads);
  EXPECT_TRUE(schedule.cum_jobs.empty());
  EXPECT_EQ(aggressive_group_at(schedule, 0.0), 1);
  EXPECT_EQ(aggressive_stationary_group(schedule, 100.0), 1);
}

TEST(AggressiveScheduleTest, RejectsBadInput) {
  const std::vector<double> empty;
  EXPECT_THROW(make_aggressive_schedule(std::span<const double>(empty)),
               std::invalid_argument);
  const std::vector<double> negative = {-1.0};
  EXPECT_THROW(make_aggressive_schedule(std::span<const double>(negative)),
               std::invalid_argument);
  const std::vector<double> fine = {1.0, 2.0};
  const AggressiveSchedule schedule = make_aggressive_schedule(fine);
  EXPECT_THROW(aggressive_group_at(schedule, -1.0), std::invalid_argument);
  EXPECT_THROW(aggressive_stationary_group(schedule, -1.0),
               std::invalid_argument);
}

TEST(AggressiveLiTest, PeriodicConvenienceMatchesSchedule) {
  const std::vector<double> loads = {0.0, 2.0, 4.0};
  // lambda_total * elapsed = 3 expected arrivals -> group 2.
  const auto p = aggressive_li_probabilities(loads, 6.0, 0.5);
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
  EXPECT_EQ(p[2], 0.0);
}

TEST(AggressiveLiTest, StationaryConvenienceMatchesSchedule) {
  const std::vector<double> loads = {0.0, 2.0, 4.0};
  const auto p = aggressive_li_stationary_probabilities(loads, 6.5);
  for (double v : p) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

TEST(AggressiveLiTest, FreshInformationIsGreedy) {
  const std::vector<double> loads = {3.0, 1.0, 2.0};
  const auto p = aggressive_li_probabilities(loads, 9.0, 0.0);
  EXPECT_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
  EXPECT_EQ(p[2], 0.0);
}

// Property sweep: the schedule's invariants over random vectors.
class AggressivePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AggressivePropertyTest, ScheduleInvariants) {
  const int n = GetParam();
  sim::Rng rng(0xA66 ^ static_cast<std::uint64_t>(n));
  for (int rep = 0; rep < 200; ++rep) {
    std::vector<double> loads(static_cast<std::size_t>(n));
    for (double& b : loads) b = std::floor(rng.next_double() * 12.0);
    const AggressiveSchedule schedule = make_aggressive_schedule(loads);

    // order is a permutation sorted by load.
    std::vector<int> sorted = schedule.order;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < n; ++i) ASSERT_EQ(sorted[static_cast<std::size_t>(i)], i);
    for (std::size_t j = 1; j < schedule.order.size(); ++j) {
      ASSERT_LE(loads[static_cast<std::size_t>(schedule.order[j - 1])],
                loads[static_cast<std::size_t>(schedule.order[j])]);
    }

    // cum_jobs is non-negative and non-decreasing.
    double prev = 0.0;
    for (double c : schedule.cum_jobs) {
      ASSERT_GE(c, prev - 1e-12);
      prev = c;
    }

    // Group is non-decreasing in elapsed work; stationary group likewise
    // non-decreasing in K.
    int prev_group = 0;
    for (double x = 0.0; x <= prev + 1.0; x += (prev + 1.0) / 17.0) {
      const int group = aggressive_group_at(schedule, x);
      ASSERT_GE(group, prev_group);
      ASSERT_GE(group, 1);
      ASSERT_LE(group, n);
      prev_group = group;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AggressivePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 10, 50));

}  // namespace
}  // namespace stale::core
