#include "obs/svg_plot.h"

#include <gtest/gtest.h>

namespace stale::obs {
namespace {

std::vector<PlotSeries> sample_series() {
  return {PlotSeries{"alpha", {{1.0, 2.0}, {2.0, 4.0}, {4.0, 8.0}}},
          PlotSeries{"beta", {{1.0, 3.0}, {2.0, 3.5}, {4.0, 5.0}}}};
}

std::size_t count(const std::string& text, const std::string& needle) {
  std::size_t total = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++total;
  }
  return total;
}

TEST(RenderLineChartTest, EmitsValidSvgSkeleton) {
  PlotOptions options;
  options.title = "A <Title> & more";
  const std::string svg = render_line_chart(sample_series(), options);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("A &lt;Title&gt; &amp; more"), std::string::npos);
}

TEST(RenderLineChartTest, OnePolylinePerSeriesPlusLegend) {
  const std::string svg = render_line_chart(sample_series(), {});
  EXPECT_EQ(count(svg, "<polyline"), 2u);
  EXPECT_NE(svg.find(">alpha</text>"), std::string::npos);
  EXPECT_NE(svg.find(">beta</text>"), std::string::npos);
  // One marker circle per point.
  EXPECT_EQ(count(svg, "<circle"), 6u);
}

TEST(RenderLineChartTest, LogAxesAcceptPositiveData) {
  PlotOptions options;
  options.log_x = true;
  options.log_y = true;
  EXPECT_NO_THROW(render_line_chart(sample_series(), options));
}

TEST(RenderLineChartTest, LogAxisRejectsNonPositive) {
  PlotOptions options;
  options.log_y = true;
  std::vector<PlotSeries> series = {PlotSeries{"s", {{1.0, 0.0}}}};
  EXPECT_THROW(render_line_chart(series, options), std::invalid_argument);
}

TEST(RenderLineChartTest, RejectsEmptyInput) {
  EXPECT_THROW(render_line_chart({}, {}), std::invalid_argument);
  std::vector<PlotSeries> empty_points = {PlotSeries{"s", {}}};
  EXPECT_THROW(render_line_chart(empty_points, {}), std::invalid_argument);
}

TEST(RenderLineChartTest, SinglePointDoesNotDivideByZero) {
  std::vector<PlotSeries> series = {PlotSeries{"s", {{1.0, 1.0}}}};
  EXPECT_NO_THROW(render_line_chart(series, {}));
}

TEST(ParseSweepCsvTest, ParsesHeaderAndCiCells) {
  const std::string csv =
      "T,random,basic_li\n"
      "0.5,9.58+-0.82,2.49+-0.12\n"
      "2,9.58+-0.82,3.33+-0.13\n";
  const auto series = parse_sweep_csv(csv);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].label, "random");
  EXPECT_EQ(series[1].label, "basic_li");
  ASSERT_EQ(series[1].points.size(), 2u);
  EXPECT_DOUBLE_EQ(series[1].points[0].first, 0.5);
  EXPECT_DOUBLE_EQ(series[1].points[0].second, 2.49);
  EXPECT_DOUBLE_EQ(series[1].points[1].second, 3.33);
}

TEST(ParseSweepCsvTest, SkipsCommentsAndKeepsLastPanel) {
  const std::string csv =
      "# Figure 6 header\n"
      "T,first\n"
      "1,1.0\n"
      "T,second\n"
      "1,5.0\n"
      "2,6.0\n";
  const auto series = parse_sweep_csv(csv);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].label, "second");
  EXPECT_EQ(series[0].points.size(), 2u);
}

TEST(ParseSweepCsvTest, IgnoresUnparsableCells) {
  const std::string csv =
      "T,a\n"
      "1,not_a_number\n"
      "2,4.0\n";
  const auto series = parse_sweep_csv(csv);
  ASSERT_EQ(series.size(), 1u);
  ASSERT_EQ(series[0].points.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].points[0].second, 4.0);
}

TEST(ParseSweepCsvTest, EmptyInputYieldsNothing) {
  EXPECT_TRUE(parse_sweep_csv("").empty());
  EXPECT_TRUE(parse_sweep_csv("# just a comment\n").empty());
}

TEST(ParseSweepCsvTest, RoundTripsWithRenderer) {
  const std::string csv =
      "T,random,basic_li\n"
      "0.5,9.58+-0.82,2.49+-0.12\n"
      "8,9.58+-0.82,4.75+-0.20\n";
  const auto series = parse_sweep_csv(csv);
  PlotOptions options;
  options.log_x = true;
  const std::string svg = render_line_chart(series, options);
  EXPECT_EQ(count(svg, "<polyline"), 2u);
}

}  // namespace
}  // namespace stale::obs
