#include <gtest/gtest.h>

#include <vector>

#include "driver/adaptive.h"
#include "driver/experiment.h"
#include "queueing/load_stats.h"

namespace stale {
namespace {

TEST(LoadImbalanceStatsTest, HandComputedSnapshot) {
  queueing::LoadImbalanceStats stats;
  const std::vector<int> loads = {0, 2, 4};  // mean 2, var 8/3, max 4
  stats.observe(loads);
  EXPECT_EQ(stats.snapshots(), 1u);
  EXPECT_NEAR(stats.mean_within_snapshot_stddev(), std::sqrt(8.0 / 3.0),
              1e-12);
  EXPECT_DOUBLE_EQ(stats.mean_snapshot_max(), 4.0);
  EXPECT_DOUBLE_EQ(stats.mean_queue_length(), 2.0);
}

TEST(LoadImbalanceStatsTest, BalancedSnapshotHasZeroSpread) {
  queueing::LoadImbalanceStats stats;
  const std::vector<int> loads = {3, 3, 3, 3};
  stats.observe(loads);
  EXPECT_DOUBLE_EQ(stats.mean_within_snapshot_stddev(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_snapshot_max(), 3.0);
}

TEST(LoadImbalanceStatsTest, StrideSkipsObservations) {
  queueing::LoadImbalanceStats stats(3);
  const std::vector<int> loads = {1, 1};
  for (int i = 0; i < 10; ++i) stats.observe(loads);
  EXPECT_EQ(stats.snapshots(), 3u);  // calls 3, 6, 9
}

TEST(LoadImbalanceStatsTest, AveragesAcrossSnapshots) {
  queueing::LoadImbalanceStats stats;
  stats.observe(std::vector<int>{0, 0});
  stats.observe(std::vector<int>{0, 4});
  EXPECT_DOUBLE_EQ(stats.mean_snapshot_max(), 2.0);
  EXPECT_DOUBLE_EQ(stats.mean_within_snapshot_stddev(), 1.0);  // (0 + 2) / 2
  EXPECT_DOUBLE_EQ(stats.mean_queue_length(), 1.0);
}

TEST(LoadImbalanceStatsTest, RejectsZeroStride) {
  EXPECT_THROW(queueing::LoadImbalanceStats(0), std::invalid_argument);
}

TEST(ImbalanceInDriverTest, HerdingInflatesQueueSpread) {
  // The instrumented claim behind ablation_herd_imbalance: at stale T the
  // k = n policy's queue-length dispersion dwarfs Basic LI's.
  driver::ExperimentConfig config;
  config.num_jobs = 80'000;
  config.warmup_jobs = 20'000;
  config.trials = 1;
  config.update_interval = 16.0;

  config.policy = "k_subset:10";
  const auto herding = driver::run_trial(config, 7);
  config.policy = "basic_li";
  const auto li = driver::run_trial(config, 7);

  EXPECT_GT(herding.mean_queue_stddev, 3.0 * li.mean_queue_stddev);
  EXPECT_GT(herding.mean_queue_max, li.mean_queue_max);
  EXPECT_GT(li.mean_queue_stddev, 0.0);
}

TEST(PercentilesInDriverTest, TailFieldsPopulatedOnDemand) {
  driver::ExperimentConfig config;
  config.num_jobs = 40'000;
  config.warmup_jobs = 10'000;
  config.trials = 1;
  config.update_interval = 4.0;

  const auto without = driver::run_trial(config, 3);
  EXPECT_EQ(without.p99_response, 0.0);  // not collected by default

  config.keep_response_samples = true;
  const auto with = driver::run_trial(config, 3);
  EXPECT_GT(with.p50_response, 0.9);
  EXPECT_GE(with.p95_response, with.p50_response);
  EXPECT_GE(with.p99_response, with.p95_response);
  // For exponential-ish response distributions the p99 is well above the
  // mean; and the mean itself is unchanged by sample retention.
  EXPECT_GT(with.p99_response, with.mean_response);
  EXPECT_EQ(with.mean_response, without.mean_response);
}

TEST(PercentilesInDriverTest, HerdingInflatesTheTailMoreThanTheMean) {
  driver::ExperimentConfig config;
  config.num_jobs = 80'000;
  config.warmup_jobs = 20'000;
  config.trials = 1;
  config.update_interval = 16.0;
  config.keep_response_samples = true;

  config.policy = "k_subset:10";
  const auto herd = driver::run_trial(config, 11);
  config.policy = "basic_li";
  const auto li = driver::run_trial(config, 11);
  EXPECT_GT(herd.p99_response, 2.0 * li.p99_response);
}

TEST(AdaptiveRunnerTest, ConvergesOnLowVarianceConfig) {
  driver::ExperimentConfig config;
  config.lambda = 0.5;  // low variance: few trials needed
  config.num_jobs = 60'000;
  config.warmup_jobs = 15'000;
  driver::AdaptiveOptions options;
  options.relative_precision = 0.05;
  options.min_trials = 3;
  options.max_trials = 20;
  const auto outcome = driver::run_until_confident(config, options);
  EXPECT_TRUE(outcome.converged);
  EXPECT_GE(outcome.trials_used, 3);
  EXPECT_LE(outcome.trials_used, 20);
  const double mean = outcome.result.mean();
  EXPECT_LE(outcome.result.ci90() / mean, 0.05);
}

TEST(AdaptiveRunnerTest, RespectsTrialBudget) {
  driver::ExperimentConfig config;
  config.lambda = 0.9;
  config.num_jobs = 20'000;
  config.warmup_jobs = 5'000;
  driver::AdaptiveOptions options;
  options.relative_precision = 1e-6;  // unreachable
  options.min_trials = 2;
  options.max_trials = 4;
  const auto outcome = driver::run_until_confident(config, options);
  EXPECT_FALSE(outcome.converged);
  EXPECT_EQ(outcome.trials_used, 4);
}

TEST(AdaptiveRunnerTest, SeedSequenceMatchesFixedRunner) {
  // The adaptive runner must be a prefix extension of run_experiment: its
  // first trials use the same seeds, hence produce the same means.
  driver::ExperimentConfig config;
  config.num_jobs = 20'000;
  config.warmup_jobs = 5'000;
  config.trials = 3;
  const auto fixed = driver::run_experiment(config);
  driver::AdaptiveOptions options;
  options.relative_precision = 1e-9;
  options.min_trials = 3;
  options.max_trials = 3;
  const auto adaptive = driver::run_until_confident(config, options);
  ASSERT_EQ(adaptive.result.trial_means.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(adaptive.result.trial_means[i], fixed.trial_means[i]);
  }
}

TEST(AdaptiveRunnerTest, RejectsBadOptions) {
  driver::ExperimentConfig config;
  driver::AdaptiveOptions options;
  options.relative_precision = 0.0;
  EXPECT_THROW(driver::run_until_confident(config, options),
               std::invalid_argument);
  options.relative_precision = 0.05;
  options.min_trials = 1;
  EXPECT_THROW(driver::run_until_confident(config, options),
               std::invalid_argument);
  options.min_trials = 5;
  options.max_trials = 4;
  EXPECT_THROW(driver::run_until_confident(config, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace stale
