// Balanced suppression block: END repeats BEGIN's rules (any order).
// NOLINTBEGIN(staleload-d2-raw-rng, staleload-d3-unordered-iteration)
#include <unordered_map>

std::mt19937 legacy_engine;
std::unordered_map<int, int> legacy_index;
// NOLINTEND(staleload-d3-unordered-iteration, staleload-d2-raw-rng)
