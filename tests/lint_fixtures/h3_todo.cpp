// Lint fixture: an unattributed annotation. One H3 finding expected on the
// next line's comment.
// TODO: tighten this bound someday
int bound() { return 3; }
