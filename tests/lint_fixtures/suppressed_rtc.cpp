// Every R/T/C violation below is silenced by one of the inline forms.
#include <cstdint>
#include <mutex>

#include "check/sync.h"
#include "sim/rng.h"

namespace stale::sim {

Rng local_default;  // NOLINT(staleload-r1-unsplit-stream)

// NOLINTNEXTLINE(staleload-r3-entropy-seed)
Rng addressed(reinterpret_cast<std::uintptr_t>(&local_default));

void fan_out(int n, Rng& rng) {
  // NOLINTNEXTLINE(staleload-r2-shared-stream-capture)
  parallel_for_each(n, [&rng](int trial) { (void)trial; });
}

// NOLINTBEGIN(staleload-t1-raw-mutex, staleload-t2-unguarded-member)
class Legacy {
 private:
  std::mutex lock_;
  int value_ = 0;
};
// NOLINTEND(staleload-t1-raw-mutex, staleload-t2-unguarded-member)

// NOLINTNEXTLINE(staleload-c1-contract-coverage)
void Legacy::touch() { value_ = 1; }

}  // namespace stale::sim
