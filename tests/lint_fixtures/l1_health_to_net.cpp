// Lint fixture: scanned under src/health/fixture.cpp. The health layer is
// shared by the simulator and the live service, so it may depend on fault/
// policy/obs and the sim substrate but never on net (the live service
// depends on health, not the other way around); one L1 finding expected.
#include "net/dispatcher.h"
#include "health/membership.h"

int width() { return 0; }
