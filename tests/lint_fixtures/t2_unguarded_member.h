// T2 fixture: a data member declared after the mutex with no annotation.
#pragma once

#include "check/sync.h"

namespace stale::sim {

class Tally {
 public:
  void bump();

 private:
  check::Mutex mutex_;
  long count_ = 0;
};

}  // namespace stale::sim
