// Lint fixture: clean dispatch-layer code, scanned under
// src/dispatch/fixture.cpp. Exercises the module's declared DAG edges
// (policy/loadinfo/sim/check), a contracted mutator (C1), and a
// per-dispatcher stream derived via split() (R1). Zero findings expected.
#include "dispatch/fixture.h"

#include <vector>

#include "check/contracts.h"
#include "policy/policy.h"
#include "sim/rng.h"

namespace stale::dispatch {

void Fixture::add_dispatcher(sim::Rng& trial_rng) {
  streams_.push_back(trial_rng.split());
  STALE_DCHECK(!streams_.empty());
}

}  // namespace stale::dispatch
