// Lint fixture: a header whose first code line is not an include guard.
// Scanned under src/core/fixture.h; one H1 finding expected.
inline int unguarded() { return 2; }
