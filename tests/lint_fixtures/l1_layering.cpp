// Lint fixture: scanned under src/sim/fixture.cpp. sim is the bottom layer
// and may not include driver headers; one L1 finding expected.
#include "driver/experiment.h"
#include "sim/rng.h"

int width() { return 0; }
