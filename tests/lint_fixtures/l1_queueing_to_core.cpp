// Lint fixture: scanned under src/queueing/fixture.cpp. The bucketed split
// puts the counted board (LevelHistogram, maintained incrementally by
// Cluster) in sim/queueing and the O(#levels) LI kernels that interpret it
// in core — queueing must never reach up into core, or the representation
// and its interpretation collapse back into one layer. One L1 finding
// expected.
#include "core/li_bucketed.h"
#include "sim/level_histogram.h"

double mass() { return 0.0; }
