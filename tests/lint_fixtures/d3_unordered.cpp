// Lint fixture: scanned under src/queueing/fixture.cpp. Iterating an
// unordered container would feed hash-order into results; the declaration
// line carries the single expected finding (the include is angle-form and
// names the same token, so the fixture keeps it off this file to stay at
// exactly one).
#include <vector>

double total_load(const std::vector<double>& loads) {
  std::unordered_map<int, double> by_server;
  double total = 0.0;
  for (const auto& [server, load] : by_server) total += load;
  return total + static_cast<double>(loads.size());
}
