// Lint fixture: `using namespace` at header scope. Scanned under
// src/core/fixture2.h; one H2 finding expected.
#pragma once

using namespace std;
