// T1 fixture: raw std::mutex, invisible to clang's -Wthread-safety.
#include <mutex>

namespace stale::queueing {

std::mutex raw_lock;

}  // namespace stale::queueing
