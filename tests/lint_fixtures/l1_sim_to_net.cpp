// Lint fixture: scanned under src/sim/fixture.cpp. net is the live-service
// layer above the simulation boundary; nothing simulated may include it
// (that is how the wall-clock exemption for net stays contained). One L1
// finding expected.
#include "net/clock.h"
#include "sim/rng.h"

double width() { return 0.0; }
