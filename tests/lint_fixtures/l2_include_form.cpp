// Lint fixture: scanned under src/queueing/fixture.cpp. Relative includes
// defeat the layer DAG check; one L2 finding expected.
#include "../sim/rng.h"

int depth() { return 1; }
