// Lint fixture: scanned under src/net/fixture.cpp. The live service shards
// across dispatchers by running whole cooperating processes; it never links
// the simulator's dispatch layer, so a net -> dispatch include is a
// layering violation. One L1 finding expected.
#include "dispatch/dispatcher_set.h"
#include "net/dispatcher.h"

int shards() { return 3; }
