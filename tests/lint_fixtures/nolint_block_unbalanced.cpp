// Unbalanced suppression block: a BEGIN with no END is itself a finding.
// NOLINTBEGIN(staleload-d2-raw-rng)
std::mt19937 legacy_engine;
