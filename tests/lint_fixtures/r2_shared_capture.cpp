// R2 fixture: one RNG stream captured by reference into a parallel lambda.
#include "runtime/thread_pool.h"
#include "sim/rng.h"

namespace stale::driver {

void fan_out(runtime::ThreadPool& pool, sim::Rng& rng) {
  runtime::parallel_for_each(pool, 8, [&rng](std::size_t trial) {
    (void)trial;
    (void)rng.next_u64();
  });
}

}  // namespace stale::driver
