// R3 fixture: a generator seeded from process-address entropy.
#include <cstdint>

#include "sim/rng.h"

namespace stale::sim {

Rng seeded_from_stack() {
  int marker = 0;
  Rng rng(reinterpret_cast<std::uintptr_t>(&marker));
  return rng;
}

}  // namespace stale::sim
