// Lint fixture: every violation here carries a NOLINT suppression, so the
// scan must come back empty. Scanned under src/sim/fixture.cpp.
#include <random>

int draw() {
  std::mt19937 engine(7);  // NOLINT(staleload-d2-raw-rng) fixture: testing suppression
  // NOLINTNEXTLINE(staleload-d1-wall-clock) fixture: testing next-line form
  long ticks = std::chrono::steady_clock::now().time_since_epoch().count();
  std::unordered_map<int, int> histogram;  // NOLINT fixture: bare form silences all
  return static_cast<int>(engine()) + static_cast<int>(ticks) +
         static_cast<int>(histogram.size());
}
