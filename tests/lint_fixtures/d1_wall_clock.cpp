// Lint fixture: scanned under the virtual path src/sim/fixture.cpp, where
// the D1 wall-clock rule applies. Exactly one finding expected (line 7).
// This file is never compiled and never scanned by the real lint run
// (scan_tree skips lint_fixtures directories).
#include <chrono>

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
