// R1 fixture: a generator constructed without a named split stream.
#include "sim/rng.h"

namespace stale::policy {

double draw() {
  sim::Rng rng(12345);
  return static_cast<double>(rng.next_u64());
}

}  // namespace stale::policy
