// Lint fixture: dispatch-scoped violations, every one carrying a NOLINT
// suppression, so the scan must come back empty. Scanned under
// src/dispatch/fixture.cpp — proves the new module participates in the
// same suppression machinery as the rest of src/.
#include "net/dispatcher.h"  // NOLINT(staleload-l1-layering) fixture: testing suppression

int tokens() {
  std::mt19937 engine(7);  // NOLINT(staleload-d2-raw-rng) fixture: testing suppression
  // NOLINTNEXTLINE(staleload-d4-host-state) fixture: testing next-line form
  const char* jobs = std::getenv("STALE_JOBS");
  return static_cast<int>(engine()) + (jobs != nullptr ? 1 : 0);
}
