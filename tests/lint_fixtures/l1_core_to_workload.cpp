// Lint fixture: scanned under src/core/fixture.cpp. workload sits above
// core (the CEMA rate estimator implements core::RateEstimator), so the
// dependency may only point downward — core reaching up into workload is a
// cycle in the making. One L1 finding expected.
#include "workload/rate_estimator.h"
#include "core/rate_estimator.h"

double width() { return 0.0; }
