// Lint fixture: scanned under src/obs/fixture.cpp. obs sits just above
// check — a sink observing simulation structs directly would invert the
// layering (everything above includes obs, not vice versa); one L1 finding
// expected.
#include "check/contracts.h"
#include "driver/experiment.h"

int width() { return 0; }
