// Lint fixture: scanned under src/fault/fixture.cpp, inside the D4
// host-state scope. One finding expected on the getenv line.
#include <cstdlib>

const char* injected_home() {
  return std::getenv("HOME");
}
