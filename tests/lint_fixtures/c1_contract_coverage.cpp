// C1 fixture: an out-of-line mutating method with no contract hook.
#include "queueing/fixture.h"

namespace stale::queueing {

void Tally::bump() { ++count_; }

}  // namespace stale::queueing
