// Lint fixture: scanned under src/policy/fixture.cpp. The D2 rule bans raw
// std engines everywhere outside src/sim/rng.*; one finding expected.
#include <random>

int draw() {
  std::mt19937 engine(42);
  return static_cast<int>(engine());
}
