// Integration tests for the continuous-update, update-on-access and
// heavy-tailed workloads — the Sections 5.2-5.5 claims.
#include <gtest/gtest.h>

#include "driver/experiment.h"

namespace stale::driver {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig config;
  config.num_jobs = 120'000;
  config.warmup_jobs = 30'000;
  config.trials = 3;
  return config;
}

double mean_response(ExperimentConfig config) {
  return run_experiment(config).mean();
}

TEST(ContinuousModelTest, BasicLiOutperformsAggressiveLi) {
  // Section 4.2/5.2: under continuous update the "aggressive" algorithm is
  // effectively stuck in its last (most conservative) subinterval, so Basic
  // generally outperforms Aggressive.
  ExperimentConfig config = base_config();
  config.model = UpdateModel::kContinuous;
  config.delay_kind = loadinfo::DelayKind::kConstant;
  config.update_interval = 4.0;
  config.policy = "basic_li";
  const double basic = mean_response(config);
  config.policy = "aggressive_li";
  const double aggressive = mean_response(config);
  EXPECT_LT(basic, aggressive * 1.02);
}

TEST(ContinuousModelTest, LiBeatsKSubsetForConstantDelay) {
  ExperimentConfig config = base_config();
  config.model = UpdateModel::kContinuous;
  config.delay_kind = loadinfo::DelayKind::kConstant;
  config.update_interval = 8.0;
  double best_k = 1e9;
  for (const char* policy : {"random", "k_subset:2", "k_subset:3"}) {
    config.policy = policy;
    best_k = std::min(best_k, mean_response(config));
  }
  config.policy = "basic_li";
  EXPECT_LT(mean_response(config), best_k);
}

TEST(ContinuousModelTest, KnowingActualAgeHelps) {
  // Figure 7 vs Figure 6: with a high-variance delay distribution, knowing
  // each request's actual information age improves Basic LI.
  ExperimentConfig config = base_config();
  config.model = UpdateModel::kContinuous;
  config.delay_kind = loadinfo::DelayKind::kExponential;
  config.update_interval = 8.0;
  config.policy = "basic_li";
  config.know_actual_age = false;
  const double average_only = mean_response(config);
  config.know_actual_age = true;
  const double knows = mean_response(config);
  EXPECT_LT(knows, average_only);
}

TEST(ContinuousModelTest, DelayVarianceHelpsKSubset) {
  // Mitzenmacher's observation (quoted in Section 5.2): for a given mean
  // delay, k-subset performs better when some requests see fresher data.
  ExperimentConfig config = base_config();
  config.model = UpdateModel::kContinuous;
  config.update_interval = 8.0;
  config.policy = "k_subset:2";
  config.delay_kind = loadinfo::DelayKind::kConstant;
  const double constant = mean_response(config);
  config.delay_kind = loadinfo::DelayKind::kExponential;
  const double exponential = mean_response(config);
  EXPECT_LT(exponential, constant);
}

TEST(UpdateOnAccessTest, AllAlgorithmsReasonable) {
  // Section 5.3: per-client updates desynchronize clients enough that even
  // aggressive algorithms avoid the herd effect.
  ExperimentConfig config = base_config();
  config.model = UpdateModel::kUpdateOnAccess;
  config.update_interval = 8.0;
  config.policy = "random";
  const double random = mean_response(config);
  for (const char* policy : {"k_subset:2", "k_subset:10", "basic_li"}) {
    config.policy = policy;
    EXPECT_LT(mean_response(config), random * 1.25) << policy;
  }
}

TEST(UpdateOnAccessTest, BasicLiBestOrTied) {
  ExperimentConfig config = base_config();
  config.model = UpdateModel::kUpdateOnAccess;
  config.update_interval = 8.0;
  config.policy = "basic_li";
  const double li = mean_response(config);
  for (const char* policy : {"random", "k_subset:2", "k_subset:10"}) {
    config.policy = policy;
    EXPECT_LT(li, mean_response(config) * 1.05) << policy;
  }
}

TEST(UpdateOnAccessTest, BurstyClientsStillExploitLoadInformation) {
  // Section 5.4: although a client's load picture is on average T = 16 old,
  // bursts mean the average request sees a much fresher picture, so the
  // load-using algorithms significantly outperform oblivious random even at
  // this large average staleness — and Basic LI stays best or tied.
  ExperimentConfig config = base_config();
  config.model = UpdateModel::kUpdateOnAccess;
  config.update_interval = 16.0;
  config.bursty = true;
  config.policy = "random";
  const double random = mean_response(config);
  config.policy = "basic_li";
  const double li = mean_response(config);
  EXPECT_GT(random, 1.5 * li);
  config.policy = "k_subset:2";
  EXPECT_GT(mean_response(config) * 1.05, li);
}

TEST(IndividualModelTest, BehavesLikePeriodicQualitatively) {
  // The extension model: LI beats random, greedy herds.
  ExperimentConfig config = base_config();
  config.model = UpdateModel::kIndividual;
  config.update_interval = 8.0;
  config.policy = "random";
  const double random = mean_response(config);
  config.policy = "basic_li";
  EXPECT_LT(mean_response(config), random);
  config.policy = "k_subset:10";
  EXPECT_GT(mean_response(config), random);
}

TEST(ThresholdModelTest, ThresholdActsLikeAggressivenessDial) {
  // Figure 5: threshold 0 behaves like plain k-subset; a huge threshold
  // behaves like oblivious random. Run at lambda = 0.8 with extra trials —
  // the equivalences are exact in distribution, but at 0.9 the per-trial
  // variance of the mean would swamp an 8% band.
  ExperimentConfig config = base_config();
  config.lambda = 0.8;
  config.trials = 6;
  config.update_interval = 8.0;
  config.policy = "threshold:2:0";
  const double thresh0 = mean_response(config);
  config.policy = "k_subset:2";
  const double k2 = mean_response(config);
  EXPECT_NEAR(thresh0, k2, k2 * 0.08);

  config.policy = "threshold:2:1000000";
  const double huge = mean_response(config);
  config.policy = "random";
  const double random = mean_response(config);
  EXPECT_NEAR(huge, random, random * 0.08);
}

TEST(ThresholdModelTest, LiBeatsBestThreshold) {
  ExperimentConfig config = base_config();
  config.update_interval = 8.0;
  double best_threshold = 1e9;
  for (const char* policy :
       {"threshold:2:0", "threshold:2:4", "threshold:2:16"}) {
    config.policy = policy;
    best_threshold = std::min(best_threshold, mean_response(config));
  }
  config.policy = "basic_li";
  EXPECT_LT(mean_response(config), best_threshold);
}

TEST(HeavyTailTest, ResponseTimesLargerThanExponentialCase) {
  // Section 5.5: under Bounded Pareto jobs the absolute queueing times are
  // larger than under exponential jobs at the same utilization.
  ExperimentConfig config = base_config();
  config.lambda = 0.7;
  config.update_interval = 4.0;
  config.policy = "random";
  const double exponential = mean_response(config);
  config.job_size = "pareto_fig10";
  config.trials = 5;
  const double pareto = mean_response(config);
  EXPECT_GT(pareto, 2.0 * exponential);
}

TEST(HeavyTailTest, LiStillBeatsRandomUnderPareto) {
  ExperimentConfig config = base_config();
  config.lambda = 0.7;
  config.update_interval = 4.0;
  config.job_size = "pareto_fig11";
  config.trials = 5;
  config.policy = "random";
  const double random = mean_response(config);
  config.policy = "basic_li";
  EXPECT_LT(mean_response(config), random);
}

}  // namespace
}  // namespace stale::driver
