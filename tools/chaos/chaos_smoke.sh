#!/usr/bin/env bash
# Chaos smoke for the live service. Two topologies:
#
# single (default) — the health-subsystem drill: boots one staleload_lb with
# membership health enabled plus 12 staleload_backend processes, drives load
# through staleload_loadgen, SIGKILLs a third of the backends mid-run, and
# restarts them 2 seconds later. Asserts, from the loadgen report and the
# dispatcher's exported event trace, that:
#   1. >= 99% of the jobs the loadgen sent were answered (re-dispatch saved
#      the in-flight jobs of the killed backends);
#   2. every killed backend was evicted (membership -> dead) and rejoined
#      through probation (dead -> probation -> alive);
#   3. zero jobs were dispatched to a backend between its eviction and its
#      probation (the quarantine actually removed it from the candidate set);
#   4. the degraded-mode crossing shows up in the trace (coverage 8/12 dips
#      below the configured 0.7 threshold while the four are down).
#
# sharded — the multi-dispatcher drill: boots D=3 cooperating staleload_lb
# shards over the same 12 backends (each backend HELLOs and LOAD-reports to
# all three; the loadgen round-robins arrivals across the three TCP ports),
# then SIGKILLs one dispatcher mid-run. Asserts from the loadgen report and
# the survivors' exported traces that:
#   1. zero jobs were silently lost (sent == completed + errors; the only
#      errors allowed are the handful in flight on the dead shard's
#      connection at the instant of the kill);
#   2. >= 97% of all jobs were answered despite losing a third of the
#      dispatch plane;
#   3. the survivors absorbed the dead shard's arrival share (each
#      survivor's per-target send count exceeds the dead shard's);
#   4. every surviving dispatcher exported a non-empty per-dispatcher trace.
#
# Usage: tools/chaos/chaos_smoke.sh [BIN_DIR] [OUT_DIR] [TOPOLOGY]
#   BIN_DIR:  directory with the three binaries (default build/tools)
#   OUT_DIR:  artifact directory (default chaos-smoke)
#   TOPOLOGY: single | sharded (default single)
set -euo pipefail

BIN=${1:-build/tools}
OUT=${2:-chaos-smoke}
TOPOLOGY=${3:-single}
BACKENDS=12
mkdir -p "$OUT"

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

wait_for_line() { # file token tries
  for _ in $(seq "${3:-100}"); do
    grep -q "$2" "$1" 2>/dev/null && return 0
    sleep 0.1
  done
  echo "chaos_smoke: timed out waiting for '$2' in $1" >&2
  cat "$1" >&2 || true
  return 1
}

start_backend() { # index seed logfile report_to
  "$BIN/staleload_backend" --index "$1" --report-to "$4" \
    --update-period 0.1 --mean-service 0.02 --seed "$2" \
    --duration 60 > "$3" 2>&1 &
  echo $!
}

# ---------------------------------------------------------------------------
run_single() {
  KILL="0 1 2 3" # the third we murder mid-run

  # Suspect after 0.4s of silence, evict at 0.8s; two clean reports to
  # rejoin; degraded below 70% coverage (8/12 = 0.667 qualifies while the
  # four are down). The per-job timer is a backstop — SIGKILL closes the TCP
  # socket, so connection errors usually beat it.
  "$BIN/staleload_lb" --backends $BACKENDS --policy basic_li \
    --schedule periodic --update-period 0.1 --duration 45 --seed 3 \
    --health "suspect=0.4,evict=0.8,probation=2,probe=0.25,probemax=2,coverage=0.7,fallback=random,retries=3" \
    --dispatch-timeout 1.0 \
    --trace-out "$OUT/lb" > "$OUT/lb.out" 2> "$OUT/lb.err" &
  LB_PID=$!
  PIDS+=("$LB_PID")
  wait_for_line "$OUT/lb.out" "LB LISTENING"
  TCP=$(sed -n 's/.*tcp=\([0-9]*\).*/\1/p' "$OUT/lb.out" | head -1)
  UDP=$(sed -n 's/.*udp=\([0-9]*\).*/\1/p' "$OUT/lb.out" | head -1)
  echo "dispatcher up: tcp=$TCP udp=$UDP"

  declare -A BACKEND_PID
  for i in $(seq 0 $((BACKENDS - 1))); do
    BACKEND_PID[$i]=$(start_backend "$i" $((20 + i)) "$OUT/backend$i.out" \
      "127.0.0.1:$UDP")
    PIDS+=("${BACKEND_PID[$i]}")
  done
  wait_for_line "$OUT/lb.out" "LB READY"
  echo "all $BACKENDS backends registered"

  "$BIN/staleload_loadgen" --target "127.0.0.1:$TCP" --lambda 60 \
    --duration 12 --drain 4 --warmup 20 --seed 7 \
    --json "$OUT/loadgen.json" 2> "$OUT/loadgen.err" &
  LG_PID=$!
  PIDS+=("$LG_PID")

  sleep 3
  for i in $KILL; do
    kill -9 "${BACKEND_PID[$i]}" 2>/dev/null || true
  done
  echo "killed backends: $KILL"

  sleep 2
  for i in $KILL; do
    BACKEND_PID[$i]=$(start_backend "$i" $((40 + i)) \
      "$OUT/backend$i.restart.out" "127.0.0.1:$UDP")
    PIDS+=("${BACKEND_PID[$i]}")
  done
  echo "restarted backends: $KILL"

  wait "$LG_PID"
  kill "$LB_PID" 2>/dev/null || true
  wait "$LB_PID" 2>/dev/null || true
  PIDS=("${PIDS[@]/$LG_PID}")

  test -s "$OUT/lb.events.csv" || {
    echo "chaos_smoke: dispatcher wrote no trace" >&2
    exit 1
  }

  python3 - "$OUT/loadgen.json" "$OUT/lb.events.csv" "$KILL" <<'EOF'
import csv, json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)["result"]
sent, completed = report["sent"], report["completed"]
answered = completed / sent if sent else 0.0
print(f"loadgen: sent={sent} completed={completed} "
      f"answered={answered:.4f} errors={report['errors']}")
assert sent > 0, "loadgen sent nothing"
assert answered >= 0.99, f"only {answered:.4f} of jobs answered"

DEAD, PROBATION, ALIVE = 2.0, 3.0, 0.0
events = []
with open(sys.argv[2]) as f:
    for row in csv.DictReader(f):
        events.append((float(row["time"]), row["kind"], int(row["server"]),
                       float(row["a"]), float(row["c"])))
events.sort()

membership = [e for e in events if e[1] == "membership"]
assert membership, "no membership transitions in the exported trace"
degraded = [e for e in events if e[1] == "degraded"]
assert degraded, "degraded-mode crossing missing from the trace"

for server in map(int, sys.argv[3].split()):
    mine = [e for e in membership if e[2] == server]
    deaths = [t for (t, _, _, _, to) in mine if to == DEAD]
    assert deaths, f"backend {server} was never evicted"
    death = deaths[0]
    rebirths = [t for (t, _, _, _, to) in mine if to == PROBATION and t > death]
    assert rebirths, f"backend {server} never re-entered through probation"
    rebirth = rebirths[0]
    assert any(to == ALIVE and t > rebirth for (t, _, _, _, to) in mine), \
        f"backend {server} never completed probation back to alive"
    quarantined = [t for (t, kind, s, _, _) in events
                   if kind == "dispatch" and s == server
                   and death <= t < rebirth]
    assert not quarantined, (
        f"{len(quarantined)} dispatches to backend {server} inside its "
        f"quarantine window [{death:.3f}, {rebirth:.3f})")
    print(f"backend {server}: evicted at {death:.3f}, probation at "
          f"{rebirth:.3f}, rejoined; no quarantined dispatches")

print("chaos smoke OK")
EOF
}

# ---------------------------------------------------------------------------
run_sharded() {
  DISPATCHERS=3
  KILL_LB=1 # the shard we murder mid-run

  declare -a LB_PID TCP UDP
  for d in $(seq 0 $((DISPATCHERS - 1))); do
    "$BIN/staleload_lb" --backends $BACKENDS --policy basic_li \
      --schedule periodic --update-period 0.1 --duration 45 \
      --seed $((3 + d)) \
      --trace-out "$OUT/lb$d" > "$OUT/lb$d.out" 2> "$OUT/lb$d.err" &
    LB_PID[$d]=$!
    PIDS+=("${LB_PID[$d]}")
    wait_for_line "$OUT/lb$d.out" "LB LISTENING"
    TCP[$d]=$(sed -n 's/.*tcp=\([0-9]*\).*/\1/p' "$OUT/lb$d.out" | head -1)
    UDP[$d]=$(sed -n 's/.*udp=\([0-9]*\).*/\1/p' "$OUT/lb$d.out" | head -1)
    echo "dispatcher $d up: tcp=${TCP[$d]} udp=${UDP[$d]}"
  done

  REPORT_TO="127.0.0.1:${UDP[0]}"
  TARGETS="127.0.0.1:${TCP[0]}"
  for d in $(seq 1 $((DISPATCHERS - 1))); do
    REPORT_TO="$REPORT_TO,127.0.0.1:${UDP[$d]}"
    TARGETS="$TARGETS,127.0.0.1:${TCP[$d]}"
  done

  for i in $(seq 0 $((BACKENDS - 1))); do
    PIDS+=("$(start_backend "$i" $((20 + i)) "$OUT/backend$i.out" \
      "$REPORT_TO")")
  done
  for d in $(seq 0 $((DISPATCHERS - 1))); do
    wait_for_line "$OUT/lb$d.out" "LB READY"
  done
  echo "all $BACKENDS backends registered with all $DISPATCHERS dispatchers"

  "$BIN/staleload_loadgen" --target "$TARGETS" --lambda 60 \
    --duration 12 --drain 4 --warmup 20 --seed 7 \
    --json "$OUT/loadgen.json" 2> "$OUT/loadgen.err" &
  LG_PID=$!
  PIDS+=("$LG_PID")

  sleep 3
  kill -9 "${LB_PID[$KILL_LB]}" 2>/dev/null || true
  echo "killed dispatcher: $KILL_LB"

  wait "$LG_PID"
  for d in $(seq 0 $((DISPATCHERS - 1))); do
    kill "${LB_PID[$d]}" 2>/dev/null || true
    wait "${LB_PID[$d]}" 2>/dev/null || true
  done
  PIDS=("${PIDS[@]/$LG_PID}")

  for d in $(seq 0 $((DISPATCHERS - 1))); do
    if [ "$d" -ne "$KILL_LB" ]; then
      test -s "$OUT/lb$d.events.csv" || {
        echo "chaos_smoke: surviving dispatcher $d wrote no trace" >&2
        exit 1
      }
    fi
  done

  python3 - "$OUT/loadgen.json" "$KILL_LB" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)["result"]
killed = int(sys.argv[2])
sent, completed = report["sent"], report["completed"]
errors = report["errors"]
answered = completed / sent if sent else 0.0
print(f"loadgen: sent={sent} completed={completed} errors={errors} "
      f"answered={answered:.4f}")
print(f"per_target_sent={report['per_target_sent']} "
      f"per_target_completed={report['per_target_completed']}")
assert sent > 0, "loadgen sent nothing"
# Zero silently-lost jobs: every arrival either completed or surfaced as a
# client-visible error (in flight on the dead shard at the kill instant).
assert sent == completed + errors, (
    f"{sent - completed - errors} jobs vanished without completion or error")
assert answered >= 0.97, f"only {answered:.4f} of jobs answered"

per_sent = report["per_target_sent"]
per_done = report["per_target_completed"]
# The survivors absorbed the dead shard's arrival share: the kill lands a
# quarter of the way through the send window, so each survivor ends up with
# strictly more arrivals than the shard that stopped accepting them.
for d, (s, c) in enumerate(zip(per_sent, per_done)):
    if d == killed:
        continue
    assert s > per_sent[killed], (
        f"survivor {d} sent {s} <= dead shard's {per_sent[killed]}: "
        f"failover did not absorb the share")
    assert c == s, f"survivor {d} lost {s - c} of its own jobs"
assert errors == per_sent[killed] - per_done[killed], (
    "errors beyond the dead shard's unanswered jobs")

print("sharded chaos smoke OK")
EOF
}

# ---------------------------------------------------------------------------
case "$TOPOLOGY" in
  single) run_single ;;
  sharded) run_sharded ;;
  *)
    echo "chaos_smoke: unknown topology '$TOPOLOGY' (single|sharded)" >&2
    exit 2
    ;;
esac

echo "chaos smoke OK"
