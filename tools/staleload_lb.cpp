// staleload_lb: the live load-balancer daemon (src/net/dispatcher.h).
//
//   build/tools/staleload_lb --backends 4 --policy k_subset:4
//       --schedule periodic --update-period 1.0 [--tcp-port P] [--udp-port P]
//       [--duration S] [--faults update_loss=0.2] [--trace-out PREFIX]
//
// With port 0 (the default) the OS picks; the chosen ports are printed as
//   LB LISTENING tcp=<port> udp=<port>
// so harnesses can start the daemon first and parse the line. Backends
// register over UDP; once --backends of them have, the daemon prints
// "LB READY backends=N" and serves until --duration elapses or SIGINT /
// SIGTERM arrives.
//
// --trace-out PREFIX records every dispatch decision with a TraceRecorder
// and writes PREFIX.events.csv (replayable via obs::import_events_csv) plus
// PREFIX.herd.json — the herd-diagnostic verdict (obs::detect_herd) over the
// live trace. On exit a one-line stats JSON goes to stdout.
//
// --record DIR writes a trace-v2 directory — manifest.txt, arrivals.trace,
// loads.csv, metrics.json — that `staleload_sim --workload replay:DIR`
// replays deterministically and `tools/playdiff` gates against. Requires
// --schedule periodic and a fault-free run (see src/net/record.h).
//
// --estimator SPEC picks how the dispatcher learns the arrival rate that
// LI policies turn into K = lambda*T:
//   windowed[:W] | ewma:TAU | cema[:ALPHA[:BUCKET]] | fixed:RATE
#include <sys/stat.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <stdexcept>
#include <string>

#include "fault/fault_spec.h"
#include "health/churn_spec.h"
#include "net/dispatcher.h"
#include "net/record.h"
#include "obs/export_csv.h"
#include "obs/herd.h"
#include "obs/replay_metrics.h"
#include "obs/trace_recorder.h"
#include "workload/replay.h"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

void install_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_signal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

struct Args {
  stale::net::DispatcherOptions options;
  std::string trace_out;
  std::string record_dir;
};

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "staleload_lb: " << error << "\n"
            << "usage: staleload_lb --backends N [--policy SPEC]\n"
            << "  [--schedule periodic|piggyback] [--update-period T]\n"
            << "  [--host H] [--tcp-port P] [--udp-port P] [--rate-window W]\n"
            << "  [--estimator windowed[:W]|ewma:TAU|cema[:A[:B]]|fixed:R]\n"
            << "  [--duration S] [--seed S] [--faults SPEC]\n"
            << "  [--health SPEC] [--dispatch-timeout S]\n"
            << "  [--trace-out PREFIX] [--record DIR]\n"
            << "--health takes the health keys of a churn spec, e.g.\n"
            << "  suspect=2T,evict=4T,probation=2,probe=0.5,probemax=8,\n"
            << "  coverage=0.5,fallback=random,retries=3\n"
            << "(T = --update-period; churn-process keys like restart= are\n"
            << "rejected — live backends churn for real).\n";
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args args;
  args.options.status_out = &std::cout;
  std::string health_spec;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(flag + " needs a value");
      return argv[++i];
    };
    if (flag == "--host") {
      args.options.host = value();
    } else if (flag == "--tcp-port") {
      args.options.tcp_port = static_cast<std::uint16_t>(std::stoi(value()));
    } else if (flag == "--udp-port") {
      args.options.udp_port = static_cast<std::uint16_t>(std::stoi(value()));
    } else if (flag == "--backends") {
      args.options.num_backends = std::stoi(value());
    } else if (flag == "--policy") {
      args.options.policy_spec = value();
    } else if (flag == "--schedule") {
      args.options.schedule = stale::net::parse_update_schedule(value());
    } else if (flag == "--update-period") {
      args.options.update_period = std::stod(value());
    } else if (flag == "--rate-window") {
      args.options.rate_window = std::stod(value());
    } else if (flag == "--duration") {
      args.options.duration = std::stod(value());
    } else if (flag == "--seed") {
      args.options.seed = std::stoull(value());
    } else if (flag == "--faults") {
      args.options.faults = stale::fault::FaultSpec::parse(value());
    } else if (flag == "--health") {
      health_spec = value();
    } else if (flag == "--dispatch-timeout") {
      args.options.dispatch_timeout = std::stod(value());
    } else if (flag == "--trace-out") {
      args.trace_out = value();
    } else if (flag == "--record") {
      args.record_dir = value();
    } else if (flag == "--estimator") {
      args.options.estimator_spec = value();
    } else {
      usage("unknown flag '" + flag + "'");
    }
  }
  if (args.options.num_backends <= 0) usage("--backends must be >= 1");
  if (!args.record_dir.empty()) {
    if (args.options.schedule != stale::net::UpdateSchedule::kPeriodic) {
      usage("--record requires --schedule periodic (the replay driver maps "
            "the recorded LOAD cadence onto the individual-timer model)");
    }
    if (args.options.faults.any()) {
      usage("--record with --faults would bake lost jobs into the trace; "
            "record a fault-free run");
    }
  }
  if (!health_spec.empty()) {
    const auto spec = stale::health::ChurnSpec::parse(health_spec);
    if (spec.any()) {
      usage("--health takes only health keys; churn-process keys "
            "(restart/leave/slow) belong to the simulator's --churn-spec");
    }
    args.options.health = spec.resolved_health(args.options.update_period);
    args.options.max_redispatch = spec.max_retries;
  } else if (args.options.dispatch_timeout > 0.0) {
    usage("--dispatch-timeout needs --health (the timeouts feed the health "
          "state machine)");
  }
  return args;
}

void write_stats_json(std::ostream& os, const Args& args,
                      const stale::net::DispatcherStats& stats) {
  const auto saved_precision = os.precision();
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\"config\": {\"policy\": \"" << args.options.policy_spec << "\""
     << ", \"schedule\": \""
     << stale::net::update_schedule_name(args.options.schedule) << "\""
     << ", \"update_period\": " << args.options.update_period
     << ", \"backends\": " << args.options.num_backends
     << ", \"seed\": " << args.options.seed << "}, \"result\": {"
     << "\"jobs_received\": " << stats.jobs_received
     << ", \"jobs_dispatched\": " << stats.jobs_dispatched
     << ", \"jobs_completed\": " << stats.jobs_completed
     << ", \"jobs_rejected\": " << stats.jobs_rejected
     << ", \"jobs_orphaned\": " << stats.jobs_orphaned
     << ", \"reports_received\": " << stats.reports_received
     << ", \"reports_dropped\": " << stats.reports_dropped
     << ", \"reports_delayed\": " << stats.reports_delayed
     << ", \"dispatch_timeouts\": " << stats.dispatch_timeouts
     << ", \"jobs_redispatched\": " << stats.jobs_redispatched
     << ", \"backend_evictions\": " << stats.backend_evictions
     << ", \"backend_rejoins\": " << stats.backend_rejoins
     << ", \"degraded_entries\": " << stats.degraded_entries
     << ", \"elapsed\": " << stats.stopped_at - stats.started_at
     << ", \"per_backend_dispatched\": [";
  for (std::size_t i = 0; i < stats.per_backend_dispatched.size(); ++i) {
    if (i > 0) os << ", ";
    os << stats.per_backend_dispatched[i];
  }
  os << "]}}\n";
  os.precision(saved_precision);
}

void write_herd_json(std::ostream& os, const stale::obs::HerdReport& herd) {
  const auto saved_precision = os.precision();
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\"num_servers\": " << herd.num_servers
     << ", \"phases\": " << herd.phases
     << ", \"amplitude\": " << herd.amplitude
     << ", \"global_swing\": " << herd.global_swing
     << ", \"oscillation_period\": " << herd.oscillation_period
     << ", \"autocorr_peak\": " << herd.autocorr_peak
     << ", \"peak_concentration\": " << herd.peak_concentration
     << ", \"mean_concentration\": " << herd.mean_concentration
     << ", \"uniform_share\": " << herd.uniform_share
     << ", \"herding\": " << (herd.herding() ? "true" : "false") << "}\n";
  os.precision(saved_precision);
}

void write_artifact(const std::string& path,
                    const std::function<void(std::ostream&)>& writer) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "'");
  writer(out);
  std::cerr << "# wrote " << path << "\n";
}

void ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0775) == 0 || errno == EEXIST) return;
  throw std::runtime_error("cannot create directory '" + path + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Args args = parse_args(argc, argv);
    install_signal_handlers();

    // --record needs the obs recorder too: its decision events feed the
    // herd verdict folded into metrics.json.
    stale::obs::TraceRecorder recorder;
    if (!args.trace_out.empty() || !args.record_dir.empty()) {
      args.options.trace = &recorder;
    }
    stale::net::TraceV2Recorder trace_v2;
    if (!args.record_dir.empty()) {
      ensure_dir(args.record_dir);  // fail before serving, not after
      args.options.record = &trace_v2;
    }

    stale::net::Dispatcher dispatcher(args.options);
    dispatcher.run(&g_stop);

    const stale::net::DispatcherStats stats = dispatcher.stats();
    write_stats_json(std::cout, args, stats);

    // The herd verdict over the live trace, shared by --trace-out's
    // herd.json and --record's metrics.json.
    bool have_herd = false;
    stale::obs::HerdReport herd;
    if (recorder.count(stale::obs::TraceEventKind::kDecision) > 0) {
      stale::obs::HerdOptions herd_options;
      herd_options.phase_length = args.options.update_period;
      herd_options.num_servers = args.options.num_backends;
      herd = stale::obs::detect_herd(recorder, herd_options);
      have_herd = true;
    }

    if (!args.trace_out.empty()) {
      write_artifact(args.trace_out + ".events.csv", [&](std::ostream& out) {
        stale::obs::write_events_csv(out, recorder);
      });
      if (have_herd) {
        write_artifact(args.trace_out + ".herd.json", [&](std::ostream& out) {
          write_herd_json(out, herd);
        });
      }
    }

    if (!args.record_dir.empty()) {
      stale::workload::ReplayManifest manifest;
      manifest.backends = args.options.num_backends;
      manifest.update_period = args.options.update_period;
      manifest.schedule =
          stale::net::update_schedule_name(args.options.schedule);
      manifest.policy = args.options.policy_spec;
      manifest.seed = args.options.seed;
      const std::uint64_t skipped =
          trace_v2.write_trace(args.record_dir, manifest);
      if (skipped > 0) {
        std::cerr << "# record: dropped " << skipped
                  << " incomplete jobs (no DONE before shutdown)\n";
      }

      stale::obs::ReplayMetrics metrics =
          trace_v2.live_metrics(stats.per_backend_dispatched);
      if (have_herd) {
        metrics.has_herd = true;
        metrics.herd_autocorr = herd.autocorr_peak;
        metrics.herd_amplitude = herd.amplitude;
        metrics.herding = herd.herding();
      }
      write_artifact(args.record_dir + "/" + stale::workload::kMetricsFile,
                     [&](std::ostream& out) {
                       stale::obs::write_replay_metrics(out, metrics);
                     });
      std::cerr << "# record: trace-v2 with " << trace_v2.completed()
                << " completed jobs in " << args.record_dir << "\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "staleload_lb: " << error.what() << "\n";
    return 1;
  }
}
