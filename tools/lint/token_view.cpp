#include "lint/token_view.h"

#include <cctype>

namespace stale::lint {

bool lint_is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<Tok> tokenize(const std::vector<std::string>& code_lines) {
  std::vector<Tok> tokens;
  for (std::size_t line = 0; line < code_lines.size(); ++line) {
    const std::string& s = code_lines[line];
    std::size_t i = 0;
    while (i < s.size()) {
      const char c = s[i];
      if (c == ' ' || c == '\t' || c == '\r') {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
        std::size_t j = i + 1;
        while (j < s.size() && lint_is_ident_char(s[j])) ++j;
        tokens.push_back(Tok{TokenKind::kIdentifier, s.substr(i, j - i),
                             static_cast<int>(line)});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        // Numbers (including hex/float/digit separators) — the lint only
        // needs them delimited, not parsed.
        std::size_t j = i + 1;
        while (j < s.size() &&
               (lint_is_ident_char(s[j]) || s[j] == '.' || s[j] == '\'')) {
          ++j;
        }
        tokens.push_back(
            Tok{TokenKind::kNumber, s.substr(i, j - i), static_cast<int>(line)});
        i = j;
        continue;
      }
      if (c == '"' || c == '\'') {
        // The line splitter blanks literal payloads, leaving matched
        // delimiter pairs ("" / '') in the code view. A splice across lines
        // can strand a single delimiter; either way, one marker token.
        std::size_t j = i + 1;
        if (j < s.size() && s[j] == c) ++j;
        tokens.push_back(
            Tok{TokenKind::kString, s.substr(i, j - i), static_cast<int>(line)});
        i = j;
        continue;
      }
      tokens.push_back(
          Tok{TokenKind::kPunct, std::string(1, c), static_cast<int>(line)});
      ++i;
    }
  }
  return tokens;
}

std::size_t match_brace(const std::vector<Tok>& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kPunct) continue;
    if (tokens[i].text == "{") ++depth;
    if (tokens[i].text == "}") {
      --depth;
      if (depth == 0) return i;
    }
  }
  return tokens.size();
}

namespace {

bool is_punct(const Tok& t, char c) {
  return t.kind == TokenKind::kPunct && t.text.size() == 1 && t.text[0] == c;
}

}  // namespace

ScopeMap build_scope_map(const std::vector<Tok>& tokens) {
  ScopeMap map;
  map.scopes.push_back(Scope{ScopeKind::kTop, 0, tokens.size(), ""});
  map.scope_of.assign(tokens.size(), 0);

  // Pending classification for the next '{': set when a class/struct/enum
  // head is seen and cleared by ';' (forward declaration) or consumption.
  ScopeKind pending = ScopeKind::kOther;
  std::string pending_name;
  bool have_pending = false;

  std::vector<std::size_t> stack;  // indices into map.scopes
  stack.push_back(0);

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    map.scope_of[i] = stack.back();
    const Tok& t = tokens[i];
    if (t.kind == TokenKind::kIdentifier) {
      if (t.text == "class" || t.text == "struct" || t.text == "union") {
        const bool is_enum_class =
            i > 0 && tokens[i - 1].kind == TokenKind::kIdentifier &&
            tokens[i - 1].text == "enum";
        if (!is_enum_class) {
          have_pending = true;
          pending = ScopeKind::kClass;
          pending_name.clear();
          // The body name is the last identifier before '{', ':' or '<'
          // (skipping attribute macros like STALE_CAPABILITY("mutex") whose
          // parenthesized arguments are jumped over below).
          for (std::size_t j = i + 1; j < tokens.size(); ++j) {
            const Tok& h = tokens[j];
            if (is_punct(h, '(')) {
              // Skip a macro argument list in the class head.
              int depth = 0;
              while (j < tokens.size()) {
                if (is_punct(tokens[j], '(')) ++depth;
                if (is_punct(tokens[j], ')') && --depth == 0) break;
                ++j;
              }
              continue;
            }
            if (is_punct(h, '{') || is_punct(h, ':') || is_punct(h, ';') ||
                is_punct(h, '<')) {
              break;
            }
            if (h.kind == TokenKind::kIdentifier) pending_name = h.text;
          }
        } else {
          have_pending = true;
          pending = ScopeKind::kEnum;
          pending_name.clear();
        }
        continue;
      }
      if (t.text == "enum") {
        have_pending = true;
        pending = ScopeKind::kEnum;
        pending_name.clear();
        continue;
      }
      continue;
    }
    if (t.kind != TokenKind::kPunct) continue;
    if (t.text == ";") {
      // A ';' before '{' means the head was a forward declaration (or the
      // statement ended some other way); drop the pending classification.
      have_pending = false;
      continue;
    }
    if (t.text == "(") {
      // `struct`-typed parameters / return types: a '(' between the head
      // and its '{' means this was not a class definition head. (Class
      // heads themselves only carry parens inside attribute macros, which
      // the name scan above skips; here we conservatively drop pending —
      // STALE_CAPABILITY macro args are re-detected because the head scan
      // already captured the name.)
      continue;
    }
    if (t.text == "{") {
      Scope scope;
      scope.kind = have_pending ? pending : ScopeKind::kOther;
      scope.name = have_pending ? pending_name : "";
      scope.open = i;
      scope.close = match_brace(tokens, i);
      have_pending = false;
      map.scopes.push_back(scope);
      stack.push_back(map.scopes.size() - 1);
      map.scope_of[i] = stack.back();
      continue;
    }
    if (t.text == "}") {
      if (stack.size() > 1) stack.pop_back();
      map.scope_of[i] = stack.back();
      continue;
    }
  }
  return map;
}

}  // namespace stale::lint
