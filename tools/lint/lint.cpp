#include "lint/lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "lint/token_view.h"

namespace stale::lint {

namespace {

// ---------------------------------------------------------------------------
// Source preprocessing: split a file into a per-line "code" view (comments,
// string literals, and char literals blanked out, so prose and literals can
// never trip a code rule) and a per-line "comment" view (comment text only,
// which is what the H3 annotation rule inspects). The code view then feeds
// the tokenizer (lint/token_view.h) that the R/T/C rules and the D-rule
// matchers walk.
// ---------------------------------------------------------------------------

struct Views {
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::string> comment;
};

bool is_ident_char(char c) { return lint_is_ident_char(c); }

Views split_views(std::string_view text) {
  Views v;
  enum class State { kCode, kLine, kBlock, kStr, kChr, kRaw };
  State state = State::kCode;
  std::string raw_line;
  std::string code_line;
  std::string comment_line;
  std::string raw_delim;  // for raw string literals: ")delim\""
  std::size_t i = 0;
  const std::size_t n = text.size();

  auto flush_line = [&] {
    v.raw.push_back(raw_line);
    v.code.push_back(code_line);
    v.comment.push_back(comment_line);
    raw_line.clear();
    code_line.clear();
    comment_line.clear();
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      if (state == State::kLine) state = State::kCode;
      flush_line();
      ++i;
      continue;
    }
    raw_line.push_back(c);
    switch (state) {
      case State::kCode: {
        const char next = (i + 1 < n) ? text[i + 1] : '\0';
        if (c == '/' && next == '/') {
          state = State::kLine;
          raw_line.push_back(next);
          i += 2;
          continue;
        }
        if (c == '/' && next == '*') {
          state = State::kBlock;
          code_line.push_back(' ');
          code_line.push_back(' ');
          raw_line.push_back(next);
          i += 2;
          continue;
        }
        if (c == '"') {
          // Raw string literal? The '"' must directly follow R (with an
          // optional u8/u/U/L prefix before the R, which we get for free by
          // only inspecting the R).
          const bool raw_lit = !code_line.empty() && code_line.back() == 'R' &&
                               (code_line.size() < 2 ||
                                !is_ident_char(code_line[code_line.size() - 2]));
          code_line.push_back('"');
          if (raw_lit) {
            // Collect the delimiter up to '('.
            raw_delim = ")";
            std::size_t j = i + 1;
            while (j < n && text[j] != '(' && text[j] != '\n') {
              raw_delim.push_back(text[j]);
              raw_line.push_back(text[j]);
              ++j;
            }
            raw_delim.push_back('"');
            i = j + 1;  // past '('
            if (j < n) raw_line.push_back(text[j]);
            state = State::kRaw;
            continue;
          }
          state = State::kStr;
          ++i;
          continue;
        }
        if (c == '\'') {
          code_line.push_back('\'');
          state = State::kChr;
          ++i;
          continue;
        }
        code_line.push_back(c);
        ++i;
        break;
      }
      case State::kLine:
        comment_line.push_back(c);
        ++i;
        break;
      case State::kBlock: {
        const char next = (i + 1 < n) ? text[i + 1] : '\0';
        if (c == '*' && next == '/') {
          state = State::kCode;
          raw_line.push_back(next);
          i += 2;
          continue;
        }
        comment_line.push_back(c);
        ++i;
        break;
      }
      case State::kStr: {
        if (c == '\\' && i + 1 < n && text[i + 1] != '\n') {
          raw_line.push_back(text[i + 1]);
          i += 2;
          continue;
        }
        if (c == '"') {
          code_line.push_back('"');
          state = State::kCode;
        }
        ++i;
        break;
      }
      case State::kChr: {
        if (c == '\\' && i + 1 < n && text[i + 1] != '\n') {
          raw_line.push_back(text[i + 1]);
          i += 2;
          continue;
        }
        if (c == '\'') {
          code_line.push_back('\'');
          state = State::kCode;
        }
        ++i;
        break;
      }
      case State::kRaw: {
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          // Append the rest of the close sequence to raw (first char already
          // appended above).
          raw_line.append(raw_delim, 1, raw_delim.size() - 1);
          code_line.push_back('"');
          i += raw_delim.size();
          state = State::kCode;
          continue;
        }
        ++i;
        break;
      }
    }
  }
  flush_line();
  return v;
}

// ---------------------------------------------------------------------------
// Path classification.
// ---------------------------------------------------------------------------

struct FileScope {
  bool in_src = false;
  std::string module;   // "sim", "driver", ... when in_src; else "tools" etc.
  std::string basename;
  bool is_header = false;
  bool is_impl = false;  // .cc/.cpp/.cxx
};

FileScope classify(std::string_view path) {
  FileScope scope;
  std::vector<std::string> parts;
  std::string current;
  for (char c : path) {
    if (c == '/' || c == '\\') {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) parts.push_back(current);
  if (!parts.empty()) scope.basename = parts.back();
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (parts[i] == "src") {
      scope.in_src = true;
      scope.module = parts[i + 1];
      break;
    }
  }
  if (!scope.in_src) {
    static const std::array<const char*, 4> kTop = {"tools", "bench", "tests",
                                                    "examples"};
    for (const std::string& part : parts) {
      for (const char* top : kTop) {
        if (part == top) scope.module = top;
      }
      if (!scope.module.empty()) break;
    }
  }
  const auto dot = scope.basename.rfind('.');
  if (dot != std::string::npos) {
    const std::string ext = scope.basename.substr(dot);
    scope.is_header = (ext == ".h" || ext == ".hpp");
    scope.is_impl = (ext == ".cc" || ext == ".cpp" || ext == ".cxx");
  }
  return scope;
}

// ---------------------------------------------------------------------------
// Rule tables.
// ---------------------------------------------------------------------------

// The declared include DAG over src/ modules. A module may include headers
// from exactly the modules listed (its own module and everything below it).
// Adding a new src/ module requires adding it here, i.e. declaring its layer.
const std::map<std::string, std::set<std::string>>& layer_dag() {
  static const std::map<std::string, std::set<std::string>> kDag = {
      {"check", {"check"}},
      // obs sits just above check so every simulation layer can compile in
      // its TraceSink hooks without a layering violation.
      {"obs", {"obs", "check"}},
      {"sim", {"sim", "obs", "check"}},
      {"runtime", {"runtime", "check"}},
      {"queueing", {"queueing", "sim", "obs", "check"}},
      {"core", {"core", "sim", "check"}},
      // workload sits above core so the CEMA rate estimator can implement
      // core::RateEstimator — the interface LI policies consume.
      {"workload", {"workload", "core", "sim", "check"}},
      {"analysis", {"analysis", "sim", "check"}},
      {"loadinfo", {"loadinfo", "queueing", "sim", "obs", "check"}},
      {"policy", {"policy", "core", "sim", "obs", "check"}},
      {"fault",
       {"fault", "policy", "loadinfo", "queueing", "core", "sim", "obs",
        "check"}},
      // dispatch is the multi-dispatcher scale-out layer: DispatcherSet
      // fans one cluster out to D per-dispatcher board instances, and the
      // JIQ token directory lives beside the boards it replaces. It sits
      // directly above policy/loadinfo; only driver may include it (net
      // shards by running whole processes, not by linking this layer).
      {"dispatch",
       {"dispatch", "policy", "loadinfo", "queueing", "core", "sim", "obs",
        "check"}},
      // health is the membership layer shared by both stacks: it reuses the
      // fault layer's crash semantics and stats, and both net and driver sit
      // above it.
      {"health",
       {"health", "fault", "policy", "loadinfo", "queueing", "core", "sim",
        "obs", "check"}},
      // net is the live-service layer (event-loop sockets + the staleload_lb
      // dispatcher). It drives the same policy/loadinfo/obs/fault stack as
      // the simulator but sits beside driver: neither may include the other,
      // and no simulation layer may reach up into net.
      // net additionally reaches workload for the trace-v2 recorder
      // (net/record writes workload::ReplayTrace files) and the CEMA
      // estimator behind `staleload_lb --estimator cema`.
      {"net",
       {"net", "workload", "health", "fault", "policy", "loadinfo", "queueing",
        "core", "sim", "obs", "check"}},
      {"driver",
       {"driver", "dispatch", "health", "fault", "policy", "loadinfo",
        "queueing", "core", "sim", "obs", "workload", "analysis", "runtime",
        "check"}},
  };
  return kDag;
}

struct BannedToken {
  const char* id;
  bool call_like;  // must be followed by '(' to count (e.g. `time`, `rand`)
};

// D1: wall-clock / host-time APIs. Simulation layers derive all time from
// the simulated clock; reading host time breaks run-to-run determinism.
constexpr std::array<BannedToken, 16> kWallClockTokens = {{
    {"system_clock", false},
    {"steady_clock", false},
    {"high_resolution_clock", false},
    {"file_clock", false},
    {"utc_clock", false},
    {"gettimeofday", false},
    {"clock_gettime", false},
    {"timespec_get", false},
    {"localtime", false},
    {"gmtime", false},
    {"strftime", false},
    {"mktime", false},
    {"asctime", false},
    {"ctime", false},
    {"time", true},
    {"clock", true},
}};

// D2: randomness outside the sanctioned engine. Everything must draw from
// sim::Rng (xoshiro256++), whose output is platform-pinned; std engines and
// C rand are either non-deterministic (random_device) or unsanctioned state.
constexpr std::array<BannedToken, 17> kRawRngTokens = {{
    {"random_device", false},
    {"mt19937", false},
    {"mt19937_64", false},
    {"minstd_rand", false},
    {"minstd_rand0", false},
    {"default_random_engine", false},
    {"knuth_b", false},
    {"ranlux24", false},
    {"ranlux24_base", false},
    {"ranlux48", false},
    {"ranlux48_base", false},
    {"rand", true},
    {"srand", true},
    {"rand_r", true},
    {"drand48", true},
    {"lrand48", true},
    {"srandom", true},
}};

// D3: unordered containers in result-feeding layers. Their iteration order
// is hash/seed dependent; anything aggregated from such an iteration can
// differ across platforms or runs.
constexpr std::array<BannedToken, 4> kUnorderedTokens = {{
    {"unordered_map", false},
    {"unordered_set", false},
    {"unordered_multimap", false},
    {"unordered_multiset", false},
}};

// D4: host-state reads (environment, process identity, filesystem) in the
// core simulation layers. Configuration enters through the driver; the
// layers below it must be pure functions of (config, seed).
constexpr std::array<BannedToken, 14> kHostStateTokens = {{
    {"getenv", true},
    {"secure_getenv", true},
    {"getpid", true},
    {"gethostname", true},
    {"getcwd", true},
    {"getuid", true},
    {"uname", true},
    {"fopen", true},
    {"popen", true},
    {"system", true},
    {"ifstream", false},
    {"ofstream", false},
    {"fstream", false},
    {"filesystem", false},
}};

// T1: raw standard-library synchronization primitives. Clang's
// -Wthread-safety analysis cannot see acquisitions through libstdc++'s
// unannotated std::mutex, so src/ code synchronizes through the annotated
// wrappers in src/check/sync.h instead.
constexpr std::array<const char*, 11> kRawSyncTokens = {{
    "mutex",
    "timed_mutex",
    "recursive_mutex",
    "recursive_timed_mutex",
    "shared_mutex",
    "shared_timed_mutex",
    "condition_variable",
    "condition_variable_any",
    "lock_guard",
    "unique_lock",
    "scoped_lock",
}};

// Standard headers (the common subset this codebase could plausibly
// include) for the L2 quote-vs-angle normalizer. A quoted include of one of
// these is rewritten to the angle form by --fix.
const std::set<std::string>& std_headers() {
  static const std::set<std::string> kStd = {
      "algorithm", "any", "array", "atomic", "barrier", "bit", "bitset",
      "cassert", "cctype", "cerrno", "cfloat", "charconv", "chrono",
      "cinttypes", "climits", "cmath", "compare", "complex", "concepts",
      "condition_variable", "csetjmp", "csignal", "cstdarg", "cstddef",
      "cstdint", "cstdio", "cstdlib", "cstring", "ctime", "cuchar", "cwchar",
      "deque", "exception", "execution", "filesystem", "format", "forward_list",
      "fstream", "functional", "future", "initializer_list", "iomanip", "ios",
      "iosfwd", "iostream", "istream", "iterator", "latch", "limits", "list",
      "locale", "map", "memory", "memory_resource", "mutex", "new", "numbers",
      "numeric", "optional", "ostream", "queue", "random", "ranges", "ratio",
      "regex", "scoped_allocator", "semaphore", "set", "shared_mutex", "span",
      "sstream", "stack", "stdexcept", "stop_token", "streambuf", "string",
      "string_view", "system_error", "thread", "tuple", "type_traits",
      "typeindex", "typeinfo", "unordered_map", "unordered_set", "utility",
      "valarray", "variant", "vector", "version",
  };
  return kStd;
}

// Modules the D1/D3 determinism rules cover: every layer whose behaviour
// feeds reported results. runtime (thread pool) and check (contracts) are
// excluded — they do not influence simulated outcomes. net is deliberately
// outside this scope: it is the live system, where wall-clock reads
// (net/clock.h) are the whole point. The simulation boundary is enforced
// the other way — L1 stops any sim-side module from including net.
bool in_simulation_scope(const FileScope& scope) {
  static const std::set<std::string> kSim = {
      "sim",      "queueing", "core",   "loadinfo", "policy", "fault",
      "workload", "analysis", "driver", "obs",      "health", "dispatch"};
  return scope.in_src && kSim.count(scope.module) > 0;
}

// Modules the D4 host-state rule covers (the paper-critical inner layers).
// net is exempt here too: a socket server legitimately owns fds and talks
// to the host.
bool in_host_state_scope(const FileScope& scope) {
  static const std::set<std::string> kInner = {
      "sim",   "queueing", "policy", "loadinfo",
      "fault", "obs",      "health", "dispatch"};
  return scope.in_src && kInner.count(scope.module) > 0;
}

// Modules the R1 split-stream rule covers: everywhere a generator's stream
// identity feeds simulated results. driver and net are the sanctioned
// seeding roots (they construct the base generators from config/CLI seeds
// and hand split streams down), so they are exempt from R1 while staying
// inside R2/R3.
bool in_rng_stream_scope(const FileScope& scope) {
  static const std::set<std::string> kRng = {
      "sim",      "queueing", "core", "loadinfo", "policy",   "fault",
      "health",   "workload", "analysis", "obs",  "dispatch"};
  return scope.in_src && kRng.count(scope.module) > 0;
}

// Modules the C1 contract-coverage rule covers: the layers whose mutating
// methods move probability mass, queue state, or board state that the
// paper's numbers are computed from.
bool in_contract_scope(const FileScope& scope) {
  static const std::set<std::string> kContract = {"sim", "queueing",
                                                  "loadinfo", "dispatch"};
  return scope.in_src && kContract.count(scope.module) > 0;
}

bool is_sanctioned_rng_file(const FileScope& scope) {
  return scope.in_src && scope.module == "sim" &&
         scope.basename.rfind("rng.", 0) == 0;
}

// ---------------------------------------------------------------------------
// Matching helpers.
// ---------------------------------------------------------------------------

// Extracts the quoted path of an `#include "..."` directive, if any. The
// directive prefix is matched against the code view (so commented-out
// includes do not count) while the payload comes from the raw line (the
// code view blanks string literals).
bool parse_include_directive(const std::string& code_line,
                             const std::string& raw_line, std::string* out,
                             bool* angled) {
  std::size_t i = 0;
  while (i < code_line.size() &&
         (code_line[i] == ' ' || code_line[i] == '\t')) {
    ++i;
  }
  if (i >= code_line.size() || code_line[i] != '#') return false;
  ++i;
  while (i < code_line.size() &&
         (code_line[i] == ' ' || code_line[i] == '\t')) {
    ++i;
  }
  if (code_line.compare(i, 7, "include") != 0) return false;
  const std::size_t quote = raw_line.find('"', i + 7);
  const std::size_t open_angle = raw_line.find('<', i + 7);
  if (quote != std::string::npos &&
      (open_angle == std::string::npos || quote < open_angle)) {
    const std::size_t close = raw_line.find('"', quote + 1);
    if (close == std::string::npos) return false;
    *out = raw_line.substr(quote + 1, close - quote - 1);
    *angled = false;
    return true;
  }
  if (open_angle != std::string::npos) {
    const std::size_t close = raw_line.find('>', open_angle + 1);
    if (close == std::string::npos) return false;
    *out = raw_line.substr(open_angle + 1, close - open_angle - 1);
    *angled = true;
    return true;
  }
  return false;
}

// Replaces the include payload's delimiters in `raw_line` ("path" <-> <path>),
// producing the --fix replacement line.
std::string swap_include_delims(const std::string& raw_line,
                                const std::string& path, bool to_angle) {
  const std::string from =
      to_angle ? "\"" + path + "\"" : "<" + path + ">";
  const std::string to = to_angle ? "<" + path + ">" : "\"" + path + "\"";
  const std::size_t pos = raw_line.find(from);
  if (pos == std::string::npos) return "";
  std::string fixed = raw_line;
  fixed.replace(pos, from.size(), to);
  return fixed;
}

// An identifier names a generator when "rng" appears as a full underscore-
// delimited chunk: `rng`, `fault_rng`, `rng_`, `crash_rng_` — but not
// `boring` or `wrongness`.
bool is_rng_identifier(const std::string& name) {
  std::size_t pos = 0;
  while ((pos = name.find("rng", pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || name[pos - 1] == '_';
    const std::size_t end = pos + 3;
    const bool right_ok = end == name.size() || name[end] == '_';
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

bool tok_is(const Tok& t, const char* text) {
  return t.text == text;
}

bool tok_punct(const Tok& t, char c) {
  return t.kind == TokenKind::kPunct && t.text.size() == 1 && t.text[0] == c;
}

// Index of the ')' matching the '(' at `open`; tokens.size() if unmatched.
std::size_t match_paren(const std::vector<Tok>& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tok_punct(tokens[i], '(')) ++depth;
    if (tok_punct(tokens[i], ')') && --depth == 0) return i;
  }
  return tokens.size();
}

// ---------------------------------------------------------------------------
// NOLINT suppression: same-line NOLINT(...), NOLINTNEXTLINE(...), and
// NOLINT-BEGIN/END block regions.
// ---------------------------------------------------------------------------

struct Suppression {
  bool all = false;  // bare NOLINT: silence every rule on the line
  std::vector<std::string> rules;
  bool active() const { return all || !rules.empty(); }
  bool covers(const std::string& rule) const {
    if (all) return true;
    for (const std::string& r : rules) {
      if (r == rule || r == "staleload") return true;
    }
    return false;
  }
  // Canonical signature for BEGIN/END matching: END must repeat BEGIN's
  // rule list (order-insensitive), exactly as clang-tidy requires.
  std::string signature() const {
    if (all) return "<all>";
    std::vector<std::string> sorted = rules;
    std::sort(sorted.begin(), sorted.end());
    std::string sig;
    for (const std::string& r : sorted) {
      sig += r;
      sig += ',';
    }
    return sig;
  }
};

struct LineSuppressions {
  Suppression same;
  Suppression next;
  std::vector<Suppression> begins;  // block-begin markers on this line
  std::vector<Suppression> ends;    // block-end markers on this line
};

void parse_nolint(const std::string& raw_line, LineSuppressions* out) {
  std::size_t pos = 0;
  while ((pos = raw_line.find("NOLINT", pos)) != std::string::npos) {
    std::size_t after = pos + 6;
    enum class Kind { kSame, kNext, kBegin, kEnd } kind = Kind::kSame;
    if (raw_line.compare(after, 8, "NEXTLINE") == 0) {
      kind = Kind::kNext;
      after += 8;
    } else if (raw_line.compare(after, 5, "BEGIN") == 0) {
      kind = Kind::kBegin;
      after += 5;
    } else if (raw_line.compare(after, 3, "END") == 0) {
      kind = Kind::kEnd;
      after += 3;
    }
    Suppression suppression;
    if (after < raw_line.size() && raw_line[after] == '(') {
      const std::size_t close = raw_line.find(')', after);
      std::string list = raw_line.substr(
          after + 1,
          close == std::string::npos ? std::string::npos : close - after - 1);
      std::string item;
      std::istringstream items(list);
      while (std::getline(items, item, ',')) {
        const auto first = item.find_first_not_of(" \t");
        const auto last = item.find_last_not_of(" \t");
        if (first != std::string::npos) {
          suppression.rules.push_back(item.substr(first, last - first + 1));
        }
      }
      if (suppression.rules.empty()) suppression.all = true;
    } else {
      suppression.all = true;
    }
    switch (kind) {
      case Kind::kSame:
        if (suppression.all) out->same.all = true;
        for (std::string& r : suppression.rules) {
          out->same.rules.push_back(std::move(r));
        }
        break;
      case Kind::kNext:
        if (suppression.all) out->next.all = true;
        for (std::string& r : suppression.rules) {
          out->next.rules.push_back(std::move(r));
        }
        break;
      case Kind::kBegin:
        out->begins.push_back(std::move(suppression));
        break;
      case Kind::kEnd:
        out->ends.push_back(std::move(suppression));
        break;
    }
    pos = after;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// scan_file
// ---------------------------------------------------------------------------

std::set<std::string> parse_contract_allowlist(std::string_view text) {
  std::set<std::string> entries;
  std::string line;
  std::istringstream in{std::string(text)};
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    entries.insert(line.substr(first, last - first + 1));
  }
  return entries;
}

std::vector<Finding> scan_file(std::string_view path,
                               std::string_view contents) {
  static const LintConfig kDefault;
  return scan_file(path, contents, kDefault, nullptr);
}

std::vector<Finding> scan_file(std::string_view path,
                               std::string_view contents,
                               const LintConfig& config,
                               std::set<std::string>* used_allowlist) {
  const FileScope scope = classify(path);
  const Views views = split_views(contents);
  const std::size_t lines = views.raw.size();

  std::vector<LineSuppressions> sup(lines);
  for (std::size_t i = 0; i < lines; ++i) {
    parse_nolint(views.raw[i], &sup[i]);
  }

  std::vector<Finding> findings;
  auto emit_raw = [&](std::size_t i, const char* rule, std::string message,
                      std::string fixed_line = "") {
    for (const Finding& f : findings) {
      if (f.line == static_cast<int>(i) + 1 && f.rule == rule) return;
    }
    findings.push_back(Finding{std::string(path), static_cast<int>(i) + 1,
                               rule, std::move(message),
                               std::move(fixed_line)});
  };

  // Block regions: walk the lines once, maintaining the active block-begin
  // stack; each line records the regions covering it. Unbalanced or
  // mismatched markers are findings in their own right (never suppressible —
  // a broken suppression must not be able to hide itself).
  std::vector<std::vector<Suppression>> blocks(lines);
  {
    std::vector<std::pair<Suppression, std::size_t>> stack;
    for (std::size_t i = 0; i < lines; ++i) {
      for (const Suppression& begin : sup[i].begins) {
        stack.emplace_back(begin, i);
      }
      for (const auto& [active, line] : stack) {
        (void)line;
        blocks[i].push_back(active);
      }
      for (const Suppression& end : sup[i].ends) {
        // The marker names below are split mid-word so this file's own
        // messages never parse as markers when the lint scans itself.
        if (stack.empty()) {
          emit_raw(i, "staleload-nolint-unbalanced",
                   "NOLIN" "TEND without a matching NOLIN" "TBEGIN");
          continue;
        }
        if (stack.back().first.signature() != end.signature()) {
          emit_raw(i, "staleload-nolint-unbalanced",
                   "NOLIN" "TEND rule list does not match the NOLIN"
                   "TBEGIN on line " +
                       std::to_string(stack.back().second + 1) +
                       "; END must repeat BEGIN's rules exactly");
        }
        stack.pop_back();
      }
    }
    for (const auto& [begin, line] : stack) {
      (void)begin;
      emit_raw(line, "staleload-nolint-unbalanced",
               "NOLIN" "TBEGIN never closed by a NOLIN"
               "TEND before end of file");
    }
  }

  auto suppressed = [&](std::size_t i, const std::string& rule) {
    if (i >= lines) return false;
    if (sup[i].same.covers(rule) && sup[i].same.active()) return true;
    if (i > 0 && sup[i - 1].next.active() && sup[i - 1].next.covers(rule)) {
      return true;
    }
    for (const Suppression& block : blocks[i]) {
      if (block.covers(rule)) return true;
    }
    return false;
  };

  auto emit = [&](std::size_t i, const char* rule, std::string message,
                  std::string fixed_line = "") {
    if (suppressed(i, rule)) return;
    emit_raw(i, rule, std::move(message), std::move(fixed_line));
  };

  const bool d1 = in_simulation_scope(scope);
  const bool d2 = !is_sanctioned_rng_file(scope);
  const bool d3 = in_simulation_scope(scope);
  const bool d4 = in_host_state_scope(scope);
  const bool t1 = scope.in_src && scope.module != "check";
  const bool t2 = scope.in_src;
  const bool r1 = in_rng_stream_scope(scope) && !is_sanctioned_rng_file(scope);
  const bool r3 = (scope.in_src || scope.module == "tools") &&
                  !is_sanctioned_rng_file(scope);
  const bool c1 = in_contract_scope(scope) && scope.is_impl;

  // ---- Line-oriented rules (H-family, includes). --------------------------
  for (std::size_t i = 0; i < lines; ++i) {
    // H3 looks at the comment view: annotation comments usually sit on
    // comment-only lines.
    const std::string& comment = views.comment[i];
    for (const char* marker : {"TODO", "FIXME"}) {
      const std::size_t pos = comment.find(marker);
      if (pos == std::string::npos) continue;
      if (pos > 0 && is_ident_char(comment[pos - 1])) continue;
      std::size_t j = pos + std::string_view(marker).size();
      if (j < comment.size() && is_ident_char(comment[j])) continue;
      while (j < comment.size() && comment[j] == ' ') ++j;
      const bool has_ref = j < comment.size() && comment[j] == '(' &&
                           comment.find(')', j) != std::string::npos &&
                           comment.find(')', j) > j + 1;
      if (!has_ref) {
        emit(i, "staleload-h3-todo-ref",
             std::string(marker) +
                 " without an owner/issue reference; write " + marker +
                 "(#issue) or " + marker + "(name)");
      }
    }

    const std::string& code = views.code[i];
    if (code.empty()) continue;

    std::string include_path;
    bool angled = false;
    if (parse_include_directive(code, views.raw[i], &include_path, &angled)) {
      if (!angled) {
        if (include_path.find("..") != std::string::npos) {
          emit(i, "staleload-l2-include-form",
               "relative include \"" + include_path +
                   "\"; include project headers as \"module/file.h\"");
        } else if (include_path.find('/') == std::string::npos &&
                   std_headers().count(include_path) > 0) {
          emit(i, "staleload-l2-include-form",
               "standard header \"" + include_path +
                   "\" included with quotes; standard headers use <" +
                   include_path + ">",
               swap_include_delims(views.raw[i], include_path,
                                   /*to_angle=*/true));
        } else if (scope.in_src) {
          const auto slash = include_path.find('/');
          if (slash == std::string::npos) {
            emit(i, "staleload-l2-include-form",
                 "unqualified include \"" + include_path +
                     "\"; src/ headers are included as \"module/file.h\"");
          } else {
            const std::string target = include_path.substr(0, slash);
            const auto& dag = layer_dag();
            const auto mod = dag.find(scope.module);
            if (mod == dag.end()) {
              emit(i, "staleload-l1-layering",
                   "module `" + scope.module +
                       "` is not declared in the layer DAG; add it to "
                       "layer_dag() in tools/lint/lint.cpp");
            } else if (dag.count(target) > 0 &&
                       mod->second.count(target) == 0) {
              std::string allowed;
              for (const std::string& m : mod->second) {
                if (!allowed.empty()) allowed += ", ";
                allowed += m;
              }
              emit(i, "staleload-l1-layering",
                   "include \"" + include_path +
                       "\" violates the layer DAG: `" + scope.module +
                       "` may only include {" + allowed + "}");
            } else if (dag.count(target) == 0) {
              emit(i, "staleload-l1-layering",
                   "include \"" + include_path + "\" targets `" + target +
                       "`, which is not a declared src/ module");
            }
          }
        }
      } else {
        // Angle include: project headers (first path segment is a declared
        // src/ module) belong in quotes — the angle form bypasses the
        // layering scan on some toolchains and reads as a system header.
        const auto slash = include_path.find('/');
        if (slash != std::string::npos &&
            layer_dag().count(include_path.substr(0, slash)) > 0) {
          emit(i, "staleload-l2-include-form",
               "project header <" + include_path +
                   "> included with angle brackets; use \"" + include_path +
                   "\"",
               swap_include_delims(views.raw[i], include_path,
                                   /*to_angle=*/false));
        }
      }
    }
  }

  if (scope.is_header) {
    for (std::size_t i = 0; i < lines; ++i) {
      std::string trimmed = views.code[i];
      const auto first = trimmed.find_first_not_of(" \t");
      if (first == std::string::npos) continue;
      trimmed = trimmed.substr(first);
      const bool guarded = trimmed.rfind("#pragma once", 0) == 0 ||
                           trimmed.rfind("#ifndef", 0) == 0 ||
                           trimmed.rfind("#if !defined", 0) == 0;
      if (!guarded) {
        emit(i, "staleload-h1-include-guard",
             "header has code before `#pragma once` (or an #ifndef guard)");
      }
      break;  // only the first non-empty code line decides
    }
  }

  // ---- Token-oriented rules (D, T, R, C families). ------------------------
  const std::vector<Tok> tokens = tokenize(views.code);
  const ScopeMap scopes = build_scope_map(tokens);

  auto next_is_call = [&](std::size_t i) {
    return i + 1 < tokens.size() && tok_punct(tokens[i + 1], '(');
  };
  auto prev_is_std = [&](std::size_t i) {
    return i >= 3 && tok_is(tokens[i - 3], "std") &&
           tok_punct(tokens[i - 2], ':') && tok_punct(tokens[i - 1], ':');
  };

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Tok& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    const auto line = static_cast<std::size_t>(t.line);
    if (d1) {
      for (const BannedToken& b : kWallClockTokens) {
        if (t.text == b.id && (!b.call_like || next_is_call(i))) {
          emit(line, "staleload-d1-wall-clock",
               std::string("wall-clock/host-time API `") + b.id +
                   "` in simulation module `" + scope.module +
                   "`; derive all time from the simulated clock");
        }
      }
    }
    if (d2) {
      for (const BannedToken& b : kRawRngTokens) {
        if (t.text == b.id && (!b.call_like || next_is_call(i))) {
          emit(line, "staleload-d2-raw-rng",
               std::string("unsanctioned random source `") + b.id +
                   "`; draw from sim::Rng (src/sim/rng.h) so runs stay "
                   "seed-reproducible and platform-pinned");
        }
      }
    }
    if (d3) {
      for (const BannedToken& b : kUnorderedTokens) {
        if (t.text == b.id) {
          emit(line, "staleload-d3-unordered-iteration",
               std::string("unordered container `") + b.id +
                   "` in simulation module `" + scope.module +
                   "`; iteration order is hash-dependent and can leak into "
                   "reported results — use a sorted container");
        }
      }
    }
    if (d4) {
      for (const BannedToken& b : kHostStateTokens) {
        if (t.text == b.id && (!b.call_like || next_is_call(i))) {
          emit(line, "staleload-d4-host-state",
               std::string("host-state access `") + b.id +
                   "` in module `" + scope.module +
                   "`; layers below the driver must be pure functions of "
                   "(config, seed)");
        }
      }
    }
    if (t1 && prev_is_std(i)) {
      for (const char* raw : kRawSyncTokens) {
        if (t.text == raw) {
          emit(line, "staleload-t1-raw-mutex",
               std::string("raw std::") + raw +
                   " in src/; use the Clang-thread-safety-annotated "
                   "check::Mutex / check::MutexLock / check::CondVar "
                   "(src/check/sync.h) so -Wthread-safety can see the "
                   "acquisition");
        }
      }
    }
    if (scope.is_header && tok_is(t, "using") && i + 1 < tokens.size() &&
        tok_is(tokens[i + 1], "namespace")) {
      emit(line, "staleload-h2-using-namespace",
           "`using namespace` in a header leaks into every includer");
    }
  }

  // ---- R1/R3: generator constructions. ------------------------------------
  // Matches `Rng name(init)`, `Rng name{init}`, `Rng name = init;`, and the
  // bare local `Rng name;`. Class-scope bare declarations are members
  // (seeded in a constructor initializer list, where the split shows up as
  // `name_(parent.split())` — not matched here); function declarations
  // (`Rng split();`, `Rng make() { ... }`) are recognized by their trailing
  // token and skipped.
  if (r1 || r3) {
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (!tok_is(tokens[i], "Rng")) continue;
      const Tok& name = tokens[i + 1];
      if (name.kind != TokenKind::kIdentifier) continue;
      if (i + 2 >= tokens.size()) continue;
      const Tok& open = tokens[i + 2];
      const auto line = static_cast<std::size_t>(tokens[i].line);
      std::size_t init_begin = 0;
      std::size_t init_end = 0;  // exclusive
      if (tok_punct(open, '(')) {
        const std::size_t close = match_paren(tokens, i + 2);
        if (close >= tokens.size()) continue;
        // `Rng f(...);` at class scope or `Rng f(...) {` anywhere is a
        // function declaration/definition, not a construction.
        const bool class_decl = scopes.in_class(i) && i + 2 < tokens.size();
        const bool has_body =
            close + 1 < tokens.size() && tok_punct(tokens[close + 1], '{');
        if (has_body || (class_decl && close + 1 < tokens.size() &&
                         tok_punct(tokens[close + 1], ';') &&
                         close == i + 3)) {
          // close == i+3 means empty parens: `Rng split();`.
          continue;
        }
        if (has_body) continue;
        init_begin = i + 3;
        init_end = close;
      } else if (tok_punct(open, '{')) {
        const std::size_t close = match_brace(tokens, i + 2);
        if (close >= tokens.size()) continue;
        init_begin = i + 3;
        init_end = close;
      } else if (tok_punct(open, '=')) {
        std::size_t j = i + 3;
        while (j < tokens.size() && !tok_punct(tokens[j], ';')) ++j;
        init_begin = i + 3;
        init_end = j;
      } else if (tok_punct(open, ';')) {
        // Bare declaration: a function-scope local gets the fixed default
        // seed — two of them silently share one stream.
        if (r1 && !scopes.in_class(i)) {
          emit(line, "staleload-r1-unsplit-stream",
               "generator `" + name.text +
                   "` default-constructed in module `" + scope.module +
                   "`; derive it from a named split stream "
                   "(parent.split() / sim::trial_seed)");
        }
        continue;
      } else {
        continue;
      }

      bool sanctioned = false;
      bool entropy = false;
      std::string entropy_token;
      for (std::size_t j = init_begin; j < init_end; ++j) {
        const Tok& it = tokens[j];
        if (it.kind != TokenKind::kIdentifier) continue;
        if (tok_is(it, "split") || tok_is(it, "trial_seed") ||
            tok_is(it, "split_stream")) {
          sanctioned = true;
        }
        if (tok_is(it, "reinterpret_cast") || tok_is(it, "uintptr_t") ||
            tok_is(it, "intptr_t") || tok_is(it, "random_device") ||
            tok_is(it, "getpid") ||
            ((tok_is(it, "time") || tok_is(it, "clock")) &&
             next_is_call(j))) {
          entropy = true;
          entropy_token = it.text;
        }
      }
      if (r3 && entropy) {
        emit(line, "staleload-r3-entropy-seed",
             "generator `" + name.text + "` seeded from `" + entropy_token +
                 "`; seeds enter through config/CLI so every run is "
                 "reproducible from its reported seed");
        continue;
      }
      if (r1 && !sanctioned) {
        emit(line, "staleload-r1-unsplit-stream",
             "generator `" + name.text + "` constructed in module `" +
                 scope.module +
                 "` without a named split stream; derive it via "
                 "parent.split(), sim::trial_seed(), or split_stream()");
      }
    }
  }

  // ---- R2: generators captured by reference into parallel lambdas. --------
  // A by-ref captured generator handed to the parallel runtime is one
  // stream shared across workers — every statistic changes without failing
  // any test except determinism. The rule targets exactly the lambdas that
  // reach `parallel_for_each`/`submit`: inline lambda arguments, and named
  // lambdas (`const auto work = [...]`) whose name is later passed as an
  // argument to such a call. Other lambdas in the same file (per-trial
  // callbacks that run on one worker) are out of scope.
  {
    const bool r2 = in_rng_stream_scope(scope) ||
                    (scope.in_src && (scope.module == "driver" ||
                                      scope.module == "runtime"));
    // Argument spans of parallel calls, and bare-identifier arguments.
    std::vector<std::pair<std::size_t, std::size_t>> parallel_spans;
    std::set<std::string> passed_names;
    if (r2) {
      for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (!tok_is(tokens[i], "parallel_for_each") &&
            !tok_is(tokens[i], "submit")) {
          continue;
        }
        if (!tok_punct(tokens[i + 1], '(')) continue;
        const std::size_t open = i + 1;
        const std::size_t close = match_paren(tokens, open);
        if (close >= tokens.size()) continue;
        parallel_spans.emplace_back(open, close);
        int depth = 0;
        for (std::size_t j = open; j < close; ++j) {
          if (tok_punct(tokens[j], '(') || tok_punct(tokens[j], '[') ||
              tok_punct(tokens[j], '{')) {
            ++depth;
          }
          if (tok_punct(tokens[j], ')') || tok_punct(tokens[j], ']') ||
              tok_punct(tokens[j], '}')) {
            --depth;
          }
          if (depth != 1) continue;
          if (tokens[j].kind != TokenKind::kIdentifier) continue;
          const bool arg_start =
              j == open + 1 || tok_punct(tokens[j - 1], ',') ||
              tok_punct(tokens[j - 1], '(');
          const bool arg_end =
              j + 1 == close || tok_punct(tokens[j + 1], ',') ||
              tok_punct(tokens[j + 1], ')');
          if (arg_start && arg_end) passed_names.insert(tokens[j].text);
        }
      }
    }
    if (r2 && (!parallel_spans.empty() || !passed_names.empty())) {
      for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (!tok_punct(tokens[i], '[')) continue;
        // Expression-position '[': not a subscript (prev is ident/]/)) and
        // not an attribute ('[[').
        if (i > 0) {
          const Tok& prev = tokens[i - 1];
          if (prev.kind == TokenKind::kIdentifier ||
              prev.kind == TokenKind::kNumber || tok_punct(prev, ']') ||
              tok_punct(prev, ')') || tok_punct(prev, '[')) {
            continue;
          }
        }
        if (i + 1 < tokens.size() && tok_punct(tokens[i + 1], '[')) continue;
        // Does this lambda reach a parallel call? Either it sits inside a
        // parallel call's argument list, or it initializes a declaration
        // (`name = [...]`) whose name is passed to one.
        bool reaches_parallel = false;
        for (const auto& [open, end] : parallel_spans) {
          if (i > open && i < end) reaches_parallel = true;
        }
        if (!reaches_parallel && i >= 2 && tok_punct(tokens[i - 1], '=') &&
            tokens[i - 2].kind == TokenKind::kIdentifier &&
            passed_names.count(tokens[i - 2].text) > 0) {
          reaches_parallel = true;
        }
        if (!reaches_parallel) continue;
        // Capture list to the matching ']'.
        std::size_t close = i + 1;
        int depth = 1;
        while (close < tokens.size() && depth > 0) {
          if (tok_punct(tokens[close], '[')) ++depth;
          if (tok_punct(tokens[close], ']')) --depth;
          if (depth == 0) break;
          ++close;
        }
        if (close >= tokens.size()) continue;
        bool default_ref_capture = false;
        for (std::size_t j = i + 1; j < close; ++j) {
          if (!tok_punct(tokens[j], '&')) continue;
          const bool at_element_start =
              j == i + 1 || tok_punct(tokens[j - 1], ',');
          if (!at_element_start) continue;
          if (j + 1 >= close || tok_punct(tokens[j + 1], ',')) {
            default_ref_capture = true;
            continue;
          }
          const Tok& captured = tokens[j + 1];
          if (captured.kind == TokenKind::kIdentifier &&
              is_rng_identifier(captured.text)) {
            emit(static_cast<std::size_t>(captured.line),
                 "staleload-r2-shared-stream-capture",
                 "generator `" + captured.text +
                     "` captured by reference into a lambda in a "
                     "parallel_for_each/thread-pool file; one stream shared "
                     "across workers changes every herd statistic — give "
                     "each worker its own split stream");
          }
        }
        // Default-&: scan the body for generator identifiers that were not
        // declared inside the lambda itself.
        if (!default_ref_capture) continue;
        std::size_t body_open = close + 1;
        if (body_open < tokens.size() && tok_punct(tokens[body_open], '(')) {
          body_open = match_paren(tokens, body_open) + 1;
        }
        while (body_open < tokens.size() &&
               !tok_punct(tokens[body_open], '{') &&
               !tok_punct(tokens[body_open], ';')) {
          ++body_open;
        }
        if (body_open >= tokens.size() || !tok_punct(tokens[body_open], '{')) {
          continue;
        }
        const std::size_t body_close = match_brace(tokens, body_open);
        std::set<std::string> declared;
        for (std::size_t j = body_open + 1; j < body_close; ++j) {
          const Tok& bt = tokens[j];
          if (bt.kind != TokenKind::kIdentifier) continue;
          if (j > 0 && tok_is(tokens[j - 1], "Rng")) {
            declared.insert(bt.text);
            continue;
          }
          if (is_rng_identifier(bt.text) && declared.count(bt.text) == 0) {
            emit(static_cast<std::size_t>(bt.line),
                 "staleload-r2-shared-stream-capture",
                 "generator `" + bt.text +
                     "` reaches this [&] lambda from the enclosing scope in "
                     "a parallel_for_each/thread-pool file; one stream "
                     "shared across workers changes every herd statistic — "
                     "split a per-worker stream instead");
          }
        }
      }
    }
  }

  // ---- T2: members adjacent to a mutex must be annotated. -----------------
  // Convention: members a mutex does not guard go before it; the mutex and
  // everything it guards go last, each guarded member carrying
  // STALE_GUARDED_BY/STALE_PT_GUARDED_BY. The rule enforces the second half:
  // every data member declared after a mutex member in the same class body
  // is annotated (sync primitives and functions are exempt).
  if (t2) {
    for (std::size_t s = 1; s < scopes.scopes.size(); ++s) {
      const Scope& cls = scopes.scopes[s];
      if (cls.kind != ScopeKind::kClass) continue;
      bool mutex_seen = false;
      std::vector<std::size_t> stmt;  // token indices of the current statement
      for (std::size_t i = cls.open + 1; i < cls.close && i < tokens.size();
           ++i) {
        if (scopes.scope_of[i] != s) {
          // Nested scope (inline method body, nested class, brace init):
          // jump past it. The statement keeps accumulating — an inline
          // method's `{...}` body reads as a paren-carrying statement and
          // is classified as a function below.
          const Scope& inner = scopes.scopes[scopes.scope_of[i]];
          i = inner.close;
          if (!stmt.empty() &&
              std::none_of(stmt.begin(), stmt.end(), [&](std::size_t k) {
                return tok_punct(tokens[k], '(');
              })) {
            // Brace-init data member (`std::atomic<int> x{0};`): keep going,
            // the ';' closes the statement.
            continue;
          }
          // Function definition body consumed: statement complete.
          stmt.clear();
          continue;
        }
        if (tok_punct(tokens[i], ';')) {
          // Classify the finished statement.
          std::size_t b = 0;
          // Access specifiers are separate `ident ':'` fragments that end up
          // glued to the next statement; strip them.
          while (b + 1 < stmt.size() &&
                 (tok_is(tokens[stmt[b]], "public") ||
                  tok_is(tokens[stmt[b]], "private") ||
                  tok_is(tokens[stmt[b]], "protected")) &&
                 tok_punct(tokens[stmt[b + 1]], ':')) {
            b += 2;
          }
          std::vector<std::size_t> body(stmt.begin() + static_cast<long>(b),
                                        stmt.end());
          stmt.clear();
          if (body.empty()) continue;
          const Tok& first = tokens[body.front()];
          if (tok_is(first, "using") || tok_is(first, "typedef") ||
              tok_is(first, "friend") || tok_is(first, "static") ||
              tok_is(first, "enum") || tok_is(first, "struct") ||
              tok_is(first, "class") || tok_is(first, "template")) {
            continue;
          }
          bool annotated = false;
          bool is_sync_member = false;
          bool has_toplevel_paren = false;
          int angle_depth = 0;
          for (std::size_t k = 0; k < body.size(); ++k) {
            const Tok& bt = tokens[body[k]];
            if (bt.kind == TokenKind::kIdentifier) {
              if (bt.text == "STALE_GUARDED_BY" ||
                  bt.text == "STALE_PT_GUARDED_BY") {
                annotated = true;
              }
              if (bt.text == "Mutex" || bt.text == "CondVar" ||
                  bt.text == "Serial" || bt.text == "mutex" ||
                  bt.text == "condition_variable" ||
                  bt.text == "condition_variable_any") {
                is_sync_member = true;
              }
              continue;
            }
            if (tok_punct(bt, '<') && k > 0 &&
                tokens[body[k - 1]].kind == TokenKind::kIdentifier) {
              ++angle_depth;
              continue;
            }
            if (tok_punct(bt, '>') && angle_depth > 0 &&
                !(k > 0 && tok_punct(tokens[body[k - 1]], '-'))) {
              --angle_depth;
              continue;
            }
            if (tok_punct(bt, '(') && angle_depth == 0 && !annotated) {
              has_toplevel_paren = true;
            }
          }
          if (annotated) continue;  // guarded; satisfied by construction
          if (is_sync_member) {
            mutex_seen = true;
            continue;
          }
          if (has_toplevel_paren) continue;  // function declaration
          if (!mutex_seen) continue;
          // Data member after the mutex without an annotation.
          std::string member;
          for (std::size_t k = body.size(); k > 0; --k) {
            const Tok& bt = tokens[body[k - 1]];
            if (bt.kind == TokenKind::kIdentifier) {
              member = bt.text;
              break;
            }
            if (tok_punct(bt, '=')) continue;
          }
          // Name the member by the identifier before '=' / end.
          for (std::size_t k = 0; k + 1 < body.size(); ++k) {
            if (tok_punct(tokens[body[k + 1]], '=')) {
              if (tokens[body[k]].kind == TokenKind::kIdentifier) {
                member = tokens[body[k]].text;
              }
              break;
            }
          }
          emit(static_cast<std::size_t>(first.line),
               "staleload-t2-unguarded-member",
               "member `" + member + "` of `" +
                   (cls.name.empty() ? std::string("<anonymous>") : cls.name) +
                   "` is declared after a mutex but carries no "
                   "STALE_GUARDED_BY/STALE_PT_GUARDED_BY; annotate it (or "
                   "move members the mutex does not guard above the mutex)");
          continue;
        }
        stmt.push_back(i);
      }
    }
  }

  // ---- C1: contract coverage of out-of-line mutating methods. -------------
  if (c1) {
    for (std::size_t i = 4; i < tokens.size(); ++i) {
      if (!tok_punct(tokens[i], '(')) continue;
      const Tok& method = tokens[i - 1];
      if (method.kind != TokenKind::kIdentifier) continue;
      if (!tok_punct(tokens[i - 2], ':') || !tok_punct(tokens[i - 3], ':')) {
        continue;
      }
      const Tok& klass = tokens[i - 4];
      if (klass.kind != TokenKind::kIdentifier) continue;
      if (klass.text == method.text) continue;  // constructor
      if (tok_is(method, "operator")) continue;
      const std::size_t close = match_paren(tokens, i);
      if (close >= tokens.size()) continue;
      // Qualifier scan between ')' and the body '{'. A const method, a
      // declaration (';'), a constructor initializer (':'), or anything
      // unexpected ends the match.
      bool is_const = false;
      std::size_t body_open = tokens.size();
      for (std::size_t j = close + 1; j < tokens.size(); ++j) {
        const Tok& q = tokens[j];
        if (q.kind == TokenKind::kIdentifier) {
          if (tok_is(q, "const")) is_const = true;
          continue;  // noexcept, override, final, ...
        }
        if (tok_punct(q, '{')) {
          body_open = j;
        }
        break;
      }
      if (is_const || body_open >= tokens.size()) continue;
      const std::size_t body_close = match_brace(tokens, body_open);
      bool has_contract = false;
      for (std::size_t j = body_open + 1; j < body_close; ++j) {
        const Tok& bt = tokens[j];
        if (bt.kind != TokenKind::kIdentifier) continue;
        if (tok_is(bt, "STALE_ASSERT") || tok_is(bt, "STALE_DCHECK") ||
            tok_is(bt, "STALE_AUDIT")) {
          has_contract = true;
          break;
        }
      }
      if (has_contract) continue;
      const std::string key =
          scope.module + "/" + klass.text + "::" + method.text;
      if (config.contract_allowlist.count(key) > 0) {
        if (used_allowlist != nullptr) used_allowlist->insert(key);
        continue;
      }
      emit(static_cast<std::size_t>(klass.line),
           "staleload-c1-contract-coverage",
           "mutating method `" + klass.text + "::" + method.text +
               "` in module `" + scope.module +
               "` carries no STALE_ASSERT/STALE_DCHECK/STALE_AUDIT contract "
               "hook; add one or register `" + key +
               "` in tools/lint/contract_allowlist.txt");
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

// ---------------------------------------------------------------------------
// scan_tree / apply_fixes / to_json / to_sarif
// ---------------------------------------------------------------------------

ScanResult scan_tree(const std::vector<std::string>& roots,
                     const std::string& allowlist_path) {
  namespace fs = std::filesystem;
  ScanResult result;

  LintConfig config;
  if (!allowlist_path.empty()) {
    std::ifstream in(allowlist_path, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      config.contract_allowlist = parse_contract_allowlist(buffer.str());
    }
  }

  static const std::set<std::string> kExtensions = {".h", ".hpp", ".cc",
                                                    ".cpp", ".cxx"};
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
      continue;
    }
    fs::recursive_directory_iterator it(
        root, fs::directory_options::skip_permission_denied, ec);
    if (ec) {
      result.errors.push_back(root + ": " + ec.message());
      continue;
    }
    const fs::recursive_directory_iterator end;
    for (; it != end; it.increment(ec)) {
      if (ec) {
        result.errors.push_back(root + ": " + ec.message());
        break;
      }
      const fs::directory_entry& entry = *it;
      const std::string name = entry.path().filename().generic_string();
      if (entry.is_directory()) {
        if (name.rfind("build", 0) == 0 || name == ".git" ||
            name == "lint_fixtures") {
          it.disable_recursion_pending();
        }
        continue;
      }
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().generic_string();
      if (kExtensions.count(ext) == 0) continue;
      files.push_back(entry.path().generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  std::set<std::string> used_allowlist;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      result.errors.push_back(file + ": unreadable");
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string contents = buffer.str();
    ++result.files_scanned;
    std::vector<Finding> found =
        scan_file(file, contents, config, &used_allowlist);
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(found.begin()),
                           std::make_move_iterator(found.end()));
  }
  // C2: every allowlist entry must still exempt something; stale entries
  // mean either the method gained a contract (delete the entry) or it was
  // renamed (the rename dodged the exemption).
  for (const std::string& entry : config.contract_allowlist) {
    if (used_allowlist.count(entry) > 0) continue;
    result.findings.push_back(Finding{
        allowlist_path, 1, "staleload-c2-stale-allowlist",
        "allowlist entry `" + entry +
            "` matches no uncovered method; delete it (the method gained a "
            "contract hook or was renamed)",
        ""});
  }
  return result;
}

int apply_fixes(const std::vector<Finding>& findings,
                std::vector<std::string>* errors) {
  std::map<std::string, std::map<int, std::string>> per_file;
  for (const Finding& f : findings) {
    if (f.has_fix()) per_file[f.file][f.line] = f.fixed_line;
  }
  int applied = 0;
  for (const auto& [file, fixes] : per_file) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      if (errors != nullptr) errors->push_back(file + ": unreadable");
      continue;
    }
    std::vector<std::string> file_lines;
    std::string line;
    while (std::getline(in, line)) file_lines.push_back(line);
    in.close();
    bool changed = false;
    for (const auto& [lineno, replacement] : fixes) {
      if (lineno < 1 || static_cast<std::size_t>(lineno) > file_lines.size()) {
        if (errors != nullptr) {
          errors->push_back(file + ": fix line " + std::to_string(lineno) +
                            " out of range");
        }
        continue;
      }
      file_lines[static_cast<std::size_t>(lineno) - 1] = replacement;
      changed = true;
      ++applied;
    }
    if (!changed) continue;
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (errors != nullptr) errors->push_back(file + ": unwritable");
      continue;
    }
    for (const std::string& l : file_lines) out << l << '\n';
  }
  return applied;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// One-line rule descriptions for the SARIF reportingDescriptor table.
const std::map<std::string, std::string>& rule_descriptions() {
  static const std::map<std::string, std::string> kRules = {
      {"staleload-d1-wall-clock",
       "No wall-clock/host-time APIs in simulation modules"},
      {"staleload-d2-raw-rng",
       "All randomness flows through the sanctioned sim::Rng engine"},
      {"staleload-d3-unordered-iteration",
       "No unordered containers in result-feeding layers"},
      {"staleload-d4-host-state",
       "No host-state reads below the driver layer"},
      {"staleload-l1-layering",
       "#include edges follow the declared module DAG"},
      {"staleload-l2-include-form",
       "Project includes are quoted and module-qualified; standard headers "
       "are angle-bracketed"},
      {"staleload-h1-include-guard", "Headers open with an include guard"},
      {"staleload-h2-using-namespace", "No using namespace in headers"},
      {"staleload-h3-todo-ref",
       "TODO/FIXME annotations carry an owner or issue reference"},
      {"staleload-r1-unsplit-stream",
       "Generators in simulation modules derive from named split streams"},
      {"staleload-r2-shared-stream-capture",
       "No generator is captured by reference into a parallel lambda"},
      {"staleload-r3-entropy-seed",
       "No generator is seeded from pointers, wall time, or random_device"},
      {"staleload-t1-raw-mutex",
       "src/ synchronizes through the annotated check::Mutex primitives"},
      {"staleload-t2-unguarded-member",
       "Members declared after a mutex carry STALE_GUARDED_BY"},
      {"staleload-c1-contract-coverage",
       "Mutating sim/queueing/loadinfo methods carry a contract hook or an "
       "allowlist entry"},
      {"staleload-c2-stale-allowlist",
       "Contract allowlist entries must still exempt something"},
      {"staleload-nolint-unbalanced",
       "NOLIN" "TBEGIN/NOLIN" "TEND markers are balanced and matched"},
  };
  return kRules;
}

}  // namespace

std::string to_json(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) os << ",";
    os << "\n  {\"file\": \"" << json_escape(f.file)
       << "\", \"line\": " << f.line << ", \"rule\": \""
       << json_escape(f.rule) << "\", \"message\": \""
       << json_escape(f.message) << "\"}";
  }
  if (!findings.empty()) os << "\n";
  os << "]\n";
  return os.str();
}

std::string to_sarif(const std::vector<Finding>& findings) {
  // Rules present in this run (GitHub cross-references results by ruleId).
  std::set<std::string> present;
  for (const Finding& f : findings) present.insert(f.rule);

  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"staleload_lint\",\n"
     << "          \"informationUri\": "
        "\"https://example.invalid/staleload/tools/lint\",\n"
     << "          \"rules\": [";
  bool first = true;
  for (const std::string& rule : present) {
    if (!first) os << ",";
    first = false;
    const auto it = rule_descriptions().find(rule);
    const std::string desc =
        it != rule_descriptions().end() ? it->second : rule;
    os << "\n            {\"id\": \"" << json_escape(rule)
       << "\", \"shortDescription\": {\"text\": \"" << json_escape(desc)
       << "\"}}";
  }
  if (!present.empty()) os << "\n          ";
  os << "]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) os << ",";
    os << "\n        {\n"
       << "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n"
       << "          \"level\": \"error\",\n"
       << "          \"message\": {\"text\": \"" << json_escape(f.message)
       << "\"},\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": {\"uri\": \""
       << json_escape(f.file) << "\"},\n"
       << "                \"region\": {\"startLine\": " << f.line << "}\n"
       << "              }\n"
       << "            }\n"
       << "          ]\n"
       << "        }";
  }
  if (!findings.empty()) os << "\n      ";
  os << "]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

}  // namespace stale::lint
