#include "lint/lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace stale::lint {

namespace {

// ---------------------------------------------------------------------------
// Source preprocessing: split a file into a per-line "code" view (comments,
// string literals, and char literals blanked out, so prose and literals can
// never trip a D/L rule) and a per-line "comment" view (comment text only,
// which is what the H3 annotation rule inspects).
// ---------------------------------------------------------------------------

struct Views {
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::string> comment;
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

Views split_views(std::string_view text) {
  Views v;
  enum class State { kCode, kLine, kBlock, kStr, kChr, kRaw };
  State state = State::kCode;
  std::string raw_line;
  std::string code_line;
  std::string comment_line;
  std::string raw_delim;  // for raw string literals: ")delim\""
  std::size_t i = 0;
  const std::size_t n = text.size();

  auto flush_line = [&] {
    v.raw.push_back(raw_line);
    v.code.push_back(code_line);
    v.comment.push_back(comment_line);
    raw_line.clear();
    code_line.clear();
    comment_line.clear();
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      if (state == State::kLine) state = State::kCode;
      flush_line();
      ++i;
      continue;
    }
    raw_line.push_back(c);
    switch (state) {
      case State::kCode: {
        const char next = (i + 1 < n) ? text[i + 1] : '\0';
        if (c == '/' && next == '/') {
          state = State::kLine;
          raw_line.push_back(next);
          i += 2;
          continue;
        }
        if (c == '/' && next == '*') {
          state = State::kBlock;
          code_line.push_back(' ');
          code_line.push_back(' ');
          raw_line.push_back(next);
          i += 2;
          continue;
        }
        if (c == '"') {
          // Raw string literal? The '"' must directly follow R (with an
          // optional u8/u/U/L prefix before the R, which we get for free by
          // only inspecting the R).
          const bool raw_lit = !code_line.empty() && code_line.back() == 'R' &&
                               (code_line.size() < 2 ||
                                !is_ident_char(code_line[code_line.size() - 2]));
          code_line.push_back('"');
          if (raw_lit) {
            // Collect the delimiter up to '('.
            raw_delim = ")";
            std::size_t j = i + 1;
            while (j < n && text[j] != '(' && text[j] != '\n') {
              raw_delim.push_back(text[j]);
              raw_line.push_back(text[j]);
              ++j;
            }
            raw_delim.push_back('"');
            i = j + 1;  // past '('
            if (j < n) raw_line.push_back(text[j]);
            state = State::kRaw;
            continue;
          }
          state = State::kStr;
          ++i;
          continue;
        }
        if (c == '\'') {
          code_line.push_back('\'');
          state = State::kChr;
          ++i;
          continue;
        }
        code_line.push_back(c);
        ++i;
        break;
      }
      case State::kLine:
        comment_line.push_back(c);
        ++i;
        break;
      case State::kBlock: {
        const char next = (i + 1 < n) ? text[i + 1] : '\0';
        if (c == '*' && next == '/') {
          state = State::kCode;
          raw_line.push_back(next);
          i += 2;
          continue;
        }
        comment_line.push_back(c);
        ++i;
        break;
      }
      case State::kStr: {
        if (c == '\\' && i + 1 < n && text[i + 1] != '\n') {
          raw_line.push_back(text[i + 1]);
          i += 2;
          continue;
        }
        if (c == '"') {
          code_line.push_back('"');
          state = State::kCode;
        }
        ++i;
        break;
      }
      case State::kChr: {
        if (c == '\\' && i + 1 < n && text[i + 1] != '\n') {
          raw_line.push_back(text[i + 1]);
          i += 2;
          continue;
        }
        if (c == '\'') {
          code_line.push_back('\'');
          state = State::kCode;
        }
        ++i;
        break;
      }
      case State::kRaw: {
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          // Append the rest of the close sequence to raw (first char already
          // appended above).
          raw_line.append(raw_delim, 1, raw_delim.size() - 1);
          code_line.push_back('"');
          i += raw_delim.size();
          state = State::kCode;
          continue;
        }
        ++i;
        break;
      }
    }
  }
  flush_line();
  return v;
}

// ---------------------------------------------------------------------------
// Path classification.
// ---------------------------------------------------------------------------

struct FileScope {
  bool in_src = false;
  std::string module;   // "sim", "driver", ... when in_src; else "tools" etc.
  std::string basename;
  bool is_header = false;
};

FileScope classify(std::string_view path) {
  FileScope scope;
  std::vector<std::string> parts;
  std::string current;
  for (char c : path) {
    if (c == '/' || c == '\\') {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) parts.push_back(current);
  if (!parts.empty()) scope.basename = parts.back();
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (parts[i] == "src") {
      scope.in_src = true;
      scope.module = parts[i + 1];
      break;
    }
  }
  if (!scope.in_src) {
    static const std::array<const char*, 4> kTop = {"tools", "bench", "tests",
                                                    "examples"};
    for (const std::string& part : parts) {
      for (const char* top : kTop) {
        if (part == top) scope.module = top;
      }
      if (!scope.module.empty()) break;
    }
  }
  const auto dot = scope.basename.rfind('.');
  if (dot != std::string::npos) {
    const std::string ext = scope.basename.substr(dot);
    scope.is_header = (ext == ".h" || ext == ".hpp");
  }
  return scope;
}

// ---------------------------------------------------------------------------
// Rule tables.
// ---------------------------------------------------------------------------

// The declared include DAG over src/ modules. A module may include headers
// from exactly the modules listed (its own module and everything below it).
// Adding a new src/ module requires adding it here, i.e. declaring its layer.
const std::map<std::string, std::set<std::string>>& layer_dag() {
  static const std::map<std::string, std::set<std::string>> kDag = {
      {"check", {"check"}},
      // obs sits just above check so every simulation layer can compile in
      // its TraceSink hooks without a layering violation.
      {"obs", {"obs", "check"}},
      {"sim", {"sim", "obs", "check"}},
      {"runtime", {"runtime", "check"}},
      {"queueing", {"queueing", "sim", "obs", "check"}},
      {"core", {"core", "sim", "check"}},
      {"workload", {"workload", "sim", "check"}},
      {"analysis", {"analysis", "sim", "check"}},
      {"loadinfo", {"loadinfo", "queueing", "sim", "obs", "check"}},
      {"policy", {"policy", "core", "sim", "obs", "check"}},
      {"fault",
       {"fault", "policy", "loadinfo", "queueing", "core", "sim", "obs",
        "check"}},
      // health is the membership layer shared by both stacks: it reuses the
      // fault layer's crash semantics and stats, and both net and driver sit
      // above it.
      {"health",
       {"health", "fault", "policy", "loadinfo", "queueing", "core", "sim",
        "obs", "check"}},
      // net is the live-service layer (event-loop sockets + the staleload_lb
      // dispatcher). It drives the same policy/loadinfo/obs/fault stack as
      // the simulator but sits beside driver: neither may include the other,
      // and no simulation layer may reach up into net.
      {"net",
       {"net", "health", "fault", "policy", "loadinfo", "queueing", "core",
        "sim", "obs", "check"}},
      {"driver",
       {"driver", "health", "fault", "policy", "loadinfo", "queueing",
        "core", "sim", "obs", "workload", "analysis", "runtime", "check"}},
  };
  return kDag;
}

struct Token {
  const char* id;
  bool call_like;  // must be followed by '(' to count (e.g. `time`, `rand`)
};

// D1: wall-clock / host-time APIs. Simulation layers derive all time from
// the simulated clock; reading host time breaks run-to-run determinism.
constexpr std::array<Token, 16> kWallClockTokens = {{
    {"system_clock", false},
    {"steady_clock", false},
    {"high_resolution_clock", false},
    {"file_clock", false},
    {"utc_clock", false},
    {"gettimeofday", false},
    {"clock_gettime", false},
    {"timespec_get", false},
    {"localtime", false},
    {"gmtime", false},
    {"strftime", false},
    {"mktime", false},
    {"asctime", false},
    {"ctime", false},
    {"time", true},
    {"clock", true},
}};

// D2: randomness outside the sanctioned engine. Everything must draw from
// sim::Rng (xoshiro256++), whose output is platform-pinned; std engines and
// C rand are either non-deterministic (random_device) or unsanctioned state.
constexpr std::array<Token, 17> kRawRngTokens = {{
    {"random_device", false},
    {"mt19937", false},
    {"mt19937_64", false},
    {"minstd_rand", false},
    {"minstd_rand0", false},
    {"default_random_engine", false},
    {"knuth_b", false},
    {"ranlux24", false},
    {"ranlux24_base", false},
    {"ranlux48", false},
    {"ranlux48_base", false},
    {"rand", true},
    {"srand", true},
    {"rand_r", true},
    {"drand48", true},
    {"lrand48", true},
    {"srandom", true},
}};

// D3: unordered containers in result-feeding layers. Their iteration order
// is hash/seed dependent; anything aggregated from such an iteration can
// differ across platforms or runs.
constexpr std::array<Token, 4> kUnorderedTokens = {{
    {"unordered_map", false},
    {"unordered_set", false},
    {"unordered_multimap", false},
    {"unordered_multiset", false},
}};

// D4: host-state reads (environment, process identity, filesystem) in the
// core simulation layers. Configuration enters through the driver; the
// layers below it must be pure functions of (config, seed).
constexpr std::array<Token, 14> kHostStateTokens = {{
    {"getenv", true},
    {"secure_getenv", true},
    {"getpid", true},
    {"gethostname", true},
    {"getcwd", true},
    {"getuid", true},
    {"uname", true},
    {"fopen", true},
    {"popen", true},
    {"system", true},
    {"ifstream", false},
    {"ofstream", false},
    {"fstream", false},
    {"filesystem", false},
}};

// Modules the D1/D3 determinism rules cover: every layer whose behaviour
// feeds reported results. runtime (thread pool) and check (contracts) are
// excluded — they do not influence simulated outcomes. net is deliberately
// outside this scope: it is the live system, where wall-clock reads
// (net/clock.h) are the whole point. The simulation boundary is enforced
// the other way — L1 stops any sim-side module from including net.
bool in_simulation_scope(const FileScope& scope) {
  static const std::set<std::string> kSim = {
      "sim",      "queueing", "core",   "loadinfo", "policy", "fault",
      "workload", "analysis", "driver", "obs",      "health"};
  return scope.in_src && kSim.count(scope.module) > 0;
}

// Modules the D4 host-state rule covers (the paper-critical inner layers).
// net is exempt here too: a socket server legitimately owns fds and talks
// to the host.
bool in_host_state_scope(const FileScope& scope) {
  static const std::set<std::string> kInner = {
      "sim", "queueing", "policy", "loadinfo", "fault", "obs", "health"};
  return scope.in_src && kInner.count(scope.module) > 0;
}

bool is_sanctioned_rng_file(const FileScope& scope) {
  return scope.in_src && scope.module == "sim" &&
         scope.basename.rfind("rng.", 0) == 0;
}

// ---------------------------------------------------------------------------
// Matching helpers.
// ---------------------------------------------------------------------------

bool line_has_token(const std::string& line, const Token& token) {
  const std::string_view id(token.id);
  std::size_t pos = 0;
  while ((pos = line.find(id, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    const std::size_t end = pos + id.size();
    const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) {
      if (!token.call_like) return true;
      std::size_t j = end;
      while (j < line.size() &&
             (line[j] == ' ' || line[j] == '\t')) {
        ++j;
      }
      if (j < line.size() && line[j] == '(') return true;
    }
    pos = end;
  }
  return false;
}

// Extracts the quoted path of an `#include "..."` directive, if any. The
// directive prefix is matched against the code view (so commented-out
// includes do not count) while the payload comes from the raw line (the
// code view blanks string literals).
bool parse_quoted_include(const std::string& code_line,
                          const std::string& raw_line, std::string* out) {
  std::size_t i = 0;
  while (i < code_line.size() &&
         (code_line[i] == ' ' || code_line[i] == '\t')) {
    ++i;
  }
  if (i >= code_line.size() || code_line[i] != '#') return false;
  ++i;
  while (i < code_line.size() &&
         (code_line[i] == ' ' || code_line[i] == '\t')) {
    ++i;
  }
  if (code_line.compare(i, 7, "include") != 0) return false;
  const std::size_t open = raw_line.find('"', i + 7);
  if (open == std::string::npos) return false;
  const std::size_t close = raw_line.find('"', open + 1);
  if (close == std::string::npos) return false;
  *out = raw_line.substr(open + 1, close - open - 1);
  return true;
}

// ---------------------------------------------------------------------------
// NOLINT suppression.
// ---------------------------------------------------------------------------

struct Suppression {
  bool all = false;  // bare NOLINT: silence every rule on the line
  std::vector<std::string> rules;
  bool active() const { return all || !rules.empty(); }
  bool covers(const std::string& rule) const {
    if (all) return true;
    for (const std::string& r : rules) {
      if (r == rule || r == "staleload") return true;
    }
    return false;
  }
};

void parse_nolint(const std::string& raw_line, Suppression* same,
                  Suppression* next) {
  std::size_t pos = 0;
  while ((pos = raw_line.find("NOLINT", pos)) != std::string::npos) {
    std::size_t after = pos + 6;
    Suppression* target = same;
    if (raw_line.compare(after, 8, "NEXTLINE") == 0) {
      target = next;
      after += 8;
    }
    if (after < raw_line.size() && raw_line[after] == '(') {
      const std::size_t close = raw_line.find(')', after);
      std::string list = raw_line.substr(
          after + 1,
          close == std::string::npos ? std::string::npos : close - after - 1);
      std::string item;
      std::istringstream items(list);
      while (std::getline(items, item, ',')) {
        const auto first = item.find_first_not_of(" \t");
        const auto last = item.find_last_not_of(" \t");
        if (first != std::string::npos) {
          target->rules.push_back(item.substr(first, last - first + 1));
        }
      }
      if (target->rules.empty()) target->all = true;
    } else {
      target->all = true;
    }
    pos = after;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// scan_file
// ---------------------------------------------------------------------------

std::vector<Finding> scan_file(std::string_view path,
                               std::string_view contents) {
  const FileScope scope = classify(path);
  const Views views = split_views(contents);
  const std::size_t lines = views.raw.size();

  std::vector<Suppression> same(lines);
  std::vector<Suppression> next(lines);
  for (std::size_t i = 0; i < lines; ++i) {
    parse_nolint(views.raw[i], &same[i], &next[i]);
  }
  auto suppressed = [&](std::size_t i, const std::string& rule) {
    if (same[i].covers(rule)) return true;
    return i > 0 && next[i - 1].active() && next[i - 1].covers(rule);
  };

  std::vector<Finding> findings;
  auto emit = [&](std::size_t i, const char* rule, std::string message) {
    if (suppressed(i, rule)) return;
    for (const Finding& f : findings) {
      if (f.line == static_cast<int>(i) + 1 && f.rule == rule) return;
    }
    findings.push_back(Finding{std::string(path), static_cast<int>(i) + 1,
                               rule, std::move(message)});
  };

  const bool d1 = in_simulation_scope(scope);
  const bool d2 = !is_sanctioned_rng_file(scope);
  const bool d3 = in_simulation_scope(scope);
  const bool d4 = in_host_state_scope(scope);

  for (std::size_t i = 0; i < lines; ++i) {
    // H3 looks at the comment view, so it must run before the code-emptiness
    // skip: annotation comments usually sit on comment-only lines.
    const std::string& comment = views.comment[i];
    for (const char* marker : {"TODO", "FIXME"}) {
      const std::size_t pos = comment.find(marker);
      if (pos == std::string::npos) continue;
      if (pos > 0 && is_ident_char(comment[pos - 1])) continue;
      std::size_t j = pos + std::string_view(marker).size();
      if (j < comment.size() && is_ident_char(comment[j])) continue;
      while (j < comment.size() && comment[j] == ' ') ++j;
      const bool has_ref = j < comment.size() && comment[j] == '(' &&
                           comment.find(')', j) != std::string::npos &&
                           comment.find(')', j) > j + 1;
      if (!has_ref) {
        emit(i, "staleload-h3-todo-ref",
             std::string(marker) +
                 " without an owner/issue reference; write " + marker +
                 "(#issue) or " + marker + "(name)");
      }
    }

    const std::string& code = views.code[i];
    if (code.empty()) continue;
    if (d1) {
      for (const Token& t : kWallClockTokens) {
        if (line_has_token(code, t)) {
          emit(i, "staleload-d1-wall-clock",
               std::string("wall-clock/host-time API `") + t.id +
                   "` in simulation module `" + scope.module +
                   "`; derive all time from the simulated clock");
        }
      }
    }
    if (d2) {
      for (const Token& t : kRawRngTokens) {
        if (line_has_token(code, t)) {
          emit(i, "staleload-d2-raw-rng",
               std::string("unsanctioned random source `") + t.id +
                   "`; draw from sim::Rng (src/sim/rng.h) so runs stay "
                   "seed-reproducible and platform-pinned");
        }
      }
    }
    if (d3) {
      for (const Token& t : kUnorderedTokens) {
        if (line_has_token(code, t)) {
          emit(i, "staleload-d3-unordered-iteration",
               std::string("unordered container `") + t.id +
                   "` in simulation module `" + scope.module +
                   "`; iteration order is hash-dependent and can leak into "
                   "reported results — use a sorted container");
        }
      }
    }
    if (d4) {
      for (const Token& t : kHostStateTokens) {
        if (line_has_token(code, t)) {
          emit(i, "staleload-d4-host-state",
               std::string("host-state access `") + t.id +
                   "` in module `" + scope.module +
                   "`; layers below the driver must be pure functions of "
                   "(config, seed)");
        }
      }
    }

    std::string include_path;
    if (parse_quoted_include(code, views.raw[i], &include_path)) {
      if (include_path.find("..") != std::string::npos) {
        emit(i, "staleload-l2-include-form",
             "relative include \"" + include_path +
                 "\"; include project headers as \"module/file.h\"");
      } else if (scope.in_src) {
        const auto slash = include_path.find('/');
        if (slash == std::string::npos) {
          emit(i, "staleload-l2-include-form",
               "unqualified include \"" + include_path +
                   "\"; src/ headers are included as \"module/file.h\"");
        } else {
          const std::string target = include_path.substr(0, slash);
          const auto& dag = layer_dag();
          const auto mod = dag.find(scope.module);
          if (mod == dag.end()) {
            emit(i, "staleload-l1-layering",
                 "module `" + scope.module +
                     "` is not declared in the layer DAG; add it to "
                     "layer_dag() in tools/lint/lint.cpp");
          } else if (dag.count(target) > 0 &&
                     mod->second.count(target) == 0) {
            std::string allowed;
            for (const std::string& m : mod->second) {
              if (!allowed.empty()) allowed += ", ";
              allowed += m;
            }
            emit(i, "staleload-l1-layering",
                 "include \"" + include_path + "\" violates the layer DAG: `" +
                     scope.module + "` may only include {" + allowed + "}");
          } else if (dag.count(target) == 0) {
            emit(i, "staleload-l1-layering",
                 "include \"" + include_path +
                     "\" targets `" + target +
                     "`, which is not a declared src/ module");
          }
        }
      }
    }

    if (scope.is_header && code.find("using namespace") != std::string::npos) {
      emit(i, "staleload-h2-using-namespace",
           "`using namespace` in a header leaks into every includer");
    }
  }

  if (scope.is_header) {
    for (std::size_t i = 0; i < lines; ++i) {
      std::string trimmed = views.code[i];
      const auto first = trimmed.find_first_not_of(" \t");
      if (first == std::string::npos) continue;
      trimmed = trimmed.substr(first);
      const bool guarded = trimmed.rfind("#pragma once", 0) == 0 ||
                           trimmed.rfind("#ifndef", 0) == 0 ||
                           trimmed.rfind("#if !defined", 0) == 0;
      if (!guarded) {
        emit(i, "staleload-h1-include-guard",
             "header has code before `#pragma once` (or an #ifndef guard)");
      }
      break;  // only the first non-empty code line decides
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

// ---------------------------------------------------------------------------
// scan_tree / to_json
// ---------------------------------------------------------------------------

ScanResult scan_tree(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  ScanResult result;
  static const std::set<std::string> kExtensions = {".h", ".hpp", ".cc",
                                                    ".cpp", ".cxx"};
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
      continue;
    }
    fs::recursive_directory_iterator it(
        root, fs::directory_options::skip_permission_denied, ec);
    if (ec) {
      result.errors.push_back(root + ": " + ec.message());
      continue;
    }
    const fs::recursive_directory_iterator end;
    for (; it != end; it.increment(ec)) {
      if (ec) {
        result.errors.push_back(root + ": " + ec.message());
        break;
      }
      const fs::directory_entry& entry = *it;
      const std::string name = entry.path().filename().generic_string();
      if (entry.is_directory()) {
        if (name.rfind("build", 0) == 0 || name == ".git" ||
            name == "lint_fixtures") {
          it.disable_recursion_pending();
        }
        continue;
      }
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().generic_string();
      if (kExtensions.count(ext) == 0) continue;
      files.push_back(entry.path().generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      result.errors.push_back(file + ": unreadable");
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string contents = buffer.str();
    ++result.files_scanned;
    std::vector<Finding> found = scan_file(file, contents);
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(found.begin()),
                           std::make_move_iterator(found.end()));
  }
  return result;
}

std::string to_json(const std::vector<Finding>& findings) {
  auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out.push_back(c);
          }
      }
    }
    return out;
  };
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) os << ",";
    os << "\n  {\"file\": \"" << escape(f.file) << "\", \"line\": " << f.line
       << ", \"rule\": \"" << escape(f.rule) << "\", \"message\": \""
       << escape(f.message) << "\"}";
  }
  if (!findings.empty()) os << "\n";
  os << "]\n";
  return os.str();
}

}  // namespace stale::lint
