// Token-stream view of a C++ source file for the staleload lint.
//
// The v1 lint matched rule tokens against per-line "code views" (comments
// and literals blanked out). That was enough for the D/L/H families, whose
// findings are properties of a single line, but the v2 rule families reason
// about *structure*: whether an `Rng` construction's initializer derives
// from a split stream (R1), whether a lambda's capture list reaches an
// enclosing generator (R2), which class body a member declaration belongs
// to and whether a mutex precedes it (T2), and whether a method definition's
// body contains a contract hook (C1). Those questions need real tokens with
// positions, plus just enough scope tracking to know "which braces am I
// inside" — not a full parser.
//
// `tokenize` lexes the comment-stripped code views produced by the line
// splitter (so prose can never become a token) into identifiers, numbers,
// and punctuators, each stamped with its 0-based line. `ScopeMap` then walks
// the token stream once and labels every brace span as a class body, an
// enum body, or "other" (function/namespace/initializer), giving the rules
// O(1) "am I at class scope?" answers. The tracking is deliberately
// lightweight: it matches braces exactly but classifies them heuristically
// (a `class`/`struct` head followed by `{` before any `;`), which is
// correct for this codebase's idiom and pinned by the self-test fixtures.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace stale::lint {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords (the lint does not distinguish)
  kNumber,
  kPunct,  // one punctuator character per token ('::' arrives as two ':')
  kString,  // a blanked-out string/char literal ("" or '' in the code view)
};

struct Tok {
  TokenKind kind;
  std::string text;
  int line = 0;  // 0-based line index into the Views arrays
};

// Lexes the per-line code views (comments/literals already blanked) into a
// flat token stream. String and char literals survive as kString markers so
// the scope tracker can still see `'{'` is not a brace.
std::vector<Tok> tokenize(const std::vector<std::string>& code_lines);

enum class ScopeKind {
  kTop,     // file scope
  kClass,   // class/struct body
  kEnum,    // enum body — members are not data members
  kOther,   // function body, namespace, initializer list, lambda, ...
};

struct Scope {
  ScopeKind kind = ScopeKind::kOther;
  std::size_t open = 0;   // token index of '{'
  std::size_t close = 0;  // token index of matching '}' (or end of stream)
  std::string name;       // class name for kClass scopes, else empty
};

// One pass over the token stream that matches every brace pair and
// classifies it. `scope_of[i]` is the index (into `scopes`) of the
// innermost scope containing token i; scopes[0] is the synthetic file
// scope. Class-body detection: a `class`/`struct` token not preceded by
// `enum` whose head reaches `{` before `;` or `(` (so forward declarations
// and `struct`-returning function signatures stay non-scopes).
struct ScopeMap {
  std::vector<Scope> scopes;
  std::vector<std::size_t> scope_of;  // parallel to the token stream

  const Scope& at(std::size_t token_index) const {
    return scopes[scope_of[token_index]];
  }
  bool in_class(std::size_t token_index) const {
    return at(token_index).kind == ScopeKind::kClass;
  }
};

ScopeMap build_scope_map(const std::vector<Tok>& tokens);

// True for identifier characters (shared with the line-based matchers).
bool lint_is_ident_char(char c);

// Finds the token index of the '}' matching the '{' at `open` (tokens[open]
// must be '{'); returns tokens.size() when unmatched.
std::size_t match_brace(const std::vector<Tok>& tokens, std::size_t open);

}  // namespace stale::lint
