// staleload_lint — repo-specific static analysis for the staleload codebase.
//
// Six rule families, all motivated by what the paper reproduction depends
// on (see DESIGN.md §11 and §16 for the full catalog):
//
//   D-rules (determinism): simulation layers must not read wall clocks, host
//     state, or unsanctioned randomness, and must not iterate unordered
//     containers — any of these can silently break the bit-identical
//     `--jobs 1` vs `--jobs N` guarantee the determinism tests enforce.
//   L-rules (layering): `#include` edges between src/ modules must follow
//     the declared DAG (check → sim/runtime → queueing/core/workload/
//     analysis → loadinfo/policy → fault → driver); project includes are
//     module-qualified, quoted, and never relative; standard headers are
//     angle-bracketed. L2 findings carry machine-applicable fixes
//     (`--fix` / `--fix --apply` in the CLI).
//   H-rules (header hygiene): headers open with an include guard, never
//     `using namespace`, and TODO(owner)/FIXME(#issue) annotations always
//     carry that owner or issue reference.
//   R-rules (RNG-stream discipline): every generator constructed in a
//     simulation module must originate from a named split stream
//     (`.split()` / `trial_seed()` / `split_stream()`), no generator may be
//     captured by reference into a `parallel_for_each`/thread-pool lambda
//     (one stream shared across parallel trials silently changes every
//     herd-effect statistic), and nothing may seed from pointers, wall
//     time, or `std::random_device` outside the sanctioned engine.
//   T-rules (thread-safety capabilities): src/ code synchronizes through
//     the Clang-annotated primitives in src/check/sync.h (never raw
//     std::mutex, which `-Wthread-safety` cannot see through), and any
//     data member declared after a mutex member in the same class body
//     must carry STALE_GUARDED_BY/STALE_PT_GUARDED_BY (convention:
//     unguarded members go before the mutex, the mutex and its data last).
//   C-rules (contract coverage): non-const out-of-line methods in the
//     sim/queueing/loadinfo modules must contain a STALE_ASSERT /
//     STALE_DCHECK / STALE_AUDIT contract hook or be listed in the
//     intentional-exemption allowlist (tools/lint/contract_allowlist.txt);
//     allowlist entries that no longer match any method are themselves
//     findings, so the exemption file cannot rot.
//
// Findings are suppressible inline with `// NOLINT(staleload-<rule>)` on the
// offending line, `// NOLINTNEXTLINE(staleload-<rule>)` on the line above,
// or a `// NOLINTBEGIN(staleload-<rule>)` ... `// NOLINTEND(staleload-<rule>)`
// region (END must repeat BEGIN's rule list; unbalanced or mismatched
// markers are reported as staleload-nolint-unbalanced, which is never
// suppressible). A bare `NOLINT` or the family tag `NOLINT(staleload)`
// suppresses every staleload rule. Comments and string literals are
// stripped before the code rules run, so prose about `mt19937` never trips
// them.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace stale::lint {

struct Finding {
  std::string file;     // path as given to the scanner
  int line = 0;         // 1-based
  std::string rule;     // e.g. "staleload-d2-raw-rng"
  std::string message;
  // Machine-applicable fix: when non-empty, replacing the raw source line
  // (1-based `line`) with `fixed_line` resolves the finding. Only L2
  // include-form findings carry fixes today.
  std::string fixed_line;
  bool has_fix() const { return !fixed_line.empty(); }
};

// Cross-file rule configuration. Default-constructed, every rule runs with
// an empty allowlist; scan_tree loads the committed allowlist when given a
// root that contains tools/lint/contract_allowlist.txt.
struct LintConfig {
  // C1 exemptions, one per line in the file: `module/Class::method`
  // (e.g. "queueing/Cluster::reset"). '#' starts a comment.
  std::set<std::string> contract_allowlist;
};

// Parses allowlist text (the contents of contract_allowlist.txt).
std::set<std::string> parse_contract_allowlist(std::string_view text);

// Scans one file. `path` decides which rule scopes apply: the module is the
// directory component after `src/` ("src/sim/foo.cpp" → module `sim`), and
// files under tools/, bench/, tests/, examples/ are outside the simulation
// scopes (H-rules and the relative-include check still apply everywhere).
// `contents` is the file body; it is never read from disk here, so tests can
// scan fixture text under a virtual path. `used_allowlist`, when non-null,
// collects the allowlist entries that matched a method in this file (for
// the stale-allowlist check).
std::vector<Finding> scan_file(std::string_view path,
                               std::string_view contents,
                               const LintConfig& config,
                               std::set<std::string>* used_allowlist = nullptr);
std::vector<Finding> scan_file(std::string_view path,
                               std::string_view contents);

struct ScanResult {
  std::vector<Finding> findings;        // sorted by (file, line)
  int files_scanned = 0;
  std::vector<std::string> errors;      // unreadable paths etc.
};

// Recursively scans C++ sources (.h/.hpp/.cc/.cpp/.cxx) under `roots`.
// Directories named "build*", ".git", or "lint_fixtures" (deliberately
// rule-violating test inputs) are skipped. When `allowlist_path` is
// non-empty and readable, its entries configure C1 and any entry that
// matched no method across the whole tree is reported as
// staleload-c2-stale-allowlist against that file.
ScanResult scan_tree(const std::vector<std::string>& roots,
                     const std::string& allowlist_path = "");

// Applies the fixes carried by `findings` to the files on disk (grouped per
// file, replacing whole lines). Returns the number of lines rewritten;
// appends per-file errors to `errors`.
int apply_fixes(const std::vector<Finding>& findings,
                std::vector<std::string>* errors);

// Findings as a JSON array of {file, line, rule, message} objects.
std::string to_json(const std::vector<Finding>& findings);

// Findings as a SARIF 2.1.0 log (one run, tool "staleload_lint"), the
// format GitHub code scanning ingests. Every distinct rule id becomes a
// reportingDescriptor; results carry level "error" and physical locations.
std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace stale::lint
