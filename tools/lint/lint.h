// staleload_lint — repo-specific static analysis for the staleload codebase.
//
// Three rule families, all motivated by what the paper reproduction depends
// on (see DESIGN.md §11 for the full catalog):
//
//   D-rules (determinism): simulation layers must not read wall clocks, host
//     state, or unsanctioned randomness, and must not iterate unordered
//     containers — any of these can silently break the bit-identical
//     `--jobs 1` vs `--jobs N` guarantee the determinism tests enforce.
//   L-rules (layering): `#include` edges between src/ modules must follow
//     the declared DAG (check → sim/runtime → queueing/core/workload/
//     analysis → loadinfo/policy → fault → driver); project includes are
//     module-qualified and never relative.
//   H-rules (header hygiene): headers open with an include guard, never
//     `using namespace`, and TODO(owner)/FIXME(#issue) annotations always
//     carry that owner or issue reference.
//
// Findings are suppressible inline with `// NOLINT(staleload-<rule>)` on the
// offending line or `// NOLINTNEXTLINE(staleload-<rule>)` on the line above;
// a bare `NOLINT` or the family tag `NOLINT(staleload)` suppresses every
// staleload rule on that line. Comments and string literals are stripped
// before the D/L rules run, so prose about `mt19937` never trips them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace stale::lint {

struct Finding {
  std::string file;     // path as given to the scanner
  int line = 0;         // 1-based
  std::string rule;     // e.g. "staleload-d2-raw-rng"
  std::string message;
};

// Scans one file. `path` decides which rule scopes apply: the module is the
// directory component after `src/` ("src/sim/foo.cpp" → module `sim`), and
// files under tools/, bench/, tests/, examples/ are outside the simulation
// scopes (H-rules and the relative-include check still apply everywhere).
// `contents` is the file body; it is never read from disk here, so tests can
// scan fixture text under a virtual path.
std::vector<Finding> scan_file(std::string_view path,
                               std::string_view contents);

struct ScanResult {
  std::vector<Finding> findings;        // sorted by (file, line)
  int files_scanned = 0;
  std::vector<std::string> errors;      // unreadable paths etc.
};

// Recursively scans C++ sources (.h/.hpp/.cc/.cpp/.cxx) under `roots`.
// Directories named "build*", ".git", or "lint_fixtures" (deliberately
// rule-violating test inputs) are skipped.
ScanResult scan_tree(const std::vector<std::string>& roots);

// Findings as a JSON array of {file, line, rule, message} objects.
std::string to_json(const std::vector<Finding>& findings);

}  // namespace stale::lint
