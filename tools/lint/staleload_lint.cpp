// Command-line driver for the staleload lint (see lint.h for the rules).
//
// Usage: staleload_lint [--json] [--root DIR] [paths...]
//
// Paths default to the five source trees (src tools bench tests examples)
// and are resolved relative to --root (default: current directory). Exits 0
// when clean, 1 when findings were reported, 2 on usage or IO errors.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint/lint.h"

int main(int argc, char** argv) {
  bool json = false;
  std::string root;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "staleload_lint: --root needs a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: staleload_lint [--json] [--root DIR] [paths...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "staleload_lint: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (!root.empty()) {
    std::error_code ec;
    std::filesystem::current_path(root, ec);
    if (ec) {
      std::fprintf(stderr, "staleload_lint: cannot chdir to %s: %s\n",
                   root.c_str(), ec.message().c_str());
      return 2;
    }
  }
  if (paths.empty()) {
    paths = {"src", "tools", "bench", "tests", "examples"};
  }

  const stale::lint::ScanResult result = stale::lint::scan_tree(paths);
  for (const std::string& error : result.errors) {
    std::fprintf(stderr, "staleload_lint: %s\n", error.c_str());
  }
  if (json) {
    std::fputs(stale::lint::to_json(result.findings).c_str(), stdout);
  } else {
    for (const stale::lint::Finding& f : result.findings) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
  }
  std::fprintf(stderr, "staleload_lint: %zu finding%s in %d files\n",
               result.findings.size(),
               result.findings.size() == 1 ? "" : "s", result.files_scanned);
  if (!result.errors.empty()) return 2;
  return result.findings.empty() ? 0 : 1;
}
