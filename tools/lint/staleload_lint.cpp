// Command-line driver for the staleload lint (see lint.h for the rules).
//
// Usage: staleload_lint [--json|--sarif] [--fix [--apply]] [--root DIR]
//                       [paths...]
//
// Paths default to the five source trees (src tools bench tests examples)
// and are resolved relative to --root (default: current directory). The C1
// contract allowlist is read from tools/lint/contract_allowlist.txt under
// the root when present. `--fix` prints the machine-applicable rewrites
// (L2 include-form normalizations) as a dry run; `--fix --apply` writes
// them to disk. Exits 0 when clean, 1 when findings were reported, 2 on
// usage or IO errors.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint/lint.h"

int main(int argc, char** argv) {
  bool json = false;
  bool sarif = false;
  bool fix = false;
  bool apply = false;
  std::string root;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--apply") {
      apply = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "staleload_lint: --root needs a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: staleload_lint [--json|--sarif] [--fix [--apply]] "
          "[--root DIR] [paths...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "staleload_lint: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (json && sarif) {
    std::fprintf(stderr, "staleload_lint: --json and --sarif are exclusive\n");
    return 2;
  }
  if (apply && !fix) {
    std::fprintf(stderr, "staleload_lint: --apply requires --fix\n");
    return 2;
  }
  if (!root.empty()) {
    std::error_code ec;
    std::filesystem::current_path(root, ec);
    if (ec) {
      std::fprintf(stderr, "staleload_lint: cannot chdir to %s: %s\n",
                   root.c_str(), ec.message().c_str());
      return 2;
    }
  }
  if (paths.empty()) {
    paths = {"src", "tools", "bench", "tests", "examples"};
  }

  std::string allowlist = "tools/lint/contract_allowlist.txt";
  {
    std::error_code ec;
    if (!std::filesystem::is_regular_file(allowlist, ec)) allowlist.clear();
  }

  const stale::lint::ScanResult result =
      stale::lint::scan_tree(paths, allowlist);
  for (const std::string& error : result.errors) {
    std::fprintf(stderr, "staleload_lint: %s\n", error.c_str());
  }
  if (fix) {
    int fixable = 0;
    for (const stale::lint::Finding& f : result.findings) {
      if (!f.has_fix()) continue;
      ++fixable;
      std::printf("%s:%d: [%s] fix:\n  - %s\n  + %s\n", f.file.c_str(),
                  f.line, f.rule.c_str(), f.message.c_str(),
                  f.fixed_line.c_str());
    }
    if (apply) {
      std::vector<std::string> fix_errors;
      const int applied = stale::lint::apply_fixes(result.findings,
                                                   &fix_errors);
      for (const std::string& error : fix_errors) {
        std::fprintf(stderr, "staleload_lint: %s\n", error.c_str());
      }
      std::fprintf(stderr, "staleload_lint: applied %d fix%s\n", applied,
                   applied == 1 ? "" : "es");
      if (!fix_errors.empty()) return 2;
    } else {
      std::fprintf(stderr,
                   "staleload_lint: %d fixable finding%s (dry run; pass "
                   "--apply to write)\n",
                   fixable, fixable == 1 ? "" : "s");
    }
  }
  if (sarif) {
    std::fputs(stale::lint::to_sarif(result.findings).c_str(), stdout);
  } else if (json) {
    std::fputs(stale::lint::to_json(result.findings).c_str(), stdout);
  } else if (!fix) {
    for (const stale::lint::Finding& f : result.findings) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
  }
  std::fprintf(stderr, "staleload_lint: %zu finding%s in %d files\n",
               result.findings.size(),
               result.findings.size() == 1 ? "" : "s", result.files_scanned);
  if (!result.errors.empty()) return 2;
  return result.findings.empty() ? 0 : 1;
}
