#include "bench_diff_lib.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace stale::benchdiff {

namespace {

bool strip_suffix(std::string* name, const std::string& suffix) {
  if (name->size() <= suffix.size() ||
      name->compare(name->size() - suffix.size(), suffix.size(), suffix) !=
          0) {
    return false;
  }
  name->resize(name->size() - suffix.size());
  return true;
}

double median_of(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  if (samples.size() % 2 == 1) return samples[mid];
  return 0.5 * (samples[mid - 1] + samples[mid]);
}

}  // namespace

std::map<std::string, double> load_benchmarks(std::istream& in) {
  std::map<std::string, std::vector<double>> samples;
  std::map<std::string, double> explicit_medians;
  std::string line;
  std::string pending_name;
  while (std::getline(in, line)) {
    const auto name_pos = line.find("\"name\": \"");
    if (name_pos != std::string::npos) {
      const auto start = name_pos + 9;
      const auto end = line.find('"', start);
      if (end != std::string::npos) {
        pending_name = line.substr(start, end - start);
      }
      continue;
    }
    const auto time_pos = line.find("\"real_time\": ");
    if (time_pos == std::string::npos || pending_name.empty()) continue;
    const double time = std::strtod(line.c_str() + time_pos + 13, nullptr);
    std::string name = pending_name;
    pending_name.clear();
    if (strip_suffix(&name, "_mean") || strip_suffix(&name, "_stddev") ||
        strip_suffix(&name, "_cv")) {
      continue;  // aggregates that are not times we compare
    }
    if (strip_suffix(&name, "_median")) {
      explicit_medians[name] = time;
      continue;
    }
    samples[name].push_back(time);
  }

  std::map<std::string, double> result;
  for (auto& [name, values] : samples) result[name] = median_of(values);
  // google-benchmark's own median aggregate wins over our recomputation.
  for (const auto& [name, median] : explicit_medians) result[name] = median;
  return result;
}

DiffResult diff_benchmarks(const std::map<std::string, double>& baseline,
                           const std::map<std::string, double>& current,
                           const DiffOptions& options, std::ostream& out) {
  DiffResult result;
  char buffer[512];
  for (const auto& [name, base_time] : baseline) {
    const auto it = current.find(name);
    if (it == current.end()) {
      std::snprintf(buffer, sizeof(buffer),
                    "MISSING   %s (in baseline, not in current run)\n",
                    name.c_str());
      out << buffer;
      ++result.missing;
      continue;
    }
    ++result.compared;
    const double delta_pct =
        base_time > 0.0 ? (it->second - base_time) / base_time * 100.0 : 0.0;
    const bool over =
        options.max_regress_pct >= 0.0 && delta_pct > options.max_regress_pct;
    if (over) ++result.regressed;
    std::snprintf(buffer, sizeof(buffer),
                  "%-9s %s  %.1f -> %.1f ns  (%+.1f%%)\n",
                  over ? "REGRESSED" : "ok", name.c_str(), base_time,
                  it->second, delta_pct);
    out << buffer;
  }
  for (const auto& [name, time] : current) {
    if (baseline.count(name) != 0) continue;
    std::snprintf(buffer, sizeof(buffer),
                  "NEW       %s  %.1f ns (add to BENCH_microbench.json)\n",
                  name.c_str(), time);
    out << buffer;
    ++result.added;
  }
  std::snprintf(buffer, sizeof(buffer),
                "bench_diff: %zu baseline, %zu current, %d missing, %d over "
                "threshold\n",
                baseline.size(), current.size(), result.missing,
                result.regressed);
  out << buffer;
  return result;
}

}  // namespace stale::benchdiff
