// staleload_loadgen: open-loop Poisson client for the live dispatcher
// (src/net/loadgen.h).
//
//   build/tools/staleload_loadgen --target 127.0.0.1:9000 --lambda 40
//       --duration 10 [--drain S] [--warmup N] [--max-jobs N] [--seed S]
//       [--json PATH]
//
// Offered load is open loop: the exponential send schedule never waits for
// completions. --target accepts a comma-separated list of dispatcher shards;
// arrivals round-robin across them with failover past disconnected shards.
// The response-time report (mean/p50/p90/p99 plus per-backend and per-target
// counts) is written as one staleload_sim-shaped JSON object to --json
// (default stdout). Exits nonzero when nothing completed — a dead
// dispatcher should fail a CI smoke step loudly.
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "net/loadgen.h"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

void install_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_signal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "staleload_loadgen: " << error << "\n"
            << "usage: staleload_loadgen --target HOST:PORT[,HOST:PORT...]\n"
            << "  [--lambda R] [--duration S] [--drain S] [--warmup N]\n"
            << "  [--max-jobs N] [--seed S] [--connect-retries N]\n"
            << "  [--connect-backoff S] [--json PATH]\n";
  std::exit(2);
}

// "HOST:PORT[,HOST:PORT...]" -> endpoints, one per dispatcher shard.
std::vector<stale::net::Endpoint> parse_endpoint_list(const std::string& text) {
  std::vector<stale::net::Endpoint> endpoints;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string one = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    endpoints.push_back(stale::net::parse_endpoint(one));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return endpoints;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    stale::net::LoadGenOptions options;
    options.status_out = &std::cerr;  // keep stdout JSON-only by default
    std::string json_path;
    bool have_target = false;
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) usage(flag + " needs a value");
        return argv[++i];
      };
      if (flag == "--target") {
        options.targets = parse_endpoint_list(value());
        have_target = true;
      } else if (flag == "--lambda") {
        options.lambda = std::stod(value());
      } else if (flag == "--duration") {
        options.duration = std::stod(value());
      } else if (flag == "--drain") {
        options.drain = std::stod(value());
      } else if (flag == "--warmup") {
        options.warmup_jobs = std::stoull(value());
      } else if (flag == "--max-jobs") {
        options.max_jobs = std::stoull(value());
      } else if (flag == "--seed") {
        options.seed = std::stoull(value());
      } else if (flag == "--connect-retries") {
        options.connect_retries = std::stoi(value());
      } else if (flag == "--connect-backoff") {
        options.connect_backoff = std::stod(value());
      } else if (flag == "--json") {
        json_path = value();
      } else {
        usage("unknown flag '" + flag + "'");
      }
    }
    if (!have_target) usage("--target is required");

    install_signal_handlers();
    stale::net::LoadGen loadgen(options);
    loadgen.run(&g_stop);

    if (json_path.empty()) {
      stale::net::write_loadgen_json(std::cout, options, loadgen.report());
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "staleload_loadgen: cannot open '" << json_path << "'\n";
        return 1;
      }
      stale::net::write_loadgen_json(out, options, loadgen.report());
    }
    return loadgen.report().completed > 0 ? 0 : 1;
  } catch (const std::exception& error) {
    std::cerr << "staleload_loadgen: " << error.what() << "\n";
    return 1;
  }
}
