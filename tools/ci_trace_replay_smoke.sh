#!/usr/bin/env bash
# CI record->replay gate: boots the live dispatcher with --record, drives it
# with four backends and a Poisson loadgen on 127.0.0.1, then replays the
# recorded trace-v2 directory through the simulator and diffs the two
# metrics files with tools/playdiff.
#
# Tolerances (documented contract of the gate): live and sim share the exact
# recorded arrivals and service times, but not dispatch decisions — the live
# run pays real network latency and scheduling jitter, and the board phases
# are not aligned. So response-time quantiles must agree within 50% relative
# and dispatch shares within 0.35 total-variation distance; herd verdicts
# are reported but not required to match on a run this short. Anything
# outside that band means record or replay is broken, not noisy.
#
# Usage: tools/ci_trace_replay_smoke.sh [BIN_DIR] [OUT_DIR]
#   BIN_DIR: directory with the binaries (default build/tools)
#   OUT_DIR: artifact directory (default trace-replay-smoke)
set -euo pipefail

BIN=${1:-build/tools}
OUT=${2:-trace-replay-smoke}
BACKENDS=4
TRACE="$OUT/trace"
mkdir -p "$OUT"

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

wait_for_line() { # file token tries
  for _ in $(seq "${3:-100}"); do
    grep -q "$2" "$1" 2>/dev/null && return 0
    sleep 0.1
  done
  echo "ci_trace_replay_smoke: timed out waiting for '$2' in $1" >&2
  cat "$1" >&2 || true
  return 1
}

# --- record: live loopback run with the trace-v2 recorder attached --------
"$BIN/staleload_lb" --backends $BACKENDS --policy basic_li \
  --schedule periodic --update-period 0.5 --duration 60 --seed 3 \
  --estimator cema --record "$TRACE" \
  > "$OUT/lb.out" 2> "$OUT/lb.err" &
LB_PID=$!
PIDS+=("$LB_PID")
wait_for_line "$OUT/lb.out" "LB LISTENING"
TCP=$(sed -n 's/.*tcp=\([0-9]*\).*/\1/p' "$OUT/lb.out" | head -1)
UDP=$(sed -n 's/.*udp=\([0-9]*\).*/\1/p' "$OUT/lb.out" | head -1)
echo "dispatcher up: tcp=$TCP udp=$UDP"

for i in $(seq 0 $((BACKENDS - 1))); do
  "$BIN/staleload_backend" --index "$i" --report-to "127.0.0.1:$UDP" \
    --update-period 0.5 --mean-service 0.05 --seed $((20 + i)) \
    --duration 61 > "$OUT/backend$i.out" 2>&1 &
  PIDS+=("$!")
done
wait_for_line "$OUT/lb.out" "LB READY"
echo "all $BACKENDS backends registered"

"$BIN/staleload_loadgen" --target "127.0.0.1:$TCP" --lambda 40 \
  --duration 10 --drain 3 --warmup 20 --seed 7 \
  --json "$OUT/loadgen.json" 2> "$OUT/loadgen.err"

kill "$LB_PID" 2>/dev/null || true
wait "$LB_PID" 2>/dev/null || true
PIDS=()

for f in manifest.txt arrivals.trace loads.csv metrics.json; do
  test -s "$TRACE/$f" || {
    echo "ci_trace_replay_smoke: recorder wrote no $f" >&2
    cat "$OUT/lb.err" >&2 || true
    exit 1
  }
done
echo "recorded $(awk '$1 == "arrivals" {print $2}' "$TRACE/manifest.txt") jobs"

# --- replay: feed the recording through the sim driver --------------------
POLICY=$(awk '$1 == "policy" {print $2}' "$TRACE/manifest.txt")
"$BIN/staleload_sim" --workload "replay:$TRACE" --policy "$POLICY" \
  --estimator cema --replay-metrics-out "$OUT/sim-metrics.json" \
  > "$OUT/sim.out" 2> "$OUT/sim.err"
if grep -q "trace wrapped" "$OUT/sim.err"; then
  echo "ci_trace_replay_smoke: replay wrapped the trace (non-deterministic " \
       "job count?)" >&2
  cat "$OUT/sim.err" >&2
  exit 1
fi

# --- gate: live metrics vs replayed metrics -------------------------------
"$BIN/playdiff" "$TRACE/metrics.json" "$OUT/sim-metrics.json" \
  --tol-response 0.5 --tol-share 0.35 --report "$OUT/playdiff.txt"

echo "trace-replay smoke OK"
