// staleload_backend: one toy FIFO server for the live dispatcher
// (src/net/backend.h).
//
//   build/tools/staleload_backend --index 0 --report-to 127.0.0.1:9100
//       [--port P] [--update-period T] [--mean-service S] [--seed S]
//       [--duration S]
//
// Prints "BACKEND LISTENING index=<i> tcp=<port>" once bound, then HELLOs
// the dispatcher's UDP control endpoint until the data-plane connection
// arrives. --report-to accepts a comma-separated list for the sharded
// topology (one HELLO target + LOAD fan-out per dispatcher; DONE replies
// route back over the connection each job arrived on). --update-period 0
// (the default) sends no standing LOAD reports — the dispatcher's piggyback
// schedule learns queue lengths from DONE replies instead. Runs until
// SIGINT/SIGTERM or --duration seconds.
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <unistd.h>

#include "net/backend.h"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

void install_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_signal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGALRM, &action, nullptr);
}

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "staleload_backend: " << error << "\n"
            << "usage: staleload_backend --index I "
               "--report-to HOST:PORT[,HOST:PORT...]\n"
            << "  [--host H] [--port P] [--update-period T]\n"
            << "  [--mean-service S] [--hello-period S] [--seed S]\n"
            << "  [--duration S]\n";
  std::exit(2);
}

// "HOST:PORT[,HOST:PORT...]" -> endpoints, one per dispatcher shard.
std::vector<stale::net::Endpoint> parse_endpoint_list(const std::string& text) {
  std::vector<stale::net::Endpoint> endpoints;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string one = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    endpoints.push_back(stale::net::parse_endpoint(one));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return endpoints;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    stale::net::BackendOptions options;
    options.status_out = &std::cout;
    double duration = 0.0;
    bool have_report_to = false;
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) usage(flag + " needs a value");
        return argv[++i];
      };
      if (flag == "--host") {
        options.host = value();
      } else if (flag == "--port") {
        options.tcp_port = static_cast<std::uint16_t>(std::stoi(value()));
      } else if (flag == "--index") {
        options.index = std::stoi(value());
      } else if (flag == "--report-to") {
        options.report_to = parse_endpoint_list(value());
        have_report_to = true;
      } else if (flag == "--update-period") {
        options.update_period = std::stod(value());
      } else if (flag == "--mean-service") {
        options.mean_service = std::stod(value());
      } else if (flag == "--hello-period") {
        options.hello_period = std::stod(value());
      } else if (flag == "--seed") {
        options.seed = std::stoull(value());
      } else if (flag == "--duration") {
        duration = std::stod(value());
      } else {
        usage("unknown flag '" + flag + "'");
      }
    }
    if (!have_report_to) usage("--report-to is required");

    install_signal_handlers();
    // The event loop only honors the stop flag, so a bounded run is just a
    // SIGALRM wired to the same handler as SIGINT.
    if (duration > 0.0) {
      alarm(static_cast<unsigned>(std::ceil(duration)));
    }

    stale::net::Backend backend(options);
    backend.run(&g_stop);
    std::cout << "BACKEND DONE index=" << options.index
              << " served=" << backend.stats().jobs_served
              << " max_queue=" << backend.stats().max_queue_len << std::endl;
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "staleload_backend: " << error.what() << "\n";
    return 1;
  }
}
