// Diffs a google-benchmark JSON run against the committed baseline
// (BENCH_microbench.json at the repo root).
//
// Usage: bench_diff BASELINE.json CURRENT.json [--max-regress PCT]
//        [--report-only]
//
// Fails (exit 1) when a baseline benchmark is missing from the current run —
// a silently dropped microbenchmark is how a perf trajectory dies — and when
// a shared benchmark's median real_time regresses more than --max-regress
// percent (default 10). Runs with --benchmark_repetitions are folded to the
// per-name median first, so one noisy repetition can't trip the gate.
// --report-only prints the same table but always exits clean, for eyeballing
// a local run against the committed trajectory on different hardware.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_diff_lib.h"

int main(int argc, char** argv) {
  stale::benchdiff::DiffOptions options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-regress") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_diff: --max-regress needs a percent\n");
        return 2;
      }
      options.max_regress_pct = std::strtod(argv[++i], nullptr);
    } else if (arg == "--report-only") {
      options.report_only = true;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff BASELINE.json CURRENT.json "
                 "[--max-regress PCT] [--report-only]\n");
    return 2;
  }

  std::ifstream baseline_in(files[0]);
  if (!baseline_in) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", files[0].c_str());
    return 2;
  }
  std::ifstream current_in(files[1]);
  if (!current_in) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", files[1].c_str());
    return 2;
  }
  const auto baseline = stale::benchdiff::load_benchmarks(baseline_in);
  const auto current = stale::benchdiff::load_benchmarks(current_in);
  if (baseline.empty()) {
    std::fprintf(stderr, "bench_diff: no benchmarks in baseline %s\n",
                 files[0].c_str());
    return 2;
  }

  const stale::benchdiff::DiffResult result =
      stale::benchdiff::diff_benchmarks(baseline, current, options, std::cout);
  return result.failed(options) ? 1 : 0;
}
