// playdiff: the record->replay comparison gate.
//
//   playdiff LIVE.json SIM.json [--tol-response R] [--tol-share S]
//            [--require-herd-match] [--report OUT.txt]
//
// Reads two obs::ReplayMetrics files (a live recording's metrics.json and
// the output of `staleload_sim --workload replay:DIR --replay-metrics-out`),
// prints a side-by-side comparison, and exits 0 when every metric agrees
// within tolerance, 1 when any diverges, 2 on usage/parse errors. The
// default tolerances are the documented CI budget (see
// obs::DiffTolerance): live and sim share the workload but not service
// draws or network jitter, so this is a consistency gate, not bit-equality.
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/replay_metrics.h"

namespace {

void usage(std::ostream& out) {
  out << "usage: playdiff A.json B.json [--tol-response R] [--tol-share S]\n"
         "                [--require-herd-match] [--report OUT]\n";
}

stale::obs::ReplayMetrics load_metrics(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("playdiff: cannot open '" + path + "'");
  }
  return stale::obs::parse_replay_metrics(in);
}

void print_row(std::ostream& out, const char* name, double a, double b) {
  out << "  " << std::left << std::setw(16) << name << std::right
      << std::setw(12) << a << std::setw(12) << b << "\n";
}

void write_report(std::ostream& out, const stale::obs::ReplayMetrics& a,
                  const stale::obs::ReplayMetrics& b,
                  const std::vector<std::string>& failures) {
  out << std::setprecision(5);
  out << "playdiff: " << a.source << " (" << a.jobs << " jobs) vs "
      << b.source << " (" << b.jobs << " jobs)\n";
  out << "  " << std::left << std::setw(16) << "metric" << std::right
      << std::setw(12) << a.source << std::setw(12) << b.source << "\n";
  print_row(out, "mean_response", a.mean_response, b.mean_response);
  print_row(out, "p50_response", a.p50_response, b.p50_response);
  print_row(out, "p90_response", a.p90_response, b.p90_response);
  print_row(out, "p99_response", a.p99_response, b.p99_response);
  out << "  dispatch_share  ";
  for (double share : a.dispatch_share) out << " " << share;
  out << "  vs ";
  for (double share : b.dispatch_share) out << " " << share;
  out << "\n";
  if (a.has_herd || b.has_herd) {
    out << "  herding          " << (a.herding ? "yes" : "no") << " vs "
        << (b.herding ? "yes" : "no") << "\n";
  }
  if (failures.empty()) {
    out << "PASS: metrics agree within tolerance\n";
  } else {
    for (const std::string& failure : failures) {
      out << "FAIL: " << failure << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  stale::obs::DiffTolerance tolerance;
  std::string report_path;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw std::runtime_error("playdiff: " + arg + " needs a value");
        }
        return argv[++i];
      };
      if (arg == "--tol-response") {
        tolerance.response = std::stod(value());
      } else if (arg == "--tol-share") {
        tolerance.share_tv = std::stod(value());
      } else if (arg == "--require-herd-match") {
        tolerance.require_herd_match = true;
      } else if (arg == "--report") {
        report_path = value();
      } else if (arg == "--help" || arg == "-h") {
        usage(std::cout);
        return 0;
      } else if (!arg.empty() && arg[0] == '-') {
        throw std::runtime_error("playdiff: unknown flag '" + arg + "'");
      } else {
        paths.push_back(arg);
      }
    }
    if (paths.size() != 2) {
      usage(std::cerr);
      return 2;
    }
    if (tolerance.response <= 0.0 || tolerance.share_tv <= 0.0) {
      throw std::runtime_error("playdiff: tolerances must be > 0");
    }

    const stale::obs::ReplayMetrics a = load_metrics(paths[0]);
    const stale::obs::ReplayMetrics b = load_metrics(paths[1]);
    const std::vector<std::string> failures =
        stale::obs::diff_replay_metrics(a, b, tolerance);

    write_report(std::cout, a, b, failures);
    if (!report_path.empty()) {
      std::ofstream report(report_path);
      if (!report) {
        throw std::runtime_error("playdiff: cannot write '" + report_path +
                                 "'");
      }
      write_report(report, a, b, failures);
    }
    return failures.empty() ? 0 : 1;
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 2;
  }
}
