// staleload_sim: general-purpose experiment explorer. Runs one experiment
// configuration from command-line flags and prints the full result record —
// the single binary a user reaches for before scripting sweeps.
//
//   build/tools/staleload_sim --policy basic_li --model periodic --t 8
//       --lambda 0.9 --n 10 [--job-size exp:1] [--trials 5] [--adaptive]
//
// Models: periodic | continuous | update_on_access | individual
// Policies: random | k_subset:K | threshold:K:T | basic_li | aggressive_li |
//           hybrid_li | basic_li_k:K | jiq | jiq:sq[:K]
//
// Multi-dispatcher scale-out (board models only):
//   --dispatchers D            D cooperating dispatchers over one cluster,
//                              each with its own board + staleness schedule
//                              (D=1 is the legacy engine, bit-for-bit)
//   --dispatcher-split uniform|weighted   arrival thinning across dispatchers
//   --token-budget B           JIQ: per-dispatcher idle-token cap (0 = off)
//
// Large clusters: --board-repr auto|vector|bucketed selects the dispatch
// representation. "bucketed" runs the O(#levels) counted-board path (same
// per-level dispatch distributions, different RNG draws); "auto" (default)
// switches to it at 1024+ servers on eligible runs (no faults, not
// update_on_access).
//
// Fault injection (board models only):
//   --fault-spec S / --crash-rate R / --update-loss P / --max-staleness 2T
// Fault runs report the per-fault counters; --json emits the full record as
// one JSON object instead of the table.
//
// Workloads beyond homogeneous Poisson (src/workload/):
//   --arrival-spec S      poisson | mmpp:M1:M2:D1:D2 | ramp:PERIOD:AMP |
//                         flash:AT:MULT:RAMP:HOLD:DECAY | trace:PATH
//   --workload replay:DIR replay a recorded trace-v2 directory (from
//                         `staleload_lb --record DIR`); overrides n, T,
//                         model, jobs, and lambda from the manifest
//   --estimator E         told | fixed | cema[:ALPHA[:BUCKET]] — how LI
//                         policies learn lambda for K = lambda*T (alias of
//                         the older --rate-est)
//   --replay-metrics-out F  re-run trial 0 traced and write the
//                         obs::ReplayMetrics JSON that tools/playdiff
//                         compares against a live recording's metrics.json
//
// Observability (src/obs/):
//   --trace               re-run trial 0 with a trace recorder attached and
//                         print the event/herd-diagnostic summary block
//   --probe-interval X    queue-trajectory sampling grid (default T/8)
//   --trace-out PREFIX    (implies --trace) also write the artifacts
//                         PREFIX.events.csv, PREFIX.trajectory.csv,
//                         PREFIX.trace.json (Chrome/Perfetto trace_event
//                         format), PREFIX.timeline.svg
#include <fstream>
#include <functional>
#include <iostream>
#include <stdexcept>
#include <string_view>

#include "bench_common.h"
#include "driver/adaptive.h"
#include "driver/report.h"
#include "driver/table.h"
#include "driver/trace_support.h"
#include "driver/trial_workload.h"
#include "loadinfo/delay_distribution.h"
#include "obs/chrome_trace.h"
#include "obs/export_csv.h"
#include "obs/replay_metrics.h"
#include "obs/svg_timeline.h"
#include "queueing/theory.h"
#include "sim/rng.h"

namespace {

stale::driver::UpdateModel parse_model(const std::string& name) {
  using stale::driver::UpdateModel;
  for (UpdateModel model :
       {UpdateModel::kPeriodic, UpdateModel::kContinuous,
        UpdateModel::kUpdateOnAccess, UpdateModel::kIndividual}) {
    if (stale::driver::update_model_name(model) == name) return model;
  }
  throw std::invalid_argument("unknown --model '" + name + "'");
}

void write_artifact(const std::string& path,
                    const std::function<void(std::ostream&)>& writer) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  writer(out);
  // Progress notes go to stderr so --json keeps stdout machine-readable.
  std::cerr << "# wrote " << path << "\n";
}

// Re-runs trial 0 of `config` with a recorder attached (bit-identical to the
// untraced trial by the obs contract), prints the diagnostic summary, and
// optionally dumps the artifact files.
void run_trace(const stale::driver::Cli& cli,
               const stale::driver::ExperimentConfig& config,
               bool print_summary) {
  stale::driver::TraceRunOptions options;
  options.probe_interval = cli.get_double("probe-interval", 0.0);
  const stale::driver::TraceReport report = stale::driver::run_traced_trial(
      config, stale::sim::trial_seed(config.base_seed, 0), options);
  if (print_summary) {
    stale::driver::print_trace_summary(std::cout, config, report);
  }

  const std::string prefix = cli.get("trace-out", "");
  if (prefix.empty()) return;
  write_artifact(prefix + ".events.csv", [&](std::ostream& out) {
    stale::obs::write_events_csv(out, report.recorder);
  });
  write_artifact(prefix + ".trace.json", [&](std::ostream& out) {
    stale::obs::write_chrome_trace(out, report.recorder);
  });
  if (report.trajectory.samples.empty()) {
    std::cerr << "# trajectory empty (run shorter than warmup window); "
                 "skipping trajectory csv + svg\n";
    return;
  }
  write_artifact(prefix + ".trajectory.csv", [&](std::ostream& out) {
    stale::obs::write_trajectory_csv(out, report.trajectory);
  });
  write_artifact(prefix + ".timeline.svg", [&](std::ostream& out) {
    stale::obs::TimelineOptions svg;
    svg.title = config.policy + " under " +
                stale::driver::update_model_name(config.model) +
                " (T=" + stale::driver::Table::fmt(config.update_interval) +
                "): per-server queue lengths";
    out << stale::obs::render_queue_timeline(report.trajectory, svg);
  });
}

// Re-runs trial 0 traced (percentiles + dispatch shares + herd verdict) and
// writes the obs::ReplayMetrics record tools/playdiff consumes. This is the
// sim half of the record->replay gate: the live half is the metrics.json
// that `staleload_lb --record` drops next to the trace.
void write_sim_replay_metrics(const stale::driver::Cli& cli,
                              const stale::driver::ExperimentConfig& base,
                              const std::string& path) {
  stale::driver::ExperimentConfig config = base;
  config.keep_response_samples = true;
  stale::driver::TraceRunOptions options;
  options.probe_interval = cli.get_double("probe-interval", 0.0);
  const stale::driver::TraceReport report = stale::driver::run_traced_trial(
      config, stale::sim::trial_seed(config.base_seed, 0), options);

  stale::obs::ReplayMetrics metrics;
  metrics.source = "sim";
  metrics.jobs = report.trial.measured_jobs;
  metrics.duration = report.t_end - report.t_begin;
  metrics.mean_response = report.trial.mean_response;
  metrics.p50_response = report.trial.p50_response;
  metrics.p90_response = report.trial.p90_response;
  metrics.p99_response = report.trial.p99_response;
  metrics.dispatch_share.reserve(report.share.counts.size());
  for (const std::uint64_t count : report.share.counts) {
    metrics.dispatch_share.push_back(
        report.share.total == 0 ? 0.0
                                : static_cast<double>(count) /
                                      static_cast<double>(report.share.total));
  }
  metrics.has_herd = true;
  metrics.herd_autocorr = report.herd.autocorr_peak;
  metrics.herd_amplitude = report.herd.amplitude;
  metrics.herding = report.herd.herding();

  write_artifact(path, [&](std::ostream& out) {
    stale::obs::write_replay_metrics(out, metrics);
  });
  if (report.trial.trace_wraps > 0) {
    std::cerr << "# warning: trace wrapped " << report.trial.trace_wraps
              << " times during the metrics trial\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> flags = {
      "policy", "model",    "t",         "lambda",    "n",
      "job-size", "delay",  "rate-est",  "lambda-err", "precision",
      "probe-interval", "trace-out", "arrival-spec", "workload",
      "estimator", "replay-metrics-out"};
  const std::vector<std::string> switches = {"bursty", "know-age", "adaptive",
                                             "json", "trace"};
  return stale::bench::run_bench(
      argc, argv, flags, switches, [](const stale::driver::Cli& cli) {
        stale::driver::ExperimentConfig config;
        config.num_servers = static_cast<int>(cli.get_int("n", 10));
        config.lambda = cli.get_double("lambda", 0.9);
        config.model = parse_model(cli.get("model", "periodic"));
        config.update_interval = cli.get_double("t", 1.0);
        config.delay_kind =
            stale::loadinfo::parse_delay_kind(cli.get("delay", "constant"));
        config.know_actual_age = cli.has("know-age");
        config.bursty = cli.has("bursty");
        config.policy = cli.get("policy", "basic_li");
        config.job_size = cli.get("job-size", "exp:1");
        config.arrival_spec = cli.get("arrival-spec", "poisson");
        // --estimator is the canonical spelling; --rate-est stays as the
        // pre-replay alias so existing sweep scripts keep working.
        config.rate_estimator =
            cli.get("estimator", cli.get("rate-est", "told"));
        config.lambda_error_factor = cli.get_double("lambda-err", 1.0);
        cli.apply_run_scale(config);

        // Replay overrides cluster shape, update model, and job count from
        // the recorded manifest, so it is applied after every other flag.
        const std::string workload_spec = cli.get("workload", "");
        if (!workload_spec.empty()) {
          constexpr std::string_view kReplayPrefix = "replay:";
          if (workload_spec.rfind(kReplayPrefix, 0) != 0 ||
              workload_spec.size() == kReplayPrefix.size()) {
            throw std::invalid_argument(
                "--workload expects replay:DIR, got '" + workload_spec + "'");
          }
          const std::string dir =
              workload_spec.substr(kReplayPrefix.size());
          stale::driver::configure_replay(config, dir);
          std::cerr << "# replay: " << dir << " (" << config.num_jobs
                    << " recorded jobs, n = " << config.num_servers
                    << ", T = " << config.update_interval << ")\n";
        }

        const bool tracing = cli.has("trace") || cli.has("trace-out");

        const std::string metrics_out = cli.get("replay-metrics-out", "");

        if (cli.has("json")) {
          const auto result = stale::driver::run_experiment(config);
          if (result.trace_wraps > 0) {
            std::cerr << "# warning: trace wrapped " << result.trace_wraps
                      << " times\n";
          }
          stale::driver::write_json_report(std::cout, config, result,
                                           config.trials);
          // Keep stdout valid JSON: artifacts only, no summary block.
          if (cli.has("trace-out")) run_trace(cli, config, false);
          if (!metrics_out.empty()) {
            write_sim_replay_metrics(cli, config, metrics_out);
          }
          return;
        }

        std::cout << "# staleload_sim: " << config.policy << " under "
                  << stale::driver::update_model_name(config.model)
                  << " (n = " << config.num_servers
                  << ", lambda = " << config.lambda
                  << ", T = " << config.update_interval
                  << ", jobs = " << config.job_size << ")\n";
        if (config.dispatchers > 1) {
          std::cout << "# dispatchers = " << config.dispatchers << " ("
                    << stale::dispatch::dispatcher_split_name(
                           config.dispatcher_split)
                    << " split)\n";
        }

        stale::driver::ExperimentResult result;
        int trials_used = config.trials;
        if (cli.has("adaptive")) {
          stale::driver::AdaptiveOptions options;
          options.relative_precision = cli.get_double("precision", 0.03);
          const auto adaptive =
              stale::driver::run_until_confident(config, options);
          result = std::move(adaptive.result);
          trials_used = adaptive.trials_used;
          std::cout << "# adaptive: " << trials_used << " trials, "
                    << (adaptive.converged ? "converged" : "budget exhausted")
                    << "\n";
        } else {
          result = stale::driver::run_experiment(config);
        }
        if (result.trace_wraps > 0) {
          std::cerr << "# warning: trace wrapped " << result.trace_wraps
                    << " times\n";
        }

        using stale::driver::Table;
        Table table({"metric", "value"});
        table.add_row({"mean response", Table::fmt_ci(result.mean(),
                                                      result.ci90())});
        const auto box = result.box();
        table.add_row({"median (trials)", Table::fmt(box.median)});
        table.add_row({"p25..p75", Table::fmt(box.p25) + " .. " +
                                       Table::fmt(box.p75)});
        table.add_row({"min..max", Table::fmt(box.min) + " .. " +
                                       Table::fmt(box.max)});
        table.add_row({"trials", std::to_string(trials_used)});

        if (config.fault.any() || config.churn.any()) {
          const auto& f = result.faults;
          if (config.fault.any()) {
            table.add_row({"fault spec", config.fault.to_string()});
          } else {
            table.add_row({"churn spec", config.churn.to_string()});
          }
          table.add_row({"crashes / recoveries",
                         std::to_string(f.crashes) + " / " +
                             std::to_string(f.recoveries)});
          table.add_row({"jobs lost / requeued / dropped",
                         std::to_string(f.jobs_lost) + " / " +
                             std::to_string(f.jobs_requeued) + " / " +
                             std::to_string(f.jobs_dropped)});
          table.add_row({"dispatch retries",
                         std::to_string(f.dispatch_retries)});
          table.add_row({"updates lost / delayed",
                         std::to_string(f.updates_lost) + " / " +
                             std::to_string(f.updates_delayed)});
          table.add_row({"estimator drops",
                         std::to_string(f.estimator_drops)});
          table.add_row({"stale fallbacks / sanitizer fixes",
                         std::to_string(f.stale_fallbacks) + " / " +
                             std::to_string(f.sanitizer_fixes)});
        }

        // Analytic context for homogeneous exponential clusters.
        if (config.job_size.rfind("exp:1", 0) == 0 && config.lambda < 1.0) {
          table.add_row(
              {"M/M/1 (random split)",
               Table::fmt(stale::queueing::theory::mm1_response_time(
                   config.lambda))});
          table.add_row(
              {"M/M/c (central queue)",
               Table::fmt(stale::queueing::theory::mmc_response_time(
                   static_cast<std::size_t>(config.num_servers),
                   config.lambda))});
        }
        table.print(std::cout, cli.csv());
        if (tracing) run_trace(cli, config, true);
        if (!metrics_out.empty()) {
          write_sim_replay_metrics(cli, config, metrics_out);
        }
      });
}
