// plot_sweep: renders the --csv output of any sweep bench as an SVG chart.
//
//   build/bench/fig02_periodic_update --csv |
//       build/tools/plot_sweep --out fig02.svg --title "Figure 2"
//           --log-x --log-y --x-label ... --y-label ...
//
// Reads stdin, writes the SVG to --out (default sweep.svg).
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/svg_plot.h"

namespace {

struct Args {
  std::string out = "sweep.svg";
  stale::obs::PlotOptions options;
};

Args parse_args(int argc, char** argv) {
  Args args;
  args.options.x_label = "T (mean service times)";
  args.options.y_label = "mean response time";
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument("plot_sweep: " + flag + " needs a value");
      }
      return argv[++i];
    };
    if (flag == "--out") {
      args.out = value();
    } else if (flag == "--title") {
      args.options.title = value();
    } else if (flag == "--x-label") {
      args.options.x_label = value();
    } else if (flag == "--y-label") {
      args.options.y_label = value();
    } else if (flag == "--log-x") {
      args.options.log_x = true;
    } else if (flag == "--log-y") {
      args.options.log_y = true;
    } else if (flag == "--width") {
      args.options.width = std::stoi(value());
    } else if (flag == "--height") {
      args.options.height = std::stoi(value());
    } else {
      throw std::invalid_argument("plot_sweep: unknown flag " + flag);
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    const auto series = stale::obs::parse_sweep_csv(buffer.str());
    if (series.empty()) {
      std::cerr << "plot_sweep: no parsable series on stdin (pipe a bench's "
                   "--csv output)\n";
      return 1;
    }
    const std::string svg =
        stale::obs::render_line_chart(series, args.options);
    std::ofstream out(args.out);
    if (!out) {
      std::cerr << "plot_sweep: cannot write '" << args.out << "'\n";
      return 1;
    }
    out << svg;
    std::cerr << "plot_sweep: wrote " << args.out << " (" << series.size()
              << " series)\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "plot_sweep: " << error.what() << "\n";
    return 1;
  }
}
