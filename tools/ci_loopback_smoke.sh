#!/usr/bin/env bash
# CI loopback smoke for the live dispatcher service: boots staleload_lb,
# four staleload_backend processes, and staleload_loadgen on 127.0.0.1
# (ephemeral ports parsed from status lines), then asserts that jobs
# actually completed and the loadgen report is parseable JSON. Artifacts
# (status logs, the loadgen report, the dispatcher's events.csv + herd.json
# trace) land in the output directory for upload.
#
# Usage: tools/ci_loopback_smoke.sh [BIN_DIR] [OUT_DIR]
#   BIN_DIR: directory with the three binaries (default build/tools)
#   OUT_DIR: artifact directory (default loopback-smoke)
set -euo pipefail

BIN=${1:-build/tools}
OUT=${2:-loopback-smoke}
BACKENDS=4
mkdir -p "$OUT"

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

wait_for_line() { # file token tries
  for _ in $(seq "${3:-100}"); do
    grep -q "$2" "$1" 2>/dev/null && return 0
    sleep 0.1
  done
  echo "ci_loopback_smoke: timed out waiting for '$2' in $1" >&2
  cat "$1" >&2 || true
  return 1
}

"$BIN/staleload_lb" --backends $BACKENDS --policy basic_li \
  --schedule periodic --update-period 0.5 --duration 30 --seed 3 \
  --trace-out "$OUT/lb" > "$OUT/lb.out" 2> "$OUT/lb.err" &
LB_PID=$!
PIDS+=("$LB_PID")
wait_for_line "$OUT/lb.out" "LB LISTENING"
TCP=$(sed -n 's/.*tcp=\([0-9]*\).*/\1/p' "$OUT/lb.out" | head -1)
UDP=$(sed -n 's/.*udp=\([0-9]*\).*/\1/p' "$OUT/lb.out" | head -1)
echo "dispatcher up: tcp=$TCP udp=$UDP"

for i in $(seq 0 $((BACKENDS - 1))); do
  "$BIN/staleload_backend" --index "$i" --report-to "127.0.0.1:$UDP" \
    --update-period 0.5 --mean-service 0.05 --seed $((20 + i)) \
    --duration 31 > "$OUT/backend$i.out" 2>&1 &
  PIDS+=("$!")
done
wait_for_line "$OUT/lb.out" "LB READY"
echo "all $BACKENDS backends registered"

"$BIN/staleload_loadgen" --target "127.0.0.1:$TCP" --lambda 40 \
  --duration 8 --drain 3 --warmup 20 --seed 7 \
  --json "$OUT/loadgen.json" 2> "$OUT/loadgen.err"

# The report must be well-formed JSON with a nonzero completion count.
python3 - "$OUT/loadgen.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
completed = report["result"]["completed"]
print(f"loadgen: completed={completed} "
      f"mean_response={report['result']['mean_response']:.4f}s "
      f"p99={report['result']['p99']:.4f}s")
assert completed > 0, "no jobs completed end to end"
EOF

kill "$LB_PID" 2>/dev/null || true
wait "$LB_PID" 2>/dev/null || true
PIDS=()

test -s "$OUT/lb.events.csv" || {
  echo "ci_loopback_smoke: dispatcher wrote no trace" >&2
  exit 1
}
echo "trace: $(wc -l < "$OUT/lb.events.csv") events"
echo "loopback smoke OK"
