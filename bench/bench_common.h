// Shared scaffolding for the figure benches: header banner, CLI wiring, and
// the reduced-but-shape-preserving default grids (see DESIGN.md Section 6).
#pragma once

#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "driver/cli.h"
#include "driver/experiment.h"
#include "driver/sweep.h"

namespace stale::bench {

// Prints the figure banner: what paper artifact this regenerates, with which
// parameters, at which scale.
inline void print_header(const std::string& figure,
                         const std::string& description,
                         const driver::Cli& cli,
                         const std::string& params) {
  std::cout << "# " << figure << " — " << description << "\n";
  std::cout << "# " << params << "\n";
  std::cout << "# " << cli.scale_description() << "\n";
}

// T grid used by the periodic/continuous sweeps. Paper scale uses the full
// log-spaced grid the figures span; the default drops a couple of points to
// keep single-core wall time low without losing the curve's shape.
inline std::vector<double> t_grid(const driver::Cli& cli, double max_t) {
  if (cli.has("paper")) return driver::default_t_grid(max_t);
  if (cli.has("fast")) return {0.5, 4.0, 32.0};
  std::vector<double> grid;
  for (double t : {0.1, 0.5, 2.0, 8.0, 32.0, 128.0}) {
    if (t <= max_t) grid.push_back(t);
  }
  return grid;
}

// Wraps a bench main body with uniform error reporting so a bad flag prints
// a message instead of a raw terminate.
template <typename Body>
int run_bench(int argc, const char* const* argv,
              const std::vector<std::string>& extra_flags,
              const std::vector<std::string>& extra_switches, Body body) {
  try {
    driver::Cli cli(argc, argv, extra_flags, extra_switches);
    body(cli);
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n"
              << "flags: --paper | --fast | --num-jobs N --warmup N "
                 "--trials N --seed S --jobs THREADS --csv "
                 "--fault-spec S --crash-rate R --update-loss P "
                 "--max-staleness A";
    for (const auto& flag : extra_flags) std::cerr << " --" << flag << " V";
    for (const auto& flag : extra_switches) std::cerr << " --" << flag;
    std::cerr << "\n";
    return 1;
  }
}

}  // namespace stale::bench
