// Figure 5: the threshold algorithm for a range of thresholds at (a) k = 2
// and (b) k = 10, vs. the LI algorithms. Expected shape: the threshold value
// acts like the k knob of the k-subset family — low thresholds are
// aggressive (good fresh, bad stale), high thresholds conservative — and the
// LI algorithms dominate every fixed threshold across the T sweep.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

void run_panel(const stale::driver::Cli& cli, int k) {
  stale::driver::ExperimentConfig base;
  base.num_servers = 10;
  base.lambda = 0.9;
  base.model = stale::driver::UpdateModel::kPeriodic;
  cli.apply_run_scale(base);

  std::vector<std::string> policies;
  const std::vector<int> thresholds =
      cli.has("fast") ? std::vector<int>{0, 8, 40}
                      : std::vector<int>{0, 1, 4, 8, 16, 24, 32, 40};
  for (int threshold : thresholds) {
    policies.push_back("threshold:" + std::to_string(k) + ":" +
                       std::to_string(threshold));
  }
  policies.push_back("k_subset:" + std::to_string(k));
  policies.push_back("basic_li");
  policies.push_back("aggressive_li");

  std::cout << "\n## panel: k = " << k << "\n";
  stale::driver::SweepOptions options;
  options.csv = cli.csv();
  stale::driver::run_t_sweep(base, stale::bench::t_grid(cli, 64.0), policies,
                             std::cout, options);
}

}  // namespace

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {}, {}, [](const stale::driver::Cli& cli) {
        stale::bench::print_header(
            "Figure 5",
            "threshold algorithm vs. thresholds, periodic update", cli,
            "n = 10, lambda = 0.9; panels k = 2 and k = 10");
        run_panel(cli, 2);
        run_panel(cli, 10);
      });
}
