// Ablation (extension): the individual-update model — each server refreshes
// its own board entry on a de-phased period-T timer, so entries have mixed
// ages — vs. the synchronized periodic bulletin board. Mitzenmacher found
// this model close to periodic update; the paper omitted it "for
// compactness". Expected shape: same algorithm ordering as Figure 2, with
// LI interpreting against the mean entry age.
#include <iostream>

#include "bench_common.h"

namespace {

void run_panel(const stale::driver::Cli& cli,
               stale::driver::UpdateModel model, const std::string& title) {
  stale::driver::ExperimentConfig base;
  base.num_servers = 10;
  base.lambda = 0.9;
  base.model = model;
  cli.apply_run_scale(base);

  const std::vector<std::string> policies = {
      "random", "k_subset:2", "k_subset:10", "basic_li", "aggressive_li"};
  std::cout << "\n## panel: " << title << "\n";
  stale::driver::SweepOptions options;
  options.csv = cli.csv();
  stale::driver::run_t_sweep(base, stale::bench::t_grid(cli, 32.0), policies,
                             std::cout, options);
}

}  // namespace

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {}, {}, [](const stale::driver::Cli& cli) {
        stale::bench::print_header(
            "Ablation: individual updates",
            "de-phased per-server board refresh vs. synchronized periodic",
            cli, "n = 10, lambda = 0.9");
        run_panel(cli, stale::driver::UpdateModel::kPeriodic,
                  "synchronized periodic board");
        run_panel(cli, stale::driver::UpdateModel::kIndividual,
                  "individual per-server updates");
      });
}
