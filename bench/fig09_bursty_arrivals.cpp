// Figure 9: the update-on-access sweep with bursty clients — bursts of ~10
// requests whose within-burst gaps are 1% of the client's mean inter-request
// time. Expected shape: although a client's snapshot is on average T old,
// most requests arrive mid-burst and see a nearly fresh picture, so every
// load-using algorithm beats oblivious random by a wide margin even at large
// T; Basic LI is best or tied throughout.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {}, {}, [](const stale::driver::Cli& cli) {
        stale::driver::ExperimentConfig base;
        base.num_servers = 10;
        base.lambda = 0.9;
        base.model = stale::driver::UpdateModel::kUpdateOnAccess;
        base.bursty = true;
        base.burst_mean_length = 10.0;
        base.burst_within_gap_fraction = 0.01;
        cli.apply_run_scale(base);
        base.min_jobs_per_client = cli.has("paper") ? 1000 : 100;

        stale::bench::print_header(
            "Figure 9",
            "update-on-access with bursty clients (burst ~10, gaps T/100)",
            cli, "n = 10, lambda = 0.9");

        const std::vector<std::string> policies = {
            "random",      "k_subset:2", "k_subset:3",
            "k_subset:10", "basic_li",   "aggressive_li"};
        stale::driver::SweepOptions options;
        options.csv = cli.csv();
        stale::driver::run_t_sweep(base, stale::bench::t_grid(cli, 64.0),
                                   policies, std::cout, options);
      });
}
