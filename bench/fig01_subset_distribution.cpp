// Figure 1: distribution of requests to servers under the k-subset algorithm
// (paper Eq. 1) — fraction of requests reaching the rank-i server for a range
// of k at n = 10. The analytic curve is printed alongside an empirical check
// from the actual KSubsetPolicy implementation.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/ksubset_analysis.h"
#include "driver/table.h"
#include "policy/k_subset_policy.h"
#include "sim/rng.h"

namespace {

using stale::bench::print_header;
using stale::bench::run_bench;
using stale::driver::Table;

// Empirical rank frequencies from the simulated policy over fixed distinct
// loads (rank == index + 1).
std::vector<double> empirical_ranks(int n, int k, int draws,
                                    std::uint64_t seed) {
  stale::policy::KSubsetPolicy policy(k);
  std::vector<int> loads(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) loads[static_cast<std::size_t>(i)] = i;
  stale::policy::DispatchContext context;
  context.loads = loads;
  stale::sim::Rng rng(seed);
  std::vector<int> counts(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < draws; ++i) {
    ++counts[static_cast<std::size_t>(policy.select(context, rng))];
  }
  std::vector<double> freq(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    freq[i] = static_cast<double>(counts[i]) / draws;
  }
  return freq;
}

}  // namespace

int main(int argc, char** argv) {
  return run_bench(argc, argv, {"n"}, {}, [](const stale::driver::Cli& cli) {
    const int n = static_cast<int>(cli.get_int("n", 10));
    const std::vector<int> ks = {1, 2, 3, 5, n};
    print_header("Figure 1",
                 "request share vs. server rank under the k-subset algorithm "
                 "(Eq. 1)",
                 cli, "n = " + std::to_string(n) + ", analytic + empirical");

    std::vector<std::string> columns{"rank"};
    for (int k : ks) columns.push_back("k=" + std::to_string(k));
    for (int k : ks) columns.push_back("k=" + std::to_string(k) + " (sim)");
    Table table(std::move(columns));

    const int draws = cli.has("fast") ? 50'000 : 400'000;
    std::vector<std::vector<double>> analytic;
    std::vector<std::vector<double>> simulated;
    for (std::size_t i = 0; i < ks.size(); ++i) {
      analytic.push_back(
          stale::core::ksubset_rank_probabilities(n, ks[i]));
      simulated.push_back(empirical_ranks(n, ks[i], draws,
                                          0xF161 + static_cast<int>(i)));
    }
    for (int rank = 1; rank <= n; ++rank) {
      std::vector<std::string> row{std::to_string(rank)};
      for (const auto& series : analytic) {
        row.push_back(Table::fmt(series[static_cast<std::size_t>(rank - 1)]));
      }
      for (const auto& series : simulated) {
        row.push_back(Table::fmt(series[static_cast<std::size_t>(rank - 1)]));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout, cli.csv());
  });
}
