// Figure 10: periodic-update sweeps under the heavy-tailed Bounded Pareto
// job-size workload (alpha = 1.1, max = 1000x mean, mean = 1) at loads
// lambda = 0.5, 0.7, 0.9 — one panel each. Following the paper's
// methodology, cells report the across-trial median with the 25th-75th
// percentile box and min..max whiskers (trial counts: >= 30 with --paper).
// Expected shape: LI stays good everywhere; absolute times and the
// random-vs-best gaps are much larger than with exponential jobs.
#include <iostream>

#include "bench_common.h"

namespace {

void run_panel(const stale::driver::Cli& cli, double lambda) {
  stale::driver::ExperimentConfig base;
  base.num_servers = 10;
  base.lambda = lambda;
  base.model = stale::driver::UpdateModel::kPeriodic;
  base.job_size = "pareto_fig10";
  cli.apply_run_scale(base);
  // The paper runs each heavy-tailed experiment >= 30 times; the reduced
  // default uses 9 trials so the quartiles remain meaningful.
  if (!cli.has("trials")) base.trials = cli.has("paper") ? 30 : 9;

  const std::vector<std::string> policies = {"random", "k_subset:2",
                                             "basic_li", "aggressive_li"};
  std::cout << "\n## panel: lambda = " << lambda
            << " (cells: median [p25,p75] (min..max) across trials)\n";
  stale::driver::SweepOptions options;
  options.csv = cli.csv();
  options.box_stats = true;
  options.precision = 2;
  stale::driver::run_t_sweep(base, stale::bench::t_grid(cli, 32.0), policies,
                             std::cout, options);
}

}  // namespace

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {}, {}, [](const stale::driver::Cli& cli) {
        stale::bench::print_header(
            "Figure 10",
            "Bounded Pareto jobs (alpha = 1.1, max = 1000x mean), periodic "
            "update",
            cli, "n = 10; panels lambda = 0.5, 0.7, 0.9");
        for (double lambda : {0.5, 0.7, 0.9}) run_panel(cli, lambda);
      });
}
