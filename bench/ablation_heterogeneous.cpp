// Ablation (paper future work): heterogeneous server capacities. A cluster
// whose rates are {2, 2, 1, 1, 1, 1, 0.5, 0.5} (total 9, like nine unit
// servers) is driven through the LoadInterpreter facade directly, comparing:
//   rate-weighted Basic LI (knows capacities), plain Basic LI (assumes
//   homogeneity), capacity-proportional random, and uniform random.
// Expected shape: weighted LI wins; plain LI overloads the slow servers as
// staleness grows; uniform random is worst because the 0.5-rate servers run
// at twice the intended utilization.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/interpreter.h"
#include "driver/table.h"
#include "loadinfo/periodic_board.h"
#include "queueing/cluster.h"
#include "queueing/metrics.h"
#include "sim/rng.h"

namespace {

using stale::core::LiMode;
using stale::core::LoadInterpreter;
using stale::core::RateSource;

const std::vector<double> kRates = {2.0, 2.0, 1.0, 1.0, 1.0, 1.0, 0.5, 0.5};

enum class Mode { kWeightedLi, kPlainLi, kProportionalRandom, kUniform };

double run_trial(Mode mode, double update_interval, double lambda,
                 std::uint64_t jobs, std::uint64_t warmup,
                 std::uint64_t seed) {
  const int n = static_cast<int>(kRates.size());
  double total_rate = 0.0;
  for (double rate : kRates) total_rate += rate;
  const double arrival_rate = lambda * total_rate;

  stale::sim::Rng rng(seed);
  stale::queueing::Cluster cluster(kRates, 0.0);
  stale::loadinfo::PeriodicBoard board(n, update_interval);
  stale::queueing::ResponseMetrics metrics(warmup);

  LoadInterpreter::Options options;
  options.mode = LiMode::kBasic;
  options.num_servers = n;
  options.rate = RateSource::told(arrival_rate);
  if (mode == Mode::kWeightedLi) options.server_rates = kRates;
  LoadInterpreter interpreter(std::move(options));

  // Capacity-proportional random sampler.
  std::vector<double> proportional(kRates.begin(), kRates.end());
  const stale::core::DiscreteSampler proportional_sampler{
      std::span<const double>(proportional)};

  double t = 0.0;
  std::uint64_t board_version = 0;
  for (std::uint64_t job = 0; job < jobs; ++job) {
    t += -std::log(rng.next_double_open0()) / arrival_rate;
    board.sync(cluster, t);

    int server = 0;
    switch (mode) {
      case Mode::kWeightedLi:
      case Mode::kPlainLi:
        if (board.version() != board_version) {
          // LI interprets against the full phase, matching the periodic
          // Basic LI policy (K = lambda_total * T); the distribution is
          // then reused for every arrival of the phase.
          interpreter.report_loads(std::span<const int>(board.loads()),
                                   board.phase_length());
          board_version = board.version();
        }
        server = interpreter.pick(rng);
        break;
      case Mode::kProportionalRandom:
        server = proportional_sampler.sample(rng);
        break;
      case Mode::kUniform:
        server = static_cast<int>(rng.next_below(kRates.size()));
        break;
    }
    // Job sizes are exponential with mean 1 *work unit*; a rate-c server
    // finishes a unit of work in 1/c time.
    const double size = -std::log(rng.next_double_open0());
    const double departure = cluster.assign(t, server, size);
    metrics.record(departure - t);
  }
  return metrics.mean_response();
}

}  // namespace

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {}, {}, [](const stale::driver::Cli& cli) {
        stale::driver::ExperimentConfig scale;
        cli.apply_run_scale(scale);

        stale::bench::print_header(
            "Ablation: heterogeneous servers",
            "rate-weighted Basic LI on a mixed-capacity cluster (future "
            "work in the paper)",
            cli, "rates = {2,2,1,1,1,1,0.5,0.5}, lambda = 0.85");

        stale::driver::Table table(
            {"T", "weighted_li", "plain_li", "prop_random", "uniform"});
        for (double t : stale::bench::t_grid(cli, 32.0)) {
          std::vector<std::string> row{stale::driver::Table::fmt(t, 3)};
          for (Mode mode : {Mode::kWeightedLi, Mode::kPlainLi,
                            Mode::kProportionalRandom, Mode::kUniform}) {
            stale::sim::RunningStats stats;
            for (int trial = 0; trial < scale.trials; ++trial) {
              stats.add(run_trial(mode, t, 0.85, scale.num_jobs,
                                  scale.warmup_jobs,
                                  stale::sim::trial_seed(scale.base_seed,
                                                         trial)));
            }
            row.push_back(stale::driver::Table::fmt_ci(
                stats.mean(), stats.ci90_half_width()));
          }
          table.add_row(std::move(row));
        }
        table.print(std::cout, cli.csv());
      });
}
