// Ablation: the Hybrid LI variant (paper Section 4.1.1 — described but "not
// analyzed further"). Expected shape under periodic update: Hybrid falls
// between Basic LI and Aggressive LI, as the paper states.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {}, {}, [](const stale::driver::Cli& cli) {
        stale::driver::ExperimentConfig base;
        base.num_servers = 10;
        base.lambda = 0.9;
        base.model = stale::driver::UpdateModel::kPeriodic;
        cli.apply_run_scale(base);

        stale::bench::print_header(
            "Ablation: Hybrid LI",
            "Basic vs. Hybrid vs. Aggressive LI, periodic update", cli,
            "n = 10, lambda = 0.9");

        const std::vector<std::string> policies = {
            "basic_li", "hybrid_li", "aggressive_li", "random"};
        stale::driver::SweepOptions options;
        options.csv = cli.csv();
        stale::driver::run_t_sweep(base, stale::bench::t_grid(cli, 64.0),
                                   policies, std::cout, options);
      });
}
