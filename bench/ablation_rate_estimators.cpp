// Ablation (extension): closing the paper's loop on "servers tell clients
// the arrival rate" — Basic LI driven by online rate estimators instead of
// being told lambda. Columns: told the exact rate; the paper's conservative
// max-throughput rule; EWMA-learned; sliding-window-learned. Expected shape:
// all four within a few percent, because LI tolerates overestimates and the
// estimators converge quickly at steady load.
#include <iostream>

#include "bench_common.h"
#include "driver/table.h"

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {}, {}, [](const stale::driver::Cli& cli) {
        stale::driver::ExperimentConfig base;
        base.num_servers = 10;
        base.lambda = 0.9;
        base.model = stale::driver::UpdateModel::kPeriodic;
        base.policy = "basic_li";
        cli.apply_run_scale(base);

        stale::bench::print_header(
            "Ablation: rate estimators",
            "Basic LI with told vs. learned arrival rates, periodic update",
            cli, "n = 10, lambda = 0.9");

        const std::vector<std::string> estimators = {
            "told", "conservative", "ewma:50", "windowed:100"};
        std::vector<std::string> columns{"T"};
        for (const auto& estimator : estimators) columns.push_back(estimator);
        stale::driver::Table table(std::move(columns));

        for (double t : stale::bench::t_grid(cli, 64.0)) {
          std::vector<std::string> row{stale::driver::Table::fmt(t, 3)};
          for (const auto& estimator : estimators) {
            stale::driver::ExperimentConfig config = base;
            config.update_interval = t;
            config.rate_estimator = estimator;
            const auto result = stale::driver::run_experiment(config);
            row.push_back(
                stale::driver::Table::fmt_ci(result.mean(), result.ci90()));
          }
          table.add_row(std::move(row));
        }
        table.print(std::cout, cli.csv());
      });
}
