// Figure 12: Basic LI under the periodic update model when the believed
// arrival rate is wrong by a factor between 1/8 and 8. Expected shape:
// underestimating lambda (factors < 1) makes LI over-aggressive and hurts
// badly; overestimating (factors > 1) makes it conservative and costs little
// — the asymmetry behind the paper's "assume maximum throughput" advice.
#include <iostream>

#include "bench_common.h"
#include "driver/table.h"

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {}, {}, [](const stale::driver::Cli& cli) {
        stale::driver::ExperimentConfig base;
        base.num_servers = 10;
        base.lambda = 0.9;
        base.model = stale::driver::UpdateModel::kPeriodic;
        base.policy = "basic_li";
        cli.apply_run_scale(base);

        stale::bench::print_header(
            "Figure 12",
            "Basic LI with a misestimated arrival rate, periodic update", cli,
            "n = 10, lambda = 0.9; columns: believed-rate error factor");

        const std::vector<double> factors = {0.125, 0.25, 0.5, 1.0,
                                             2.0,   4.0,  8.0};
        std::vector<std::string> columns{"T"};
        for (double factor : factors) {
          columns.push_back(stale::driver::Table::fmt(factor, 3) + "*load");
        }
        stale::driver::Table table(std::move(columns));

        for (double t : stale::bench::t_grid(cli, 64.0)) {
          std::vector<std::string> row{stale::driver::Table::fmt(t, 3)};
          for (double factor : factors) {
            stale::driver::ExperimentConfig config = base;
            config.update_interval = t;
            config.lambda_error_factor = factor;
            const auto result = stale::driver::run_experiment(config);
            row.push_back(
                stale::driver::Table::fmt_ci(result.mean(), result.ci90()));
          }
          table.add_row(std::move(row));
        }
        table.print(std::cout, cli.csv());
      });
}
