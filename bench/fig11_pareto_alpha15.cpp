// Figure 11: the heavy-tailed sweep with the lighter Bounded Pareto tail
// (alpha = 1.5, max = 1024x mean, mean = 1) at lambda = 0.9. Expected shape:
// the same qualitative story as Figure 10 with smaller absolute times.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {}, {}, [](const stale::driver::Cli& cli) {
        stale::driver::ExperimentConfig base;
        base.num_servers = 10;
        base.lambda = 0.9;
        base.model = stale::driver::UpdateModel::kPeriodic;
        base.job_size = "pareto_fig11";
        cli.apply_run_scale(base);
        if (!cli.has("trials")) base.trials = cli.has("paper") ? 30 : 9;

        stale::bench::print_header(
            "Figure 11",
            "Bounded Pareto jobs (alpha = 1.5, max = 1024x mean), periodic "
            "update",
            cli,
            "n = 10, lambda = 0.9; cells: median [p25,p75] (min..max) across "
            "trials");

        const std::vector<std::string> policies = {"random", "k_subset:2",
                                                   "basic_li",
                                                   "aggressive_li"};
        stale::driver::SweepOptions options;
        options.csv = cli.csv();
        options.box_stats = true;
        options.precision = 2;
        stale::driver::run_t_sweep(base, stale::bench::t_grid(cli, 32.0),
                                   policies, std::cout, options);
      });
}
