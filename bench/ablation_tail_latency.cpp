// Ablation: tail latency. The paper reports means; modern services care
// about p95/p99. This bench reports mean / p95 / p99 response times per
// policy across the staleness sweep. Expected shape: the herd effect is even
// more brutal in the tail than in the mean (a herded server's whole queue
// sees the pile-up), and LI's tail advantage over k-subset at moderate T
// exceeds its mean advantage.
#include <iostream>

#include "bench_common.h"
#include "driver/table.h"
#include "sim/rng.h"
#include "sim/stats.h"

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {}, {}, [](const stale::driver::Cli& cli) {
        stale::driver::ExperimentConfig base;
        base.num_servers = 10;
        base.lambda = 0.9;
        base.model = stale::driver::UpdateModel::kPeriodic;
        base.keep_response_samples = true;
        cli.apply_run_scale(base);

        stale::bench::print_header(
            "Ablation: tail latency",
            "mean / p95 / p99 response time per policy, periodic update",
            cli, "n = 10, lambda = 0.9");

        const std::vector<std::string> policies = {
            "random", "k_subset:2", "k_subset:10", "basic_li",
            "aggressive_li"};
        std::vector<std::string> columns{"T"};
        for (const auto& policy : policies) {
          columns.push_back(policy + " mean/p95/p99");
        }
        stale::driver::Table table(std::move(columns));

        for (double t : stale::bench::t_grid(cli, 64.0)) {
          std::vector<std::string> row{stale::driver::Table::fmt(t, 3)};
          for (const auto& policy : policies) {
            stale::driver::ExperimentConfig config = base;
            config.update_interval = t;
            config.policy = policy;
            stale::sim::RunningStats mean;
            stale::sim::RunningStats p95;
            stale::sim::RunningStats p99;
            for (int trial = 0; trial < config.trials; ++trial) {
              const auto result = stale::driver::run_trial(
                  config, stale::sim::trial_seed(config.base_seed, trial));
              mean.add(result.mean_response);
              p95.add(result.p95_response);
              p99.add(result.p99_response);
            }
            row.push_back(stale::driver::Table::fmt(mean.mean(), 1) + "/" +
                          stale::driver::Table::fmt(p95.mean(), 1) + "/" +
                          stale::driver::Table::fmt(p99.mean(), 1));
          }
          table.add_row(std::move(row));
        }
        table.print(std::cout, cli.csv());
      });
}
