// Figure 2: mean response time vs. update interval T under the periodic
// update (bulletin board) model at the default heavy load (n = 10,
// lambda = 0.9). Series: random (k = 1), k-subset for k = 2, 3, n, Basic LI,
// Aggressive LI. The paper's panels (a)/(b) are the same data at two x-axis
// ranges; the full grid here covers both.
#include <iostream>

#include "bench_common.h"
#include "driver/table.h"

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {"lambda", "n"}, {}, [](const stale::driver::Cli& cli) {
        stale::driver::ExperimentConfig base;
        base.num_servers = static_cast<int>(cli.get_int("n", 10));
        base.lambda = cli.get_double("lambda", 0.9);
        base.model = stale::driver::UpdateModel::kPeriodic;
        cli.apply_run_scale(base);

        stale::bench::print_header(
            "Figure 2", "service time vs. update delay, periodic update model",
            cli,
            "n = " + std::to_string(base.num_servers) +
                ", lambda = " + stale::driver::Table::fmt(base.lambda, 2) +
                ", exp(1) jobs; cells: mean response +- 90% CI");

        const std::vector<std::string> policies = {
            "random",
            "k_subset:2",
            "k_subset:3",
            "k_subset:" + std::to_string(base.num_servers),
            "basic_li",
            "aggressive_li"};
        stale::driver::SweepOptions options;
        options.csv = cli.csv();
        stale::driver::run_t_sweep(base, stale::bench::t_grid(cli, 128.0),
                                   policies, std::cout, options);
      });
}
