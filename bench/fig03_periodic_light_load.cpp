// Figure 3: the Figure 2 sweep at the lighter load lambda = 0.5. Expected
// shape: the same algorithm ordering with muted gaps — load balancing
// matters less when servers are half idle, and the k-subset blow-up at large
// T is milder than at lambda = 0.9.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {}, {}, [](const stale::driver::Cli& cli) {
        stale::driver::ExperimentConfig base;
        base.num_servers = 10;
        base.lambda = 0.5;
        base.model = stale::driver::UpdateModel::kPeriodic;
        cli.apply_run_scale(base);

        stale::bench::print_header(
            "Figure 3",
            "service time vs. update delay, periodic update, light load",
            cli, "n = 10, lambda = 0.5, exp(1) jobs");

        const std::vector<std::string> policies = {
            "random",      "k_subset:2", "k_subset:3",
            "k_subset:10", "basic_li",   "aggressive_li"};
        stale::driver::SweepOptions options;
        options.csv = cli.csv();
        stale::driver::run_t_sweep(base, stale::bench::t_grid(cli, 128.0),
                                   policies, std::cout, options);
      });
}
