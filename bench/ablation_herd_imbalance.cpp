// Ablation: the herd effect seen directly in queue-length dispersion. For
// each policy and update interval we report the within-snapshot standard
// deviation of the ten queue lengths (PASTA-sampled at arrival epochs) and
// the mean per-snapshot maximum. Under k = n the stddev explodes with T —
// the flood/starve oscillation the paper describes in its first paragraph —
// while LI's dispersion converges to random's instead of diverging.
#include <iostream>

#include "bench_common.h"
#include "driver/table.h"
#include "sim/rng.h"

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {}, {}, [](const stale::driver::Cli& cli) {
        stale::driver::ExperimentConfig base;
        base.num_servers = 10;
        base.lambda = 0.9;
        base.model = stale::driver::UpdateModel::kPeriodic;
        cli.apply_run_scale(base);

        stale::bench::print_header(
            "Ablation: herd imbalance",
            "queue-length dispersion (stddev / max across 10 servers) at "
            "arrival epochs",
            cli, "n = 10, lambda = 0.9, periodic update");

        const std::vector<std::string> policies = {
            "random", "k_subset:2", "k_subset:10", "basic_li",
            "aggressive_li"};
        std::vector<std::string> columns{"T"};
        for (const auto& policy : policies) {
          columns.push_back(policy + " sd/max");
        }
        stale::driver::Table table(std::move(columns));

        for (double t : stale::bench::t_grid(cli, 64.0)) {
          std::vector<std::string> row{stale::driver::Table::fmt(t, 3)};
          for (const auto& policy : policies) {
            stale::driver::ExperimentConfig config = base;
            config.update_interval = t;
            config.policy = policy;
            stale::sim::RunningStats stddev;
            stale::sim::RunningStats maxima;
            for (int trial = 0; trial < config.trials; ++trial) {
              const auto result = stale::driver::run_trial(
                  config, stale::sim::trial_seed(config.base_seed, trial));
              stddev.add(result.mean_queue_stddev);
              maxima.add(result.mean_queue_max);
            }
            row.push_back(stale::driver::Table::fmt(stddev.mean(), 2) + "/" +
                          stale::driver::Table::fmt(maxima.mean(), 1));
          }
          table.add_row(std::move(row));
        }
        table.print(std::cout, cli.csv());
      });
}
