// Ablation: sender-driven dispatch with and without receiver-driven work
// stealing (the paper's future-work combination). Idle servers probe 3 peers
// with fresh state and steal a waiting job. Questions this answers:
//   1. How much of the herd effect can receivers repair? (k = n + stealing)
//   2. Does LI still pay off once stealing exists? (basic_li+steal vs
//      random+steal)
//   3. What does a migration cost do to the balance?
#include <iostream>

#include "bench_common.h"
#include "driver/receiver_driven.h"
#include "driver/table.h"
#include "sim/rng.h"
#include "sim/stats.h"

namespace {

using stale::driver::ExperimentConfig;
using stale::driver::StealingOptions;
using stale::driver::Table;

std::string run_cell(const ExperimentConfig& config,
                     const StealingOptions& options) {
  stale::sim::RunningStats stats;
  for (int trial = 0; trial < config.trials; ++trial) {
    const auto result = run_receiver_driven_trial(
        config, options, stale::sim::trial_seed(config.base_seed, trial));
    stats.add(result.mean_response);
  }
  return Table::fmt_ci(stats.mean(), stats.ci90_half_width(), 3);
}

}  // namespace

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {"migration-delay"}, {}, [](const stale::driver::Cli& cli) {
        ExperimentConfig base;
        base.num_servers = 10;
        base.lambda = 0.9;
        base.model = stale::driver::UpdateModel::kPeriodic;
        cli.apply_run_scale(base);
        // The event-kernel engine is several times slower than the lazy
        // engine; trim the default run length accordingly.
        if (!cli.has("paper") && !cli.has("num-jobs")) {
          base.num_jobs /= 2;
          base.warmup_jobs /= 2;
        }

        StealingOptions stealing;
        stealing.migration_delay = cli.get_double("migration-delay", 0.1);

        stale::bench::print_header(
            "Ablation: receiver-driven rebalancing",
            "idle servers probe 3 peers and steal a waiting job "
            "(migration delay " +
                Table::fmt(stealing.migration_delay, 2) + ")",
            cli, "n = 10, lambda = 0.9, periodic update");

        const std::vector<std::string> policies = {"random", "k_subset:2",
                                                   "k_subset:10", "basic_li"};
        std::vector<std::string> columns{"T"};
        for (const auto& policy : policies) {
          columns.push_back(policy);
          columns.push_back(policy + "+steal");
        }
        Table table(std::move(columns));

        for (double t : stale::bench::t_grid(cli, 32.0)) {
          std::vector<std::string> row{Table::fmt(t, 3)};
          for (const auto& policy : policies) {
            ExperimentConfig config = base;
            config.update_interval = t;
            config.policy = policy;
            StealingOptions off = stealing;
            off.enabled = false;
            row.push_back(run_cell(config, off));
            row.push_back(run_cell(config, stealing));
          }
          table.add_row(std::move(row));
        }
        table.print(std::cout, cli.csv());
      });
}
