// Figure 13: service time vs. offered load lambda at a fixed update interval
// T = 10 (periodic update), comparing Basic LI told the exact lambda against
// Basic LI that conservatively assumes lambda-hat = 1.0 (the system's
// maximum per-server throughput), plus the usual competitors. Expected
// shape: the two Basic LI lines are nearly indistinguishable (< 1% apart in
// the paper) and both beat the k-subset family at this staleness.
#include <iostream>

#include "bench_common.h"
#include "driver/table.h"

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {"t"}, {}, [](const stale::driver::Cli& cli) {
        stale::driver::ExperimentConfig base;
        base.num_servers = 10;
        base.model = stale::driver::UpdateModel::kPeriodic;
        base.update_interval = cli.get_double("t", 10.0);
        cli.apply_run_scale(base);

        stale::bench::print_header(
            "Figure 13",
            "service time vs. arrival rate; conservative lambda-hat = 1.0 vs "
            "exact",
            cli,
            "n = 10, T = " +
                stale::driver::Table::fmt(base.update_interval, 1));

        struct Column {
          std::string label;
          std::string policy;
          double estimate;  // per-server lambda-hat; < 0 = exact
        };
        const std::vector<Column> columns_spec = {
            {"random", "random", -1.0},
            {"k_subset:2", "k_subset:2", -1.0},
            {"k_subset:3", "k_subset:3", -1.0},
            {"basic_li(exact)", "basic_li", -1.0},
            {"basic_li(lh=1.0)", "basic_li", 1.0},
            {"aggressive_li(exact)", "aggressive_li", -1.0},
        };
        std::vector<std::string> columns{"lambda"};
        for (const auto& column : columns_spec) columns.push_back(column.label);
        stale::driver::Table table(std::move(columns));

        const std::vector<double> lambdas =
            cli.has("fast") ? std::vector<double>{0.3, 0.7, 0.9}
                            : std::vector<double>{0.1, 0.3, 0.5, 0.7, 0.8,
                                                  0.9, 0.95, 0.98};
        for (double lambda : lambdas) {
          std::vector<std::string> row{stale::driver::Table::fmt(lambda, 2)};
          for (const auto& column : columns_spec) {
            stale::driver::ExperimentConfig config = base;
            config.lambda = lambda;
            config.policy = column.policy;
            config.lambda_estimate_per_server = column.estimate;
            const auto result = stale::driver::run_experiment(config);
            row.push_back(
                stale::driver::Table::fmt_ci(result.mean(), result.ci90()));
          }
          table.add_row(std::move(row));
        }
        table.print(std::cout, cli.csv());
      });
}
