// Figure 6: service time vs. mean update delay under the continuous update
// model, one panel per delay distribution (constant, uniform(T/2, 3T/2),
// uniform(0, 2T), exponential(T)), when clients only know the *average*
// delay T. Expected shape: Basic LI >= Aggressive LI here (the stationary
// rule makes Aggressive conservative); higher-variance delays help the
// k-subset algorithms and shrink LI's edge — under exponential delay
// k-subset can beat Basic LI by up to ~16%.
#include <iostream>

#include "bench_common.h"
#include "loadinfo/delay_distribution.h"

namespace {

void run_panel(const stale::driver::Cli& cli,
               stale::loadinfo::DelayKind kind) {
  stale::driver::ExperimentConfig base;
  base.num_servers = 10;
  base.lambda = 0.9;
  base.model = stale::driver::UpdateModel::kContinuous;
  base.delay_kind = kind;
  base.know_actual_age = false;
  cli.apply_run_scale(base);

  const std::vector<std::string> policies = {
      "random",      "k_subset:2", "k_subset:3",
      "k_subset:10", "basic_li",   "aggressive_li"};
  std::cout << "\n## panel: delay = "
            << stale::loadinfo::delay_kind_name(kind) << "\n";
  stale::driver::SweepOptions options;
  options.csv = cli.csv();
  stale::driver::run_t_sweep(base, stale::bench::t_grid(cli, 32.0), policies,
                             std::cout, options);
}

}  // namespace

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {}, {}, [](const stale::driver::Cli& cli) {
        stale::bench::print_header(
            "Figure 6",
            "continuous update model, clients know only the mean delay", cli,
            "n = 10, lambda = 0.9; panels = delay distributions of mean T");
        using stale::loadinfo::DelayKind;
        for (DelayKind kind : {DelayKind::kConstant, DelayKind::kUniformHalf,
                               DelayKind::kUniformFull,
                               DelayKind::kExponential}) {
          run_panel(cli, kind);
        }
      });
}
