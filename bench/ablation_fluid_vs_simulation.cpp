// Ablation: fluid-limit analytic model vs. discrete-event simulation.
// Mitzenmacher's mean-field method (which the paper's related work leans on)
// computes the periodic-update d-choices system deterministically in the
// n -> infinity limit. Here the fluid prediction sits next to simulations at
// n = 10 and n = 100: the n = 100 column converges onto the fluid value,
// and the analytic fresh-limit (power-of-d fixed point) anchors T -> 0 —
// an independent derivation agreeing with the engine end to end.
#include <iostream>

#include "analysis/fluid_model.h"
#include "bench_common.h"
#include "driver/table.h"

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {"d"}, {}, [](const stale::driver::Cli& cli) {
        const int d = static_cast<int>(cli.get_int("d", 2));
        stale::driver::ExperimentConfig base;
        base.lambda = 0.9;
        base.model = stale::driver::UpdateModel::kPeriodic;
        base.policy = "k_subset:" + std::to_string(d);
        cli.apply_run_scale(base);

        stale::bench::print_header(
            "Ablation: fluid model vs. simulation",
            "mean-field analytic prediction vs. discrete-event engine, "
            "d-choices under periodic update",
            cli,
            "lambda = 0.9, d = " + std::to_string(d) +
                "; fresh-limit fixed point = " +
                stale::driver::Table::fmt(
                    stale::analysis::power_of_d_response_time(0.9, d), 4));

        stale::driver::Table table({"T", "fluid (n=inf)", "sim n=10",
                                    "sim n=100", "fluid aggr_li",
                                    "sim aggr_li n=100"});
        const std::vector<double> t_values =
            cli.has("fast") ? std::vector<double>{1.0, 4.0}
                            : std::vector<double>{0.5, 1.0, 2.0, 4.0, 8.0};
        for (double t : t_values) {
          stale::analysis::FluidOptions options;
          options.max_length = 100;
          const auto fluid =
              stale::analysis::fluid_periodic_dchoices(0.9, d, t, options);

          std::vector<std::string> row{stale::driver::Table::fmt(t, 2),
                                       stale::driver::Table::fmt(
                                           fluid.mean_response, 4)};
          for (int n : {10, 100}) {
            stale::driver::ExperimentConfig config = base;
            config.num_servers = n;
            config.update_interval = t;
            const auto result = stale::driver::run_experiment(config);
            row.push_back(stale::driver::Table::fmt_ci(result.mean(),
                                                       result.ci90()));
          }
          const auto aggressive_fluid =
              stale::analysis::fluid_periodic_aggressive_li(0.9, t, options);
          row.push_back(
              stale::driver::Table::fmt(aggressive_fluid.mean_response, 4));
          {
            stale::driver::ExperimentConfig config = base;
            config.num_servers = 100;
            config.update_interval = t;
            config.policy = "aggressive_li";
            const auto result = stale::driver::run_experiment(config);
            row.push_back(stale::driver::Table::fmt_ci(result.mean(),
                                                       result.ci90()));
          }
          table.add_row(std::move(row));
        }
        table.print(std::cout, cli.csv());
      });
}
