// Google-benchmark microbenchmarks: per-decision cost of each dispatch
// policy, the LI math kernels across cluster sizes, the samplers, the
// event-queue kernel (slab vs. the retired hash-map design), end-to-end
// simulation throughput (jobs/second) for each staleness model, and the
// thread-pool scaling of run_experiment.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/aggressive_schedule.h"
#include "core/ksubset_analysis.h"
#include "core/load_interpretation.h"
#include "core/sampler.h"
#include "dispatch/dispatcher_set.h"
#include "driver/experiment.h"
#include "sim/distributions.h"
#include "lint/lint.h"
#include "policy/policy_factory.h"
#include "sim/level_histogram.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace {

std::vector<double> random_loads(int n, stale::sim::Rng& rng) {
  std::vector<double> loads(static_cast<std::size_t>(n));
  for (double& b : loads) b = static_cast<double>(rng.next_below(20));
  return loads;
}

void BM_BasicLiProbabilities(benchmark::State& state) {
  stale::sim::Rng rng(1);
  const auto loads = random_loads(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stale::core::basic_li_probabilities(
        std::span<const double>(loads), 9.0));
  }
}
BENCHMARK(BM_BasicLiProbabilities)->Arg(10)->Arg(100)->Arg(1000);

void BM_AggressiveSchedule(benchmark::State& state) {
  stale::sim::Rng rng(2);
  const auto loads = random_loads(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stale::core::make_aggressive_schedule(loads));
  }
}
BENCHMARK(BM_AggressiveSchedule)->Arg(10)->Arg(100)->Arg(1000);

void BM_KsubsetRankProbabilities(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(stale::core::ksubset_rank_probabilities(
        static_cast<int>(state.range(0)), 3));
  }
}
BENCHMARK(BM_KsubsetRankProbabilities)->Arg(10)->Arg(1000);

void BM_DiscreteSampler(benchmark::State& state) {
  stale::sim::Rng rng(3);
  std::vector<double> p(static_cast<std::size_t>(state.range(0)), 1.0);
  const stale::core::DiscreteSampler sampler{std::span<const double>(p)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_DiscreteSampler)->Arg(10)->Arg(1000);

void BM_AliasSampler(benchmark::State& state) {
  stale::sim::Rng rng(4);
  std::vector<double> p(static_cast<std::size_t>(state.range(0)), 1.0);
  const stale::core::AliasSampler sampler{std::span<const double>(p)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_AliasSampler)->Arg(10)->Arg(1000);

void BM_PolicyDecision(benchmark::State& state,
                       const std::string& spec) {
  const auto policy = stale::policy::make_policy(spec);
  stale::sim::Rng rng(5);
  std::vector<int> loads(10);
  for (int i = 0; i < 10; ++i) loads[static_cast<std::size_t>(i)] = i % 4;
  stale::policy::DispatchContext context;
  context.loads = loads;
  context.lambda_total = 9.0;
  context.age = 2.0;
  std::uint64_t version = 0;
  for (auto _ : state) {
    context.info_version = ++version;  // worst case: no caching possible
    benchmark::DoNotOptimize(policy->select(context, rng));
  }
}
BENCHMARK_CAPTURE(BM_PolicyDecision, random, "random");
BENCHMARK_CAPTURE(BM_PolicyDecision, k_subset_2, "k_subset:2");
BENCHMARK_CAPTURE(BM_PolicyDecision, basic_li, "basic_li");
BENCHMARK_CAPTURE(BM_PolicyDecision, aggressive_li, "aggressive_li");
BENCHMARK_CAPTURE(BM_PolicyDecision, basic_li_k3, "basic_li_k:3");

// Per-decision dispatch cost at large n: the O(n) vector representation
// against the O(#levels) bucketed path over the same board snapshot.
// info_version is bumped every iteration so each decision pays a full
// rebuild — the worst case for both representations and the regime where
// the asymptotic separation shows (a periodic phase boundary at every
// arrival). Phase geometry mimics a periodic run mid-phase.
void BM_LargeNDispatch(benchmark::State& state, const std::string& spec,
                       bool bucketed) {
  const auto policy = stale::policy::make_policy(spec);
  const int n = static_cast<int>(state.range(0));
  stale::sim::Rng rng(6);
  std::vector<int> loads(static_cast<std::size_t>(n));
  for (int& b : loads) b = static_cast<int>(rng.next_below(20));
  stale::sim::LevelIndex index;
  if (bucketed) index.build(loads);
  stale::policy::DispatchContext context;
  context.loads = loads;
  context.lambda_total = 0.9 * n;
  context.phase_length = 1.0;
  context.phase_elapsed = 0.5;
  context.age = 0.5;
  if (bucketed) context.levels = &index;
  std::uint64_t version = 0;
  for (auto _ : state) {
    context.info_version = ++version;
    benchmark::DoNotOptimize(policy->select(context, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_LargeNDispatch, basic_li_vector, "basic_li", false)
    ->Arg(1'000)->Arg(100'000)->Arg(1'000'000);
BENCHMARK_CAPTURE(BM_LargeNDispatch, basic_li_bucketed, "basic_li", true)
    ->Arg(1'000)->Arg(100'000)->Arg(1'000'000);
BENCHMARK_CAPTURE(BM_LargeNDispatch, aggressive_li_vector, "aggressive_li",
                  false)
    ->Arg(1'000)->Arg(100'000)->Arg(1'000'000);
BENCHMARK_CAPTURE(BM_LargeNDispatch, aggressive_li_bucketed, "aggressive_li",
                  true)
    ->Arg(1'000)->Arg(100'000)->Arg(1'000'000);
BENCHMARK_CAPTURE(BM_LargeNDispatch, hybrid_li_vector, "hybrid_li", false)
    ->Arg(100'000);
BENCHMARK_CAPTURE(BM_LargeNDispatch, hybrid_li_bucketed, "hybrid_li", true)
    ->Arg(100'000);
BENCHMARK_CAPTURE(BM_LargeNDispatch, threshold_vector, "threshold:all:3",
                  false)
    ->Arg(100'000);
BENCHMARK_CAPTURE(BM_LargeNDispatch, threshold_bucketed, "threshold:all:3",
                  true)
    ->Arg(100'000);

// Per-arrival cost of the multi-dispatcher hot path at n = 100'000 on the
// bucketed representation: one Poisson-thinning draw, the D-board
// interleaved sync (sync_all_to steps every dispatcher's pending refresh
// boundaries in global time order), a bucketed basic_li decision against
// the picked dispatcher's own board, and the cluster assignment. D = 1 is
// the legacy single-board arrival cost; the D sweep prices the scale-out
// overhead, which is the board fan-out (D refreshes per interval), not the
// per-decision work.
void BM_MultiDispatcherDispatch(benchmark::State& state) {
  const int d_count = static_cast<int>(state.range(0));
  constexpr int kServers = 100'000;
  stale::sim::Rng rng(7);
  stale::queueing::Cluster cluster(kServers);
  cluster.enable_lazy_advance();  // the engine's own large-n configuration
  stale::dispatch::DispatcherSet boards(d_count, kServers,
                                        /*update_interval=*/1.0,
                                        /*use_individual=*/false, rng);
  boards.enable_level_index();
  const stale::dispatch::ArrivalSplitter splitter(
      d_count, stale::dispatch::DispatcherSplit::kUniform);
  const auto policy = stale::policy::make_policy("basic_li");
  const double lambda_total = 0.9 * kServers;
  double t = 0.0;
  for (auto _ : state) {
    t += stale::sim::Exponential(1.0 / lambda_total).sample(rng);
    const int d = splitter.pick(rng);
    boards.sync_all_to(cluster, t);
    stale::policy::DispatchContext context;
    context.loads = boards.loads(d);
    context.lambda_total = lambda_total;
    context.age = boards.age(d, t);
    context.phase_length = 1.0;
    context.phase_elapsed = context.age;
    context.info_version = boards.version(d);
    context.levels = &boards.level_index(d);
    const int server = policy->select(context, rng);
    cluster.assign(t, server, 1.0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MultiDispatcherDispatch)->Arg(1)->Arg(4)->Arg(16);

// The event-queue design the slab replaced: an unordered_map from event id
// to callback plus a lazy-deletion heap. Kept here (only here) as the
// baseline for BM_SimulatorEventLoop — one hash insert/find/erase and a
// map-node allocation per event.
class HashMapSimulator {
 public:
  using EventFn = std::function<void(HashMapSimulator&)>;
  struct Handle {
    std::uint64_t id = 0;
  };

  double now() const { return now_; }

  Handle schedule_after(double delay, EventFn fn) {
    const std::uint64_t id = next_id_++;
    queue_.push(Entry{now_ + delay, id});
    callbacks_.emplace(id, std::move(fn));
    return Handle{id};
  }

  bool cancel(Handle handle) { return callbacks_.erase(handle.id) > 0; }

  std::uint64_t run() {
    std::uint64_t fired = 0;
    while (step()) ++fired;
    return fired;
  }

 private:
  struct Entry {
    double when;
    std::uint64_t id;
    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  bool step() {
    while (!queue_.empty() && callbacks_.count(queue_.top().id) == 0) {
      queue_.pop();  // cancelled; discard
    }
    if (queue_.empty()) return false;
    const Entry entry = queue_.top();
    queue_.pop();
    const auto it = callbacks_.find(entry.id);
    EventFn fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = entry.when;
    fn(*this);
    return true;
  }

  double now_ = 0.0;
  std::uint64_t next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<std::uint64_t, EventFn> callbacks_;
};

// Timer-chain workload shared by the two event-loop benches: `chains`
// concurrent self-rescheduling timers, each also scheduling and cancelling a
// decoy per tick so the cancellation path is exercised too.
template <typename Sim, typename Fn>
std::uint64_t run_event_loop(int chains, std::uint64_t events_per_chain) {
  Sim sim;
  std::vector<Fn> tick(static_cast<std::size_t>(chains));
  std::vector<std::uint64_t> remaining(static_cast<std::size_t>(chains),
                                       events_per_chain);
  std::uint64_t fired = 0;
  for (int i = 0; i < chains; ++i) {
    const auto slot = static_cast<std::size_t>(i);
    const double gap = 0.5 + 0.01 * i;
    tick[slot] = [&tick, &remaining, &fired, slot, gap](Sim& s) {
      ++fired;
      const auto decoy = s.schedule_after(gap * 3.0, [](Sim&) {});
      s.cancel(decoy);
      if (--remaining[slot] > 0) s.schedule_after(gap, tick[slot]);
    };
    sim.schedule_after(gap, tick[slot]);
  }
  sim.run();
  return fired;
}

void BM_SimulatorEventLoop(benchmark::State& state) {
  const int chains = static_cast<int>(state.range(0));
  constexpr std::uint64_t kEventsPerChain = 2'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_event_loop<stale::sim::Simulator, stale::sim::EventFn>(
            chains, kEventsPerChain));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          chains * static_cast<std::int64_t>(kEventsPerChain));
}
BENCHMARK(BM_SimulatorEventLoop)->Arg(10)->Arg(100)->Arg(1000);

void BM_SimulatorEventLoopHashMap(benchmark::State& state) {
  const int chains = static_cast<int>(state.range(0));
  constexpr std::uint64_t kEventsPerChain = 2'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_event_loop<HashMapSimulator, HashMapSimulator::EventFn>(
            chains, kEventsPerChain));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          chains * static_cast<std::int64_t>(kEventsPerChain));
}
BENCHMARK(BM_SimulatorEventLoopHashMap)->Arg(10)->Arg(100)->Arg(1000);

void BM_TrialThroughput(benchmark::State& state,
                        stale::driver::UpdateModel model) {
  stale::driver::ExperimentConfig config;
  config.model = model;
  config.update_interval = 4.0;
  config.num_jobs = 20'000;
  config.warmup_jobs = 1'000;
  config.policy = "basic_li";
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stale::driver::run_trial(config, seed++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(config.num_jobs));
}
BENCHMARK_CAPTURE(BM_TrialThroughput, periodic,
                  stale::driver::UpdateModel::kPeriodic);
BENCHMARK_CAPTURE(BM_TrialThroughput, continuous,
                  stale::driver::UpdateModel::kContinuous);
BENCHMARK_CAPTURE(BM_TrialThroughput, update_on_access,
                  stale::driver::UpdateModel::kUpdateOnAccess);

// End-to-end experiment throughput (jobs simulated per second of wall
// time) as a function of the worker-thread count: 8 trials fanned out over
// the runtime thread pool.
void BM_ExperimentThreadScaling(benchmark::State& state) {
  stale::driver::ExperimentConfig config;
  config.model = stale::driver::UpdateModel::kPeriodic;
  config.update_interval = 4.0;
  config.num_jobs = 20'000;
  config.warmup_jobs = 1'000;
  config.policy = "basic_li";
  config.trials = 8;
  config.jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stale::driver::run_experiment(config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          config.trials *
                          static_cast<std::int64_t>(config.num_jobs));
}
BENCHMARK(BM_ExperimentThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Full staleload_lint sweep over the repository's real source trees (the
// same invocation CI gates on). The token-stream analyzer re-lexes every
// file per iteration, so this is the end-to-end cost of the v2 rule set —
// bench_diff catches a rule whose scan accidentally goes quadratic.
void BM_LintFullRepo(benchmark::State& state) {
  const std::string root = STALELOAD_REPO_ROOT;
  const std::vector<std::string> roots = {
      root + "/src", root + "/tools", root + "/bench", root + "/tests",
      root + "/examples"};
  const std::string allowlist = root + "/tools/lint/contract_allowlist.txt";
  std::size_t findings = 0;
  int files = 0;
  for (auto _ : state) {
    const stale::lint::ScanResult result =
        stale::lint::scan_tree(roots, allowlist);
    findings += result.findings.size();
    files = result.files_scanned;
    benchmark::DoNotOptimize(findings);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          files);
  state.counters["files"] = static_cast<double>(files);
}
BENCHMARK(BM_LintFullRepo)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
