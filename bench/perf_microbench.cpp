// Google-benchmark microbenchmarks: per-decision cost of each dispatch
// policy, the LI math kernels across cluster sizes, the samplers, and
// end-to-end simulation throughput (jobs/second) for each staleness model.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/aggressive_schedule.h"
#include "core/ksubset_analysis.h"
#include "core/load_interpretation.h"
#include "core/sampler.h"
#include "driver/experiment.h"
#include "policy/policy_factory.h"
#include "sim/rng.h"

namespace {

std::vector<double> random_loads(int n, stale::sim::Rng& rng) {
  std::vector<double> loads(static_cast<std::size_t>(n));
  for (double& b : loads) b = static_cast<double>(rng.next_below(20));
  return loads;
}

void BM_BasicLiProbabilities(benchmark::State& state) {
  stale::sim::Rng rng(1);
  const auto loads = random_loads(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stale::core::basic_li_probabilities(
        std::span<const double>(loads), 9.0));
  }
}
BENCHMARK(BM_BasicLiProbabilities)->Arg(10)->Arg(100)->Arg(1000);

void BM_AggressiveSchedule(benchmark::State& state) {
  stale::sim::Rng rng(2);
  const auto loads = random_loads(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stale::core::make_aggressive_schedule(loads));
  }
}
BENCHMARK(BM_AggressiveSchedule)->Arg(10)->Arg(100)->Arg(1000);

void BM_KsubsetRankProbabilities(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(stale::core::ksubset_rank_probabilities(
        static_cast<int>(state.range(0)), 3));
  }
}
BENCHMARK(BM_KsubsetRankProbabilities)->Arg(10)->Arg(1000);

void BM_DiscreteSampler(benchmark::State& state) {
  stale::sim::Rng rng(3);
  std::vector<double> p(static_cast<std::size_t>(state.range(0)), 1.0);
  const stale::core::DiscreteSampler sampler{std::span<const double>(p)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_DiscreteSampler)->Arg(10)->Arg(1000);

void BM_AliasSampler(benchmark::State& state) {
  stale::sim::Rng rng(4);
  std::vector<double> p(static_cast<std::size_t>(state.range(0)), 1.0);
  const stale::core::AliasSampler sampler{std::span<const double>(p)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_AliasSampler)->Arg(10)->Arg(1000);

void BM_PolicyDecision(benchmark::State& state,
                       const std::string& spec) {
  const auto policy = stale::policy::make_policy(spec);
  stale::sim::Rng rng(5);
  std::vector<int> loads(10);
  for (int i = 0; i < 10; ++i) loads[static_cast<std::size_t>(i)] = i % 4;
  stale::policy::DispatchContext context;
  context.loads = loads;
  context.lambda_total = 9.0;
  context.age = 2.0;
  std::uint64_t version = 0;
  for (auto _ : state) {
    context.info_version = ++version;  // worst case: no caching possible
    benchmark::DoNotOptimize(policy->select(context, rng));
  }
}
BENCHMARK_CAPTURE(BM_PolicyDecision, random, "random");
BENCHMARK_CAPTURE(BM_PolicyDecision, k_subset_2, "k_subset:2");
BENCHMARK_CAPTURE(BM_PolicyDecision, basic_li, "basic_li");
BENCHMARK_CAPTURE(BM_PolicyDecision, aggressive_li, "aggressive_li");
BENCHMARK_CAPTURE(BM_PolicyDecision, basic_li_k3, "basic_li_k:3");

void BM_TrialThroughput(benchmark::State& state,
                        stale::driver::UpdateModel model) {
  stale::driver::ExperimentConfig config;
  config.model = model;
  config.update_interval = 4.0;
  config.num_jobs = 20'000;
  config.warmup_jobs = 1'000;
  config.policy = "basic_li";
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stale::driver::run_trial(config, seed++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(config.num_jobs));
}
BENCHMARK_CAPTURE(BM_TrialThroughput, periodic,
                  stale::driver::UpdateModel::kPeriodic);
BENCHMARK_CAPTURE(BM_TrialThroughput, continuous,
                  stale::driver::UpdateModel::kContinuous);
BENCHMARK_CAPTURE(BM_TrialThroughput, update_on_access,
                  stale::driver::UpdateModel::kUpdateOnAccess);

}  // namespace

BENCHMARK_MAIN();
