// Figure 14: Basic LI-k — Basic LI restricted to a random k-subset of the
// load information — vs. the plain k-subset algorithms, under (a) the
// update-on-access model, (b) continuous update with fixed (constant) delay,
// and (c) the periodic bulletin board. Expected shape: at the same
// information budget k, interpreting the loads beats taking their minimum;
// LI-k improves as k grows (unlike plain k-subset, more information never
// hurts); and under panels (b)/(c) even small-k LI-k performs close to full
// Basic LI.
#include <iostream>

#include "bench_common.h"
#include "loadinfo/delay_distribution.h"

namespace {

void run_panel(const stale::driver::Cli& cli,
               stale::driver::UpdateModel model, const std::string& title) {
  stale::driver::ExperimentConfig base;
  base.num_servers = 10;
  base.lambda = 0.9;
  base.model = model;
  base.delay_kind = stale::loadinfo::DelayKind::kConstant;
  cli.apply_run_scale(base);
  if (model == stale::driver::UpdateModel::kUpdateOnAccess) {
    base.min_jobs_per_client = cli.has("paper") ? 1000 : 100;
  }

  const std::vector<std::string> policies = {
      "k_subset:2",   "k_subset:3",   "basic_li_k:2",
      "basic_li_k:3", "basic_li_k:5", "basic_li"};
  std::cout << "\n## panel: " << title << "\n";
  stale::driver::SweepOptions options;
  options.csv = cli.csv();
  stale::driver::run_t_sweep(base, stale::bench::t_grid(cli, 32.0), policies,
                             std::cout, options);
}

}  // namespace

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {}, {}, [](const stale::driver::Cli& cli) {
        stale::bench::print_header(
            "Figure 14",
            "Basic LI over restricted information (LI-k) vs. plain k-subset",
            cli, "n = 10, lambda = 0.9");
        run_panel(cli, stale::driver::UpdateModel::kUpdateOnAccess,
                  "(a) update-on-access");
        run_panel(cli, stale::driver::UpdateModel::kContinuous,
                  "(b) continuous update, constant delay");
        run_panel(cli, stale::driver::UpdateModel::kPeriodic,
                  "(c) periodic bulletin board");
      });
}
