// Figure 4: the Figure 2 sweep with n = 100 servers instead of the standard
// n = 10. Expected shape: qualitatively identical to Figure 2 — LI's
// advantage is not an artifact of the small default cluster.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {}, {}, [](const stale::driver::Cli& cli) {
        stale::driver::ExperimentConfig base;
        base.num_servers = 100;
        base.lambda = 0.9;
        base.model = stale::driver::UpdateModel::kPeriodic;
        cli.apply_run_scale(base);
        // 100 servers cost ~10x per job; halve the default run length (the
        // cluster also mixes faster with 90 arrivals per time unit).
        if (!cli.has("paper") && !cli.has("num-jobs")) {
          base.num_jobs /= 2;
          base.warmup_jobs /= 2;
        }

        stale::bench::print_header(
            "Figure 4",
            "service time vs. update delay, periodic update, n = 100", cli,
            "n = 100, lambda = 0.9, exp(1) jobs");

        const std::vector<std::string> policies = {
            "random",       "k_subset:2", "k_subset:3",
            "k_subset:100", "basic_li",   "aggressive_li"};
        stale::driver::SweepOptions options;
        options.csv = cli.csv();
        stale::driver::run_t_sweep(base, stale::bench::t_grid(cli, 128.0),
                                   policies, std::cout, options);
      });
}
