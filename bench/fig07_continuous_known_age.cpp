// Figure 7: the continuous-update sweep when clients know the *actual* age
// of the information each request sees (vs. Figure 6's average-only).
// Expected shape: the extra knowledge improves the LI algorithms for every
// delay distribution, and the improvement grows with the distribution's
// variance — closing the gap k-subset enjoyed under exponential delay.
#include <iostream>

#include "bench_common.h"
#include "loadinfo/delay_distribution.h"

namespace {

void run_panel(const stale::driver::Cli& cli,
               stale::loadinfo::DelayKind kind) {
  stale::driver::ExperimentConfig base;
  base.num_servers = 10;
  base.lambda = 0.9;
  base.model = stale::driver::UpdateModel::kContinuous;
  base.delay_kind = kind;
  base.know_actual_age = true;
  cli.apply_run_scale(base);

  // Basic LI with known age vs. the strongest fixed-k competitor and
  // Aggressive LI, as in the paper's panels.
  const std::vector<std::string> policies = {
      "k_subset:2", "k_subset:3", "basic_li", "aggressive_li"};
  std::cout << "\n## panel: delay = "
            << stale::loadinfo::delay_kind_name(kind) << " (actual age known)"
            << "\n";
  stale::driver::SweepOptions options;
  options.csv = cli.csv();
  stale::driver::run_t_sweep(base, stale::bench::t_grid(cli, 32.0), policies,
                             std::cout, options);
}

}  // namespace

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {}, {}, [](const stale::driver::Cli& cli) {
        stale::bench::print_header(
            "Figure 7",
            "continuous update model, clients know each request's actual "
            "information age",
            cli, "n = 10, lambda = 0.9; non-constant delay distributions");
        using stale::loadinfo::DelayKind;
        for (DelayKind kind : {DelayKind::kUniformHalf,
                               DelayKind::kUniformFull,
                               DelayKind::kExponential}) {
          run_panel(cli, kind);
        }
      });
}
