// Figure 8: service time vs. update delay under the update-on-access model,
// where each client reuses the load snapshot piggybacked on its previous
// response and T equals the mean per-client inter-request time (the client
// population is sized as lambda * n * T). Expected shape: per-client updates
// desynchronize the herd, so every algorithm stays reasonable; Basic LI is
// best by a modest margin across the whole sweep.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  return stale::bench::run_bench(
      argc, argv, {}, {}, [](const stale::driver::Cli& cli) {
        stale::driver::ExperimentConfig base;
        base.num_servers = 10;
        base.lambda = 0.9;
        base.model = stale::driver::UpdateModel::kUpdateOnAccess;
        cli.apply_run_scale(base);
        // Paper: ensure every client launches at least 1,000 jobs; the
        // reduced default keeps a 100-job floor.
        base.min_jobs_per_client = cli.has("paper") ? 1000 : 100;

        stale::bench::print_header(
            "Figure 8", "service time vs. update delay, update-on-access",
            cli,
            "n = 10, lambda = 0.9; clients = lambda*n*T, snapshot rides the "
            "previous response");

        const std::vector<std::string> policies = {
            "random",      "k_subset:2", "k_subset:3",
            "k_subset:10", "basic_li",   "aggressive_li"};
        stale::driver::SweepOptions options;
        options.csv = cli.csv();
        stale::driver::run_t_sweep(base, stale::bench::t_grid(cli, 64.0),
                                   policies, std::cout, options);
      });
}
