#include "obs/svg_timeline.h"

#include <algorithm>
#include <stdexcept>

#include "obs/svg_plot.h"

namespace stale::obs {

std::string render_queue_timeline(const QueueTrajectory& trajectory,
                                  const TimelineOptions& options) {
  if (trajectory.num_servers == 0 || trajectory.samples.empty()) {
    throw std::invalid_argument("render_queue_timeline: empty trajectory");
  }
  const int shown = options.max_servers > 0
                        ? std::min(options.max_servers, trajectory.num_servers)
                        : trajectory.num_servers;

  std::vector<PlotSeries> series(static_cast<std::size_t>(shown));
  for (int s = 0; s < shown; ++s) {
    PlotSeries& line = series[static_cast<std::size_t>(s)];
    line.label = "server " + std::to_string(s);
    line.points.reserve(trajectory.samples.size());
    for (std::size_t k = 0; k < trajectory.samples.size(); ++k) {
      line.points.emplace_back(
          trajectory.time_at(k),
          trajectory.samples[k][static_cast<std::size_t>(s)]);
    }
  }

  PlotOptions plot;
  plot.title = options.title;
  plot.x_label = "time";
  plot.y_label = "queue length";
  return render_line_chart(series, plot);
}

}  // namespace stale::obs
