#include "obs/export_csv.h"

#include <limits>

namespace stale::obs {

void write_events_csv(std::ostream& out, const TraceRecorder& recorder) {
  // Full double precision so a trace survives export -> import_events_csv
  // without collapsing distinct timestamps.
  const auto saved_precision = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "time,kind,server,a,b,c\n";
  for (const TraceEvent& event : recorder.events_by_time()) {
    out << event.time << ',' << trace_event_kind_name(event.kind) << ','
        << event.server << ',' << event.a << ',' << event.b << ',' << event.c
        << '\n';
  }
  out.precision(saved_precision);
}

void write_trajectory_csv(std::ostream& out,
                          const QueueTrajectory& trajectory) {
  out << "time";
  for (int s = 0; s < trajectory.num_servers; ++s) out << ",server" << s;
  out << '\n';
  for (std::size_t k = 0; k < trajectory.samples.size(); ++k) {
    out << trajectory.time_at(k);
    for (int s = 0; s < trajectory.num_servers; ++s) {
      out << ',' << trajectory.samples[k][static_cast<std::size_t>(s)];
    }
    out << '\n';
  }
}

}  // namespace stale::obs
