#include "obs/trace_import.h"

#include <array>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace stale::obs {

namespace {

std::optional<double> parse_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return std::nullopt;
  return value;
}

std::optional<std::int64_t> parse_i64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const std::string copy(text);
  char* end = nullptr;
  const long long value = std::strtoll(copy.c_str(), &end, 10);
  if (end != copy.c_str() + copy.size()) return std::nullopt;
  return static_cast<std::int64_t>(value);
}

std::optional<TraceEventKind> parse_kind(std::string_view name) {
  static constexpr std::array<TraceEventKind, 10> kKinds = {
      TraceEventKind::kKernel,       TraceEventKind::kDispatch,
      TraceEventKind::kDeparture,    TraceEventKind::kServerDown,
      TraceEventKind::kServerUp,     TraceEventKind::kBoardRefresh,
      TraceEventKind::kRefreshFault, TraceEventKind::kDecision,
      TraceEventKind::kMembership,   TraceEventKind::kDegraded,
  };
  for (TraceEventKind kind : kKinds) {
    if (name == trace_event_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

// Splits `line` on commas into exactly `fields.size()` pieces.
bool split_row(std::string_view line, std::span<std::string_view> fields) {
  std::size_t index = 0;
  while (true) {
    const std::size_t comma = line.find(',');
    if (index >= fields.size()) return false;
    fields[index++] = line.substr(0, comma);
    if (comma == std::string_view::npos) break;
    line.remove_prefix(comma + 1);
  }
  return index == fields.size();
}

bool replay_row(std::string_view line, TraceRecorder& recorder) {
  std::array<std::string_view, 6> fields;
  if (!split_row(line, fields)) return false;
  const auto time = parse_double(fields[0]);
  const auto kind = parse_kind(fields[1]);
  const auto server = parse_i64(fields[2]);
  const auto a = parse_double(fields[3]);
  const auto b = parse_double(fields[4]);
  const auto c = parse_i64(fields[5]);
  if (!time || !kind || !server || !a || !b || !c) return false;

  const int server_index = static_cast<int>(*server);
  switch (*kind) {
    case TraceEventKind::kKernel:
      recorder.on_kernel_event(*time);
      return true;
    case TraceEventKind::kDispatch:
      recorder.on_dispatch(*time, server_index, *a, static_cast<int>(*c), *b);
      return true;
    case TraceEventKind::kDeparture:
      recorder.on_departure(*time, server_index, static_cast<int>(*c));
      return true;
    case TraceEventKind::kServerDown:
      recorder.on_server_down(*time, server_index, static_cast<int>(*c));
      return true;
    case TraceEventKind::kServerUp:
      recorder.on_server_up(*time, server_index);
      return true;
    case TraceEventKind::kBoardRefresh:
      // b carries the board version; the c column is the exporting
      // recorder's snapshot index, so the load vector itself is gone —
      // replay with an empty snapshot.
      recorder.on_board_refresh(*time, *a, static_cast<std::uint64_t>(*b),
                                {});
      return true;
    case TraceEventKind::kRefreshFault:
      if (*c < 0 ||
          *c > static_cast<std::int64_t>(FaultTraceEvent::kEstimatorDrop)) {
        return false;
      }
      recorder.on_refresh_fault(*time, static_cast<FaultTraceEvent>(*c),
                                server_index);
      return true;
    case TraceEventKind::kDecision:
      recorder.on_decision(*time, server_index, *a);
      return true;
    case TraceEventKind::kMembership: {
      const auto last = static_cast<std::int64_t>(MemberTraceState::kProbation);
      const auto from = static_cast<std::int64_t>(*a);
      if (from < 0 || from > last || *c < 0 || *c > last) return false;
      recorder.on_membership(*time, server_index,
                             static_cast<MemberTraceState>(from),
                             static_cast<MemberTraceState>(*c));
      return true;
    }
    case TraceEventKind::kDegraded:
      recorder.on_degraded_mode(*time, *c != 0, *a);
      return true;
  }
  return false;
}

}  // namespace

ImportStats import_events_csv(std::istream& in, TraceRecorder& recorder) {
  ImportStats stats;
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (!saw_header) {
      saw_header = true;
      if (line.rfind("time,", 0) == 0) continue;  // header row
    }
    ++stats.rows;
    if (replay_row(line, recorder)) {
      ++stats.imported;
    } else {
      ++stats.malformed;
    }
  }
  return stats;
}

}  // namespace stale::obs
