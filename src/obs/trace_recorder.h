// In-memory trace recorder: the standard TraceSink implementation.
//
// Events are appended to flat vectors (one amortized push_back per hook, no
// per-event allocation beyond vector growth), so recording a reduced-size
// trial costs a few MB and a few ns per event. Board snapshots and
// probability vectors are stored out of line; each event references them by
// index. The recorder is post-processed by the probes (obs/probe.h), the
// herd detector (obs/herd.h), and the exporters (obs/export_csv.h,
// obs/chrome_trace.h, obs/svg_timeline.h).
//
// Hook emission order follows the cluster's deterministic server sweep, not
// global time order: Cluster::advance_to retires server 0's departures up to
// t before server 1's. events_by_time() produces the time-sorted view the
// replay-based probes need (stable, so same-time events keep their
// deterministic emission order).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "obs/trace_sink.h"

namespace stale::obs {

enum class TraceEventKind : std::uint8_t {
  kKernel,
  kDispatch,
  kDeparture,
  kServerDown,
  kServerUp,
  kBoardRefresh,
  kRefreshFault,
  kDecision,
  kMembership,
  kDegraded,
};

// One trace record. Field meaning depends on kind:
//   kDispatch:     a = job size, b = departure time, c = queue length after
//   kDeparture:    c = queue length after
//   kServerDown:   c = jobs displaced
//   kBoardRefresh: a = measured-at time, c = snapshot index (refreshes())
//   kRefreshFault: c = FaultTraceEvent
//   kDecision:     a = info age, c = probability-vector index (-1 = none)
//   kMembership:   a = from state, c = to state (MemberTraceState values)
//   kDegraded:     a = coverage at the transition, c = 1 entered / 0 left
struct TraceEvent {
  double time = 0.0;
  TraceEventKind kind = TraceEventKind::kKernel;
  std::int32_t server = -1;
  double a = 0.0;
  double b = 0.0;
  std::int64_t c = 0;
};

const char* trace_event_kind_name(TraceEventKind kind);

struct BoardRefresh {
  double published = 0.0;
  double measured = 0.0;
  std::uint64_t version = 0;
  // Exactly one of the two representations is populated per refresh: the raw
  // per-server vector for clusters up to RecorderOptions::full_vector_limit,
  // the per-level occupancy counts (index = queue length) above it.
  std::vector<int> loads;
  std::vector<std::int64_t> level_counts;
};

// Per-level occupancy of a recorded refresh, whichever representation it
// kept: level_counts verbatim, or the tally of the raw vector.
std::vector<std::int64_t> refresh_level_counts(const BoardRefresh& refresh);

struct RecorderOptions {
  // Keep a copy of every probability vector policies report. Costs
  // O(decisions * n) doubles for per-request-rebuilding models; turn off for
  // long traced runs where only the queue trajectories matter.
  bool record_probabilities = true;
  // Keep full board snapshots (the per-refresh load vectors).
  bool record_snapshots = true;
  // Clusters larger than this record per-level occupancy counts instead of
  // per-server vectors (refresh snapshots), and skip probability-vector
  // copies entirely (still counted via probability_builds()). Keeps traced
  // large-n runs O(#levels) per event instead of O(n) — the default covers
  // every paper-scale configuration with full fidelity.
  std::size_t full_vector_limit = 4096;
};

class TraceRecorder final : public TraceSink {
 public:
  TraceRecorder() = default;
  explicit TraceRecorder(const RecorderOptions& options);

  // TraceSink:
  void on_kernel_event(double when) override;
  void on_dispatch(double t, int server, double job_size, int queue_len_after,
                   double departure) override;
  void on_departure(double t, int server, int queue_len_after) override;
  void on_server_down(double t, int server, int jobs_displaced) override;
  void on_server_up(double t, int server) override;
  void on_board_refresh(double published, double measured,
                        std::uint64_t version,
                        std::span<const int> loads) override;
  void on_refresh_fault(double t, FaultTraceEvent kind, int server) override;
  void on_probabilities(std::span<const double> p) override;
  void on_decision(double t, int server, double info_age) override;
  void on_membership(double t, int server, MemberTraceState from,
                     MemberTraceState to) override;
  void on_degraded_mode(double t, bool entered, double coverage) override;

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<BoardRefresh>& refreshes() const { return refreshes_; }
  const std::vector<std::vector<double>>& probability_vectors() const {
    return probability_vectors_;
  }

  // Events stably sorted by time (computed on demand; see header comment).
  std::vector<TraceEvent> events_by_time() const;

  // Convenience tallies.
  std::uint64_t count(TraceEventKind kind) const;
  double end_time() const;  // max event time (0 when empty)

  // Largest server index seen plus one (0 when no server-bearing events).
  int num_servers_seen() const { return max_server_ + 1; }

  // How many probability vectors policies reported (counted even when
  // record_probabilities is off).
  std::uint64_t probability_builds() const { return probability_builds_; }

  void clear();

 private:
  void push(const TraceEvent& event);

  RecorderOptions options_;
  std::vector<TraceEvent> events_;
  std::vector<BoardRefresh> refreshes_;
  std::vector<std::vector<double>> probability_vectors_;
  std::int64_t last_probability_index_ = -1;
  std::uint64_t probability_builds_ = 0;
  int max_server_ = -1;
};

}  // namespace stale::obs
