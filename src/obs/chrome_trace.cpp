#include "obs/chrome_trace.h"

#include <string>

namespace stale::obs {

namespace {

constexpr int kPid = 1;

const char* fault_name(std::int64_t kind) {
  switch (static_cast<FaultTraceEvent>(kind)) {
    case FaultTraceEvent::kRefreshLost:
      return "refresh_lost";
    case FaultTraceEvent::kRefreshDelayed:
      return "refresh_delayed";
    case FaultTraceEvent::kEstimatorDrop:
      return "estimator_drop";
  }
  return "refresh_fault";
}

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  // Opens the next event object, emitting the separating comma.
  std::ostream& next() {
    if (!first_) out_ << ",\n";
    first_ = false;
    return out_;
  }

 private:
  std::ostream& out_;
  bool first_ = true;
};

}  // namespace

void write_chrome_trace(std::ostream& out, const TraceRecorder& recorder,
                        const ChromeTraceOptions& options) {
  const double scale = options.time_scale;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  JsonWriter json(out);

  // Thread-name metadata: one row per server.
  const int servers = recorder.num_servers_seen();
  for (int s = 0; s < servers; ++s) {
    json.next() << "{\"ph\":\"M\",\"pid\":" << kPid << ",\"tid\":" << s
                << ",\"name\":\"thread_name\",\"args\":{\"name\":\"server "
                << s << "\"}}";
  }

  for (const TraceEvent& event : recorder.events_by_time()) {
    const double ts = event.time * scale;
    switch (event.kind) {
      case TraceEventKind::kDispatch: {
        // Whole sojourn (queueing + service) as one complete span.
        const double dur = (event.b - event.time) * scale;
        json.next() << "{\"ph\":\"X\",\"pid\":" << kPid
                    << ",\"tid\":" << event.server << ",\"ts\":" << ts
                    << ",\"dur\":" << dur
                    << ",\"name\":\"job\",\"args\":{\"size\":" << event.a
                    << ",\"queue_len\":" << event.c << "}}";
        if (options.queue_counters) {
          json.next() << "{\"ph\":\"C\",\"pid\":" << kPid << ",\"ts\":" << ts
                      << ",\"name\":\"queue " << event.server
                      << "\",\"args\":{\"len\":" << event.c << "}}";
        }
        break;
      }
      case TraceEventKind::kDeparture:
      case TraceEventKind::kServerDown:
      case TraceEventKind::kServerUp: {
        if (options.queue_counters) {
          const std::int64_t len =
              event.kind == TraceEventKind::kDeparture ? event.c : 0;
          json.next() << "{\"ph\":\"C\",\"pid\":" << kPid << ",\"ts\":" << ts
                      << ",\"name\":\"queue " << event.server
                      << "\",\"args\":{\"len\":" << len << "}}";
        }
        if (event.kind != TraceEventKind::kDeparture) {
          const bool down = event.kind == TraceEventKind::kServerDown;
          json.next() << "{\"ph\":\"i\",\"pid\":" << kPid
                      << ",\"tid\":" << event.server << ",\"ts\":" << ts
                      << ",\"s\":\"t\",\"name\":\""
                      << (down ? "crash" : "recover") << "\"}";
        }
        break;
      }
      case TraceEventKind::kBoardRefresh:
        json.next() << "{\"ph\":\"i\",\"pid\":" << kPid << ",\"tid\":0"
                    << ",\"ts\":" << ts
                    << ",\"s\":\"p\",\"name\":\"board_refresh\",\"args\":"
                    << "{\"measured\":" << event.a * scale
                    << ",\"version\":" << static_cast<std::int64_t>(event.b)
                    << "}}";
        break;
      case TraceEventKind::kRefreshFault:
        json.next() << "{\"ph\":\"i\",\"pid\":" << kPid
                    << ",\"tid\":" << (event.server < 0 ? 0 : event.server)
                    << ",\"ts\":" << ts << ",\"s\":\"p\",\"name\":\""
                    << fault_name(event.c) << "\"}";
        break;
      case TraceEventKind::kMembership:
        json.next() << "{\"ph\":\"i\",\"pid\":" << kPid
                    << ",\"tid\":" << event.server << ",\"ts\":" << ts
                    << ",\"s\":\"t\",\"name\":\"membership:"
                    << member_trace_state_name(
                           static_cast<MemberTraceState>(event.c))
                    << "\"}";
        break;
      case TraceEventKind::kDegraded:
        json.next() << "{\"ph\":\"i\",\"pid\":" << kPid << ",\"tid\":0"
                    << ",\"ts\":" << ts << ",\"s\":\"g\",\"name\":\""
                    << (event.c != 0 ? "degraded_enter" : "degraded_exit")
                    << "\",\"args\":{\"coverage\":" << event.a << "}}";
        break;
      case TraceEventKind::kKernel:
      case TraceEventKind::kDecision:
        // Kernel pops and decisions duplicate the dispatch spans visually;
        // omitted to keep the trace loadable at full run length.
        break;
    }
  }
  out << "\n]}\n";
}

}  // namespace stale::obs
