#include "obs/herd.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

namespace stale::obs {

namespace {

// Mean over (window, server) of the within-window queue swing. Windows are
// consecutive stretches of `window_len` along the trajectory grid.
double mean_window_swing(const QueueTrajectory& trajectory, double window_len,
                         int* windows_counted) {
  *windows_counted = 0;
  if (trajectory.samples.empty() || trajectory.num_servers == 0) return 0.0;
  const auto per_window = static_cast<std::size_t>(
      std::max(1.0, std::round(window_len / trajectory.interval)));
  double swing_sum = 0.0;
  std::size_t swings = 0;
  for (std::size_t start = 0; start + per_window <= trajectory.samples.size();
       start += per_window) {
    for (int s = 0; s < trajectory.num_servers; ++s) {
      int lo = trajectory.samples[start][static_cast<std::size_t>(s)];
      int hi = lo;
      for (std::size_t k = start; k < start + per_window; ++k) {
        const int len = trajectory.samples[k][static_cast<std::size_t>(s)];
        lo = std::min(lo, len);
        hi = std::max(hi, len);
      }
      swing_sum += hi - lo;
      ++swings;
    }
    ++*windows_counted;
  }
  return swings == 0 ? 0.0 : swing_sum / static_cast<double>(swings);
}

double mean_global_swing(const QueueTrajectory& trajectory) {
  if (trajectory.samples.empty() || trajectory.num_servers == 0) return 0.0;
  double total = 0.0;
  for (int s = 0; s < trajectory.num_servers; ++s) {
    int lo = trajectory.samples[0][static_cast<std::size_t>(s)];
    int hi = lo;
    for (const std::vector<int>& row : trajectory.samples) {
      lo = std::min(lo, row[static_cast<std::size_t>(s)]);
      hi = std::max(hi, row[static_cast<std::size_t>(s)]);
    }
    total += hi - lo;
  }
  return total / static_cast<double>(trajectory.num_servers);
}

// Strongest local maximum of a normalized autocorrelation sequence r[1..],
// counted only after the zero-lag hump has decayed below `floor`, so a
// slowly decaying (non-oscillating) autocorrelation never reports a period.
std::pair<std::size_t, double> peak_after_descent(const std::vector<double>& r,
                                                  double floor) {
  double best_r = 0.0;
  std::size_t best_lag = 0;
  double prev_r = 1.0;
  bool descending = false;
  for (std::size_t lag = 1; lag < r.size(); ++lag) {
    if (!descending && r[lag] < prev_r && r[lag] < floor) descending = true;
    if (descending && r[lag] > best_r) {
      best_r = r[lag];
      best_lag = lag;
    }
    prev_r = r[lag];
  }
  if (best_lag == 0 || best_r < floor) return {0, 0.0};
  return {best_lag, best_r};
}

}  // namespace

std::pair<double, double> dominant_period(const QueueTrajectory& trajectory,
                                          double floor) {
  const std::size_t samples = trajectory.samples.size();
  const int n = trajectory.num_servers;
  if (samples < 8 || n == 0) return {0.0, 0.0};

  // Mean-removed per-server series.
  std::vector<std::vector<double>> x(
      static_cast<std::size_t>(n), std::vector<double>(samples, 0.0));
  for (int s = 0; s < n; ++s) {
    double mean = 0.0;
    for (std::size_t k = 0; k < samples; ++k) {
      mean += trajectory.samples[k][static_cast<std::size_t>(s)];
    }
    mean /= static_cast<double>(samples);
    for (std::size_t k = 0; k < samples; ++k) {
      x[static_cast<std::size_t>(s)][k] =
          trajectory.samples[k][static_cast<std::size_t>(s)] - mean;
    }
  }

  // Autocorrelation averaged across servers, normalized by lag 0.
  double r0 = 0.0;
  for (int s = 0; s < n; ++s) {
    for (std::size_t k = 0; k < samples; ++k) {
      r0 += x[static_cast<std::size_t>(s)][k] *
            x[static_cast<std::size_t>(s)][k];
    }
  }
  if (r0 <= 0.0) return {0.0, 0.0};

  const std::size_t max_lag = samples / 3;
  std::vector<double> r(max_lag + 1, 0.0);
  for (std::size_t lag = 1; lag <= max_lag; ++lag) {
    for (int s = 0; s < n; ++s) {
      for (std::size_t k = 0; k + lag < samples; ++k) {
        r[lag] += x[static_cast<std::size_t>(s)][k] *
                  x[static_cast<std::size_t>(s)][k + lag];
      }
    }
    r[lag] /= r0;
  }
  const auto [best_lag, best_r] = peak_after_descent(r, floor);
  if (best_lag == 0) return {0.0, 0.0};
  return {static_cast<double>(best_lag) * trajectory.interval, best_r};
}

std::pair<double, double> dominant_period_of(const std::vector<double>& series,
                                             double interval, double floor) {
  const std::size_t samples = series.size();
  if (samples < 8 || !(interval > 0.0)) return {0.0, 0.0};

  double mean = 0.0;
  for (double v : series) mean += v;
  mean /= static_cast<double>(samples);
  std::vector<double> x(samples);
  for (std::size_t k = 0; k < samples; ++k) x[k] = series[k] - mean;

  double r0 = 0.0;
  for (double v : x) r0 += v * v;
  if (r0 <= 0.0) return {0.0, 0.0};

  const std::size_t max_lag = samples / 3;
  std::vector<double> r(max_lag + 1, 0.0);
  for (std::size_t lag = 1; lag <= max_lag; ++lag) {
    for (std::size_t k = 0; k + lag < samples; ++k) {
      r[lag] += x[k] * x[k + lag];
    }
    r[lag] /= r0;
  }
  const auto [best_lag, best_r] = peak_after_descent(r, floor);
  if (best_lag == 0) return {0.0, 0.0};
  return {static_cast<double>(best_lag) * interval, best_r};
}

HerdReport detect_herd(const TraceRecorder& recorder,
                       const HerdOptions& options) {
  if (!(options.phase_length > 0.0)) {
    throw std::invalid_argument("detect_herd: phase_length must be > 0");
  }
  const double t_end =
      options.t_end > 0.0 ? options.t_end : recorder.end_time();
  if (!(t_end > options.t_begin)) {
    throw std::invalid_argument("detect_herd: empty analysis window");
  }
  const double interval = options.probe_interval > 0.0
                              ? options.probe_interval
                              : options.phase_length / 8.0;

  const QueueTrajectory trajectory = sample_queue_trajectory(
      recorder, interval, options.t_begin, t_end, options.num_servers);

  HerdReport report;
  report.num_servers = trajectory.num_servers;
  report.uniform_share =
      trajectory.num_servers > 0
          ? 1.0 / static_cast<double>(trajectory.num_servers)
          : 0.0;
  report.amplitude = mean_window_swing(trajectory, options.phase_length,
                                       &report.phases);
  report.global_swing = mean_global_swing(trajectory);

  // Herd-crest series: the per-sample max queue across servers tracks the
  // pile-up wherever it lands, so its autocorrelation keeps the phase rhythm
  // even when displayed-load ties rotate the herd target between servers
  // (which washes the per-server autocorrelation out). Fall back to the
  // per-server estimate when the crest shows no peak.
  std::vector<double> crest(trajectory.samples.size(), 0.0);
  for (std::size_t k = 0; k < trajectory.samples.size(); ++k) {
    for (int len : trajectory.samples[k]) {
      crest[k] = std::max(crest[k], static_cast<double>(len));
    }
  }
  auto [period, autocorr] = dominant_period_of(crest, trajectory.interval);
  if (period == 0.0) {
    std::tie(period, autocorr) = dominant_period(trajectory);
  }
  report.oscillation_period = period;
  report.autocorr_peak = autocorr;

  const PhaseConcentration concentration = compute_phase_concentration(
      recorder, options.t_begin, t_end, options.phase_length,
      trajectory.num_servers);
  report.peak_concentration = concentration.peak;
  report.mean_concentration = concentration.mean;
  return report;
}

}  // namespace stale::obs
