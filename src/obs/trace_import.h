// Importer for the events CSV written by write_events_csv: rebuilds a
// TraceRecorder by replaying each row through the corresponding TraceSink
// hook, so a trace exported by one process (e.g. the live staleload_lb
// dispatcher) can be post-processed by another (probes, herd detector,
// exporters) exactly like an in-memory recording.
//
// Round-trip caveats, by design: board-refresh rows carry no load snapshot
// (the CSV stores the snapshot index, which is meaningless across
// processes), and decision rows lose their probability-vector link.
// Everything the probes and the herd detector consume — timestamps, servers,
// queue lengths after dispatch/departure, phase boundaries, versions —
// survives.
#pragma once

#include <istream>

#include "obs/trace_recorder.h"

namespace stale::obs {

struct ImportStats {
  int rows = 0;          // data rows seen (header excluded)
  int imported = 0;      // rows replayed into the recorder
  int malformed = 0;     // rows skipped (bad field count / numbers / kind)
};

// Reads `in` (header line plus `time,kind,server,a,b,c` rows) into
// `recorder`. Returns per-row accounting; a malformed row is skipped, never
// fatal, so a truncated live trace still analyzes.
ImportStats import_events_csv(std::istream& in, TraceRecorder& recorder);

}  // namespace stale::obs
