// Time-series probes: fixed-interval samplers over a recorded trace.
//
// The queueing hooks give every queue-length change an exact timestamp
// (dispatch +1, departure -1, crash -> 0), so per-server queue-length
// trajectories are reconstructed by replaying the recorder's time-sorted
// events and sampling the step functions on a uniform grid — the probe never
// perturbs the run it measures. Dispatch-share histograms aggregate the
// decision events, overall and per board phase; the per-phase top-server
// share ("concentration") is the paper's herd effect made directly visible:
// under stale greedy dispatch nearly every arrival of a phase lands on the
// server the stale board shows as minimal.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace_recorder.h"

namespace stale::obs {

// Per-server queue lengths sampled every `interval` from `t_begin`.
// samples[k][s] is server s's queue length at time t_begin + k * interval.
struct QueueTrajectory {
  double t_begin = 0.0;
  double interval = 0.0;
  int num_servers = 0;
  std::vector<std::vector<int>> samples;

  double time_at(std::size_t k) const {
    return t_begin + static_cast<double>(k) * interval;
  }
};

// Reconstructs the per-server trajectories from `recorder` on the uniform
// grid [t_begin, t_end]. `num_servers` <= 0 uses the recorder's
// num_servers_seen(). Throws std::invalid_argument on a non-positive
// interval or an empty window.
QueueTrajectory sample_queue_trajectory(const TraceRecorder& recorder,
                                        double interval, double t_begin,
                                        double t_end, int num_servers = 0);

// Dispatch-share histogram over the decision events in [t_begin, t_end).
struct DispatchShare {
  std::vector<std::uint64_t> counts;  // per server
  std::uint64_t total = 0;

  // Share of the most-dispatched-to server (0 when no decisions).
  double top_share() const;
  // Index of the most-dispatched-to server (-1 when no decisions).
  int top_server() const;
};

DispatchShare compute_dispatch_share(const TraceRecorder& recorder,
                                     double t_begin, double t_end,
                                     int num_servers = 0);

// Per-phase dispatch concentration. Phases are delimited by board-refresh
// events when the trace has any (periodic / individual update); otherwise by
// a fixed grid of `fallback_phase_length` (continuous update, where every
// request sees its own view). Phases with fewer than `min_decisions`
// decisions are skipped (concentration over two arrivals is noise).
struct PhaseConcentration {
  int phases = 0;              // phases that met min_decisions
  double peak = 0.0;           // max over phases of top-server share
  double mean = 0.0;           // decision-weighted mean of top-server share
  double uniform_share = 0.0;  // 1/n reference line
};

PhaseConcentration compute_phase_concentration(
    const TraceRecorder& recorder, double t_begin, double t_end,
    double fallback_phase_length, int num_servers = 0,
    std::uint64_t min_decisions = 8);

}  // namespace stale::obs
