// Herd-effect diagnostics (paper Section 2, Figure 2's explanation).
//
// With stale load information, greedy minimum-load dispatch herds: every
// arrival of an update phase lands on the server the stale board shows as
// minimal, which swings that server from starved to swamped while the rest
// drain — per-server queue lengths oscillate with amplitude growing in T,
// and per-phase dispatch concentration approaches 1. Interpreted policies
// (Basic/Aggressive LI) spread each phase's arrivals and show neither
// signature. The detector quantifies both from a recorded trace:
//
//   * amplitude   — mean over (phase, server) of the within-phase queue
//                   swing (max - min along the sampled trajectory), i.e. how
//                   violently queues move inside one update period;
//   * oscillation period — lag of the strongest positive autocorrelation
//                   peak of the mean-removed per-server series (0 when no
//                   peak clears the significance floor);
//   * concentration — per-phase top-server dispatch share (obs/probe.h).
#pragma once

#include "obs/probe.h"
#include "obs/trace_recorder.h"

namespace stale::obs {

struct HerdReport {
  int num_servers = 0;
  int phases = 0;                  // phases entering the amplitude average
  double amplitude = 0.0;          // mean within-phase queue swing (jobs)
  double global_swing = 0.0;       // mean over servers of whole-window swing
  double oscillation_period = 0.0; // time units; 0 = no significant peak
  double autocorr_peak = 0.0;      // autocorrelation value at that lag
  double peak_concentration = 0.0; // max per-phase top-server share
  double mean_concentration = 0.0; // decision-weighted mean share
  double uniform_share = 0.0;      // 1/n reference

  // Herding verdict: dispatches of a typical phase pile onto one server
  // (mean concentration at least `kConcentrationFactor` times the uniform
  // share and above an absolute floor) AND queues swing by more than normal
  // stochastic jitter within a phase.
  static constexpr double kConcentrationFactor = 3.0;
  static constexpr double kConcentrationFloor = 0.4;
  static constexpr double kAmplitudeFloor = 3.0;

  bool herding() const {
    return mean_concentration >= kConcentrationFloor &&
           mean_concentration >= kConcentrationFactor * uniform_share &&
           amplitude >= kAmplitudeFloor;
  }
};

struct HerdOptions {
  double t_begin = 0.0;          // analysis window (post-warmup)
  double t_end = 0.0;            // <= 0: recorder end time
  double probe_interval = 0.0;   // trajectory grid; <= 0: phase_length / 8
  double phase_length = 1.0;     // T (phase fallback + amplitude windows)
  int num_servers = 0;           // <= 0: infer from the trace
};

// Runs the full diagnostic over `recorder`. Throws std::invalid_argument on
// a degenerate window or non-positive phase length.
HerdReport detect_herd(const TraceRecorder& recorder,
                       const HerdOptions& options);

// The autocorrelation-based period estimate on its own (exposed for tests):
// returns {lag * interval, autocorrelation at lag} for the strongest local
// maximum above `floor` in lag range [2, samples/3], or {0, 0}.
std::pair<double, double> dominant_period(const QueueTrajectory& trajectory,
                                          double floor = 0.15);

// Same estimate for a single scalar series sampled every `interval`. Used by
// detect_herd on the herd-crest series (per-sample max queue across servers):
// the crest rises and falls every phase even when ties rotate the herd target
// across servers, which washes the per-server autocorrelation out.
std::pair<double, double> dominant_period_of(const std::vector<double>& series,
                                             double interval,
                                             double floor = 0.15);

}  // namespace stale::obs
