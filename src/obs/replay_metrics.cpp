#include "obs/replay_metrics.h"

#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace stale::obs {

namespace {

[[noreturn]] void bad_metrics(const std::string& why) {
  throw std::invalid_argument("replay metrics: " + why);
}

// Minimal extractor over the write_replay_metrics output (not a general JSON
// parser): finds "key" and returns the raw token between its ':' and the
// next ',' / '}' / newline.
std::string raw_value(const std::string& text, const std::string& key,
                      bool required) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) {
    if (required) bad_metrics("missing field '" + key + "'");
    return {};
  }
  std::size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) bad_metrics("no value for '" + key + "'");
  std::size_t start = colon + 1;
  while (start < text.size() &&
         (text[start] == ' ' || text[start] == '\t')) {
    ++start;
  }
  std::size_t end = start;
  if (start < text.size() && text[start] == '[') {
    end = text.find(']', start);
    if (end == std::string::npos) bad_metrics("unterminated array for '" +
                                              key + "'");
    ++end;
  } else {
    while (end < text.size() && text[end] != ',' && text[end] != '}' &&
           text[end] != '\n') {
      ++end;
    }
  }
  return text.substr(start, end - start);
}

double parse_number(const std::string& token, const std::string& key) {
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used == 0 || !std::isfinite(value)) throw std::invalid_argument(key);
    return value;
  } catch (const std::exception&) {
    bad_metrics("bad number for '" + key + "': '" + token + "'");
  }
}

std::string parse_string(const std::string& token, const std::string& key) {
  const std::size_t open = token.find('"');
  const std::size_t close = token.rfind('"');
  if (open == std::string::npos || close <= open) {
    bad_metrics("bad string for '" + key + "': '" + token + "'");
  }
  return token.substr(open + 1, close - open - 1);
}

bool parse_bool(const std::string& token, const std::string& key) {
  if (token.find("true") != std::string::npos) return true;
  if (token.find("false") != std::string::npos) return false;
  bad_metrics("bad bool for '" + key + "': '" + token + "'");
}

std::vector<double> parse_array(const std::string& token,
                                const std::string& key) {
  std::vector<double> values;
  std::string body = token;
  for (char& c : body) {
    if (c == '[' || c == ']' || c == ',') c = ' ';
  }
  std::istringstream fields(body);
  double value = 0.0;
  while (fields >> value) {
    if (!std::isfinite(value)) bad_metrics("non-finite entry in '" + key + "'");
    values.push_back(value);
  }
  return values;
}

double relative_gap(double a, double b) {
  const double scale = std::max(std::abs(a), std::abs(b));
  if (scale <= 0.0) return 0.0;
  return std::abs(a - b) / scale;
}

void check_quantile(std::vector<std::string>& failures, const char* name,
                    double a, double b, double tolerance) {
  const double gap = relative_gap(a, b);
  if (gap <= tolerance) return;
  std::ostringstream os;
  os << name << ": " << a << " vs " << b << " (relative gap "
     << std::setprecision(3) << gap << " > " << tolerance << ")";
  failures.push_back(os.str());
}

}  // namespace

void write_replay_metrics(std::ostream& out, const ReplayMetrics& metrics) {
  out << std::setprecision(17);
  out << "{\n"
      << "  \"source\": \"" << metrics.source << "\",\n"
      << "  \"jobs\": " << metrics.jobs << ",\n"
      << "  \"duration\": " << metrics.duration << ",\n"
      << "  \"mean_response\": " << metrics.mean_response << ",\n"
      << "  \"p50_response\": " << metrics.p50_response << ",\n"
      << "  \"p90_response\": " << metrics.p90_response << ",\n"
      << "  \"p99_response\": " << metrics.p99_response << ",\n";
  out << "  \"dispatch_share\": [";
  for (std::size_t i = 0; i < metrics.dispatch_share.size(); ++i) {
    if (i != 0) out << ", ";
    out << metrics.dispatch_share[i];
  }
  out << "],\n";
  out << "  \"has_herd\": " << (metrics.has_herd ? "true" : "false") << ",\n"
      << "  \"herd_autocorr\": " << metrics.herd_autocorr << ",\n"
      << "  \"herd_amplitude\": " << metrics.herd_amplitude << ",\n"
      << "  \"herding\": " << (metrics.herding ? "true" : "false") << "\n"
      << "}\n";
}

ReplayMetrics parse_replay_metrics(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  ReplayMetrics metrics;
  metrics.source = parse_string(raw_value(text, "source", true), "source");
  metrics.jobs = static_cast<std::uint64_t>(
      parse_number(raw_value(text, "jobs", true), "jobs"));
  metrics.duration =
      parse_number(raw_value(text, "duration", true), "duration");
  metrics.mean_response = parse_number(
      raw_value(text, "mean_response", true), "mean_response");
  metrics.p50_response =
      parse_number(raw_value(text, "p50_response", true), "p50_response");
  metrics.p90_response =
      parse_number(raw_value(text, "p90_response", true), "p90_response");
  metrics.p99_response =
      parse_number(raw_value(text, "p99_response", true), "p99_response");
  metrics.dispatch_share = parse_array(
      raw_value(text, "dispatch_share", true), "dispatch_share");
  const std::string has_herd = raw_value(text, "has_herd", false);
  if (!has_herd.empty()) {
    metrics.has_herd = parse_bool(has_herd, "has_herd");
  }
  if (metrics.has_herd) {
    metrics.herd_autocorr = parse_number(
        raw_value(text, "herd_autocorr", true), "herd_autocorr");
    metrics.herd_amplitude = parse_number(
        raw_value(text, "herd_amplitude", true), "herd_amplitude");
    metrics.herding = parse_bool(raw_value(text, "herding", true), "herding");
  }
  return metrics;
}

std::vector<std::string> diff_replay_metrics(const ReplayMetrics& a,
                                             const ReplayMetrics& b,
                                             const DiffTolerance& tolerance) {
  std::vector<std::string> failures;
  check_quantile(failures, "mean_response", a.mean_response, b.mean_response,
                 tolerance.response);
  check_quantile(failures, "p50_response", a.p50_response, b.p50_response,
                 tolerance.response);
  check_quantile(failures, "p90_response", a.p90_response, b.p90_response,
                 tolerance.response);
  check_quantile(failures, "p99_response", a.p99_response, b.p99_response,
                 tolerance.response);

  if (a.dispatch_share.size() != b.dispatch_share.size()) {
    std::ostringstream os;
    os << "dispatch_share: " << a.dispatch_share.size() << " vs "
       << b.dispatch_share.size() << " servers";
    failures.push_back(os.str());
  } else if (!a.dispatch_share.empty()) {
    double tv = 0.0;
    for (std::size_t i = 0; i < a.dispatch_share.size(); ++i) {
      tv += std::abs(a.dispatch_share[i] - b.dispatch_share[i]);
    }
    tv *= 0.5;
    if (tv > tolerance.share_tv) {
      std::ostringstream os;
      os << "dispatch_share: total-variation distance " << std::setprecision(3)
         << tv << " > " << tolerance.share_tv;
      failures.push_back(os.str());
    }
  }

  if (tolerance.require_herd_match && a.has_herd && b.has_herd &&
      a.herding != b.herding) {
    std::ostringstream os;
    os << "herding verdict: " << (a.herding ? "yes" : "no") << " ("
       << a.source << ") vs " << (b.herding ? "yes" : "no") << " ("
       << b.source << ")";
    failures.push_back(os.str());
  }
  return failures;
}

}  // namespace stale::obs
