#include "obs/trace_recorder.h"

#include <algorithm>
#include <stdexcept>

namespace stale::obs {

const char* trace_event_kind_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kKernel:
      return "kernel";
    case TraceEventKind::kDispatch:
      return "dispatch";
    case TraceEventKind::kDeparture:
      return "departure";
    case TraceEventKind::kServerDown:
      return "server_down";
    case TraceEventKind::kServerUp:
      return "server_up";
    case TraceEventKind::kBoardRefresh:
      return "board_refresh";
    case TraceEventKind::kRefreshFault:
      return "refresh_fault";
    case TraceEventKind::kDecision:
      return "decision";
    case TraceEventKind::kMembership:
      return "membership";
    case TraceEventKind::kDegraded:
      return "degraded";
  }
  throw std::logic_error("trace_event_kind_name: bad enum");
}

const char* member_trace_state_name(MemberTraceState state) {
  switch (state) {
    case MemberTraceState::kAlive:
      return "alive";
    case MemberTraceState::kSuspect:
      return "suspect";
    case MemberTraceState::kDead:
      return "dead";
    case MemberTraceState::kProbation:
      return "probation";
  }
  throw std::logic_error("member_trace_state_name: bad enum");
}

TraceRecorder::TraceRecorder(const RecorderOptions& options)
    : options_(options) {}

std::vector<std::int64_t> refresh_level_counts(const BoardRefresh& refresh) {
  if (!refresh.level_counts.empty() || refresh.loads.empty()) {
    return refresh.level_counts;
  }
  const int max_load =
      *std::max_element(refresh.loads.begin(), refresh.loads.end());
  std::vector<std::int64_t> counts(static_cast<std::size_t>(max_load) + 1, 0);
  for (int load : refresh.loads) {
    ++counts[static_cast<std::size_t>(load)];
  }
  return counts;
}

void TraceRecorder::push(const TraceEvent& event) {
  events_.push_back(event);
  max_server_ = std::max(max_server_, static_cast<int>(event.server));
}

void TraceRecorder::on_kernel_event(double when) {
  push({when, TraceEventKind::kKernel, -1, 0.0, 0.0, 0});
}

void TraceRecorder::on_dispatch(double t, int server, double job_size,
                                int queue_len_after, double departure) {
  push({t, TraceEventKind::kDispatch, server, job_size, departure,
        queue_len_after});
}

void TraceRecorder::on_departure(double t, int server, int queue_len_after) {
  push({t, TraceEventKind::kDeparture, server, 0.0, 0.0, queue_len_after});
}

void TraceRecorder::on_server_down(double t, int server, int jobs_displaced) {
  push({t, TraceEventKind::kServerDown, server, 0.0, 0.0, jobs_displaced});
}

void TraceRecorder::on_server_up(double t, int server) {
  push({t, TraceEventKind::kServerUp, server, 0.0, 0.0, 0});
}

void TraceRecorder::on_board_refresh(double published, double measured,
                                     std::uint64_t version,
                                     std::span<const int> loads) {
  std::int64_t index = -1;
  if (options_.record_snapshots) {
    index = static_cast<std::int64_t>(refreshes_.size());
    BoardRefresh refresh{published, measured, version, {}, {}};
    if (loads.size() <= options_.full_vector_limit) {
      refresh.loads.assign(loads.begin(), loads.end());
    } else {
      // Large cluster: store the O(#levels) occupancy counts instead of the
      // O(n) vector, keeping long large-n traces affordable.
      for (int load : loads) {
        const auto level = static_cast<std::size_t>(load);
        if (level >= refresh.level_counts.size()) {
          refresh.level_counts.resize(level + 1, 0);
        }
        ++refresh.level_counts[level];
      }
    }
    refreshes_.push_back(std::move(refresh));
  }
  push({published, TraceEventKind::kBoardRefresh, -1, measured,
        static_cast<double>(version), index});
}

void TraceRecorder::on_refresh_fault(double t, FaultTraceEvent kind,
                                     int server) {
  push({t, TraceEventKind::kRefreshFault, server, 0.0, 0.0,
        static_cast<std::int64_t>(kind)});
}

void TraceRecorder::on_probabilities(std::span<const double> p) {
  ++probability_builds_;
  if (!options_.record_probabilities) return;
  // Above the limit, copying every build would cost O(decisions * n); the
  // build is still counted, but decisions reference no vector (index -1).
  if (p.size() > options_.full_vector_limit) return;
  last_probability_index_ = static_cast<std::int64_t>(
      probability_vectors_.size());
  probability_vectors_.emplace_back(p.begin(), p.end());
}

void TraceRecorder::on_decision(double t, int server, double info_age) {
  push({t, TraceEventKind::kDecision, server, info_age, 0.0,
        last_probability_index_});
}

void TraceRecorder::on_membership(double t, int server, MemberTraceState from,
                                  MemberTraceState to) {
  push({t, TraceEventKind::kMembership, server,
        static_cast<double>(static_cast<int>(from)), 0.0,
        static_cast<std::int64_t>(to)});
}

void TraceRecorder::on_degraded_mode(double t, bool entered, double coverage) {
  push({t, TraceEventKind::kDegraded, -1, coverage, 0.0, entered ? 1 : 0});
}

std::vector<TraceEvent> TraceRecorder::events_by_time() const {
  std::vector<TraceEvent> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.time < b.time;
                   });
  return sorted;
}

std::uint64_t TraceRecorder::count(TraceEventKind kind) const {
  std::uint64_t total = 0;
  for (const TraceEvent& event : events_) {
    if (event.kind == kind) ++total;
  }
  return total;
}

double TraceRecorder::end_time() const {
  double end = 0.0;
  for (const TraceEvent& event : events_) end = std::max(end, event.time);
  return end;
}

void TraceRecorder::clear() {
  events_.clear();
  refreshes_.clear();
  probability_vectors_.clear();
  last_probability_index_ = -1;
  probability_builds_ = 0;
  max_server_ = -1;
}

}  // namespace stale::obs
