// Trace sink: the observability layer's hook interface (DESIGN.md §12).
//
// Every simulation layer holds a nullable `TraceSink*` and fires a virtual
// hook at each observable transition — dispatches, departures, board
// refreshes, probability-vector builds, fault events. With the pointer null
// (the default everywhere) each hook site is a single predictable branch, so
// trace-off runs pay nothing measurable; with a sink attached the callbacks
// fire synchronously on the simulation thread.
//
// Contract (machine-checked by tests/concurrency/trace_determinism_test.cpp):
// a sink is a pure observer. Implementations must not mutate simulation
// state, must not draw from any sim::Rng, and must not throw — a traced run
// produces bit-identical results to an untraced one. Sinks are not
// synchronized; parallel trial runners must hand each trial its own sink.
//
// This header sits at the bottom of the include DAG (obs depends only on
// check) precisely so that sim, queueing, loadinfo, policy, fault, and
// driver can all compile hooks in without layering violations.
#pragma once

#include <cstdint>
#include <span>

namespace stale::obs {

// Degraded-information events surfaced by the fault layer through the boards
// and the driver. kRefreshLost/kRefreshDelayed carry the affected server
// index, or -1 when the whole board's refresh was degraded.
enum class FaultTraceEvent : std::uint8_t {
  kRefreshLost,
  kRefreshDelayed,
  kEstimatorDrop,
};

// The health subsystem's per-server liveness states (src/health/), mirrored
// here so membership transitions can flow through the trace layer without
// obs depending on health (obs sits at the bottom of the include DAG).
// Values match health::MemberState one to one.
enum class MemberTraceState : std::uint8_t {
  kAlive,
  kSuspect,
  kDead,
  kProbation,
};

const char* member_trace_state_name(MemberTraceState state);

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  // --- sim kernel (general DES engine) -----------------------------------
  // An event fired at simulated time `when`.
  virtual void on_kernel_event(double when) { static_cast<void>(when); }

  // --- queueing -----------------------------------------------------------
  // A job of `job_size` entered `server`'s queue at time `t`; the queue now
  // holds `queue_len_after` jobs and the job will depart at `departure`
  // (exact under FIFO, invalidated only by a later crash).
  virtual void on_dispatch(double t, int server, double job_size,
                           int queue_len_after, double departure) {
    static_cast<void>(t);
    static_cast<void>(server);
    static_cast<void>(job_size);
    static_cast<void>(queue_len_after);
    static_cast<void>(departure);
  }

  // A job finished service at `server` at time `t`.
  virtual void on_departure(double t, int server, int queue_len_after) {
    static_cast<void>(t);
    static_cast<void>(server);
    static_cast<void>(queue_len_after);
  }

  // `server` crashed at `t`, displacing `jobs_displaced` queued jobs.
  virtual void on_server_down(double t, int server, int jobs_displaced) {
    static_cast<void>(t);
    static_cast<void>(server);
    static_cast<void>(jobs_displaced);
  }

  // `server` came back (empty) at `t`.
  virtual void on_server_up(double t, int server) {
    static_cast<void>(t);
    static_cast<void>(server);
  }

  // --- loadinfo -----------------------------------------------------------
  // A load-information refresh became visible at `published`, carrying queue
  // lengths measured at `measured` (the staleness the dispatcher acts on is
  // "now - measured"). `loads` is the full visible snapshot.
  virtual void on_board_refresh(double published, double measured,
                                std::uint64_t version,
                                std::span<const int> loads) {
    static_cast<void>(published);
    static_cast<void>(measured);
    static_cast<void>(version);
    static_cast<void>(loads);
  }

  // A refresh was degraded by the fault layer (lost or delayed), or an
  // arrival sample never reached the rate estimator.
  virtual void on_refresh_fault(double t, FaultTraceEvent kind, int server) {
    static_cast<void>(t);
    static_cast<void>(kind);
    static_cast<void>(server);
  }

  // --- policy -------------------------------------------------------------
  // The probability vector the next decision(s) sample from, reported when a
  // policy (re)builds it — once per phase for cached periodic-update
  // policies, per request for the continuous models. Policies that pick
  // directly (random, k-subset, threshold) report nothing; their choice is
  // still visible through on_decision.
  virtual void on_probabilities(std::span<const double> p) {
    static_cast<void>(p);
  }

  // --- driver -------------------------------------------------------------
  // The dispatch decision for the arrival at time `t`: the policy chose
  // `server` acting on information of age `info_age`.
  virtual void on_decision(double t, int server, double info_age) {
    static_cast<void>(t);
    static_cast<void>(server);
    static_cast<void>(info_age);
  }

  // --- health -------------------------------------------------------------
  // The membership state machine moved `server` from `from` to `to` at `t`
  // (src/health/membership.h). Fired for every transition, including the
  // probation -> alive rejoin the chaos harness asserts on.
  virtual void on_membership(double t, int server, MemberTraceState from,
                             MemberTraceState to) {
    static_cast<void>(t);
    static_cast<void>(server);
    static_cast<void>(from);
    static_cast<void>(to);
  }

  // The dispatcher entered (`entered` true) or left degraded mode because
  // board coverage crossed the configured threshold; `coverage` is the
  // candidate fraction at the transition.
  virtual void on_degraded_mode(double t, bool entered, double coverage) {
    static_cast<void>(t);
    static_cast<void>(entered);
    static_cast<void>(coverage);
  }
};

}  // namespace stale::obs
