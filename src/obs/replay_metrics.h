// The record->replay comparison schema. A live run (staleload_lb --record)
// and its simulated replay (staleload_sim --workload replay:DIR) each distill
// into one ReplayMetrics value — response-time quantiles, per-server dispatch
// shares, and the herd-detector verdict — and tools/playdiff diffs the two
// under an explicit tolerance. Keeping the schema here (obs) lets both the
// net recorder and the sim driver fill it without either including the other.
//
// I/O is stream-only: obs is inside the host-state lint scope (D4), so this
// layer never opens files — callers own the std::ostream / std::istream.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace stale::obs {

struct ReplayMetrics {
  std::string source;  // "live" or "sim"
  std::uint64_t jobs = 0;
  double duration = 0.0;  // measured span, seconds

  // Response-time statistics over the post-warmup jobs, seconds.
  double mean_response = 0.0;
  double p50_response = 0.0;
  double p90_response = 0.0;
  double p99_response = 0.0;

  // Fraction of dispatches each server received (sums to ~1).
  std::vector<double> dispatch_share;

  // Herd-detector summary (valid only when has_herd).
  bool has_herd = false;
  double herd_autocorr = 0.0;
  double herd_amplitude = 0.0;
  bool herding = false;
};

// JSON, one key per line (stable field order — diffable in CI artifacts).
void write_replay_metrics(std::ostream& out, const ReplayMetrics& metrics);

// Parses the write_replay_metrics format. Throws std::invalid_argument on
// missing or malformed required fields.
ReplayMetrics parse_replay_metrics(std::istream& in);

// Tolerances for diff_replay_metrics. The defaults are the CI gate's
// documented budget: live and sim runs share a workload but not service-time
// draws or network jitter, so quantiles are compared at 30% relative error
// and dispatch shares at 0.15 total-variation distance.
struct DiffTolerance {
  double response = 0.30;       // relative, on mean/p50/p90/p99
  double share_tv = 0.15;       // total-variation distance on shares
  bool require_herd_match = false;
};

// Returns one human-readable line per tolerance violation; empty means the
// two runs agree within tolerance.
std::vector<std::string> diff_replay_metrics(const ReplayMetrics& a,
                                             const ReplayMetrics& b,
                                             const DiffTolerance& tolerance);

}  // namespace stale::obs
