// Chrome trace_event JSON exporter. The output loads straight into
// chrome://tracing or https://ui.perfetto.dev:
//
//   * each server is a thread row ("tid") under one process;
//   * every job is a complete span (ph "X") from dispatch to departure on its
//     server's row, so the herd effect shows up visually as one row packed
//     solid while its neighbours sit idle;
//   * queue lengths are counter tracks (ph "C"), one per server;
//   * board refreshes, refresh faults, crashes and recoveries are instants.
//
// Simulated time is unitless; it is scaled by `time_scale` into the
// microseconds the trace viewer expects (default 1e6: 1 sim time unit reads
// as 1 s in the UI).
#pragma once

#include <ostream>

#include "obs/trace_recorder.h"

namespace stale::obs {

struct ChromeTraceOptions {
  double time_scale = 1e6;  // sim time units -> trace microseconds
  bool queue_counters = true;
};

void write_chrome_trace(std::ostream& out, const TraceRecorder& recorder,
                        const ChromeTraceOptions& options = {});

}  // namespace stale::obs
