// Dependency-free SVG line charts, so the figure benches can be rendered to
// images matching the paper's plots:
//
//   build/bench/fig02_periodic_update --csv |
//       build/tools/plot_sweep --out fig02.svg --log-x --log-y
//
// The emitter draws axes with "nice" ticks (linear or log10), one polyline
// per series in a distinguishable palette, and a legend.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace stale::obs {

struct PlotSeries {
  std::string label;
  std::vector<std::pair<double, double>> points;  // (x, y)
};

struct PlotOptions {
  std::string title;
  std::string x_label = "x";
  std::string y_label = "y";
  bool log_x = false;
  bool log_y = false;
  int width = 760;
  int height = 500;
};

// Renders the chart as a complete SVG document. Throws std::invalid_argument
// on empty input or non-positive values on a log axis.
std::string render_line_chart(const std::vector<PlotSeries>& series,
                              const PlotOptions& options);

// Parses the CSV a sweep bench emits with --csv: a header row naming the
// x column then one column per series, and data rows whose cells are either
// plain numbers or "mean+-ci" (the CI is dropped). Rows and non-numeric
// cells that do not parse are skipped; comment lines (leading '#') and panel
// markers ("## ...") are ignored, so a whole multi-panel bench output can be
// piped through (the last panel wins unless split upstream).
std::vector<PlotSeries> parse_sweep_csv(const std::string& text);

}  // namespace stale::obs
