// SVG timeline: the sampled per-server queue-length trajectories rendered as
// one line chart via obs/svg_plot.h. Under a herding policy the per-server
// lines visibly alternate between spikes and troughs once per update phase;
// under an interpreted policy they stay interleaved near the mean.
#pragma once

#include <string>

#include "obs/probe.h"

namespace stale::obs {

struct TimelineOptions {
  std::string title = "Per-server queue lengths";
  // Render at most this many servers (first by index); 0 = all. Charts with
  // dozens of lines are unreadable.
  int max_servers = 16;
};

std::string render_queue_timeline(const QueueTrajectory& trajectory,
                                  const TimelineOptions& options = {});

}  // namespace stale::obs
