#include "obs/svg_plot.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace stale::obs {

namespace {

// Categorical palette (Okabe-Ito, colorblind safe).
const char* kPalette[] = {"#0072B2", "#D55E00", "#009E73", "#CC79A7",
                          "#E69F00", "#56B4E9", "#F0E442", "#000000"};
constexpr int kPaletteSize = 8;

struct AxisScale {
  double lo;
  double hi;
  bool log;

  // Maps a data value to [0, 1].
  double unit(double v) const {
    if (log) {
      return (std::log10(v) - std::log10(lo)) /
             (std::log10(hi) - std::log10(lo));
    }
    return (v - lo) / (hi - lo);
  }
};

std::string fmt_num(double v) {
  std::ostringstream os;
  if (v != 0.0 && (std::fabs(v) < 0.01 || std::fabs(v) >= 100000.0)) {
    os << std::scientific << std::setprecision(1) << v;
  } else {
    os << std::defaultfloat << std::setprecision(4) << v;
  }
  return os.str();
}

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Tick positions: powers of ten on log axes, ~6 "nice" steps on linear.
std::vector<double> make_ticks(const AxisScale& scale) {
  std::vector<double> ticks;
  if (scale.log) {
    const int lo = static_cast<int>(std::floor(std::log10(scale.lo)));
    const int hi = static_cast<int>(std::ceil(std::log10(scale.hi)));
    for (int e = lo; e <= hi; ++e) {
      const double v = std::pow(10.0, e);
      if (v >= scale.lo * 0.999 && v <= scale.hi * 1.001) ticks.push_back(v);
    }
    if (ticks.size() < 2) ticks = {scale.lo, scale.hi};
    return ticks;
  }
  const double span = scale.hi - scale.lo;
  const double raw_step = span / 6.0;
  const double magnitude = std::pow(10.0, std::floor(std::log10(raw_step)));
  double step = magnitude;
  for (double m : {1.0, 2.0, 5.0, 10.0}) {
    if (magnitude * m >= raw_step) {
      step = magnitude * m;
      break;
    }
  }
  const double first = std::ceil(scale.lo / step) * step;
  for (double v = first; v <= scale.hi + step * 1e-9; v += step) {
    ticks.push_back(v);
  }
  return ticks;
}

}  // namespace

std::string render_line_chart(const std::vector<PlotSeries>& series,
                              const PlotOptions& options) {
  if (series.empty()) {
    throw std::invalid_argument("render_line_chart: no series");
  }
  double x_lo = 1e300, x_hi = -1e300, y_lo = 1e300, y_hi = -1e300;
  std::size_t total_points = 0;
  for (const PlotSeries& s : series) {
    for (const auto& [x, y] : s.points) {
      if ((options.log_x && x <= 0.0) || (options.log_y && y <= 0.0)) {
        throw std::invalid_argument(
            "render_line_chart: non-positive value on a log axis");
      }
      x_lo = std::min(x_lo, x);
      x_hi = std::max(x_hi, x);
      y_lo = std::min(y_lo, y);
      y_hi = std::max(y_hi, y);
      ++total_points;
    }
  }
  if (total_points == 0) {
    throw std::invalid_argument("render_line_chart: no points");
  }
  if (x_lo == x_hi) {
    x_lo -= 0.5;
    x_hi += 0.5;
  }
  if (y_lo == y_hi) {
    y_lo = y_lo == 0.0 ? -0.5 : y_lo * 0.9;
    y_hi = y_hi == 0.0 ? 0.5 : y_hi * 1.1;
  }
  if (!options.log_y && y_lo > 0.0 && y_lo < 0.3 * y_hi) y_lo = 0.0;

  const AxisScale xs{x_lo, x_hi, options.log_x};
  const AxisScale ys{y_lo, y_hi, options.log_y};

  const double margin_left = 64, margin_right = 170, margin_top = 40,
               margin_bottom = 52;
  const double plot_w = options.width - margin_left - margin_right;
  const double plot_h = options.height - margin_top - margin_bottom;
  auto px = [&](double x) { return margin_left + xs.unit(x) * plot_w; };
  auto py = [&](double y) { return margin_top + (1.0 - ys.unit(y)) * plot_h; };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width
      << "\" height=\"" << options.height << "\" viewBox=\"0 0 "
      << options.width << " " << options.height << "\">\n"
      << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
      << "<text x=\"" << options.width / 2.0 << "\" y=\"22\" "
      << "text-anchor=\"middle\" font-family=\"sans-serif\" font-size=\"15\" "
      << "font-weight=\"bold\">" << escape(options.title) << "</text>\n";

  // Axes frame.
  svg << "<rect x=\"" << margin_left << "\" y=\"" << margin_top
      << "\" width=\"" << plot_w << "\" height=\"" << plot_h
      << "\" fill=\"none\" stroke=\"#333\"/>\n";

  // Ticks, gridlines, labels.
  for (double tick : make_ticks(xs)) {
    const double x = px(tick);
    svg << "<line x1=\"" << x << "\" y1=\"" << margin_top << "\" x2=\"" << x
        << "\" y2=\"" << margin_top + plot_h
        << "\" stroke=\"#ddd\" stroke-width=\"1\"/>\n"
        << "<text x=\"" << x << "\" y=\"" << margin_top + plot_h + 18
        << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
        << "font-size=\"11\">" << fmt_num(tick) << "</text>\n";
  }
  for (double tick : make_ticks(ys)) {
    const double y = py(tick);
    svg << "<line x1=\"" << margin_left << "\" y1=\"" << y << "\" x2=\""
        << margin_left + plot_w << "\" y2=\"" << y
        << "\" stroke=\"#ddd\" stroke-width=\"1\"/>\n"
        << "<text x=\"" << margin_left - 6 << "\" y=\"" << y + 4
        << "\" text-anchor=\"end\" font-family=\"sans-serif\" "
        << "font-size=\"11\">" << fmt_num(tick) << "</text>\n";
  }
  svg << "<text x=\"" << margin_left + plot_w / 2.0 << "\" y=\""
      << options.height - 12
      << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
      << "font-size=\"13\">" << escape(options.x_label) << "</text>\n"
      << "<text x=\"16\" y=\"" << margin_top + plot_h / 2.0
      << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
      << "font-size=\"13\" transform=\"rotate(-90 16 "
      << margin_top + plot_h / 2.0 << ")\">" << escape(options.y_label)
      << "</text>\n";

  // Series polylines + legend.
  for (std::size_t i = 0; i < series.size(); ++i) {
    const char* color = kPalette[i % kPaletteSize];
    std::ostringstream pts;
    for (const auto& [x, y] : series[i].points) {
      pts << px(x) << "," << py(y) << " ";
    }
    svg << "<polyline points=\"" << pts.str()
        << "\" fill=\"none\" stroke=\"" << color
        << "\" stroke-width=\"2\"/>\n";
    for (const auto& [x, y] : series[i].points) {
      svg << "<circle cx=\"" << px(x) << "\" cy=\"" << py(y)
          << "\" r=\"2.6\" fill=\"" << color << "\"/>\n";
    }
    const double legend_y = margin_top + 14 + 18.0 * static_cast<double>(i);
    const double legend_x = margin_left + plot_w + 12;
    svg << "<line x1=\"" << legend_x << "\" y1=\"" << legend_y << "\" x2=\""
        << legend_x + 22 << "\" y2=\"" << legend_y << "\" stroke=\"" << color
        << "\" stroke-width=\"2\"/>\n"
        << "<text x=\"" << legend_x + 28 << "\" y=\"" << legend_y + 4
        << "\" font-family=\"sans-serif\" font-size=\"12\">"
        << escape(series[i].label) << "</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

std::vector<PlotSeries> parse_sweep_csv(const std::string& text) {
  std::vector<PlotSeries> series;
  std::istringstream in(text);
  std::string line;

  auto split = [](const std::string& row) {
    std::vector<std::string> cells;
    std::istringstream fields(row);
    std::string cell;
    while (std::getline(fields, cell, ',')) cells.push_back(cell);
    return cells;
  };
  auto parse_cell = [](const std::string& cell, double& out) {
    // Accept "1.23" or "1.23+-0.04".
    const auto pm = cell.find("+-");
    const std::string head = pm == std::string::npos ? cell
                                                     : cell.substr(0, pm);
    std::size_t pos = 0;
    try {
      out = std::stod(head, &pos);
    } catch (const std::exception&) {
      return false;
    }
    return pos == head.size() && !head.empty();
  };

  for (std::string raw; std::getline(in, raw);) {
    if (raw.empty() || raw[0] == '#') continue;
    const auto cells = split(raw);
    if (cells.size() < 2) continue;
    double x = 0.0;
    if (!parse_cell(cells[0], x)) {
      // Header row: (re)start the series set — a later panel replaces an
      // earlier one when multi-panel output is piped through whole.
      series.clear();
      for (std::size_t i = 1; i < cells.size(); ++i) {
        series.push_back(PlotSeries{cells[i], {}});
      }
      continue;
    }
    if (series.empty()) continue;  // data before any header: skip
    for (std::size_t i = 1; i < cells.size() && i - 1 < series.size(); ++i) {
      double y = 0.0;
      if (parse_cell(cells[i], y)) {
        series[i - 1].points.emplace_back(x, y);
      }
    }
  }
  return series;
}

}  // namespace stale::obs
