// CSV exporters for recorded traces: the raw event log and the sampled
// queue-length trajectories, both written to a caller-supplied ostream so
// this layer never touches the filesystem (file opening happens in tools/).
#pragma once

#include <ostream>

#include "obs/probe.h"
#include "obs/trace_recorder.h"

namespace stale::obs {

// One row per event, time-sorted:
//   time,kind,server,a,b,c
// with the per-kind field meanings documented in obs/trace_recorder.h.
void write_events_csv(std::ostream& out, const TraceRecorder& recorder);

// One row per grid instant:
//   time,server0,server1,...,serverN-1
// i.e. the per-server queue-length step functions sampled on the trajectory's
// uniform grid. Loads directly into any plotting tool.
void write_trajectory_csv(std::ostream& out, const QueueTrajectory& trajectory);

}  // namespace stale::obs
