#include "obs/probe.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace stale::obs {

namespace {

int resolve_servers(const TraceRecorder& recorder, int num_servers) {
  const int seen = recorder.num_servers_seen();
  return num_servers > 0 ? std::max(num_servers, seen) : seen;
}

// True for the event kinds that change a server's queue length; writes the
// post-event length into `len`.
bool queue_len_after(const TraceEvent& event, int* len) {
  switch (event.kind) {
    case TraceEventKind::kDispatch:
    case TraceEventKind::kDeparture:
      *len = static_cast<int>(event.c);
      return true;
    case TraceEventKind::kServerDown:
    case TraceEventKind::kServerUp:
      *len = 0;  // a crash empties the queue; recovery starts empty
      return true;
    default:
      return false;
  }
}

}  // namespace

QueueTrajectory sample_queue_trajectory(const TraceRecorder& recorder,
                                        double interval, double t_begin,
                                        double t_end, int num_servers) {
  if (!(interval > 0.0)) {
    throw std::invalid_argument(
        "sample_queue_trajectory: interval must be > 0");
  }
  if (!(t_end >= t_begin)) {
    throw std::invalid_argument("sample_queue_trajectory: empty window");
  }
  const int n = resolve_servers(recorder, num_servers);
  QueueTrajectory trajectory;
  trajectory.t_begin = t_begin;
  trajectory.interval = interval;
  trajectory.num_servers = n;
  if (n == 0) return trajectory;

  const std::vector<TraceEvent> events = recorder.events_by_time();
  std::vector<int> current(static_cast<std::size_t>(n), 0);
  const auto grid_points =
      static_cast<std::size_t>(std::floor((t_end - t_begin) / interval)) + 1;
  trajectory.samples.reserve(grid_points);

  std::size_t next = 0;
  for (std::size_t k = 0; k < grid_points; ++k) {
    const double grid_time = trajectory.time_at(k);
    // Apply every queue change at or before this grid instant.
    for (; next < events.size() && events[next].time <= grid_time; ++next) {
      int len = 0;
      const TraceEvent& event = events[next];
      if (event.server >= 0 && event.server < n &&
          queue_len_after(event, &len)) {
        current[static_cast<std::size_t>(event.server)] = len;
      }
    }
    trajectory.samples.push_back(current);
  }
  return trajectory;
}

double DispatchShare::top_share() const {
  if (total == 0) return 0.0;
  const std::uint64_t top =
      counts.empty() ? 0 : *std::max_element(counts.begin(), counts.end());
  return static_cast<double>(top) / static_cast<double>(total);
}

int DispatchShare::top_server() const {
  if (total == 0 || counts.empty()) return -1;
  return static_cast<int>(std::distance(
      counts.begin(), std::max_element(counts.begin(), counts.end())));
}

DispatchShare compute_dispatch_share(const TraceRecorder& recorder,
                                     double t_begin, double t_end,
                                     int num_servers) {
  const int n = resolve_servers(recorder, num_servers);
  DispatchShare share;
  share.counts.assign(static_cast<std::size_t>(std::max(n, 0)), 0);
  for (const TraceEvent& event : recorder.events()) {
    if (event.kind != TraceEventKind::kDecision) continue;
    if (event.time < t_begin || event.time >= t_end) continue;
    if (event.server < 0 || event.server >= n) continue;
    ++share.counts[static_cast<std::size_t>(event.server)];
    ++share.total;
  }
  return share;
}

PhaseConcentration compute_phase_concentration(
    const TraceRecorder& recorder, double t_begin, double t_end,
    double fallback_phase_length, int num_servers,
    std::uint64_t min_decisions) {
  const int n = resolve_servers(recorder, num_servers);
  PhaseConcentration result;
  if (n == 0 || !(t_end > t_begin)) return result;
  result.uniform_share = 1.0 / static_cast<double>(n);

  // Phase boundaries: board refresh publish times inside the window, with
  // the window edges closing the first and last phase. Continuous-update
  // traces have no refresh events; fall back to a fixed grid.
  std::vector<double> boundaries;
  boundaries.push_back(t_begin);
  for (const TraceEvent& event : recorder.events()) {
    if (event.kind != TraceEventKind::kBoardRefresh) continue;
    if (event.time > t_begin && event.time < t_end) {
      boundaries.push_back(event.time);
    }
  }
  std::sort(boundaries.begin(), boundaries.end());
  if (boundaries.size() == 1 && fallback_phase_length > 0.0) {
    for (double b = t_begin + fallback_phase_length; b < t_end;
         b += fallback_phase_length) {
      boundaries.push_back(b);
    }
  }
  boundaries.push_back(t_end);

  std::uint64_t weighted_total = 0;
  double weighted_sum = 0.0;
  for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
    const DispatchShare share =
        compute_dispatch_share(recorder, boundaries[i], boundaries[i + 1], n);
    if (share.total < min_decisions) continue;
    const double top = share.top_share();
    ++result.phases;
    result.peak = std::max(result.peak, top);
    weighted_sum += top * static_cast<double>(share.total);
    weighted_total += share.total;
  }
  if (weighted_total > 0) {
    result.mean = weighted_sum / static_cast<double>(weighted_total);
  }
  return result;
}

}  // namespace stale::obs
