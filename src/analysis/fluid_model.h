// Fluid-limit (mean-field) analytic models for the systems the paper
// simulates, following Mitzenmacher's methodology ("How Useful Is Old
// Information", cited throughout the paper): as the number of servers grows,
// the empirical queue-length distribution evolves deterministically, so
// expected response times can be *computed* rather than simulated. This
// gives an independent check of the simulator (bench
// ablation_fluid_vs_simulation) and closed-ish forms for the fresh-info
// limit.
//
// Implemented systems:
//  1. Power-of-d with fresh information (T -> 0): the classic fixed point
//       s_i = lambda^{(d^i - 1)/(d - 1)}
//     where s_i is the fraction of servers with queue length >= i; mean
//     response time follows from Little's law.
//  2. Periodic update + d-choices (the paper's k-subset under the bulletin
//     board): servers are classed by their *board* (phase-start) length k;
//     within a phase each class receives Poisson arrivals at the fixed rate
//       r_k = lambda * (S_k^d - S_{k+1}^d) / q_k,
//     where q_k is the fraction of servers whose board shows k and
//     S_k = sum_{m >= k} q_m (a request goes to the minimum board value of d
//     uniform samples, split evenly within the tied class). Each class's
//     length distribution then evolves by the M/M/1 forward equations; at
//     each phase boundary the board is re-seeded from the true lengths. The
//     model is integrated phase over phase until the phase-start state
//     converges, then the time-averaged mean queue length over one phase
//     yields the mean response time.
//
// d = 1 reduces to uniform random dispatch and must reproduce M/M/1
// regardless of T — one of the unit tests.
#pragma once

#include <vector>

namespace stale::analysis {

struct FluidOptions {
  // Queue-length truncation. Must exceed the longest queue the system
  // reaches with non-negligible mass; integration throws if more than
  // `cap_mass_tolerance` probability accumulates at the cap.
  int max_length = 80;
  double time_step = 0.002;       // forward-Euler step
  int max_phases = 5000;          // phase iterations before giving up (short
                                  // phases at high load mix slowly)
  double convergence_tol = 1e-8;  // L1 change of the phase-start state
  double cap_mass_tolerance = 1e-4;
};

// Fraction-of-servers-with-length >= i fixed point of the fresh-information
// power-of-d system, s_0 = 1, s_i = lambda^{(d^i - 1)/(d - 1)}, truncated
// when s_i underflows. Requires 0 < lambda < 1, d >= 1.
std::vector<double> power_of_d_tail_fixed_point(double lambda, int d,
                                                int max_length = 200);

// Mean response time of the fresh-information power-of-d system via
// Little's law: E[N per server] / lambda.
double power_of_d_response_time(double lambda, int d, int max_length = 200);

// Result of the periodic-update fluid integration.
struct FluidResult {
  double mean_response = 0.0;  // time-averaged, cyclo-stationary
  double mean_queue = 0.0;     // per server
  int phases_to_converge = 0;
  bool converged = false;
  // Converged phase-start board marginal: board_marginal[k] is the fraction
  // of servers whose board entry shows queue length k at a phase boundary.
  // This is the fluid prediction a large-n bucketed simulation's per-refresh
  // level histogram should track (golden-tested at n = 10^4).
  std::vector<double> board_marginal;
};

// Fluid model of the periodic bulletin board with d-choices dispatch.
// Requires 0 < lambda < 1, d >= 1, T > 0.
FluidResult fluid_periodic_dchoices(double lambda, int d, double phase_length,
                                    const FluidOptions& options = {});

// Fluid model of the periodic bulletin board with Aggressive LI dispatch
// (Mitzenmacher's Time-Based algorithm — the analytic model the paper cites
// for it). Within a phase the water level v(t) solves
//     sum_k q_k * max(0, v - k) = lambda * t
// over the board marginal q; servers whose board value lies below the level
// receive rate lambda / (mass below the level), everyone else zero — the
// continuum limit of "spread arrivals uniformly over the group of least-
// loaded servers, expanding the group as each board level fills".
FluidResult fluid_periodic_aggressive_li(double lambda, double phase_length,
                                         const FluidOptions& options = {});

}  // namespace stale::analysis
