#include "analysis/fluid_model.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <stdexcept>

namespace stale::analysis {

namespace {

void validate(double lambda, int d) {
  if (lambda <= 0.0 || lambda >= 1.0) {
    throw std::invalid_argument("fluid model: need 0 < lambda < 1");
  }
  if (d < 1) {
    throw std::invalid_argument("fluid model: need d >= 1");
  }
}

// Shared phase-wise mean-field integrator. The dispatch algorithm is
// supplied as a rate schedule: prepare(q) is called at each phase start with
// the board marginal, then rates(t, out) fills the per-class arrival rates
// for elapsed phase time t. Algorithms with phase-constant rates simply
// ignore t.
class PhasedFluid {
 public:
  using PrepareFn = std::function<void(const std::vector<double>& marginal)>;
  using RatesFn = std::function<void(double t, std::vector<double>& rates)>;

  PhasedFluid(double lambda, double phase_length, const FluidOptions& options,
              bool rates_vary_in_time, PrepareFn prepare, RatesFn rates)
      : lambda_(lambda),
        phase_length_(phase_length),
        options_(options),
        rates_vary_(rates_vary_in_time),
        prepare_(std::move(prepare)),
        rates_fn_(std::move(rates)) {
    if (phase_length <= 0.0) {
      throw std::invalid_argument("fluid model: phase_length must be > 0");
    }
    if (options.max_length < 2) {
      throw std::invalid_argument("fluid model: max_length must be >= 2");
    }
    size_ = static_cast<std::size_t>(options.max_length + 1);
    state_.assign(size_, std::vector<double>(size_, 0.0));
    state_[0][0] = 1.0;  // empty cluster, empty board
    marginal_.assign(size_, 0.0);
    previous_marginal_.assign(size_, 0.0);
    rates_.assign(size_, 0.0);
    scratch_.assign(size_, 0.0);
    steps_per_phase_ = std::max(
        1, static_cast<int>(std::ceil(phase_length / options.time_step)));
    dt_ = phase_length / steps_per_phase_;
  }

  FluidResult run() {
    FluidResult result;
    for (int phase = 0; phase < options_.max_phases; ++phase) {
      run_phase(false, nullptr);
      reset_board();
      double change = 0.0;
      for (std::size_t k = 0; k < size_; ++k) {
        const double mass = std::accumulate(state_[k].begin(),
                                            state_[k].end(), 0.0);
        change += std::fabs(mass - previous_marginal_[k]);
        previous_marginal_[k] = mass;
      }
      if (previous_marginal_[size_ - 1] > options_.cap_mass_tolerance) {
        throw std::runtime_error(
            "fluid model: probability mass reached the length cap; raise "
            "FluidOptions::max_length");
      }
      if (change < options_.convergence_tol) {
        result.converged = true;
        result.phases_to_converge = phase + 1;
        break;
      }
    }
    double avg_queue = 0.0;
    run_phase(true, &avg_queue);
    reset_board();
    result.mean_queue = avg_queue;
    result.mean_response = avg_queue / lambda_;
    if (!result.converged) result.phases_to_converge = options_.max_phases;
    result.board_marginal = previous_marginal_;
    return result;
  }

 private:
  void run_phase(bool measure, double* avg_queue) {
    for (std::size_t k = 0; k < size_; ++k) {
      marginal_[k] = std::accumulate(state_[k].begin(), state_[k].end(), 0.0);
    }
    prepare_(marginal_);
    rates_fn_(0.0, rates_);

    double queue_time_integral = 0.0;
    for (int step = 0; step < steps_per_phase_; ++step) {
      if (rates_vary_ && step > 0) {
        rates_fn_(static_cast<double>(step) * dt_, rates_);
      }
      if (measure) {
        double mean_queue = 0.0;
        for (std::size_t k = 0; k < size_; ++k) {
          if (marginal_[k] <= 0.0) continue;
          for (std::size_t j = 1; j < size_; ++j) {
            mean_queue += static_cast<double>(j) * state_[k][j];
          }
        }
        queue_time_integral += mean_queue * dt_;
      }
      for (std::size_t k = 0; k < size_; ++k) {
        if (marginal_[k] <= 0.0) continue;
        const double r = rates_[k];
        auto& p = state_[k];
        // M/M/1 forward equations, arrival rate r, unit service, absorbing
        // cap (arrivals into the cap stay there).
        scratch_[0] = p[1] - r * p[0];
        for (std::size_t j = 1; j + 1 < size_; ++j) {
          scratch_[j] = r * (p[j - 1] - p[j]) + (p[j + 1] - p[j]);
        }
        scratch_[size_ - 1] = r * p[size_ - 2] - p[size_ - 1];
        for (std::size_t j = 0; j < size_; ++j) p[j] += dt_ * scratch_[j];
      }
    }
    if (measure) *avg_queue = queue_time_integral / phase_length_;
  }

  // Re-seed the board from the true lengths: new class k' = current length.
  void reset_board() {
    std::vector<std::vector<double>> next(size_,
                                          std::vector<double>(size_, 0.0));
    for (std::size_t k = 0; k < size_; ++k) {
      for (std::size_t j = 0; j < size_; ++j) {
        next[j][j] += state_[k][j];
      }
    }
    state_.swap(next);
  }

  double lambda_;
  double phase_length_;
  FluidOptions options_;
  bool rates_vary_;
  PrepareFn prepare_;
  RatesFn rates_fn_;
  std::size_t size_ = 0;
  int steps_per_phase_ = 0;
  double dt_ = 0.0;
  std::vector<std::vector<double>> state_;
  std::vector<double> marginal_;
  std::vector<double> previous_marginal_;
  std::vector<double> rates_;
  std::vector<double> scratch_;
};

}  // namespace

std::vector<double> power_of_d_tail_fixed_point(double lambda, int d,
                                                int max_length) {
  validate(lambda, d);
  if (max_length < 1) {
    throw std::invalid_argument("fluid model: max_length must be >= 1");
  }
  std::vector<double> tail;
  tail.push_back(1.0);  // s_0: every server has length >= 0
  // s_i = lambda^{(d^i - 1)/(d - 1)}; for d = 1 the exponent is i.
  double exponent = 0.0;
  for (int i = 1; i <= max_length; ++i) {
    exponent = exponent * d + 1.0;
    const double s = std::pow(lambda, exponent);
    if (s < 1e-15) break;
    tail.push_back(s);
  }
  return tail;
}

double power_of_d_response_time(double lambda, int d, int max_length) {
  const auto tail = power_of_d_tail_fixed_point(lambda, d, max_length);
  const double mean_queue =
      std::accumulate(tail.begin() + 1, tail.end(), 0.0);
  return mean_queue / lambda;
}

FluidResult fluid_periodic_dchoices(double lambda, int d, double phase_length,
                                    const FluidOptions& options) {
  validate(lambda, d);
  // Phase-constant rates: r_k = lambda (S_k^d - S_{k+1}^d) / q_k, where the
  // request goes to the minimum board value of d uniform samples and splits
  // evenly within the tied class.
  std::vector<double> q;
  auto prepare = [&q](const std::vector<double>& marginal) { q = marginal; };
  auto rates = [&q, lambda, d](double, std::vector<double>& out) {
    const std::size_t size = q.size();
    std::vector<double> suffix(size + 1, 0.0);
    for (std::size_t k = size; k-- > 0;) suffix[k] = suffix[k + 1] + q[k];
    for (std::size_t k = 0; k < size; ++k) {
      out[k] = q[k] > 0.0 ? lambda *
                                (std::pow(suffix[k], d) -
                                 std::pow(suffix[k + 1], d)) /
                                q[k]
                          : 0.0;
    }
  };
  PhasedFluid integrator(lambda, phase_length, options,
                         /*rates_vary_in_time=*/false, prepare, rates);
  return integrator.run();
}

FluidResult fluid_periodic_aggressive_li(double lambda, double phase_length,
                                         const FluidOptions& options) {
  validate(lambda, 1);
  // Water-filling schedule over the board marginal: deficit[v] = expected
  // arrivals per server needed to lift every class below integer level v up
  // to v; prefix_mass[v] = mass of classes with board value <= v. Both are
  // recomputed at each phase start.
  std::vector<double> q;
  std::vector<double> deficit;      // deficit[v], v = 0..size
  std::vector<double> prefix_mass;  // prefix_mass[v] = sum_{k<=v} q_k
  auto prepare = [&](const std::vector<double>& marginal) {
    q = marginal;
    const std::size_t size = q.size();
    prefix_mass.assign(size, 0.0);
    double mass = 0.0;
    for (std::size_t k = 0; k < size; ++k) {
      mass += q[k];
      prefix_mass[k] = mass;
    }
    deficit.assign(size + 1, 0.0);
    // deficit[v+1] = deficit[v] + prefix_mass[v] (raising the level by one
    // costs one arrival per server already below it).
    for (std::size_t v = 0; v < size; ++v) {
      deficit[v + 1] = deficit[v] + prefix_mass[v];
    }
  };
  auto rates = [&](double t, std::vector<double>& out) {
    const std::size_t size = q.size();
    const double consumed = lambda * t;  // expected arrivals per server
    // Current integer water level: largest v with deficit[v] <= consumed.
    const auto it = std::upper_bound(deficit.begin(), deficit.end(),
                                     consumed);
    std::size_t level =
        static_cast<std::size_t>(it - deficit.begin());  // first v with > x
    level = level > 0 ? level - 1 : 0;
    // Classes with board value <= level are filling (ties at the starting
    // minimum have zero deficit, so the initial group covers them all).
    const double group_mass =
        level < size ? prefix_mass[level] : prefix_mass[size - 1];
    for (std::size_t k = 0; k < size; ++k) {
      out[k] = (q[k] > 0.0 && k <= level && group_mass > 0.0)
                   ? lambda / group_mass
                   : 0.0;
    }
  };
  PhasedFluid integrator(lambda, phase_length, options,
                         /*rates_vary_in_time=*/true, prepare, rates);
  return integrator.run();
}

}  // namespace stale::analysis
