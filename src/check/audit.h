// Invariant auditors called from the sim/queueing/policy/fault hot paths.
//
// Each auditor is an inline function with no side effects on success; call
// sites wrap them in STALE_AUDIT(...) so an audit-off build compiles them
// away together with their argument evaluation. The auditors enforce the
// properties the paper's results rest on:
//
//   * probability vectors handed to a sampler carry finite, non-negative
//     mass, and — unless the fault sanitizer had to repair them — sum to
//     1 ± kProbabilityEps (mass must not silently leak, or the herd-effect
//     and k-subset comparisons are meaningless);
//   * the simulated clock never runs backwards;
//   * a CDF built from such a vector is non-decreasing and closes at 1;
//   * queue bookkeeping stays conserved (departure times sorted, per-job
//     metadata parallel to the departure deque);
//   * fault counters balance (every displaced job is either requeued or
//     lost; up/down transitions reconcile with the crash/recovery tallies).
//
// Cost when STALELOAD_AUDIT is ON: the vector audits are O(n) in the vector
// length at each call site, which multiplies steady-state dispatch work by a
// small constant (measured ~1.3–2x wall clock on the unit suite). When OFF,
// everything here is dead code.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "check/contracts.h"

namespace stale::check {

// |sum - 1| tolerance for normalized probability vectors: generous enough
// for accumulation error over millions of entries, tight enough to catch a
// genuinely dropped term.
inline constexpr double kProbabilityEps = 1e-7;

// Weights about to drive a dispatch decision. Always: finite, non-negative,
// positive total. When `expect_normalized` (the vector was produced by the
// paper's formulas and the sanitizer did not have to repair it), the mass
// must additionally sum to 1 ± kProbabilityEps.
inline void audit_dispatch_weights(std::span<const double> p,
                                   bool expect_normalized, const char* where) {
  STALE_ASSERT(!p.empty(), where);
  double sum = 0.0;
  for (double v : p) {
    STALE_ASSERT(std::isfinite(v), where);
    STALE_ASSERT(v >= 0.0, where);
    sum += v;
  }
  STALE_ASSERT(sum > 0.0, where);
  if (expect_normalized) {
    STALE_ASSERT(std::fabs(sum - 1.0) <= kProbabilityEps, where);
  }
}

// A cumulative distribution built from sanitized weights: non-decreasing,
// within [0, 1], closed at exactly 1 so sampling can never fall off the end.
inline void audit_cdf(std::span<const double> cdf, const char* where) {
  STALE_ASSERT(!cdf.empty(), where);
  double prev = 0.0;
  for (double v : cdf) {
    STALE_ASSERT(std::isfinite(v), where);
    STALE_ASSERT(v >= prev, where);
    prev = v;
  }
  STALE_ASSERT(cdf.back() == 1.0, where);
}

// Simulated time may only move forward.
inline void audit_monotonic_clock(double previous, double next,
                                  const char* where) {
  STALE_ASSERT(std::isfinite(next), where);
  STALE_ASSERT(next >= previous, where);
}

// Pending departure times of a FIFO server: ascending (FIFO, non-preemptive,
// work-conserving ⇒ completion order is dispatch order) and never behind the
// server's clock.
inline void audit_departures_sorted(std::span<const double> departures,
                                    double advanced_time, const char* where) {
  double prev = advanced_time;
  for (double d : departures) {
    STALE_ASSERT(std::isfinite(d), where);
    STALE_ASSERT(d >= prev, where);
    prev = d;
  }
}

// Fault-layer liveness bookkeeping: the cached alive count matches the mask,
// and the crash/recovery counters reconcile with how many servers are down
// (crashes - recoveries == currently-down) and with the transition counter.
inline void audit_fault_liveness(std::span<const std::uint8_t> alive,
                                 int alive_count, std::uint64_t crashes,
                                 std::uint64_t recoveries,
                                 std::uint64_t transitions,
                                 const char* where) {
  std::size_t up = 0;
  for (std::uint8_t a : alive) up += (a != 0) ? 1 : 0;
  STALE_ASSERT(static_cast<std::size_t>(alive_count) == up, where);
  STALE_ASSERT(crashes >= recoveries, where);
  STALE_ASSERT(crashes - recoveries == alive.size() - up, where);
  STALE_ASSERT(transitions == crashes + recoveries, where);
}

// Conservation across one crash: every job displaced by the crash is
// accounted exactly once, as either requeued or lost.
inline void audit_displaced_conserved(std::uint64_t displaced,
                                      std::uint64_t requeued,
                                      std::uint64_t lost, const char* where) {
  STALE_ASSERT(requeued + lost == displaced, where);
}

// Quarantine containment (src/health/): probability mass over servers the
// membership layer has quarantined (suspect/dead — alive[i] == 0) must be
// exactly zero, bit for bit. An epsilon of leaked mass would re-aim a herd
// at an evicted server over millions of dispatches. When the mask marks
// nobody alive the dispatcher must still send the job somewhere (the retry
// path charges the cost), so any distribution is legal then.
inline void audit_quarantined_mass(std::span<const double> p,
                                   std::span<const std::uint8_t> alive,
                                   const char* where) {
  if (alive.empty()) return;
  std::size_t up = 0;
  for (std::uint8_t a : alive) up += (a != 0) ? 1 : 0;
  if (up == 0) return;
  for (std::size_t i = 0; i < p.size() && i < alive.size(); ++i) {
    STALE_ASSERT(alive[i] != 0 || p[i] == 0.0, where);
  }
}

// Candidate containment for directly-picking paths (greedy, bucketed
// two-stage samplers, retry re-picks): the chosen server must be in the
// candidate set whenever the set is nonempty. With zero candidates the
// dispatcher must still send the job somewhere (the retry path charges the
// cost), so any pick is legal then.
inline void audit_candidate_pick(int server,
                                 std::span<const std::uint8_t> candidates,
                                 const char* where) {
  if (candidates.empty()) return;
  std::size_t count = 0;
  for (std::uint8_t c : candidates) count += (c != 0) ? 1 : 0;
  if (count == 0) return;
  STALE_ASSERT(server >= 0, where);
  STALE_ASSERT(static_cast<std::size_t>(server) < candidates.size(), where);
  STALE_ASSERT(candidates[static_cast<std::size_t>(server)] != 0, where);
}

// Bucketed-board consistency: an incrementally maintained level histogram
// (counts[level] = number of servers at that queue length) must always equal
// a fresh recount of the raw load vector it shadows, and its total must
// account for every server. O(n) per call — the price of catching a missed
// move() the moment it happens rather than as a skewed dispatch distribution
// thousands of events later.
inline void audit_level_histogram(std::span<const std::int64_t> counts,
                                  std::int64_t total,
                                  std::span<const int> loads,
                                  const char* where) {
  STALE_ASSERT(total == static_cast<std::int64_t>(loads.size()), where);
  std::vector<std::int64_t> recount(counts.size(), 0);
  for (int load : loads) {
    STALE_ASSERT(load >= 0, where);
    STALE_ASSERT(static_cast<std::size_t>(load) < recount.size(), where);
    ++recount[static_cast<std::size_t>(load)];
  }
  for (std::size_t level = 0; level < counts.size(); ++level) {
    STALE_ASSERT(counts[level] == recount[level], where);
  }
}

}  // namespace stale::check
