// Annotated synchronization primitives for src/ code.
//
// Thin, zero-overhead wrappers over the standard primitives that carry the
// Clang thread-safety capability attributes (check/thread_annotations.h).
// libstdc++'s std::mutex is invisible to -Wthread-safety, so guarding a
// member with it proves nothing; guarding it with check::Mutex lets clang
// verify every access. The staleload-t1-raw-mutex lint rule keeps raw
// std::mutex/std::lock_guard/std::condition_variable out of src/.
//
// Usage:
//   check::Mutex mutex_;
//   std::deque<Task> tasks_ STALE_GUARDED_BY(mutex_);
//   ...
//   check::MutexLock lock(mutex_);       // RAII, analysis-visible
//   while (tasks_.empty()) cv_.wait(mutex_);
//
// CondVar deliberately has no predicate-lambda overload: clang analyzes a
// predicate lambda as a separate function that touches guarded members
// without visibly holding the lock. The while-loop form above keeps the
// guarded reads inside the annotated critical section.
#pragma once

#include <condition_variable>
#include <mutex>

#include "check/thread_annotations.h"

namespace stale::check {

// A std::mutex the thread-safety analysis can track.
class STALE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() STALE_ACQUIRE() { mu_.lock(); }
  void unlock() STALE_RELEASE() { mu_.unlock(); }
  bool try_lock() STALE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Tells the analysis the lock is held without acquiring it — for call
  // paths where holding is a documented precondition that cannot be
  // expressed structurally.
  void assert_held() const STALE_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock for Mutex (std::lock_guard is not analysis-visible).
class STALE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) STALE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() STALE_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable usable with Mutex. Callers re-test their condition in
// a while loop around wait() (see the header comment for why there is no
// predicate overload).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) STALE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock still owns the mutex
  }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// A pseudo-capability for thread-confined state: structures that are
// single-threaded by contract (the dispatcher's event loop, a per-trial
// simulation) rather than by locking. Methods touching the confined state
// call assert_held() on entry; members are annotated
// STALE_GUARDED_BY(serial_). There is no lock and no runtime cost — under
// clang the analysis checks that every access path goes through a method
// that asserted the capability, and under other compilers it all erases.
class STALE_CAPABILITY("serial") Serial {
 public:
  Serial() = default;
  Serial(const Serial&) = delete;
  Serial& operator=(const Serial&) = delete;

  void assert_held() const STALE_ASSERT_CAPABILITY(this) {}
};

}  // namespace stale::check
