// Clang thread-safety capability attributes behind STALE_ macros.
//
// Clang's -Wthread-safety analysis (enabled on the clang CI legs, where
// -Werror makes every diagnostic fatal) statically proves that data marked
// STALE_GUARDED_BY(mu) is only touched while `mu` is held and that
// functions marked STALE_REQUIRES(mu) are only called with `mu` held. The
// attributes are invisible to gcc and to any compiler without the
// capability extension, so the macros expand to nothing there — the
// annotated code compiles identically everywhere and the proof happens
// wherever clang builds it.
//
// The analysis cannot see through libstdc++'s unannotated std::mutex, so
// src/ code synchronizes through the annotated wrappers in check/sync.h
// (check::Mutex, check::MutexLock, check::CondVar, check::Serial); the
// staleload-t1-raw-mutex lint rule enforces this. Conventions for
// annotating a class (enforced by staleload-t2-unguarded-member):
//
//   * Members the mutex does not guard (immutable after construction, or
//     confined to one thread) go BEFORE the mutex member.
//   * The mutex member and everything it guards go LAST, each guarded
//     member carrying STALE_GUARDED_BY(mutex_) (or STALE_PT_GUARDED_BY for
//     the pointee of a pointer member).
//   * Private methods that assume the lock is held take STALE_REQUIRES.
//   * Thread-confined (single-threaded by contract, not by locking)
//     structures use a check::Serial pseudo-capability: methods assert it
//     via assert_held(), which documents — and under clang, checks — the
//     confinement without any runtime cost.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define STALE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef STALE_THREAD_ANNOTATION
#define STALE_THREAD_ANNOTATION(x)  // expands to nothing outside clang
#endif

// Type attributes: a capability ("mutex"-like thing the analysis tracks)
// and an RAII scope that acquires/releases one.
#define STALE_CAPABILITY(x) STALE_THREAD_ANNOTATION(capability(x))
#define STALE_SCOPED_CAPABILITY STALE_THREAD_ANNOTATION(scoped_lockable)

// Data-member attributes.
#define STALE_GUARDED_BY(x) STALE_THREAD_ANNOTATION(guarded_by(x))
#define STALE_PT_GUARDED_BY(x) STALE_THREAD_ANNOTATION(pt_guarded_by(x))

// Function attributes: preconditions and effects on capabilities.
#define STALE_REQUIRES(...) \
  STALE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define STALE_REQUIRES_SHARED(...) \
  STALE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define STALE_ACQUIRE(...) \
  STALE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define STALE_RELEASE(...) \
  STALE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define STALE_TRY_ACQUIRE(...) \
  STALE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define STALE_EXCLUDES(...) STALE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define STALE_ASSERT_CAPABILITY(x) \
  STALE_THREAD_ANNOTATION(assert_capability(x))
#define STALE_RETURN_CAPABILITY(x) STALE_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for functions the analysis cannot model (used sparingly and
// always with a comment explaining why).
#define STALE_NO_THREAD_SAFETY_ANALYSIS \
  STALE_THREAD_ANNOTATION(no_thread_safety_analysis)
