// Compiled-in invariant contracts for the simulation stack.
//
// `STALE_ASSERT(cond, msg)` and `STALE_DCHECK(cond)` are active only when the
// build defines STALELOAD_AUDIT (CMake: -DSTALELOAD_AUDIT=ON). In a normal
// build both expand to a no-op that does not evaluate its condition, so the
// hot paths carry zero cost. In an audit build a failed contract prints the
// file:line, the expression, and the message, then aborts — contract
// violations are programming errors, never recoverable conditions, which is
// why these are macros and not exceptions (see the exception-throwing
// argument validation in e.g. FifoServer for the recoverable kind).
//
// `STALE_AUDIT(expr)` wraps a call to one of the auditors in check/audit.h so
// the whole call — including argument evaluation — vanishes when auditing is
// off.
//
// This header sits below every other module (check is layer 0 in the include
// DAG; see tools/lint) and must include nothing from the rest of src/.
#pragma once

#include <cstdio>
#include <cstdlib>

#if defined(STALELOAD_AUDIT)
#define STALE_AUDIT_ENABLED 1
#else
#define STALE_AUDIT_ENABLED 0
#endif

namespace stale::check {

[[noreturn]] inline void contract_failed(const char* file, int line,
                                         const char* expr, const char* msg) {
  std::fprintf(stderr, "staleload contract violation at %s:%d: %s", file, line,
               expr);
  if (msg != nullptr && msg[0] != '\0') std::fprintf(stderr, " — %s", msg);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace stale::check

#if STALE_AUDIT_ENABLED

#define STALE_ASSERT(cond, msg)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::stale::check::contract_failed(__FILE__, __LINE__, #cond, msg);  \
    }                                                                   \
  } while (0)

#define STALE_DCHECK(cond) STALE_ASSERT(cond, "")

#define STALE_AUDIT(expr) \
  do {                    \
    expr;                 \
  } while (0)

#else

// `sizeof` keeps both operands syntactically checked (and parameters used)
// without evaluating either.
#define STALE_ASSERT(cond, msg)   \
  do {                            \
    (void)sizeof((cond) ? 1 : 0); \
    (void)sizeof(msg);            \
  } while (0)

#define STALE_DCHECK(cond) STALE_ASSERT(cond, "")

// The audited expression is dropped entirely (it may call functions that an
// audit-off translation unit does not even compile).
#define STALE_AUDIT(expr) \
  do {                    \
  } while (0)

#endif  // STALE_AUDIT_ENABLED
