#include "queueing/cluster.h"

#include <algorithm>
#include <stdexcept>

namespace stale::queueing {

Cluster::Cluster(int n, double history_window) {
  if (n <= 0) throw std::invalid_argument("Cluster: need at least one server");
  servers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) servers_.emplace_back(1.0, history_window);
  loads_.assign(static_cast<std::size_t>(n), 0);
  total_rate_ = static_cast<double>(n);
}

Cluster::Cluster(std::vector<double> rates, double history_window) {
  if (rates.empty()) {
    throw std::invalid_argument("Cluster: need at least one server");
  }
  servers_.reserve(rates.size());
  for (double rate : rates) {
    servers_.emplace_back(rate, history_window);
    total_rate_ += rate;
  }
  loads_.assign(rates.size(), 0);
}

void Cluster::advance_to(double t) {
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    servers_[i].advance_to(t);
    loads_[i] = servers_[i].length();
  }
  advanced_time_ = t;
}

double Cluster::assign(double t, int server, double job_size) {
  if (server < 0 || server >= size()) {
    throw std::out_of_range("Cluster::assign: bad server index");
  }
  advance_to(t);
  const double departure = servers_[static_cast<std::size_t>(server)].assign(t, job_size);
  loads_[static_cast<std::size_t>(server)] += 1;
  return departure;
}

void Cluster::loads_at(double t, std::vector<int>& out) const {
  out.resize(servers_.size());
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    out[i] = servers_[i].length_at(t);
  }
}

void Cluster::enable_job_tracking() {
  for (FifoServer& server : servers_) server.enable_job_tracking();
}

double Cluster::assign_tagged(double t, int server, double job_size,
                              std::uint64_t tag, double born) {
  if (server < 0 || server >= size()) {
    throw std::out_of_range("Cluster::assign_tagged: bad server index");
  }
  advance_to(t);
  const double departure = servers_[static_cast<std::size_t>(server)]
                               .assign_tagged(t, job_size, tag, born);
  loads_[static_cast<std::size_t>(server)] += 1;
  return departure;
}

void Cluster::crash(double t, int server,
                    std::vector<DisplacedJob>& displaced) {
  if (server < 0 || server >= size()) {
    throw std::out_of_range("Cluster::crash: bad server index");
  }
  advance_to(t);
  servers_[static_cast<std::size_t>(server)].crash(t, displaced);
  loads_[static_cast<std::size_t>(server)] = 0;
}

void Cluster::recover(double t, int server) {
  if (server < 0 || server >= size()) {
    throw std::out_of_range("Cluster::recover: bad server index");
  }
  advance_to(t);
  servers_[static_cast<std::size_t>(server)].recover(t);
}

void Cluster::drain_completions(std::vector<CompletedJob>& out) {
  for (FifoServer& server : servers_) {
    std::vector<CompletedJob>& done = server.completions();
    out.insert(out.end(), done.begin(), done.end());
    done.clear();
  }
}

void Cluster::set_trace_sink(obs::TraceSink* sink) {
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    servers_[i].set_trace(sink, static_cast<int>(i));
  }
}

double Cluster::latest_pending_departure() const {
  double latest = advanced_time_;
  for (const FifoServer& server : servers_) {
    latest = std::max(latest, server.last_pending_departure());
  }
  return latest;
}

}  // namespace stale::queueing
