#include "queueing/cluster.h"

#include <stdexcept>

namespace stale::queueing {

Cluster::Cluster(int n, double history_window) {
  if (n <= 0) throw std::invalid_argument("Cluster: need at least one server");
  servers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) servers_.emplace_back(1.0, history_window);
  loads_.assign(static_cast<std::size_t>(n), 0);
  total_rate_ = static_cast<double>(n);
}

Cluster::Cluster(std::vector<double> rates, double history_window) {
  if (rates.empty()) {
    throw std::invalid_argument("Cluster: need at least one server");
  }
  servers_.reserve(rates.size());
  for (double rate : rates) {
    servers_.emplace_back(rate, history_window);
    total_rate_ += rate;
  }
  loads_.assign(rates.size(), 0);
}

void Cluster::advance_to(double t) {
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    servers_[i].advance_to(t);
    loads_[i] = servers_[i].length();
  }
  advanced_time_ = t;
}

double Cluster::assign(double t, int server, double job_size) {
  if (server < 0 || server >= size()) {
    throw std::out_of_range("Cluster::assign: bad server index");
  }
  advance_to(t);
  const double departure = servers_[static_cast<std::size_t>(server)].assign(t, job_size);
  loads_[static_cast<std::size_t>(server)] += 1;
  return departure;
}

void Cluster::loads_at(double t, std::vector<int>& out) const {
  out.resize(servers_.size());
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    out[i] = servers_[i].length_at(t);
  }
}

}  // namespace stale::queueing
