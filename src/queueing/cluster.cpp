#include "queueing/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "check/audit.h"

namespace stale::queueing {

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();
}  // namespace

Cluster::Cluster(int n, double history_window)
    : history_window_(history_window) {
  if (n <= 0) throw std::invalid_argument("Cluster: need at least one server");
  servers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) servers_.emplace_back(1.0, history_window);
  loads_.assign(static_cast<std::size_t>(n), 0);
  histogram_.assign(loads_);
  total_rate_ = static_cast<double>(n);
}

Cluster::Cluster(std::vector<double> rates, double history_window)
    : history_window_(history_window) {
  if (rates.empty()) {
    throw std::invalid_argument("Cluster: need at least one server");
  }
  servers_.reserve(rates.size());
  for (double rate : rates) {
    servers_.emplace_back(rate, history_window);
    total_rate_ += rate;
  }
  loads_.assign(rates.size(), 0);
  histogram_.assign(loads_);
}

void Cluster::refresh_load(std::size_t server) {
  STALE_DCHECK(server < loads_.size());
  const int length = servers_[server].length();
  if (length != loads_[server]) {
    histogram_.move(loads_[server], length);
    loads_[server] = length;
  }
}

void Cluster::enable_lazy_advance() {
  if (history_window_ > 0.0) {
    throw std::logic_error(
        "Cluster::enable_lazy_advance: incompatible with history tracking "
        "(pruning needs the periodic sweep)");
  }
  if (lazy_) return;
  lazy_ = true;
  scheduled_.assign(servers_.size(), kNever);
  for (std::size_t s = 0; s < servers_.size(); ++s) schedule_front(s);
  STALE_DCHECK(due_.size() <= servers_.size());
}

void Cluster::schedule_front(std::size_t server) {
  STALE_DCHECK(server < scheduled_.size());
  const double next = servers_[server].next_departure();
  if (next == scheduled_[server]) return;
  scheduled_[server] = next;
  if (std::isfinite(next)) {
    due_.push({next, static_cast<int>(server)});
  }
}

void Cluster::advance_to(double t) {
  STALE_DCHECK(t >= advanced_time_);
  if (!lazy_) {
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      servers_[i].advance_to(t);
      refresh_load(i);
    }
    advanced_time_ = t;
    return;
  }
  while (!due_.empty() && due_.top().when <= t) {
    const DueEntry entry = due_.top();
    due_.pop();
    const auto s = static_cast<std::size_t>(entry.server);
    // A mismatch means this entry was superseded (its departure was already
    // retired by an earlier pop's advance, or wiped by a crash): skip it.
    if (scheduled_[s] != entry.when) continue;
    servers_[s].advance_to(t);
    refresh_load(s);
    scheduled_[s] = kNever;
    schedule_front(s);
  }
  advanced_time_ = t;
}

double Cluster::assign(double t, int server, double job_size) {
  if (server < 0 || server >= size()) {
    throw std::out_of_range("Cluster::assign: bad server index");
  }
  advance_to(t);
  const auto s = static_cast<std::size_t>(server);
  const double departure = servers_[s].assign(t, job_size);
  histogram_.move(loads_[s], loads_[s] + 1);
  loads_[s] += 1;
  if (lazy_) schedule_front(s);
  STALE_AUDIT(check::audit_level_histogram(histogram_.counts(),
                                           histogram_.total(), loads_,
                                           "Cluster::assign"));
  return departure;
}

void Cluster::loads_at(double t, std::vector<int>& out) const {
  out.resize(servers_.size());
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    out[i] = servers_[i].length_at(t);
  }
}

void Cluster::enable_job_tracking() {
  for (FifoServer& server : servers_) server.enable_job_tracking();
}

double Cluster::assign_tagged(double t, int server, double job_size,
                              std::uint64_t tag, double born) {
  if (server < 0 || server >= size()) {
    throw std::out_of_range("Cluster::assign_tagged: bad server index");
  }
  advance_to(t);
  const auto s = static_cast<std::size_t>(server);
  const double departure = servers_[s].assign_tagged(t, job_size, tag, born);
  histogram_.move(loads_[s], loads_[s] + 1);
  loads_[s] += 1;
  if (lazy_) schedule_front(s);
  STALE_AUDIT(check::audit_level_histogram(histogram_.counts(),
                                           histogram_.total(), loads_,
                                           "Cluster::assign_tagged"));
  return departure;
}

void Cluster::crash(double t, int server,
                    std::vector<DisplacedJob>& displaced) {
  if (server < 0 || server >= size()) {
    throw std::out_of_range("Cluster::crash: bad server index");
  }
  advance_to(t);
  const auto s = static_cast<std::size_t>(server);
  servers_[s].crash(t, displaced);
  if (loads_[s] != 0) histogram_.move(loads_[s], 0);
  loads_[s] = 0;
  // Any heap entry for the wiped queue is now stale; mismatch skips it.
  if (lazy_) scheduled_[s] = kNever;
  STALE_AUDIT(check::audit_level_histogram(histogram_.counts(),
                                           histogram_.total(), loads_,
                                           "Cluster::crash"));
}

void Cluster::recover(double t, int server) {
  if (server < 0 || server >= size()) {
    throw std::out_of_range("Cluster::recover: bad server index");
  }
  advance_to(t);
  servers_[static_cast<std::size_t>(server)].recover(t);
}

void Cluster::drain_completions(std::vector<CompletedJob>& out) {
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    std::vector<CompletedJob>& done = servers_[i].completions();
    for (CompletedJob& job : done) {
      job.server = static_cast<int>(i);
      out.push_back(job);
    }
    done.clear();
  }
}

void Cluster::set_trace_sink(obs::TraceSink* sink) {
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    servers_[i].set_trace(sink, static_cast<int>(i));
  }
}

double Cluster::latest_pending_departure() const {
  double latest = advanced_time_;
  for (const FifoServer& server : servers_) {
    latest = std::max(latest, server.last_pending_departure());
  }
  return latest;
}

}  // namespace stale::queueing
