#include "queueing/fifo_server.h"

#include <algorithm>
#include <climits>
#include <stdexcept>

#include "check/audit.h"

namespace stale::queueing {

#if STALE_AUDIT_ENABLED
namespace {

// Queue bookkeeping invariants, checked after every mutation in audit
// builds: pending departures ascending and not behind the server clock,
// per-job metadata exactly parallel to the departure deque when tracking,
// and the (deque-derived) queue length non-negative by construction — the
// cast in length() could only go negative on a size_t > INT_MAX queue,
// which the contract below rules out.
void audit_server(const std::deque<double>& departures, double advanced_time,
                  bool track_jobs, std::size_t meta_size) {
  double prev = advanced_time;
  for (double d : departures) {
    STALE_ASSERT(std::isfinite(d), "FifoServer: non-finite departure time");
    STALE_ASSERT(d >= prev, "FifoServer: departures out of FIFO order");
    prev = d;
  }
  STALE_ASSERT(!track_jobs || meta_size == departures.size(),
               "FifoServer: job metadata diverged from departure queue");
  STALE_ASSERT(departures.size() <= static_cast<std::size_t>(INT_MAX),
               "FifoServer: queue length overflows int");
}

}  // namespace
#endif  // STALE_AUDIT_ENABLED

FifoServer::FifoServer(double rate, double history_window)
    : rate_(rate), history_window_(history_window) {
  if (rate <= 0.0) throw std::invalid_argument("FifoServer: rate must be > 0");
  if (history_window < 0.0) {
    throw std::invalid_argument("FifoServer: negative history window");
  }
}

void FifoServer::record(double t, int len) {
  STALE_DCHECK(len >= 0 && t >= 0.0);
  if (history_window_ <= 0.0) return;
  history_.emplace_back(t, len);
}

void FifoServer::prune(double before) {
  if (history_window_ <= 0.0) return;
  // Keep the last entry at/before `before` so queries at the window edge
  // still resolve; advance the logical start past everything older.
  while (history_begin_ + 1 < history_.size() &&
         history_[history_begin_ + 1].first <= before) {
    ++history_begin_;
  }
  // Physically compact once the dead prefix dominates.
  if (history_begin_ > 64 && history_begin_ * 2 > history_.size()) {
    history_.erase(history_.begin(),
                   history_.begin() + static_cast<std::ptrdiff_t>(history_begin_));
    history_begin_ = 0;
  }
  STALE_DCHECK(history_.empty() || history_begin_ < history_.size());
}

void FifoServer::advance_to(double t) {
  if (t < advanced_time_) {
    throw std::invalid_argument("FifoServer::advance_to: time went backwards");
  }
  while (!departures_.empty() && departures_.front() <= t) {
    const double dep = departures_.front();
    departures_.pop_front();
    ++completed_;
    if (track_jobs_) {
      const JobMeta& meta = meta_.front();
      completions_.push_back({meta.tag, dep - meta.born, dep, -1});
      meta_.pop_front();
    }
    record(dep, length());
    if (trace_) trace_->on_departure(dep, trace_index_, length());
    if (departures_.empty()) {
      busy_accum_ += dep - busy_since_;
      busy_since_ = -1.0;
    }
  }
  advanced_time_ = t;
  prune(t - history_window_);
  STALE_AUDIT(audit_server(departures_, advanced_time_, track_jobs_,
                           meta_.size()));
}

double FifoServer::assign(double t, double size) {
  if (!up_) {
    throw std::logic_error("FifoServer::assign: server is down");
  }
  if (track_jobs_) {
    throw std::logic_error(
        "FifoServer::assign: job tracking is on; use assign_tagged");
  }
  advance_to(t);
  const double start = departures_.empty() ? t : departures_.back();
  const double departure = start + size / rate_;
  if (departures_.empty()) busy_since_ = t;
  departures_.push_back(departure);
  record(t, length());
  if (trace_) trace_->on_dispatch(t, trace_index_, size, length(), departure);
  STALE_AUDIT(audit_server(departures_, advanced_time_, track_jobs_,
                           meta_.size()));
  return departure;
}

double FifoServer::assign_tagged(double t, double size, std::uint64_t tag,
                                 double born) {
  if (!up_) {
    throw std::logic_error("FifoServer::assign_tagged: server is down");
  }
  if (!track_jobs_) {
    throw std::logic_error(
        "FifoServer::assign_tagged: enable_job_tracking() first");
  }
  advance_to(t);
  const double start = departures_.empty() ? t : departures_.back();
  const double departure = start + size / rate_;
  if (departures_.empty()) busy_since_ = t;
  departures_.push_back(departure);
  meta_.push_back({tag, size, born});
  record(t, length());
  if (trace_) trace_->on_dispatch(t, trace_index_, size, length(), departure);
  STALE_AUDIT(audit_server(departures_, advanced_time_, track_jobs_,
                           meta_.size()));
  return departure;
}

void FifoServer::enable_job_tracking() {
  if (!departures_.empty()) {
    throw std::logic_error(
        "FifoServer::enable_job_tracking: jobs already in flight");
  }
  STALE_DCHECK(meta_.empty());
  track_jobs_ = true;
}

void FifoServer::crash(double t, std::vector<DisplacedJob>& displaced) {
  if (!track_jobs_) {
    throw std::logic_error("FifoServer::crash: enable_job_tracking() first");
  }
  if (!up_) {
    throw std::logic_error("FifoServer::crash: server already down");
  }
  advance_to(t);
  if (trace_) {
    trace_->on_server_down(t, trace_index_, static_cast<int>(meta_.size()));
  }
  for (const JobMeta& meta : meta_) {
    displaced.push_back({meta.tag, meta.size, meta.born});
  }
  meta_.clear();
  if (!departures_.empty()) {
    departures_.clear();
    busy_accum_ += t - busy_since_;
    busy_since_ = -1.0;
    record(t, 0);
  }
  up_ = false;
  STALE_AUDIT(audit_server(departures_, advanced_time_, track_jobs_,
                           meta_.size()));
}

void FifoServer::recover(double t) {
  if (up_) {
    throw std::logic_error("FifoServer::recover: server is not down");
  }
  advance_to(t);
  up_ = true;
  if (trace_) trace_->on_server_up(t, trace_index_);
  STALE_AUDIT(audit_server(departures_, advanced_time_, track_jobs_,
                           meta_.size()));
}

int FifoServer::length_at(double t) const {
  if (history_window_ <= 0.0) {
    throw std::logic_error("FifoServer::length_at: history tracking disabled");
  }
  if (t > advanced_time_) {
    throw std::invalid_argument("FifoServer::length_at: time in the future");
  }
  // Last history entry with time <= t gives the length from then until the
  // next change. Before any recorded change the server was empty.
  auto first = history_.begin() + static_cast<std::ptrdiff_t>(history_begin_);
  auto it = std::upper_bound(
      first, history_.end(), t,
      [](double value, const auto& entry) { return value < entry.first; });
  if (it == first) return 0;
  return std::prev(it)->second;
}

double FifoServer::ready_time(double t) const {
  return departures_.empty() ? t : departures_.back();
}

double FifoServer::busy_time() const {
  double busy = busy_accum_;
  if (busy_since_ >= 0.0) busy += advanced_time_ - busy_since_;
  return busy;
}

}  // namespace stale::queueing
