#include "queueing/theory.h"

#include <cmath>
#include <stdexcept>

namespace stale::queueing::theory {

namespace {

void require_stable(double rho) {
  if (rho < 0.0 || rho >= 1.0) {
    throw std::invalid_argument("queueing theory: need 0 <= rho < 1");
  }
}

}  // namespace

double mm1_response_time(double rho) {
  require_stable(rho);
  return 1.0 / (1.0 - rho);
}

double mg1_response_time(double rho, double service_second_moment) {
  require_stable(rho);
  if (service_second_moment < 1.0) {
    // E[S^2] >= E[S]^2 = 1 by Jensen; anything smaller is a unit mismatch.
    throw std::invalid_argument("mg1_response_time: E[S^2] must be >= 1");
  }
  return 1.0 + rho * service_second_moment / (2.0 * (1.0 - rho));
}

double md1_response_time(double rho) { return mg1_response_time(rho, 1.0); }

double erlang_c(std::size_t servers, double rho) {
  require_stable(rho);
  if (servers == 0) {
    throw std::invalid_argument("erlang_c: need at least one server");
  }
  const double c = static_cast<double>(servers);
  const double a = c * rho;  // offered load in Erlangs

  // Work with the Erlang B recursion (numerically stable):
  //   B(0) = 1;  B(k) = a B(k-1) / (k + a B(k-1)),
  // then convert: C = B / (1 - rho (1 - B)).
  double b = 1.0;
  for (std::size_t k = 1; k <= servers; ++k) {
    b = a * b / (static_cast<double>(k) + a * b);
  }
  return b / (1.0 - rho * (1.0 - b));
}

double mmc_response_time(std::size_t servers, double rho) {
  const double waiting_probability = erlang_c(servers, rho);
  const double c = static_cast<double>(servers);
  return 1.0 + waiting_probability / (c * (1.0 - rho));
}

}  // namespace stale::queueing::theory
