#include "queueing/metrics.h"

#include "check/contracts.h"

namespace stale::queueing {

ResponseMetrics::ResponseMetrics(std::uint64_t warmup_jobs, bool keep_samples)
    : warmup_(warmup_jobs), keep_samples_(keep_samples) {}

void ResponseMetrics::record(double response_time) {
  STALE_DCHECK(response_time >= 0.0);
  ++seen_;
  if (seen_ <= warmup_) return;
  stats_.add(response_time);
  if (keep_samples_) samples_.push_back(response_time);
}

void ResponseMetrics::record_indexed(std::uint64_t arrival_index,
                                     double response_time) {
  STALE_DCHECK(response_time >= 0.0);
  ++seen_;
  if (arrival_index < warmup_) return;
  stats_.add(response_time);
  if (keep_samples_) samples_.push_back(response_time);
}

}  // namespace stale::queueing
