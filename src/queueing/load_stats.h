// Queue-length imbalance instrumentation: snapshots the cluster's
// queue-length vector at (Poisson) arrival epochs — by PASTA these samples
// are unbiased estimates of the time-average state — and accumulates
// dispersion statistics. This makes the herd effect directly visible: under
// a herding policy the *spread* of queue lengths explodes long before the
// mean does. Backs the ablation_herd_imbalance bench.
#pragma once

#include <cstdint>
#include <span>

#include "sim/level_histogram.h"
#include "sim/stats.h"

namespace stale::queueing {

class LoadImbalanceStats {
 public:
  // Samples every `stride`-th observe() call (stride >= 1); pass the
  // pre-dispatch load vector of each arrival.
  explicit LoadImbalanceStats(std::uint64_t stride = 1);

  void observe(std::span<const int> loads);

  // Bucketed variant: same statistics in O(#levels) from the histogram's
  // exact integer sums — bit-identical to the vector overload on the same
  // snapshot (both reduce to the identical double formulas over exact
  // integer sums).
  void observe(const sim::LevelHistogram& histogram);

  // Across all sampled snapshots: the within-snapshot standard deviation of
  // queue lengths (averaged), the mean per-snapshot maximum, and the mean
  // queue length.
  double mean_within_snapshot_stddev() const;
  double mean_snapshot_max() const;
  double mean_queue_length() const;
  std::uint64_t snapshots() const { return snapshots_; }

 private:
  void take_sample(std::span<const int> loads);
  void take_sample(const sim::LevelHistogram& histogram);

  std::uint64_t stride_;
  std::uint64_t calls_ = 0;
  std::uint64_t snapshots_ = 0;
  sim::RunningStats stddevs_;
  sim::RunningStats maxima_;
  sim::RunningStats means_;
};

}  // namespace stale::queueing
