// A single FIFO server with unit-configurable service rate and exact lazy
// departure accounting.
//
// Because service is FIFO, non-preemptive and work-conserving, a job's
// departure time is fully determined at dispatch:
//     departure = max(arrival, time server frees up) + size / rate.
// The server therefore never needs departure *events*; it keeps the pending
// departure times in a deque and pops them lazily as simulated time advances.
// A pruned history of queue-length changes supports exact queries of the
// queue length at past instants, which the continuous-update staleness model
// needs ("what did this server look like d time units ago?").
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace stale::queueing {

class FifoServer {
 public:
  // `rate` is the service rate (work units per time unit); `history_window`
  // is how far back queue-length queries may reach (0 disables history
  // tracking entirely, saving memory when no delayed views are used).
  explicit FifoServer(double rate = 1.0, double history_window = 0.0);

  // Advances the server's notion of time to `t` (monotone non-decreasing),
  // retiring departures with time <= t. Must be called with non-decreasing t.
  void advance_to(double t);

  // Accepts a job of the given size at time `t` (caller must have called
  // advance_to(t) first, or t >= the last advanced time: assign advances
  // internally). Returns the job's departure time.
  double assign(double t, double size);

  // Queue length (jobs in service + waiting) after all departures <= the
  // last advanced time have been retired.
  int length() const { return static_cast<int>(departures_.size()); }

  // Queue length at a past instant `t`, which must be >= advanced_time -
  // history_window and <= advanced_time. Requires history tracking.
  int length_at(double t) const;

  // Time at which the server would start a job assigned now (== last pending
  // departure, or the current time when idle).
  double ready_time(double t) const;

  // Total work (remaining service demand) is not tracked; the paper's
  // algorithms all use queue length as the load metric.

  double rate() const { return rate_; }
  double advanced_time() const { return advanced_time_; }
  std::size_t completed_jobs() const { return completed_; }
  double busy_time() const;  // total time spent non-idle so far (advanced)

 private:
  void record(double t, int len);
  void prune(double before);

  double rate_;
  double history_window_;
  double advanced_time_ = 0.0;
  std::deque<double> departures_;  // pending departure times, ascending
  std::size_t completed_ = 0;

  // (time, queue length from `time` onward); ascending by time. Maintained
  // only when history_window_ > 0.
  std::vector<std::pair<double, int>> history_;
  std::size_t history_begin_ = 0;  // logical start (pruned prefix)

  // Busy-time accounting: accumulated across retired departures.
  double busy_accum_ = 0.0;
  double busy_since_ = -1.0;  // start of current busy period, <0 when idle
};

}  // namespace stale::queueing
