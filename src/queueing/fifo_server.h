// A single FIFO server with unit-configurable service rate and exact lazy
// departure accounting.
//
// Because service is FIFO, non-preemptive and work-conserving, a job's
// departure time is fully determined at dispatch:
//     departure = max(arrival, time server frees up) + size / rate.
// The server therefore never needs departure *events*; it keeps the pending
// departure times in a deque and pops them lazily as simulated time advances.
// A pruned history of queue-length changes supports exact queries of the
// queue length at past instants, which the continuous-update staleness model
// needs ("what did this server look like d time units ago?").
//
// Fault support (see src/fault/): a server can crash and later recover. A
// crash empties the queue — the displaced jobs are either discarded
// (lost-work semantics) or handed back to the caller for re-dispatch
// (requeue semantics; a restarted job repeats its full service demand).
// Because a crash invalidates the precomputed departure times, fault-aware
// runs enable job tracking, which tags every job and reports completions
// (tag, response time) as simulated time retires them, instead of trusting
// the departure time computed at dispatch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "obs/trace_sink.h"

namespace stale::queueing {

// A job that finished service; emitted only when job tracking is enabled.
struct CompletedJob {
  std::uint64_t tag = 0;    // caller-assigned id (the arrival index)
  double response = 0.0;    // departure - born
  double departure = 0.0;   // when the job finished (simulated time)
  int server = -1;          // filled by Cluster::drain_completions
};

// A job displaced by a crash, carrying what a dispatcher needs to requeue it.
struct DisplacedJob {
  std::uint64_t tag = 0;
  double size = 0.0;        // full service demand (restart semantics)
  double born = 0.0;        // original arrival time; response keeps accruing
};

class FifoServer {
 public:
  // `rate` is the service rate (work units per time unit); `history_window`
  // is how far back queue-length queries may reach (0 disables history
  // tracking entirely, saving memory when no delayed views are used).
  explicit FifoServer(double rate = 1.0, double history_window = 0.0);

  // Advances the server's notion of time to `t` (monotone non-decreasing),
  // retiring departures with time <= t. Must be called with non-decreasing t.
  void advance_to(double t);

  // Accepts a job of the given size at time `t` (caller must have called
  // advance_to(t) first, or t >= the last advanced time: assign advances
  // internally). Returns the job's departure time.
  double assign(double t, double size);

  // Tagged variant used by fault-aware runs: requires job tracking. `born`
  // is the time the job's response clock started (its original arrival, for
  // requeued jobs possibly long before `t`).
  double assign_tagged(double t, double size, std::uint64_t tag, double born);

  // Queue length (jobs in service + waiting) after all departures <= the
  // last advanced time have been retired.
  int length() const { return static_cast<int>(departures_.size()); }

  // Queue length at a past instant `t`, which must be >= advanced_time -
  // history_window and <= advanced_time. Requires history tracking.
  int length_at(double t) const;

  // Time at which the server would start a job assigned now (== last pending
  // departure, or the current time when idle).
  double ready_time(double t) const;

  // Total work (remaining service demand) is not tracked; the paper's
  // algorithms all use queue length as the load metric.

  double rate() const { return rate_; }
  double advanced_time() const { return advanced_time_; }
  std::size_t completed_jobs() const { return completed_; }
  double busy_time() const;  // total time spent non-idle so far (advanced)

  // --- fault support -------------------------------------------------------

  // Keeps per-job metadata so crashes can displace jobs and completions are
  // reported with their tags. Must be enabled before the first assign.
  void enable_job_tracking();
  bool job_tracking() const { return track_jobs_; }

  // Crashes the server at time `t`: advances to `t`, then moves every job
  // still queued or in service into `displaced` (in FIFO order) and empties
  // the queue. The server refuses assigns until recover(). Requires job
  // tracking (without tags a displaced job cannot be accounted for).
  void crash(double t, std::vector<DisplacedJob>& displaced);

  // Brings a crashed server back at time `t` with an empty queue.
  void recover(double t);

  bool up() const { return up_; }

  // Completions retired by advance_to since the last drain (job tracking
  // only). Callers consume and clear via std::vector::clear().
  std::vector<CompletedJob>& completions() { return completions_; }

  // Latest pending departure, or the advanced time when idle — how far the
  // clock must advance for every dispatched job to finish.
  double last_pending_departure() const {
    return departures_.empty() ? advanced_time_ : departures_.back();
  }

  // Earliest pending departure, +inf when idle — the next instant at which
  // this server's queue length changes on its own. Drives the cluster's
  // lazy-advance heap.
  double next_departure() const {
    return departures_.empty() ? std::numeric_limits<double>::infinity()
                               : departures_.front();
  }

  // --- observability -------------------------------------------------------

  // Attaches a trace sink reporting this server as `index`. Sinks are pure
  // observers (obs/trace_sink.h): attaching one never changes simulated
  // behaviour. Pass nullptr to detach.
  void set_trace(obs::TraceSink* sink, int index) {
    trace_ = sink;
    trace_index_ = index;
  }

 private:
  struct JobMeta {
    std::uint64_t tag;
    double size;
    double born;
  };

  void record(double t, int len);
  void prune(double before);

  double rate_;
  double history_window_;
  double advanced_time_ = 0.0;
  std::deque<double> departures_;  // pending departure times, ascending
  std::size_t completed_ = 0;

  // (time, queue length from `time` onward); ascending by time. Maintained
  // only when history_window_ > 0.
  std::vector<std::pair<double, int>> history_;
  std::size_t history_begin_ = 0;  // logical start (pruned prefix)

  // Busy-time accounting: accumulated across retired departures.
  double busy_accum_ = 0.0;
  double busy_since_ = -1.0;  // start of current busy period, <0 when idle

  // Fault state. meta_ parallels departures_ when tracking is on.
  bool track_jobs_ = false;
  bool up_ = true;
  std::deque<JobMeta> meta_;
  std::vector<CompletedJob> completions_;

  // Trace hooks (null when tracing is off; one predictable branch per site).
  obs::TraceSink* trace_ = nullptr;
  int trace_index_ = -1;
};

}  // namespace stale::queueing
