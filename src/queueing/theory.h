// Closed-form queueing theory used to validate the simulator and to give
// library users analytic baselines:
//   - M/M/1 mean response time (random-split baseline),
//   - M/G/1 via Pollaczek-Khinchine (deterministic / heavy-tailed jobs),
//   - M/M/c via Erlang C (the ideal central-queue lower bound the paper's
//     dispatchers approximate from stale information).
// All formulas take the per-server utilization rho in [0, 1) and express
// time in units of the mean service time (the paper's convention).
#pragma once

#include <cstddef>

namespace stale::queueing::theory {

// Mean response time (wait + service) of an M/M/1 queue: 1 / (1 - rho).
double mm1_response_time(double rho);

// Mean response time of an M/G/1 queue via Pollaczek-Khinchine:
//   E[T] = E[S] + lambda * E[S^2] / (2 (1 - rho)),
// with E[S] = 1 and `service_second_moment` = E[S^2] in service-time units.
double mg1_response_time(double rho, double service_second_moment);

// Convenience: M/D/1 (deterministic unit service, E[S^2] = 1).
double md1_response_time(double rho);

// Erlang C: probability an arriving job waits in an M/M/c system with
// per-server utilization rho (total arrival rate = c * rho, unit service).
double erlang_c(std::size_t servers, double rho);

// Mean response time of an M/M/c central-queue system (ideal JSQ-ish lower
// bound): 1 + ErlangC / (c (1 - rho)).
double mmc_response_time(std::size_t servers, double rho);

}  // namespace stale::queueing::theory
