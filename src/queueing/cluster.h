// A cluster of FIFO servers behind a dispatcher. Owns per-server state and
// exposes current and historical queue-length vectors to the staleness
// models. All operations must be invoked with non-decreasing time.
//
// Fault-aware runs (src/fault/) enable job tracking, crash/recover individual
// servers, and drain completed jobs (tag + response time) instead of trusting
// the departure time precomputed at dispatch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "queueing/fifo_server.h"

namespace stale::queueing {

class Cluster {
 public:
  // Homogeneous cluster of `n` unit-rate servers.
  Cluster(int n, double history_window = 0.0);

  // Heterogeneous cluster with explicit per-server rates (extension;
  // the paper's experiments use rate 1 everywhere).
  Cluster(std::vector<double> rates, double history_window);

  int size() const { return static_cast<int>(servers_.size()); }

  // Advances every server to time t and refreshes the cached load vector.
  void advance_to(double t);

  // Dispatches a job of `size` to `server` at time `t`. Advances the cluster
  // first. Returns the job's departure time.
  double assign(double t, int server, double job_size);

  // Queue lengths as of the last advance (valid until the next mutation).
  std::span<const int> loads() const { return loads_; }

  // Queue lengths at past time `t` (requires a history window).
  void loads_at(double t, std::vector<int>& out) const;

  const FifoServer& server(int i) const { return servers_.at(i); }

  double advanced_time() const { return advanced_time_; }
  double total_rate() const { return total_rate_; }

  // --- fault support -------------------------------------------------------

  // Turns on per-job metadata on every server (must precede any assign).
  void enable_job_tracking();

  // Tagged dispatch (requires job tracking); `born` starts the response clock.
  double assign_tagged(double t, int server, double job_size,
                       std::uint64_t tag, double born);

  // Crashes `server` at time `t`, appending its displaced jobs to
  // `displaced`. The cluster is advanced to `t` first so the crash point is
  // exact; the crashed server's load reads 0 until it recovers.
  void crash(double t, int server, std::vector<DisplacedJob>& displaced);

  // Brings a crashed server back at time `t`, empty.
  void recover(double t, int server);

  bool up(int server) const {
    return servers_.at(static_cast<std::size_t>(server)).up();
  }

  // Moves every completion retired since the last drain into `out`, in
  // server-index order (deterministic for a fixed event sequence).
  void drain_completions(std::vector<CompletedJob>& out);

  // Latest pending departure across servers (== advanced time when idle):
  // advancing to this instant retires every dispatched job.
  double latest_pending_departure() const;

  // Attaches `sink` to every server (each reporting its own index). Sinks
  // are pure observers; nullptr detaches.
  void set_trace_sink(obs::TraceSink* sink);

 private:
  std::vector<FifoServer> servers_;
  std::vector<int> loads_;
  double advanced_time_ = 0.0;
  double total_rate_ = 0.0;
};

}  // namespace stale::queueing
