// A cluster of FIFO servers behind a dispatcher. Owns per-server state and
// exposes current and historical queue-length vectors to the staleness
// models. All operations must be invoked with non-decreasing time.
//
// The cluster also maintains the level-occupancy histogram of its load
// vector incrementally (sim/level_histogram.h): every queue-length change is
// an O(1) move() on the histogram, so bucketed consumers never pay an O(n)
// recount. With enable_lazy_advance() the per-advance full-server sweep is
// replaced by a departure heap — advance_to() touches only the servers whose
// queues actually change, making large-n (10^5..10^6) simulation feasible.
// Lazy advance changes no simulated behaviour (same loads, departures, and
// histogram after every call); it is incompatible with history tracking,
// whose pruning needs the periodic sweep.
//
// Fault-aware runs (src/fault/) enable job tracking, crash/recover individual
// servers, and drain completed jobs (tag + response time) instead of trusting
// the departure time precomputed at dispatch.
#pragma once

#include <cstdint>
#include <queue>
#include <span>
#include <vector>

#include "queueing/fifo_server.h"
#include "sim/level_histogram.h"

namespace stale::queueing {

class Cluster {
 public:
  // Homogeneous cluster of `n` unit-rate servers.
  Cluster(int n, double history_window = 0.0);

  // Heterogeneous cluster with explicit per-server rates (extension;
  // the paper's experiments use rate 1 everywhere).
  Cluster(std::vector<double> rates, double history_window);

  int size() const { return static_cast<int>(servers_.size()); }

  // Advances every server to time t and refreshes the cached load vector
  // (under lazy advance: only the servers with departures <= t).
  void advance_to(double t);

  // Dispatches a job of `size` to `server` at time `t`. Advances the cluster
  // first. Returns the job's departure time.
  double assign(double t, int server, double job_size);

  // Queue lengths as of the last advance (valid until the next mutation).
  std::span<const int> loads() const { return loads_; }

  // Level-occupancy histogram of loads(), maintained incrementally.
  const sim::LevelHistogram& level_histogram() const { return histogram_; }

  // Switches advance_to() to the departure-heap path (see header comment).
  // Must be called before any assign; throws if the cluster tracks history.
  void enable_lazy_advance();

  // Queue lengths at past time `t` (requires a history window).
  void loads_at(double t, std::vector<int>& out) const;

  const FifoServer& server(int i) const { return servers_.at(i); }

  double advanced_time() const { return advanced_time_; }
  double total_rate() const { return total_rate_; }

  // --- fault support -------------------------------------------------------

  // Turns on per-job metadata on every server (must precede any assign).
  void enable_job_tracking();

  // Tagged dispatch (requires job tracking); `born` starts the response clock.
  double assign_tagged(double t, int server, double job_size,
                       std::uint64_t tag, double born);

  // Crashes `server` at time `t`, appending its displaced jobs to
  // `displaced`. The cluster is advanced to `t` first so the crash point is
  // exact; the crashed server's load reads 0 until it recovers.
  void crash(double t, int server, std::vector<DisplacedJob>& displaced);

  // Brings a crashed server back at time `t`, empty.
  void recover(double t, int server);

  bool up(int server) const {
    return servers_.at(static_cast<std::size_t>(server)).up();
  }

  // Moves every completion retired since the last drain into `out`, in
  // server-index order (deterministic for a fixed event sequence).
  void drain_completions(std::vector<CompletedJob>& out);

  // Latest pending departure across servers (== advanced time when idle):
  // advancing to this instant retires every dispatched job.
  double latest_pending_departure() const;

  // Attaches `sink` to every server (each reporting its own index). Sinks
  // are pure observers; nullptr detaches.
  void set_trace_sink(obs::TraceSink* sink);

 private:
  // Re-reads one server's length into loads_ and the histogram.
  void refresh_load(std::size_t server);

  // Re-arms the departure heap for one server (lazy mode).
  void schedule_front(std::size_t server);

  // Heap entry; min-ordered by (when, server) so pops are deterministic.
  struct DueEntry {
    double when;
    int server;
    bool operator>(const DueEntry& other) const {
      if (when != other.when) return when > other.when;
      return server > other.server;
    }
  };

  std::vector<FifoServer> servers_;
  std::vector<int> loads_;
  sim::LevelHistogram histogram_;
  double advanced_time_ = 0.0;
  double total_rate_ = 0.0;
  double history_window_ = 0.0;

  // Lazy-advance state. scheduled_[s] is the departure time currently armed
  // in the heap for server s (+inf = none); stale heap entries — superseded
  // by a pop or a crash — are recognized by mismatch and skipped.
  bool lazy_ = false;
  std::vector<double> scheduled_;
  std::priority_queue<DueEntry, std::vector<DueEntry>, std::greater<DueEntry>>
      due_;
};

}  // namespace stale::queueing
