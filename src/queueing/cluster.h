// A cluster of FIFO servers behind a dispatcher. Owns per-server state and
// exposes current and historical queue-length vectors to the staleness
// models. All operations must be invoked with non-decreasing time.
#pragma once

#include <span>
#include <vector>

#include "queueing/fifo_server.h"

namespace stale::queueing {

class Cluster {
 public:
  // Homogeneous cluster of `n` unit-rate servers.
  Cluster(int n, double history_window = 0.0);

  // Heterogeneous cluster with explicit per-server rates (extension;
  // the paper's experiments use rate 1 everywhere).
  Cluster(std::vector<double> rates, double history_window);

  int size() const { return static_cast<int>(servers_.size()); }

  // Advances every server to time t and refreshes the cached load vector.
  void advance_to(double t);

  // Dispatches a job of `size` to `server` at time `t`. Advances the cluster
  // first. Returns the job's departure time.
  double assign(double t, int server, double job_size);

  // Queue lengths as of the last advance (valid until the next mutation).
  std::span<const int> loads() const { return loads_; }

  // Queue lengths at past time `t` (requires a history window).
  void loads_at(double t, std::vector<int>& out) const;

  const FifoServer& server(int i) const { return servers_.at(i); }

  double advanced_time() const { return advanced_time_; }
  double total_rate() const { return total_rate_; }

 private:
  std::vector<FifoServer> servers_;
  std::vector<int> loads_;
  double advanced_time_ = 0.0;
  double total_rate_ = 0.0;
};

}  // namespace stale::queueing
