// Response-time metrics collection with warmup discarding, matching the
// paper's methodology: run N arrivals, ignore the first W, report the mean
// response time of the rest (plus richer percentiles for the heavy-tailed
// experiments).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/stats.h"

namespace stale::queueing {

class ResponseMetrics {
 public:
  // `warmup_jobs`: number of initial jobs whose response times are discarded.
  // `keep_samples`: when true, retains every measured response time so
  // percentiles can be computed (needed for box plots); otherwise only the
  // running summary is kept.
  explicit ResponseMetrics(std::uint64_t warmup_jobs, bool keep_samples = false);

  // Records the response time of the next finished-dispatch job. Ordering is
  // by *arrival*, matching "we use the first W of the jobs to bring the
  // system to a steady-state".
  void record(double response_time);

  // Records a job identified by its arrival index, for runs that observe
  // completions out of arrival order (fault-injected runs record at
  // completion, and crashes reorder completions): the warmup applies by
  // index, not call order, so the discarded set matches the serial path.
  void record_indexed(std::uint64_t arrival_index, double response_time);

  std::uint64_t total_jobs() const { return seen_; }
  std::uint64_t measured_jobs() const { return stats_.count(); }
  double mean_response() const { return stats_.mean(); }
  const sim::RunningStats& stats() const { return stats_; }

  // Measured samples (empty unless keep_samples was set).
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::uint64_t warmup_;
  bool keep_samples_;
  std::uint64_t seen_ = 0;
  sim::RunningStats stats_;
  std::vector<double> samples_;
};

}  // namespace stale::queueing
