#include "queueing/load_stats.h"

#include <cmath>
#include <stdexcept>

#include "check/contracts.h"

namespace stale::queueing {

LoadImbalanceStats::LoadImbalanceStats(std::uint64_t stride)
    : stride_(stride) {
  if (stride == 0) {
    throw std::invalid_argument("LoadImbalanceStats: stride must be >= 1");
  }
}

void LoadImbalanceStats::observe(std::span<const int> loads) {
  STALE_DCHECK(stride_ >= 1);
  if (++calls_ % stride_ != 0) return;
  take_sample(loads);
}

void LoadImbalanceStats::observe(const sim::LevelHistogram& histogram) {
  STALE_DCHECK(stride_ >= 1);
  if (++calls_ % stride_ != 0) return;
  take_sample(histogram);
}

void LoadImbalanceStats::take_sample(std::span<const int> loads) {
  if (loads.empty()) return;
  double sum = 0.0;
  double sum_sq = 0.0;
  int max = loads[0];
  for (int len : loads) {
    sum += len;
    sum_sq += static_cast<double>(len) * len;
    if (len > max) max = len;
  }
  const double n = static_cast<double>(loads.size());
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  // The max of a set always dominates its mean; a violation means the
  // accumulators drifted.
  STALE_DCHECK(static_cast<double>(max) >= mean);
  stddevs_.add(std::sqrt(variance > 0.0 ? variance : 0.0));
  maxima_.add(static_cast<double>(max));
  means_.add(mean);
  ++snapshots_;
}

void LoadImbalanceStats::take_sample(const sim::LevelHistogram& histogram) {
  if (histogram.empty()) return;
  STALE_DCHECK(histogram.stddev() >= 0.0 &&
               histogram.max_level() >= histogram.min_level());
  stddevs_.add(histogram.stddev());
  maxima_.add(static_cast<double>(histogram.max_level()));
  means_.add(histogram.mean());
  ++snapshots_;
}

double LoadImbalanceStats::mean_within_snapshot_stddev() const {
  return stddevs_.mean();
}

double LoadImbalanceStats::mean_snapshot_max() const { return maxima_.mean(); }

double LoadImbalanceStats::mean_queue_length() const { return means_.mean(); }

}  // namespace stale::queueing
