// Per-server liveness state machine shared by the simulator and the live
// dispatcher (ROADMAP: dynamic membership & graceful degradation).
//
// Each server walks alive -> suspect -> dead -> probation -> alive, driven
// only by what the dispatcher can actually observe: the recency of the
// server's load reports and the outcome of its own dispatches. A server
// whose last report ages past suspect_timeout is quarantined (out of every
// policy's candidate set); past evict_timeout it is evicted outright and
// probed with exponential backoff. A report from a dead server opens
// probation — it becomes a candidate again immediately, but only a run of
// probation_reports consecutive reports restores full membership, so one
// stray packet from a flapping server cannot re-aim the herd at it.
//
// The class is deliberately clock-agnostic: every method takes `now` as a
// parameter, so the simulator feeds it virtual time and the live event loop
// feeds it loop time. No wall clock, no RNG, no host state — the same
// transitions replay bit-identically in a deterministic trial.
//
// Threading contract: a Membership instance is thread-confined, never
// locked. The simulator owns one per trial (each trial runs entirely on one
// worker); the dispatcher owns one on its event-loop thread and expresses
// the confinement through its check::Serial capability — the owning pointer
// in net::Dispatcher is STALE_PT_GUARDED_BY(loop_serial_), so under clang's
// -Wthread-safety every dereference is proven to happen on the loop thread.
// The methods themselves carry no STALE_REQUIRES: the capability belongs to
// the owner, and a trial-local instance has no lock-like object at all.
//
// advance() is O(1) until the earliest pending deadline is crossed (one
// comparison against a cached lower bound), then O(n) to apply transitions
// and recompute the bound — cheap enough to call per arrival.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "health/health_config.h"
#include "obs/trace_sink.h"

namespace stale::health {

// Values match obs::MemberTraceState one to one (membership transitions are
// exported through the trace layer, which must not depend on this header).
enum class MemberState : std::uint8_t {
  kAlive,
  kSuspect,
  kDead,
  kProbation,
};

const char* member_state_name(MemberState state);

class Membership {
 public:
  // All servers start alive with a report stamped `now`. `trace` may be
  // null; when set, every transition emits TraceSink::on_membership and
  // degraded-mode crossings emit on_degraded_mode.
  Membership(int num_servers, const HealthConfig& config, double now,
             obs::TraceSink* trace = nullptr);

  // A load report (heartbeat, LOAD datagram, DONE piggyback) from `server`
  // arrived at `now`.
  void note_report(int server, double now);

  // The dispatcher observed `server` fail directly (connection refused or
  // reset, dispatch timeout). Faster than waiting out the timeouts: the
  // server goes straight to dead and the probe schedule is armed.
  void note_failure(int server, double now);

  // Applies every suspect/evict deadline crossed by `now`.
  void advance(double now);

  // True when `server` is dead and its next backoff probe is due.
  bool probe_due(int server, double now) const;

  // Records that a probe was sent at `now`; doubles the backoff (capped at
  // probe_backoff_max).
  void note_probe(int server, double now);

  // Candidate mask for DispatchContext::alive — 1 for alive and probation
  // servers, 0 for suspect and dead. Stable storage.
  std::span<const std::uint8_t> candidates() const { return candidates_; }
  int candidate_count() const { return candidate_count_; }
  double coverage() const;

  // True while coverage sits below the configured threshold (always false
  // when the threshold is off).
  bool degraded() const { return degraded_; }

  MemberState state(int server) const {
    return state_[static_cast<std::size_t>(server)];
  }
  int num_servers() const { return static_cast<int>(state_.size()); }

  // Monotone counter of state transitions; mixed into the policy cache
  // version so cached probability vectors are rebuilt whenever the candidate
  // picture changes.
  std::uint64_t transition_count() const { return transitions_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t rejoins() const { return rejoins_; }
  std::uint64_t degraded_entries() const { return degraded_entries_; }

  const HealthConfig& config() const { return config_; }

 private:
  void transition(int server, MemberState to, double now);
  void update_degraded(double now);
  void recompute_deadline();
  double deadline_of(int server) const;

  HealthConfig config_;
  obs::TraceSink* trace_ = nullptr;
  std::vector<MemberState> state_;
  std::vector<double> last_report_;
  std::vector<int> probation_count_;
  std::vector<double> next_probe_;
  std::vector<double> probe_interval_;
  std::vector<std::uint8_t> candidates_;
  int candidate_count_ = 0;
  bool degraded_ = false;
  double next_deadline_ = 0.0;  // lower bound; stale bounds only cost a scan
  std::uint64_t transitions_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t rejoins_ = 0;
  std::uint64_t degraded_entries_ = 0;
};

}  // namespace stale::health
