#include "health/churn_spec.h"

#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

namespace stale::health {

namespace {

double parse_double(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("ChurnSpec: bad number for '" + key +
                                "': " + value);
  }
  if (used != value.size() || !std::isfinite(parsed)) {
    throw std::invalid_argument("ChurnSpec: bad number for '" + key +
                                "': " + value);
  }
  return parsed;
}

int parse_int(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  long parsed = 0;
  try {
    parsed = std::stol(value, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("ChurnSpec: bad integer for '" + key +
                                "': " + value);
  }
  if (used != value.size()) {
    throw std::invalid_argument("ChurnSpec: bad integer for '" + key +
                                "': " + value);
  }
  return static_cast<int>(parsed);
}

// "2T" -> (2.0, true); "5.0" -> (5.0, false).
void parse_interval_or_time(const std::string& key, const std::string& value,
                            double& out_value, bool& out_in_intervals) {
  if (!value.empty() && (value.back() == 'T' || value.back() == 't')) {
    out_value = parse_double(key, value.substr(0, value.size() - 1));
    out_in_intervals = true;
  } else {
    out_value = parse_double(key, value);
    out_in_intervals = false;
  }
}

}  // namespace

HealthConfig ChurnSpec::resolved_health(double update_interval) const {
  HealthConfig config;
  config.suspect_timeout = suspect_in_intervals
                               ? suspect_value * update_interval
                               : suspect_value;
  config.evict_timeout =
      evict_in_intervals ? evict_value * update_interval : evict_value;
  config.probation_reports = probation_reports;
  config.probe_backoff = probe_backoff;
  config.probe_backoff_max = probe_backoff_max;
  config.coverage_threshold = coverage_threshold;
  config.fallback_policy = fallback_policy;
  config.validate();
  return config;
}

void ChurnSpec::validate() const {
  if (restart_every < 0.0 || !std::isfinite(restart_every)) {
    throw std::invalid_argument("ChurnSpec: 'restart' must be >= 0");
  }
  if (has_restarts() &&
      (restart_down <= 0.0 || !std::isfinite(restart_down))) {
    throw std::invalid_argument(
        "ChurnSpec: 'restartdown' must be > 0 when restarts are on");
  }
  if (leave_rate < 0.0 || !std::isfinite(leave_rate)) {
    throw std::invalid_argument("ChurnSpec: 'leave' must be >= 0");
  }
  if (has_leaves() && (rejoin_delay <= 0.0 || !std::isfinite(rejoin_delay))) {
    throw std::invalid_argument(
        "ChurnSpec: 'rejoin' must be > 0 when leaves are on");
  }
  if (slow < 0) {
    throw std::invalid_argument("ChurnSpec: 'slow' must be >= 0");
  }
  if (has_slow_nodes() &&
      (slow_factor <= 0.0 || slow_factor > 1.0 ||
       !std::isfinite(slow_factor))) {
    throw std::invalid_argument(
        "ChurnSpec: 'slowfactor' must be in (0, 1] when slow nodes are on");
  }
  if (suspect_value <= 0.0 || !std::isfinite(suspect_value)) {
    throw std::invalid_argument("ChurnSpec: 'suspect' must be > 0");
  }
  if (evict_value <= 0.0 || !std::isfinite(evict_value)) {
    throw std::invalid_argument("ChurnSpec: 'evict' must be > 0");
  }
  if (suspect_in_intervals == evict_in_intervals &&
      evict_value <= suspect_value) {
    throw std::invalid_argument(
        "ChurnSpec: 'evict' must exceed 'suspect'");
  }
  if (probation_reports < 1) {
    throw std::invalid_argument("ChurnSpec: 'probation' must be >= 1");
  }
  if (probe_backoff <= 0.0 || !std::isfinite(probe_backoff)) {
    throw std::invalid_argument("ChurnSpec: 'probe' must be > 0");
  }
  if (probe_backoff_max < probe_backoff || !std::isfinite(probe_backoff_max)) {
    throw std::invalid_argument("ChurnSpec: 'probemax' must be >= 'probe'");
  }
  if (coverage_threshold < 0.0 || coverage_threshold > 1.0 ||
      !std::isfinite(coverage_threshold)) {
    throw std::invalid_argument(
        "ChurnSpec: 'coverage' must be a fraction in [0, 1]");
  }
  if (fallback_policy.empty()) {
    throw std::invalid_argument("ChurnSpec: 'fallback' needs a policy");
  }
  if (max_retries < 0) {
    throw std::invalid_argument("ChurnSpec: 'retries' must be >= 0");
  }
  if (retry_backoff < 0.0 || !std::isfinite(retry_backoff)) {
    throw std::invalid_argument("ChurnSpec: 'backoff' must be >= 0");
  }
}

ChurnSpec ChurnSpec::parse(const std::string& text) {
  ChurnSpec spec;
  std::set<std::string> seen;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("ChurnSpec: expected key=value, got '" +
                                  item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    // Last-wins would make "leave=0.1,leave=0" silently disagree with what
    // the experimenter thinks they configured; duplicates are always a typo.
    if (!seen.insert(key).second) {
      throw std::invalid_argument("ChurnSpec: duplicate key '" + key + "'");
    }
    if (key == "restart") {
      spec.restart_every = parse_double(key, value);
    } else if (key == "restartdown") {
      spec.restart_down = parse_double(key, value);
    } else if (key == "leave") {
      spec.leave_rate = parse_double(key, value);
    } else if (key == "rejoin") {
      spec.rejoin_delay = parse_double(key, value);
    } else if (key == "slow") {
      spec.slow = parse_int(key, value);
    } else if (key == "slowfactor") {
      spec.slow_factor = parse_double(key, value);
    } else if (key == "semantics") {
      if (value == "lost") {
        spec.semantics = fault::CrashSemantics::kLostWork;
      } else if (value == "requeue") {
        spec.semantics = fault::CrashSemantics::kRequeue;
      } else {
        throw std::invalid_argument(
            "ChurnSpec: 'semantics' must be lost or requeue, got '" + value +
            "'");
      }
    } else if (key == "suspect") {
      parse_interval_or_time(key, value, spec.suspect_value,
                             spec.suspect_in_intervals);
    } else if (key == "evict") {
      parse_interval_or_time(key, value, spec.evict_value,
                             spec.evict_in_intervals);
    } else if (key == "probation") {
      spec.probation_reports = parse_int(key, value);
    } else if (key == "probe") {
      spec.probe_backoff = parse_double(key, value);
    } else if (key == "probemax") {
      spec.probe_backoff_max = parse_double(key, value);
    } else if (key == "coverage") {
      spec.coverage_threshold = parse_double(key, value);
    } else if (key == "fallback") {
      if (value.empty()) {
        throw std::invalid_argument("ChurnSpec: 'fallback' needs a policy");
      }
      spec.fallback_policy = value;
    } else if (key == "retries") {
      spec.max_retries = parse_int(key, value);
    } else if (key == "backoff") {
      spec.retry_backoff = parse_double(key, value);
    } else {
      throw std::invalid_argument("ChurnSpec: unknown key '" + key + "'");
    }
  }
  spec.validate();
  return spec;
}

std::string ChurnSpec::to_string() const {
  std::ostringstream out;
  const char* sep = "";
  const auto emit = [&](const std::string& piece) {
    out << sep << piece;
    sep = ",";
  };
  const auto num = [](double v) {
    std::ostringstream s;
    s << v;
    return s.str();
  };
  const auto span = [&num](double value, bool in_intervals) {
    return num(value) + (in_intervals ? "T" : "");
  };
  if (has_restarts()) {
    emit("restart=" + num(restart_every));
    emit("restartdown=" + num(restart_down));
  }
  if (has_leaves()) {
    emit("leave=" + num(leave_rate));
    emit("rejoin=" + num(rejoin_delay));
  }
  if (has_slow_nodes()) {
    emit("slow=" + std::to_string(slow));
    emit("slowfactor=" + num(slow_factor));
  }
  if (!any()) return out.str();
  emit(semantics == fault::CrashSemantics::kRequeue ? "semantics=requeue"
                                                    : "semantics=lost");
  emit("suspect=" + span(suspect_value, suspect_in_intervals));
  emit("evict=" + span(evict_value, evict_in_intervals));
  if (probation_reports != 2) {
    emit("probation=" + std::to_string(probation_reports));
  }
  if (probe_backoff != 0.5) emit("probe=" + num(probe_backoff));
  if (probe_backoff_max != 8.0) emit("probemax=" + num(probe_backoff_max));
  if (coverage_threshold > 0.0) {
    emit("coverage=" + num(coverage_threshold));
    emit("fallback=" + fallback_policy);
  }
  if (max_retries != 3 || retry_backoff != 0.1) {
    emit("retries=" + std::to_string(max_retries));
    emit("backoff=" + num(retry_backoff));
  }
  return out.str();
}

}  // namespace stale::health
