#include "health/churn_injector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "check/audit.h"

namespace stale::health {

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();
}  // namespace

ChurnInjector::ChurnInjector(const ChurnSpec& spec, int num_servers,
                             sim::Rng& parent_rng)
    : spec_(spec), churn_rng_(parent_rng.split()), num_servers_(num_servers) {
  if (num_servers <= 0) {
    throw std::invalid_argument("ChurnInjector: need at least one server");
  }
  spec_.validate();
  const auto n = static_cast<std::size_t>(num_servers);
  up_.assign(n, 1);
  up_count_ = num_servers;
  restart_at_.resize(n);
  leave_at_.resize(n);
  up_at_.assign(n, kNever);
  cause_.assign(n, Cause::kNone);
  for (std::size_t s = 0; s < n; ++s) {
    restart_at_[s] = spec_.has_restarts()
                         ? spec_.restart_every * static_cast<double>(s + 1)
                         : kNever;
    leave_at_[s] = spec_.has_leaves() ? draw_leave_gap() : kNever;
  }
}

double ChurnInjector::draw_leave_gap() {
  return -std::log(churn_rng_.next_double_open0()) / spec_.leave_rate;
}

double ChurnInjector::draw_rejoin_gap() {
  return -std::log(churn_rng_.next_double_open0()) * spec_.rejoin_delay;
}

double ChurnInjector::next_transition_time() const {
  double earliest = kNever;
  for (std::size_t s = 0; s < up_.size(); ++s) {
    if (up_[s] != 0) {
      earliest = std::min(earliest, std::min(restart_at_[s], leave_at_[s]));
    } else {
      earliest = std::min(earliest, up_at_[s]);
    }
  }
  return earliest;
}

void ChurnInjector::apply_down(queueing::Cluster& cluster, double when,
                               int server, const RequeueFn& requeue) {
  const auto s = static_cast<std::size_t>(server);
  displaced_scratch_.clear();
  cluster.crash(when, server, displaced_scratch_);
  up_[s] = 0;
  --up_count_;
  ++stats_.crashes;
  [[maybe_unused]] const std::uint64_t requeued_before = stats_.jobs_requeued;
  [[maybe_unused]] const std::uint64_t lost_before = stats_.jobs_lost;
  if (spec_.semantics == fault::CrashSemantics::kRequeue && requeue) {
    for (const queueing::DisplacedJob& job : displaced_scratch_) {
      if (requeue(when, job)) {
        ++stats_.jobs_requeued;
      } else {
        ++stats_.jobs_lost;
      }
    }
  } else {
    stats_.jobs_lost += displaced_scratch_.size();
  }
  STALE_AUDIT(check::audit_displaced_conserved(
      displaced_scratch_.size(), stats_.jobs_requeued - requeued_before,
      stats_.jobs_lost - lost_before, "ChurnInjector::apply_down"));
  ++transitions_;
}

void ChurnInjector::apply_up(queueing::Cluster& cluster, double when,
                             int server) {
  const auto s = static_cast<std::size_t>(server);
  cluster.recover(when, server);
  up_[s] = 1;
  ++up_count_;
  ++stats_.recoveries;
  up_at_[s] = kNever;
  // Re-arm whichever schedule caused this downtime; the other one kept its
  // pending instant (a restart scheduled during a leave still happens, just
  // not retroactively).
  if (cause_[s] == Cause::kRestart) {
    restart_at_[s] +=
        spec_.restart_every * static_cast<double>(num_servers_);
  } else if (spec_.has_leaves()) {
    leave_at_[s] = when + draw_leave_gap();
  }
  cause_[s] = Cause::kNone;
  // A restart instant that elapsed while the server was down for another
  // reason is folded into the downtime it overlapped.
  while (restart_at_[s] <= when) {
    restart_at_[s] +=
        spec_.restart_every * static_cast<double>(num_servers_);
  }
  if (spec_.has_leaves() && leave_at_[s] <= when) {
    leave_at_[s] = when + draw_leave_gap();
  }
  ++transitions_;
}

void ChurnInjector::advance_to(queueing::Cluster& cluster, double t,
                               const RequeueFn& requeue) {
  if (!spec_.has_restarts() && !spec_.has_leaves()) return;
  while (true) {
    // Earliest pending transition (ties broken by server index: the min-scan
    // keeps the first minimum, so the order is deterministic).
    int which = -1;
    bool down_event = false;
    double when = t;
    for (std::size_t s = 0; s < up_.size(); ++s) {
      const double pending =
          up_[s] != 0 ? std::min(restart_at_[s], leave_at_[s]) : up_at_[s];
      if (pending <= when && (which < 0 || pending < when)) {
        which = static_cast<int>(s);
        when = pending;
        down_event = up_[s] != 0;
      }
    }
    if (which < 0) break;
    const auto s = static_cast<std::size_t>(which);
    if (down_event) {
      cause_[s] =
          restart_at_[s] <= leave_at_[s] ? Cause::kRestart : Cause::kLeave;
      up_at_[s] = when + (cause_[s] == Cause::kRestart ? spec_.restart_down
                                                       : draw_rejoin_gap());
      apply_down(cluster, when, which, requeue);
    } else {
      apply_up(cluster, when, which);
    }
    STALE_AUDIT(check::audit_fault_liveness(
        up_, up_count_, stats_.crashes, stats_.recoveries, transitions_,
        "ChurnInjector::advance_to"));
  }
}

}  // namespace stale::health
