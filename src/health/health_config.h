// Resolved (absolute-time) configuration of the health state machine.
//
// ChurnSpec carries the operator-facing knobs, some of which are expressed
// in multiples of the update interval T ("2T"); resolved_health() turns them
// into the absolute timeouts Membership consumes. The same struct configures
// both stacks: the simulator resolves against the board's update interval,
// the live dispatcher against its backend report period.
#pragma once

#include <cmath>
#include <stdexcept>
#include <string>

namespace stale::health {

struct HealthConfig {
  // A server whose last report is older than suspect_timeout is quarantined
  // (removed from every policy's candidate set) but not yet written off.
  double suspect_timeout = 0.0;

  // A server silent for evict_timeout is evicted: declared dead, probed with
  // exponential backoff, and only readmitted through probation.
  double evict_timeout = 0.0;

  // Reports a dead server must deliver before it is fully alive again. The
  // first report moves it dead -> probation (a candidate again); this many
  // reports close the loop probation -> alive.
  int probation_reports = 2;

  // Probe schedule for dead servers: first probe after probe_backoff, then
  // doubling up to probe_backoff_max between attempts.
  double probe_backoff = 0.5;
  double probe_backoff_max = 8.0;

  // Degraded mode: when the candidate fraction drops below this threshold
  // the dispatcher abandons board-driven policies for fallback_policy until
  // coverage recovers. <= 0 disables degraded mode.
  double coverage_threshold = 0.0;
  std::string fallback_policy = "random";

  bool enabled() const { return suspect_timeout > 0.0; }

  void validate() const {
    if (!std::isfinite(suspect_timeout) || suspect_timeout < 0.0) {
      throw std::invalid_argument("HealthConfig: suspect_timeout must be >= 0");
    }
    if (!std::isfinite(evict_timeout) || evict_timeout < 0.0) {
      throw std::invalid_argument("HealthConfig: evict_timeout must be >= 0");
    }
    if (enabled() && evict_timeout <= suspect_timeout) {
      throw std::invalid_argument(
          "HealthConfig: evict_timeout must exceed suspect_timeout");
    }
    if (probation_reports < 1) {
      throw std::invalid_argument(
          "HealthConfig: probation_reports must be >= 1");
    }
    if (!std::isfinite(probe_backoff) || probe_backoff <= 0.0) {
      throw std::invalid_argument("HealthConfig: probe_backoff must be > 0");
    }
    if (!std::isfinite(probe_backoff_max) ||
        probe_backoff_max < probe_backoff) {
      throw std::invalid_argument(
          "HealthConfig: probe_backoff_max must be >= probe_backoff");
    }
    if (!std::isfinite(coverage_threshold) || coverage_threshold < 0.0 ||
        coverage_threshold > 1.0) {
      throw std::invalid_argument(
          "HealthConfig: coverage_threshold must be in [0, 1]");
    }
    if (fallback_policy.empty()) {
      throw std::invalid_argument("HealthConfig: fallback_policy is empty");
    }
  }
};

}  // namespace stale::health
