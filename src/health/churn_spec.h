// Declarative description of the membership churn injected into one run.
//
// A spec bundles the churn processes (rolling restarts, per-server Poisson
// leave/rejoin, permanently slow nodes) with the health-subsystem knobs the
// dispatcher uses to survive them (suspicion/eviction timeouts, probation,
// probe backoff, degraded-mode coverage threshold, bounded dispatch retry).
// Specs parse from a compact comma-separated string so they fit in one CLI
// flag or sweep cell:
//
//   restart=5,restartdown=0.5,leave=0.01,rejoin=1,slow=2,slowfactor=0.5,
//   semantics=requeue,suspect=2T,evict=4T,probation=2,probe=0.5,probemax=8,
//   coverage=0.5,fallback=random,retries=3,backoff=0.1
//
// All keys are optional; an empty spec means "no churn". `suspect` and
// `evict` accept either an absolute time ("5.0") or a multiple of the update
// interval ("2T"), resolved once T is known via resolved_health().
#pragma once

#include <string>

#include "fault/fault_spec.h"
#include "health/health_config.h"

namespace stale::health {

struct ChurnSpec {
  // Rolling restart: server s is taken down at restart_every * (s + 1) and
  // again every n * restart_every after that, staying down restart_down each
  // time. 0 disables the schedule.
  double restart_every = 0.0;
  double restart_down = 0.5;

  // Per-server Poisson leave process: while up, time-to-leave ~
  // Exp(leave_rate); a departed server rejoins after ~ Exp(rejoin_delay).
  // 0 disables leaves.
  double leave_rate = 0.0;
  double rejoin_delay = 1.0;

  // The last `slow` servers run at slow_factor times the base service rate
  // (permanently degraded nodes, never evicted by the churn schedule).
  int slow = 0;
  double slow_factor = 0.5;

  // What happens to jobs in flight on a departing server.
  fault::CrashSemantics semantics = fault::CrashSemantics::kRequeue;

  // Health state machine knobs ("T" forms are multiples of the update
  // interval; see HealthConfig for semantics).
  double suspect_value = 2.0;
  bool suspect_in_intervals = true;
  double evict_value = 4.0;
  bool evict_in_intervals = true;
  int probation_reports = 2;
  double probe_backoff = 0.5;
  double probe_backoff_max = 8.0;
  double coverage_threshold = 0.0;
  std::string fallback_policy = "random";

  // Bounded retry when dispatch hits a server the dispatcher then discovers
  // is down: up to max_retries re-picks, the k-th retry costing
  // retry_backoff * 2^(k-1) of response-time penalty. A job that exhausts
  // its retries is dropped (counted, never completes).
  int max_retries = 3;
  double retry_backoff = 0.1;

  bool has_restarts() const { return restart_every > 0.0; }
  bool has_leaves() const { return leave_rate > 0.0; }
  bool has_slow_nodes() const { return slow > 0; }
  bool any() const {
    return has_restarts() || has_leaves() || has_slow_nodes();
  }

  // Absolute-time health configuration for a run with update interval T.
  HealthConfig resolved_health(double update_interval) const;

  // Throws std::invalid_argument on out-of-range fields.
  void validate() const;

  // Parses the comma-separated key=value format above. Unknown keys,
  // duplicate keys, and malformed values throw std::invalid_argument naming
  // the offender.
  static ChurnSpec parse(const std::string& text);

  // Round-trips through parse(); "" for a default (churn-free) spec.
  std::string to_string() const;
};

}  // namespace stale::health
