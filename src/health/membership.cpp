#include "health/membership.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace stale::health {

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();

bool is_candidate(MemberState state) {
  return state == MemberState::kAlive || state == MemberState::kProbation;
}
}  // namespace

const char* member_state_name(MemberState state) {
  switch (state) {
    case MemberState::kAlive:
      return "alive";
    case MemberState::kSuspect:
      return "suspect";
    case MemberState::kDead:
      return "dead";
    case MemberState::kProbation:
      return "probation";
  }
  throw std::logic_error("member_state_name: bad enum");
}

Membership::Membership(int num_servers, const HealthConfig& config,
                       double now, obs::TraceSink* trace)
    : config_(config), trace_(trace) {
  if (num_servers <= 0) {
    throw std::invalid_argument("Membership: need at least one server");
  }
  config_.validate();
  if (!config_.enabled()) {
    throw std::invalid_argument(
        "Membership: suspect_timeout must be > 0 (health disabled)");
  }
  const auto n = static_cast<std::size_t>(num_servers);
  state_.assign(n, MemberState::kAlive);
  last_report_.assign(n, now);
  probation_count_.assign(n, 0);
  next_probe_.assign(n, kNever);
  probe_interval_.assign(n, config_.probe_backoff);
  candidates_.assign(n, 1);
  candidate_count_ = num_servers;
  next_deadline_ = now + config_.suspect_timeout;
}

void Membership::transition(int server, MemberState to, double now) {
  const auto s = static_cast<std::size_t>(server);
  const MemberState from = state_[s];
  if (from == to) return;
  state_[s] = to;
  ++transitions_;
  if (to == MemberState::kDead) ++evictions_;
  if (from == MemberState::kProbation && to == MemberState::kAlive) {
    ++rejoins_;
  }
  const std::uint8_t candidate = is_candidate(to) ? 1 : 0;
  if (candidate != candidates_[s]) {
    candidates_[s] = candidate;
    candidate_count_ += candidate != 0 ? 1 : -1;
  }
  if (to == MemberState::kDead) {
    probe_interval_[s] = config_.probe_backoff;
    next_probe_[s] = now + probe_interval_[s];
  } else {
    next_probe_[s] = kNever;
  }
  if (to == MemberState::kProbation) {
    probation_count_[s] = 0;
  }
  if (trace_ != nullptr) {
    trace_->on_membership(now, server,
                          static_cast<obs::MemberTraceState>(from),
                          static_cast<obs::MemberTraceState>(to));
  }
  update_degraded(now);
}

void Membership::update_degraded(double now) {
  const bool below = config_.coverage_threshold > 0.0 &&
                     coverage() < config_.coverage_threshold;
  if (below == degraded_) return;
  degraded_ = below;
  if (below) ++degraded_entries_;
  if (trace_ != nullptr) {
    trace_->on_degraded_mode(now, below, coverage());
  }
}

double Membership::coverage() const {
  return static_cast<double>(candidate_count_) /
         static_cast<double>(state_.size());
}

void Membership::note_report(int server, double now) {
  const auto s = static_cast<std::size_t>(server);
  last_report_[s] = now;
  switch (state_[s]) {
    case MemberState::kAlive:
      break;
    case MemberState::kSuspect:
      transition(server, MemberState::kAlive, now);
      break;
    case MemberState::kDead:
      transition(server, MemberState::kProbation, now);
      probation_count_[s] = 1;
      if (probation_count_[s] >= config_.probation_reports) {
        transition(server, MemberState::kAlive, now);
      }
      break;
    case MemberState::kProbation:
      ++probation_count_[s];
      if (probation_count_[s] >= config_.probation_reports) {
        transition(server, MemberState::kAlive, now);
      }
      break;
  }
}

void Membership::note_failure(int server, double now) {
  const auto s = static_cast<std::size_t>(server);
  if (state_[s] == MemberState::kDead) return;
  transition(server, MemberState::kDead, now);
}

void Membership::advance(double now) {
  if (now < next_deadline_) return;
  for (std::size_t i = 0; i < state_.size(); ++i) {
    const double age = now - last_report_[i];
    switch (state_[i]) {
      case MemberState::kAlive:
      case MemberState::kProbation:
        // A probation server that stops reporting falls straight back to
        // dead: it never regained the benefit of the suspect grace state.
        if (age >= config_.evict_timeout ||
            (state_[i] == MemberState::kProbation &&
             age >= config_.suspect_timeout)) {
          transition(static_cast<int>(i), MemberState::kDead, now);
        } else if (age >= config_.suspect_timeout &&
                   state_[i] == MemberState::kAlive) {
          transition(static_cast<int>(i), MemberState::kSuspect, now);
        }
        break;
      case MemberState::kSuspect:
        if (age >= config_.evict_timeout) {
          transition(static_cast<int>(i), MemberState::kDead, now);
        }
        break;
      case MemberState::kDead:
        break;
    }
  }
  recompute_deadline();
}

double Membership::deadline_of(int server) const {
  const auto s = static_cast<std::size_t>(server);
  switch (state_[s]) {
    case MemberState::kAlive:
      return last_report_[s] + config_.suspect_timeout;
    case MemberState::kProbation:
      return last_report_[s] + config_.suspect_timeout;
    case MemberState::kSuspect:
      return last_report_[s] + config_.evict_timeout;
    case MemberState::kDead:
      return kNever;
  }
  throw std::logic_error("Membership: bad state");
}

void Membership::recompute_deadline() {
  double earliest = kNever;
  for (std::size_t i = 0; i < state_.size(); ++i) {
    earliest = std::min(earliest, deadline_of(static_cast<int>(i)));
  }
  next_deadline_ = earliest;
}

bool Membership::probe_due(int server, double now) const {
  const auto s = static_cast<std::size_t>(server);
  return state_[s] == MemberState::kDead && now >= next_probe_[s];
}

void Membership::note_probe(int server, double now) {
  const auto s = static_cast<std::size_t>(server);
  if (state_[s] != MemberState::kDead) return;
  probe_interval_[s] =
      std::min(probe_interval_[s] * 2.0, config_.probe_backoff_max);
  next_probe_[s] = now + probe_interval_[s];
}

}  // namespace stale::health
