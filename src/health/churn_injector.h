// Deterministic, seed-reproducible membership churn for one simulation
// trial: the ground truth the health subsystem has to discover through stale
// reports.
//
// Two churn processes compose, per server:
//   * rolling restarts — server s goes down at restart_every * (s + 1) and
//     every n * restart_every after that, staying down restart_down each
//     time (the classic fleet-wide rolling deploy);
//   * Poisson leave/rejoin — while up, time-to-leave ~ Exp(leave_rate);
//     while down, time-to-rejoin ~ Exp(rejoin_delay).
//
// The injector mirrors fault::FaultInjector's contract: transitions are
// applied in global time order by advance_to(), which takes servers down or
// up in the cluster, tallies fault::FaultStats, and hands displaced jobs to
// a requeue callback (requeue semantics) or counts them lost. It draws from
// exactly one RNG stream split off the trial engine (a churn-free spec
// consumes no randomness), so enabling churn never perturbs other draws.
//
// Deliberately, the injector never talks to Membership: the dispatcher's
// health view must be earned from report recency and dispatch failures, the
// same way the live service earns it from packets.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault_injector.h"
#include "fault/fault_stats.h"
#include "health/churn_spec.h"
#include "queueing/cluster.h"
#include "sim/rng.h"

namespace stale::health {

class ChurnInjector {
 public:
  using RequeueFn = fault::FaultInjector::RequeueFn;

  // Splits one private stream off `parent_rng` (exactly one split() call,
  // independent of the spec).
  ChurnInjector(const ChurnSpec& spec, int num_servers, sim::Rng& parent_rng);

  // Applies every down/up transition with time <= t, in time order.
  // `requeue` may be empty under lost-work semantics.
  void advance_to(queueing::Cluster& cluster, double t,
                  const RequeueFn& requeue);

  // Time of the earliest pending transition (+inf when churn is off).
  double next_transition_time() const;

  // Ground-truth liveness (1 = actually up) — what the cluster would tell an
  // oracle. The dispatcher's Membership view lags this by design.
  std::span<const std::uint8_t> up() const { return up_; }
  int up_count() const { return up_count_; }

  std::uint64_t transition_count() const { return transitions_; }

  const ChurnSpec& spec() const { return spec_; }
  fault::FaultStats& stats() { return stats_; }
  const fault::FaultStats& stats() const { return stats_; }

 private:
  double draw_leave_gap();
  double draw_rejoin_gap();
  void apply_down(queueing::Cluster& cluster, double when, int server,
                  const RequeueFn& requeue);
  void apply_up(queueing::Cluster& cluster, double when, int server);

  // Cause of the pending or in-progress downtime of a server.
  enum class Cause : std::uint8_t { kNone, kRestart, kLeave };

  ChurnSpec spec_;
  sim::Rng churn_rng_;
  int num_servers_ = 0;
  std::vector<std::uint8_t> up_;
  std::vector<double> restart_at_;  // next scheduled rolling-restart down
  std::vector<double> leave_at_;    // next Poisson leave (while up)
  std::vector<double> up_at_;       // pending recovery (+inf while up)
  std::vector<Cause> cause_;
  int up_count_ = 0;
  std::uint64_t transitions_ = 0;
  fault::FaultStats stats_;
  std::vector<queueing::DisplacedJob> displaced_scratch_;
};

}  // namespace stale::health
