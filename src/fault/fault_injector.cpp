#include "fault/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "check/audit.h"

namespace stale::fault {

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();
}  // namespace

FaultInjector::FaultInjector(const FaultSpec& spec, int num_servers,
                             sim::Rng& parent_rng)
    : spec_(spec),
      crash_rng_(parent_rng.split()),
      loss_rng_(parent_rng.split()),
      delay_rng_(parent_rng.split()),
      estimator_rng_(parent_rng.split()) {
  if (num_servers <= 0) {
    throw std::invalid_argument("FaultInjector: need at least one server");
  }
  spec_.validate();
  alive_.assign(static_cast<std::size_t>(num_servers), 1);
  alive_count_ = num_servers;
  next_transition_.resize(static_cast<std::size_t>(num_servers));
  for (double& next : next_transition_) {
    next = spec_.has_crashes() ? draw_uptime() : kNever;
  }
}

double FaultInjector::draw_uptime() {
  return -std::log(crash_rng_.next_double_open0()) / spec_.crash_rate;
}

double FaultInjector::draw_downtime() {
  return -std::log(crash_rng_.next_double_open0()) * spec_.mean_downtime;
}

void FaultInjector::advance_to(queueing::Cluster& cluster, double t,
                               const RequeueFn& requeue) {
  if (!spec_.has_crashes()) return;
  while (true) {
    // Earliest pending transition (ties broken by server index: the min-scan
    // keeps the first minimum, so the order is deterministic).
    int which = -1;
    double when = t;
    for (std::size_t i = 0; i < next_transition_.size(); ++i) {
      if (next_transition_[i] <= when) {
        if (which < 0 || next_transition_[i] < when) {
          which = static_cast<int>(i);
          when = next_transition_[i];
        }
      }
    }
    if (which < 0) break;
    const auto s = static_cast<std::size_t>(which);
    if (alive_[s] != 0) {
      displaced_scratch_.clear();
      cluster.crash(when, which, displaced_scratch_);
      alive_[s] = 0;
      --alive_count_;
      ++stats_.crashes;
      [[maybe_unused]] const std::uint64_t requeued_before =
          stats_.jobs_requeued;
      [[maybe_unused]] const std::uint64_t lost_before = stats_.jobs_lost;
      if (spec_.semantics == CrashSemantics::kRequeue && requeue) {
        for (const queueing::DisplacedJob& job : displaced_scratch_) {
          if (requeue(when, job)) {
            ++stats_.jobs_requeued;
          } else {
            ++stats_.jobs_lost;
          }
        }
      } else {
        stats_.jobs_lost += displaced_scratch_.size();
      }
      STALE_AUDIT(check::audit_displaced_conserved(
          displaced_scratch_.size(),
          stats_.jobs_requeued - requeued_before,
          stats_.jobs_lost - lost_before, "FaultInjector::advance_to"));
      next_transition_[s] = when + draw_downtime();
    } else {
      cluster.recover(when, which);
      alive_[s] = 1;
      ++alive_count_;
      ++stats_.recoveries;
      next_transition_[s] = when + draw_uptime();
    }
    ++transitions_;
    STALE_AUDIT(check::audit_fault_liveness(alive_, alive_count_,
                                            stats_.crashes, stats_.recoveries,
                                            transitions_,
                                            "FaultInjector::advance_to"));
  }
}

double FaultInjector::next_transition_time() const {
  double earliest = kNever;
  for (double next : next_transition_) earliest = std::min(earliest, next);
  return earliest;
}

bool FaultInjector::drop_refresh() {
  if (spec_.update_loss <= 0.0) return false;
  const bool dropped = loss_rng_.next_double() < spec_.update_loss;
  if (dropped) ++stats_.updates_lost;
  return dropped;
}

double FaultInjector::refresh_delay() {
  if (spec_.update_extra_delay <= 0.0) return 0.0;
  ++stats_.updates_delayed;
  return -std::log(delay_rng_.next_double_open0()) * spec_.update_extra_delay;
}

bool FaultInjector::estimator_drop() {
  if (spec_.estimator_dropout <= 0.0) return false;
  const bool dropped = estimator_rng_.next_double() < spec_.estimator_dropout;
  if (dropped) ++stats_.estimator_drops;
  return dropped;
}

}  // namespace stale::fault
