#include "fault/hardened_policy.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "fault/fault_spec.h"
#include "policy/policy_factory.h"

namespace stale::fault {

HardenedPolicy::HardenedPolicy(policy::PolicyPtr inner, double max_staleness,
                               policy::PolicyPtr fallback, FaultStats* stats)
    : inner_(std::move(inner)),
      max_staleness_(max_staleness),
      fallback_(std::move(fallback)),
      stats_(stats) {
  if (!inner_ || !fallback_) {
    throw std::invalid_argument("HardenedPolicy: null policy");
  }
  if (std::isnan(max_staleness_) || max_staleness_ <= 0.0) {
    throw std::invalid_argument("HardenedPolicy: cutoff must be > 0");
  }
}

int HardenedPolicy::select(const policy::DispatchContext& context,
                           sim::Rng& rng) {
  if (context.age > max_staleness_) {
    if (stats_ != nullptr) ++stats_->stale_fallbacks;
    return fallback_->select(context, rng);
  }
  return inner_->select(context, rng);
}

policy::PolicyPtr harden_policy(policy::PolicyPtr inner, const FaultSpec& spec,
                                double update_interval, FaultStats* stats) {
  const double cutoff = spec.resolved_cutoff(update_interval);
  if (std::isinf(cutoff)) return inner;
  return std::make_unique<HardenedPolicy>(
      std::move(inner), cutoff, policy::make_policy(spec.fallback_policy),
      stats);
}

}  // namespace stale::fault
