// Deterministic, seed-reproducible fault injection for one simulation trial.
//
// The injector owns four independent RNG streams split from the trial's
// engine — crash schedule, refresh loss, refresh delay, estimator dropout —
// so enabling one fault class never perturbs the draws of another, and a
// fault-free configuration consumes no randomness at all (bit-identical to a
// run without the fault layer).
//
// Crash/recovery is a per-server alternating renewal process: while up, time
// to crash ~ Exp(crash_rate); while down, time to recovery ~
// Exp(1 / mean_downtime). Transitions are applied in global time order by
// advance_to(), which crashes/recovers servers in the cluster, tallies
// FaultStats, and hands displaced jobs to a requeue callback (requeue
// semantics) or counts them lost (lost-work semantics).
//
// The injector also implements loadinfo::RefreshFaults, so the three
// information models consult the same seeded streams for update loss and
// extra delay.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "fault/fault_spec.h"
#include "fault/fault_stats.h"
#include "loadinfo/refresh_faults.h"
#include "queueing/cluster.h"
#include "sim/rng.h"

namespace stale::fault {

class FaultInjector final : public loadinfo::RefreshFaults {
 public:
  // Called at the crash instant for each displaced job under requeue
  // semantics; the callee re-dispatches it (and must not advance the cluster
  // past the crash time). Returns false when re-dispatch was impossible
  // (e.g. no server alive), in which case the job counts as lost.
  using RequeueFn =
      std::function<bool(double when, const queueing::DisplacedJob& job)>;

  // Splits the injector's private streams off `parent_rng` (which advances by
  // exactly four split() calls, independent of the spec).
  FaultInjector(const FaultSpec& spec, int num_servers, sim::Rng& parent_rng);

  // Applies every crash/recovery transition with time <= t, in time order.
  // `requeue` may be empty under lost-work semantics.
  void advance_to(queueing::Cluster& cluster, double t,
                  const RequeueFn& requeue);

  // Time of the earliest pending transition (+inf when crashes are off).
  // Drivers interleave board syncs with transitions in global time order:
  // sync the boards up to this instant, then advance the injector past it.
  double next_transition_time() const;

  // Dispatcher-known liveness (1 = up). Stable storage for DispatchContext.
  std::span<const std::uint8_t> alive() const { return alive_; }

  // Count of servers currently up.
  int alive_count() const { return alive_count_; }

  // Monotone counter of crash/recovery transitions; mixed into the policy
  // cache version so cached probability vectors are rebuilt whenever the
  // liveness picture changes.
  std::uint64_t transition_count() const { return transitions_; }

  // loadinfo::RefreshFaults:
  bool drop_refresh() override;
  double refresh_delay() override;

  // True when this arrival's sample never reaches the rate estimator.
  bool estimator_drop();

  const FaultSpec& spec() const { return spec_; }
  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }

 private:
  double draw_uptime();
  double draw_downtime();

  FaultSpec spec_;
  sim::Rng crash_rng_;
  sim::Rng loss_rng_;
  sim::Rng delay_rng_;
  sim::Rng estimator_rng_;
  std::vector<double> next_transition_;  // per server; +inf when crashes off
  std::vector<std::uint8_t> alive_;
  int alive_count_ = 0;
  std::uint64_t transitions_ = 0;
  FaultStats stats_;
  std::vector<queueing::DisplacedJob> displaced_scratch_;
};

}  // namespace stale::fault
