#include "fault/fault_spec.h"

#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

namespace stale::fault {

namespace {

double parse_double(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultSpec: bad number for '" + key +
                                "': " + value);
  }
  if (used != value.size() || !std::isfinite(parsed)) {
    throw std::invalid_argument("FaultSpec: bad number for '" + key +
                                "': " + value);
  }
  return parsed;
}

int parse_int(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  long parsed = 0;
  try {
    parsed = std::stol(value, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultSpec: bad integer for '" + key +
                                "': " + value);
  }
  if (used != value.size()) {
    throw std::invalid_argument("FaultSpec: bad integer for '" + key +
                                "': " + value);
  }
  return static_cast<int>(parsed);
}

void require_probability(const std::string& key, double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("FaultSpec: '" + key +
                                "' must be a probability in [0, 1]");
  }
}

}  // namespace

double FaultSpec::resolved_cutoff(double update_interval) const {
  if (cutoff_value <= 0.0) return std::numeric_limits<double>::infinity();
  return cutoff_in_intervals ? cutoff_value * update_interval : cutoff_value;
}

void FaultSpec::validate() const {
  if (crash_rate < 0.0 || !std::isfinite(crash_rate)) {
    throw std::invalid_argument("FaultSpec: 'crash' must be >= 0");
  }
  if (has_crashes() && (mean_downtime <= 0.0 || !std::isfinite(mean_downtime))) {
    throw std::invalid_argument(
        "FaultSpec: 'down' (mean downtime) must be > 0 when crashes are on");
  }
  require_probability("loss", update_loss);
  require_probability("estdrop", estimator_dropout);
  if (update_extra_delay < 0.0 || !std::isfinite(update_extra_delay)) {
    throw std::invalid_argument("FaultSpec: 'delay' must be >= 0");
  }
  if (!std::isfinite(cutoff_value) || cutoff_value < 0.0) {
    throw std::invalid_argument("FaultSpec: 'cutoff' must be >= 0");
  }
  if (max_retries < 0) {
    throw std::invalid_argument("FaultSpec: 'retries' must be >= 0");
  }
  if (retry_backoff < 0.0 || !std::isfinite(retry_backoff)) {
    throw std::invalid_argument("FaultSpec: 'backoff' must be >= 0");
  }
}

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  std::set<std::string> seen;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("FaultSpec: expected key=value, got '" +
                                  item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    // Last-wins would make "loss=0.1,loss=0" silently disagree with what the
    // experimenter thinks they configured; duplicates are always a typo.
    if (!seen.insert(key).second) {
      throw std::invalid_argument("FaultSpec: duplicate key '" + key + "'");
    }
    if (key == "crash") {
      spec.crash_rate = parse_double(key, value);
    } else if (key == "down") {
      spec.mean_downtime = parse_double(key, value);
    } else if (key == "semantics") {
      if (value == "lost") {
        spec.semantics = CrashSemantics::kLostWork;
      } else if (value == "requeue") {
        spec.semantics = CrashSemantics::kRequeue;
      } else {
        throw std::invalid_argument(
            "FaultSpec: 'semantics' must be lost or requeue, got '" + value +
            "'");
      }
    } else if (key == "loss") {
      spec.update_loss = parse_double(key, value);
    } else if (key == "delay") {
      spec.update_extra_delay = parse_double(key, value);
    } else if (key == "estdrop") {
      spec.estimator_dropout = parse_double(key, value);
    } else if (key == "cutoff") {
      if (!value.empty() && (value.back() == 'T' || value.back() == 't')) {
        spec.cutoff_value =
            parse_double(key, value.substr(0, value.size() - 1));
        spec.cutoff_in_intervals = true;
      } else {
        spec.cutoff_value = parse_double(key, value);
        spec.cutoff_in_intervals = false;
      }
    } else if (key == "fallback") {
      if (value.empty()) {
        throw std::invalid_argument("FaultSpec: 'fallback' needs a policy");
      }
      spec.fallback_policy = value;
    } else if (key == "retries") {
      spec.max_retries = parse_int(key, value);
    } else if (key == "backoff") {
      spec.retry_backoff = parse_double(key, value);
    } else {
      throw std::invalid_argument("FaultSpec: unknown key '" + key + "'");
    }
  }
  spec.validate();
  return spec;
}

std::string FaultSpec::to_string() const {
  std::ostringstream out;
  const char* sep = "";
  const auto emit = [&](const std::string& piece) {
    out << sep << piece;
    sep = ",";
  };
  const auto num = [](double v) {
    std::ostringstream s;
    s << v;
    return s.str();
  };
  if (crash_rate > 0.0) {
    emit("crash=" + num(crash_rate));
    emit("down=" + num(mean_downtime));
    emit(semantics == CrashSemantics::kRequeue ? "semantics=requeue"
                                               : "semantics=lost");
  }
  if (update_loss > 0.0) emit("loss=" + num(update_loss));
  if (update_extra_delay > 0.0) emit("delay=" + num(update_extra_delay));
  if (estimator_dropout > 0.0) emit("estdrop=" + num(estimator_dropout));
  if (cutoff_value > 0.0) {
    emit("cutoff=" + num(cutoff_value) + (cutoff_in_intervals ? "T" : ""));
    emit("fallback=" + fallback_policy);
  }
  if (any() && (max_retries != 3 || retry_backoff != 0.1)) {
    emit("retries=" + std::to_string(max_retries));
    emit("backoff=" + num(retry_backoff));
  }
  return out.str();
}

}  // namespace stale::fault
