// Declarative description of the faults injected into one experiment run.
//
// A spec bundles the fault processes (server crash/recovery, load-update loss
// and extra delay, rate-estimator dropout) with the hardening knobs the
// dispatcher uses to survive them (staleness cutoff + fallback policy,
// bounded retry-with-backoff). Specs parse from a compact comma-separated
// string so they fit in one CLI flag or sweep cell:
//
//   crash=0.01,down=5,semantics=requeue,loss=0.2,delay=0.5,estdrop=0.1,
//   cutoff=2T,fallback=random,retries=3,backoff=0.1
//
// All keys are optional; an empty spec means "no faults". `cutoff` accepts
// either an absolute time ("5.0") or a multiple of the update interval
// ("2T"), resolved by the driver once T is known.
#pragma once

#include <string>

namespace stale::fault {

enum class CrashSemantics {
  kLostWork,  // jobs on a crashed server vanish (counted, never complete)
  kRequeue,   // jobs restart their full service demand on another server
};

struct FaultSpec {
  // Per-server crash process: while up, time-to-crash ~ Exp(crash_rate);
  // while down, time-to-recovery ~ Exp(1 / mean_downtime). crash_rate == 0
  // disables crashes entirely.
  double crash_rate = 0.0;
  double mean_downtime = 1.0;
  CrashSemantics semantics = CrashSemantics::kLostWork;

  // Probability each load refresh (board phase, heartbeat, or per-request
  // view pull) is silently lost.
  double update_loss = 0.0;

  // Mean of an exponential extra delay added to each surviving refresh
  // (0 = no extra delay).
  double update_extra_delay = 0.0;

  // Probability an arrival sample never reaches the rate estimator.
  double estimator_dropout = 0.0;

  // Staleness cutoff: when the information age a request sees exceeds the
  // cutoff, the dispatcher downgrades to `fallback_policy`. cutoff_value <= 0
  // means no cutoff. When cutoff_in_intervals is true the value is a multiple
  // of the update interval T ("2T"); otherwise absolute simulated time.
  double cutoff_value = 0.0;
  bool cutoff_in_intervals = false;
  std::string fallback_policy = "random";

  // Bounded retry when dispatch hits a server the dispatcher then discovers
  // is down: up to max_retries re-picks, the k-th retry costing
  // retry_backoff * 2^(k-1) of response-time penalty. A job that exhausts its
  // retries is dropped (counted, never completes).
  int max_retries = 3;
  double retry_backoff = 0.1;

  bool has_crashes() const { return crash_rate > 0.0; }
  bool has_update_faults() const {
    return update_loss > 0.0 || update_extra_delay > 0.0;
  }
  bool any() const {
    return has_crashes() || has_update_faults() || estimator_dropout > 0.0 ||
           cutoff_value > 0.0;
  }

  // Absolute staleness cutoff for a run with update interval T, or +inf when
  // no cutoff is configured.
  double resolved_cutoff(double update_interval) const;

  // Throws std::invalid_argument on out-of-range fields (probabilities
  // outside [0,1], non-positive downtime with crashes on, negative retries).
  void validate() const;

  // Parses the comma-separated key=value format above. Unknown keys and
  // malformed values throw std::invalid_argument naming the offender.
  static FaultSpec parse(const std::string& text);

  // Round-trips through parse(); "" for a default (fault-free) spec.
  std::string to_string() const;
};

}  // namespace stale::fault
