// Staleness-cutoff hardening wrapper (the dispatcher-side half of the fault
// story): when the information age a request sees exceeds `max_staleness`,
// interpreting the snapshot is worse than ignoring it — the wrapper
// downgrades that dispatch to a cheap fallback policy (random or a k-subset
// spec) and counts the downgrade. Requests with fresh-enough information pass
// through to the wrapped policy untouched, so a run whose age never crosses
// the cutoff is bit-identical to an unwrapped run.
#pragma once

#include <limits>
#include <string>

#include "fault/fault_spec.h"
#include "fault/fault_stats.h"
#include "policy/policy.h"

namespace stale::fault {

class HardenedPolicy final : public policy::SelectionPolicy {
 public:
  // `max_staleness` is the absolute age cutoff (+inf disables). `stats` may
  // be null (no counting). Both policies must outlive nothing — the wrapper
  // owns them.
  HardenedPolicy(policy::PolicyPtr inner, double max_staleness,
                 policy::PolicyPtr fallback, FaultStats* stats);

  int select(const policy::DispatchContext& context, sim::Rng& rng) override;
  std::string name() const override { return inner_->name(); }
  int info_demand() const override { return inner_->info_demand(); }

  double max_staleness() const { return max_staleness_; }

 private:
  policy::PolicyPtr inner_;
  double max_staleness_;
  policy::PolicyPtr fallback_;
  FaultStats* stats_;
};

// Builds the wrapper from a spec: resolves the cutoff against the run's
// update interval and instantiates the fallback via the policy factory.
// Returns `inner` unchanged when the spec has no cutoff.
policy::PolicyPtr harden_policy(policy::PolicyPtr inner, const FaultSpec& spec,
                                double update_interval, FaultStats* stats);

}  // namespace stale::fault
