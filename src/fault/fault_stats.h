// Per-trial fault and degradation counters. Everything the hardened
// dispatcher and the injector do under faults is tallied here so experiments
// can report *how much* degradation occurred, not just the resulting
// response times. Counters aggregate across trials with merge(); equality is
// member-wise, which the determinism tests use to assert that --jobs 1 and
// --jobs N runs inject the exact same faults.
#pragma once

#include <cstdint>

namespace stale::fault {

struct FaultStats {
  std::uint64_t crashes = 0;           // server crash transitions
  std::uint64_t recoveries = 0;        // server recovery transitions
  std::uint64_t jobs_lost = 0;         // in-flight jobs destroyed by a crash
  std::uint64_t jobs_requeued = 0;     // in-flight jobs restarted elsewhere
  std::uint64_t dispatch_retries = 0;  // re-picks after hitting a down server
  std::uint64_t jobs_dropped = 0;      // jobs that exhausted their retries
  std::uint64_t updates_lost = 0;      // load refreshes silently dropped
  std::uint64_t updates_delayed = 0;   // load refreshes given extra delay
  std::uint64_t estimator_drops = 0;   // arrival samples the estimator missed
  std::uint64_t stale_fallbacks = 0;   // dispatches downgraded by the cutoff
  std::uint64_t sanitizer_fixes = 0;   // degenerate probability vectors fixed

  void merge(const FaultStats& other) {
    crashes += other.crashes;
    recoveries += other.recoveries;
    jobs_lost += other.jobs_lost;
    jobs_requeued += other.jobs_requeued;
    dispatch_retries += other.dispatch_retries;
    jobs_dropped += other.jobs_dropped;
    updates_lost += other.updates_lost;
    updates_delayed += other.updates_delayed;
    estimator_drops += other.estimator_drops;
    stale_fallbacks += other.stale_fallbacks;
    sanitizer_fixes += other.sanitizer_fixes;
  }

  bool operator==(const FaultStats&) const = default;
};

}  // namespace stale::fault
