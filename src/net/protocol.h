// Wire protocol of the live dispatcher loop. Every message is one ASCII
// line; UDP messages are one datagram each. Deliberately human-readable —
// `nc 127.0.0.1 PORT` and `printf 'JOB 1\n'` are the debugging story — and
// versioned by leading keyword so unknown messages are skipped, not fatal.
//
//   backend -> LB (UDP, control plane):
//     HELLO <index> <tcp_port>        registration + liveness heartbeat
//     LOAD <index> <queue_len> <seq>  periodic load report ("bulletin board
//                                     post"); seq detects reordering
//   LB -> backend (TCP, data plane):
//     JOB <gid>                       dispatch one job
//   backend -> LB (TCP):
//     DONE <gid> <queue_len_after> [<service>]
//                                     job finished; current queue length is
//                                     piggybacked (the update-on-access path).
//                                     The optional 4th field is the service
//                                     time the backend drew (seconds) — the
//                                     trace recorder needs it to write
//                                     replayable job sizes; old backends omit
//                                     it and old LBs skip it
//   client -> LB (TCP):
//     JOB <id>                        submit one job
//   LB -> client (TCP):
//     DONE <id> <backend>             job completed on that backend
//     ERR <id> <reason>               dispatch failed (e.g. no backends)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace stale::net {

struct HelloMsg {
  int index = 0;
  std::uint16_t tcp_port = 0;
};

struct LoadMsg {
  int index = 0;
  int queue_len = 0;
  std::uint64_t seq = 0;
};

struct JobMsg {
  std::uint64_t id = 0;
};

struct DoneMsg {
  std::uint64_t id = 0;
  int queue_len = 0;
  double service = -1.0;  // seconds the job held the server; < 0 = unreported
};

struct ClientDoneMsg {
  std::uint64_t id = 0;
  int backend = 0;
};

// Parsers return nullopt on any malformed or foreign line (wrong keyword,
// wrong field count, non-numeric or negative fields) — the live loop drops
// garbage instead of dying on it.
std::optional<HelloMsg> parse_hello(std::string_view line);
std::optional<LoadMsg> parse_load(std::string_view line);
std::optional<JobMsg> parse_job(std::string_view line);
std::optional<DoneMsg> parse_done(std::string_view line);
std::optional<ClientDoneMsg> parse_client_done(std::string_view line);

// Formatters emit the terminating '\n'.
std::string format_hello(const HelloMsg& msg);
std::string format_load(const LoadMsg& msg);
std::string format_job(const JobMsg& msg);
std::string format_done(const DoneMsg& msg);
std::string format_client_done(const ClientDoneMsg& msg);
std::string format_client_err(std::uint64_t id, const std::string& reason);

}  // namespace stale::net
