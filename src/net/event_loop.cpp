#include "net/event_loop.h"

#include <cmath>
#include <stdexcept>

#include "net/clock.h"

// epoll is the intended backend; the poll() path exists so the subsystem
// still builds on non-Linux POSIX (and is compiled in CI's matrix only via
// this macro if ever needed).
#if defined(__linux__)
#define STALELOAD_NET_EPOLL 1
#include <sys/epoll.h>
#else
#define STALELOAD_NET_EPOLL 0
#include <poll.h>
#endif

namespace stale::net {

EventLoop::EventLoop() {
#if STALELOAD_NET_EPOLL
  epoll_fd_.reset(epoll_create1(0));
  if (!epoll_fd_.valid()) {
    throw std::runtime_error("epoll_create1 failed");
  }
#endif
  now_ = mono_now();
}

EventLoop::~EventLoop() = default;

void EventLoop::apply_interest(int fd, const Watch& watch, bool is_new) {
#if STALELOAD_NET_EPOLL
  epoll_event event{};
  event.events = (watch.want_read ? EPOLLIN : 0u) |
                 (watch.want_write ? EPOLLOUT : 0u);
  event.data.fd = fd;
  epoll_ctl(epoll_fd_.get(), is_new ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, fd,
            &event);
#else
  static_cast<void>(fd);
  static_cast<void>(watch);
  static_cast<void>(is_new);  // poll() rebuilds its set every iteration
#endif
}

void EventLoop::watch(int fd, bool want_read, bool want_write,
                      FdCallback callback) {
  const bool is_new = watches_.find(fd) == watches_.end();
  Watch& watch = watches_[fd];
  watch.want_read = want_read;
  watch.want_write = want_write;
  watch.callback = std::move(callback);
  apply_interest(fd, watch, is_new);
}

void EventLoop::set_interest(int fd, bool want_read, bool want_write) {
  const auto it = watches_.find(fd);
  if (it == watches_.end()) return;
  it->second.want_read = want_read;
  it->second.want_write = want_write;
  apply_interest(fd, it->second, /*is_new=*/false);
}

void EventLoop::forget(int fd) {
  if (watches_.erase(fd) == 0) return;
#if STALELOAD_NET_EPOLL
  epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
#endif
}

std::uint64_t EventLoop::add_timer(double delay, TimerCallback callback) {
  const std::uint64_t id = next_timer_id_++;
  timers_.push(Timer{now_ + std::max(delay, 0.0), id});
  timer_callbacks_[id] = std::move(callback);
  return id;
}

void EventLoop::cancel_timer(std::uint64_t id) { timer_callbacks_.erase(id); }

double EventLoop::next_timeout() const {
  double timeout = kMaxWait;
  if (!timers_.empty()) {
    timeout = std::min(timeout, timers_.top().deadline - now_);
  }
  return std::max(timeout, 0.0);
}

int EventLoop::wait_ready(double timeout,
                          std::vector<std::pair<int, std::uint32_t>>* ready) {
  const int timeout_ms =
      static_cast<int>(std::ceil(timeout * 1000.0));
#if STALELOAD_NET_EPOLL
  epoll_event events[64];
  const int n = epoll_wait(epoll_fd_.get(), events, 64, timeout_ms);
  for (int i = 0; i < n; ++i) {
    std::uint32_t mask = 0;
    if (events[i].events & EPOLLIN) mask |= kReadable;
    if (events[i].events & EPOLLOUT) mask |= kWritable;
    if (events[i].events & (EPOLLERR | EPOLLHUP)) mask |= kError | kReadable;
    const int fd = events[i].data.fd;
    ready->emplace_back(fd, mask);
  }
  return n;
#else
  std::vector<pollfd> fds;
  fds.reserve(watches_.size());
  for (const auto& [fd, watch] : watches_) {
    pollfd p{};
    p.fd = fd;
    p.events = static_cast<short>((watch.want_read ? POLLIN : 0) |
                                  (watch.want_write ? POLLOUT : 0));
    fds.push_back(p);
  }
  const int n = poll(fds.data(), fds.size(), timeout_ms);
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    std::uint32_t mask = 0;
    if (p.revents & POLLIN) mask |= kReadable;
    if (p.revents & POLLOUT) mask |= kWritable;
    if (p.revents & (POLLERR | POLLHUP | POLLNVAL)) mask |= kError | kReadable;
    ready->emplace_back(p.fd, mask);
  }
  return n;
#endif
}

void EventLoop::fire_due_timers() {
  while (!timers_.empty() && timers_.top().deadline <= now_) {
    const Timer timer = timers_.top();
    timers_.pop();
    const auto it = timer_callbacks_.find(timer.id);
    if (it == timer_callbacks_.end()) continue;  // cancelled
    TimerCallback callback = std::move(it->second);
    timer_callbacks_.erase(it);
    callback();
  }
}

void EventLoop::run(const std::atomic<bool>* stop_flag) {
  stopped_ = false;
  std::vector<std::pair<int, std::uint32_t>> ready;
  while (!stopped_) {
    if (stop_flag != nullptr &&
        stop_flag->load(std::memory_order_relaxed)) {
      break;
    }
    ready.clear();
    wait_ready(next_timeout(), &ready);
    now_ = mono_now();
    fire_due_timers();
    for (const auto& [fd, mask] : ready) {
      // A callback may forget() this or any later fd; re-check liveness.
      const auto it = watches_.find(fd);
      if (it == watches_.end() || !it->second.callback) continue;
      it->second.callback(mask);
      if (stopped_) break;
    }
  }
}

}  // namespace stale::net
