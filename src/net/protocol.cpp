#include "net/protocol.h"

#include <charconv>
#include <vector>

namespace stale::net {

namespace {

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    std::size_t end = pos;
    while (end < line.size() && line[end] != ' ') ++end;
    if (end > pos) fields.push_back(line.substr(pos, end - pos));
    pos = end;
  }
  return fields;
}

// Non-negative integers only: indexes, ports, ids, queue lengths.
template <typename Int>
bool parse_uint(std::string_view text, Int* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return result.ec == std::errc() && result.ptr == text.data() + text.size();
}

// Non-negative decimals: the DONE service-time field.
bool parse_udouble(std::string_view text, double* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return result.ec == std::errc() &&
         result.ptr == text.data() + text.size() && *out >= 0.0;
}

}  // namespace

std::optional<HelloMsg> parse_hello(std::string_view line) {
  const auto fields = split_fields(line);
  HelloMsg msg;
  if (fields.size() != 3 || fields[0] != "HELLO" ||
      !parse_uint(fields[1], &msg.index) ||
      !parse_uint(fields[2], &msg.tcp_port)) {
    return std::nullopt;
  }
  return msg;
}

std::optional<LoadMsg> parse_load(std::string_view line) {
  const auto fields = split_fields(line);
  LoadMsg msg;
  if (fields.size() != 4 || fields[0] != "LOAD" ||
      !parse_uint(fields[1], &msg.index) ||
      !parse_uint(fields[2], &msg.queue_len) ||
      !parse_uint(fields[3], &msg.seq)) {
    return std::nullopt;
  }
  return msg;
}

std::optional<JobMsg> parse_job(std::string_view line) {
  const auto fields = split_fields(line);
  JobMsg msg;
  if (fields.size() != 2 || fields[0] != "JOB" ||
      !parse_uint(fields[1], &msg.id)) {
    return std::nullopt;
  }
  return msg;
}

std::optional<DoneMsg> parse_done(std::string_view line) {
  const auto fields = split_fields(line);
  DoneMsg msg;
  if ((fields.size() != 3 && fields.size() != 4) || fields[0] != "DONE" ||
      !parse_uint(fields[1], &msg.id) ||
      !parse_uint(fields[2], &msg.queue_len)) {
    return std::nullopt;
  }
  if (fields.size() == 4 && !parse_udouble(fields[3], &msg.service)) {
    return std::nullopt;
  }
  return msg;
}

std::optional<ClientDoneMsg> parse_client_done(std::string_view line) {
  const auto fields = split_fields(line);
  ClientDoneMsg msg;
  if (fields.size() != 3 || fields[0] != "DONE" ||
      !parse_uint(fields[1], &msg.id) ||
      !parse_uint(fields[2], &msg.backend)) {
    return std::nullopt;
  }
  return msg;
}

std::string format_hello(const HelloMsg& msg) {
  return "HELLO " + std::to_string(msg.index) + " " +
         std::to_string(msg.tcp_port) + "\n";
}

std::string format_load(const LoadMsg& msg) {
  return "LOAD " + std::to_string(msg.index) + " " +
         std::to_string(msg.queue_len) + " " + std::to_string(msg.seq) + "\n";
}

std::string format_job(const JobMsg& msg) {
  return "JOB " + std::to_string(msg.id) + "\n";
}

std::string format_done(const DoneMsg& msg) {
  std::string line = "DONE ";
  line += std::to_string(msg.id);
  line += ' ';
  line += std::to_string(msg.queue_len);
  if (msg.service >= 0.0) {
    line += ' ';
    line += std::to_string(msg.service);
  }
  line += '\n';
  return line;
}

std::string format_client_done(const ClientDoneMsg& msg) {
  return "DONE " + std::to_string(msg.id) + " " +
         std::to_string(msg.backend) + "\n";
}

std::string format_client_err(std::uint64_t id, const std::string& reason) {
  return "ERR " + std::to_string(id) + " " + reason + "\n";
}

}  // namespace stale::net
