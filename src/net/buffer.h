// Line framing over byte streams: every protocol message in the live loop is
// one '\n'-terminated ASCII line (see net/protocol.h), so connections need
// exactly two small utilities — reassembling lines from arbitrary recv()
// chunks, and buffering unsent bytes across partial non-blocking send()s.
#pragma once

#include <cstddef>
#include <string>

namespace stale::net {

// Accumulates received bytes and hands back complete lines (terminator
// stripped). Bounded: a peer that streams an absurdly long line (default cap
// 64 KiB) marks the buffer poisoned, which the owner treats as a protocol
// error and disconnects.
class LineBuffer {
 public:
  explicit LineBuffer(std::size_t max_line = 64 * 1024)
      : max_line_(max_line) {}

  void append(const char* data, std::size_t size) {
    pending_.append(data, size);
    if (pending_.size() > max_line_ &&
        pending_.find('\n') == std::string::npos) {
      poisoned_ = true;
    }
  }

  // Extracts the next complete line into `line`; false when none is pending.
  bool next_line(std::string* line) {
    const std::size_t nl = pending_.find('\n');
    if (nl == std::string::npos) return false;
    line->assign(pending_, 0, nl);
    pending_.erase(0, nl + 1);
    return true;
  }

  bool poisoned() const { return poisoned_; }

 private:
  std::size_t max_line_;
  std::string pending_;
  bool poisoned_ = false;
};

// Outbound bytes not yet accepted by the kernel. The owner calls flush()
// whenever the fd is writable and checks wants_write() to manage EPOLLOUT
// interest.
class WriteBuffer {
 public:
  void append(const std::string& bytes) { pending_ += bytes; }

  // Attempts to drain into `fd`. Returns false on a fatal socket error
  // (connection dead); EAGAIN is not fatal.
  bool flush(int fd);

  bool wants_write() const { return !pending_.empty(); }
  std::size_t pending_bytes() const { return pending_.size(); }

 private:
  std::string pending_;
};

}  // namespace stale::net
