// Live-side trace-v2 recording (`staleload_lb --record DIR`). The dispatcher
// calls the note_* hooks from its event loop; write_trace() dumps the
// workload::ReplayTrace files once the run ends, and live_metrics() distills
// the same recording into the obs::ReplayMetrics that playdiff compares
// against the simulated replay.
//
// Scope: the recorder captures *completed* jobs. A job whose DONE never
// arrived — client gone, backend crashed, or a re-dispatch that moved the
// job to a fresh gid — is dropped at write time (counted, reported on the
// manifest owner's stderr). Record on a fault-free run; replaying a churny
// recording is not what the format promises.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/replay_metrics.h"
#include "workload/replay.h"

namespace stale::net {

class TraceV2Recorder {
 public:
  // A job arrived at the dispatcher (first dispatch attempt only).
  void note_arrival(std::uint64_t gid, double now);
  // A LOAD report reached the board.
  void note_load(double now, int server, int queue_len);
  // The job's DONE came back; `service` is the backend-reported service time
  // (< 0 when the backend predates the field — recorded as size 1.0).
  void note_done(std::uint64_t gid, double now, double service);

  std::uint64_t arrivals() const { return jobs_.size(); }
  std::uint64_t completed() const { return completed_; }

  // Completed jobs in arrival order, times normalized so the first recorded
  // arrival is t = 0. Incomplete jobs are skipped (see dropped()).
  std::vector<workload::TraceRecord> completed_arrivals() const;
  // LOAD events under the same normalized clock.
  std::vector<workload::LoadEvent> normalized_loads() const;
  // Jobs skipped by the last completed_arrivals() call.
  std::uint64_t dropped() const { return dropped_; }

  // Writes DIR/{manifest.txt,arrivals.trace,loads.csv}. DIR must already
  // exist. `manifest` supplies the configuration fields; arrivals / duration
  // are filled from the recording. Returns the number of incomplete jobs
  // dropped. Throws std::runtime_error if a file cannot be written. The
  // caller writes DIR/metrics.json from live_metrics() — it needs the
  // dispatcher's per-backend counts and the herd verdict, which the recorder
  // does not have.
  std::uint64_t write_trace(const std::string& dir,
                            workload::ReplayManifest manifest) const;

  // The live half of the playdiff comparison: response-time quantiles over
  // completed jobs (the first quarter by arrival order dropped as warmup, to
  // mirror the sim driver's num_jobs/4 convention) plus the dispatch shares.
  // Herd fields are left unset; the caller folds in a detect_herd() result
  // when it has one.
  obs::ReplayMetrics live_metrics(
      const std::vector<std::uint64_t>& per_backend_dispatched) const;

 private:
  struct Job {
    double arrival = 0.0;
    double done = -1.0;     // < 0: DONE never arrived
    double service = -1.0;  // < 0: backend did not report it
  };

  std::vector<Job> jobs_;  // arrival order
  std::unordered_map<std::uint64_t, std::size_t> by_gid_;
  std::vector<workload::LoadEvent> loads_;
  std::uint64_t completed_ = 0;
  mutable std::uint64_t dropped_ = 0;
};

}  // namespace stale::net
