// Single-threaded readiness event loop: the execution model of every live
// binary (staleload_lb, staleload_backend, staleload_loadgen).
//
// One loop per process, no worker threads: callbacks run to completion on
// the loop thread, so — exactly like the event-driven simulator — handlers
// never need locks, and the dispatcher's policy/board state is touched from
// one thread only. The backend is Linux epoll when available, with a
// portable poll() fallback selected at compile time (STALELOAD_NET_EPOLL).
//
// Timers are a one-shot min-heap on net::mono_now(); periodic behaviour is
// a callback re-arming itself, which keeps cancellation trivial (generation
// counter, no heap surgery).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "net/socket.h"

namespace stale::net {

class EventLoop {
 public:
  // Bitmask passed to fd callbacks.
  static constexpr std::uint32_t kReadable = 1;
  static constexpr std::uint32_t kWritable = 2;
  static constexpr std::uint32_t kError = 4;

  using FdCallback = std::function<void(std::uint32_t events)>;
  using TimerCallback = std::function<void()>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Registers `fd` with the given interest set. The callback stays owned by
  // the loop until forget(fd). Re-watching an fd replaces its registration.
  void watch(int fd, bool want_read, bool want_write, FdCallback callback);

  // Adjusts interest for an already watched fd.
  void set_interest(int fd, bool want_read, bool want_write);

  // Drops an fd from the loop. Safe to call from inside its own callback.
  void forget(int fd);

  // Schedules `callback` to fire once, `delay` seconds from now. Returns an
  // id usable with cancel_timer. Timers firing the same iteration run in
  // (deadline, id) order — deterministic given identical readiness.
  std::uint64_t add_timer(double delay, TimerCallback callback);
  void cancel_timer(std::uint64_t id);

  // Runs until stop() is called or `stop_flag` (nullable; typically set from
  // a signal handler) becomes true. The flag is polled at least every
  // `kMaxWait` seconds.
  void run(const std::atomic<bool>* stop_flag = nullptr);
  void stop() { stopped_ = true; }

  // Monotonic time, refreshed once per loop iteration so all callbacks of an
  // iteration observe one consistent "now".
  double now() const { return now_; }

 private:
  static constexpr double kMaxWait = 0.1;  // seconds; stop-flag poll bound

  struct Watch {
    bool want_read = false;
    bool want_write = false;
    FdCallback callback;
  };

  struct Timer {
    double deadline = 0.0;
    std::uint64_t id = 0;
    bool operator>(const Timer& other) const {
      return deadline != other.deadline ? deadline > other.deadline
                                        : id > other.id;
    }
  };

  void apply_interest(int fd, const Watch& watch, bool is_new);
  int wait_ready(double timeout,
                 std::vector<std::pair<int, std::uint32_t>>* ready);
  void fire_due_timers();
  double next_timeout() const;

  std::map<int, Watch> watches_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  std::map<std::uint64_t, TimerCallback> timer_callbacks_;  // absent=cancelled
  std::uint64_t next_timer_id_ = 1;
  bool stopped_ = false;
  double now_ = 0.0;
  Fd epoll_fd_;  // invalid in the poll() build
};

}  // namespace stale::net
