#include "net/dispatcher.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>

#include "net/record.h"
#include "sim/distributions.h"
#include "workload/rate_estimator.h"

namespace stale::net {

namespace {

// The live loop reuses the simulator's RNG split convention: one base seed,
// decorrelated streams per consumer.
sim::Rng split_stream(std::uint64_t seed, int stream) {
  sim::Rng rng(seed);
  for (int i = 0; i < stream; ++i) rng.long_jump();
  return rng;
}

double parse_spec_field(const std::string& spec, const std::string& field) {
  try {
    std::size_t used = 0;
    const double value = std::stod(field, &used);
    if (used != field.size()) throw std::invalid_argument(field);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("estimator spec '" + spec +
                                "': bad number '" + field + "'");
  }
}

// --estimator grammar (see DispatcherOptions::estimator_spec). Near-zero
// initial rates (the estimators reject exactly 0): until arrivals accumulate,
// LI degrades toward "interpret the board as fresh" — the paper's K = 0.
core::RateEstimatorPtr make_live_estimator(const std::string& spec,
                                           double update_period,
                                           double rate_window) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t colon = spec.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(start));
      break;
    }
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  const std::string& kind = parts[0];
  if (kind == "windowed") {
    if (parts.size() > 2) {
      throw std::invalid_argument("estimator spec: expected windowed[:W]");
    }
    double window = parts.size() == 2 ? parse_spec_field(spec, parts[1])
                                      : rate_window;
    if (window <= 0.0) window = 4.0 * std::max(update_period, 0.25);
    return std::make_unique<core::WindowedRateEstimator>(window, 1e-9);
  }
  if (kind == "ewma") {
    if (parts.size() != 2) {
      throw std::invalid_argument("estimator spec: expected ewma:TAU");
    }
    const double tau = parse_spec_field(spec, parts[1]);
    if (tau <= 0.0) {
      throw std::invalid_argument("estimator spec: ewma tau must be > 0");
    }
    return std::make_unique<core::EwmaRateEstimator>(tau, 1e-9);
  }
  if (kind == "cema") {
    if (parts.size() > 3) {
      throw std::invalid_argument("estimator spec: expected cema[:A[:B]]");
    }
    const double alpha =
        parts.size() >= 2 ? parse_spec_field(spec, parts[1]) : 0.1;
    const double bucket = parts.size() == 3
                              ? parse_spec_field(spec, parts[2])
                              : std::max(update_period, 0.05) / 2.0;
    return std::make_unique<workload::CemaRateEstimator>(alpha, bucket, 1e-9);
  }
  if (kind == "fixed") {
    if (parts.size() != 2) {
      throw std::invalid_argument("estimator spec: expected fixed:RATE");
    }
    const double rate = parse_spec_field(spec, parts[1]);
    if (rate <= 0.0) {
      throw std::invalid_argument("estimator spec: fixed rate must be > 0");
    }
    return std::make_unique<core::ConservativeRateEstimator>(rate);
  }
  throw std::invalid_argument(
      "unknown estimator spec '" + spec +
      "' (expected windowed[:W] | ewma:TAU | cema[:A[:B]] | fixed:RATE)");
}

}  // namespace

Dispatcher::Dispatcher(const DispatcherOptions& options)
    : options_(options),
      policy_(policy::make_policy(options.policy_spec)),
      board_(options.num_backends, options.schedule, options.update_period,
             /*start_time=*/0.0),
      rng_(split_stream(options.seed, 0)),
      fault_rng_(split_stream(options.seed, 1)),
      backends_(static_cast<std::size_t>(options.num_backends)),
      outstanding_(static_cast<std::size_t>(options.num_backends), 0) {
  // Construction happens on the (future) loop thread; the serial capability
  // is born held here.
  loop_serial_.assert_held();
  if (options.num_backends <= 0) {
    throw std::invalid_argument("Dispatcher needs --backends >= 1");
  }
  options_.faults.validate();
  options_.health.validate();
  if (options_.dispatch_timeout > 0.0 && !options_.health.enabled()) {
    throw std::invalid_argument(
        "Dispatcher: dispatch_timeout needs the health subsystem "
        "(a suspect/evict spec) to act on the failures it detects");
  }
  if (options_.max_redispatch < 0) {
    throw std::invalid_argument("Dispatcher: max_redispatch must be >= 0");
  }
  if (options_.health.enabled()) {
    fallback_policy_ = policy::make_policy(options_.health.fallback_policy);
    membership_ = std::make_unique<health::Membership>(
        options_.num_backends, options_.health, loop_.now(), options_.trace);
    // Check deadlines a few times per suspect window so quarantine lag stays
    // a fraction of the timeout it enforces.
    health_tick_period_ =
        std::max(0.05, options_.health.suspect_timeout / 4.0);
  }
  rate_ = make_live_estimator(options_.estimator_spec, options_.update_period,
                              options_.rate_window);

  listen_fd_ = tcp_listen(options.host, options.tcp_port, &tcp_port_);
  udp_fd_ = udp_bind(options.host, options.udp_port, &udp_port_);
  stats_.per_backend_dispatched.assign(
      static_cast<std::size_t>(options.num_backends), 0);
  status("LB LISTENING tcp=" + std::to_string(tcp_port_) +
         " udp=" + std::to_string(udp_port_));
}

void Dispatcher::status(const std::string& line) {
  if (options_.status_out == nullptr) return;
  *options_.status_out << line << std::endl;
}

void Dispatcher::run(const std::atomic<bool>* stop_flag) {
  loop_serial_.assert_held();
  stats_.started_at = loop_.now();
  loop_.watch(listen_fd_.get(), /*want_read=*/true, /*want_write=*/false,
              [this](std::uint32_t) {
                loop_serial_.assert_held();
                accept_clients();
              });
  loop_.watch(udp_fd_.get(), /*want_read=*/true, /*want_write=*/false,
              [this](std::uint32_t) {
                loop_serial_.assert_held();
                on_udp_readable();
              });
  if (options_.duration > 0.0) {
    loop_.add_timer(options_.duration, [this] { loop_.stop(); });
  }
  if (membership_ != nullptr) {
    loop_.add_timer(health_tick_period_, [this] {
      loop_serial_.assert_held();
      health_tick();
    });
  }
  loop_.run(stop_flag);
  stats_.stopped_at = loop_.now();
  if (membership_ != nullptr) {
    stats_.backend_evictions = membership_->evictions();
    stats_.backend_rejoins = membership_->rejoins();
    stats_.degraded_entries = membership_->degraded_entries();
  }
}

// --- health subsystem ------------------------------------------------------

void Dispatcher::health_tick() {
  const double now = loop_.now();
  membership_->advance(now);
  for (int i = 0; i < options_.num_backends; ++i) {
    if (membership_->state(i) != health::MemberState::kDead) continue;
    BackendConn& backend = backends_[static_cast<std::size_t>(i)];
    if (backend.registered) {
      // Evicted while the TCP connection still looked healthy (its reports
      // stopped): tear the connection down so its in-flight jobs take the
      // re-dispatch path, and stop offering it jobs.
      status("LB EVICT " + std::to_string(i));
      drop_backend(i);
    } else if (backend.endpoint.port != 0 && membership_->probe_due(i, now)) {
      probe_backend(i);
    }
  }
  if (membership_->degraded() != was_degraded_) {
    was_degraded_ = membership_->degraded();
    status(std::string(was_degraded_ ? "LB DEGRADED" : "LB RECOVERED") +
           " coverage=" + std::to_string(membership_->coverage()));
  }
  loop_.add_timer(health_tick_period_, [this] {
      loop_serial_.assert_held();
      health_tick();
    });
}

void Dispatcher::probe_backend(int index) {
  membership_->note_probe(index, loop_.now());
  BackendConn& backend = backends_[static_cast<std::size_t>(index)];
  Fd probe;
  try {
    probe = tcp_connect(backend.endpoint);
  } catch (const std::exception&) {
    return;  // immediate refusal counts as a failed probe; backoff doubled
  }
  const int fd = probe.get();
  probes_[fd] = ProbeConn{index, std::move(probe)};
  loop_.watch(fd, /*want_read=*/false, /*want_write=*/true,
              [this, fd](std::uint32_t events) {
                loop_serial_.assert_held();
                on_probe_event(fd, events);
              });
  status("LB PROBE " + std::to_string(index));
}

void Dispatcher::on_probe_event(int fd, std::uint32_t events) {
  const auto it = probes_.find(fd);
  if (it == probes_.end()) return;
  const int index = it->second.index;
  loop_.forget(fd);
  if ((events & EventLoop::kError) == 0) {
    // The connect completed: the backend's data port accepts again. That is
    // liveness evidence (dead -> probation); full re-registration still
    // arrives with its next HELLO, which carries the current data port.
    membership_->note_report(index, loop_.now());
    status("LB PROBE-OK " + std::to_string(index));
  }
  probes_.erase(it);  // closes the probe socket either way
}

void Dispatcher::build_live_mask() {
  const auto candidates = membership_->candidates();
  live_mask_.assign(static_cast<std::size_t>(options_.num_backends), 0);
  for (int i = 0; i < options_.num_backends; ++i) {
    const auto s = static_cast<std::size_t>(i);
    live_mask_[s] = (candidates[s] != 0 && backends_[s].registered) ? 1 : 0;
  }
}

// --- control plane (UDP) ---------------------------------------------------

void Dispatcher::on_udp_readable() {
  char buffer[2048];
  for (;;) {
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    const ssize_t n =
        recvfrom(udp_fd_.get(), buffer, sizeof(buffer) - 1, 0,
                 reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    std::string payload(buffer, static_cast<std::size_t>(n));
    while (!payload.empty() &&
           (payload.back() == '\n' || payload.back() == '\r')) {
      payload.pop_back();
    }
    char host[32] = "127.0.0.1";
    inet_ntop(AF_INET, &from.sin_addr, host, sizeof(host));
    handle_datagram(payload, host);
  }
}

void Dispatcher::handle_datagram(const std::string& payload,
                                 const std::string& from) {
  if (const auto hello = parse_hello(payload)) {
    ++stats_.hellos_received;
    register_backend(*hello, from);
    return;
  }
  if (const auto load = parse_load(payload)) {
    ++stats_.reports_received;
    const double now = loop_.now();
    // Injected degradation of the report path — the live analogue of
    // loadinfo's RefreshFaults.
    if (options_.faults.update_loss > 0.0 &&
        fault_rng_.next_double() < options_.faults.update_loss) {
      ++stats_.reports_dropped;
      if (options_.trace != nullptr) {
        options_.trace->on_refresh_fault(
            now, obs::FaultTraceEvent::kRefreshLost, load->index);
      }
      return;
    }
    if (options_.faults.update_extra_delay > 0.0) {
      ++stats_.reports_delayed;
      if (options_.trace != nullptr) {
        options_.trace->on_refresh_fault(
            now, obs::FaultTraceEvent::kRefreshDelayed, load->index);
      }
      const double delay = sim::Exponential(options_.faults.update_extra_delay)
                               .sample(fault_rng_);
      const LoadMsg delayed = *load;
      loop_.add_timer(delay, [this, delayed] {
        loop_serial_.assert_held();
        apply_report(delayed);
      });
      return;
    }
    apply_report(*load);
  }
  // Unknown datagrams are dropped silently, like the network would.
}

void Dispatcher::apply_report(const LoadMsg& msg) {
  const double now = loop_.now();
  if (membership_ != nullptr && msg.index >= 0 &&
      msg.index < options_.num_backends) {
    // Liveness follows the report's visibility: an injected-lost report never
    // reaches this point (the network ate it), a delayed one lands here at
    // its delivery time — the health layer sees exactly what the board sees.
    membership_->note_report(msg.index, now);
  }
  board_.apply_report(msg.index, msg.queue_len, now);
  if (options_.record != nullptr) {
    options_.record->note_load(now, msg.index, msg.queue_len);
  }
  if (options_.trace != nullptr) {
    options_.trace->on_board_refresh(now, now, board_.version(),
                                     board_.loads());
  }
}

void Dispatcher::register_backend(const HelloMsg& hello,
                                  const std::string& from_host) {
  if (hello.index < 0 || hello.index >= options_.num_backends) return;
  BackendConn& backend = backends_[static_cast<std::size_t>(hello.index)];
  if (membership_ != nullptr) {
    // A HELLO is a liveness heartbeat; for a dead backend it opens probation.
    membership_->note_report(hello.index, loop_.now());
  }
  if (backend.registered) {
    if (backend.endpoint.host == from_host &&
        backend.endpoint.port == hello.tcp_port) {
      return;  // duplicate HELLO heartbeat
    }
    // Same index, new data endpoint: the backend restarted. Replace the
    // stale connection without declaring it dead — the HELLO above already
    // vouched for it; its in-flight jobs take the re-dispatch path.
    drop_backend(hello.index, /*observed_failure=*/false);
  }
  backend.endpoint = Endpoint{from_host, hello.tcp_port};
  backend.fd = tcp_connect(backend.endpoint);
  backend.in = LineBuffer();
  backend.out = WriteBuffer();
  backend.registered = true;
  ++registered_;
  const int index = hello.index;
  loop_.watch(backend.fd.get(), /*want_read=*/true, /*want_write=*/false,
              [this, index](std::uint32_t events) {
                loop_serial_.assert_held();
                if (events & EventLoop::kError) {
                  drop_backend(index);
                  return;
                }
                if (events & EventLoop::kWritable) {
                  BackendConn& b = backends_[static_cast<std::size_t>(index)];
                  flush_conn(b.fd.get(), &b.out, /*want_read=*/true);
                }
                if (events & EventLoop::kReadable) on_backend_readable(index);
              });
  status("LB BACKEND " + std::to_string(index) + " " +
         backend.endpoint.to_string());
  if (registered_ == options_.num_backends) {
    status("LB READY backends=" + std::to_string(registered_));
  }
}

// --- client data plane -----------------------------------------------------

void Dispatcher::accept_clients() {
  for (;;) {
    Fd conn = tcp_accept(listen_fd_.get());
    if (!conn.valid()) return;
    const int fd = conn.get();
    ClientConn& client = clients_[fd];
    client.fd = std::move(conn);
    loop_.watch(fd, /*want_read=*/true, /*want_write=*/false,
                [this, fd](std::uint32_t events) {
                  loop_serial_.assert_held();
                  if (events & EventLoop::kError) {
                    drop_client(fd);
                    return;
                  }
                  if (events & EventLoop::kWritable) {
                    const auto it = clients_.find(fd);
                    if (it != clients_.end()) {
                      flush_conn(fd, &it->second.out, /*want_read=*/true);
                    }
                  }
                  if (events & EventLoop::kReadable) on_client_readable(fd);
                });
  }
}

void Dispatcher::on_client_readable(int fd) {
  const auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  char buffer[4096];
  for (;;) {
    const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      it->second.in.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    drop_client(fd);  // orderly close or hard error
    return;
  }
  if (it->second.in.poisoned()) {
    drop_client(fd);
    return;
  }
  std::string line;
  while (clients_.count(fd) != 0 && it->second.in.next_line(&line)) {
    handle_client_line(fd, line);
  }
}

void Dispatcher::handle_client_line(int fd, const std::string& line) {
  const auto job = parse_job(line);
  if (!job) return;  // garbage line; ignore
  ++stats_.jobs_received;
  dispatch_job(fd, job->id);
}

void Dispatcher::dispatch_job(int client_fd, std::uint64_t client_id) {
  rate_->on_arrival(loop_.now());  // one arrival, however many re-sends
  dispatch_attempt(client_fd, client_id, /*attempts=*/0, /*avoid=*/-1);
}

void Dispatcher::dispatch_attempt(int client_fd, std::uint64_t client_id,
                                  int attempts, int avoid) {
  if (registered_ == 0) {
    ++stats_.jobs_rejected;
    send_to_client(client_fd, format_client_err(client_id, "no-backends"));
    return;
  }
  const double now = loop_.now();

  policy::DispatchContext context;
  context.loads = board_.loads();
  context.age = options_.schedule == UpdateSchedule::kPeriodic
                    ? board_.phase_elapsed(now)
                    : board_.age(now);
  context.lambda_total = rate_->rate();
  context.phase_length = board_.phase_length();
  context.phase_elapsed = board_.phase_elapsed(now);
  context.info_version = board_.version();
  context.trace = options_.trace;

  bool degraded = false;
  if (membership_ != nullptr) {
    membership_->advance(now);
    build_live_mask();
    context.alive = live_mask_;
    // Fold membership changes into the cache version so cached probability
    // vectors are rebuilt whenever the candidate picture moves.
    context.info_version ^= membership_->transition_count() << 32;
    degraded = membership_->degraded();
  }

  policy::SelectionPolicy& chooser =
      degraded ? *fallback_policy_ : *policy_;
  int backend = chooser.select(context, rng_);

  const auto usable = [&](int b) {
    loop_serial_.assert_held();
    return b >= 0 && b < options_.num_backends && b != avoid &&
           backends_[static_cast<std::size_t>(b)].registered;
  };
  if (!usable(backend)) {
    // Policy picked an unregistered/invalid backend (possible briefly after
    // a backend connection dies) or the one this job just failed on: fall
    // back to a registered candidate, then any registered backend, then —
    // with nowhere else to go — the avoided one.
    backend = -1;
    for (int pass = 0; pass < 2 && backend < 0; ++pass) {
      for (int i = 0; i < options_.num_backends; ++i) {
        const auto s = static_cast<std::size_t>(i);
        if (!usable(i)) continue;
        if (pass == 0 && membership_ != nullptr && live_mask_[s] == 0) {
          continue;
        }
        backend = i;
        break;
      }
    }
    if (backend < 0 && avoid >= 0 &&
        backends_[static_cast<std::size_t>(avoid)].registered) {
      backend = avoid;
    }
    if (backend < 0) {
      ++stats_.jobs_rejected;
      send_to_client(client_fd, format_client_err(client_id, "no-backends"));
      return;
    }
  }

  const std::uint64_t gid = next_gid_++;
  if (options_.record != nullptr && attempts == 0) {
    // Re-dispatches keep the arrival pinned to the original gid; the retry's
    // gid never completes in the recorder and is dropped at write time.
    options_.record->note_arrival(gid, now);
  }
  InFlightJob job{client_fd, client_id, backend, attempts, 0};
  if (options_.dispatch_timeout > 0.0) {
    job.timeout_timer = loop_.add_timer(
        options_.dispatch_timeout, [this, gid] {
          loop_serial_.assert_held();
          on_job_timeout(gid);
        });
  }
  jobs_[gid] = job;
  ++outstanding_[static_cast<std::size_t>(backend)];
  ++stats_.jobs_dispatched;
  if (attempts > 0) ++stats_.jobs_redispatched;
  ++stats_.per_backend_dispatched[static_cast<std::size_t>(backend)];
  board_.note_dispatch(backend, now);
  send_to_backend(backend, format_job(JobMsg{gid}));

  if (options_.trace != nullptr) {
    options_.trace->on_decision(now, backend, context.age);
    // Job sizes are drawn backend-side, so the dispatch event carries size 0
    // and no departure prediction; queue_len_after is the LB's in-flight
    // count, its live proxy for the backend queue.
    options_.trace->on_dispatch(
        now, backend, /*job_size=*/0.0,
        outstanding_[static_cast<std::size_t>(backend)], /*departure=*/0.0);
  }
}

void Dispatcher::on_job_timeout(std::uint64_t gid) {
  const auto it = jobs_.find(gid);
  if (it == jobs_.end()) return;  // completed while the timer was in flight
  const InFlightJob job = it->second;
  jobs_.erase(it);
  ++stats_.dispatch_timeouts;
  if (outstanding_[static_cast<std::size_t>(job.backend)] > 0) {
    --outstanding_[static_cast<std::size_t>(job.backend)];
  }
  // A straggler DONE for this gid later is ignored by handle_backend_line
  // (unknown id), so a slow-but-alive backend costs a duplicate execution,
  // never a wrong reply.
  membership_->note_failure(job.backend, loop_.now());
  status("LB TIMEOUT backend=" + std::to_string(job.backend) +
         " gid=" + std::to_string(gid));
  if (job.attempts < options_.max_redispatch) {
    dispatch_attempt(job.client_fd, job.client_id, job.attempts + 1,
                     /*avoid=*/job.backend);
  } else {
    ++stats_.jobs_rejected;
    send_to_client(job.client_fd, format_client_err(job.client_id, "timeout"));
  }
}

// --- backend data plane ----------------------------------------------------

void Dispatcher::on_backend_readable(int index) {
  BackendConn& backend = backends_[static_cast<std::size_t>(index)];
  if (!backend.registered) return;
  char buffer[4096];
  for (;;) {
    const ssize_t n = recv(backend.fd.get(), buffer, sizeof(buffer), 0);
    if (n > 0) {
      backend.in.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    drop_backend(index);
    return;
  }
  std::string line;
  while (backend.registered && backend.in.next_line(&line)) {
    handle_backend_line(index, line);
  }
}

void Dispatcher::handle_backend_line(int index, const std::string& line) {
  const auto done = parse_done(line);
  if (!done) return;
  const double now = loop_.now();
  if (membership_ != nullptr) {
    // A DONE is the strongest liveness signal there is: the backend just
    // served a job end to end.
    membership_->note_report(index, now);
  }
  const auto it = jobs_.find(done->id);
  if (it == jobs_.end()) return;  // duplicate/unknown/timed-out completion
  const InFlightJob job = it->second;
  jobs_.erase(it);
  if (job.timeout_timer != 0) loop_.cancel_timer(job.timeout_timer);
  if (outstanding_[static_cast<std::size_t>(index)] > 0) {
    --outstanding_[static_cast<std::size_t>(index)];
  }
  ++stats_.jobs_completed;
  if (options_.record != nullptr) {
    options_.record->note_done(done->id, now, done->service);
  }
  if (options_.trace != nullptr) {
    options_.trace->on_departure(now, index, done->queue_len);
  }
  if (options_.schedule == UpdateSchedule::kPiggyback) {
    // The update-on-access path: the DONE reply is the access that refreshes
    // the dispatcher's entry for this backend.
    board_.apply_report(index, done->queue_len, now);
    if (options_.trace != nullptr) {
      options_.trace->on_board_refresh(now, now, board_.version(),
                                       board_.loads());
    }
  }
  if (job.client_fd >= 0 && clients_.count(job.client_fd) != 0) {
    send_to_client(job.client_fd,
                   format_client_done(ClientDoneMsg{job.client_id, index}));
  }
}

// --- connection plumbing ---------------------------------------------------

void Dispatcher::send_to_client(int fd, const std::string& bytes) {
  const auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  it->second.out.append(bytes);
  flush_conn(fd, &it->second.out, /*want_read=*/true);
}

void Dispatcher::send_to_backend(int index, const std::string& bytes) {
  BackendConn& backend = backends_[static_cast<std::size_t>(index)];
  if (!backend.registered) return;
  backend.out.append(bytes);
  flush_conn(backend.fd.get(), &backend.out, /*want_read=*/true);
}

void Dispatcher::flush_conn(int fd, WriteBuffer* out, bool want_read) {
  out->flush(fd);
  loop_.set_interest(fd, want_read, out->wants_write());
}

void Dispatcher::drop_client(int fd) {
  const auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  loop_.forget(fd);
  clients_.erase(it);
  // In-flight jobs from this client still complete at their backend (the
  // queue is real); only the reply is undeliverable.
  for (auto& [gid, job] : jobs_) {
    if (job.client_fd == fd) job.client_fd = -1;
  }
}

void Dispatcher::drop_backend(int index, bool observed_failure) {
  BackendConn& backend = backends_[static_cast<std::size_t>(index)];
  if (!backend.registered) return;
  loop_.forget(backend.fd.get());
  backend.fd.reset();
  backend.registered = false;
  --registered_;
  outstanding_[static_cast<std::size_t>(index)] = 0;
  if (membership_ != nullptr && observed_failure) {
    membership_->note_failure(index, loop_.now());
  }
  // Collect the in-flight jobs first: re-dispatching mutates jobs_.
  std::vector<InFlightJob> orphans;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->second.backend == index) {
      if (it->second.timeout_timer != 0) {
        loop_.cancel_timer(it->second.timeout_timer);
      }
      orphans.push_back(it->second);
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  status("LB BACKEND-LOST " + std::to_string(index));
  for (const InFlightJob& job : orphans) {
    if (membership_ != nullptr && job.attempts < options_.max_redispatch &&
        registered_ > 0) {
      dispatch_attempt(job.client_fd, job.client_id, job.attempts + 1,
                       /*avoid=*/index);
      continue;
    }
    ++stats_.jobs_orphaned;
    if (job.client_fd >= 0) {
      send_to_client(job.client_fd,
                     format_client_err(job.client_id, "backend-died"));
    }
  }
}

}  // namespace stale::net
