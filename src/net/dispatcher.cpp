#include "net/dispatcher.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>

#include "sim/distributions.h"

namespace stale::net {

namespace {

// The live loop reuses the simulator's RNG split convention: one base seed,
// decorrelated streams per consumer.
sim::Rng split_stream(std::uint64_t seed, int stream) {
  sim::Rng rng(seed);
  for (int i = 0; i < stream; ++i) rng.long_jump();
  return rng;
}

}  // namespace

Dispatcher::Dispatcher(const DispatcherOptions& options)
    : options_(options),
      policy_(policy::make_policy(options.policy_spec)),
      board_(options.num_backends, options.schedule, options.update_period,
             /*start_time=*/0.0),
      rng_(split_stream(options.seed, 0)),
      fault_rng_(split_stream(options.seed, 1)),
      backends_(static_cast<std::size_t>(options.num_backends)),
      outstanding_(static_cast<std::size_t>(options.num_backends), 0) {
  if (options.num_backends <= 0) {
    throw std::invalid_argument("Dispatcher needs --backends >= 1");
  }
  options_.faults.validate();
  const double window = options.rate_window > 0.0
                            ? options.rate_window
                            : 4.0 * std::max(options.update_period, 0.25);
  // Near-zero initial rate (the estimator rejects exactly 0): until arrivals
  // fill the window, LI degrades toward "interpret the board as fresh",
  // which is the paper's K = 0 behaviour.
  rate_ = std::make_unique<core::WindowedRateEstimator>(window, 1e-9);

  listen_fd_ = tcp_listen(options.host, options.tcp_port, &tcp_port_);
  udp_fd_ = udp_bind(options.host, options.udp_port, &udp_port_);
  stats_.per_backend_dispatched.assign(
      static_cast<std::size_t>(options.num_backends), 0);
  status("LB LISTENING tcp=" + std::to_string(tcp_port_) +
         " udp=" + std::to_string(udp_port_));
}

void Dispatcher::status(const std::string& line) {
  if (options_.status_out == nullptr) return;
  *options_.status_out << line << std::endl;
}

void Dispatcher::run(const std::atomic<bool>* stop_flag) {
  stats_.started_at = loop_.now();
  loop_.watch(listen_fd_.get(), /*want_read=*/true, /*want_write=*/false,
              [this](std::uint32_t) { accept_clients(); });
  loop_.watch(udp_fd_.get(), /*want_read=*/true, /*want_write=*/false,
              [this](std::uint32_t) { on_udp_readable(); });
  if (options_.duration > 0.0) {
    loop_.add_timer(options_.duration, [this] { loop_.stop(); });
  }
  loop_.run(stop_flag);
  stats_.stopped_at = loop_.now();
}

// --- control plane (UDP) ---------------------------------------------------

void Dispatcher::on_udp_readable() {
  char buffer[2048];
  for (;;) {
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    const ssize_t n =
        recvfrom(udp_fd_.get(), buffer, sizeof(buffer) - 1, 0,
                 reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    std::string payload(buffer, static_cast<std::size_t>(n));
    while (!payload.empty() &&
           (payload.back() == '\n' || payload.back() == '\r')) {
      payload.pop_back();
    }
    char host[32] = "127.0.0.1";
    inet_ntop(AF_INET, &from.sin_addr, host, sizeof(host));
    handle_datagram(payload, host);
  }
}

void Dispatcher::handle_datagram(const std::string& payload,
                                 const std::string& from) {
  if (const auto hello = parse_hello(payload)) {
    ++stats_.hellos_received;
    register_backend(*hello, from);
    return;
  }
  if (const auto load = parse_load(payload)) {
    ++stats_.reports_received;
    const double now = loop_.now();
    // Injected degradation of the report path — the live analogue of
    // loadinfo's RefreshFaults.
    if (options_.faults.update_loss > 0.0 &&
        fault_rng_.next_double() < options_.faults.update_loss) {
      ++stats_.reports_dropped;
      if (options_.trace != nullptr) {
        options_.trace->on_refresh_fault(
            now, obs::FaultTraceEvent::kRefreshLost, load->index);
      }
      return;
    }
    if (options_.faults.update_extra_delay > 0.0) {
      ++stats_.reports_delayed;
      if (options_.trace != nullptr) {
        options_.trace->on_refresh_fault(
            now, obs::FaultTraceEvent::kRefreshDelayed, load->index);
      }
      const double delay = sim::Exponential(options_.faults.update_extra_delay)
                               .sample(fault_rng_);
      const LoadMsg delayed = *load;
      loop_.add_timer(delay, [this, delayed] { apply_report(delayed); });
      return;
    }
    apply_report(*load);
  }
  // Unknown datagrams are dropped silently, like the network would.
}

void Dispatcher::apply_report(const LoadMsg& msg) {
  const double now = loop_.now();
  board_.apply_report(msg.index, msg.queue_len, now);
  if (options_.trace != nullptr) {
    options_.trace->on_board_refresh(now, now, board_.version(),
                                     board_.loads());
  }
}

void Dispatcher::register_backend(const HelloMsg& hello,
                                  const std::string& from_host) {
  if (hello.index < 0 || hello.index >= options_.num_backends) return;
  BackendConn& backend = backends_[static_cast<std::size_t>(hello.index)];
  if (backend.registered) return;  // duplicate HELLO heartbeat
  backend.endpoint = Endpoint{from_host, hello.tcp_port};
  backend.fd = tcp_connect(backend.endpoint);
  backend.in = LineBuffer();
  backend.out = WriteBuffer();
  backend.registered = true;
  ++registered_;
  const int index = hello.index;
  loop_.watch(backend.fd.get(), /*want_read=*/true, /*want_write=*/false,
              [this, index](std::uint32_t events) {
                if (events & EventLoop::kError) {
                  drop_backend(index);
                  return;
                }
                if (events & EventLoop::kWritable) {
                  BackendConn& b = backends_[static_cast<std::size_t>(index)];
                  flush_conn(b.fd.get(), &b.out, /*want_read=*/true);
                }
                if (events & EventLoop::kReadable) on_backend_readable(index);
              });
  status("LB BACKEND " + std::to_string(index) + " " +
         backend.endpoint.to_string());
  if (registered_ == options_.num_backends) {
    status("LB READY backends=" + std::to_string(registered_));
  }
}

// --- client data plane -----------------------------------------------------

void Dispatcher::accept_clients() {
  for (;;) {
    Fd conn = tcp_accept(listen_fd_.get());
    if (!conn.valid()) return;
    const int fd = conn.get();
    ClientConn& client = clients_[fd];
    client.fd = std::move(conn);
    loop_.watch(fd, /*want_read=*/true, /*want_write=*/false,
                [this, fd](std::uint32_t events) {
                  if (events & EventLoop::kError) {
                    drop_client(fd);
                    return;
                  }
                  if (events & EventLoop::kWritable) {
                    const auto it = clients_.find(fd);
                    if (it != clients_.end()) {
                      flush_conn(fd, &it->second.out, /*want_read=*/true);
                    }
                  }
                  if (events & EventLoop::kReadable) on_client_readable(fd);
                });
  }
}

void Dispatcher::on_client_readable(int fd) {
  const auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  char buffer[4096];
  for (;;) {
    const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      it->second.in.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    drop_client(fd);  // orderly close or hard error
    return;
  }
  if (it->second.in.poisoned()) {
    drop_client(fd);
    return;
  }
  std::string line;
  while (clients_.count(fd) != 0 && it->second.in.next_line(&line)) {
    handle_client_line(fd, line);
  }
}

void Dispatcher::handle_client_line(int fd, const std::string& line) {
  const auto job = parse_job(line);
  if (!job) return;  // garbage line; ignore
  ++stats_.jobs_received;
  dispatch_job(fd, job->id);
}

void Dispatcher::dispatch_job(int client_fd, std::uint64_t client_id) {
  if (registered_ == 0) {
    ++stats_.jobs_rejected;
    send_to_client(client_fd, format_client_err(client_id, "no-backends"));
    return;
  }
  const double now = loop_.now();
  rate_->on_arrival(now);

  policy::DispatchContext context;
  context.loads = board_.loads();
  context.age = options_.schedule == UpdateSchedule::kPeriodic
                    ? board_.phase_elapsed(now)
                    : board_.age(now);
  context.lambda_total = rate_->rate();
  context.phase_length = board_.phase_length();
  context.phase_elapsed = board_.phase_elapsed(now);
  context.info_version = board_.version();
  context.trace = options_.trace;

  int backend = policy_->select(context, rng_);
  if (backend < 0 || backend >= options_.num_backends ||
      !backends_[static_cast<std::size_t>(backend)].registered) {
    // Policy picked an unregistered/invalid backend (possible briefly after
    // a backend connection dies): fall back to any registered one.
    backend = -1;
    for (int i = 0; i < options_.num_backends; ++i) {
      if (backends_[static_cast<std::size_t>(i)].registered) {
        backend = i;
        break;
      }
    }
    if (backend < 0) {
      ++stats_.jobs_rejected;
      send_to_client(client_fd, format_client_err(client_id, "no-backends"));
      return;
    }
  }

  const std::uint64_t gid = next_gid_++;
  jobs_[gid] = InFlightJob{client_fd, client_id, backend};
  ++outstanding_[static_cast<std::size_t>(backend)];
  ++stats_.jobs_dispatched;
  ++stats_.per_backend_dispatched[static_cast<std::size_t>(backend)];
  board_.note_dispatch(backend, now);
  send_to_backend(backend, format_job(JobMsg{gid}));

  if (options_.trace != nullptr) {
    options_.trace->on_decision(now, backend, context.age);
    // Job sizes are drawn backend-side, so the dispatch event carries size 0
    // and no departure prediction; queue_len_after is the LB's in-flight
    // count, its live proxy for the backend queue.
    options_.trace->on_dispatch(
        now, backend, /*job_size=*/0.0,
        outstanding_[static_cast<std::size_t>(backend)], /*departure=*/0.0);
  }
}

// --- backend data plane ----------------------------------------------------

void Dispatcher::on_backend_readable(int index) {
  BackendConn& backend = backends_[static_cast<std::size_t>(index)];
  if (!backend.registered) return;
  char buffer[4096];
  for (;;) {
    const ssize_t n = recv(backend.fd.get(), buffer, sizeof(buffer), 0);
    if (n > 0) {
      backend.in.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    drop_backend(index);
    return;
  }
  std::string line;
  while (backend.registered && backend.in.next_line(&line)) {
    handle_backend_line(index, line);
  }
}

void Dispatcher::handle_backend_line(int index, const std::string& line) {
  const auto done = parse_done(line);
  if (!done) return;
  const auto it = jobs_.find(done->id);
  if (it == jobs_.end()) return;  // duplicate/unknown completion
  const InFlightJob job = it->second;
  jobs_.erase(it);
  if (outstanding_[static_cast<std::size_t>(index)] > 0) {
    --outstanding_[static_cast<std::size_t>(index)];
  }
  ++stats_.jobs_completed;
  const double now = loop_.now();
  if (options_.trace != nullptr) {
    options_.trace->on_departure(now, index, done->queue_len);
  }
  if (options_.schedule == UpdateSchedule::kPiggyback) {
    // The update-on-access path: the DONE reply is the access that refreshes
    // the dispatcher's entry for this backend.
    board_.apply_report(index, done->queue_len, now);
    if (options_.trace != nullptr) {
      options_.trace->on_board_refresh(now, now, board_.version(),
                                       board_.loads());
    }
  }
  if (job.client_fd >= 0 && clients_.count(job.client_fd) != 0) {
    send_to_client(job.client_fd,
                   format_client_done(ClientDoneMsg{job.client_id, index}));
  }
}

// --- connection plumbing ---------------------------------------------------

void Dispatcher::send_to_client(int fd, const std::string& bytes) {
  const auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  it->second.out.append(bytes);
  flush_conn(fd, &it->second.out, /*want_read=*/true);
}

void Dispatcher::send_to_backend(int index, const std::string& bytes) {
  BackendConn& backend = backends_[static_cast<std::size_t>(index)];
  if (!backend.registered) return;
  backend.out.append(bytes);
  flush_conn(backend.fd.get(), &backend.out, /*want_read=*/true);
}

void Dispatcher::flush_conn(int fd, WriteBuffer* out, bool want_read) {
  out->flush(fd);
  loop_.set_interest(fd, want_read, out->wants_write());
}

void Dispatcher::drop_client(int fd) {
  const auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  loop_.forget(fd);
  clients_.erase(it);
  // In-flight jobs from this client still complete at their backend (the
  // queue is real); only the reply is undeliverable.
  for (auto& [gid, job] : jobs_) {
    if (job.client_fd == fd) job.client_fd = -1;
  }
}

void Dispatcher::drop_backend(int index) {
  BackendConn& backend = backends_[static_cast<std::size_t>(index)];
  if (!backend.registered) return;
  loop_.forget(backend.fd.get());
  backend.fd.reset();
  backend.registered = false;
  --registered_;
  outstanding_[static_cast<std::size_t>(index)] = 0;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->second.backend == index) {
      ++stats_.jobs_orphaned;
      if (it->second.client_fd >= 0) {
        send_to_client(it->second.client_fd,
                       format_client_err(it->second.client_id, "backend-died"));
      }
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  status("LB BACKEND-LOST " + std::to_string(index));
}

}  // namespace stale::net
