// NetBoard: the live counterpart of loadinfo's bulletin boards.
//
// The simulated boards (loadinfo/periodic_board.h etc.) synthesize staleness
// from the simulated clock; here staleness is physical — backends post queue
// lengths over UDP and the board entry for server i is simply the last
// report that survived the network (and the optional injected report loss),
// stamped with its receive time. The dispatcher builds each request's
// policy::DispatchContext from this board, so every policy:: implementation
// runs unmodified against real stale information.
//
// Two update schedules mirror the paper's information models:
//   kPeriodic  — backends post every T seconds (paper Section 3.1's periodic
//                bulletin board, phases staggered per backend since the
//                backends' timers are unsynchronized);
//   kPiggyback — no standing reports; the board learns server i's queue
//                length from each DONE reply and optimistically counts the
//                dispatcher's own in-flight dispatches (the update-on-access
//                model of Section 3.3, where acting on a server refreshes
//                your information about it).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace stale::net {

enum class UpdateSchedule { kPeriodic, kPiggyback };

const char* update_schedule_name(UpdateSchedule schedule);
// Parses "periodic" / "piggyback"; throws std::invalid_argument otherwise.
UpdateSchedule parse_update_schedule(const std::string& name);

class NetBoard {
 public:
  // `update_period` is T; required positive for kPeriodic (it is the phase
  // length LI policies interpret against), ignored for kPiggyback.
  NetBoard(int num_backends, UpdateSchedule schedule, double update_period,
           double start_time);

  // A load report for backend `index` became visible at `now`.
  void apply_report(int index, int queue_len, double now);

  // The dispatcher sent a job to `index` at `now`. Under kPiggyback this
  // bumps the optimistic local count; under kPeriodic it is a no-op (the
  // paper's periodic board never reflects the dispatcher's own actions).
  void note_dispatch(int index, double now);

  std::span<const int> loads() const { return loads_; }
  int num_backends() const { return static_cast<int>(loads_.size()); }

  // Age of the *oldest* visible entry — the conservative staleness a
  // timestamped board lets a dispatcher compute.
  double age(double now) const;

  // Time since the newest report was applied (the within-phase position
  // under periodic update).
  double phase_elapsed(double now) const;

  // T under kPeriodic, 0 under kPiggyback (DispatchContext::periodic()).
  double phase_length() const;

  // Bumped on every visible change; policies key their caches on it.
  std::uint64_t version() const { return version_; }

  std::uint64_t reports_applied() const { return reports_applied_; }

 private:
  UpdateSchedule schedule_;
  double update_period_;
  std::vector<int> loads_;
  std::vector<double> measured_at_;
  double last_refresh_;
  std::uint64_t version_ = 1;
  std::uint64_t reports_applied_ = 0;
};

}  // namespace stale::net
