#include "net/clock.h"

#include <ctime>

namespace stale::net {

namespace {

double raw_now() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

double mono_now() {
  static const double epoch = raw_now();
  return raw_now() - epoch;
}

}  // namespace stale::net
