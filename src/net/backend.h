// staleload_backend: the toy FIFO server behind the live dispatcher.
//
// One queue, one (virtual) processor: jobs arrive as `JOB <gid>` lines from
// a dispatcher's persistent TCP connection, wait FIFO, occupy the server
// for an exponential service time (an event-loop timer — no thread sleeps),
// and leave as `DONE <gid> <queue_len_after> <service>` replies routed back
// over the connection the job arrived on. This is exactly the paper's M/M/1-ish
// server, except time is physical.
//
// Control plane: the backend announces itself with periodic `HELLO`
// datagrams to every configured dispatcher until each one's data-plane
// connection has arrived, then posts `LOAD` reports every update period,
// fanned out to all dispatchers (0 disables standing reports — the
// piggyback schedule needs none). In the sharded-dispatcher topology the
// backend is the shared ground truth all D bulletin boards sample; the
// queue it reports is the one FIFO queue, whoever asks.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

#include "net/buffer.h"
#include "net/event_loop.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "sim/rng.h"

namespace stale::net {

struct BackendOptions {
  std::string host = "127.0.0.1";
  std::uint16_t tcp_port = 0;  // 0 = ephemeral
  int index = 0;               // this backend's slot at the dispatchers

  // UDP control endpoints, one per dispatcher. The backend keeps HELLOing
  // until it holds one data-plane connection per entry.
  std::vector<Endpoint> report_to;

  double update_period = 0.0;  // seconds between LOAD reports; 0 = off
  double mean_service = 0.05;  // exponential service time mean, seconds
  double hello_period = 0.2;   // registration retry period

  std::uint64_t seed = 1;
  std::ostream* status_out = nullptr;
};

struct BackendStats {
  std::uint64_t jobs_accepted = 0;
  std::uint64_t jobs_served = 0;
  std::uint64_t reports_sent = 0;  // datagrams (fan-out counts each)
  int max_queue_len = 0;
};

class Backend {
 public:
  explicit Backend(const BackendOptions& options);

  std::uint16_t tcp_port() const { return tcp_port_; }

  void run(const std::atomic<bool>* stop_flag = nullptr);

  const BackendStats& stats() const { return stats_; }

 private:
  // One dispatcher's data-plane connection. Links are slots filled in
  // accept order — the backend never needs to know *which* dispatcher is on
  // the other end, only that each job's DONE goes back where it came from.
  struct Link {
    Fd fd;
    LineBuffer in;
    WriteBuffer out;
    bool connected = false;
  };

  struct QueuedJob {
    std::uint64_t gid = 0;
    int link = -1;  // originating dispatcher connection
  };

  void accept_dispatcher();
  void on_link_readable(int link);
  void start_service_if_idle();
  void finish_job();
  void send_hello();
  void send_load_report();
  void drop_link(int link);
  int connected_links() const;
  int queue_len() const {
    return static_cast<int>(queue_.size()) + (busy_ ? 1 : 0);
  }
  void status(const std::string& line);

  BackendOptions options_;
  EventLoop loop_;
  Fd listen_fd_;
  Fd udp_fd_;
  std::uint16_t tcp_port_ = 0;

  std::vector<Link> links_;  // one slot per dispatcher

  std::deque<QueuedJob> queue_;  // waiting jobs (excludes in-service)
  bool busy_ = false;
  QueuedJob in_service_;
  double in_service_duration_ = 0.0;  // drawn service time, reported in DONE

  sim::Rng rng_;
  std::uint64_t report_seq_ = 0;
  BackendStats stats_;
};

}  // namespace stale::net
