// staleload_backend: the toy FIFO server behind the live dispatcher.
//
// One queue, one (virtual) processor: jobs arrive as `JOB <gid>` lines from
// the dispatcher's persistent TCP connection, wait FIFO, occupy the server
// for an exponential service time (an event-loop timer — no thread sleeps),
// and leave as `DONE <gid> <queue_len_after>` replies. This is exactly the
// paper's M/M/1-ish server, except time is physical.
//
// Control plane: the backend announces itself to the dispatcher with
// periodic `HELLO` datagrams until the dispatcher's data-plane connection
// arrives, then posts `LOAD` reports every update period (0 disables
// standing reports — the piggyback schedule needs none).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <ostream>
#include <string>

#include "net/buffer.h"
#include "net/event_loop.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "sim/rng.h"

namespace stale::net {

struct BackendOptions {
  std::string host = "127.0.0.1";
  std::uint16_t tcp_port = 0;  // 0 = ephemeral
  int index = 0;               // this backend's slot at the dispatcher
  Endpoint report_to;          // dispatcher's UDP control endpoint

  double update_period = 0.0;  // seconds between LOAD reports; 0 = off
  double mean_service = 0.05;  // exponential service time mean, seconds
  double hello_period = 0.2;   // registration retry period

  std::uint64_t seed = 1;
  std::ostream* status_out = nullptr;
};

struct BackendStats {
  std::uint64_t jobs_accepted = 0;
  std::uint64_t jobs_served = 0;
  std::uint64_t reports_sent = 0;
  int max_queue_len = 0;
};

class Backend {
 public:
  explicit Backend(const BackendOptions& options);

  std::uint16_t tcp_port() const { return tcp_port_; }

  void run(const std::atomic<bool>* stop_flag = nullptr);

  const BackendStats& stats() const { return stats_; }

 private:
  void accept_dispatcher();
  void on_conn_readable();
  void start_service_if_idle();
  void finish_job();
  void send_hello();
  void send_load_report();
  void drop_conn();
  int queue_len() const {
    return static_cast<int>(queue_.size()) + (busy_ ? 1 : 0);
  }
  void status(const std::string& line);

  BackendOptions options_;
  EventLoop loop_;
  Fd listen_fd_;
  Fd udp_fd_;
  std::uint16_t tcp_port_ = 0;

  Fd conn_;  // the dispatcher's data-plane connection
  LineBuffer in_;
  WriteBuffer out_;
  bool connected_ = false;

  std::deque<std::uint64_t> queue_;  // waiting gids (excludes in-service)
  bool busy_ = false;
  std::uint64_t in_service_ = 0;

  sim::Rng rng_;
  std::uint64_t report_seq_ = 0;
  BackendStats stats_;
};

}  // namespace stale::net
