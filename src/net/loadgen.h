// staleload_loadgen: open-loop Poisson client for the live dispatcher.
//
// Sends `JOB <id>` lines to the dispatcher on one persistent TCP connection
// with exponential inter-arrival gaps (an open-loop arrival process: the
// send schedule never waits for completions, so an overloaded dispatcher
// builds real queues instead of throttling its own offered load). Records
// per-job response times (send -> DONE) and reports mean + percentiles in
// the same {"config": ..., "result": ...} JSON shape as staleload_sim, so
// sim-vs-live comparisons are one jq expression apart.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "net/buffer.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "sim/rng.h"

namespace stale::net {

struct LoadGenOptions {
  Endpoint target;       // dispatcher's client-facing TCP endpoint
  double lambda = 10.0;  // aggregate arrival rate, jobs/second
  double duration = 5.0; // send window, seconds
  double drain = 2.0;    // post-window grace for outstanding replies
  std::uint64_t max_jobs = 0;  // optional hard cap; 0 = no cap
  std::uint64_t seed = 1;
  std::uint64_t warmup_jobs = 0;  // first N completions excluded from stats
  // Bounded reconnect: a refused or lost dispatcher connection is retried up
  // to connect_retries times, waiting connect_backoff * 2^attempt (capped at
  // 2s) between attempts, so the loadgen survives a dispatcher that starts
  // late or restarts mid-run. The counter resets once a reply arrives; jobs
  // whose send window falls in a disconnected gap count as errors (open-loop
  // arrivals never pause). 0 restores the old exit-on-first-failure.
  int connect_retries = 10;
  double connect_backoff = 0.2;
  std::ostream* status_out = nullptr;
};

struct LoadGenReport {
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;    // ERR replies (rejected dispatches)
  std::uint64_t measured = 0;  // completions counted after warmup
  double elapsed = 0.0;        // run() wall span, seconds
  double mean_response = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::vector<std::uint64_t> per_backend_completions;
};

class LoadGen {
 public:
  explicit LoadGen(const LoadGenOptions& options);

  // Connects, runs the arrival process, drains, computes the report.
  void run(const std::atomic<bool>* stop_flag = nullptr);

  const LoadGenReport& report() const { return report_; }

 private:
  void connect_now();
  void on_conn_lost();
  void send_next_job();
  void on_readable();
  void handle_line(const std::string& line);
  void status(const std::string& line);

  LoadGenOptions options_;
  EventLoop loop_;
  Fd conn_;
  LineBuffer in_;
  WriteBuffer out_;
  sim::Rng rng_;

  std::uint64_t next_id_ = 1;
  bool sending_ = true;
  int connect_attempts_ = 0;  // consecutive failures; reset by any reply
  std::map<std::uint64_t, double> outstanding_;  // id -> send time
  std::vector<double> latencies_;
  LoadGenReport report_;
};

// The staleload_sim-shaped JSON record for one loadgen run.
void write_loadgen_json(std::ostream& os, const LoadGenOptions& options,
                        const LoadGenReport& report);

}  // namespace stale::net
