// staleload_loadgen: open-loop Poisson client for the live dispatcher.
//
// Sends `JOB <id>` lines to the dispatcher(s) on persistent TCP connections
// with exponential inter-arrival gaps (an open-loop arrival process: the
// send schedule never waits for completions, so an overloaded dispatcher
// builds real queues instead of throttling its own offered load). With more
// than one target the arrivals round-robin across the dispatcher shards,
// failing over past disconnected ones — the live analogue of the
// simulator's ArrivalSplitter, minus the randomness (round-robin keeps the
// per-shard offered load exactly matched). Records per-job response times
// (send -> DONE) and reports mean + percentiles in the same
// {"config": ..., "result": ...} JSON shape as staleload_sim, so
// sim-vs-live comparisons are one jq expression apart.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "net/buffer.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "sim/rng.h"

namespace stale::net {

struct LoadGenOptions {
  // Dispatchers' client-facing TCP endpoints; one connection each, arrivals
  // round-robined across them.
  std::vector<Endpoint> targets;
  double lambda = 10.0;  // aggregate arrival rate, jobs/second
  double duration = 5.0; // send window, seconds
  double drain = 2.0;    // post-window grace for outstanding replies
  std::uint64_t max_jobs = 0;  // optional hard cap; 0 = no cap
  std::uint64_t seed = 1;
  std::uint64_t warmup_jobs = 0;  // first N completions excluded from stats
  // Bounded reconnect: a refused or lost dispatcher connection is retried up
  // to connect_retries times, waiting connect_backoff * 2^attempt (capped at
  // 2s) between attempts, so the loadgen survives a dispatcher that starts
  // late or restarts mid-run. The counter is per target and resets once that
  // target replies; a target past its retry budget is abandoned, and its
  // share of the arrivals fails over to the surviving targets. Jobs whose
  // send window finds no connected target count as errors (open-loop
  // arrivals never pause). 0 restores the old exit-on-first-failure.
  int connect_retries = 10;
  double connect_backoff = 0.2;
  std::ostream* status_out = nullptr;
};

struct LoadGenReport {
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;    // ERR replies (rejected dispatches)
  std::uint64_t measured = 0;  // completions counted after warmup
  double elapsed = 0.0;        // run() wall span, seconds
  double mean_response = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::vector<std::uint64_t> per_backend_completions;
  // Per dispatcher shard, indexed like LoadGenOptions::targets.
  std::vector<std::uint64_t> per_target_sent;
  std::vector<std::uint64_t> per_target_completed;
};

class LoadGen {
 public:
  explicit LoadGen(const LoadGenOptions& options);

  // Connects, runs the arrival process, drains, computes the report.
  void run(const std::atomic<bool>* stop_flag = nullptr);

  const LoadGenReport& report() const { return report_; }

 private:
  // One dispatcher shard's connection state.
  struct Target {
    Fd fd;
    LineBuffer in;
    WriteBuffer out;
    int attempts = 0;       // consecutive connect failures
    bool abandoned = false; // retry budget exhausted
  };

  struct Pending {
    double sent_at = 0.0;
    int target = -1;
  };

  void connect_now(int target);
  void on_conn_lost(int target);
  void send_next_job();
  void on_readable(int target);
  void handle_line(int target, const std::string& line);
  bool any_active() const;
  void status(const std::string& line);

  LoadGenOptions options_;
  EventLoop loop_;
  std::vector<Target> targets_;
  sim::Rng rng_;

  std::uint64_t next_id_ = 1;
  bool sending_ = true;
  std::size_t rr_next_ = 0;  // round-robin cursor over targets
  std::map<std::uint64_t, Pending> outstanding_;  // id -> send record
  std::vector<double> latencies_;
  LoadGenReport report_;
};

// The staleload_sim-shaped JSON record for one loadgen run.
void write_loadgen_json(std::ostream& os, const LoadGenOptions& options,
                        const LoadGenReport& report);

}  // namespace stale::net
