// Monotonic wall time for the live subsystem.
//
// Everything under src/net runs against real sockets and real delay, so —
// unlike every simulation layer — it reads the host's monotonic clock. The
// staleload-lint D-rules stop at this boundary: `net` is registered as an
// exempt scope (see tools/lint/lint.cpp), which is exactly what makes this
// header legal here and illegal one directory over in src/sim.
//
// Times are doubles in seconds from an arbitrary per-process epoch, matching
// the simulator's time unit so recorded live traces feed the same obs/
// probes and herd detector as simulated ones.
#pragma once

namespace stale::net {

// Seconds on CLOCK_MONOTONIC since the first call in this process.
double mono_now();

}  // namespace stale::net
