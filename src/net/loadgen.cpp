#include "net/loadgen.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "net/protocol.h"
#include "sim/distributions.h"
#include "sim/stats.h"

namespace stale::net {

LoadGen::LoadGen(const LoadGenOptions& options)
    : options_(options), rng_(options.seed) {
  if (options.targets.empty()) {
    throw std::invalid_argument("loadgen needs at least one target");
  }
  if (options.lambda <= 0.0) {
    throw std::invalid_argument("loadgen lambda must be > 0");
  }
  if (options.duration <= 0.0 && options.max_jobs == 0) {
    throw std::invalid_argument("loadgen needs a duration or a job cap");
  }
  targets_.resize(options.targets.size());
  report_.per_target_sent.assign(options.targets.size(), 0);
  report_.per_target_completed.assign(options.targets.size(), 0);
}

void LoadGen::status(const std::string& line) {
  if (options_.status_out == nullptr) return;
  *options_.status_out << line << std::endl;
}

bool LoadGen::any_active() const {
  for (const Target& target : targets_) {
    if (!target.abandoned) return true;
  }
  return false;
}

void LoadGen::run(const std::atomic<bool>* stop_flag) {
  const double started = loop_.now();
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    connect_now(static_cast<int>(i));
  }
  if (options_.duration > 0.0) {
    loop_.add_timer(options_.duration, [this] {
      sending_ = false;
      if (outstanding_.empty()) loop_.stop();
    });
    loop_.add_timer(options_.duration + options_.drain,
                    [this] { loop_.stop(); });
  }
  // First arrival after one exponential gap, like the simulator's Poisson
  // process.
  loop_.add_timer(sim::Exponential(1.0 / options_.lambda).sample(rng_),
                  [this] { send_next_job(); });
  std::string names = options_.targets.front().to_string();
  for (std::size_t i = 1; i < options_.targets.size(); ++i) {
    names += ',';
    names += options_.targets[i].to_string();
  }
  status("LOADGEN RUNNING targets=" + names);
  loop_.run(stop_flag);
  report_.elapsed = loop_.now() - started;

  std::sort(latencies_.begin(), latencies_.end());
  report_.measured = latencies_.size();
  if (!latencies_.empty()) {
    double sum = 0.0;
    for (double v : latencies_) sum += v;
    report_.mean_response = sum / static_cast<double>(latencies_.size());
    report_.p50 = sim::percentile_sorted(latencies_, 0.50);
    report_.p90 = sim::percentile_sorted(latencies_, 0.90);
    report_.p99 = sim::percentile_sorted(latencies_, 0.99);
  }
  status("LOADGEN DONE sent=" + std::to_string(report_.sent) +
         " completed=" + std::to_string(report_.completed));
}

void LoadGen::connect_now(int target_index) {
  Target& target = targets_[static_cast<std::size_t>(target_index)];
  try {
    target.fd = tcp_connect(options_.targets[static_cast<std::size_t>(
        target_index)]);
  } catch (const std::exception&) {
    on_conn_lost(target_index);  // immediate refusal; schedule the next try
    return;
  }
  target.in = LineBuffer();
  target.out = WriteBuffer();
  loop_.watch(target.fd.get(), /*want_read=*/true, /*want_write=*/false,
              [this, target_index](std::uint32_t events) {
                Target& t = targets_[static_cast<std::size_t>(target_index)];
                if (events & EventLoop::kError) {
                  on_conn_lost(target_index);
                  return;
                }
                if (events & EventLoop::kWritable) {
                  t.out.flush(t.fd.get());
                  loop_.set_interest(t.fd.get(), true, t.out.wants_write());
                }
                if (events & EventLoop::kReadable) on_readable(target_index);
              });
}

void LoadGen::on_conn_lost(int target_index) {
  Target& target = targets_[static_cast<std::size_t>(target_index)];
  if (target.fd.valid()) {
    loop_.forget(target.fd.get());
    target.fd.reset();
  }
  // Replies in flight on the dead connection will never arrive; they are
  // client-visible failures, like an ERR. Other targets' jobs live on.
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    if (it->second.target == target_index) {
      ++report_.errors;
      it = outstanding_.erase(it);
    } else {
      ++it;
    }
  }
  if (!sending_ && outstanding_.empty()) {
    loop_.stop();  // drain phase: nothing left to wait for
    return;
  }
  if (target.attempts >= options_.connect_retries) {
    target.abandoned = true;
    status("LOADGEN GIVE-UP target=" + std::to_string(target_index) +
           " attempts=" + std::to_string(target.attempts));
    if (!any_active()) {
      sending_ = false;
      loop_.stop();
    }
    return;
  }
  const double delay = std::min(
      options_.connect_backoff * std::ldexp(1.0, target.attempts), 2.0);
  ++target.attempts;
  status("LOADGEN RECONNECT target=" + std::to_string(target_index) +
         " attempt=" + std::to_string(target.attempts));
  loop_.add_timer(delay, [this, target_index] { connect_now(target_index); });
}

void LoadGen::send_next_job() {
  if (!sending_) return;
  if (options_.max_jobs > 0 && report_.sent >= options_.max_jobs) {
    sending_ = false;
    if (outstanding_.empty()) loop_.stop();
    return;
  }
  loop_.add_timer(sim::Exponential(1.0 / options_.lambda).sample(rng_),
                  [this] { send_next_job(); });
  // Round-robin with failover: this arrival belongs to the cursor's shard,
  // but a disconnected shard passes it to the next connected one so an
  // open-loop arrival is never silently skipped while any shard lives.
  int chosen = -1;
  for (std::size_t probe = 0; probe < targets_.size(); ++probe) {
    const std::size_t i = (rr_next_ + probe) % targets_.size();
    if (targets_[i].fd.valid()) {
      chosen = static_cast<int>(i);
      break;
    }
  }
  rr_next_ = (rr_next_ + 1) % targets_.size();
  if (chosen < 0) {
    // Fully disconnected gap: the open-loop arrival happens regardless and
    // fails at the client.
    ++report_.errors;
    return;
  }
  Target& target = targets_[static_cast<std::size_t>(chosen)];
  const std::uint64_t id = next_id_++;
  outstanding_[id] = Pending{loop_.now(), chosen};
  ++report_.sent;
  ++report_.per_target_sent[static_cast<std::size_t>(chosen)];
  target.out.append(format_job(JobMsg{id}));
  target.out.flush(target.fd.get());
  loop_.set_interest(target.fd.get(), true, target.out.wants_write());
}

void LoadGen::on_readable(int target_index) {
  Target& target = targets_[static_cast<std::size_t>(target_index)];
  char buffer[4096];
  for (;;) {
    const ssize_t n = recv(target.fd.get(), buffer, sizeof(buffer), 0);
    if (n > 0) {
      target.in.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    on_conn_lost(target_index);  // dispatcher hung up or reset
    return;
  }
  std::string line;
  while (target.in.next_line(&line)) handle_line(target_index, line);
  if (!sending_ && outstanding_.empty()) loop_.stop();
}

void LoadGen::handle_line(int target_index, const std::string& line) {
  // This shard is talking; its reconnects start fresh.
  targets_[static_cast<std::size_t>(target_index)].attempts = 0;
  if (const auto done = parse_client_done(line)) {
    const auto it = outstanding_.find(done->id);
    if (it == outstanding_.end()) return;
    const double latency = loop_.now() - it->second.sent_at;
    outstanding_.erase(it);
    ++report_.completed;
    ++report_.per_target_completed[static_cast<std::size_t>(target_index)];
    if (report_.completed > options_.warmup_jobs) latencies_.push_back(latency);
    const auto backend = static_cast<std::size_t>(done->backend);
    if (report_.per_backend_completions.size() <= backend) {
      report_.per_backend_completions.resize(backend + 1, 0);
    }
    ++report_.per_backend_completions[backend];
    return;
  }
  if (line.rfind("ERR ", 0) == 0) {
    // "ERR <id> <reason>": count it and retire the outstanding entry.
    const std::size_t space = line.find(' ', 4);
    const std::string id_text =
        space == std::string::npos ? line.substr(4)
                                   : line.substr(4, space - 4);
    ++report_.errors;
    outstanding_.erase(static_cast<std::uint64_t>(
        std::strtoull(id_text.c_str(), nullptr, 10)));
  }
}

void write_loadgen_json(std::ostream& os, const LoadGenOptions& options,
                        const LoadGenReport& report) {
  const auto saved_precision = os.precision();
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\"config\": {"
     << "\"target\": \"" << options.targets.front().to_string() << "\""
     << ", \"targets\": [";
  for (std::size_t i = 0; i < options.targets.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << options.targets[i].to_string() << "\"";
  }
  os << "], \"lambda\": " << options.lambda
     << ", \"duration\": " << options.duration
     << ", \"warmup_jobs\": " << options.warmup_jobs
     << ", \"seed\": " << options.seed << "}, \"result\": {"
     << "\"mean_response\": " << report.mean_response
     << ", \"p50\": " << report.p50 << ", \"p90\": " << report.p90
     << ", \"p99\": " << report.p99 << ", \"sent\": " << report.sent
     << ", \"completed\": " << report.completed
     << ", \"errors\": " << report.errors
     << ", \"measured\": " << report.measured
     << ", \"elapsed\": " << report.elapsed
     << ", \"per_target_sent\": [";
  for (std::size_t i = 0; i < report.per_target_sent.size(); ++i) {
    if (i > 0) os << ", ";
    os << report.per_target_sent[i];
  }
  os << "], \"per_target_completed\": [";
  for (std::size_t i = 0; i < report.per_target_completed.size(); ++i) {
    if (i > 0) os << ", ";
    os << report.per_target_completed[i];
  }
  os << "], \"per_backend_completions\": [";
  for (std::size_t i = 0; i < report.per_backend_completions.size(); ++i) {
    if (i > 0) os << ", ";
    os << report.per_backend_completions[i];
  }
  os << "]}}\n";
  os.precision(saved_precision);
}

}  // namespace stale::net
