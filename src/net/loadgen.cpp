#include "net/loadgen.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "net/protocol.h"
#include "sim/distributions.h"
#include "sim/stats.h"

namespace stale::net {

LoadGen::LoadGen(const LoadGenOptions& options)
    : options_(options), rng_(options.seed) {
  if (options.lambda <= 0.0) {
    throw std::invalid_argument("loadgen lambda must be > 0");
  }
  if (options.duration <= 0.0 && options.max_jobs == 0) {
    throw std::invalid_argument("loadgen needs a duration or a job cap");
  }
}

void LoadGen::status(const std::string& line) {
  if (options_.status_out == nullptr) return;
  *options_.status_out << line << std::endl;
}

void LoadGen::run(const std::atomic<bool>* stop_flag) {
  const double started = loop_.now();
  connect_now();
  if (options_.duration > 0.0) {
    loop_.add_timer(options_.duration, [this] {
      sending_ = false;
      if (outstanding_.empty()) loop_.stop();
    });
    loop_.add_timer(options_.duration + options_.drain,
                    [this] { loop_.stop(); });
  }
  // First arrival after one exponential gap, like the simulator's Poisson
  // process.
  loop_.add_timer(sim::Exponential(1.0 / options_.lambda).sample(rng_),
                  [this] { send_next_job(); });
  status("LOADGEN RUNNING target=" + options_.target.to_string());
  loop_.run(stop_flag);
  report_.elapsed = loop_.now() - started;

  std::sort(latencies_.begin(), latencies_.end());
  report_.measured = latencies_.size();
  if (!latencies_.empty()) {
    double sum = 0.0;
    for (double v : latencies_) sum += v;
    report_.mean_response = sum / static_cast<double>(latencies_.size());
    report_.p50 = sim::percentile_sorted(latencies_, 0.50);
    report_.p90 = sim::percentile_sorted(latencies_, 0.90);
    report_.p99 = sim::percentile_sorted(latencies_, 0.99);
  }
  status("LOADGEN DONE sent=" + std::to_string(report_.sent) +
         " completed=" + std::to_string(report_.completed));
}

void LoadGen::connect_now() {
  try {
    conn_ = tcp_connect(options_.target);
  } catch (const std::exception&) {
    on_conn_lost();  // immediate refusal; schedule the next attempt
    return;
  }
  in_ = LineBuffer();
  out_ = WriteBuffer();
  loop_.watch(conn_.get(), /*want_read=*/true, /*want_write=*/false,
              [this](std::uint32_t events) {
                if (events & EventLoop::kError) {
                  on_conn_lost();
                  return;
                }
                if (events & EventLoop::kWritable) {
                  out_.flush(conn_.get());
                  loop_.set_interest(conn_.get(), true, out_.wants_write());
                }
                if (events & EventLoop::kReadable) on_readable();
              });
}

void LoadGen::on_conn_lost() {
  if (conn_.valid()) {
    loop_.forget(conn_.get());
    conn_.reset();
  }
  // Replies in flight on the dead connection will never arrive; they are
  // client-visible failures, like an ERR.
  report_.errors += outstanding_.size();
  outstanding_.clear();
  if (!sending_) {
    loop_.stop();  // drain phase: nothing left to wait for
    return;
  }
  if (connect_attempts_ >= options_.connect_retries) {
    status("LOADGEN GIVE-UP attempts=" + std::to_string(connect_attempts_));
    sending_ = false;
    loop_.stop();
    return;
  }
  const double delay = std::min(
      options_.connect_backoff * std::ldexp(1.0, connect_attempts_), 2.0);
  ++connect_attempts_;
  status("LOADGEN RECONNECT attempt=" + std::to_string(connect_attempts_));
  loop_.add_timer(delay, [this] { connect_now(); });
}

void LoadGen::send_next_job() {
  if (!sending_) return;
  if (options_.max_jobs > 0 && report_.sent >= options_.max_jobs) {
    sending_ = false;
    if (outstanding_.empty()) loop_.stop();
    return;
  }
  loop_.add_timer(sim::Exponential(1.0 / options_.lambda).sample(rng_),
                  [this] { send_next_job(); });
  if (!conn_.valid()) {
    // Disconnected gap: the open-loop arrival happens regardless and fails
    // at the client.
    ++report_.errors;
    return;
  }
  const std::uint64_t id = next_id_++;
  outstanding_[id] = loop_.now();
  ++report_.sent;
  out_.append(format_job(JobMsg{id}));
  out_.flush(conn_.get());
  loop_.set_interest(conn_.get(), true, out_.wants_write());
}

void LoadGen::on_readable() {
  char buffer[4096];
  for (;;) {
    const ssize_t n = recv(conn_.get(), buffer, sizeof(buffer), 0);
    if (n > 0) {
      in_.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    on_conn_lost();  // dispatcher hung up or reset
    return;
  }
  std::string line;
  while (in_.next_line(&line)) handle_line(line);
  if (!sending_ && outstanding_.empty()) loop_.stop();
}

void LoadGen::handle_line(const std::string& line) {
  connect_attempts_ = 0;  // the dispatcher is talking; reconnects start fresh
  if (const auto done = parse_client_done(line)) {
    const auto it = outstanding_.find(done->id);
    if (it == outstanding_.end()) return;
    const double latency = loop_.now() - it->second;
    outstanding_.erase(it);
    ++report_.completed;
    if (report_.completed > options_.warmup_jobs) latencies_.push_back(latency);
    const auto backend = static_cast<std::size_t>(done->backend);
    if (report_.per_backend_completions.size() <= backend) {
      report_.per_backend_completions.resize(backend + 1, 0);
    }
    ++report_.per_backend_completions[backend];
    return;
  }
  if (line.rfind("ERR ", 0) == 0) {
    // "ERR <id> <reason>": count it and retire the outstanding entry.
    const std::size_t space = line.find(' ', 4);
    const std::string id_text =
        space == std::string::npos ? line.substr(4)
                                   : line.substr(4, space - 4);
    ++report_.errors;
    outstanding_.erase(static_cast<std::uint64_t>(
        std::strtoull(id_text.c_str(), nullptr, 10)));
  }
}

void write_loadgen_json(std::ostream& os, const LoadGenOptions& options,
                        const LoadGenReport& report) {
  const auto saved_precision = os.precision();
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\"config\": {"
     << "\"target\": \"" << options.target.to_string() << "\""
     << ", \"lambda\": " << options.lambda
     << ", \"duration\": " << options.duration
     << ", \"warmup_jobs\": " << options.warmup_jobs
     << ", \"seed\": " << options.seed << "}, \"result\": {"
     << "\"mean_response\": " << report.mean_response
     << ", \"p50\": " << report.p50 << ", \"p90\": " << report.p90
     << ", \"p99\": " << report.p99 << ", \"sent\": " << report.sent
     << ", \"completed\": " << report.completed
     << ", \"errors\": " << report.errors
     << ", \"measured\": " << report.measured
     << ", \"elapsed\": " << report.elapsed
     << ", \"per_backend_completions\": [";
  for (std::size_t i = 0; i < report.per_backend_completions.size(); ++i) {
    if (i > 0) os << ", ";
    os << report.per_backend_completions[i];
  }
  os << "]}}\n";
  os.precision(saved_precision);
}

}  // namespace stale::net
