#include "net/net_board.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace stale::net {

const char* update_schedule_name(UpdateSchedule schedule) {
  return schedule == UpdateSchedule::kPeriodic ? "periodic" : "piggyback";
}

UpdateSchedule parse_update_schedule(const std::string& name) {
  if (name == "periodic") return UpdateSchedule::kPeriodic;
  if (name == "piggyback") return UpdateSchedule::kPiggyback;
  throw std::invalid_argument("unknown update schedule '" + name +
                              "' (periodic|piggyback)");
}

NetBoard::NetBoard(int num_backends, UpdateSchedule schedule,
                   double update_period, double start_time)
    : schedule_(schedule),
      update_period_(update_period),
      loads_(static_cast<std::size_t>(num_backends), 0),
      measured_at_(static_cast<std::size_t>(num_backends), start_time),
      last_refresh_(start_time) {
  if (num_backends <= 0) {
    throw std::invalid_argument("NetBoard needs at least one backend");
  }
  if (schedule_ == UpdateSchedule::kPeriodic && update_period_ <= 0.0) {
    throw std::invalid_argument(
        "periodic update schedule needs a positive update period");
  }
}

void NetBoard::apply_report(int index, int queue_len, double now) {
  if (index < 0 || index >= num_backends()) return;
  const auto i = static_cast<std::size_t>(index);
  loads_[i] = queue_len;
  measured_at_[i] = now;
  last_refresh_ = now;
  ++version_;
  ++reports_applied_;
}

void NetBoard::note_dispatch(int index, double now) {
  if (schedule_ != UpdateSchedule::kPiggyback) return;
  if (index < 0 || index >= num_backends()) return;
  static_cast<void>(now);
  ++loads_[static_cast<std::size_t>(index)];
  ++version_;
}

double NetBoard::age(double now) const {
  const double oldest =
      *std::min_element(measured_at_.begin(), measured_at_.end());
  return std::max(now - oldest, 0.0);
}

double NetBoard::phase_elapsed(double now) const {
  return std::max(now - last_refresh_, 0.0);
}

double NetBoard::phase_length() const {
  return schedule_ == UpdateSchedule::kPeriodic ? update_period_ : 0.0;
}

}  // namespace stale::net
